package inframe

import (
	"math"
	"reflect"
	"testing"
)

// robustnessPipeline runs the compact facade pipeline through an impaired
// channel: gray video on the 24×16-Block test layout, τ=8, a fixed payload
// seed, decoded with the graceful-degradation receiver (report entry point).
// Every knob is pinned so the matrix below can assert numeric bounds.
func robustnessPipeline(t *testing.T, workers int, imp *ImpairConfig) (*ChannelResult, []*FrameDecode, *DecodeReport, *RandomStreamOracle) {
	t.Helper()
	return posePipeline(t, workers, imp, false)
}

// posePipeline is robustnessPipeline with an optional registration step:
// when registered is true the receiver first solves the projective
// display→capture homography blindly from the captures (exactly what a real
// receiver would do) and decodes through the rectifying warp.
func posePipeline(t *testing.T, workers int, imp *ImpairConfig, registered bool) (*ChannelResult, []*FrameDecode, *DecodeReport, *RandomStreamOracle) {
	t.Helper()
	l := testLayout()
	p := DefaultParams(l)
	p.Tau = 8
	p.Workers = workers
	stream := NewRandomStream(l, 3)
	m, err := NewMultiplexer(p, GrayVideo(l.FrameW, l.FrameH), stream)
	if err != nil {
		t.Fatal(err)
	}
	const nDisplay = 240 // 2 s → 30 data frames at τ=8
	cfg := quietChannel(l.FrameW, l.FrameH)
	cfg.Workers = workers
	cfg.Camera.Workers = workers
	cfg.Camera.Seed = 7
	cfg.Impair = imp
	res, err := Simulate(m, nDisplay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = workers
	rcfg.MinCaptureQuality = 0.1
	if registered {
		n := len(res.Captures)
		if n > 10 {
			n = 10
		}
		pose, err := CalibrateProjective(l, res.Captures[:n])
		if err != nil {
			t.Fatal(err)
		}
		rcfg.Pose = &pose
	}
	rx, err := NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, rep := rx.DecodeCapturesReport(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau)
	return res, decoded, rep, &RandomStreamOracle{stream: stream}
}

// RandomStreamOracle scores decoded frames against the transmitted payload.
type RandomStreamOracle struct{ stream Stream }

// Score tallies availability over all frames (gap frames count as
// unavailable) and the confident-bit error rate over decided Blocks.
func (o *RandomStreamOracle) Score(decoded []*FrameDecode) (avail, ber float64) {
	availGOBs, totalGOBs := 0, 0
	wrong, decided := 0, 0
	for d, fd := range decoded {
		l := fd.Bits.Layout
		totalGOBs += l.NumGOBs()
		availGOBs += fd.AvailableGOBs()
		want := o.stream.DataFrame(d)
		for j, dec := range fd.Decided {
			if !dec {
				continue
			}
			decided++
			if fd.Bits.Bits[j] != want.Bits[j] {
				wrong++
			}
		}
	}
	avail = float64(availGOBs) / float64(totalGOBs)
	if decided > 0 {
		ber = float64(wrong) / float64(decided)
	}
	return avail, ber
}

// robustnessMatrix pins, per impairment scenario at fixed seeds, the
// GOB-availability window and the confident-bit error ceiling the receiver
// must hold. The bounds are measured envelopes with margin, not aspirations:
// a regression that degrades decoding under any fault family trips the
// matching row, and an "improvement" that silently disables an impairment
// trips the scenario's upper availability bound.
var robustnessMatrix = []struct {
	name               string
	imp                *ImpairConfig
	registered         bool // solve projective registration before decoding
	minAvail, maxAvail float64
	maxBER             float64
	wantGaps           bool
	wantResyncs        bool
}{
	{name: "clean", imp: nil, minAvail: 0.97, maxAvail: 1.0, maxBER: 0.001},
	{name: "clock-drift", imp: &ImpairConfig{Seed: 11, ClockDriftPPM: 500}, minAvail: 0.9, maxAvail: 1.0, maxBER: 0.001},
	// Jitter shoves boundary captures out of their data frame's steady
	// window — at τ=8 each frame has roughly one usable capture, so the
	// lost ones become gaps the receiver must resync from.
	{name: "start-jitter", imp: &ImpairConfig{Seed: 11, StartJitter: 3e-4}, minAvail: 0.5, maxAvail: 0.9, maxBER: 0.005, wantGaps: true, wantResyncs: true},
	{name: "capture-drop", imp: &ImpairConfig{Seed: 11, DropRate: 0.25}, minAvail: 0.55, maxAvail: 0.95, maxBER: 0.005, wantGaps: true, wantResyncs: true},
	// Duplicates echo one exposure a camera period later, polluting the
	// neighbouring frame's aggregation with stale content.
	{name: "capture-dup", imp: &ImpairConfig{Seed: 11, DupRate: 0.25}, minAvail: 0.75, maxAvail: 0.95, maxBER: 0.005},
	{name: "ambient-ramp", imp: &ImpairConfig{Seed: 11, AmbientRamp: 12}, minAvail: 0.9, maxAvail: 1.0, maxBER: 0.001},
	{name: "mains-flicker", imp: &ImpairConfig{Seed: 11, FlickerAmp: 5, FlickerHz: 100}, minAvail: 0.85, maxAvail: 1.0, maxBER: 0.005},
	{name: "gain-drift", imp: &ImpairConfig{Seed: 11, GainAmp: 0.05, GainHz: 0.7}, minAvail: 0.85, maxAvail: 1.0, maxBER: 0.005},
	{name: "noise-burst", imp: &ImpairConfig{Seed: 11, BurstRate: 0.1, BurstSigma: 6}, minAvail: 0.5, maxAvail: 0.98, maxBER: 0.02},
	{name: "occlusion", imp: &ImpairConfig{Seed: 11, OccludeX: 0.1, OccludeY: 0.1, OccludeW: 0.25, OccludeH: 0.25, OccludeLevel: 30}, minAvail: 0.6, maxAvail: 0.97, maxBER: 0.005},
	{name: "kitchen-sink", imp: &ImpairConfig{
		Seed: 11, ClockDriftPPM: 300, StartJitter: 1e-4, DropRate: 0.1,
		DupRate: 0.1, AmbientRamp: 6, FlickerAmp: 3, FlickerHz: 100,
		GainAmp: 0.02, GainHz: 0.7, BurstRate: 0.05, BurstSigma: 5,
	}, minAvail: 0.5, maxAvail: 0.95, maxBER: 0.02, wantGaps: false, wantResyncs: false},
	// Camera-pose rows: the impair stack keystones every capture through a
	// seeded pinhole pose; the registered receiver solves the homography
	// blindly from the captures and decodes through the rectifying warp.
	// Bounds are measured envelopes like every other row — the lower bound
	// trips a registration regression, the upper bound trips a silently
	// disabled pose.
	{name: "pose-mild-tilt", imp: &ImpairConfig{Seed: 11, TiltDeg: 10}, registered: true,
		minAvail: 0.9, maxAvail: 1.0, maxBER: 0.005},
	{name: "pose-strong-tilt", imp: &ImpairConfig{Seed: 11, TiltDeg: 25, RotateDeg: 5, Distance: 1.3}, registered: true,
		minAvail: 0.4, maxAvail: 0.95, maxBER: 0.05},
	{name: "pose-rotate-distance", imp: &ImpairConfig{Seed: 11, RotateDeg: 8, Distance: 1.5}, registered: true,
		minAvail: 0.4, maxAvail: 0.95, maxBER: 0.05},
	// Graceful degradation, not decode quality: at a 60° grazing tilt the
	// blind calibration cannot recover cell phase and confident bits are at
	// chance. The row pins that the pipeline still completes, reports a
	// bounded availability instead of claiming full coverage, and never
	// crashes or hangs under concurrency.
	{name: "pose-grazing", imp: &ImpairConfig{Seed: 11, TiltDeg: 60, Distance: 0.8}, registered: true,
		minAvail: 0.0, maxAvail: 0.7, maxBER: 0.55},
}

// TestRobustnessMatrix is the deterministic fault-injection gate: every
// impairment scenario must land inside its pinned availability window and
// error ceiling, and the decode must be bit-identical at 1, 2 and 8 workers.
func TestRobustnessMatrix(t *testing.T) {
	for _, tc := range robustnessMatrix {
		t.Run(tc.name, func(t *testing.T) {
			res1, dec1, rep1, oracle := posePipeline(t, 1, tc.imp, tc.registered)
			avail, ber := oracle.Score(dec1)
			t.Logf("%s: avail=%.3f ber=%.4f gaps=%d resyncs=%d excluded=%d",
				tc.name, avail, ber, rep1.GapFrames, rep1.Resyncs, rep1.ExcludedCaptures)
			if avail < tc.minAvail || avail > tc.maxAvail {
				t.Errorf("availability %.3f outside [%.2f, %.2f]", avail, tc.minAvail, tc.maxAvail)
			}
			if ber > tc.maxBER {
				t.Errorf("confident-bit error rate %.4f above %.4f", ber, tc.maxBER)
			}
			if tc.wantGaps && rep1.GapFrames == 0 {
				t.Error("expected gap frames, saw none")
			}
			if tc.wantResyncs && rep1.Resyncs == 0 {
				t.Error("expected resyncs, saw none")
			}
			for _, w := range []int{2, 8} {
				resW, decW, repW, _ := posePipeline(t, w, tc.imp, tc.registered)
				if !reflect.DeepEqual(resW.Times, res1.Times) {
					t.Fatalf("workers=%d: capture times diverge", w)
				}
				if len(resW.Captures) != len(res1.Captures) {
					t.Fatalf("workers=%d: %d captures, want %d", w, len(resW.Captures), len(res1.Captures))
				}
				for i, c := range resW.Captures {
					if !c.Equal(res1.Captures[i]) {
						t.Fatalf("workers=%d: capture %d not bit-identical", w, i)
					}
				}
				if !reflect.DeepEqual(decW, dec1) {
					t.Fatalf("workers=%d: decoded frames diverge", w)
				}
				if !reflect.DeepEqual(repW, rep1) {
					t.Fatalf("workers=%d: decode reports diverge", w)
				}
			}
		})
	}
}

// TestZeroImpairConfigIsCleanPath locks the clean-channel contract: a
// non-nil but all-zero impairment config routes through exactly the same
// code as a nil one, producing bit-identical captures, times and decodes.
func TestZeroImpairConfigIsCleanPath(t *testing.T) {
	resNil, decNil, repNil, _ := robustnessPipeline(t, 2, nil)
	resZero, decZero, repZero, _ := robustnessPipeline(t, 2, &ImpairConfig{})
	if !reflect.DeepEqual(resZero.Times, resNil.Times) {
		t.Fatal("zero impair config changes capture times")
	}
	for i, c := range resZero.Captures {
		if !c.Equal(resNil.Captures[i]) {
			t.Fatalf("zero impair config changes capture %d", i)
		}
	}
	if !reflect.DeepEqual(decZero, decNil) || !reflect.DeepEqual(repZero, repNil) {
		t.Fatal("zero impair config changes the decode")
	}
}

// TestFrontalPoseIsCleanPath locks the frontal fast path: on a clean
// channel the blind projective calibration must collapse to the exactly
// axis-aligned full-frame hypothesis, and decoding with that pose must be
// bit-identical to the pre-homography receiver — the registration layer adds
// no silent resampling when the camera is head-on.
func TestFrontalPoseIsCleanPath(t *testing.T) {
	resNil, decNil, repNil, _ := posePipeline(t, 2, nil, false)
	resReg, decReg, repReg, _ := posePipeline(t, 2, nil, true)
	for i, c := range resReg.Captures {
		if !c.Equal(resNil.Captures[i]) {
			t.Fatalf("registration changed capture %d", i)
		}
	}
	if !reflect.DeepEqual(decReg, decNil) {
		t.Fatal("frontal pose decode is not bit-identical to the rigid decode")
	}
	// The reports must agree except for the Registration diagnostics, which
	// exist precisely to record that a pose was configured.
	reg := repReg.Registration
	repReg.Registration = repNil.Registration
	if !reflect.DeepEqual(repReg, repNil) {
		t.Fatal("frontal pose changes the decode report beyond Registration")
	}
	if reg.Projective {
		t.Error("axis-aligned pose took the projective rectification path")
	}
	if reg.Pose == ([9]float64{}) {
		t.Error("Registration.Pose not recorded for a configured pose")
	}
	if reg.MaxCornerOffsetPx != 0 {
		t.Errorf("frontal pose reports corner offset %v, want exactly 0", reg.MaxCornerOffsetPx)
	}
}

// TestImpairedDegradationAccounting spot-checks that the decode report's
// erasure-cause tally is self-consistent with the decoded frames under a
// heavy-drop channel.
func TestImpairedDegradationAccounting(t *testing.T) {
	_, decoded, rep, _ := robustnessPipeline(t, 1, &ImpairConfig{Seed: 11, DropRate: 0.25})
	var deg DegradationStats
	deg.AddReport(rep)
	counts := rep.CauseCounts()
	totalGOBs := 0
	availGOBs := 0
	for _, fd := range decoded {
		totalGOBs += len(fd.GOBs)
		availGOBs += fd.AvailableGOBs()
	}
	if deg.TotalGOBs() != totalGOBs {
		t.Fatalf("tally covers %d GOBs, decode has %d", deg.TotalGOBs(), totalGOBs)
	}
	delivered := 0
	for _, fd := range decoded {
		for _, g := range fd.GOBs {
			if g.Available && g.ParityOK {
				delivered++
			}
		}
	}
	if counts[CauseNone] != delivered {
		t.Fatalf("CauseNone=%d, delivered=%d", counts[CauseNone], delivered)
	}
	if counts[CauseNoCapture] == 0 {
		t.Fatal("heavy drop produced no no-capture erasures")
	}
	if math.Abs(deg.DeliveredRatio()-float64(delivered)/float64(totalGOBs)) > 1e-12 {
		t.Fatalf("delivered ratio %.4f inconsistent", deg.DeliveredRatio())
	}
}
