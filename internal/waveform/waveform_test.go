package waveform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeEndpoints(t *testing.T) {
	for _, s := range []Shape{SqrtRaisedCosine, Linear, Stair} {
		if got := s.Down(0); got != 1 {
			t.Errorf("%v.Down(0) = %v, want 1", s, got)
		}
		if got := s.Down(1); math.Abs(got) > 1e-12 {
			t.Errorf("%v.Down(1) = %v, want 0", s, got)
		}
		if got := s.Up(0); math.Abs(got) > 1e-12 {
			t.Errorf("%v.Up(0) = %v, want 0", s, got)
		}
		if got := s.Up(1); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v.Up(1) = %v, want 1", s, got)
		}
	}
}

func TestShapeMonotone(t *testing.T) {
	for _, s := range []Shape{SqrtRaisedCosine, Linear, Stair} {
		prev := s.Down(0)
		prevUp := s.Up(0)
		for i := 1; i <= 100; i++ {
			u := float64(i) / 100
			if d := s.Down(u); d > prev+1e-12 {
				t.Fatalf("%v.Down not non-increasing at u=%v", s, u)
			} else {
				prev = d
			}
			if up := s.Up(u); up < prevUp-1e-12 {
				t.Fatalf("%v.Up not non-decreasing at u=%v", s, u)
			} else {
				prevUp = up
			}
		}
	}
}

func TestShapeClampsInput(t *testing.T) {
	s := SqrtRaisedCosine
	if s.Down(-3) != 1 || math.Abs(s.Down(7)) > 1e-12 {
		t.Fatal("Down did not clamp input to [0,1]")
	}
}

// TestSRRCPowerComplementary: cos² + sin² = 1, the defining property that
// keeps total modulation power constant through a 1→0 / 0→1 crossfade.
func TestSRRCPowerComplementary(t *testing.T) {
	prop := func(u float64) bool {
		u = math.Abs(math.Mod(u, 1))
		d := SqrtRaisedCosine.Down(u)
		up := SqrtRaisedCosine.Up(u)
		return math.Abs(d*d+up*up-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetween(t *testing.T) {
	s := Linear
	if got := s.Between(20, 20, 0.3); got != 20 {
		t.Fatalf("Between equal levels = %v, want 20", got)
	}
	if got := s.Between(0, 10, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Between(0,10,0.5) = %v, want 5", got)
	}
	if got := s.Between(10, 0, 0.5); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Between(10,0,0.5) = %v, want 5", got)
	}
}

func TestStringNames(t *testing.T) {
	if SqrtRaisedCosine.String() != "sqrt-raised-cosine" ||
		Linear.String() != "linear" || Stair.String() != "stair" {
		t.Fatal("unexpected Shape names")
	}
	if Shape(9).String() != "Shape(9)" {
		t.Fatal("unknown shape String")
	}
}

func TestEnvelopeSteadyBit(t *testing.T) {
	env := Envelope(SqrtRaisedCosine, []float64{20, 20, 20}, 10)
	if len(env) != 30 {
		t.Fatalf("len = %d, want 30", len(env))
	}
	for i, v := range env {
		if v != 20 {
			t.Fatalf("steady envelope sample %d = %v, want 20", i, v)
		}
	}
}

func TestEnvelopeTransition(t *testing.T) {
	tau := 10
	env := Envelope(SqrtRaisedCosine, []float64{20, 0}, tau)
	// First half of period 0 steady at 20.
	for i := 0; i < tau/2; i++ {
		if env[i] != 20 {
			t.Fatalf("sample %d = %v, want steady 20", i, env[i])
		}
	}
	// Second half descends monotonically to ~0.
	for i := tau / 2; i < tau-1; i++ {
		if env[i+1] > env[i]+1e-12 {
			t.Fatalf("transition not monotone at %d: %v -> %v", i, env[i], env[i+1])
		}
	}
	if math.Abs(env[tau-1]) > 1e-9 {
		t.Fatalf("end of transition = %v, want 0", env[tau-1])
	}
	// Period 1 entirely at 0.
	for i := tau; i < 2*tau; i++ {
		if env[i] != 0 {
			t.Fatalf("sample %d = %v, want 0", i, env[i])
		}
	}
}

func TestEnvelopeUpTransition(t *testing.T) {
	tau := 8
	env := Envelope(Linear, []float64{0, 16}, tau)
	want := []float64{0, 0, 0, 0, 4, 8, 12, 16}
	for i, w := range want {
		if math.Abs(env[i]-w) > 1e-9 {
			t.Fatalf("sample %d = %v, want %v", i, env[i], w)
		}
	}
}

func TestEnvelopePanicsOnOddTau(t *testing.T) {
	for _, tau := range []int{0, 1, 3, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Envelope(tau=%d) did not panic", tau)
				}
			}()
			Envelope(Linear, []float64{1}, tau)
		}()
	}
}

func TestModulateAlternates(t *testing.T) {
	env := []float64{5, 5, 5, 5}
	m := Modulate(env, 100)
	want := []float64{105, 95, 105, 95}
	for i, w := range want {
		if m[i] != w {
			t.Fatalf("Modulate[%d] = %v, want %v", i, m[i], w)
		}
	}
}

func TestLowPassDCGain(t *testing.T) {
	lp := NewLowPass(50, 120)
	var y float64
	for i := 0; i < 500; i++ {
		y = lp.Step(10)
	}
	if math.Abs(y-10) > 1e-6 {
		t.Fatalf("DC gain: converged to %v, want 10", y)
	}
}

func TestLowPassAttenuatesAlternation(t *testing.T) {
	// A 60 Hz alternation at 120 Hz sampling through a 40 Hz filter must be
	// strongly attenuated around its mean — the flicker-fusion analogue.
	lp := NewLowPass(40, 120)
	xs := Modulate(make([]float64, 480), 0)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 20
		} else {
			xs[i] = -20
		}
	}
	ys := lp.Filter(xs)
	r := Ripple(ys, 120)
	if r >= 30 {
		t.Fatalf("alternation ripple after LPF = %v, want < 30 (input p-p 40)", r)
	}
	if r == 0 {
		t.Fatal("ripple exactly zero is implausible for a first-order filter")
	}
}

func TestLowPassPanicsOnBadParams(t *testing.T) {
	for _, p := range [][2]float64{{0, 120}, {50, 0}, {70, 120}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLowPass(%v,%v) did not panic", p[0], p[1])
				}
			}()
			NewLowPass(p[0], p[1])
		}()
	}
}

func TestCascadeSteeperThanSingle(t *testing.T) {
	xs := make([]float64, 480)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	single := NewLowPass(30, 120).Filter(xs)
	casc := NewCascade(3, 30, 120).Filter(xs)
	if Ripple(casc, 120) >= Ripple(single, 120) {
		t.Fatalf("cascade ripple %v not below single-pole ripple %v",
			Ripple(casc, 120), Ripple(single, 120))
	}
}

func TestCascadePanicsOnZeroOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCascade(0,...) did not panic")
		}
	}()
	NewCascade(0, 30, 120)
}

func TestRipple(t *testing.T) {
	if r := Ripple([]float64{0, 10, 3, 7}, 1); r != 7 {
		t.Fatalf("Ripple = %v, want 7", r)
	}
	if r := Ripple([]float64{1, 2}, 5); r != 0 {
		t.Fatalf("Ripple with skip beyond length = %v, want 0", r)
	}
}

// TestSmoothingReducesLPFRipple reproduces the qualitative claim behind
// Fig. 5: a smoothed bit transition produces a more stable low-pass output
// than an abrupt (stair) transition.
func TestSmoothingReducesLPFRipple(t *testing.T) {
	levels := []float64{20, 0, 20, 0, 20, 0, 20, 0}
	tau := 12
	lp := NewLowPass(45, 120)
	smooth := lp.Filter(Modulate(Envelope(SqrtRaisedCosine, levels, tau), 127))
	abrupt := lp.Filter(Modulate(Envelope(Stair, levels, tau), 127))
	rs := Ripple(smooth, tau)
	ra := Ripple(abrupt, tau)
	if rs >= ra {
		t.Fatalf("smooth ripple %v not below abrupt ripple %v", rs, ra)
	}
}
