// Package waveform implements the temporal amplitude shaping of InFrame's
// data-block smoothing (§3.2): the envelope a data Pixel's amplitude follows
// when a bit switches between consecutive data frames, plus the electronic
// low-pass filter the paper uses to verify the smoothed waveform ("we
// verified the design by passing the waveform to an electronic low-pass
// filter and observed stable output waveform", Fig. 5).
package waveform

import (
	"fmt"
	"math"
)

// Shape selects the transition envelope family. The paper adopts half of a
// square-root raised-cosine waveform "after comparing with linear and stair
// function forms"; all three are implemented so the comparison can be
// reproduced (ablation A1).
type Shape int

const (
	// SqrtRaisedCosine is half a square-root raised-cosine: the paper's
	// chosen envelope.
	SqrtRaisedCosine Shape = iota
	// Linear ramps the amplitude linearly.
	Linear
	// Stair switches abruptly at the midpoint of the transition window,
	// i.e. no smoothing beyond the complementary alternation itself.
	Stair
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case SqrtRaisedCosine:
		return "sqrt-raised-cosine"
	case Linear:
		return "linear"
	case Stair:
		return "stair"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Down evaluates the 1→0 envelope Ω10 at normalized time u ∈ [0,1]:
// Down(0)=1, Down(1)=0, monotonically non-increasing.
func (s Shape) Down(u float64) float64 {
	u = clamp01(u)
	switch s {
	case SqrtRaisedCosine:
		return math.Cos(math.Pi / 2 * u)
	case Linear:
		return 1 - u
	case Stair:
		if u < 0.5 {
			return 1
		}
		return 0
	default:
		panic("waveform: unknown shape")
	}
}

// Up evaluates the 0→1 envelope Ω01 at normalized time u ∈ [0,1]:
// Up(0)=0, Up(1)=1, monotonically non-decreasing. Up and Down are
// complementary in power for the raised-cosine family.
func (s Shape) Up(u float64) float64 {
	u = clamp01(u)
	switch s {
	case SqrtRaisedCosine:
		return math.Sin(math.Pi / 2 * u)
	case Linear:
		return u
	case Stair:
		if u < 0.5 {
			return 0
		}
		return 1
	default:
		panic("waveform: unknown shape")
	}
}

// Between interpolates an amplitude moving from a0 to a1 at normalized
// transition time u, using the shape's envelope pair.
func (s Shape) Between(a0, a1, u float64) float64 {
	//lint:ignore floateq fast path only: both branches agree in the a0→a1 limit, so a near-miss is still correct
	if a0 == a1 {
		return a0
	}
	if a1 > a0 {
		return a0 + (a1-a0)*s.Up(u)
	}
	return a1 + (a0-a1)*s.Down(u)
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Envelope produces the per-display-frame amplitude sequence of one data
// Pixel across a sequence of data frame periods (§3.2's temporal smoothing):
//
//   - each data frame occupies tau display frames (one "iteration" per
//     displayed frame);
//   - during the first tau/2 frames of a period the amplitude is steady at
//     the current bit's level;
//   - during the remaining tau/2 frames, if the *next* period's bit differs,
//     the amplitude follows the shape's envelope toward the next level.
//
// levels[i] is the target amplitude of period i (e.g. 0 or δ). The returned
// slice has len(levels)*tau entries. tau must be even and >= 2.
func Envelope(shape Shape, levels []float64, tau int) []float64 {
	if tau < 2 || tau%2 != 0 {
		panic(fmt.Sprintf("waveform.Envelope: tau must be even and >= 2, got %d", tau))
	}
	out := make([]float64, 0, len(levels)*tau)
	half := tau / 2
	for i, lv := range levels {
		next := lv
		if i+1 < len(levels) {
			next = levels[i+1]
		}
		for j := 0; j < tau; j++ {
			//lint:ignore floateq fast path only: Between(lv, next, u) returns lv exactly when the levels coincide
			if j < half || next == lv {
				out = append(out, lv)
				continue
			}
			u := float64(j-half+1) / float64(half)
			out = append(out, shape.Between(lv, next, u))
		}
	}
	return out
}

// Modulate converts an amplitude envelope into the displayed luminance
// deviation sequence: the amplitude alternates sign on every display frame
// (the complementary-frame alternation at half the refresh rate). base is
// added to every sample so the output can be fed straight to the low-pass
// verification.
func Modulate(envelope []float64, base float64) []float64 {
	out := make([]float64, len(envelope))
	for i, a := range envelope {
		if i%2 == 0 {
			out[i] = base + a
		} else {
			out[i] = base - a
		}
	}
	return out
}

// LowPass is a first-order (single-pole) discrete-time low-pass filter,
// the "electronic low-pass filter" of Fig. 5.
type LowPass struct {
	alpha float64
	y     float64
	prime bool
}

// NewLowPass returns a single-pole low-pass with cutoff frequency fc (Hz)
// sampled at rate fs (Hz). It panics if the parameters are non-physical.
func NewLowPass(fc, fs float64) *LowPass {
	if fc <= 0 || fs <= 0 || fc >= fs/2 {
		panic(fmt.Sprintf("waveform.NewLowPass: invalid fc=%v fs=%v", fc, fs))
	}
	dt := 1 / fs
	rc := 1 / (2 * math.Pi * fc)
	return &LowPass{alpha: dt / (rc + dt)}
}

// Step feeds one sample and returns the filtered output.
func (lp *LowPass) Step(x float64) float64 {
	if !lp.prime {
		lp.y = x
		lp.prime = true
		return lp.y
	}
	lp.y += lp.alpha * (x - lp.y)
	return lp.y
}

// Filter applies the filter to a whole sequence, resetting state first.
func (lp *LowPass) Filter(xs []float64) []float64 {
	lp.Reset()
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = lp.Step(x)
	}
	return out
}

// Reset clears the filter state.
func (lp *LowPass) Reset() { lp.y = 0; lp.prime = false }

// Cascade is an n-th order low-pass built from identical first-order
// sections, used to approximate steeper electronic filters.
type Cascade struct{ stages []*LowPass }

// NewCascade builds an order-n cascade with per-stage cutoff fc at sample
// rate fs.
func NewCascade(n int, fc, fs float64) *Cascade {
	if n <= 0 {
		panic("waveform.NewCascade: order must be positive")
	}
	c := &Cascade{stages: make([]*LowPass, n)}
	for i := range c.stages {
		c.stages[i] = NewLowPass(fc, fs)
	}
	return c
}

// Step feeds one sample through all stages.
func (c *Cascade) Step(x float64) float64 {
	for _, s := range c.stages {
		x = s.Step(x)
	}
	return x
}

// Filter applies the cascade to a whole sequence, resetting state first.
func (c *Cascade) Filter(xs []float64) []float64 {
	for _, s := range c.stages {
		s.Reset()
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c.Step(x)
	}
	return out
}

// Ripple measures the peak-to-peak excursion of the tail of a sequence,
// skipping the first skip samples of transient: the "stable output waveform"
// criterion used to validate smoothing in Fig. 5.
func Ripple(xs []float64, skip int) float64 {
	if skip >= len(xs) {
		return 0
	}
	tail := xs[skip:]
	min, max := tail[0], tail[0]
	for _, v := range tail[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}
