package naive

import (
	"testing"

	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/hvs"
	"inframe/internal/video"
)

func testLayout() core.Layout {
	return core.Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

func onesStream(l core.Layout) core.Stream {
	df := core.NewDataFrame(l)
	for i := range df.Bits {
		df.Bits[i] = true
	}
	return &core.FixedStream{Frames: []*core.DataFrame{df}}
}

func newRenderer(t *testing.T, s Scheme) *Renderer {
	t.Helper()
	l := testLayout()
	r, err := NewRenderer(s, l, 40, video.Gray(l.FrameW, l.FrameH), onesStream(l))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemeNames(t *testing.T) {
	want := map[Scheme]string{
		Normal: "normal", Aggressive: "V:D=1:3", Alternate: "V:D=1:1",
		TwoTwo: "V:D=2:2", ThreeOne: "V:D=3:1",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if len(Schemes()) != 5 {
		t.Fatal("Schemes() should list all five")
	}
}

func TestNewRendererValidation(t *testing.T) {
	l := testLayout()
	if _, err := NewRenderer(Normal, l, 40, video.Gray(10, 10), onesStream(l)); err == nil {
		t.Fatal("accepted mismatched video")
	}
	if _, err := NewRenderer(Normal, l, 0, video.Gray(l.FrameW, l.FrameH), onesStream(l)); err == nil {
		t.Fatal("accepted zero delta")
	}
	bad := l
	bad.BlocksX = 0
	if _, err := NewRenderer(Normal, bad, 40, video.Gray(l.FrameW, l.FrameH), onesStream(l)); err == nil {
		t.Fatal("accepted invalid layout")
	}
}

func TestNormalIsPureVideo(t *testing.T) {
	r := newRenderer(t, Normal)
	for k := 0; k < 8; k++ {
		if !r.Frame(k).Equal(video.Gray(48, 32).Frame(0)) {
			t.Fatalf("normal scheme altered frame %d", k)
		}
	}
}

func TestSlotPatterns(t *testing.T) {
	// For each scheme, the data slots differ from video, video slots don't.
	gray := video.Gray(48, 32).Frame(0)
	for _, s := range Schemes() {
		r := newRenderer(t, s)
		pat := s.slotPattern()
		for slot := 0; slot < 4; slot++ {
			f := r.Frame(slot)
			isVideo := f.Equal(gray)
			if pat[slot] < 0 && !isVideo {
				t.Fatalf("%v slot %d should be video", s, slot)
			}
			if pat[slot] >= 0 && isVideo {
				t.Fatalf("%v slot %d should carry data", s, slot)
			}
		}
	}
}

func TestDataOverlayIsOneSided(t *testing.T) {
	// Unlike InFrame's ±D pairs, the naive data frame only adds: its mean
	// exceeds the video mean, which is exactly why fusion fails.
	r := newRenderer(t, Alternate)
	v := r.Frame(0)
	d := r.Frame(1)
	if d.Mean() <= v.Mean() {
		t.Fatal("naive data frame mean should exceed video mean")
	}
	avg, err := frame.Average(r.Render(4)...)
	if err != nil {
		t.Fatal(err)
	}
	mae, _ := frame.MAE(avg, v)
	if mae < 1 {
		t.Fatalf("naive average matches video (MAE %v); fusion should fail", mae)
	}
}

func TestRenderCount(t *testing.T) {
	r := newRenderer(t, TwoTwo)
	if len(r.Render(13)) != 13 {
		t.Fatal("Render count wrong")
	}
}

// TestNaiveSchemesFlickerInFrameDoesNot reproduces the §3.1 user-study
// outcome on the simulated panel: every naive data-bearing scheme scores
// "evident flicker" territory, while the complementary design stays
// satisfactory.
func TestNaiveSchemesFlickerInFrameDoesNot(t *testing.T) {
	l := testLayout()
	panel := hvs.Panel(8, 3)
	build := func(frames []*frame.Frame) *display.Display {
		cfg := display.DefaultConfig()
		cfg.ResponseTime = 0
		d, err := display.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if err := d.Push(f); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	reference := build(newRenderer(t, Normal).Render(120))
	rate := func(frames []*frame.Frame) float64 {
		d := build(frames)
		ratings := hvs.RateDisplayRef(panel, d, reference, 3, 4, float64(l.PixelSize), 9)
		mean, _ := hvs.MeanStd(ratings)
		return mean
	}

	scores := map[Scheme]float64{}
	for _, s := range Schemes() {
		r := newRenderer(t, s)
		scores[s] = rate(r.Render(120))
	}
	if scores[Normal] > 0.5 {
		t.Fatalf("pure video scored %.2f, want ~0", scores[Normal])
	}
	for _, s := range []Scheme{Aggressive, Alternate, TwoTwo, ThreeOne} {
		if scores[s] < 2 {
			t.Fatalf("naive %v scored %.2f, want >= 2 (evident flicker)", s, scores[s])
		}
	}

	// InFrame at its recommended amplitude (δ=20, §4): satisfactory.
	inframeAt := func(delta float64) float64 {
		p := core.DefaultParams(l)
		p.Tau = 8
		p.Delta = delta
		m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), onesStream(l))
		if err != nil {
			t.Fatal(err)
		}
		return rate(m.Render(120))
	}
	if s := inframeAt(20); s > 1.2 {
		t.Fatalf("InFrame at δ=20 scored %.2f, want <= 1.2", s)
	}
	// Even at the naive schemes' amplitude, InFrame stays clearly below them.
	if s := inframeAt(40); s >= scores[Alternate] {
		t.Fatalf("InFrame at δ=40 (%.2f) must beat naive alternate (%.2f)", s, scores[Alternate])
	}
}
