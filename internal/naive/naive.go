// Package naive implements the failed first designs of Fig. 3: inserting
// distinct data frames between video frames without the complementary-frame
// construction. They are kept as baselines for the flicker-perception
// experiments — every one of them violates the CFF constraint and shows
// "dynamic semi-transparent data blocks" to the viewer.
package naive

import (
	"fmt"

	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/video"
)

// Scheme enumerates the Fig. 3 frame-insertion patterns, assuming a 120 Hz
// display and 30 FPS video (four display slots per video frame).
type Scheme int

const (
	// Normal displays the video only: V V V V (Fig. 3b), the no-data
	// reference.
	Normal Scheme = iota
	// Aggressive inserts three distinct data frames after each video
	// frame: V D D D (Fig. 3c).
	Aggressive
	// Alternate interleaves evenly: V D V D (Fig. 3d).
	Alternate
	// TwoTwo plays two video then two data frames: V V D D.
	TwoTwo
	// ThreeOne plays three video then one data frame: V V V D.
	ThreeOne
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Normal:
		return "normal"
	case Aggressive:
		return "V:D=1:3"
	case Alternate:
		return "V:D=1:1"
	case TwoTwo:
		return "V:D=2:2"
	case ThreeOne:
		return "V:D=3:1"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists every naive scheme for table-driven experiments.
func Schemes() []Scheme { return []Scheme{Normal, Aggressive, Alternate, TwoTwo, ThreeOne} }

// slotPattern returns, for each of the four display slots of one video
// frame, which data frame (0-based within the slot, -1 for video) to show.
func (s Scheme) slotPattern() [4]int {
	switch s {
	case Normal:
		return [4]int{-1, -1, -1, -1}
	case Aggressive:
		return [4]int{-1, 0, 1, 2}
	case Alternate:
		return [4]int{-1, 0, -1, 1}
	case TwoTwo:
		return [4]int{-1, -1, 0, 1}
	case ThreeOne:
		return [4]int{-1, -1, -1, 0}
	default:
		panic("naive: unknown scheme")
	}
}

// Renderer produces the naive multiplexed display stream.
type Renderer struct {
	Scheme Scheme
	Layout core.Layout
	Delta  float64
	Video  video.Source
	Data   core.Stream
}

// NewRenderer builds a naive renderer; the video must match the layout.
func NewRenderer(s Scheme, l core.Layout, delta float64, src video.Source, data core.Stream) (*Renderer, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	w, h := src.Size()
	if w != l.FrameW || h != l.FrameH {
		return nil, fmt.Errorf("naive: video %dx%d does not match layout %dx%d", w, h, l.FrameW, l.FrameH)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("naive: delta must be positive")
	}
	return &Renderer{Scheme: s, Layout: l, Delta: delta, Video: src, Data: data}, nil
}

// Frame renders display frame k: either the video frame of the slot or the
// video frame with a one-sided (non-complementary) chessboard overlay — the
// "distinctive data frame" of the naive designs.
func (r *Renderer) Frame(k int) *frame.Frame {
	vi := k / 4
	slot := k % 4
	v := r.Video.Frame(vi)
	dIdx := r.Scheme.slotPattern()[slot]
	if dIdx < 0 {
		return v
	}
	df := r.Data.DataFrame(vi*3 + dIdx)
	out := v
	l := r.Layout
	ps := l.PixelSize
	for by := 0; by < l.BlocksY; by++ {
		for bx := 0; bx < l.BlocksX; bx++ {
			if !df.Bit(bx, by) {
				continue
			}
			x0, y0, w, h := l.BlockRect(bx, by)
			for y := y0; y < y0+h; y++ {
				base := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if core.ChessOn(x/ps, y/ps) {
						out.Pix[base+x] += float32(r.Delta)
					}
				}
			}
		}
	}
	out.Clamp(0, 255)
	return out
}

// Render produces display frames [0, n).
func (r *Renderer) Render(n int) []*frame.Frame {
	frames := make([]*frame.Frame, n)
	for k := range frames {
		frames[k] = r.Frame(k)
	}
	return frames
}
