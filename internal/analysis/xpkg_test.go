package analysis

// Cross-package golden tests: multi-package fixture modules under
// testdata/src/<name>/ (packages <name>/a, <name>/b) exercise the
// module-wide summary engine. Each case below carries at least one
// finding that exists only because a summary crossed a package
// boundary — deleting the engine would turn these fixtures silent, not
// noisy, so the plain single-package goldens cannot cover them.

import (
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
)

// loadFixtureModule loads a multi-package fixture tree from
// testdata/src/<name>/ under the module path <name> and collects want
// specs across every package.
func loadFixtureModule(t *testing.T, name string) (*Module, []*wantSpec) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	mod, err := LoadFixtureModule(dir, name)
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", dir, err)
	}
	var wants []*wantSpec
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := mod.Fset.Position(c.Pos())
					wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return mod, wants
}

// TestCrossPackageFixtures runs each summary-consuming analyzer over its
// two-package fixture module.
func TestCrossPackageFixtures(t *testing.T) {
	cases := []struct{ fixture, analyzer string }{
		{"intrange_xpkg", "intrange"},
		{"poolown_xpkg", "poolown"},
		{"splitbudget_xpkg", "splitbudget"},
		{"stagekey_xpkg", "stagekey"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			mod, wants := loadFixtureModule(t, c.fixture)
			if len(mod.Packages) < 2 {
				t.Fatalf("fixture %s loaded %d packages, want at least 2", c.fixture, len(mod.Packages))
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", c.fixture)
			}
			checkGolden(t, Run(mod, []*Analyzer{analyzerByName(t, c.analyzer)}), wants)
		})
	}
}

// TestOnlySubsetMatchesFullRun pins the -only contract on the fixpoint
// engine: a subset run must render byte-identical findings to the
// corresponding slice of a full-registry run. Summaries are computed
// from the whole module either way, so restricting the analyzer set
// must not change what any one analyzer sees — the fixture's seeded
// cross-package oversubscription is exactly the finding that would
// silently vanish if a subset run fell back to shallower summaries.
func TestOnlySubsetMatchesFullRun(t *testing.T) {
	slice := func(analyzers []*Analyzer) []string {
		mod, _ := loadFixtureModule(t, "splitbudget_xpkg")
		var out []string
		for _, d := range Run(mod, analyzers) {
			if d.Analyzer == "splitbudget" {
				out = append(out, d.String())
			}
		}
		return out
	}
	fromFull := slice(DefaultAnalyzers())
	fromSubset := slice([]*Analyzer{analyzerByName(t, "splitbudget")})
	if len(fromFull) == 0 {
		t.Fatal("full-registry run produced no splitbudget findings; the fixture is defanged")
	}
	if !reflect.DeepEqual(fromFull, fromSubset) {
		t.Errorf("-only slice diverged from the full run:\nfull:   %v\nsubset: %v", fromFull, fromSubset)
	}
}
