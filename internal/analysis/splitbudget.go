package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Splitbudget guards against nested worker-pool oversubscription — the
// bug class fixed in the fleet harness: an inner parallel.For inside a
// callback that is already running under an outer parallel region, with
// the inner call handed the full worker budget. On a W-core box that
// schedules W×W goroutines of CPU-bound work, wrecking cache locality
// and (worse) hiding determinism bugs behind scheduling noise.
//
// The rule: inside a function literal passed to a parallel region
// spawner (For or ForChunked), any further region must run on a budget
// threaded through parallel.Split:
//
//   - a directly nested For/ForChunked call's workers argument must be
//     an identifier assigned from Split (or the literal 1, which is
//     explicitly serial);
//   - a call to a function that spawns a region keyed by one of its own
//     parameters must receive a Split-derived value (or 1) in that
//     position;
//   - a call to a function that spawns a region from the worker state it
//     carries — a receiver or a config parameter whose Workers field
//     feeds the region — must be handed an object whose budget was set
//     Split-derived before the call (rcfg.Workers = inner; rcv :=
//     NewReceiver(rcfg); rcv.Decode(...) is the sanctioned shape);
//   - a call to a function that spawns from truly ambient state (a
//     package global, a captured variable) is flagged outright — there
//     is no way to thread a budget into it, which is the defect.
//
// Summaries are module-wide and transitive (summaries.go): a package's
// callees are summarized before the package itself, and same-package
// call chains iterate to a fixpoint, so a budget laundered through
// experiments.Fleet into fleet.Run — or a spawn hidden two calls behind
// the facade — is visible at the outermost call site. The Split test is
// lenient on purpose: an identifier qualifies if any assignment in the
// enclosing function draws it from Split, so a documented escape hatch
// that re-assigns the budget (the fleet Uncapped knob) stays clean
// without a suppression.
var Splitbudget = &Analyzer{
	Name: "splitbudget",
	Doc:  "nested parallel regions must thread a Split worker budget",
	Run:  runSplitbudget,
}

// spawnSummary records how a function (transitively) spawns parallel
// regions: keyed by which of its own parameters (budget can be threaded
// in directly), from the Workers state of which parameter or receiver
// (budget can be threaded in by configuring that object), or from
// ambient state (it cannot).
type spawnSummary struct {
	// byParam marks integer parameters used as a region's worker count.
	byParam map[int]bool
	// byState marks parameters whose carried state feeds a region's
	// worker count; -1 is the receiver.
	byState map[int]bool
	// ambient is set when a region draws its count from anything else.
	ambient bool
}

func (s spawnSummary) empty() bool {
	return len(s.byParam) == 0 && len(s.byState) == 0 && !s.ambient
}

func (s spawnSummary) equal(o spawnSummary) bool {
	if s.ambient != o.ambient || len(s.byParam) != len(o.byParam) || len(s.byState) != len(o.byState) {
		return false
	}
	for i := range s.byParam {
		if !o.byParam[i] {
			return false
		}
	}
	for i := range s.byState {
		if !o.byState[i] {
			return false
		}
	}
	return true
}

// workerOrigin classifies the provenance of a workers expression.
type workerOrigin int

const (
	originOther  workerOrigin = iota
	originParam               // an enclosing function's own parameter
	originState               // Workers state of a parameter or receiver
	originSplit               // assigned from parallel.Split
	originSerial              // the literal 1: explicitly serial
)

func runSplitbudget(pass *Pass) {
	summaries := pass.spawnSummaries()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fc := newSpawnFuncContext(pass.Info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				lit := regionCallback(pass.Info, call)
				if lit == nil {
					return true
				}
				checkRegionBody(pass, fc, summaries, lit)
				return true
			})
		}
	}
}

// isRegionSpawner reports whether the call starts a parallel region: a
// callee named For or ForChunked taking a workers count first.
func isRegionSpawner(info *types.Info, call *ast.CallExpr) bool {
	obj := funcObj(info, call.Fun)
	if obj == nil {
		return false
	}
	return (obj.Name() == "For" || obj.Name() == "ForChunked") && len(call.Args) >= 3
}

// regionCallback returns the function-literal callback of a region
// spawning call, or nil.
func regionCallback(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	if !isRegionSpawner(info, call) {
		return nil
	}
	lit, _ := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return lit
}

// blessKind is the provenance a local object inherited through the
// blessing rules below.
type blessKind int

const (
	blessSplit  blessKind = iota // carries a Split-derived budget
	blessSerial                  // carries the explicit serial budget 1
	blessParam                   // carries the value of parameter idx
	blessState                   // carries the Workers state of param idx (-1 receiver)
)

type blessing struct {
	kind blessKind
	idx  int
}

// spawnFuncContext caches per-FuncDecl facts: its parameter objects, its
// receiver, and the budget blessings of its locals. An object is blessed
// when the function sets its Workers field from a classified source, or
// when it is derived (by assignment, call result, or composite literal)
// from an already-blessed object — the chain that keeps
// "base.Workers = 1; spec := pop.Spec(i, base); cam, _ := camera.New(spec.Camera)"
// recognizably serial three hops later. First blessing wins, so the
// Uncapped-style re-assignment stays clean.
type spawnFuncContext struct {
	info    *types.Info
	params  map[types.Object]int
	recv    types.Object
	blessed map[types.Object]blessing
}

// maxBlessRounds bounds the blessing fixpoint. Blessings only spread and
// never change once set, so a cutoff under-approximates: fewer blessed
// objects means the summaries report more positions as ambient and the
// checks stay on the flag-less side only when provenance was proven.
const maxBlessRounds = 8

func newSpawnFuncContext(info *types.Info, fd *ast.FuncDecl) *spawnFuncContext {
	fc := &spawnFuncContext{
		info:    info,
		params:  make(map[types.Object]int),
		blessed: make(map[types.Object]blessing),
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					fc.params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		fc.recv = info.Defs[fd.Recv.List[0].Names[0]]
	}
	for round := 0; round < maxBlessRounds; round++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					changed = fc.blessAssign(as.Lhs[i], as.Rhs[i]) || changed
				}
			} else if len(as.Rhs) == 1 {
				for _, lhs := range as.Lhs {
					changed = fc.blessAssign(lhs, as.Rhs[0]) || changed
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return fc
}

// blessAssign applies one assignment's blessing rule and reports whether
// anything new was learned.
func (fc *spawnFuncContext) blessAssign(lhs, rhs ast.Expr) bool {
	lhs = ast.Unparen(lhs)
	// Setting a Workers field blesses the object that holds it.
	if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Workers" {
		root := fc.rootObj(sel.X)
		if root == nil {
			return false
		}
		if _, done := fc.blessed[root]; done {
			return false
		}
		if b, ok := fc.classifyBudget(rhs); ok {
			fc.blessed[root] = b
			return true
		}
		return false
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := fc.info.Defs[id]
	if obj == nil {
		obj = fc.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	if _, done := fc.blessed[obj]; done {
		return false
	}
	if b, ok := fc.blessFrom(rhs); ok {
		fc.blessed[obj] = b
		return true
	}
	return false
}

// classifyBudget classifies a workers-count expression into a blessing.
func (fc *spawnFuncContext) classifyBudget(e ast.Expr) (blessing, bool) {
	switch o, i := fc.origin(e); o {
	case originSplit:
		return blessing{blessSplit, 0}, true
	case originSerial:
		return blessing{blessSerial, 0}, true
	case originParam:
		return blessing{blessParam, i}, true
	case originState:
		return blessing{blessState, i}, true
	}
	return blessing{}, false
}

// blessFrom derives a blessing for the result of evaluating rhs: an
// aliased blessed object, a call fed a blessed argument, or a composite
// literal with a classified Workers field.
func (fc *spawnFuncContext) blessFrom(rhs ast.Expr) (blessing, bool) {
	rhs = ast.Unparen(rhs)
	if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
		rhs = ast.Unparen(u.X)
	}
	switch x := rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if root := fc.rootObj(rhs); root != nil {
			if b, ok := fc.blessed[root]; ok {
				return b, true
			}
		}
	case *ast.CallExpr:
		if obj := funcObj(fc.info, x.Fun); obj != nil && obj.Name() == "Split" {
			return blessing{blessSplit, 0}, true
		}
		for _, arg := range x.Args {
			if root := fc.rootObj(arg); root != nil {
				if b, ok := fc.blessed[root]; ok {
					return b, true
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Workers" {
				continue
			}
			return fc.classifyBudget(kv.Value)
		}
	}
	return blessing{}, false
}

// rootObj walks a selector/deref/index chain down to its base identifier
// and returns that identifier's object.
func (fc *spawnFuncContext) rootObj(e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			if o := fc.info.Uses[x]; o != nil {
				return o
			}
			return fc.info.Defs[x]
		default:
			return nil
		}
	}
}

// origin classifies one workers expression within the function. The int
// is the parameter index for originParam, or the state index (-1 for the
// receiver) for originState.
func (fc *spawnFuncContext) origin(e ast.Expr) (workerOrigin, int) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Value == "1" {
			return originSerial, 0
		}
		return originOther, 0
	case *ast.CallExpr:
		if obj := funcObj(fc.info, x.Fun); obj != nil && obj.Name() == "Split" {
			return originSplit, 0
		}
		return originOther, 0
	case *ast.Ident:
		obj := fc.info.Uses[x]
		if obj == nil {
			return originOther, 0
		}
		if b, ok := fc.blessed[obj]; ok {
			return b.origin()
		}
		if i, ok := fc.params[obj]; ok {
			return originParam, i
		}
		return originOther, 0
	case *ast.SelectorExpr:
		return fc.classifyCarrier(x)
	}
	return originOther, 0
}

// classifyCarrier classifies an expression naming an object whose state
// feeds a worker count (cfg.Workers, r.cfg.Workers, the rcv in
// rcv.Decode): what does the chain's root object carry?
func (fc *spawnFuncContext) classifyCarrier(e ast.Expr) (workerOrigin, int) {
	root := fc.rootObj(e)
	if root == nil {
		return originOther, 0
	}
	if b, ok := fc.blessed[root]; ok {
		return b.origin()
	}
	if root == fc.recv {
		return originState, -1
	}
	if i, ok := fc.params[root]; ok {
		return originState, i
	}
	return originOther, 0
}

func (b blessing) origin() (workerOrigin, int) {
	switch b.kind {
	case blessSplit:
		return originSplit, 0
	case blessSerial:
		return originSerial, 0
	case blessParam:
		return originParam, b.idx
	case blessState:
		return originState, b.idx
	}
	return originOther, 0
}

// summarizeSpawnFunc computes fd's spawn summary given the summaries
// accumulated so far (the fixpoint driver re-runs it until nothing
// grows). Direct region spawns classify their workers argument; calls to
// summarized callees translate the callee's needs into the caller's
// vocabulary — a callee parameter fed by our parameter becomes our
// byParam, a callee's receiver state satisfied by an object we blessed
// Split-derived vanishes, and anything unprovable becomes ambient.
func summarizeSpawnFunc(info *types.Info, fd *ast.FuncDecl, global map[*types.Func]spawnSummary) spawnSummary {
	fc := newSpawnFuncContext(info, fd)
	var sum spawnSummary
	add := func(o workerOrigin, idx int) {
		switch o {
		case originSplit, originSerial:
			// Budget-disciplined internally; nothing to thread.
		case originParam:
			if sum.byParam == nil {
				sum.byParam = make(map[int]bool)
			}
			sum.byParam[idx] = true
		case originState:
			if sum.byState == nil {
				sum.byState = make(map[int]bool)
			}
			sum.byState[idx] = true
		default:
			sum.ambient = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRegionSpawner(info, call) {
			o, i := fc.origin(call.Args[0])
			add(o, i)
			return true
		}
		callee := funcObj(info, call.Fun)
		if callee == nil {
			return true
		}
		csum, ok := global[callee]
		if !ok {
			return true
		}
		if csum.ambient {
			sum.ambient = true
		}
		for j := range csum.byParam {
			if j < len(call.Args) {
				o, i := fc.origin(call.Args[j])
				add(o, i)
			}
		}
		for j := range csum.byState {
			if t := spawnTarget(call, j); t != nil {
				o, i := fc.classifyCarrier(t)
				add(o, i)
			}
		}
		return true
	})
	return sum
}

// spawnTarget resolves the expression carrying a callee's byState budget
// at a call site: the receiver expression for -1, the argument otherwise.
func spawnTarget(call *ast.CallExpr, j int) ast.Expr {
	if j == -1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if j >= 0 && j < len(call.Args) {
		return call.Args[j]
	}
	return nil
}

// checkRegionBody walks one region callback and flags unthreaded nested
// parallelism, direct or transitive through summarized callees.
func checkRegionBody(pass *Pass, fc *spawnFuncContext, summaries map[*types.Func]spawnSummary, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRegionSpawner(pass.Info, call) {
			switch o, _ := fc.origin(call.Args[0]); o {
			case originSplit, originSerial:
			default:
				pass.Reportf(call.Args[0].Pos(),
					"nested parallel region inside a parallel callback must run on a Split-derived budget, not the full worker count")
			}
			return true
		}
		obj := funcObj(pass.Info, call.Fun)
		if obj == nil {
			return true
		}
		sum, ok := summaries[obj]
		if !ok {
			return true
		}
		if sum.ambient {
			pass.Reportf(call.Pos(),
				"%s spawns a parallel region from ambient state; calling it inside a parallel callback oversubscribes the pool — thread a Split budget through a parameter",
				obj.Name())
			return true
		}
		for _, i := range sortedInts(sum.byParam) {
			if i >= len(call.Args) {
				continue
			}
			switch o, _ := fc.origin(call.Args[i]); o {
			case originSplit, originSerial:
			default:
				pass.Reportf(call.Args[i].Pos(),
					"%s runs a parallel region keyed by this argument; inside a parallel callback it must be Split-derived, not the full worker count",
					obj.Name())
			}
		}
		for _, j := range sortedInts(sum.byState) {
			t := spawnTarget(call, j)
			if t == nil {
				continue
			}
			switch o, _ := fc.classifyCarrier(t); o {
			case originSplit, originSerial:
			default:
				pass.Reportf(t.Pos(),
					"%s spawns a parallel region from ambient state it carries; inside a parallel callback its Workers budget must be configured Split-derived before the call",
					obj.Name())
			}
		}
		return true
	})
}

// sortedInts returns the map's keys in ascending order, for
// deterministic report order.
func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
