package analysis

import (
	"go/ast"
	"go/types"
)

// Splitbudget guards against nested worker-pool oversubscription — the
// bug class fixed in the fleet harness: an inner parallel.For inside a
// callback that is already running under an outer parallel region, with
// the inner call handed the full worker budget. On a W-core box that
// schedules W×W goroutines of CPU-bound work, wrecking cache locality
// and (worse) hiding determinism bugs behind scheduling noise.
//
// The rule: inside a function literal passed to a parallel region
// spawner (For or ForChunked), any further region must run on a budget
// threaded through parallel.Split:
//
//   - a directly nested For/ForChunked call's workers argument must be
//     an identifier assigned from Split (or the literal 1, which is
//     explicitly serial);
//   - a call to a same-package function that spawns a region keyed by
//     one of its own parameters must receive a Split-derived value (or
//     1) in that position;
//   - a call to a same-package function that spawns a region from
//     ambient state (a config field, a receiver) is flagged outright —
//     there is no way to thread a budget into it, which is the defect.
//
// Summaries are one hop and same-package, like poolown's: a region
// hidden behind a cross-package call is invisible, so keep spawning
// decisions close to the region they feed. The Split test is lenient on
// purpose: an identifier qualifies if any assignment in the enclosing
// function draws it from Split, so a documented escape hatch that
// re-assigns the budget (the fleet Uncapped knob) stays clean without a
// suppression.
var Splitbudget = &Analyzer{
	Name: "splitbudget",
	Doc:  "nested parallel regions must thread a Split worker budget",
	Run:  runSplitbudget,
}

// spawnSummary records how a function spawns parallel regions: by which
// of its own parameters (budget can be threaded in), or from ambient
// state (it cannot).
type spawnSummary struct {
	byParam map[int]bool
	ambient bool
}

// workerOrigin classifies the provenance of a workers argument.
type workerOrigin int

const (
	originOther  workerOrigin = iota
	originParam               // an enclosing function's own parameter
	originSplit               // assigned from parallel.Split
	originSerial              // the literal 1: explicitly serial
)

func runSplitbudget(pass *Pass) {
	summaries := collectSpawnSummaries(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fc := newSpawnFuncContext(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				lit := regionCallback(pass.Info, call)
				if lit == nil {
					return true
				}
				checkRegionBody(pass, fc, summaries, lit)
				return true
			})
		}
	}
}

// isRegionSpawner reports whether the call starts a parallel region: a
// callee named For or ForChunked taking a workers count first.
func isRegionSpawner(info *types.Info, call *ast.CallExpr) bool {
	obj := funcObj(info, call.Fun)
	if obj == nil {
		return false
	}
	return (obj.Name() == "For" || obj.Name() == "ForChunked") && len(call.Args) >= 3
}

// regionCallback returns the function-literal callback of a region
// spawning call, or nil.
func regionCallback(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	if !isRegionSpawner(info, call) {
		return nil
	}
	lit, _ := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return lit
}

// spawnFuncContext caches per-FuncDecl facts: its parameter objects and
// the identifiers assigned from Split anywhere in its body.
type spawnFuncContext struct {
	pass       *Pass
	params     map[types.Object]int
	splitAlias map[types.Object]bool
}

func newSpawnFuncContext(pass *Pass, fd *ast.FuncDecl) *spawnFuncContext {
	fc := &spawnFuncContext{
		pass:       pass,
		params:     make(map[types.Object]int),
		splitAlias: make(map[types.Object]bool),
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					fc.params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			obj := funcObj(pass.Info, call.Fun)
			if obj == nil || obj.Name() != "Split" {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if v := pass.Info.Defs[id]; v != nil {
					fc.splitAlias[v] = true
				} else if v := pass.Info.Uses[id]; v != nil {
					fc.splitAlias[v] = true
				}
			}
		}
		return true
	})
	return fc
}

// origin classifies one workers expression within the function.
func (fc *spawnFuncContext) origin(e ast.Expr) workerOrigin {
	e = ast.Unparen(e)
	if lit, ok := e.(*ast.BasicLit); ok {
		if lit.Value == "1" {
			return originSerial
		}
		return originOther
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if obj := funcObj(fc.pass.Info, call.Fun); obj != nil && obj.Name() == "Split" {
			return originSplit
		}
		return originOther
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return originOther
	}
	obj := fc.pass.Info.Uses[id]
	if obj == nil {
		return originOther
	}
	if fc.splitAlias[obj] {
		return originSplit
	}
	if _, isParam := fc.params[obj]; isParam {
		return originParam
	}
	return originOther
}

// collectSpawnSummaries builds the one-hop spawn summaries of every
// function declared in the package.
func collectSpawnSummaries(pass *Pass) map[*types.Func]spawnSummary {
	out := make(map[*types.Func]spawnSummary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fc := newSpawnFuncContext(pass, fd)
			sum := spawnSummary{byParam: make(map[int]bool)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRegionSpawner(pass.Info, call) {
					return true
				}
				switch fc.origin(call.Args[0]) {
				case originParam:
					id := ast.Unparen(call.Args[0]).(*ast.Ident)
					sum.byParam[fc.params[pass.Info.Uses[id]]] = true
				case originSplit, originSerial:
					// Budget-disciplined internally; nothing to thread.
				default:
					sum.ambient = true
				}
				return true
			})
			if len(sum.byParam) > 0 || sum.ambient {
				out[obj] = sum
			}
		}
	}
	return out
}

// checkRegionBody walks one region callback and flags unthreaded nested
// parallelism, directly or one call deep.
func checkRegionBody(pass *Pass, fc *spawnFuncContext, summaries map[*types.Func]spawnSummary, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRegionSpawner(pass.Info, call) {
			switch fc.origin(call.Args[0]) {
			case originSplit, originSerial:
			default:
				pass.Reportf(call.Args[0].Pos(),
					"nested parallel region inside a parallel callback must run on a Split-derived budget, not the full worker count")
			}
			return true
		}
		obj := funcObj(pass.Info, call.Fun)
		if obj == nil {
			return true
		}
		sum, ok := summaries[obj]
		if !ok {
			return true
		}
		if sum.ambient {
			pass.Reportf(call.Pos(),
				"%s spawns a parallel region from ambient state; calling it inside a parallel callback oversubscribes the pool — thread a Split budget through a parameter",
				obj.Name())
			return true
		}
		for i := range sum.byParam {
			if i >= len(call.Args) {
				continue
			}
			switch fc.origin(call.Args[i]) {
			case originSplit, originSerial:
			default:
				pass.Reportf(call.Args[i].Pos(),
					"%s runs a parallel region keyed by this argument; inside a parallel callback it must be Split-derived, not the full worker count",
					obj.Name())
			}
		}
		return true
	})
}
