package analysis

// Tests for the loop-structure layer shared by the perf analyzers: the
// built-in hot-package list, the //hot directive, and the path-dependent
// activation the fixture files cannot express on their own (their import
// path is fixed by the harness).

import (
	"strings"
	"testing"
)

func TestIsHotPackagePath(t *testing.T) {
	cases := []struct {
		path string
		hot  bool
	}{
		{"inframe/internal/core", true},
		{"inframe/internal/camera", true},
		{"inframe/internal/frame", true},
		{"inframe/internal/waveform", true},
		{"inframe/internal/hvs", true},
		{"inframe/internal/parallel", true},
		{"inframe/internal/display", false},
		{"inframe/internal/metrics", false},
		{"inframe/cmd/inframe-bench", false},
		{"inframe/internal/core/sub", false}, // only the package itself, not children
		{"hotalloc", false},                  // fixture paths are cold by default
	}
	for _, c := range cases {
		if got := isHotPackagePath(c.path); got != c.hot {
			t.Errorf("isHotPackagePath(%q) = %v, want %v", c.path, got, c.hot)
		}
	}
}

// TestHotPathActivation pins that hotness follows the import path: the
// hotalloc fixture's NotHotScratch function (no //hot directive) is clean
// under the fixture's own path but flagged when the same sources are loaded
// as a built-in hot package.
func TestHotPathActivation(t *testing.T) {
	a := analyzerByName(t, "hotalloc")

	fset, pkg, _ := loadFixture(t, "hotalloc", "inframe/internal/core")
	var hit bool
	for _, d := range RunPackage(fset, pkg, []*Analyzer{a}) {
		if strings.Contains(d.Message, "NotHotScratch") {
			hit = true
		}
	}
	if !hit {
		t.Error("NotHotScratch not flagged under a built-in hot package path")
	}

	fset, pkg, _ = loadFixture(t, "hotalloc", "hotalloc")
	for _, d := range RunPackage(fset, pkg, []*Analyzer{a}) {
		if strings.Contains(d.Message, "NotHotScratch") {
			t.Errorf("NotHotScratch flagged under a cold path: %s", d)
		}
	}
}
