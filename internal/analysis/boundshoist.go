package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundsHoistAnalyzer enforces the repo's row-slice idiom in hot innermost
// loops. The flat-pixel layout indexes as f.Pix[y*f.W+x]; when the inner
// loop walks x, the y*f.W product — and the bounds check it feeds — is
// recomputed on every iteration. Hoisting a row slice
// (`row := f.Pix[y*f.W : (y+1)*f.W]`) or a row base (`base := y * f.W`)
// does the multiply once per row and lets the compiler prove the inner
// bounds check away. mux.go and the measurement loops in demux.go already
// follow the idiom; this analyzer keeps new per-pixel code on it.
//
// A report fires for an index expression inside a hot innermost loop when:
//
//   - the index contains a multiply, divide or modulo subexpression that is
//     loop-invariant (the row term, e.g. y*f.W with x as the loop variable,
//     or the chessboard phase y/ps); integer division costs 20–40 cycles
//     where the multiply costs 3, so an invariant / or % in an index is the
//     more expensive miss;
//   - the full index is NOT loop-invariant (so the expression really is
//     evaluated every iteration with only part of it changing);
//   - the indexed base is loop-invariant (hoisting a row view is sound).
//
// Reports are deduplicated per loop and row term: ten uses of f.Pix[y*w+x]
// in one loop body are one finding, not ten.
var BoundsHoistAnalyzer = &Analyzer{
	Name: "boundshoist",
	Doc:  "hoist loop-invariant row offsets (x[i*stride+j]) out of hot innermost loops into row slices",
	Run:  runBoundsHoist,
}

func runBoundsHoist(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		if !fn.hot {
			continue
		}
		for _, loop := range fn.loops {
			if !loop.innermost() {
				continue
			}
			seen := make(map[string]bool)
			inspectLoop(loop.body(), func(n ast.Node) {
				ix, ok := n.(*ast.IndexExpr)
				if !ok {
					return
				}
				checkIndexExpr(pass, fn, loop, ix, seen)
			})
		}
	}
}

// checkIndexExpr reports ix when its index mixes a loop-invariant multiply
// with a loop-variant remainder over an invariant base.
func checkIndexExpr(pass *Pass, fn *funcLoops, loop *loopNode, ix *ast.IndexExpr, seen map[string]bool) {
	// Only slice/array/string indexing has bounds checks worth hoisting;
	// map access and generic instantiation do not apply.
	if t := pass.Info.Types[ix.X].Type; t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
		default:
			return
		}
	}
	if loopInvariant(pass.Info, ix.Index, loop) {
		return // whole index is invariant: nothing varies per iteration
	}
	if !loopInvariant(pass.Info, ix.X, loop) {
		return // base changes too: a hoisted row view would be stale
	}
	sub := invariantArith(pass.Info, ix.Index, loop)
	if sub == nil {
		return
	}
	key := types.ExprString(sub)
	if seen[key] {
		return
	}
	seen[key] = true
	switch sub.Op {
	case token.QUO, token.REM:
		pass.Reportf(ix.Pos(), "index recomputes loop-invariant division %s every iteration of a hot innermost loop in %s (integer divide is 20-40 cycles); hoist it before the loop", key, fn.name)
	default:
		pass.Reportf(ix.Pos(), "index recomputes loop-invariant offset %s every iteration of a hot innermost loop in %s; hoist a row slice or row base before the loop", key, fn.name)
	}
}

// invariantArith finds a multiply, divide or modulo subexpression of e that
// is invariant with respect to loop (the hoistable row term or phase
// divide), or nil. Divides win over multiplies when both appear: they are
// the costlier recomputation, so the diagnostic names them.
func invariantArith(info *types.Info, e ast.Expr, loop *loopNode) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.MUL, token.QUO, token.REM:
		default:
			return true
		}
		if !loopInvariant(info, be, loop) {
			return true
		}
		if found == nil || (found.Op == token.MUL && be.Op != token.MUL) {
			found = be
		}
		// Keep walking: a nested divide inside this subtree should win.
		return be.Op == token.MUL
	})
	return found
}
