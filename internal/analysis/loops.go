package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the loop-structure layer under the perf analyzer pack
// (hotalloc, preallocate, deferloop, loopinvariant, boundshoist): it turns
// each function into a forest of loop nests with enough semantic
// information — which functions are hot, which loops are innermost, which
// objects a loop assigns, which expressions are loop-invariant — for the
// analyzers to stay intraprocedural, precise and fast.
//
// Hotness. InFrame's real-time budget concentrates in the per-pixel and
// per-Block loops of the mux/camera/demux pipeline, so the perf analyzers
// only fire inside *hot* functions. A function is hot when
//
//   - its package is on the built-in hot list (the pipeline packages whose
//     loops run per displayed or captured frame), or
//   - its doc comment carries a //hot directive, or
//   - its package doc carries a //hot directive (every function in the
//     file set is hot).
//
// The //hot convention lets latency-critical code outside the built-in
// list (e.g. display.RowAverage) opt into the same scrutiny. The canonical
// spelling is `//hot:<why>` with no space after the colon — that is the
// directive-comment form gofmt preserves verbatim; a bare `//hot` is also
// recognized but gofmt reformats it into prose.

// hotPackages are the path elements under internal/ whose packages are hot
// by construction: every displayed frame is muxed and every capture demuxed
// through their loops at 30–120 Hz.
var hotPackages = []string{"core", "camera", "frame", "waveform", "hvs", "parallel", "fixed"}

// isHotPackagePath reports whether the import path names a built-in hot
// package.
func isHotPackagePath(path string) bool {
	for _, name := range hotPackages {
		if strings.HasSuffix(path, "internal/"+name) {
			return true
		}
	}
	return false
}

// hasHotDirective reports whether the comment group contains a //hot line
// (canonically "//hot:<why>", the gofmt-stable directive form; bare "//hot"
// is tolerated).
func hasHotDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := c.Text
		if text == "//hot" || strings.HasPrefix(text, "//hot ") || strings.HasPrefix(text, "//hot:") {
			return true
		}
	}
	return false
}

// loopNode is one for/range statement in a function's loop forest.
type loopNode struct {
	// stmt is the *ast.ForStmt or *ast.RangeStmt.
	stmt ast.Stmt
	// parent is the enclosing loop in the same function, nil for top level.
	parent *loopNode
	// children are the directly nested loops (not crossing func literals).
	children []*loopNode
	// assigned holds every object assigned anywhere inside the loop,
	// including the loop variables themselves and the base variables of
	// indexed/field/pointer assignment targets (conservative: a mutated
	// container makes expressions over it variant).
	assigned map[types.Object]bool
}

// innermost reports whether the loop contains no nested loop.
func (l *loopNode) innermost() bool { return len(l.children) == 0 }

// body returns the loop body block.
func (l *loopNode) body() *ast.BlockStmt {
	switch s := l.stmt.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// funcLoops is one function — declaration or literal — with its loop forest.
type funcLoops struct {
	// name labels diagnostics ("DecodeScores", "func literal in Frame").
	name string
	// hot reports whether the perf analyzers should inspect this function.
	hot bool
	// body is the function's block, the scope for declaration lookups.
	body *ast.BlockStmt
	// loops lists every loop in the function in source order.
	loops []*loopNode
}

// collectHotFuncs builds the loop forest of every function in the package,
// resolving hotness from the built-in package list and //hot directives.
// Function literals become their own entries (their loops run on a separate
// frame), inheriting the enclosing function's hotness.
func collectHotFuncs(pass *Pass) []*funcLoops {
	pkgHot := isHotPackagePath(pass.Path)
	if !pkgHot {
		for _, f := range pass.Files {
			if hasHotDirective(f.Doc) {
				pkgHot = true
				break
			}
		}
	}
	var out []*funcLoops
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hot := pkgHot || hasHotDirective(fd.Doc)
			buildFuncLoops(pass.Info, fd.Name.Name, hot, fd.Body, &out)
		}
	}
	return out
}

// buildFuncLoops walks one function body, appending its funcLoops entry (and
// those of any nested literals) to out.
func buildFuncLoops(info *types.Info, name string, hot bool, body *ast.BlockStmt, out *[]*funcLoops) {
	fn := &funcLoops{name: name, hot: hot, body: body}
	*out = append(*out, fn)
	var walk func(n ast.Node, cur *loopNode)
	walk = func(n ast.Node, cur *loopNode) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			buildFuncLoops(info, "func literal in "+name, hot, n.Body, out)
			return
		case *ast.ForStmt:
			node := &loopNode{stmt: n, parent: cur}
			fn.loops = append(fn.loops, node)
			if cur != nil {
				cur.children = append(cur.children, node)
			}
			// Init runs once: it belongs to the enclosing scope.
			walk(n.Init, cur)
			walk(n.Cond, node)
			walk(n.Post, node)
			walk(n.Body, node)
			collectAssigned(info, n, node)
			return
		case *ast.RangeStmt:
			node := &loopNode{stmt: n, parent: cur}
			fn.loops = append(fn.loops, node)
			if cur != nil {
				cur.children = append(cur.children, node)
			}
			// The ranged expression is evaluated once, before iteration.
			walk(n.X, cur)
			walk(n.Body, node)
			collectAssigned(info, n, node)
			return
		}
		for _, c := range children(n) {
			walk(c, cur)
		}
	}
	walk(body, nil)
}

// children returns the direct AST children of n (ast.Inspect with depth 1).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			depth--
			return true
		}
		depth++
		if depth == 1 {
			return true
		}
		out = append(out, m)
		return false
	})
	return out
}

// collectAssigned records every object assigned anywhere inside the loop
// statement (including its init/range clause and nested function literals)
// into node.assigned.
func collectAssigned(info *types.Info, loop ast.Stmt, node *loopNode) {
	node.assigned = make(map[types.Object]bool)
	record := func(e ast.Expr) {
		// Peel the target down to the variable whose contents change:
		// x, x.f, x[i], *x all mark x as assigned.
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.Ident:
				if obj := info.Defs[t]; obj != nil {
					node.assigned[obj] = true
				}
				if obj := info.Uses[t]; obj != nil {
					node.assigned[obj] = true
				}
				return
			case *ast.SelectorExpr:
				e = t.X
			case *ast.IndexExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			default:
				return
			}
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key)
			}
			if n.Value != nil {
				record(n.Value)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				record(n.X) // address taken: assume the callee mutates it
			}
		}
		return true
	})
}

// loopInvariant reports whether e evaluates to the same value on every
// iteration of loop: it mentions no object the loop assigns, receives from
// no channel, and calls only known-pure functions.
func loopInvariant(info *types.Info, e ast.Expr, loop *loopNode) bool {
	inv := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && loop.assigned[obj] {
				inv = false
			}
			if obj := info.Defs[n]; obj != nil && loop.assigned[obj] {
				inv = false
			}
		case *ast.CallExpr:
			if !isPureCall(info, n) {
				inv = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				inv = false // channel receive
			}
		case *ast.FuncLit:
			inv = false // closures capture loop state
		}
		return inv
	})
	return inv
}

// pureHelperNames are the repo's known-pure frame/waveform/layout helpers:
// pure arithmetic over their receiver and arguments, no observable state.
// The list is matched by name for functions defined in module-internal hot
// packages (or the caller's own package, which is what fixture packages
// exercise).
var pureHelperNames = map[string]bool{
	// core.Layout geometry.
	"NumBlocks": true, "NumGOBs": true, "GOBsX": true, "GOBsY": true,
	"BlocksPerGOB": true, "DataBitsPerFrame": true, "BlockPx": true,
	"MarginX": true, "MarginY": true, "BlockRect": true, "GOBBlocks": true,
	// core chessboard phase.
	"ChessOn": true,
	// waveform.Shape envelopes.
	"Up": true, "Down": true, "Between": true,
	// timing helpers.
	"FramePeriod": true, "DataFramePeriod": true, "FrameDuration": true,
}

// isPureCall reports whether the call cannot observe or mutate state the
// loop changes: len/cap builtins, package math functions, and the curated
// pure repo helpers.
func isPureCall(info *types.Info, call *ast.CallExpr) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name() == "len" || b.Name() == "cap"
		}
	}
	obj := funcObj(info, call.Fun)
	if obj == nil {
		return false
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "math" {
		return true
	}
	return isPureHelper(obj)
}

// isPureHelper reports whether obj is one of the curated pure helpers.
func isPureHelper(obj *types.Func) bool {
	return pureHelperNames[obj.Name()]
}
