package analysis

import "go/ast"

// DeferLoopAnalyzer flags defer statements inside loops. Deferred calls do
// not run until the function returns, so a defer in a loop accumulates one
// pending call per iteration — unbounded memory in long loops, and resources
// (files, locks) held far past their useful life. In the pipeline's per-frame
// loops that latency is the product, so the check applies module-wide, not
// just to hot functions.
//
// Function literals are their own functions: a defer at the top level of a
// closure body runs when the closure returns, even when the closure sits
// inside a loop. That is exactly the worker idiom in internal/parallel
// (`go func() { defer wg.Done() ... }`), which stays clean.
var DeferLoopAnalyzer = &Analyzer{
	Name: "deferloop",
	Doc:  "forbid defer inside a loop body (deferred calls pile up until the function returns)",
	Run:  runDeferLoop,
}

func runDeferLoop(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		for _, loop := range fn.loops {
			inspectLoop(loop.body(), func(n ast.Node) {
				ds, ok := n.(*ast.DeferStmt)
				if !ok {
					return
				}
				// Nested loops revisit the same defer; report it only for
				// the innermost loop that contains it.
				if ownedByChildLoop(loop, ds) {
					return
				}
				pass.Reportf(ds.Pos(), "defer inside a loop runs only when %s returns; the pending calls pile up one per iteration", fn.name)
			})
		}
	}
}

// ownedByChildLoop reports whether stmt falls inside one of loop's nested
// loops (which will report it itself).
func ownedByChildLoop(loop *loopNode, stmt ast.Stmt) bool {
	for _, child := range loop.children {
		if child.stmt.Pos() <= stmt.Pos() && stmt.End() <= child.stmt.End() {
			return true
		}
	}
	return false
}
