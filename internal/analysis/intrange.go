package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Intrange is the overflow gate for the float→fixed-point cutover
// (ROADMAP item 2): interval analysis over integer arithmetic in hot
// code, riding the same bounded path engine as poolown. For every
// function in scope it tracks a [lo, hi] interval per numeric variable,
// narrows intervals through branch conditions (the engine's branch hook),
// widens loop-carried growth by the loop's trip bound, and then demands
// proof at the points where fixed-point arithmetic wraps:
//
//   - a conversion to a sized integer type (uint8/int8/.../int32) must
//     have an operand interval provably inside the target's range —
//     "tested at a few sample values" is exactly what this replaces;
//   - arithmetic stored into a sized integer location must provably fit;
//   - for 64-bit targets only a definite overflow (an interval entirely
//     outside the type) is reported, so plain int accumulators stay
//     quiet while still being checked.
//
// The interprocedural seam is the //range contract directive on a
// function's doc comment:
//
//	//range:<param> <lo>,<hi>
//
// which (a) seeds the parameter's interval inside the function and
// (b) obliges every call site in scope to prove its argument stays in
// the declared range. Contracts are collected module-wide by the summary
// engine, so a camera-package caller is held to a frame-package
// contract. Scope is where fixed-point math lives: the hot packages,
// //hot-marked functions, quant*/clamp* helpers, and any contracted
// function. Comparisons against NaN are outside this domain (floateq
// owns NaN discipline); intervals model the numeric axis only.
var Intrange = &Analyzer{
	Name: "intrange",
	Doc:  "integer narrowing and accumulation in hot code must provably not overflow",
	Run:  runIntrange,
}

// maxTrips is the abstract trip count used to widen loop-carried growth
// when no tighter bound is provable: 2^48 iterations overflows every
// sized type with any per-iteration growth, while a per-iteration delta
// of realistic size keeps an int64 accumulator comfortably inside its
// range — which is the distinction the analyzer exists to draw.
const maxTrips = float64(1 << 48)

// rangeContract is the parsed //range contract of one function: declared
// intervals per parameter index.
type rangeContract struct {
	byParam map[int]interval
	names   map[int]string
}

// contractDiag is one malformed //range directive, reported when the
// analyzer visits the declaring package.
type contractDiag struct {
	pos token.Pos
	msg string
}

const rangeDirective = "//range:"

// collectRangeContracts parses //range directives on every function
// declaration of the module into the shared summary set.
func collectRangeContracts(s *moduleSummaries, fset *token.FileSet, pkgs []*Package) {
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if !strings.HasPrefix(c.Text, rangeDirective) {
						continue
					}
					if msg := parseRangeDirective(s, pkg, fd, c); msg != "" {
						s.contractDiags[pkg.Path] = append(s.contractDiags[pkg.Path],
							contractDiag{pos: c.Pos(), msg: msg})
					}
				}
			}
		}
	}
}

// parseRangeDirective parses one //range comment into the contract map,
// returning a diagnostic message when malformed.
func parseRangeDirective(s *moduleSummaries, pkg *Package, fd *ast.FuncDecl, c *ast.Comment) string {
	const usage = `malformed //range directive: want "//range:<param> <lo>,<hi>"`
	// Fields past the bounds are free-form annotation ("//range:v 0,255
	// pixels"); only the first two carry the contract.
	fields := strings.Fields(strings.TrimPrefix(c.Text, rangeDirective))
	if len(fields) < 2 {
		return usage
	}
	bounds := strings.SplitN(fields[1], ",", 2)
	if len(bounds) != 2 {
		return usage
	}
	lo, err1 := strconv.ParseFloat(bounds[0], 64)
	hi, err2 := strconv.ParseFloat(bounds[1], 64)
	if err1 != nil || err2 != nil {
		return usage
	}
	if lo > hi {
		return fmt.Sprintf("//range contract on %s is empty: lo %s exceeds hi %s", fields[0], bounds[0], bounds[1])
	}
	idx, found := -1, false
	pos := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if name.Name == fields[0] {
					idx, found = pos, true
				}
				pos++
			}
			if len(field.Names) == 0 {
				pos++
			}
		}
	}
	if !found {
		return fmt.Sprintf("//range directive names no parameter %q of %s", fields[0], fd.Name.Name)
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	ct := s.contracts[fn]
	if ct.byParam == nil {
		ct = rangeContract{byParam: make(map[int]interval), names: make(map[int]string)}
	}
	ct.byParam[idx] = interval{lo, hi}
	ct.names[idx] = fields[0]
	s.contracts[fn] = ct
	return ""
}

func runIntrange(pass *Pass) {
	for _, d := range pass.contractDiagsFor() {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	contracts := pass.rangeContracts()
	hotPkg := isHotPackagePath(pass.Path)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			ct, contracted := contracts[fn]
			if !hotPkg && !hasHotDirective(fd.Doc) && !isClampHelper(fd.Name.Name) && !contracted {
				continue
			}
			scanIntrangeUnit(pass, contracts, fd.Body, intrangeEntry(pass.Info, fd, ct))
			// Function literals are their own scan units: their bodies run
			// under schedules the enclosing path walk does not model, so
			// captured variables are held at type bounds rather than
			// path-refined values.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					scanIntrangeUnit(pass, contracts, lit.Body, map[*types.Var]interval{})
				}
				return true
			})
		}
	}
}

// intrangeEntry builds the entry state: contracted parameters seeded
// with their declared interval (met with the type's own range).
func intrangeEntry(info *types.Info, fd *ast.FuncDecl, ct rangeContract) map[*types.Var]interval {
	vars := make(map[*types.Var]interval)
	if fd.Type.Params == nil || len(ct.byParam) == 0 {
		return vars
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if iv, ok := ct.byParam[pos]; ok {
				if v, ok := info.Defs[name].(*types.Var); ok {
					vars[v] = iv.intersect(typeInterval(v.Type()))
				}
			}
			pos++
		}
		if len(field.Names) == 0 {
			pos++
		}
	}
	return vars
}

// irState is the abstract store: intervals for the variables narrowed by
// assignment, contract, or branch. Anything absent falls back to its
// static type's range at evaluation time.
type irState struct {
	vars map[*types.Var]interval
}

// irScan is one scan unit (a function body or a function literal body).
type irScan struct {
	pass      *Pass
	contracts map[*types.Func]rangeContract
	findings  map[string]contractDiag
	bailed    bool
	// loopSpans are the source ranges of the unit's loop bodies, and
	// divCands the shift-vs-divide candidates found inside them: a signed
	// division by a power-of-two constant whose operand stayed provably
	// non-negative on every abstract path (nonneg is ANDed across
	// evaluations, so one path with a possibly-negative operand withdraws
	// the candidate — the signed fixup would then be load-bearing).
	loopSpans []posSpan
	divCands  map[token.Pos]*divCand
}

type posSpan struct{ lo, hi token.Pos }

type divCand struct {
	msg    string
	nonneg bool
}

// collectLoopSpans records the body extents of every for/range statement in
// the unit, skipping function literals (separate scan units).
func collectLoopSpans(body *ast.BlockStmt) []posSpan {
	var spans []posSpan
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			spans = append(spans, posSpan{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, posSpan{s.Body.Pos(), s.Body.End()})
		}
		return true
	})
	return spans
}

func (u *irScan) inLoop(pos token.Pos) bool {
	for _, s := range u.loopSpans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}

// noteShiftDivide records (or withdraws) a shift-vs-divide candidate for a
// QUO expression: signed integer type, constant power-of-two divisor ≥ 2,
// inside a loop. The Go compiler cannot shift a signed division unless it
// proves the operand non-negative, which it rarely can across slice loads;
// when this interval engine can, the branchless-but-longer fixup sequence
// is avoidable with >> or an unsigned operand.
func (u *irScan) noteShiftDivide(x *ast.BinaryExpr, a interval, st *irState) {
	t := u.exprType(x)
	if t == nil || !isIntegerType(t) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsUnsigned != 0 {
		return // unsigned already compiles to a plain shift
	}
	tv, ok := u.pass.Info.Types[x.Y]
	if !ok || tv.Value == nil {
		return
	}
	c, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || c < 2 || c&(c-1) != 0 {
		return
	}
	if !u.inLoop(x.Pos()) {
		return
	}
	cand := u.divCands[x.Pos()]
	if cand == nil {
		shift := 0
		for v := c; v > 1; v >>= 1 {
			shift++
		}
		cand = &divCand{nonneg: true, msg: fmt.Sprintf(
			"signed division by %d in a loop with a provably non-negative operand; shift right by %d (or use an unsigned type) to skip the negative-rounding fixup",
			c, shift)}
		u.divCands[x.Pos()] = cand
	}
	if !(a.lo >= 0) {
		cand.nonneg = false
	}
}

func scanIntrangeUnit(pass *Pass, contracts map[*types.Func]rangeContract, body *ast.BlockStmt, entry map[*types.Var]interval) {
	u := &irScan{
		pass: pass, contracts: contracts, findings: make(map[string]contractDiag),
		loopSpans: collectLoopSpans(body), divCands: make(map[token.Pos]*divCand),
	}
	init := &irState{vars: entry}
	execPaths(body, init, pathHooks{
		copy: func(st pathState) pathState {
			s := st.(*irState)
			c := &irState{vars: make(map[*types.Var]interval, len(s.vars))}
			for v, iv := range s.vars {
				c.vars[v] = iv
			}
			return c
		},
		key: func(st pathState) string {
			return sortedVarNames(st.(*irState).vars, func(v *types.Var, iv interval) string {
				return fmt.Sprintf("%d=%s", v.Pos(), iv.fingerprint())
			})
		},
		stmt: func(s ast.Stmt, st pathState) { u.execStmt(s, st.(*irState)) },
		cond: func(e ast.Expr, st pathState) { u.checkExprs(e, st.(*irState)) },
		branch: func(cond ast.Expr, taken bool, st pathState) {
			u.refine(cond, taken, st.(*irState))
		},
		exit: func(ret *ast.ReturnStmt, end token.Pos, st pathState) {},
		loopBack: func(loop ast.Stmt, entry any, st pathState) {
			u.widen(loop, entry.(map[*types.Var]interval), st.(*irState))
		},
		snapshot: func(st pathState) any {
			s := st.(*irState)
			snap := make(map[*types.Var]interval, len(s.vars))
			for v, iv := range s.vars {
				snap[v] = iv
			}
			return snap
		},
		bail: func() { u.bailed = true },
	})
	if u.bailed {
		return
	}
	for pos, cand := range u.divCands {
		if cand.nonneg {
			u.findings[fmt.Sprintf("%d|%s", pos, cand.msg)] = contractDiag{pos: pos, msg: cand.msg}
		}
	}
	keys := make([]string, 0, len(u.findings))
	for k := range u.findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]contractDiag, 0, len(keys))
	for _, k := range keys {
		out = append(out, u.findings[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	for _, d := range out {
		pass.Reportf(d.pos, "%s", d.msg)
	}
}

func (u *irScan) flag(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	u.findings[fmt.Sprintf("%d|%s", pos, msg)] = contractDiag{pos: pos, msg: msg}
}

// execStmt interprets one leaf statement: run the expression checks with
// the pre-state, then apply the statement's effect on the store.
func (u *irScan) execStmt(s ast.Stmt, st *irState) {
	// A RangeStmt arrives as the key/value clause only; its body statements
	// are path-executed separately, so only the ranged operand is checked
	// here.
	if r, ok := s.(*ast.RangeStmt); ok {
		u.checkExprs(r.X, st)
		u.execRangeClause(r, st)
		return
	}
	u.checkExprs(s, st)
	switch s := s.(type) {
	case *ast.AssignStmt:
		u.execAssign(s, st)
	case *ast.IncDecStmt:
		one := interval{1, 1}
		iv := u.eval(s.X, st)
		if s.Tok == token.INC {
			iv = iv.add(one)
		} else {
			iv = iv.sub(one)
		}
		u.store(s.X, iv, s.Pos(), st)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v, ok := u.pass.Info.Defs[name].(*types.Var)
				if !ok || !isNumericType(v.Type()) {
					continue
				}
				switch {
				case len(vs.Values) == len(vs.Names):
					u.store(name, u.eval(vs.Values[i], st), name.Pos(), st)
				case len(vs.Values) == 0:
					// Zero value.
					st.vars[v] = interval{0, 0}
				default:
					st.vars[v] = typeInterval(v.Type())
				}
			}
		}
	}
}

func (u *irScan) execAssign(s *ast.AssignStmt, st *irState) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Rhs {
			iv := u.eval(s.Rhs[i], st)
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				iv = u.compound(s.Tok, u.eval(s.Lhs[i], st), iv)
			}
			u.store(s.Lhs[i], iv, s.Rhs[i].Pos(), st)
		}
		return
	}
	// Multi-value assignment: results of a call, map read, type assert —
	// nothing provable beyond the static types.
	for _, lhs := range s.Lhs {
		if v, ok := u.lhsVar(lhs); ok {
			st.vars[v] = typeInterval(v.Type())
		}
	}
}

// compound folds an op= token over the old and new value intervals.
func (u *irScan) compound(tok token.Token, old, rhs interval) interval {
	switch tok {
	case token.ADD_ASSIGN:
		return old.add(rhs)
	case token.SUB_ASSIGN:
		return old.sub(rhs)
	case token.MUL_ASSIGN:
		return old.mul(rhs)
	case token.QUO_ASSIGN:
		return old.div(rhs)
	case token.REM_ASSIGN:
		return old.rem(rhs)
	case token.SHL_ASSIGN:
		return old.shl(rhs)
	case token.SHR_ASSIGN:
		return old.shr(rhs)
	case token.AND_ASSIGN:
		return old.and(rhs)
	}
	return topInterval()
}

// store checks iv against the destination's integer range and records the
// post-store interval (clipped to the type, which is what the location
// actually holds).
func (u *irScan) store(lhs ast.Expr, iv interval, pos token.Pos, st *irState) {
	t := u.exprType(lhs)
	if t != nil {
		bounds, sized, isInt := intTargetBounds(t)
		if isInt && sized && !iv.within(bounds) {
			u.flag(pos, "cannot prove value stored into %s stays in %s (computed range %s); guard the arithmetic or declare a //range contract",
				t.String(), renderInterval(bounds), renderInterval(iv))
		} else if isInt && !sized && iv.disjoint(bounds) {
			u.flag(pos, "value stored into %s provably overflows: computed range %s lies entirely outside %s",
				t.String(), renderInterval(iv), renderInterval(bounds))
		}
		if isInt {
			iv = iv.intersect(bounds)
		}
	}
	if v, ok := u.lhsVar(lhs); ok && isNumericType(v.Type()) {
		st.vars[v] = iv
	}
}

// lhsVar resolves an assignment target to a plain local/package variable
// object; selector, index and deref targets are not tracked.
func (u *irScan) lhsVar(lhs ast.Expr) (*types.Var, bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if v, ok := u.pass.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := u.pass.Info.Uses[id].(*types.Var)
	return v, ok
}

// execRangeClause assigns the key/value variables of one range iteration.
func (u *irScan) execRangeClause(s *ast.RangeStmt, st *irState) {
	if s.Key != nil {
		if v, ok := u.lhsVar(s.Key); ok && isNumericType(v.Type()) {
			key := typeInterval(v.Type()).intersect(interval{0, math.Inf(1)})
			if t := u.exprType(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Basic); ok {
					// range over an integer: [0, n-1].
					n := u.eval(s.X, st)
					key = key.intersect(interval{0, n.hi - 1})
				}
			}
			st.vars[v] = key
		}
	}
	if s.Value != nil {
		if v, ok := u.lhsVar(s.Value); ok && isNumericType(v.Type()) {
			st.vars[v] = typeInterval(v.Type())
		}
	}
}

// checkExprs walks the expressions of one statement or condition: checks
// conversions and contract call sites against the current state, and
// clobbers variables whose address escapes or that a function literal
// mutates. Function-literal bodies themselves are separate scan units.
func (u *irScan) checkExprs(node ast.Node, st *irState) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			u.clobberMutated(x.Body, st)
			return false
		case *ast.CallExpr:
			u.checkCall(x, st)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if v, ok := u.lhsVar(x.X); ok && isNumericType(v.Type()) {
					st.vars[v] = typeInterval(v.Type())
				}
			}
		}
		return true
	})
}

// clobberMutated resets every tracked variable a nested function literal
// assigns, increments, or takes the address of — the literal may run any
// number of times on any schedule.
func (u *irScan) clobberMutated(body *ast.BlockStmt, st *irState) {
	reset := func(e ast.Expr) {
		if v, ok := u.lhsVar(e); ok && isNumericType(v.Type()) {
			st.vars[v] = typeInterval(v.Type())
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				reset(lhs)
			}
		case *ast.IncDecStmt:
			reset(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				reset(x.X)
			}
		}
		return true
	})
}

// checkCall checks one call expression: a conversion to an integer type
// must prove its operand fits; a call to a contracted function must prove
// each constrained argument stays in its declared range.
func (u *irScan) checkCall(call *ast.CallExpr, st *irState) {
	if tvf, ok := u.pass.Info.Types[call.Fun]; ok && tvf.IsType() && len(call.Args) == 1 {
		arg := call.Args[0]
		if tv, ok := u.pass.Info.Types[arg]; ok && tv.Value != nil {
			return // constant-folded: the compiler rejects out-of-range constants
		}
		bounds, sized, isInt := intTargetBounds(tvf.Type)
		if !isInt {
			return
		}
		src := u.eval(arg, st)
		if t := u.exprType(arg); t != nil && !isIntegerType(t) {
			// Go float→integer conversion truncates toward zero, so the
			// rounding idiom byte(v + 0.5) with v in [0, 255] is exact.
			src = src.trunc()
		}
		if sized && !src.within(bounds) {
			u.flag(call.Pos(), "cannot prove this conversion to %s stays in %s (operand range %s); guard the operand or declare a //range contract",
				tvf.Type.String(), renderInterval(bounds), renderInterval(src))
		} else if !sized && src.disjoint(bounds) {
			u.flag(call.Pos(), "conversion to %s provably overflows: operand range %s lies entirely outside %s",
				tvf.Type.String(), renderInterval(src), renderInterval(bounds))
		}
		return
	}
	callee := funcObj(u.pass.Info, call.Fun)
	if callee == nil {
		return
	}
	ct, ok := u.contracts[callee]
	if !ok {
		return
	}
	for _, idx := range sortedInts2(ct.byParam) {
		if idx >= len(call.Args) {
			continue
		}
		want := ct.byParam[idx]
		got := u.eval(call.Args[idx], st)
		if !got.within(want) {
			u.flag(call.Args[idx].Pos(), "cannot prove argument stays in //range %s contract of parameter %s of %s (computed range %s)",
				renderInterval(want), ct.names[idx], callee.Name(), renderInterval(got))
		}
	}
}

// widen extrapolates loop-carried interval growth: a variable that grew
// by d in one abstract iteration is assumed to grow by d per iteration
// for the loop's trip bound — the counted-loop bound when the condition
// proves one, maxTrips otherwise.
func (u *irScan) widen(loop ast.Stmt, entry map[*types.Var]interval, st *irState) {
	trips := u.tripBound(loop, st)
	for v, cur := range st.vars {
		prev, ok := entry[v]
		if !ok {
			continue // born inside the body: re-initialized every iteration
		}
		w := cur
		if cur.hi > prev.hi && !math.IsInf(cur.hi, 1) {
			w.hi = addHi(prev.hi, (cur.hi-prev.hi)*trips)
		}
		if cur.lo < prev.lo && !math.IsInf(cur.lo, -1) {
			w.lo = addLo(prev.lo, (cur.lo-prev.lo)*trips)
		}
		if !w.sameAs(cur) {
			st.vars[v] = w
		}
	}
}

// tripBound extracts an iteration bound from a counted for loop
// (`for i := 0; i < n; i++` shapes), defaulting to maxTrips.
func (u *irScan) tripBound(loop ast.Stmt, st *irState) float64 {
	f, ok := loop.(*ast.ForStmt)
	if !ok || f.Cond == nil {
		return maxTrips
	}
	b, ok := f.Cond.(*ast.BinaryExpr)
	if !ok || (b.Op != token.LSS && b.Op != token.LEQ) {
		return maxTrips
	}
	n := u.eval(b.Y, st)
	if n.hi >= 0 && n.hi < maxTrips {
		return n.hi + 1
	}
	return maxTrips
}

// refine narrows variable intervals by what a branch condition just
// proved on the path that observed it.
func (u *irScan) refine(cond ast.Expr, taken bool, st *irState) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken {
				u.refine(c.X, true, st)
				u.refine(c.Y, true, st)
			}
		case token.LOR:
			if !taken {
				u.refine(c.X, false, st)
				u.refine(c.Y, false, st)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if !taken {
				op = negateCmp(op)
			}
			u.refineCmp(c.X, op, c.Y, st)
			u.refineCmp(c.Y, flipCmp(op), c.X, st)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			u.refine(c.X, !taken, st)
		}
	}
}

// refineCmp applies "lhs op rhs" when lhs names a variable.
func (u *irScan) refineCmp(lhs ast.Expr, op token.Token, rhs ast.Expr, st *irState) {
	v, ok := u.lhsVar(lhs)
	if !ok || !isNumericType(v.Type()) {
		return
	}
	bound := u.eval(rhs, st)
	cur, tracked := st.vars[v]
	if !tracked {
		cur = typeInterval(v.Type())
	}
	// Strict comparisons tighten by a whole unit on integer axes; on
	// float axes the non-strict bound is the conservative refinement.
	step := 0.0
	if isIntegerType(v.Type()) {
		step = 1
	}
	switch op {
	case token.LSS:
		cur.hi = math.Min(cur.hi, bound.hi-step)
	case token.LEQ:
		cur.hi = math.Min(cur.hi, bound.hi)
	case token.GTR:
		cur.lo = math.Max(cur.lo, bound.lo+step)
	case token.GEQ:
		cur.lo = math.Max(cur.lo, bound.lo)
	case token.EQL:
		cur = cur.intersect(bound)
	case token.NEQ:
		// A disequality only helps at a closed integer endpoint.
		if isIntegerType(v.Type()) && bound.fingerprint() == (interval{cur.lo, cur.lo}).fingerprint() {
			cur.lo++
		} else if isIntegerType(v.Type()) && bound.fingerprint() == (interval{cur.hi, cur.hi}).fingerprint() {
			cur.hi--
		}
	}
	st.vars[v] = cur
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

// flipCmp mirrors a comparison across its operands (a < b ⇔ b > a).
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// eval computes the interval of an expression under the current state.
// Constants are exact; tracked variables read the store; arithmetic
// composes operand intervals (unclipped — detecting escape from the
// static type is the point); everything else falls back to the static
// type's range, which is what makes widening conversions self-prove.
func (u *irScan) eval(e ast.Expr, st *irState) interval {
	e = ast.Unparen(e)
	if tv, ok := u.pass.Info.Types[e]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			return iv
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := u.pass.Info.Uses[x].(*types.Var); ok {
			if iv, tracked := st.vars[v]; tracked {
				return iv
			}
		}
	case *ast.BinaryExpr:
		a, b := u.eval(x.X, st), u.eval(x.Y, st)
		switch x.Op {
		case token.ADD:
			if !isNumericExpr(u.pass.Info, x) {
				return topInterval() // string concatenation
			}
			return a.add(b)
		case token.SUB:
			return a.sub(b)
		case token.MUL:
			return a.mul(b)
		case token.QUO:
			u.noteShiftDivide(x, a, st)
			return a.div(b)
		case token.REM:
			return a.rem(b)
		case token.SHL:
			return a.shl(b)
		case token.SHR:
			return a.shr(b)
		case token.AND:
			return a.and(b)
		}
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			return u.eval(x.X, st).neg()
		case token.ADD:
			return u.eval(x.X, st)
		}
	case *ast.CallExpr:
		if tvf, ok := u.pass.Info.Types[x.Fun]; ok && tvf.IsType() && len(x.Args) == 1 {
			// Conversion: in-range values pass through; out-of-range input
			// wraps, so the result is only known to be within the target.
			src := u.eval(x.Args[0], st)
			bounds, _, isInt := intTargetBounds(tvf.Type)
			if isInt {
				if src.within(bounds) {
					return src
				}
				return bounds
			}
			return src
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if _, isBuiltin := u.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "len", "cap":
					return interval{0, float64(math.MaxInt64)}
				case "min":
					return u.foldBuiltin(x.Args, st, math.Min)
				case "max":
					return u.foldBuiltin(x.Args, st, math.Max)
				}
			}
		}
	}
	return u.staticInterval(e)
}

// foldBuiltin folds min/max over the argument intervals endpoint-wise.
func (u *irScan) foldBuiltin(args []ast.Expr, st *irState, pick func(float64, float64) float64) interval {
	if len(args) == 0 {
		return topInterval()
	}
	out := u.eval(args[0], st)
	for _, a := range args[1:] {
		iv := u.eval(a, st)
		out = interval{pick(out.lo, iv.lo), pick(out.hi, iv.hi)}
	}
	return out
}

// staticInterval is the fallback: whatever the expression's static type
// guarantees.
func (u *irScan) staticInterval(e ast.Expr) interval {
	if t := u.exprType(e); t != nil {
		return typeInterval(t)
	}
	return topInterval()
}

func (u *irScan) exprType(e ast.Expr) types.Type {
	if tv, ok := u.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// constInterval converts a constant value to a point interval.
func constInterval(v constant.Value) (interval, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		if f, ok := constant.Float64Val(v); ok {
			return interval{f, f}, true
		}
		// Exactness was lost; Float64Val still returns the nearest value,
		// usable as a (slightly fuzzy) bound only for huge constants.
		f, _ := constant.Float64Val(v)
		return interval{f, f}, true
	}
	return interval{}, false
}

// typeInterval is the value range a static type guarantees.
func typeInterval(t types.Type) interval {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return topInterval()
	}
	switch basic.Kind() {
	case types.Int8:
		return interval{math.MinInt8, math.MaxInt8}
	case types.Int16:
		return interval{math.MinInt16, math.MaxInt16}
	case types.Int32, types.UntypedRune:
		return interval{math.MinInt32, math.MaxInt32}
	case types.Uint8:
		return interval{0, math.MaxUint8}
	case types.Uint16:
		return interval{0, math.MaxUint16}
	case types.Uint32:
		return interval{0, math.MaxUint32}
	case types.Int, types.Int64, types.UntypedInt:
		return interval{math.MinInt64, math.MaxInt64}
	case types.Uint, types.Uint64, types.Uintptr:
		return interval{0, math.MaxUint64}
	}
	return topInterval()
}

// intTargetBounds classifies an integer destination type: its value
// range, whether it is a sized (≤32-bit) type held to the prove-it
// standard, and whether it is an integer at all.
func intTargetBounds(t types.Type) (iv interval, sized, isInt bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return topInterval(), false, false
	}
	switch basic.Kind() {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		return typeInterval(t), true, true
	case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr:
		return typeInterval(t), false, true
	}
	return topInterval(), false, false
}

func isNumericType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0 && basic.Info()&types.IsComplex == 0
}

func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func isNumericExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isNumericType(tv.Type)
}

// renderInterval formats an interval for diagnostics.
func renderInterval(iv interval) string {
	return fmt.Sprintf("[%s, %s]", renderBound(iv.lo), renderBound(iv.hi))
}

func renderBound(f float64) string {
	if math.IsInf(f, -1) {
		return "-inf"
	}
	if math.IsInf(f, 1) {
		return "+inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sortedInts2 returns map keys ascending (shared shape with
// splitbudget's sortedInts, for interval-keyed contract maps).
func sortedInts2(m map[int]interval) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
