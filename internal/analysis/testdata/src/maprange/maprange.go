// Package maprange is a fixture for the maprange analyzer.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append of map values"
	}
	return out
}

func indexed(m map[string]int) []int {
	var out []int
	for k := range m {
		out = append(out, m[k]) // want "append of map values"
	}
	return out
}

func prints(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "random iteration order"
	}
}

func builds(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "random iteration order"
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // the keys-then-sort idiom: allowed
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v) // slice iteration is ordered: allowed
	}
	return out
}

func counts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-insensitive reduction: allowed
	}
	return total
}
