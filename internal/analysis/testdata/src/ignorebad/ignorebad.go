// Package ignorebad is a fixture for directive hygiene: malformed
// directives and unknown analyzer names are themselves diagnostics (from
// the pseudo-analyzer "lint"), checked programmatically in
// TestDirectiveHygiene rather than with want comments.
package ignorebad

//lint:ignore detrand
func missingReason() {}

func unknownName() int {
	//lint:ignore nosuchanalyzer the name above is not registered
	return 1
}

func staleDirective() int {
	//lint:ignore floateq nothing on the next line trips floateq anymore
	return 2
}
