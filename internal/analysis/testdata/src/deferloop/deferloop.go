// Package deferloop is the fixture for the deferloop analyzer. Unlike the
// other perf analyzers it applies module-wide — no //hot directive needed —
// because piled-up defers are a leak everywhere, not just in the pipeline.
package deferloop

func trace(i, j int) {}

func done() {}

// Positives: a defer in any loop piles up one pending call per iteration.
// In the nest, the report belongs to the innermost loop that contains the
// defer — one finding, not one per nesting level.
func Positives(closers []func(), n int) {
	for _, c := range closers {
		defer c() // want "defer inside a loop"
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			defer trace(i, j) // want "defer inside a loop"
		}
	}
}

// Negatives stays clean: a top-level defer runs once, and a defer at the
// top of a closure body runs when the closure returns each iteration —
// the internal/parallel worker idiom.
func Negatives(closers []func()) {
	defer done()
	for _, c := range closers {
		func() {
			defer c()
		}()
	}
}

// Ignored shows the escape hatch.
func Ignored(closers []func()) {
	for _, c := range closers {
		//lint:ignore deferloop fixture demonstrates suppression
		defer c()
	}
}
