// Package stagekey is the fixture for the stagekey analyzer: stream
// derivations must key off frozen registry constants. The local Stage
// type stands in for internal/detrng.Stage — the analyzer matches the
// named type, so this package doubles as its own registry, exactly like
// the production layout.
package stagekey

// Stage mimics detrng.Stage; this package is its registry.
type Stage uint64

// Domain one: a clean const block with explicit, unique IDs.
const (
	StageJitter Stage = 1
	StageDrop   Stage = 2
	StageDup    Stage = 3
)

// Domain two: IDs may repeat across blocks (separate seed domains)...
const (
	StageSize  Stage = 1
	StageNoise Stage = 2
	// ...but never within one.
	StageClash Stage = 2 // want "duplicates the ID of StageNoise"
)

// Iota renumbers everything below an insertion point, the exact hazard
// the registry freezes out.
const (
	StageIotaA Stage = iota // want "uses iota"
	StageIotaB              // want "uses iota"
)

// mix mimics detrng.Mix: its Stage parameter is what the analyzer keys
// call-site checks off.
func mix(seed int64, stage Stage, index int) int64 {
	return seed ^ int64(stage)*0x5851F42D + int64(index)
}

// forward mimics the impair/fleet rng wrappers: passing one's own Stage
// parameter onward is the sanctioned indirection.
func forward(seed int64, stage Stage, index int) int64 {
	return mix(seed, stage, index)
}

// Positives: every derivation below dodges the registry.
func Positives(seed int64, i int) int64 {
	var s int64
	s += mix(seed, 7, i)             // want "unregistered stage literal 7"
	s += mix(seed, Stage(9), i)      // want "not a registry constant"
	s += mix(seed, StageJitter+1, i) // want "arithmetic on stage values"
	dynamic := StageDrop
	s += mix(seed, dynamic, i) // want "not a compile-time registry constant"
	return s
}

// Negatives: registry constants and sanctioned forwarding.
func Negatives(seed int64, i int) int64 {
	var s int64
	s += mix(seed, StageJitter, i)
	s += mix(seed, StageDrop, i)
	s += forward(seed, StageDup, i)
	s += mix(seed, (StageSize), i)
	return s
}

// Ignored documents a sanctioned off-registry derivation.
func Ignored(seed int64, i int) int64 {
	//lint:ignore stagekey fixture: legacy stream kept for a pinned-output comparison
	return mix(seed, 99, i)
}
