// Package b nests package a's spawning helpers inside parallel
// callbacks: every oversubscription below is visible only through the
// module-wide spawn summaries.
package b

import "splitbudget_xpkg/a"

// Oversubscribed reproduces the decode-fleet bug across the package
// boundary: every nested helper runs on the full worker count.
func Oversubscribed(workers, n int) {
	a.For(workers, n, func(i int) {
		d := a.New(workers)
		d.Decode(64)            // want "spawns a parallel region from ambient state it carries"
		a.RunKeyed(workers, 64) // want "runs a parallel region keyed by this argument"
		c := a.Cfg{Workers: workers}
		a.FromCfg(c, 8) // want "spawns a parallel region from ambient state it carries"
	})
}

// NestedDirect spawns the runner itself inside the callback on the full
// count.
func NestedDirect(workers, n int) {
	a.For(workers, n, func(i int) {
		a.For(workers, 4, func(j int) { _ = j }) // want "nested parallel region inside a parallel callback"
	})
}

// Threaded is the sanctioned shape: one Split up front, the derived
// budget threaded through every carrier.
func Threaded(workers, n int) {
	inner := a.Split(workers, workers)
	a.For(workers, n, func(i int) {
		d := a.New(inner)
		d.Decode(64)
		a.RunKeyed(inner, 64)
		c := a.Cfg{Workers: inner}
		a.FromCfg(c, 8)
	})
}

// Serialized pins the nested helper to a literal 1: explicitly serial.
func Serialized(workers, n int) {
	a.For(workers, n, func(i int) {
		a.RunKeyed(1, 64)
	})
}

// IgnoredNested documents a sanctioned oversubscription.
func IgnoredNested(workers, n int) {
	a.For(workers, n, func(i int) {
		//lint:ignore splitbudget fixture: measured oversubscription experiment
		a.RunKeyed(workers, 64)
	})
}
