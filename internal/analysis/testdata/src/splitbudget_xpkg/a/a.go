// Package a is the spawning side of the splitbudget cross-package
// fixture: a local runner stands in for internal/parallel, and each
// exported helper spawns a region from a different budget carrier so
// package b can exercise every transitive summary shape.
package a

// For mimics parallel.For: the region spawner the analyzer matches.
func For(workers, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Split mimics parallel.Split: the blessed budget divider.
func Split(outer, workers int) int {
	if outer <= 0 {
		return workers
	}
	w := workers / outer
	if w < 1 {
		return 1
	}
	return w
}

// Decoder carries its budget as receiver state.
type Decoder struct{ Workers int }

// New builds a decoder; a Split-derived argument blesses the result.
func New(workers int) *Decoder { return &Decoder{Workers: workers} }

// Decode spawns from receiver state: the summary is byState on the
// receiver, translated at cross-package call sites.
func (d *Decoder) Decode(rows int) {
	For(d.Workers, rows, func(r int) { _ = r })
}

// RunKeyed spawns from its first parameter: byParam[0] in the summary.
func RunKeyed(workers, rows int) {
	For(workers, rows, func(r int) { _ = r })
}

// Cfg carries a budget in a Workers field.
type Cfg struct{ Workers int }

// FromCfg spawns from the budget its first argument carries: byState[0].
func FromCfg(c Cfg, rows int) {
	For(c.Workers, rows, func(r int) { _ = r })
}
