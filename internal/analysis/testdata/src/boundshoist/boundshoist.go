// Package boundshoist is the fixture for the boundshoist analyzer: flat
// row-major indexing (pix[y*w+x]) whose row offset is recomputed in a hot
// innermost loop instead of hoisted into a row slice.
package boundshoist

// Positives: the y*w row term is invariant across the x loop, the full
// index varies, and the base is stable — a row slice hoist applies. Two
// uses of the same row term in one loop are one finding, not two.
//
//hot:fixture function, opted in via directive
func Positives(pix []float32, w, h int) float32 {
	var s float32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s += pix[y*w+x]     // want "loop-invariant offset y \* w"
			s += pix[y*w+x] * 2 // deduplicated: same row term as above
		}
	}
	return s
}

// Negatives stays clean: the hoisted-row idiom, offsets that vary with the
// inner loop, bases the loop reassigns, and fully invariant indices.
//
//hot:fixture function, opted in via directive
func Negatives(pix, other []float32, w, h int) float32 {
	var s float32
	for y := 0; y < h; y++ {
		row := pix[y*w : (y+1)*w] // hoisted row: the idiomatic fix
		for x := 0; x < w; x++ {
			s += row[x]
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			s += pix[y*w+x] // offset varies with the inner loop
		}
	}
	base := pix
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s += base[y*w+x] // base reassigned below: a row view would go stale
			base = other
		}
	}
	for x := 0; x < w; x++ {
		s += pix[h*w-1] // fully invariant index: hoist the value, not a row
	}
	return s
}

// Ignored shows the escape hatch.
//
//hot:fixture function, opted in via directive
func Ignored(pix []float32, w, h int) float32 {
	var s float32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			//lint:ignore boundshoist fixture demonstrates suppression
			s += pix[y*w+x]
		}
	}
	return s
}

// notHot has the positive pattern but no //hot directive: tolerated.
func notHot(pix []float32, w, h int) float32 {
	var s float32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s += pix[y*w+x]
		}
	}
	return s
}

var _ = notHot

// Divides exercises the QUO/REM extension: an invariant integer division
// or modulo inside an index is costlier than the multiply it usually
// feeds, so it is named over the offset in the diagnostic.
//
//hot:fixture function, opted in via directive
func Divides(pix []float32, w, h, ps int) float32 {
	var s float32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s += pix[(y/ps)*w+x] // want "loop-invariant division y / ps"
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s += pix[y%h*w+x] // want "loop-invariant division y % h"
		}
	}
	for y := 0; y < h; y++ {
		pj := y / ps // hoisted phase divide: the idiomatic fix
		row := pix[pj*w : (pj+1)*w]
		for x := 0; x < w; x++ {
			s += row[x]
		}
	}
	for y := 0; y < h; y++ {
		base := y * w
		for x := 0; x < w; x++ {
			s += pix[base+x/ps] // divide varies with the inner loop: nothing to hoist
		}
	}
	return s
}
