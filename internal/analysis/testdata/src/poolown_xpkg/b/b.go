// Package b acquires and releases frames exclusively through package a's
// helpers: every finding (and every proof of cleanliness) below depends
// on the cross-package ownership summaries.
package b

import "poolown_xpkg/a"

var errFailed error

// LeakAcross acquires through a.Fresh and exits early with the frame
// still held: only the cross-package returns-owned summary sees the
// acquisition at all.
func LeakAcross(p *a.Pool, fail bool) error {
	f := a.Fresh(p) // want "not released on the path exiting at line"
	if fail {
		return errFailed
	}
	a.Drain(p, f)
	return nil
}

// CleanAcross releases through the cross-package consuming summary.
func CleanAcross(p *a.Pool) {
	f := a.Fresh(p)
	a.Drain(p, f)
}

// CleanDirect mixes a summarized acquire with a direct Put release.
func CleanDirect(p *a.Pool) {
	f := a.Fresh(p)
	p.Put(f)
}

// IgnoredAcross documents a sanctioned cross-package leak.
func IgnoredAcross(p *a.Pool, fail bool) error {
	//lint:ignore poolown fixture: frame handed to the harness on the error path
	f := a.Fresh(p)
	if fail {
		return errFailed
	}
	a.Drain(p, f)
	return nil
}
