// Package a is the ownership-granting side of the poolown cross-package
// fixture: its returns-owned and consuming summaries must reach callers
// in package b through the module-wide summary set.
package a

// Frame mimics frame.Frame; the analyzer matches the type by name.
type Frame struct {
	W, H int
	Pix  []float32
}

// Pool mimics frame.Pool: Get grants ownership, Put releases it.
type Pool struct{ free []*Frame }

func (p *Pool) Get(w, h int) *Frame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

func (p *Pool) Put(f *Frame) { p.free = append(p.free, f) }

// Fresh returns a pool-owned frame: callers in any package inherit the
// obligation to release it.
func Fresh(p *Pool) *Frame { return p.Get(4, 4) }

// Drain consumes its frame argument: handing one to it transfers
// ownership across the package boundary.
func Drain(p *Pool, f *Frame) { p.Put(f) }
