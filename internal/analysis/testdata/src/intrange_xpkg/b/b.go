// Package b calls package a's contracted function: argument proofs must
// cross the package boundary through the shared contract table.
package b

import "intrange_xpkg/a"

//hot:the guard proves the contract across the boundary.
func Guarded(x int) int {
	if x < 0 || x > 255 {
		return 0
	}
	return a.Scale(x)
}

//hot:nothing bounds x here.
func Unguarded(x int) int {
	return a.Scale(x) // want "cannot prove argument stays in //range"
}

//hot:the contract violation is acknowledged in place.
func Acknowledged(x int) int {
	//lint:ignore intrange fixture: saturation handled by the callee in this legacy path
	return a.Scale(x)
}
