// Package a declares the contracted scaler of the intrange
// cross-package fixture: the //range contract is parsed module-wide, so
// callers in package b are checked against it.
package a

// Scale maps a quantized byte value onto the packet index space.
//
//range:v 0,255
func Scale(v int) int {
	return v * 257
}
