// Package poolown is the fixture for the poolown analyzer: pool-owned
// frames must be released or transferred on every control-flow path. The
// local Frame and Pool stand in for internal/frame (fixtures cannot
// import repo packages); the analyzer matches Get on a type named Pool
// returning *Frame, and Put/Recycle by name, so these stand-ins exercise
// the production matching exactly.
package poolown

type Frame struct {
	W, H int
	Pix  []float32
}

func (f *Frame) Row(y int) []float32 { return f.Pix[y*f.W : (y+1)*f.W] }

type Pool struct{ free []*Frame }

func (p *Pool) Get(w, h int) *Frame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

func (p *Pool) Put(f *Frame) { p.free = append(p.free, f) }

// parallelFor mimics internal/parallel.For: the callee name For marks the
// literal as running synchronously, so releases inside it count.
type runner struct{}

func (runner) For(workers, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// drain's one-hop summary marks parameter 1 as consumed: handing a frame
// to it transfers ownership.
func drain(p *Pool, f *Frame) { p.Put(f) }

// fresh's one-hop summary marks its return as pool-owned.
func fresh(p *Pool) *Frame { return p.Get(4, 4) }

// inspect borrows: callers keep ownership.
func inspect(f *Frame) float32 { return f.Pix[0] }

// LeakOnEarlyReturn is the canonical defect: the error path exits with
// the frame still held.
func LeakOnEarlyReturn(p *Pool, fail bool) error {
	f := p.Get(8, 8) // want "not released on the path exiting at line"
	if fail {
		return errFailed
	}
	p.Put(f)
	return nil
}

// LeakViaSummary: the frame arrives through a summarized same-package
// callee instead of a direct Get; the early return still leaks it.
func LeakViaSummary(p *Pool, fail bool) error {
	f := fresh(p) // want "not released on the path exiting at line"
	if fail {
		return errFailed
	}
	p.Put(f)
	return nil
}

// BranchOnlyPut releases on one branch only; the fall-through path leaks.
func BranchOnlyPut(p *Pool, done bool) {
	f := p.Get(8, 8) // want "not released on the path exiting at line"
	if done {
		p.Put(f)
	}
}

// DoublePut releases twice on the done path.
func DoublePut(p *Pool, done bool) {
	f := p.Get(8, 8)
	if done {
		p.Put(f)
	}
	p.Put(f) // want "released twice on this path"
}

// UseAfterPut touches the frame after handing it back.
func UseAfterPut(p *Pool) float32 {
	f := p.Get(8, 8)
	p.Put(f)
	return f.Pix[0] // want "after it was released"
}

// LoopCarried holds the frame across the back edge on the continue path.
func LoopCarried(p *Pool, n int) {
	for i := 0; i < n; i++ {
		f := p.Get(8, 8) // want "still held at the loop back edge"
		if i%2 == 0 {
			continue
		}
		p.Put(f)
	}
}

// Negatives: every path below is clean and must produce no findings.

var errFailed error

// CleanStraightLine releases before returning.
func CleanStraightLine(p *Pool) {
	f := p.Get(8, 8)
	inspect(f)
	p.Put(f)
}

// CleanEarlyRelease releases before the early return.
func CleanEarlyRelease(p *Pool, fail bool) error {
	f := p.Get(8, 8)
	if fail {
		p.Put(f)
		return errFailed
	}
	p.Put(f)
	return nil
}

// CleanTransferReturn hands ownership to the caller.
func CleanTransferReturn(p *Pool) *Frame {
	f := p.Get(8, 8)
	f.Pix[0] = 1
	return f
}

// CleanTransferConsume hands ownership to a summarized consumer.
func CleanTransferConsume(p *Pool) {
	f := p.Get(8, 8)
	drain(p, f)
}

// CleanDefer releases at exit on every path.
func CleanDefer(p *Pool, fail bool) error {
	f := p.Get(8, 8)
	defer p.Put(f)
	if fail {
		return errFailed
	}
	f.Pix[0] = 1
	return nil
}

// CleanAliasMove re-homes ownership through an alias, production
// camera-pipeline style: the old buffer is released, the name re-used.
func CleanAliasMove(p *Pool, blur bool) *Frame {
	lin := p.Get(8, 8)
	if blur {
		blurred := p.Get(8, 8)
		inspect(lin)
		p.Put(lin)
		lin = blurred
	}
	return lin
}

// CleanEscapeAppend: ownership escapes into the slice the caller owns.
func CleanEscapeAppend(p *Pool, out []*Frame) []*Frame {
	f := p.Get(8, 8)
	return append(out, f)
}

// CleanLoopRelease releases before every back edge.
func CleanLoopRelease(p *Pool, n int) {
	for i := 0; i < n; i++ {
		f := p.Get(8, 8)
		inspect(f)
		p.Put(f)
	}
}

// CleanSyncParallel fills the frame inside a synchronous For literal and
// releases after: the literal borrows, the function stays clean.
func CleanSyncParallel(p *Pool, r runner) {
	f := p.Get(8, 8)
	r.For(4, f.H, func(y int) {
		row := f.Row(y)
		for x := range row {
			row[x] = 1
		}
	})
	p.Put(f)
}

// CleanReleaseInsideSyncLit releases inside the synchronous literal; the
// release counts on the caller's path.
func CleanReleaseInsideSyncLit(p *Pool, r runner) {
	f := p.Get(8, 8)
	r.For(1, 1, func(int) {
		p.Put(f)
	})
}

// CleanEscapeClosure: the literal is stored and may run later, so the
// frame's ownership escapes with it — no leak is reported.
func CleanEscapeClosure(p *Pool) func() {
	f := p.Get(8, 8)
	return func() { p.Put(f) }
}

// IgnoredLeak documents a sanctioned leak: the suppression covers it.
func IgnoredLeak(p *Pool, fail bool) error {
	//lint:ignore poolown fixture: frame intentionally handed to the test harness
	f := p.Get(8, 8)
	if fail {
		return errFailed
	}
	p.Put(f)
	return nil
}
