// Package hotalloc is the fixture for the hotalloc analyzer: allocations in
// the innermost loops of hot functions. The package path is not on the
// built-in hot list, so hotness comes from the //hot directives — which is
// exactly the opt-in convention the analyzer documents.
package hotalloc

import (
	"fmt"
	"math"
)

type point struct{ x, y int }

// Positives exercises every allocation class the analyzer flags.
//
//hot:fixture function, opted in via directive
func Positives(n int, name string, vals []int) {
	for i := 0; i < n; i++ {
		buf := make([]byte, 64) // want "make allocates every iteration"
		_ = buf
		q := new(point) // want "new allocates every iteration"
		_ = q
		s := []int{1, 2, 3} // want "slice literal allocates every iteration"
		_ = s
		m := map[string]int{} // want "map literal allocates every iteration"
		_ = m
		p := &point{i, i} // want "composite literal escapes to the heap"
		_ = p
		label := name + "!" // want "string concatenation allocates"
		_ = label
		fmt.Sprintln(i) // want "fmt.Sprintln allocates and boxes"
		_ = any(i)      // want "conversion to interface boxes"
	}
}

// Negatives stays clean: hoisted scratch, value literals, non-innermost
// loops, and closure bodies are all sanctioned.
//
//hot:fixture function, opted in via directive
func Negatives(n int, vals []int) int {
	scratch := make([]int, n+1) // hoisted: allocate once, reuse per iteration
	sum := 0
	for i := 0; i < n; i++ {
		scratch[i%len(scratch)] = i
		p := point{i, i} // value literal: no heap traffic
		sum += p.x
	}
	for i := 0; i < n; i++ {
		rows := make([][]int, 0, n) // outer loop of a nest is not innermost
		for j := 0; j < n; j++ {
			sum += i * j
		}
		_ = rows
	}
	for i := 0; i < n; i++ {
		work := func() []int {
			return make([]int, 4) // a literal's body is its own function
		}
		_ = work
	}
	return sum
}

// Ignored shows the escape hatch for a measured, accepted allocation.
//
//hot:fixture function, opted in via directive
func Ignored(n int) {
	for i := 0; i < n; i++ {
		//lint:ignore hotalloc fixture demonstrates suppression
		b := make([]byte, 8)
		_ = b
	}
}

// NotHotScratch carries no //hot directive and the fixture package is off
// the hot list, so its loop allocation is tolerated here. Loaded under a
// hot import path (see TestHotPathActivation) the same code is flagged.
func NotHotScratch(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		tmp := make([]int, 1)
		out = append(out, tmp[0])
	}
	return out
}

// Transcendentals exercises the fixed-point-era rule: software math calls
// in a hot innermost loop cost the same class of per-iteration budget as an
// allocation; intrinsified functions stay allowed.
//
//hot:fixture function, opted in via directive
func Transcendentals(n int, vals []float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += math.Pow(vals[i%len(vals)], 2.2) // want "math.Pow is a software transcendental call"
		s += math.Round(s)                    // want "math.Round is a software transcendental call"
		s += math.Sin(s)                      // want "math.Sin is a software transcendental call"
		s += math.Sqrt(s)                     // intrinsic: single instruction, allowed
		s += math.Abs(s)                      // intrinsic: allowed
		s += math.Floor(s)                    // intrinsic rounding mode: allowed
	}
	gain := math.Pow(10, 0.1) // hoisted out of the loop: the sanctioned fix
	for i := 0; i < n; i++ {
		s += gain * float64(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += float64(i * j)
		}
		s += math.Exp(s) // outer loop of a nest is not innermost
	}
	return s
}
