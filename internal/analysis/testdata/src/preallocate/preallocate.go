// Package preallocate is the fixture for the preallocate analyzer: append
// in a loop with a derivable trip count, into a destination created without
// a capacity hint.
package preallocate

type result struct {
	Vals  []int
	Ready bool
}

// Positives: every append grows a hintless destination across a loop whose
// trip count is knowable before the first iteration.
//
//hot:fixture function, opted in via directive
func Positives(n int, xs []int) ([]int, []int, []int) {
	var grown []int
	for i := 0; i < n; i++ {
		grown = append(grown, i) // want "derivable trip count grows without a capacity hint"
	}
	ranged := []int{}
	for _, v := range xs {
		ranged = append(ranged, v*2) // want "derivable trip count grows without a capacity hint"
	}
	r := &result{Ready: true}
	for i := 0; i < n; i++ {
		r.Vals = append(r.Vals, i) // want "derivable trip count grows without a capacity hint"
	}
	return grown, ranged, r.Vals
}

// Negatives stays clean: hinted destinations, data-dependent counts,
// unbounded loops, and out-of-sight creations.
//
//hot:fixture function, opted in via directive
func Negatives(n int, xs []int, sink []int) []int {
	hinted := make([]int, 0, n)
	for i := 0; i < n; i++ {
		hinted = append(hinted, i)
	}
	var filtered []int
	for _, v := range xs {
		if v > 0 { // data-dependent count: a hint would overshoot
			filtered = append(filtered, v)
		}
	}
	var unbounded []int
	for {
		unbounded = append(unbounded, len(unbounded))
		if len(unbounded) >= n {
			break
		}
	}
	for i := 0; i < n; i++ {
		sink = append(sink, i) // parameter: creation out of sight
	}
	hinted = append(hinted, filtered...)
	hinted = append(hinted, unbounded...)
	return append(hinted, sink...)
}

// Ignored shows the escape hatch.
//
//hot:fixture function, opted in via directive
func Ignored(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		//lint:ignore preallocate fixture demonstrates suppression
		out = append(out, i)
	}
	return out
}

// notHot has the positive pattern but no //hot directive: tolerated.
func notHot(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

var _ = notHot
