// Package floateq is a fixture for the floateq analyzer.
package floateq

const eps = 1e-9

func exactThreshold(score, thr float64) bool {
	return score == thr // want "float operands"
}

func exactZero32(v float32) bool {
	return v != 0 // want "float operands"
}

func nanIdiom(v float64) bool {
	return v != v // want "math.IsNaN"
}

func ordered(score, thr float64) bool {
	return score > thr // ordered comparison: allowed
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps // epsilon comparison: allowed
}

func intEq(a, b int) bool {
	return a == b // integer equality: allowed
}

func constFold() bool {
	return 0.1+0.2 == 0.3 // both sides constant, folded at compile time: allowed
}
