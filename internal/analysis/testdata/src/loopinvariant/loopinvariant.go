// Package loopinvariant is the fixture for the loopinvariant analyzer. The
// methods mirror the repo's pure-helper names (Layout geometry), which the
// analyzer matches by name, so the fixture needs no inframe imports.
package loopinvariant

type layout struct{ w, h int }

func (l layout) GOBsX() int          { return l.w }
func (l layout) GOBsY() int          { return l.h }
func (l layout) BlockRect(i int) int { return i * l.w }
func (l layout) other() int          { return l.w + l.h }

// Positives: pure calls with invariant arguments in loop conditions (outer
// or inner — conditions re-evaluate every iteration regardless of nesting)
// and in innermost bodies.
//
//hot:fixture function, opted in via directive
func Positives(l layout, n int) int {
	s := 0
	for gy := 0; gy < l.GOBsY(); gy++ { // want "pure call GOBsY"
		for gx := 0; gx < l.GOBsX(); gx++ { // want "pure call GOBsX"
			s += gx + gy
		}
	}
	for i := 0; i < n; i++ {
		s += l.GOBsX() // want "pure call GOBsX"
	}
	return s
}

// Negatives stays clean: hoisted bounds, loop-varying arguments, helpers
// off the pure list, and receivers the loop itself assigns.
//
//hot:fixture function, opted in via directive
func Negatives(l layout, n int) int {
	s := 0
	gobsX := l.GOBsX() // hoisted: the idiomatic fix
	for gx := 0; gx < gobsX; gx++ {
		s += l.BlockRect(gx) // argument varies with the loop
	}
	for i := 0; i < n; i++ {
		s += l.other() // not on the pure-helper list
	}
	for l2 := (layout{}); l2.w < n; l2.w++ {
		s += l2.GOBsY() // receiver assigned by the loop
	}
	return s
}

// Ignored shows the escape hatch.
//
//hot:fixture function, opted in via directive
func Ignored(l layout) int {
	s := 0
	//lint:ignore loopinvariant fixture demonstrates suppression
	for gy := 0; gy < l.GOBsY(); gy++ {
		s += gy
	}
	return s
}

// notHot has the positive pattern but no //hot directive: tolerated.
func notHot(l layout) int {
	s := 0
	for gy := 0; gy < l.GOBsY(); gy++ {
		s += gy
	}
	return s
}

var _ = notHot
