// Package intrange is the fixture for the intrange analyzer: integer
// narrowing and accumulation in hot code must provably stay inside the
// target type. Functions enter the analyzer's scope by clamp/quant
// naming, a //hot directive, or a //range contract; everything else in
// the package is ignored.
package intrange

import "math"

// clampU8 is the canonical guarded narrowing: both branch refinements
// reach the conversion, so [0, 255] is proven and nothing is reported.
func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// quantRound is the production rounding idiom: math.Round yields an
// unknown float, the two guards pin it to [0, 255], and the float→int
// truncation of q + 0 keeps the conversion exact.
func quantRound(v float64) byte {
	q := math.Round(v * 255)
	if q < 0 {
		return 0
	}
	if q > 255 {
		return 255
	}
	return byte(q)
}

// clampHalf misses the upper guard: the operand range is [0, +inf] at
// the conversion, which does not fit uint8.
func clampHalf(v int) uint8 {
	if v < 0 {
		return 0
	}
	return uint8(v) // want "cannot prove this conversion to uint8"
}

// sumBytes is the seeded overflow: a byte-wide accumulator over an
// unbounded slice wraps after at most 256 summed units.
//
//hot:seeded overflow
func sumBytes(p []uint8) uint8 {
	var s uint8
	for _, b := range p {
		s += b // want "cannot prove value stored into uint8"
	}
	return s
}

// countBytes accumulates into a 64-bit int and stays silent: the
// widened range cannot leave int64, and 64-bit targets only report
// definite overflow.
//
//hot:64-bit accumulator
func countBytes(p []uint8) int {
	n := 0
	for _, b := range p {
		if b > 0 {
			n++
		}
	}
	return n
}

// sumCounted's counted loop bounds the trip count, so even the widened
// sum is provably small.
//
//hot:counted accumulator
func sumCounted(p []uint8) int {
	s := 0
	for i := 0; i < 1024; i++ {
		s += int(p[i&1023])
	}
	return s
}

// scaled carries a //range contract: the parameter is seeded [0, 255],
// and every caller must prove its argument stays inside it.
//
//range:v 0,255
func scaled(v int) int {
	return v * 257
}

// callScaled: the guarded call proves the contract; the unguarded one
// cannot.
//
//hot:contract call sites
func callScaled(x int) int {
	if x >= 0 && x <= 255 {
		return scaled(x)
	}
	return scaled(x) // want "cannot prove argument stays in //range"
}

// badDirectives exercises the directive diagnostics, one per line.
//
//range:v // want "malformed //range directive"
//range:w 0,1 // want "names no parameter"
//range:v 5,1 // want "contract on v is empty"
func badDirectives(v int) int {
	return v
}

// checksum wraps by design, so the finding is acknowledged in place.
//
//hot:sanctioned wraparound
func checksum(p []uint8) uint8 {
	var s uint8
	for _, b := range p {
		//lint:ignore intrange modular wraparound is the checksum definition
		s += b
	}
	return s
}

// shiftDivide exercises the shift-vs-divide rule: a signed division by a
// power-of-two constant inside a loop whose operand the interval engine
// proves non-negative compiles to a shift-plus-fixup the code could spell
// as a plain shift.
//
//hot:shift-vs-divide fixture
func shiftDivide(n int, hist []int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i / 4 // want "signed division by 4 in a loop with a provably non-negative operand"
	}
	for i := -n; i < n; i++ {
		s += i / 4 // operand may be negative: the rounding fixup is load-bearing
	}
	for i := 0; i < n; i++ {
		s += i / 3 // not a power of two: the compiler's magic-multiply is fine
	}
	for i := uint(0); i < 64; i++ {
		s += int(i / 8) // unsigned operand already compiles to a shift
	}
	half := n / 2 // outside any loop: a one-off divide is not worth a diagnostic
	return s + half
}
