// Package framealloc is the fixture for the framealloc analyzer: whole-frame
// allocations in the innermost loops of hot functions. The local Frame and
// Pool types stand in for internal/frame, which fixtures cannot import —
// the analyzer matches by callee name plus a *Frame result, so these
// stand-ins exercise exactly the production code paths.
package framealloc

type Frame struct {
	W, H int
	Pix  []float32
}

func New(w, h int) *Frame { return &Frame{W: w, H: h, Pix: make([]float32, w*h)} }

func (f *Frame) Clone() *Frame {
	g := New(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

func (f *Frame) CloneInto(dst *Frame) { copy(dst.Pix, f.Pix) }

func BoxBlur(f *Frame, r int) *Frame { return f.Clone() }

func Average(fs ...*Frame) (*Frame, error) { return fs[0].Clone(), nil }

// Pool mimics frame.Pool: Get is the sanctioned allocation path.
type Pool struct{ free []*Frame }

func (p *Pool) Get(w, h int) *Frame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return New(w, h)
}

func (p *Pool) Put(f *Frame) { p.free = append(p.free, f) }

// Clone here shares a deny-listed name but returns no *Frame, so the
// analyzer must leave it alone even in a hot innermost loop.
type samples struct{ v []float32 }

func (s *samples) Clone() []float32 {
	out := make([]float32, len(s.v))
	copy(out, s.v)
	return out
}

// Positives exercises every allocator class the analyzer flags.
//
//hot:fixture function, opted in via directive
func Positives(n int, src *Frame) float32 {
	var sum float32
	for i := 0; i < n; i++ {
		f := New(src.W, src.H) // want "New allocates a frame buffer every iteration"
		g := src.Clone()       // want "Clone allocates a frame buffer every iteration"
		b := BoxBlur(src, 2)   // want "BoxBlur allocates a frame buffer every iteration"
		a, _ := Average(src)   // want "Average allocates a frame buffer every iteration"
		sum += f.Pix[0] + g.Pix[0] + b.Pix[0] + a.Pix[0]
	}
	return sum
}

// Negatives stays clean: pooled Gets, Into variants, hoisted allocations,
// non-innermost loops, non-Frame results and suppressed lines are all
// sanctioned.
//
//hot:fixture function, opted in via directive
func Negatives(n int, src *Frame, p *Pool, s *samples) float32 {
	hoisted := New(src.W, src.H) // allocate once, reuse per iteration
	var sum float32
	for i := 0; i < n; i++ {
		f := p.Get(src.W, src.H) // pool-routed: the sanctioned path
		src.CloneInto(f)         // Into variant writes a caller-owned buffer
		sum += f.Pix[0] + hoisted.Pix[0]
		p.Put(f)
		v := s.Clone() // same name, no *Frame result
		sum += v[0]
	}
	for i := 0; i < n; i++ {
		outer := src.Clone() // outer loop of a nest is not innermost
		for j := 0; j < n; j++ {
			sum += outer.Pix[j%len(outer.Pix)]
		}
	}
	for i := 0; i < n; i++ {
		//lint:ignore framealloc fixture demonstrates measured, justified suppression
		g := src.Clone()
		sum += g.Pix[0]
	}
	return sum
}

// Cold allocates freely: the function is neither on the hot path list nor
// opted in, so the analyzer never looks inside.
func Cold(n int, src *Frame) float32 {
	var sum float32
	for i := 0; i < n; i++ {
		sum += src.Clone().Pix[0]
	}
	return sum
}
