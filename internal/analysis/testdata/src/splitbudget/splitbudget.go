// Package splitbudget is the fixture for the splitbudget analyzer:
// nested parallel regions must thread a Split-derived worker budget. The
// local runner mimics internal/parallel — the analyzer matches For,
// ForChunked and Split by name, so the fixture exercises the production
// matching without importing repo packages.
package splitbudget

type runner struct{}

func (runner) For(workers, n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (runner) ForChunked(workers, n int, fn func(lo, hi int)) { fn(0, n) }

// Split mimics parallel.Split: the sanctioned way to subdivide a budget.
func Split(workers, parts int) int {
	if parts <= 0 {
		return workers
	}
	inner := workers / parts
	if inner < 1 {
		inner = 1
	}
	return inner
}

type config struct {
	workers int
	r       runner
}

// rowSweep spawns a region keyed by its own parameter: callers can
// thread a budget in, so the summary marks parameter 1.
func (c config) rowSweep(rows, workers int) {
	c.r.ForChunked(workers, rows, func(lo, hi int) {})
}

// ambientSweep spawns from a config field: no budget can be threaded in.
func (c config) ambientSweep(rows int) {
	c.r.ForChunked(c.workers, rows, func(lo, hi int) {})
}

// NestedFullBudget is the seeded reproduction of the fleet-harness
// oversubscription defect: an inner region inside a parallel callback
// handed the full worker count, W×W goroutines of CPU-bound work.
func NestedFullBudget(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {
		c.r.For(workers, n, func(j int) {}) // want "must run on a Split-derived budget"
	})
}

// NestedViaParamCallee hands the full budget to a summarized callee that
// spawns by parameter.
func NestedViaParamCallee(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {
		c.rowSweep(n, workers) // want "must be Split-derived"
	})
}

// NestedViaAmbientCallee calls a summarized callee that spawns from
// ambient state: unfixable at the call site, flagged outright.
func NestedViaAmbientCallee(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {
		c.ambientSweep(n) // want "spawns a parallel region from ambient state"
	})
}

// Negatives: threaded budgets, serial inner regions, and top-level use.

// ThreadedBudget is the fixed shape: the inner budget comes from Split.
func ThreadedBudget(c config, workers, n int) {
	inner := Split(workers, n)
	c.r.For(workers, n, func(i int) {
		c.r.For(inner, n, func(j int) {})
		c.rowSweep(n, inner)
	})
}

// UncappedKnob mirrors the fleet escape hatch: the ident once drew from
// Split, so a documented re-assignment does not need a suppression.
func UncappedKnob(c config, workers, n int, uncapped bool) {
	inner := Split(workers, n)
	if uncapped {
		inner = 0
	}
	c.r.For(workers, n, func(i int) {
		c.r.For(inner, n, func(j int) {})
	})
}

// SerialInner runs the inner region explicitly serial.
func SerialInner(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {
		c.r.ForChunked(1, n, func(lo, hi int) {})
	})
}

// TopLevel regions outside any callback take the full budget freely.
func TopLevel(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {})
	c.rowSweep(n, workers)
	c.ambientSweep(n)
}

// Ignored documents a sanctioned nesting (a benchmark probing the
// oversubscribed regime on purpose).
func Ignored(c config, workers, n int) {
	c.r.For(workers, n, func(i int) {
		//lint:ignore splitbudget fixture: benchmark measures the oversubscribed regime
		c.r.For(workers, n, func(j int) {})
	})
}
