// Package a is the registry side of the stagekey cross-package fixture:
// it declares the Stage type (making it a home package) and two seed
// domains, one const block each.
package a

// Stage mimics detrng.Stage; this package is its registry.
type Stage uint64

// Impairment domain.
const (
	ImpairJitter Stage = 1
	ImpairDrop   Stage = 2
)

// Fleet domain. IDs may repeat across blocks: separate seed domains.
const (
	FleetOffset Stage = 1
	FleetLight  Stage = 2
)

// Mix mimics detrng.Mix: the derivation everything keys off.
func Mix(seed int64, stage Stage, index int) int64 {
	return seed ^ int64(stage)*0x5851F42D + int64(index)
}
