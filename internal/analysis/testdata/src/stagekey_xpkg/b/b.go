// Package b holds forwarding wrappers outside the registry's home
// package: the summary engine tracks which seed domains reach each
// Stage parameter through cross-package calls, and a wrapper fed from
// two domains belongs to neither.
package b

import "stagekey_xpkg/a"

// derive forwards its Stage parameter into the registry mixer; callers
// feed it constants from both domains.
func derive(seed int64, stage a.Stage, i int) int64 { // want "receives registry constants from multiple seed domains"
	return a.Mix(seed, stage, i)
}

// impairDerive is fed from a single domain: a clean wrapper.
func impairDerive(seed int64, stage a.Stage, i int) int64 {
	return a.Mix(seed, stage, i)
}

// Streams drives both wrappers.
func Streams(seed int64, i int) int64 {
	var s int64
	s += derive(seed, a.ImpairJitter, i)
	s += derive(seed, a.FleetOffset, i)
	s += impairDerive(seed, a.ImpairJitter, i)
	s += impairDerive(seed, a.ImpairDrop, i)
	return s
}

// ignoredDerive is deliberately shared by both domains.
//
//lint:ignore stagekey fixture: shared legacy wrapper pinned by an output comparison
func ignoredDerive(seed int64, stage a.Stage, i int) int64 {
	return a.Mix(seed, stage, i)
}

// MoreStreams drives the sanctioned shared wrapper from both domains.
func MoreStreams(seed int64, i int) int64 {
	return ignoredDerive(seed, a.ImpairJitter, i) + ignoredDerive(seed, a.FleetLight, i)
}
