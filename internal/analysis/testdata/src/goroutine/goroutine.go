// Package goroutine is a fixture for the goroutine analyzer.
package goroutine

import "sync"

func rawGo(xs []int) {
	for range xs {
		go work() // want "raw go statement"
	}
}

func handRolledFanOut(xs []int) {
	var wg sync.WaitGroup // want "bare sync.WaitGroup"
	wg.Add(len(xs))
	for range xs {
		go func() { // want "raw go statement"
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

type pool struct {
	wg sync.WaitGroup // want "bare sync.WaitGroup"
}

type guarded struct {
	mu sync.Mutex // other sync primitives: allowed
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func work() {}
