// Package clamp is a fixture for the clamp analyzer.
package clamp

func bareFloat(v float64) uint8 {
	return uint8(v) // want "wraps instead of saturating"
}

func bareFloat32Expr(v float32) byte {
	return byte(v + 0.5) // want "wraps instead of saturating"
}

func bareIntArith(x, y int) byte {
	return byte(x + y) // want "narrowing integer arithmetic"
}

// quantPixel is a blessed helper (quant- prefix): the saturation guard
// lives here once.
func quantPixel(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5) // inside a clamp helper: allowed
}

// clampToByte is a blessed helper (clamp- prefix).
func clampToByte(x int) byte {
	if x < 0 {
		x = 0
	}
	if x > 255 {
		x = 255
	}
	return byte(x) // inside a clamp helper: allowed
}

func mask(x int) byte {
	return byte(x & 0xff) // masking shrinks the operand: allowed
}

func shiftDown(x uint32) byte {
	return byte(x >> 24) // shift-down shrinks the operand: allowed
}

func sameWidth(b byte) uint8 {
	return uint8(b) // no narrowing: allowed
}

func constantConv() byte {
	return byte(255) // constant, checked at compile time: allowed
}

func plainIdent(x int) byte {
	return byte(x) // plain identifier: the producer bounded it
}
