// Package ignore is a fixture for //lint:ignore suppression, run with the
// detrand and floateq analyzers together: a directive must silence exactly
// the analyzer it names, on its own line and the line below.
package ignore

import "time"

func suppressed() time.Time {
	//lint:ignore detrand fixture: named analyzer on the next line is silenced
	return time.Now()
}

func wrongName() time.Time {
	// The directive below names the wrong analyzer, so it must not
	// silence detrand — and since floateq finds nothing here either, it
	// is also reported as stale.
	//lint:ignore floateq fixture: names another analyzer // want "suppresses nothing"
	return time.Now() // want "wall clock"
}

func trailing(v float64) bool {
	return v == 0 //lint:ignore floateq fixture: trailing directive on the offending line
}

func unsuppressed(v float64) bool {
	return v == 0 // want "float operands"
}
