// Package detrand is a fixture for the detrand analyzer: every line with a
// want comment must be flagged, every line without one must stay silent.
package detrand

import (
	"math/rand"
	"time"
)

func globalSource() int {
	rand.Seed(42)       // want "unseeded global source"
	v := rand.Intn(6)   // want "unseeded global source"
	f := rand.Float64() // want "unseeded global source"
	_ = f
	return v
}

func wallClock() time.Duration {
	t0 := time.Now()      // want "wall clock"
	return time.Since(t0) // want "wall clock"
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor: allowed
	return rng.Intn(6)                    // method on *rand.Rand: allowed
}

func typeRef(seed int64) *rand.Rand { // *rand.Rand type reference: allowed
	var r *rand.Rand // ditto in a declaration
	r = rand.New(rand.NewSource(seed))
	return r
}

func multiSelect(a, b chan int) int {
	select { // want "scheduler-dependent"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singlePoll(a chan int) int {
	select { // one channel plus default: allowed
	case v := <-a:
		return v
	default:
		return 0
	}
}

func explicitTime(t time.Time) int64 {
	return t.UnixNano() // threaded timestamp: allowed
}
