package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ClampAnalyzer guards the [0,255] clipping boundary of InFrame §3.2's
// local amplitude adjustment: every path from the float pixel domain to the
// 8-bit drive/capture domain must saturate, not wrap. A bare uint8(v)
// silently wraps (uint8(256.7) == 0, a full-scale error in a pixel), so the
// analyzer flags narrowing conversions to uint8/byte whose operand is a
// floating-point expression or a non-constant integer arithmetic
// expression, anywhere outside a blessed clamp helper.
//
// A clamp helper is a function whose name starts with "quant" or "clamp"
// (frame.Quant8, y4m.quantByte, ...); the saturation guard lives inside it
// once, and everything else routes through it.
var ClampAnalyzer = &Analyzer{
	Name: "clamp",
	Doc:  "forbid bare narrowing conversions to uint8/byte outside quant*/clamp* helpers",
	Run:  runClamp,
}

func runClamp(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isClampHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Uint8 {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				atv := pass.Info.Types[arg]
				if atv.Value != nil {
					return true // constant, checked at compile time
				}
				ab, ok := atv.Type.Underlying().(*types.Basic)
				if !ok {
					return true
				}
				switch {
				case ab.Info()&types.IsFloat != 0:
					pass.Reportf(call.Pos(), "bare float→uint8 conversion wraps instead of saturating at the §3.2 clipping boundary; route through a quant*/clamp* helper")
				case ab.Info()&types.IsInteger != 0 && ab.Kind() != types.Uint8 && isArith(arg):
					pass.Reportf(call.Pos(), "narrowing integer arithmetic to uint8 can wrap; route through a quant*/clamp* helper or convert a range-checked value")
				}
				return true
			})
		}
	}
}

// isClampHelper reports whether name marks a blessed saturating-conversion
// helper. The convention (documented in DESIGN.md §Enforced invariants) is
// a quant-/clamp- prefix, case-insensitive on the first rune so both
// exported and unexported helpers qualify.
func isClampHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "quant") || strings.HasPrefix(lower, "clamp")
}

// isArith reports whether e is an arithmetic expression (as opposed to a
// plain identifier, field access or index whose producer already bounded
// the value).
func isArith(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		// & and >> only shrink the operand's magnitude (byte(x&0xff) is a
		// deliberate mask, not an accident); everything else can grow it.
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.OR, token.XOR:
			return true
		}
	case *ast.UnaryExpr:
		return e.Op == token.SUB || e.Op == token.XOR
	}
	return false
}
