package analysis

import (
	"go/ast"
	"go/types"
)

// PreallocateAnalyzer catches the growth-by-doubling tax in hot loops:
// appending inside a loop whose trip count is statically derivable (a range
// over a slice, or i < n with a loop-invariant bound), into a slice that
// was created without a capacity hint. Each doubling re-copies the whole
// backing array — O(n log n) bytes moved where a one-line capacity hint
// (make([]T, 0, n)) makes it O(n) with exactly one allocation.
//
// To stay precise the analyzer only fires when all of the following hold
// inside a hot function (see loops.go):
//
//   - the append statement is a direct child of the loop body (appends
//     under a condition have a data-dependent count, where a hint may
//     overshoot wildly);
//   - the loop's trip count is derivable in scope;
//   - the destination's creation is visible in the same function and
//     carries no capacity: `var x []T`, `x := []T{}`, or a 2-argument
//     make. Appends into fields of a locally built struct whose literal
//     leaves the field zero are included (the demux FrameDecode.GOBs
//     pattern); anything whose origin is out of sight is left alone.
var PreallocateAnalyzer = &Analyzer{
	Name: "preallocate",
	Doc:  "require a capacity hint when appending in a hot loop with a derivable trip count",
	Run:  runPreallocate,
}

func runPreallocate(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		if !fn.hot {
			continue
		}
		for _, loop := range fn.loops {
			checkLoopAppends(pass, fn.body, loop)
		}
	}
}

func checkLoopAppends(pass *Pass, funcBody *ast.BlockStmt, loop *loopNode) {
	if !tripCountDerivable(pass, loop) {
		return
	}
	for _, stmt := range loop.body().List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !isBuiltinAppend(pass.Info, id) {
			continue
		}
		target := ast.Unparen(as.Lhs[0])
		if known, lacksCap := targetLacksCapacity(pass, funcBody, target); known && lacksCap {
			pass.Reportf(call.Pos(), "append in a loop with a derivable trip count grows without a capacity hint; make the destination with make([]T, 0, n)")
		}
	}
}

// tripCountDerivable reports whether the loop's iteration count is knowable
// before the first iteration: a range over a slice, array or string, or a
// for loop whose condition compares the induction variable against a
// loop-invariant bound.
func tripCountDerivable(pass *Pass, loop *loopNode) bool {
	switch s := loop.stmt.(type) {
	case *ast.RangeStmt:
		t := pass.Info.Types[s.X].Type
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
			return true
		case *types.Basic:
			return t.Underlying().(*types.Basic).Info()&types.IsString != 0 ||
				t.Underlying().(*types.Basic).Info()&types.IsInteger != 0
		}
		return false
	case *ast.ForStmt:
		cond, ok := s.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		var bound ast.Expr
		switch cond.Op.String() {
		case "<", "<=":
			bound = cond.Y
		case ">", ">=":
			bound = cond.X
		default:
			return false
		}
		return loopInvariant(pass.Info, bound, loop)
	}
	return false
}

// targetLacksCapacity resolves the append destination to its creation in
// funcBody. known is false when the origin is out of sight (parameter,
// package variable, value built elsewhere); lacksCap is true when the
// creation visibly has no capacity hint.
func targetLacksCapacity(pass *Pass, funcBody *ast.BlockStmt, target ast.Expr) (known, lacksCap bool) {
	switch t := target.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		if obj == nil {
			return false, false
		}
		return identCreation(pass, funcBody, obj)
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(t.X).(*ast.Ident)
		if !ok {
			return false, false
		}
		obj := pass.Info.Uses[base]
		if obj == nil {
			return false, false
		}
		return fieldCreation(pass, funcBody, obj, t.Sel.Name)
	}
	return false, false
}

// identCreation finds obj's declaration inside funcBody and classifies it.
func identCreation(pass *Pass, funcBody *ast.BlockStmt, obj types.Object) (known, lacksCap bool) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if known {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || pass.Info.Defs[id] != obj {
					continue
				}
				if i < len(n.Rhs) {
					known, lacksCap = creationLacksCap(pass, n.Rhs[i])
				}
				return false
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if pass.Info.Defs[id] != obj {
					continue
				}
				if len(n.Values) == 0 {
					known, lacksCap = true, true // var x []T: nil slice
				} else if i < len(n.Values) {
					known, lacksCap = creationLacksCap(pass, n.Values[i])
				}
				return false
			}
		}
		return true
	})
	return known, lacksCap
}

// fieldCreation finds the composite literal that built obj in funcBody and
// reports whether it leaves the named slice field at its zero value.
func fieldCreation(pass *Pass, funcBody *ast.BlockStmt, obj types.Object, field string) (known, lacksCap bool) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if known {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || pass.Info.Defs[id] != obj || i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = ast.Unparen(ue.X)
			}
			lit, ok := rhs.(*ast.CompositeLit)
			if !ok {
				return false // built elsewhere: out of sight
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					return false // positional literal: give up
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
					known, lacksCap = creationLacksCap(pass, kv.Value)
					return false
				}
			}
			// Field left zero by the literal: a nil slice with no capacity.
			known, lacksCap = true, true
			return false
		}
		return true
	})
	return known, lacksCap
}

// creationLacksCap classifies a creation expression: a 3-argument make has
// a capacity hint; a 2-argument make or an empty literal does not; anything
// else is out of sight.
func creationLacksCap(pass *Pass, e ast.Expr) (known, lacksCap bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false, false
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			return true, len(e.Args) < 3
		}
		return false, false
	case *ast.CompositeLit:
		if _, ok := pass.Info.Types[ast.Expr(e)].Type.Underlying().(*types.Slice); ok {
			return true, len(e.Elts) == 0
		}
		return false, false
	case *ast.Ident:
		if e.Name == "nil" {
			return true, true
		}
		return false, false
	}
	return false, false
}
