package analysis

import (
	"go/ast"
	"go/types"
)

// MapRangeAnalyzer catches iteration-order nondeterminism: ranging over a
// map while feeding an order-sensitive sink. Go randomizes map iteration
// order on purpose, so a loop that appends map values to a slice or prints
// inside the loop produces a differently-ordered artifact on every run —
// the exact failure mode the bit-identical-output contract forbids.
//
// The analyzer flags a range-over-map whose body
//
//   - appends an expression involving the range value variable (or an index
//     into the ranged map) to a slice, or
//   - calls an ordered sink: fmt print functions or a Write*/Print* method.
//
// The sanctioned idiom — collect the keys, sort, then iterate the sorted
// slice — appends only the key variable and is deliberately not flagged.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "forbid map iteration that feeds ordered output (append of values, prints, writers)",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.Types[rs.X].Type
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			valueObj := rangeVarObj(pass.Info, rs.Value)
			mapObj := exprObj(pass.Info, rs.X)
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if isBuiltinAppend(pass.Info, fun) && appendsUnordered(pass.Info, call, valueObj, mapObj) {
						pass.Reportf(call.Pos(), "append of map values inside range-over-map leaks iteration order; collect keys, sort, then iterate")
					}
				case *ast.SelectorExpr:
					if isOrderedSink(pass.Info, fun) {
						pass.Reportf(call.Pos(), "%s inside range-over-map emits in random iteration order; collect keys, sort, then iterate", fun.Sel.Name)
					}
				}
				return true
			})
			return true
		})
	}
}

// rangeVarObj returns the object of the range value variable, or nil.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // range with = instead of :=
}

// exprObj returns the object behind a plain identifier or selector
// expression, or nil.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsUnordered reports whether any appended element mentions the range
// value variable or indexes the ranged map — i.e. the append output depends
// on iteration order beyond the keys themselves.
func appendsUnordered(info *types.Info, call *ast.CallExpr, valueObj, mapObj types.Object) bool {
	if len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if valueObj != nil && info.Uses[n] == valueObj {
					found = true
				}
			case *ast.IndexExpr:
				if mapObj != nil && exprObj(info, n.X) == mapObj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isOrderedSink reports whether sel is a call into ordered output: a fmt
// print function or any Write*/Print* method (io.Writer, strings.Builder,
// bufio.Writer, ...).
func isOrderedSink(info *types.Info, sel *ast.SelectorExpr) bool {
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	name := obj.Name()
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	if _, isMethod := info.Selections[sel]; !isMethod {
		return false
	}
	switch {
	case name == "Write", name == "WriteString", name == "WriteByte",
		name == "WriteRune", name == "Print", name == "Printf", name == "Println":
		return true
	}
	return false
}
