package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer bans == and != between floating-point operands. The
// degenerate-score class fixed by hand in PR 1 (all-equal and all-zero
// noise-energy scores slipping past exact comparisons, NaN poisoning the
// cluster2 threshold) is exactly what exact float equality produces:
// decisions that flip with evaluation order, fused multiply-add, or a
// single NaN. Compare against an explicit epsilon, use math.IsNaN for NaN
// probes, or restructure the decision so no equality is needed.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, be.X) && !isFloat(pass.Info, be.Y) {
				return true
			}
			// Both sides constant: folded at compile time, no runtime hazard.
			if isConst(pass.Info, be.X) && isConst(pass.Info, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				pass.Reportf(be.Pos(), "x %s x float self-comparison; use math.IsNaN", be.Op)
				return true
			}
			pass.Reportf(be.Pos(), "%s on float operands is order- and NaN-sensitive; compare with an epsilon or restructure the decision", be.Op)
			return true
		})
	}
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// sameExpr reports whether two expressions are the same plain identifier or
// selector chain — the v != v NaN-test idiom.
func sameExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	}
	return false
}
