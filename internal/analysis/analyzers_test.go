package analysis

// Golden-diagnostic tests: each analyzer runs over a fixture package under
// testdata/src/<analyzer>/ whose sources carry `// want "regex"` comments.
// The harness demands an exact match in both directions — every want must
// be hit by a diagnostic on its line, and every diagnostic must be covered
// by a want — so each fixture is simultaneously the positive and the
// negative test set for its analyzer.

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantSpec is one expected diagnostic: a regexp anchored to a fixture line.
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture parses and type-checks testdata/src/<name> under the given
// import path and collects its want specs.
func loadFixture(t *testing.T, name, path string) (*token.FileSet, *Package, []*wantSpec) {
	t.Helper()
	fset := token.NewFileSet()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadPackage(fset, dir, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return fset, pkg, wants
}

// checkGolden verifies the 1:1 correspondence between diagnostics and wants.
func checkGolden(t *testing.T, diags []Diagnostic, wants []*wantSpec) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range DefaultAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("analyzer %q not registered", name)
	return nil
}

// TestAnalyzerFixtures runs every analyzer against its own fixture package.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range DefaultAnalyzers() {
		t.Run(a.Name, func(t *testing.T) {
			fset, pkg, wants := loadFixture(t, a.Name, a.Name)
			if len(wants) == 0 {
				t.Fatalf("fixture for %s has no want comments", a.Name)
			}
			checkGolden(t, RunPackage(fset, pkg, []*Analyzer{a}), wants)
		})
	}
}

// TestIgnoreDirective runs detrand and floateq together over the ignore
// fixture: a //lint:ignore must silence exactly the analyzer it names
// (trailing or on the preceding line) and nothing else.
func TestIgnoreDirective(t *testing.T) {
	fset, pkg, wants := loadFixture(t, "ignore", "ignore")
	diags := RunPackage(fset, pkg, []*Analyzer{
		analyzerByName(t, "detrand"),
		analyzerByName(t, "floateq"),
	})
	checkGolden(t, diags, wants)
}

// TestDirectiveHygiene checks that a directive without a reason, a
// directive naming an unregistered analyzer, and a directive that no
// longer suppresses anything are all reported.
func TestDirectiveHygiene(t *testing.T) {
	fset, pkg, _ := loadFixture(t, "ignorebad", "ignorebad")
	diags := RunPackage(fset, pkg, DefaultAnalyzers())
	var malformed, unknown, stale bool
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		switch {
		case strings.Contains(d.Message, "malformed"):
			malformed = true
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown = true
		case strings.Contains(d.Message, "suppresses nothing"):
			stale = true
		}
	}
	if !malformed {
		t.Error("missing-reason directive was not reported")
	}
	if !unknown {
		t.Error("unknown-analyzer directive was not reported")
	}
	if !stale {
		t.Error("stale directive was not reported as unused")
	}
}

// TestUnusedDirectiveScopedToRunSet pins the -only interaction: a subset
// run must not call a directive stale when its analyzer did not run, and
// must not call its name unknown either.
func TestUnusedDirectiveScopedToRunSet(t *testing.T) {
	fset, pkg, _ := loadFixture(t, "ignorebad", "ignorebad")
	diags := RunPackage(fset, pkg, []*Analyzer{analyzerByName(t, "detrand")})
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("floateq did not run, yet its directive was called stale: %s", d)
		}
		if strings.Contains(d.Message, `unknown analyzer "floateq"`) {
			t.Errorf("registered analyzer reported unknown in subset run: %s", d)
		}
	}
}

// TestPathExemptions re-loads fixtures under exempt import paths: the same
// sources that are flagged as pipeline code must be silent as the blessed
// concurrency engine or as a command.
func TestPathExemptions(t *testing.T) {
	cases := []struct {
		fixture, analyzer, path string
	}{
		{"goroutine", "goroutine", "inframe/internal/parallel"},
		{"detrand", "detrand", "inframe/cmd/inframe-bench"},
		{"detrand", "detrand", "inframe/examples/quickstart"},
	}
	for _, c := range cases {
		t.Run(c.analyzer+"@"+c.path, func(t *testing.T) {
			fset, pkg, _ := loadFixture(t, c.fixture, c.path)
			diags := RunPackage(fset, pkg, []*Analyzer{analyzerByName(t, c.analyzer)})
			for _, d := range diags {
				t.Errorf("exempt path %s still flagged: %s", c.path, d)
			}
		})
	}
}

// TestRepoIsLintClean loads the real module and runs the full registry: the
// tree must stay clean so `inframe-lint ./...` can gate verify.sh. A
// failure here names exactly the offending line.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check in -short mode")
	}
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(mod.Packages))
	}
	analyzers := DefaultAnalyzers()
	if len(analyzers) != registrySize {
		t.Fatalf("self-lint ran %d analyzers, want %d", len(analyzers), registrySize)
	}
	for _, d := range Run(mod, analyzers) {
		t.Errorf("%s", d)
	}
}

// registrySize pins the registry: growing or shrinking it is a deliberate
// act that updates this constant, README § Lint, and DESIGN.md §5h
// together.
const registrySize = 15

// TestDefaultAnalyzersRegistry pins the registry contract: exactly
// registrySize analyzers, sorted, unique names, docs present.
func TestDefaultAnalyzersRegistry(t *testing.T) {
	as := DefaultAnalyzers()
	if len(as) != registrySize {
		t.Fatalf("registry has %d analyzers, want exactly %d (update registrySize, README § Lint and DESIGN.md §5h together)", len(as), registrySize)
	}
	seen := make(map[string]bool)
	for i, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d incomplete: %+v", i, a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("registry not sorted at %q", a.Name)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering the gate greps.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "clamp",
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: clamp: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLoadPackageRejectsEmptyDir pins the loader error path.
func TestLoadPackageRejectsEmptyDir(t *testing.T) {
	fset := token.NewFileSet()
	if _, err := LoadPackage(fset, t.TempDir(), "empty"); err == nil {
		t.Fatal("LoadPackage on an empty dir did not fail")
	}
}

// TestSuppressionIsLineScoped builds a diagnostic index directly and checks
// the directive covers its own line and the next, nothing else.
func TestSuppressionIsLineScoped(t *testing.T) {
	fset, pkg, _ := loadFixture(t, "ignore", "ignore")
	known := map[string]bool{"detrand": true, "floateq": true}
	idx, diags := collectDirectives(fset, pkg.Files, known)
	if len(diags) != 0 {
		t.Fatalf("well-formed fixture produced directive diagnostics: %v", diags)
	}
	var file string
	var line int
	for f, byName := range idx {
		for _, dir := range byName["detrand"] {
			file, line = f, dir.pos.Line
		}
	}
	if file == "" {
		t.Fatal("no detrand directive found in index")
	}
	mk := func(l int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: l}, Analyzer: analyzer}
	}
	if !idx.suppresses(mk(line, "detrand")) {
		t.Error("directive does not suppress its own line")
	}
	if idx.suppresses(mk(line+5, "detrand")) {
		t.Error("directive suppresses a distant line")
	}
	if idx.suppresses(mk(line, "floateq")) {
		t.Error("directive suppresses an analyzer it does not name")
	}
}
