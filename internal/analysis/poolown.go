package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Poolown enforces the frame-pool ownership discipline (DESIGN.md §5e) on
// top of the dataflow layer: every frame drawn from a Pool.Get — directly
// or through a same-package callee whose summary says it returns a
// pool-owned frame — must on every control-flow path either reach a
// Put/Recycle or transfer ownership out of the function (be returned,
// stored into a structure, sent on a channel, or handed to a callee whose
// summary consumes it). Three defect classes are reported:
//
//   - leak-on-path: a path to a return (typically an early error return)
//     or to a loop back edge on which an owned frame is never released;
//   - double-release: a path on which one frame reaches Put/Recycle twice
//     (frame.Pool panics at runtime; this finds it at lint time);
//   - use-after-release: a path that touches a frame after handing it
//     back to the pool.
//
// The analysis is path-sensitive per function and module-wide across
// calls: the summary engine (summaries.go) computes consumes/returns-owned
// facts for every declared function bottom-up in import-DAG order and to
// a fixpoint within each package, so a frame acquired through the facade
// or consumed two packages away is tracked transitively (plus the
// universal Put/Recycle names). A frame handed to a callee with no
// summary is treated as borrowed, never consumed. Function literals
// passed to the synchronous
// parallel helpers (For, ForChunked, Go) run to completion before the
// caller continues, so releases inside them count; any other literal
// capturing an owned frame is an ownership escape. Functions using goto
// or labeled branches, or exceeding the path budget, are skipped rather
// than guessed at.
var Poolown = &Analyzer{
	Name: "poolown",
	Doc:  "pool frames must be released or transferred on every path",
	Run:  runPoolown,
}

// ownStatus is the per-variable ownership state.
type ownStatus uint8

const (
	ownHeld     ownStatus = iota // acquired, not yet released
	ownReleased                  // handed back to the pool
	ownDeferred                  // release deferred to function exit
)

// varOwn is one tracked frame variable's state.
type varOwn struct {
	status ownStatus
	get    token.Pos // the acquiring Pool.Get (anchor for leak findings)
}

// poolState is the abstract store: tracked frame variables only. A
// variable leaves the map when ownership escapes the function's view.
type poolState struct {
	vars map[*types.Var]varOwn
}

func (s *poolState) clone() *poolState {
	c := &poolState{vars: make(map[*types.Var]varOwn, len(s.vars))}
	for v, o := range s.vars {
		c.vars[v] = o
	}
	return c
}

func (s *poolState) fingerprint() string {
	return sortedVarNames(s.vars, func(v *types.Var, o varOwn) string {
		return fmt.Sprintf("%d@%d:%d", v.Pos(), o.get, o.status)
	})
}

func runPoolown(pass *Pass) {
	summaries := pass.ownSummaries()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			resultVars := make(map[types.Object]bool)
			if fd.Type.Results != nil {
				for _, field := range fd.Type.Results.List {
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							resultVars[obj] = true
						}
					}
				}
			}
			scanPoolownUnit(pass, summaries, fd.Body, resultVars)
			// Every function literal is its own scan unit: its locals are
			// analyzed against its own paths, regardless of how the outer
			// function treats the literal.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					scanPoolownUnit(pass, summaries, lit.Body, nil)
				}
				return true
			})
		}
	}
}

// poolownUnit carries the per-scan-unit context and accumulates findings,
// deduplicated by position and text, reported only if no bail fired.
type poolownUnit struct {
	pass      *Pass
	summaries map[*types.Func]ownSummary
	results   map[types.Object]bool
	body      *ast.BlockStmt
	findings  map[string]poolownFinding
	bailed    bool
}

type poolownFinding struct {
	pos token.Pos
	msg string
}

func scanPoolownUnit(pass *Pass, summaries map[*types.Func]ownSummary, body *ast.BlockStmt, results map[types.Object]bool) {
	u := &poolownUnit{
		pass:      pass,
		summaries: summaries,
		results:   results,
		body:      body,
		findings:  make(map[string]poolownFinding),
	}
	hooks := pathHooks{
		copy: func(st pathState) pathState { return st.(*poolState).clone() },
		key:  func(st pathState) string { return st.(*poolState).fingerprint() },
		stmt: func(s ast.Stmt, st pathState) { u.stmt(s, st.(*poolState)) },
		cond: func(e ast.Expr, st pathState) { u.expr(e, st.(*poolState)) },
		exit: func(ret *ast.ReturnStmt, end token.Pos, st pathState) {
			line := u.pass.Fset.Position(end).Line
			for _, o := range st.(*poolState).vars {
				if o.status == ownHeld {
					u.record(o.get, fmt.Sprintf(
						"frame from Pool.Get is not released on the path exiting at line %d", line))
				}
			}
		},
		loopBack: func(loop ast.Stmt, entry any, st pathState) {
			before := entry.(map[*types.Var]bool)
			vars := st.(*poolState).vars
			for v, o := range vars {
				if o.status == ownHeld && !before[v] {
					u.record(o.get, "frame from Pool.Get is still held at the loop back edge; release it before the next iteration")
					// One finding per defect: stop tracking so the exit
					// hook does not re-report the same frame.
					delete(vars, v)
				}
			}
		},
		snapshot: func(st pathState) any {
			snap := make(map[*types.Var]bool)
			for v := range st.(*poolState).vars {
				snap[v] = true
			}
			return snap
		},
		bail: func() { u.bailed = true },
	}
	execPaths(body, &poolState{vars: make(map[*types.Var]varOwn)}, hooks)
	if u.bailed {
		return
	}
	out := make([]poolownFinding, 0, len(u.findings))
	for _, f := range u.findings {
		//lint:ignore maprange the sort below fully orders findings by (pos, msg)
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	for _, f := range out {
		u.pass.Reportf(f.pos, "%s", f.msg)
	}
}

func (u *poolownUnit) record(pos token.Pos, msg string) {
	u.findings[fmt.Sprintf("%d|%s", pos, msg)] = poolownFinding{pos, msg}
}

// lookup resolves an identifier to its variable object.
func (u *poolownUnit) lookup(id *ast.Ident) *types.Var {
	obj := u.pass.Info.Uses[id]
	if obj == nil {
		obj = u.pass.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// grantsOwnership reports whether rhs hands a pool-owned frame to its
// assignee: a direct Pool.Get, or a same-package callee summarized as
// returning an owned frame.
func (u *poolownUnit) grantsOwnership(rhs ast.Expr) bool {
	if isPoolGetCall(u.pass.Info, rhs) {
		return true
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := funcObj(u.pass.Info, call.Fun)
	if obj == nil {
		return false
	}
	return u.summaries[obj].returnsOwned
}

// stmt interprets one leaf statement for its ownership effects.
func (u *poolownUnit) stmt(s ast.Stmt, st *poolState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		u.assign(s, st)
	case *ast.ExprStmt:
		u.expr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						u.assignPair(name, vs.Values[i], st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		u.deferred(s.Call, st)
	case *ast.GoStmt:
		// The goroutine outlives this path's view; everything it touches
		// escapes.
		u.escapeAllIn(s.Call, st)
	case *ast.SendStmt:
		if v := u.identVar(s.Value); v != nil {
			delete(st.vars, v)
		} else {
			u.expr(s.Value, st)
		}
		u.expr(s.Chan, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if v := u.identVar(res); v != nil {
				// Ownership transfers to the caller.
				delete(st.vars, v)
				continue
			}
			u.expr(res, st)
		}
	case *ast.IncDecStmt:
		u.expr(s.X, st)
	case *ast.RangeStmt:
		// The engine hands the whole range statement over for its per-
		// iteration key/value assignment.
		for _, target := range []ast.Expr{s.Key, s.Value} {
			if target == nil {
				continue
			}
			if v := u.identVar(target); v != nil {
				delete(st.vars, v)
			}
		}
	}
}

// identVar returns the variable behind e if e is a plain identifier,
// else nil. Deleting an untracked variable from the state is a no-op, so
// callers use this for transfer/escape targets without a tracked check.
func (u *poolownUnit) identVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return u.lookup(id)
}

// assign interprets one assignment statement.
func (u *poolownUnit) assign(s *ast.AssignStmt, st *poolState) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			u.assignPair(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	// Multi-value form (a, b := f()): no ownership grant is inferred, but
	// the call's argument effects still apply and overwritten trackers
	// reset.
	for _, rhs := range s.Rhs {
		u.expr(rhs, st)
	}
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v := u.lookup(id); v != nil {
				delete(st.vars, v)
			}
		}
	}
}

// assignPair interprets a single lhs = rhs pair.
func (u *poolownUnit) assignPair(lhs, rhs ast.Expr, st *poolState) {
	lhsID, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)
	rhs = ast.Unparen(rhs)

	if u.grantsOwnership(rhs) {
		// Argument effects of the granting call still apply (e.g. a
		// constructor consuming another frame).
		u.expr(rhs, st)
		if lhsIsIdent && lhsID.Name != "_" {
			if v := u.lookup(lhsID); v != nil && !u.results[v] {
				st.vars[v] = varOwn{status: ownHeld, get: rhs.Pos()}
				return
			}
		}
		// Granted frame lands somewhere not trackable (slice element,
		// field, blank): ownership escapes immediately.
		return
	}

	// Alias move: lhs = ownedVar transfers the tracker to lhs.
	if srcID, ok := rhs.(*ast.Ident); ok {
		if src := u.lookup(srcID); src != nil {
			if o, tracked := st.vars[src]; tracked {
				if o.status != ownHeld {
					// Aliasing a released frame is a use of it.
					u.useIdent(srcID, st)
				}
				delete(st.vars, src)
				if lhsIsIdent && lhsID.Name != "_" {
					if dst := u.lookup(lhsID); dst != nil && !u.results[dst] {
						st.vars[dst] = o
						return
					}
				}
				// Stored into a structure: ownership escapes.
				return
			}
		}
	}

	u.expr(rhs, st)
	if lhsIsIdent {
		if v := u.lookup(lhsID); v != nil {
			// Overwriting a tracker ends its story.
			delete(st.vars, v)
		}
		return
	}
	u.expr(lhs, st)
}

// deferred interprets `defer call`: a deferred Put/Recycle releases at
// exit (so later uses on the path are fine and exits are clean); any
// other deferred call escapes its tracked arguments.
func (u *poolownUnit) deferred(call *ast.CallExpr, st *poolState) {
	if isConsumeCallee(u.pass.Info, call.Fun) {
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			if v := u.lookup(id); v != nil {
				if o, tracked := st.vars[v]; tracked {
					switch o.status {
					case ownHeld:
						o.status = ownDeferred
						st.vars[v] = o
					case ownReleased, ownDeferred:
						u.record(arg.Pos(), fmt.Sprintf(
							"frame %q is released twice on this path", id.Name))
					}
				}
			}
		}
		return
	}
	u.escapeAllIn(call, st)
}

// escapeAllIn removes every tracked variable referenced anywhere in n.
func (u *poolownUnit) escapeAllIn(n ast.Node, st *poolState) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := u.lookup(id); v != nil {
				delete(st.vars, v)
			}
		}
		return true
	})
}

// useIdent flags a read of a released frame.
func (u *poolownUnit) useIdent(id *ast.Ident, st *poolState) {
	v := u.lookup(id)
	if v == nil {
		return
	}
	if o, tracked := st.vars[v]; tracked && o.status == ownReleased {
		u.record(id.Pos(), fmt.Sprintf(
			"use of frame %q after it was released to the pool", id.Name))
	}
}

// expr interprets one expression for ownership effects. Recursion is
// explicit (not ast.Inspect) so call arguments and function literals get
// their targeted handling instead of a blind walk.
func (u *poolownUnit) expr(e ast.Expr, st *poolState) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		u.useIdent(e, st)
	case *ast.CallExpr:
		u.call(e, st)
	case *ast.FuncLit:
		// A literal that is a value (stored, returned, passed to an
		// unknown callee) may run at any later time: captures escape.
		u.escapeAllIn(e.Body, st)
	case *ast.ParenExpr:
		u.expr(e.X, st)
	case *ast.SelectorExpr:
		u.expr(e.X, st)
	case *ast.IndexExpr:
		u.expr(e.X, st)
		u.expr(e.Index, st)
	case *ast.SliceExpr:
		u.expr(e.X, st)
		u.expr(e.Low, st)
		u.expr(e.High, st)
		u.expr(e.Max, st)
	case *ast.StarExpr:
		u.expr(e.X, st)
	case *ast.UnaryExpr:
		u.expr(e.X, st)
	case *ast.BinaryExpr:
		u.expr(e.X, st)
		u.expr(e.Y, st)
	case *ast.TypeAssertExpr:
		u.expr(e.X, st)
	case *ast.KeyValueExpr:
		u.expr(e.Value, st)
	case *ast.CompositeLit:
		// A frame placed in a composite literal escapes into it.
		for _, elt := range e.Elts {
			inner := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				inner = kv.Value
			}
			if id, ok := ast.Unparen(inner).(*ast.Ident); ok {
				if v := u.lookup(id); v != nil {
					if _, tracked := st.vars[v]; tracked {
						delete(st.vars, v)
						continue
					}
				}
			}
			u.expr(inner, st)
		}
	}
}

// call interprets one call expression.
func (u *poolownUnit) call(c *ast.CallExpr, st *poolState) {
	// Immediately invoked literal runs synchronously: scan it inline.
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		u.inlineScan(lit, st)
		for _, arg := range c.Args {
			u.expr(arg, st)
		}
		return
	}
	// Receiver/base effects (flags use-after-release on f.Row(...)).
	if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
		u.expr(sel.X, st)
	}

	// Universal consumers: Put and Recycle by name.
	if isConsumeCallee(u.pass.Info, c.Fun) {
		for _, arg := range c.Args {
			u.consumeArg(arg, st)
		}
		return
	}

	// Builtin append: appended frames escape into the slice.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "append" {
		for i, arg := range c.Args {
			if i == 0 {
				u.expr(arg, st)
				continue
			}
			if v := u.identTracked(arg, st); v != nil {
				delete(st.vars, v)
				continue
			}
			u.expr(arg, st)
		}
		return
	}

	obj := funcObj(u.pass.Info, c.Fun)
	sum, hasSum := ownSummaryFor(u.summaries, obj)

	// Synchronous parallel helpers run their literals to completion
	// before returning, so releases inside count on this path.
	syncLit := obj != nil && (obj.Name() == "For" || obj.Name() == "ForChunked" || obj.Name() == "Go")

	for i, arg := range c.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if syncLit {
				u.inlineScan(lit, st)
			} else {
				u.escapeAllIn(lit.Body, st)
			}
			continue
		}
		if hasSum && sum.consumes[i] {
			u.consumeArg(arg, st)
			continue
		}
		// Borrow: the callee may read the frame but the caller still owns
		// it. A released frame handed out is still a use-after-release.
		u.expr(arg, st)
	}
}

func ownSummaryFor(summaries map[*types.Func]ownSummary, obj *types.Func) (ownSummary, bool) {
	if obj == nil {
		return ownSummary{}, false
	}
	s, ok := summaries[obj]
	return s, ok
}

// identTracked returns the tracked variable behind e, or nil.
func (u *poolownUnit) identTracked(e ast.Expr, st *poolState) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v := u.lookup(id)
	if v == nil {
		return nil
	}
	if _, tracked := st.vars[v]; !tracked {
		return nil
	}
	return v
}

// consumeArg interprets handing arg to a releasing callee.
func (u *poolownUnit) consumeArg(arg ast.Expr, st *poolState) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		u.expr(arg, st)
		return
	}
	v := u.lookup(id)
	if v == nil {
		return
	}
	o, tracked := st.vars[v]
	if !tracked {
		return
	}
	switch o.status {
	case ownHeld, ownDeferred:
		if o.status == ownDeferred {
			// An explicit release after a deferred one double-frees at
			// exit.
			u.record(arg.Pos(), fmt.Sprintf(
				"frame %q is released twice on this path", id.Name))
			return
		}
		o.status = ownReleased
		st.vars[v] = o
	case ownReleased:
		u.record(arg.Pos(), fmt.Sprintf(
			"frame %q is released twice on this path", id.Name))
	}
}

// inlineScan applies a synchronously executed literal's effects on the
// outer state: releases of captured frames count, and a captured frame
// copied out of the literal (assigned somewhere, appended, sent) escapes.
// Reads — the common case of workers filling a frame's rows — leave
// ownership with the caller.
func (u *poolownUnit) inlineScan(lit *ast.FuncLit, st *poolState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isConsumeCallee(u.pass.Info, n.Fun) {
				for _, arg := range n.Args {
					u.consumeArg(arg, st)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if v := u.identTracked(rhs, st); v != nil {
					delete(st.vars, v)
				}
			}
		case *ast.SendStmt:
			if v := u.identTracked(n.Value, st); v != nil {
				delete(st.vars, v)
			}
		case *ast.GoStmt, *ast.DeferStmt:
			u.escapeAllIn(n, st)
		}
		return true
	})
}
