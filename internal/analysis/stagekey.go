package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Stagekey enforces the frozen stream-stage registry behind the
// determinism contract: every splitmix64 stream derivation — any call
// whose parameter is the named type Stage — must key off a compile-time
// constant declared in the registry package (the package that declares
// the Stage type, internal/detrng in this repo). Renumbering or ad-hoc
// stage values silently shifts every seeded outcome pinned by the
// robustness matrix and the fleet distribution tests, so the analyzer
// rejects:
//
//   - stage arguments that are literals, conversions (Stage(7)) or
//     non-constant expressions;
//   - arithmetic on stage values (base+1 recreates the renumbering
//     hazard the registry exists to kill);
//   - Stage constants declared outside the registry package;
//   - duplicate IDs within one registry const block (one block = one
//     seed domain; domains may reuse IDs, a domain may not);
//   - iota in registry declarations (an insertion renumbers everything
//     below it — IDs must be explicit literals).
//
// Forwarding is the one sanctioned indirection: passing an enclosing
// function's own Stage parameter onward (the impair/fleet rng wrappers)
// is clean, because the obligation moves to that function's callers,
// where the same check applies. The summary engine (summaries.go) closes
// the loophole that leniency opens: it traces, module-wide, which seed
// domains' constants flow into every forwarded Stage parameter, and a
// wrapper declared outside the registry package that receives constants
// from more than one domain is flagged at its declaration — one wrapper
// mixing domains couples streams the registry deliberately separates.
var Stagekey = &Analyzer{
	Name: "stagekey",
	Doc:  "stream stages must be frozen registry constants",
	Run:  runStagekey,
}

func runStagekey(pass *Pass) {
	stagePkg := stageHomePackage(pass)
	mixed := pass.stageMixFindings()
	for _, f := range pass.Files {
		checkStageDecls(pass, f, stagePkg)
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				for _, m := range mixed[fn] {
					pass.Reportf(fd.Name.Pos(),
						"stage parameter %s receives registry constants from multiple seed domains: %s; a forwarding wrapper belongs to exactly one domain — split it or move it into the registry package",
						m.param, m.detail)
				}
			}
			params := stageParams(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkStageCall(pass, call, params)
				return true
			})
			return false
		})
	}
}

// stageHomePackage returns the package object declaring the named type
// Stage if this pass's package declares it, else nil.
func stageHomePackage(pass *Pass) *types.Package {
	if pass.Pkg == nil {
		return nil
	}
	if obj := pass.Pkg.Scope().Lookup("Stage"); obj != nil {
		if _, ok := obj.(*types.TypeName); ok {
			return pass.Pkg
		}
	}
	return nil
}

// isStageType reports whether t is (a named type called) Stage, and
// returns the declaring package.
func isStageType(t types.Type) (*types.Package, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Stage" {
		return nil, false
	}
	return named.Obj().Pkg(), true
}

// stageParams collects fd's own parameters of type Stage (receiver
// included); forwarding one of them is sanctioned.
func stageParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := isStageType(obj.Type()); ok {
					out[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// checkStageDecls runs the registry-side rules over one file: Stage
// constants must live in the registry package, use explicit literal
// values (no iota), and be unique within their const block.
func checkStageDecls(pass *Pass, f *ast.File, homePkg *types.Package) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		// One const block is one seed domain: values must be unique in it.
		seen := make(map[string]*ast.Ident)
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj, ok := pass.Info.Defs[name].(*types.Const)
				if !ok {
					continue
				}
				declPkg, isStage := isStageType(obj.Type())
				if !isStage {
					continue
				}
				if homePkg == nil || declPkg != pass.Pkg {
					pass.Reportf(name.Pos(),
						"stage constant %s declared outside the registry package %s; all stage IDs live in one frozen registry",
						name.Name, declPkg.Path())
					continue
				}
				if usesIota(vs) {
					pass.Reportf(name.Pos(),
						"stage constant %s uses iota; stage IDs must be explicit literals so insertions never renumber the registry",
						name.Name)
					continue
				}
				val := obj.Val().ExactString()
				if prev, dup := seen[val]; dup {
					pass.Reportf(name.Pos(),
						"stage constant %s duplicates the ID of %s in the same domain; IDs must be unique within a const block",
						name.Name, prev.Name)
					continue
				}
				seen[val] = name
			}
		}
	}
}

// usesIota reports whether any value expression of the spec mentions iota.
func usesIota(vs *ast.ValueSpec) bool {
	if len(vs.Values) == 0 {
		// Implicit repetition inherits the previous spec's expression,
		// which in a const block only works with iota.
		return true
	}
	found := false
	for _, v := range vs.Values {
		ast.Inspect(v, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "iota" {
				found = true
			}
			return !found
		})
	}
	return found
}

// checkStageCall validates every Stage-typed argument of one call.
func checkStageCall(pass *Pass, call *ast.CallExpr, fnStageParams map[types.Object]bool) {
	obj := funcObj(pass.Info, call.Fun)
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if params.At(i) == nil {
			continue
		}
		pt := params.At(i).Type()
		if i == params.Len()-1 && sig.Variadic() {
			if slice, ok := pt.(*types.Slice); ok {
				pt = slice.Elem()
			}
		}
		stagePkg, isStage := isStageType(pt)
		if !isStage {
			continue
		}
		checkStageArg(pass, call.Args[i], stagePkg, fnStageParams)
	}
}

func checkStageArg(pass *Pass, arg ast.Expr, stagePkg *types.Package, fnStageParams map[types.Object]bool) {
	e := ast.Unparen(arg)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		pass.Reportf(arg.Pos(),
			"arithmetic on stage values; derive nothing — add an explicit constant to the registry instead")
		return
	case *ast.BasicLit:
		pass.Reportf(arg.Pos(),
			"unregistered stage literal %s; stages must be named constants from the registry", e.Value)
		return
	case *ast.CallExpr:
		// A conversion like Stage(7) manufactures an unregistered ID; a
		// function result is not a compile-time constant either way.
		pass.Reportf(arg.Pos(),
			"stage argument is not a registry constant; only named constants from the registry package key a stream")
		return
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := e.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = e.(*ast.Ident)
		}
		obj := pass.Info.Uses[id]
		if c, ok := obj.(*types.Const); ok {
			if c.Pkg() != stagePkg {
				pass.Reportf(arg.Pos(),
					"stage constant %s is declared outside the registry package; move it into the registry", id.Name)
			}
			return
		}
		if obj != nil && fnStageParams[obj] {
			// Sanctioned forwarding of the enclosing function's own
			// Stage parameter; the obligation sits with its callers.
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"stage argument is not a compile-time registry constant; streams must be keyed by frozen stage IDs")
}
