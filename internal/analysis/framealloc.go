package analysis

import (
	"go/ast"
	"go/types"
)

// FrameAllocAnalyzer keeps whole-frame allocations out of the pipeline's
// innermost hot loops. A Frame buffer is the unit of cost in this codebase
// (~2 MB at the paper's 1080p panel): one frame.New or Clone per iteration
// of a render or decode loop dwarfs every scalar allocation hotalloc
// catches, and is exactly what the frame.Pool exists to eliminate.
//
// Inside the innermost loops of hot functions (see loops.go for hotness)
// it flags calls to the frame-allocating constructors and methods — any
// callee named New, NewFilled, Clone, BoxBlur, Resample, Region,
// Complement, Average or Luma whose result includes a *Frame. Calls routed
// through a pool (a Get method on a type named Pool) are the sanctioned
// replacement and stay allowed, as do the Into variants, which write into a
// caller-owned buffer and allocate nothing.
//
// The fix is the repo's ownership idiom (DESIGN.md §5e): Get the buffer
// from the stage's pool before the loop — or once per iteration with a
// matching Put — and use the Into variant of the op.
var FrameAllocAnalyzer = &Analyzer{
	Name: "framealloc",
	Doc:  "forbid frame-buffer allocations (frame.New/Clone/BoxBlur/...) in innermost loops of hot functions; use a frame.Pool and Into variants",
	Run:  runFrameAlloc,
}

// frameAllocators is the deny-list of callee names that hand back a freshly
// allocated Frame. Matching is by name plus a *Frame result so the fixture
// (which cannot import internal/frame) and the real package are both
// covered; Pool.Get is deliberately absent — it is the sanctioned path.
var frameAllocators = map[string]bool{
	"New":        true,
	"NewFilled":  true,
	"Clone":      true,
	"BoxBlur":    true,
	"Resample":   true,
	"Region":     true,
	"Complement": true,
	"Average":    true,
	"Luma":       true,
}

func runFrameAlloc(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		if !fn.hot {
			continue
		}
		for _, loop := range fn.loops {
			if !loop.innermost() {
				continue
			}
			inspectLoop(loop.body(), func(n ast.Node) {
				checkFrameAllocNode(pass, fn, n)
			})
		}
	}
}

func checkFrameAllocNode(pass *Pass, fn *funcLoops, n ast.Node) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	obj := funcObj(pass.Info, call.Fun)
	if obj == nil || !frameAllocators[obj.Name()] {
		return
	}
	if !returnsFramePtr(obj) {
		return
	}
	pass.Reportf(call.Pos(), "%s allocates a frame buffer every iteration of a hot innermost loop in %s; Get from a frame.Pool and use the Into variant", obj.Name(), fn.name)
}

// returnsFramePtr reports whether any result of the function is a pointer
// to a named type called Frame.
func returnsFramePtr(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		ptr, ok := res.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if ok && named.Obj().Name() == "Frame" {
			return true
		}
	}
	return false
}
