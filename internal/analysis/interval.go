package analysis

import (
	"fmt"
	"math"
)

// interval is the abstract domain of the intrange analyzer: a closed
// range [lo, hi] over float64, with ±Inf for unbounded ends. float64
// represents every integer the 32-bit-and-under checks care about
// exactly; the 64-bit checks only ever test "entirely outside the type",
// where the representation error at 1e18 scale is irrelevant.
//
// House style note: this file deliberately contains no float == or !=
// (floateq forbids them module-wide, analysis code included). Emptiness,
// ordering and fingerprinting are all expressed through inequalities or
// formatted strings.
type interval struct {
	lo, hi float64
}

// topInterval is the unbounded interval: nothing known.
func topInterval() interval {
	return interval{math.Inf(-1), math.Inf(1)}
}

// isTop reports that both ends are unbounded.
func (iv interval) isTop() bool {
	return math.IsInf(iv.lo, -1) && math.IsInf(iv.hi, 1)
}

// isEmpty reports an infeasible interval (a branch refinement proved the
// path impossible).
func (iv interval) isEmpty() bool {
	return iv.lo > iv.hi
}

// within reports iv ⊆ o. Empty intervals are within everything (the path
// cannot execute, so any check on it holds vacuously).
func (iv interval) within(o interval) bool {
	if iv.isEmpty() {
		return true
	}
	return iv.lo >= o.lo && iv.hi <= o.hi
}

// disjoint reports that iv and o share no point — the "definitely
// overflows" test for 64-bit targets.
func (iv interval) disjoint(o interval) bool {
	if iv.isEmpty() || o.isEmpty() {
		return true
	}
	return iv.hi < o.lo || iv.lo > o.hi
}

// union is the lattice join.
func (iv interval) union(o interval) interval {
	if iv.isEmpty() {
		return o
	}
	if o.isEmpty() {
		return iv
	}
	return interval{math.Min(iv.lo, o.lo), math.Max(iv.hi, o.hi)}
}

// intersect is the lattice meet (may be empty).
func (iv interval) intersect(o interval) interval {
	return interval{math.Max(iv.lo, o.lo), math.Min(iv.hi, o.hi)}
}

// fingerprint renders the interval for state dedup keys.
func (iv interval) fingerprint() string {
	return fmt.Sprintf("%g:%g", iv.lo, iv.hi)
}

// sameAs reports that two intervals have identical bounds, via their
// fingerprints (string equality, keeping float comparison out of the
// code).
func (iv interval) sameAs(o interval) bool {
	return iv.fingerprint() == o.fingerprint()
}

func (iv interval) add(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	return interval{addLo(iv.lo, o.lo), addHi(iv.hi, o.hi)}
}

func (iv interval) sub(o interval) interval {
	return iv.add(o.neg())
}

func (iv interval) neg() interval {
	if iv.isEmpty() {
		return iv
	}
	return interval{-iv.hi, -iv.lo}
}

// addLo/addHi add with the convention that an Inf+(-Inf) collision rounds
// toward the unbounded (conservative) side.
func addLo(a, b float64) float64 {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		if math.IsInf(a, -1) || math.IsInf(b, -1) {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	return a + b
}

func addHi(a, b float64) float64 {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		if math.IsInf(a, 1) || math.IsInf(b, 1) {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return a + b
}

// trunc applies float→integer truncation toward zero to both ends.
func (iv interval) trunc() interval {
	if iv.isEmpty() {
		return iv
	}
	return interval{math.Trunc(iv.lo), math.Trunc(iv.hi)}
}

// mul multiplies two intervals. Only the all-finite case is computed
// precisely; any unbounded operand collapses to top (0·Inf is a NaN trap
// not worth modeling — hot-loop arithmetic the analyzer must prove is
// finite-on-finite).
func (iv interval) mul(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if math.IsInf(iv.lo, 0) || math.IsInf(iv.hi, 0) || math.IsInf(o.lo, 0) || math.IsInf(o.hi, 0) {
		return topInterval()
	}
	c := [4]float64{iv.lo * o.lo, iv.lo * o.hi, iv.hi * o.lo, iv.hi * o.hi}
	out := interval{c[0], c[0]}
	for _, v := range c[1:] {
		out.lo = math.Min(out.lo, v)
		out.hi = math.Max(out.hi, v)
	}
	return out
}

// div computes iv / o when the divisor is finite and provably excludes
// zero; anything else is top.
func (iv interval) div(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if math.IsInf(iv.lo, 0) || math.IsInf(iv.hi, 0) || math.IsInf(o.lo, 0) || math.IsInf(o.hi, 0) {
		return topInterval()
	}
	if o.lo <= 0 && o.hi >= 0 {
		return topInterval()
	}
	c := [4]float64{iv.lo / o.lo, iv.lo / o.hi, iv.hi / o.lo, iv.hi / o.hi}
	out := interval{c[0], c[0]}
	for _, v := range c[1:] {
		out.lo = math.Min(out.lo, v)
		out.hi = math.Max(out.hi, v)
	}
	return out
}

// rem models x % m for the common counter shape: non-negative dividend,
// positive bounded divisor gives [0, m.hi-1]; everything else is top.
func (iv interval) rem(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if iv.lo >= 0 && o.lo > 0 && !math.IsInf(o.hi, 1) {
		return interval{0, o.hi - 1}
	}
	return topInterval()
}

// shl models x << k for non-negative x and a constant-bounded shift as
// multiplication by 2^k (using the widest shift in o).
func (iv interval) shl(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if iv.lo < 0 || o.lo < 0 || o.hi > 63 || math.IsInf(iv.hi, 1) {
		return topInterval()
	}
	f := math.Pow(2, o.hi)
	return interval{iv.lo, iv.hi * f}
}

// shr models x >> k for non-negative x: the result can only shrink.
func (iv interval) shr(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if iv.lo < 0 || o.lo < 0 {
		return topInterval()
	}
	f := math.Pow(2, math.Min(o.lo, 63))
	return interval{math.Floor(iv.lo / f), iv.hi}
}

// and models x & m for non-negative operands: bounded by the smaller of
// the two upper bounds.
func (iv interval) and(o interval) interval {
	if iv.isEmpty() || o.isEmpty() {
		return iv.union(o)
	}
	if iv.lo < 0 || o.lo < 0 {
		return topInterval()
	}
	return interval{0, math.Min(iv.hi, o.hi)}
}
