// Package analysis is a self-contained static-analysis framework for the
// InFrame tree, built on the standard library only (go/parser, go/ast,
// go/types, go/importer) so it runs offline with no go.mod dependencies.
//
// The framework loads every package in the module, type-checks it, and runs
// a registry of named analyzers that enforce the pipeline's load-bearing
// invariants: bit-identical output at any worker count, saturating
// arithmetic at the [0,255] clipping boundary (InFrame §3.2), and NaN-free
// threshold decisions in the noise-energy demodulator. Screen–camera
// decoders live or die on reproducible numeric pipelines (cf. DeepLight,
// Revelio); the analyzers keep those guarantees as the codebase grows.
//
// A diagnostic can be suppressed with a directive comment on the same line
// or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The directive suppresses only the named analyzer, and the reason is
// mandatory — a malformed or unknown-analyzer directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned for file:line:col reporting and
// attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the registry key, used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path (module-qualified for repo
	// packages); analyzers use it for path-scoped exemptions.
	Path string
	Pkg  *types.Package
	Info *types.Info

	// summaries is the module-wide fixpoint summary set (summaries.go),
	// shared across every pass of a Run; see Pass.moduleSummaries.
	summaries *moduleSummaries

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultAnalyzers returns the full registry, sorted by name. Every analyzer
// shipped here guards an invariant documented in DESIGN.md §Enforced
// invariants.
func DefaultAnalyzers() []*Analyzer {
	as := []*Analyzer{
		BoundsHoistAnalyzer,
		ClampAnalyzer,
		DeferLoopAnalyzer,
		DetRandAnalyzer,
		FloatEqAnalyzer,
		FrameAllocAnalyzer,
		GoroutineAnalyzer,
		HotAllocAnalyzer,
		LoopInvariantAnalyzer,
		MapRangeAnalyzer,
		PreallocateAnalyzer,
		Intrange,
		Poolown,
		Stagekey,
		Splitbudget,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Run applies every analyzer to every package of the module, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted
// by position. Malformed or unknown-analyzer directives, and directives
// that no longer suppress anything, are reported as diagnostics from the
// pseudo-analyzer "lint".
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	out, _ := run(mod, analyzers, nil)
	return out
}

// AnalyzerTiming is one row of RunTimed's wall-clock attribution: the
// cumulative time one analyzer spent across every package, plus the
// pseudo-row "summaries" for the shared fixpoint summary computation.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus per-analyzer wall-clock attribution. The clock is
// injected by the caller (the pipeline packages themselves are forbidden
// to read wall time — detrand enforces it — so the cmd layer passes
// time.Now in).
func RunTimed(mod *Module, analyzers []*Analyzer, now func() time.Time) ([]Diagnostic, []AnalyzerTiming) {
	return run(mod, analyzers, now)
}

func run(mod *Module, analyzers []*Analyzer, now func() time.Time) ([]Diagnostic, []AnalyzerTiming) {
	known := knownNames(analyzers)
	clock := now
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	elapsed := make(map[string]time.Duration)
	t0 := clock()
	sums := mod.Summaries()
	elapsed["summaries"] = clock().Sub(t0)
	var out []Diagnostic
	for _, pkg := range mod.Packages {
		out = append(out, runPackage(mod.Fset, pkg, sums, analyzers, known, clock, elapsed)...)
	}
	sortDiagnostics(out)
	if now == nil {
		return out, nil
	}
	names := make([]string, 0, len(elapsed))
	for name := range elapsed {
		names = append(names, name)
	}
	sort.Strings(names)
	timings := make([]AnalyzerTiming, 0, len(names))
	for _, name := range names {
		timings = append(timings, AnalyzerTiming{Name: name, Elapsed: elapsed[name]})
	}
	return out, timings
}

// RunPackage applies the analyzers to one loaded package, honoring
// //lint:ignore directives, and returns the diagnostics sorted by position.
// It is the single-package core of Run, exposed for the fixture-driven
// analyzer tests; summaries are computed over that one package with the
// same fixpoint engine the whole-module run uses.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	sums := computeSummaries(fset, []*Package{pkg})
	out := runPackage(fset, pkg, sums, analyzers, knownNames(analyzers), nil, nil)
	sortDiagnostics(out)
	return out
}

// knownNames is the set of analyzer names a directive may legitimately
// reference: the full registry plus whatever is being run (fixture-only
// analyzers included). The union matters for subset runs (-only): a
// directive naming a registered analyzer that merely is not running this
// time is neither unknown nor checkable for staleness.
func knownNames(analyzers []*Analyzer) map[string]bool {
	known := make(map[string]bool, len(analyzers))
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

func runPackage(fset *token.FileSet, pkg *Package, sums *moduleSummaries, analyzers []*Analyzer, known map[string]bool, clock func() time.Time, elapsed map[string]time.Duration) []Diagnostic {
	dirs, out := collectDirectives(fset, pkg.Files, known)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			summaries: sums,
		}
		pass.report = func(d Diagnostic) {
			if dirs.suppresses(d) {
				return
			}
			out = append(out, d)
		}
		if clock == nil {
			a.Run(pass)
		} else {
			t := clock()
			a.Run(pass)
			elapsed[a.Name] += clock().Sub(t)
		}
	}
	// Suppression hygiene: a directive whose analyzer ran but reported
	// nothing on the covered lines is stale — the code it excused has
	// moved or been fixed, and a dangling excuse will silently swallow
	// the next real finding there.
	out = append(out, dirs.unused(ran)...)
	return out
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// --- //lint:ignore directives ---

const directivePrefix = "//lint:ignore"

// directive is one //lint:ignore occurrence. It suppresses the named
// analyzer on its own line and the following one, and records whether it
// ever did.
type directive struct {
	pos  token.Position
	name string
	used bool
}

// covers reports whether the directive's window includes line.
func (d *directive) covers(line int) bool {
	return line == d.pos.Line || line == d.pos.Line+1
}

// directiveIndex maps file → analyzer name → directives in that file.
type directiveIndex map[string]map[string][]*directive

func (idx directiveIndex) suppresses(d Diagnostic) bool {
	found := false
	for _, dir := range idx[d.Pos.Filename][d.Analyzer] {
		if dir.covers(d.Pos.Line) {
			dir.used = true
			found = true
		}
	}
	return found
}

// unused reports every directive naming an analyzer that ran over the
// package without it suppressing anything.
func (idx directiveIndex) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, byName := range idx {
		for name, dirs := range byName {
			if !ran[name] {
				continue
			}
			for _, dir := range dirs {
				if dir.used {
					continue
				}
				out = append(out, Diagnostic{
					Pos:      dir.pos,
					Analyzer: "lint",
					Message: fmt.Sprintf(
						"//lint:ignore %s suppresses nothing here; delete the stale directive", name),
				})
			}
		}
	}
	return out
}

// collectDirectives scans every comment of the package for //lint:ignore
// directives. A directive suppresses the named analyzer on its own line and
// on the following line, so it works both as a trailing comment and as a
// standalone comment above the offending statement. Directives without a
// reason, or naming an analyzer that is not registered, are reported.
func collectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (directiveIndex, []Diagnostic) {
	idx := make(directiveIndex)
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
					})
					continue
				}
				byName := idx[pos.Filename]
				if byName == nil {
					byName = make(map[string][]*directive)
					idx[pos.Filename] = byName
				}
				byName[name] = append(byName[name], &directive{pos: pos, name: name})
			}
		}
	}
	return idx, diags
}

// --- shared analyzer helpers ---

// pathHasElem reports whether the import path contains elem as a whole
// path element (e.g. pathHasElem("inframe/cmd/x", "cmd")).
func pathHasElem(path, elem string) bool {
	for _, e := range strings.Split(path, "/") {
		if e == elem {
			return true
		}
	}
	return false
}

// isPipelinePackage reports whether the package holds deterministic
// pipeline code: everything except commands and examples, which are
// allowed to touch wall clocks and ambient randomness at the edges.
func isPipelinePackage(path string) bool {
	return !pathHasElem(path, "cmd") && !pathHasElem(path, "examples")
}

// funcObj resolves a called expression to the function or method object it
// invokes, or nil.
func funcObj(info *types.Info, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// isNamed reports whether t (after pointer indirection) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
