package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the dataflow layer under the ownership/determinism analyzer
// pack (poolown, splitbudget): a bounded path-sensitive execution engine
// over go/ast statements, plus one-hop interprocedural summaries of which
// same-package callees consume or return pool-owned frames.
//
// The engine enumerates control-flow paths through one function body:
// if/switch/select fork the state, loops run their body up to a small
// fixed number of abstract iterations with back-edge states fed forward
// (enough to see leak-on-back-edge and loop-carried double-release), and
// return/break/continue are tracked as distinct flow kinds. The client
// supplies an abstract store and interprets leaf statements; the engine
// owns forking, merging, deduplication and the path budget. When a
// function exceeds the budget (or uses goto/labels, which this layer does
// not model), the engine signals a bail-out and the client suppresses its
// findings for that function — the analyzers prefer silence to noise.

// flowKind classifies how control left a statement sequence.
type flowKind uint8

const (
	flowFall flowKind = iota // fell through to the next statement
	flowReturn
	flowBreak
	flowContinue
)

// pathState is one abstract store owned by the client. The engine treats
// it as opaque: it copies via hooks.copy and dedupes via hooks.key.
type pathState any

// pathFlow is one control-flow outcome: a state plus how it left.
type pathFlow struct {
	kind flowKind
	st   pathState
}

// pathHooks is the client interface of the path engine. All hooks may
// mutate the state they are handed; the engine copies before forking.
type pathHooks struct {
	// copy deep-copies a state for a fork.
	copy func(st pathState) pathState
	// key fingerprints a state for deduplication; states with equal keys
	// are interchangeable to the client.
	key func(st pathState) string
	// stmt interprets one leaf statement (assignment, expression, send,
	// defer, go, incdec, decl, or the key/value clause of a range).
	stmt func(s ast.Stmt, st pathState)
	// cond interprets an expression evaluated for control flow (an if or
	// loop condition, a switch tag, a case expression, a ranged operand).
	cond func(e ast.Expr, st pathState)
	// branch, when non-nil, observes a condition's polarity on the state
	// that took it: after an if or for condition forks the paths, the hook
	// runs with taken=true on the then/body state and taken=false on the
	// else/exit state, so clients can refine their store by what the
	// comparison just proved (intrange narrows variable intervals here).
	branch func(cond ast.Expr, taken bool, st pathState)
	// exit observes a function exit: an explicit return (ret non-nil,
	// already interpreted for its result expressions) or falling off the
	// end of the body (ret nil, end is the closing brace).
	exit func(ret *ast.ReturnStmt, end token.Pos, st pathState)
	// loopBack observes one state reaching the back edge of loop after an
	// abstract iteration. entry is the tracked-variable snapshot taken at
	// loop entry (whatever the client returned from snapshot); the hook
	// may mutate st before it is fed into the next abstract iteration.
	loopBack func(loop ast.Stmt, entry any, st pathState)
	// snapshot captures whatever loopBack needs to recognize state born
	// inside the loop body. Called once per loop entry per path.
	snapshot func(st pathState) any
	// bail signals that the function could not be analyzed (goto, labels,
	// or path-budget exhaustion); the client discards its findings.
	bail func()
}

// maxPathStates bounds the total number of states the engine processes in
// one function; beyond it the function is abandoned via hooks.bail. The
// dedup keeps well-behaved functions far below this.
const maxPathStates = 4096

// maxLoopIters is how many abstract iterations feed a loop's back edge:
// two is enough to see both a leak across the back edge and a second
// iteration observing state the first one released.
const maxLoopIters = 2

// pathEngine runs one function body.
type pathEngine struct {
	hooks   pathHooks
	visited int
	dead    bool // bail() fired; keep walking cheaply but report nothing
}

// execPaths enumerates the paths of body starting from init. The engine
// guarantees exactly one exit hook per path that leaves the function.
func execPaths(body *ast.BlockStmt, init pathState, hooks pathHooks) {
	e := &pathEngine{hooks: hooks}
	flows := e.execBlock(body.List, []pathState{init})
	for _, f := range flows {
		if e.dead {
			return
		}
		switch f.kind {
		case flowFall:
			e.hooks.exit(nil, body.Rbrace, f.st)
		case flowReturn:
			// exit already observed at the return statement.
		case flowBreak, flowContinue:
			// Malformed at function level; the type checker rejects it.
		}
	}
}

// budget charges n states against the path budget, bailing when spent.
func (e *pathEngine) budget(n int) {
	e.visited += n
	if e.visited > maxPathStates && !e.dead {
		e.dead = true
		e.hooks.bail()
	}
}

// dedupe collapses flows with identical (kind, state-key).
func (e *pathEngine) dedupe(flows []pathFlow) []pathFlow {
	if len(flows) < 2 {
		return flows
	}
	seen := make(map[string]bool, len(flows))
	out := flows[:0]
	for _, f := range flows {
		k := fmt.Sprintf("%d|%s", f.kind, e.hooks.key(f.st))
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// execBlock runs stmts over every state in states, returning the set of
// outcomes. Fall-through states thread from one statement to the next;
// other flow kinds short-circuit past the remaining statements.
func (e *pathEngine) execBlock(stmts []ast.Stmt, states []pathState) []pathFlow {
	cur := states
	var done []pathFlow
	for _, s := range stmts {
		if len(cur) == 0 || e.dead {
			break
		}
		var next []pathState
		for _, st := range cur {
			for _, f := range e.execStmt(s, st) {
				if f.kind == flowFall {
					next = append(next, f.st)
				} else {
					done = append(done, f)
				}
			}
		}
		e.budget(len(next))
		cur = next
		if len(cur) > 1 {
			deduped := e.dedupe(flowsOf(cur))
			cur = cur[:0]
			for _, f := range deduped {
				cur = append(cur, f.st)
			}
		}
	}
	for _, st := range cur {
		done = append(done, pathFlow{flowFall, st})
	}
	return e.dedupe(done)
}

func flowsOf(states []pathState) []pathFlow {
	out := make([]pathFlow, len(states))
	for i, st := range states {
		out[i] = pathFlow{flowFall, st}
	}
	return out
}

// execStmt runs one statement over one state.
func (e *pathEngine) execStmt(s ast.Stmt, st pathState) []pathFlow {
	if e.dead {
		return nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return e.execBlock(s.List, []pathState{st})

	case *ast.IfStmt:
		if s.Init != nil {
			e.hooks.stmt(s.Init, st)
		}
		e.hooks.cond(s.Cond, st)
		thenSt := e.hooks.copy(st)
		e.refine(s.Cond, true, thenSt)
		e.refine(s.Cond, false, st)
		flows := e.execBlock(s.Body.List, []pathState{thenSt})
		if s.Else != nil {
			flows = append(flows, e.execStmt(s.Else, st)...)
		} else {
			flows = append(flows, pathFlow{flowFall, st})
		}
		e.budget(len(flows))
		return e.dedupe(flows)

	case *ast.ForStmt:
		if s.Init != nil {
			e.hooks.stmt(s.Init, st)
		}
		if s.Cond != nil {
			e.hooks.cond(s.Cond, st)
		}
		return e.execLoop(s, s.Body, st, s.Cond != nil, s.Cond, func(backSt pathState) {
			if s.Post != nil {
				e.hooks.stmt(s.Post, backSt)
			}
			if s.Cond != nil {
				e.hooks.cond(s.Cond, backSt)
			}
		})

	case *ast.RangeStmt:
		e.hooks.cond(s.X, st)
		// The key/value clause assigns on every iteration; the client sees
		// the whole RangeStmt as one leaf to interpret those targets.
		return e.execLoop(s, s.Body, st, true, nil, func(backSt pathState) {
			e.hooks.stmt(s, backSt)
		})

	case *ast.SwitchStmt:
		if s.Init != nil {
			e.hooks.stmt(s.Init, st)
		}
		if s.Tag != nil {
			e.hooks.cond(s.Tag, st)
		}
		return e.execCases(s.Body.List, st, func(cc *ast.CaseClause, caseSt pathState) {
			for _, x := range cc.List {
				e.hooks.cond(x, caseSt)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e.hooks.stmt(s.Init, st)
		}
		e.hooks.stmt(s.Assign, st)
		return e.execCases(s.Body.List, st, func(cc *ast.CaseClause, caseSt pathState) {})

	case *ast.SelectStmt:
		var flows []pathFlow
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			caseSt := e.hooks.copy(st)
			if comm.Comm != nil {
				e.hooks.stmt(comm.Comm, caseSt)
			}
			flows = append(flows, e.execBlock(comm.Body, []pathState{caseSt})...)
		}
		if len(flows) == 0 {
			return nil // select{} blocks forever
		}
		e.budget(len(flows))
		return e.dedupe(flows)

	case *ast.ReturnStmt:
		e.hooks.stmt(s, st)
		e.hooks.exit(s, s.Pos(), st)
		return []pathFlow{{flowReturn, st}}

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				e.hooks.bail()
				e.dead = true
				return nil
			}
			return []pathFlow{{flowBreak, st}}
		case token.CONTINUE:
			if s.Label != nil {
				e.hooks.bail()
				e.dead = true
				return nil
			}
			return []pathFlow{{flowContinue, st}}
		case token.FALLTHROUGH:
			// Handled structurally by execCases; reaching here means a
			// case body's last statement, which execCases consumed.
			return []pathFlow{{flowFall, st}}
		default: // goto
			e.hooks.bail()
			e.dead = true
			return nil
		}

	case *ast.LabeledStmt:
		// Labels exist to be jumped to; this layer does not model them.
		e.hooks.bail()
		e.dead = true
		return nil

	case *ast.EmptyStmt:
		return []pathFlow{{flowFall, st}}

	default:
		// Leaf statements: assignments, expressions, declarations, defers,
		// go statements, sends, incdec.
		e.hooks.stmt(s, st)
		return []pathFlow{{flowFall, st}}
	}
}

// refine applies the branch hook, if the client installed one.
func (e *pathEngine) refine(cond ast.Expr, taken bool, st pathState) {
	if e.hooks.branch != nil && cond != nil {
		e.hooks.branch(cond, taken, st)
	}
}

// execLoop runs a loop body for up to maxLoopIters abstract iterations.
// canSkip reports whether zero iterations are possible (a condition or
// range that may be immediately exhausted); cond is the for condition (nil
// for range loops), refined true into the body and false onto the exits;
// back runs the post/condition work on each state that reaches the back
// edge.
func (e *pathEngine) execLoop(loop ast.Stmt, body *ast.BlockStmt, st pathState, canSkip bool, cond ast.Expr, back func(pathState)) []pathFlow {
	var after []pathFlow
	entry := e.hooks.snapshot(st)
	if canSkip {
		exitSt := e.hooks.copy(st)
		e.refine(cond, false, exitSt)
		after = append(after, pathFlow{flowFall, exitSt})
	}
	cur := []pathState{st}
	for iter := 0; iter < maxLoopIters && len(cur) > 0 && !e.dead; iter++ {
		var backStates []pathState
		for _, s := range cur {
			e.refine(cond, true, s)
			for _, f := range e.execBlock(body.List, []pathState{s}) {
				switch f.kind {
				case flowFall, flowContinue:
					back(f.st)
					e.hooks.loopBack(loop, entry, f.st)
					backStates = append(backStates, f.st)
					// The condition may also exit here.
					if canSkip {
						exitSt := e.hooks.copy(f.st)
						e.refine(cond, false, exitSt)
						after = append(after, pathFlow{flowFall, exitSt})
					}
				case flowBreak:
					after = append(after, pathFlow{flowFall, f.st})
				case flowReturn:
					after = append(after, f)
				}
			}
		}
		e.budget(len(backStates))
		cur = backStates
	}
	e.budget(len(after))
	return e.dedupe(after)
}

// execCases forks one path per case clause of a switch, handling
// fallthrough by threading the state into the next clause's body, plus an
// implicit no-case-matched path when there is no default clause.
func (e *pathEngine) execCases(clauses []ast.Stmt, st pathState, onCase func(*ast.CaseClause, pathState)) []pathFlow {
	var flows []pathFlow
	hasDefault := false
	// carried holds states falling through from the previous clause.
	var carried []pathState
	for _, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := e.hooks.copy(st)
		onCase(cc, caseSt)
		entry := append(carried, caseSt)
		carried = nil
		body := cc.Body
		ft := len(body) > 0 && isFallthrough(body[len(body)-1])
		if ft {
			body = body[:len(body)-1]
		}
		for _, f := range e.execBlock(body, entry) {
			if ft && f.kind == flowFall {
				carried = append(carried, f.st)
				continue
			}
			flows = append(flows, f)
		}
	}
	// A trailing fallthrough cannot exist (the type checker rejects it),
	// so carried is empty here.
	if !hasDefault {
		flows = append(flows, pathFlow{flowFall, st})
	}
	e.budget(len(flows))
	return e.dedupe(flows)
}

func isFallthrough(s ast.Stmt) bool {
	b, ok := s.(*ast.BranchStmt)
	return ok && b.Tok == token.FALLTHROUGH
}

// --- ownership summaries ---

// ownSummary is the interprocedural summary of one function: which of its
// pointer-to-Frame parameters it consumes (hands to a Put/Recycle — or,
// transitively, to a callee whose summary consumes that position — ending
// the caller's borrow) and whether it returns a pool-owned frame (a *Frame
// drawn from a Pool.Get, directly or through a summarized callee, that the
// caller must release). Summaries are computed module-wide in import-DAG
// order by the fixpoint engine in summaries.go.
type ownSummary struct {
	// consumes maps parameter index (receiver excluded) to true when the
	// body releases that parameter.
	consumes map[int]bool
	// returnsOwned reports that some return hands back a Pool.Get frame.
	returnsOwned bool
}

// equal reports summary equality, the fixpoint termination test.
func (s ownSummary) equal(o ownSummary) bool {
	if s.returnsOwned != o.returnsOwned || len(s.consumes) != len(o.consumes) {
		return false
	}
	for i := range s.consumes {
		if !o.consumes[i] {
			return false
		}
	}
	return true
}

// summarizeOwnFunc scans one declaration body syntactically, consulting
// the global summary map for callee effects. With global fixed it is
// monotone in global (consume sets and returnsOwned only grow), which is
// what lets the engine iterate call cycles to a fixpoint.
func summarizeOwnFunc(info *types.Info, fd *ast.FuncDecl, global map[*types.Func]ownSummary) ownSummary {
	sum := ownSummary{consumes: make(map[int]bool)}
	// Frame-pointer parameters by object, with their positional index.
	params := make(map[types.Object]int)
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isFramePtrType(obj.Type()) {
					params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	// grantsOwned reports whether e yields a pool-owned frame: a direct
	// Pool.Get or a call to a callee summarized as returning one.
	grantsOwned := func(e ast.Expr) bool {
		if isPoolGetCall(info, e) {
			return true
		}
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		obj := funcObj(info, call.Fun)
		return obj != nil && global[obj].returnsOwned
	}
	// consumeParam records that the identifier arg, if a Frame parameter,
	// is consumed.
	consumeParam := func(arg ast.Expr) {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Uses[id]; obj != nil {
			if pi, ok := params[obj]; ok {
				sum.consumes[pi] = true
			}
		}
	}
	// Local variables holding a pool-owned frame, for the returnsOwned
	// scan.
	owned := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && grantsOwned(rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							owned[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							owned[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isConsumeCallee(info, n.Fun) {
				for _, arg := range n.Args {
					consumeParam(arg)
				}
				return true
			}
			// A parameter handed to a callee position the callee's summary
			// consumes is consumed here too — the transfer chain ends in a
			// Put/Recycle further down.
			if obj := funcObj(info, n.Fun); obj != nil {
				if callee, ok := global[obj]; ok {
					for i, arg := range n.Args {
						if callee.consumes[i] {
							consumeParam(arg)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				res = ast.Unparen(res)
				if grantsOwned(res) {
					sum.returnsOwned = true
				}
				if id, ok := res.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && owned[obj] {
						sum.returnsOwned = true
					}
				}
			}
		}
		return true
	})
	return sum
}

// isFramePtrType reports whether t is a pointer to a named type Frame.
func isFramePtrType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Frame"
}

// isPoolGetCall reports whether e is a call of a Get method on a type
// named Pool whose result is a *Frame — the ownership-granting event.
func isPoolGetCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := funcObj(info, call.Fun)
	if obj == nil || obj.Name() != "Get" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return false
	}
	return returnsFramePtr(obj)
}

// isConsumeCallee reports whether the called function releases the frames
// it is handed: any method or function named Put or Recycle. The name
// rule is deliberately universal (frame.Pool.Put, Multiplexer.Recycle,
// fixture pools) — naming a frame-releasing function anything else is
// itself a convention violation.
func isConsumeCallee(info *types.Info, fun ast.Expr) bool {
	obj := funcObj(info, fun)
	if obj == nil {
		return false
	}
	return obj.Name() == "Put" || obj.Name() == "Recycle"
}

// sortedVarNames renders a deterministic fingerprint fragment for a
// variable-keyed map, used by clients to build state keys.
func sortedVarNames[T any](m map[*types.Var]T, render func(*types.Var, T) string) string {
	parts := make([]string, 0, len(m))
	for v, t := range m {
		//lint:ignore maprange sort.Strings below normalizes the iteration order
		parts = append(parts, render(v, t))
	}
	sort.Strings(parts)
	out := ""
	for _, p := range parts {
		out += p + ";"
	}
	return out
}
