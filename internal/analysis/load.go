package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The standard library is type-checked from source (GOROOT/src) so loading
// works offline, but doing that once per load is the dominant cost of the
// fixture-driven analyzer tests: every fixture package imports fmt or math
// and re-checks their whole import closure. The process-wide cache below
// pays that cost once. The importer is bound to its own private FileSet —
// standard-library positions never appear in diagnostics, so mixing it
// with per-load FileSets is safe — and serialized behind a mutex because
// the source importer's internal package cache is not concurrency-safe.
var (
	stdMu   sync.Mutex
	stdFset = token.NewFileSet()
	stdSrc  types.Importer
)

// cachedStdImporter is the process-wide standard-library importer. Import
// results are shared *types.Package objects, which is also what makes
// summary keys (*types.Func) stable across separately loaded packages.
type cachedStdImporter struct{}

func (cachedStdImporter) Import(path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if stdSrc == nil {
		stdSrc = importer.ForCompiler(stdFset, "source", nil)
	}
	return stdSrc.Import(path)
}

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("inframe", "inframe/internal/core", ...).
	Path string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// imports lists the module-internal import paths, for load ordering.
	imports []string
}

// Module is the fully loaded repository: every non-test package, parsed
// with comments and type-checked against the standard library.
type Module struct {
	// ModPath is the module path from go.mod.
	ModPath string
	// Root is the absolute module root directory.
	Root string
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package
	// order is the bottom-up import-DAG order of Packages (dependencies
	// before dependents), retained from load for the summary engine.
	order []string
	// byPath indexes Packages by import path.
	byPath map[string]*Package

	// summaries is the module-wide fixpoint summary cache, computed at
	// most once per Module (see summaries.go).
	summariesOnce sync.Once
	summaries     *moduleSummaries
}

// inOrder returns the packages in bottom-up import-DAG order.
func (m *Module) inOrder() []*Package {
	out := make([]*Package, 0, len(m.order))
	for _, path := range m.order {
		out = append(out, m.byPath[path])
	}
	return out
}

// LoadModule discovers the module rooted at or above dir, parses every
// non-test package (testdata and hidden directories are skipped, matching
// the go tool), and type-checks them in dependency order. Standard-library
// imports are resolved from source (GOROOT/src), so loading works offline;
// module-internal imports are resolved against the packages being loaded.
//
// Test files are excluded deliberately: every analyzer invariant is scoped
// to non-test code, and tests are free to use wall clocks, raw goroutines
// and float literals in assertions.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return loadTree(root, modPath)
}

// LoadFixtureModule loads the directory tree rooted at dir as a
// self-contained multi-package module under the given module path, without
// requiring a go.mod. It exists for the cross-package analyzer fixtures
// (testdata/src/<name>/a, .../b), which exercise summary flow across
// import boundaries the single-package loader cannot express.
func LoadFixtureModule(dir, modPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return loadTree(abs, modPath)
}

// loadTree parses and type-checks every non-test package under root,
// dependency order first, and retains that order on the Module.
func loadTree(root, modPath string) (*Module, error) {
	fset := token.NewFileSet()
	mod := &Module{ModPath: modPath, Root: root, Fset: fset}

	pkgDirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(pkgDirs))
	for _, d := range pkgDirs {
		pkg, err := parseDir(fset, d, importPathFor(modPath, root, d))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		byPath[pkg.Path] = pkg
	}
	if len(byPath) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}

	order, err := loadOrder(byPath)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		modPath: modPath,
		pkgs:    byPath,
		std:     cachedStdImporter{},
	}
	for _, path := range order {
		if err := typeCheck(fset, byPath[path], imp); err != nil {
			return nil, err
		}
	}
	mod.order = order
	mod.byPath = byPath
	for _, path := range order {
		mod.Packages = append(mod.Packages, byPath[path])
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].Path < mod.Packages[j].Path })
	return mod, nil
}

// LoadPackage parses and type-checks the single package in dir under the
// given import path, resolving imports from the standard library only. It
// exists for the analyzer test harness, which loads testdata fixture
// packages that are invisible to the go tool.
func LoadPackage(fset *token.FileSet, dir, path string) (*Package, error) {
	pkg, err := parseDir(fset, dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	imp := &moduleImporter{std: cachedStdImporter{}}
	if err := typeCheck(fset, pkg, imp); err != nil {
		return nil, err
	}
	return pkg, nil
}

func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			modPath = parseModulePath(data)
			if modPath == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
			}
			return d, modPath, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

func parseModulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// packageDirs walks root collecting directories that may hold Go packages,
// skipping hidden directories and testdata (as the go tool does).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

func importPathFor(modPath, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses the non-test Go files of dir as one package. Returns nil
// if the directory holds no non-test Go files.
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		seen[f.Name.Name] = true
	}
	if len(files) == 0 {
		return nil, nil
	}
	if len(seen) > 1 {
		return nil, fmt.Errorf("analysis: multiple packages in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			pkg.imports = append(pkg.imports, p)
		}
	}
	return pkg, nil
}

// loadOrder topologically sorts the module packages so every package is
// type-checked after its module-internal imports.
func loadOrder(byPath map[string]*Package) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range byPath[path].imports {
			if _, ok := byPath[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	cfg := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(pkg.Path, fset, pkg.Files, info)
	if len(errs) > 0 {
		if len(errs) > 3 {
			errs = errs[:3]
		}
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return fmt.Errorf("analysis: type-checking %s failed:\n\t%s", pkg.Path, strings.Join(msgs, "\n\t"))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal import paths to the packages
// being loaded and everything else through the standard library's source
// importer. The load order guarantees internal dependencies are already
// type-checked when requested.
type moduleImporter struct {
	modPath string
	pkgs    map[string]*Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if m.modPath != "" && (path == m.modPath || strings.HasPrefix(path, m.modPath+"/")) {
		pkg, ok := m.pkgs[path]
		if !ok || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: internal package %s not loaded", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
