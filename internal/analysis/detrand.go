package analysis

import (
	"go/ast"
	"go/types"
)

// DetRandAnalyzer enforces the determinism contract of the pipeline: the
// worker pools in internal/parallel guarantee bit-identical output at any
// worker count only if no stage consults ambient nondeterminism. Inside
// pipeline packages (everything outside cmd/ and examples/) it bans:
//
//   - package-level math/rand and math/rand/v2 functions, which draw from
//     the unseeded global source (rand.New over an explicit seeded source
//     is the sanctioned pattern — see internal/hvs and internal/core);
//   - time.Now / time.Since / time.Until, which leak the wall clock into
//     results;
//   - select over multiple channels, whose case choice is
//     scheduler-dependent.
var DetRandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "forbid unseeded math/rand, wall-clock reads and multi-channel select in pipeline packages",
	Run:  runDetRand,
}

// detrandAllowed lists the package-level functions of math/rand (and v2)
// that do not touch the global source: constructors taking an explicit
// seed or source.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // rand/v2 seeded generator
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) {
	if !isPipelinePackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select over %d channels is scheduler-dependent; route concurrency through internal/parallel", comm)
				}
			case *ast.SelectorExpr:
				obj, ok := pass.Info.Uses[n.Sel]
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					// Methods on *rand.Rand carry their own source and are
					// fine, and a type reference (*rand.Rand in a
					// signature) draws nothing; only package-level
					// functions hit the global one.
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
					if isPackageLevelRef(pass, n) && !detrandAllowed[obj.Name()] {
						pass.Reportf(n.Pos(), "%s.%s uses the unseeded global source; use rand.New(rand.NewSource(seed)) so worker pools stay bit-identical", obj.Pkg().Name(), obj.Name())
					}
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "time.%s reads the wall clock in deterministic pipeline code; thread an explicit timestamp instead", obj.Name())
					}
				}
			}
			return true
		})
	}
}

// isPackageLevelRef reports whether sel refers to a package-qualified
// identifier (pkg.Name) rather than a method or field on a value: method
// and field accesses have a Selections entry, package references do not.
func isPackageLevelRef(pass *Pass, sel *ast.SelectorExpr) bool {
	_, isSelection := pass.Info.Selections[sel]
	return !isSelection
}
