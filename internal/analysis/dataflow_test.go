package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// The dataflow layer is tested with a miniature ownership client: `x :=
// get()` makes x owned, `put(x)` releases it, and exits report what is
// still owned. This isolates the path engine's fork/merge/loop semantics
// from the full poolown analyzer, so a failure here points at the engine.

// ownState is the test client's abstract store.
type ownState struct {
	owned map[string]bool
}

func (s *ownState) clone() *ownState {
	c := &ownState{owned: make(map[string]bool, len(s.owned))}
	for k, v := range s.owned {
		c.owned[k] = v
	}
	return c
}

func (s *ownState) fingerprint() string {
	keys := make([]string, 0, len(s.owned))
	for k, v := range s.owned {
		if v {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// runOwnPaths parses src as a function body, runs the path engine with
// the miniature client, and returns the fingerprint of each exit state
// (sorted), each back-edge leak observed, and whether the engine bailed.
func runOwnPaths(t *testing.T, body string) (exits []string, backLeaks []string, bailed bool) {
	t.Helper()
	src := "package p\nfunc f(cond bool, n int) {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)

	interp := func(s ast.Stmt, st *ownState) {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "put" {
						if arg, ok := call.Args[0].(*ast.Ident); ok {
							st.owned[arg.Name] = false
						}
					}
				}
			}
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "get" && i < len(as.Lhs) {
				if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
					st.owned[lhs.Name] = true
				}
			}
		}
	}

	hooks := pathHooks{
		copy: func(st pathState) pathState { return st.(*ownState).clone() },
		key:  func(st pathState) string { return st.(*ownState).fingerprint() },
		stmt: func(s ast.Stmt, st pathState) { interp(s, st.(*ownState)) },
		cond: func(e ast.Expr, st pathState) {},
		exit: func(ret *ast.ReturnStmt, end token.Pos, st pathState) {
			exits = append(exits, st.(*ownState).fingerprint())
		},
		loopBack: func(loop ast.Stmt, entry any, st pathState) {
			before := entry.(map[string]bool)
			for name, owned := range st.(*ownState).owned {
				if owned && !before[name] {
					backLeaks = append(backLeaks, name)
				}
			}
		},
		snapshot: func(st pathState) any {
			snap := make(map[string]bool)
			for k, v := range st.(*ownState).owned {
				snap[k] = v
			}
			return snap
		},
		bail: func() { bailed = true },
	}
	execPaths(fd.Body, &ownState{owned: make(map[string]bool)}, hooks)
	sort.Strings(exits)
	sort.Strings(backLeaks)
	return exits, backLeaks, bailed
}

// TestPathsEarlyReturn is the canonical leak-on-early-return shape: the
// engine must enumerate both the early exit (x still owned) and the
// fall-off exit (x released) as distinct paths.
func TestPathsEarlyReturn(t *testing.T) {
	exits, _, bailed := runOwnPaths(t, `
	x := get()
	if cond {
		return
	}
	put(x)
`)
	if bailed {
		t.Fatal("engine bailed on a two-path function")
	}
	want := []string{"", "x"}
	if len(exits) != 2 || exits[0] != want[0] || exits[1] != want[1] {
		t.Fatalf("exits = %q, want %q (leaked early return + clean fall-off)", exits, want)
	}
}

// TestPathsBranchOnlyPut releases only inside one branch: the else path
// must still be reported as owning x at function end.
func TestPathsBranchOnlyPut(t *testing.T) {
	exits, _, bailed := runOwnPaths(t, `
	x := get()
	if cond {
		put(x)
	}
`)
	if bailed {
		t.Fatal("engine bailed")
	}
	want := []string{"", "x"}
	if len(exits) != 2 || exits[0] != want[0] || exits[1] != want[1] {
		t.Fatalf("exits = %q, want %q (put-branch clean, skip-branch leaked)", exits, want)
	}
}

// TestPathsBothBranchesPut releases on every path; the dedup must merge
// the branches back into one clean exit.
func TestPathsBothBranchesPut(t *testing.T) {
	exits, _, _ := runOwnPaths(t, `
	x := get()
	if cond {
		put(x)
	} else {
		put(x)
	}
`)
	if len(exits) != 1 || exits[0] != "" {
		t.Fatalf("exits = %q, want one clean exit", exits)
	}
}

// TestPathsLoopCarriedLeak is the loop-carried ownership case: a frame
// acquired inside the body that survives to the back edge (here via
// continue) must be observed by the loopBack hook.
func TestPathsLoopCarriedLeak(t *testing.T) {
	_, backLeaks, bailed := runOwnPaths(t, `
	for i := 0; i < n; i++ {
		x := get()
		if cond {
			continue
		}
		put(x)
	}
`)
	if bailed {
		t.Fatal("engine bailed")
	}
	if len(backLeaks) == 0 || backLeaks[0] != "x" {
		t.Fatalf("backLeaks = %q, want x leaked across the back edge", backLeaks)
	}
}

// TestPathsLoopCleanBody pins the negative: a body that releases before
// every back edge produces no back-edge leak, and the zero-iteration
// path still reaches the exit.
func TestPathsLoopCleanBody(t *testing.T) {
	exits, backLeaks, _ := runOwnPaths(t, `
	for i := 0; i < n; i++ {
		x := get()
		put(x)
	}
`)
	if len(backLeaks) != 0 {
		t.Fatalf("backLeaks = %q, want none", backLeaks)
	}
	if len(exits) == 0 || exits[0] != "" {
		t.Fatalf("exits = %q, want clean", exits)
	}
}

// TestPathsRangeLoop pins the same back-edge observation for range loops.
func TestPathsRangeLoop(t *testing.T) {
	_, backLeaks, _ := runOwnPaths(t, `
	xs := []int{1, 2}
	for range xs {
		x := get()
		_ = x
	}
`)
	if len(backLeaks) == 0 || backLeaks[0] != "x" {
		t.Fatalf("backLeaks = %q, want x", backLeaks)
	}
}

// TestPathsBreakExitsLoop: a break path must flow to the code after the
// loop, carrying its state.
func TestPathsBreakExitsLoop(t *testing.T) {
	exits, _, _ := runOwnPaths(t, `
	x := get()
	for i := 0; i < n; i++ {
		if cond {
			break
		}
	}
	put(x)
`)
	for _, e := range exits {
		if e != "" {
			t.Fatalf("exit %q still owns a frame; break must reach the put after the loop", e)
		}
	}
}

// TestPathsSwitch forks one path per case plus the implicit no-match
// path when there is no default.
func TestPathsSwitch(t *testing.T) {
	exits, _, _ := runOwnPaths(t, `
	x := get()
	switch n {
	case 1:
		put(x)
	case 2:
	}
`)
	want := []string{"", "x", "x"} // case 1 clean; case 2 + no-match leaked (deduped to one)
	_ = want
	if len(exits) != 2 || exits[0] != "" || exits[1] != "x" {
		t.Fatalf("exits = %q, want [\"\" \"x\"]", exits)
	}
}

// TestPathsSwitchDefault: with a default clause there is no implicit
// fall-through path, so releasing in every clause is clean.
func TestPathsSwitchDefault(t *testing.T) {
	exits, _, _ := runOwnPaths(t, `
	x := get()
	switch n {
	case 1:
		put(x)
	default:
		put(x)
	}
`)
	if len(exits) != 1 || exits[0] != "" {
		t.Fatalf("exits = %q, want one clean exit", exits)
	}
}

// TestPathsBailOnGoto: goto and labels are outside this layer's model;
// the engine must bail rather than guess.
func TestPathsBailOnGoto(t *testing.T) {
	_, _, bailed := runOwnPaths(t, `
	x := get()
	goto done
done:
	put(x)
`)
	if !bailed {
		t.Fatal("engine did not bail on goto")
	}
}

// TestPathsBudgetBail: a fork bomb past maxPathStates must trip the
// budget instead of hanging. Each if doubles the distinguishable states
// (a distinct variable becomes owned per branch), defeating the dedup.
func TestPathsBudgetBail(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 16; i++ {
		b.WriteString("\tif cond {\n")
		for j := 0; j < 4; j++ {
			b.WriteString("\t\t")
			b.WriteString(varName(i, j))
			b.WriteString(" := get()\n\t\t_ = ")
			b.WriteString(varName(i, j))
			b.WriteString("\n")
		}
		b.WriteString("\t}\n")
	}
	_, _, bailed := runOwnPaths(t, b.String())
	if !bailed {
		t.Fatal("engine did not bail on exponential path growth")
	}
}

func varName(i, j int) string {
	return "v" + string(rune('a'+i)) + string(rune('a'+j))
}

// --- one-hop summary tests ---

// typecheckSrc parses and type-checks one self-contained file.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "sum.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

const summarySrc = `package p

type Frame struct{ W, H int }
type Pool struct{}

func (p *Pool) Get(w, h int) *Frame { return &Frame{w, h} }
func (p *Pool) Put(f *Frame)        {}

// consumes its second parameter
func drain(pl *Pool, f *Frame) { pl.Put(f) }

// consumes neither parameter (borrow only)
func inspect(f *Frame) int { return f.W }

// returns a pool-owned frame directly
func fresh(pl *Pool) *Frame { return pl.Get(1, 1) }

// returns a pool-owned frame through a local
func freshVia(pl *Pool) *Frame {
	f := pl.Get(2, 2)
	f.W = 3
	return f
}

// returns a borrowed frame, not pool-owned
func passthrough(f *Frame) *Frame { return f }
`

func summaryFor(t *testing.T, sums map[*types.Func]ownSummary, name string) (ownSummary, bool) {
	t.Helper()
	for fn, s := range sums {
		if fn.Name() == name {
			return s, true
		}
	}
	return ownSummary{}, false
}

func TestOwnSummaries(t *testing.T) {
	fset, file, info := typecheckSrc(t, summarySrc)
	pkg := &Package{Path: "p", Files: []*ast.File{file}, Info: info}
	sums := computeSummaries(fset, []*Package{pkg}).own

	drain, ok := summaryFor(t, sums, "drain")
	if !ok || !drain.consumes[1] {
		t.Errorf("drain: want consumes[1], got %+v (found=%v)", drain, ok)
	}
	if drain.consumes[0] {
		t.Errorf("drain: pool parameter wrongly marked consumed")
	}
	if _, ok := summaryFor(t, sums, "inspect"); ok {
		t.Errorf("inspect: borrow-only function should have no summary entry")
	}
	fresh, ok := summaryFor(t, sums, "fresh")
	if !ok || !fresh.returnsOwned {
		t.Errorf("fresh: want returnsOwned, got %+v (found=%v)", fresh, ok)
	}
	freshVia, ok := summaryFor(t, sums, "freshVia")
	if !ok || !freshVia.returnsOwned {
		t.Errorf("freshVia: want returnsOwned through local, got %+v (found=%v)", freshVia, ok)
	}
	if _, ok := summaryFor(t, sums, "passthrough"); ok {
		t.Errorf("passthrough: borrowed return should not be marked pool-owned")
	}
}

func TestIsPoolGetCallRequiresPoolType(t *testing.T) {
	src := `package p
type Frame struct{}
type Bucket struct{}
func (b *Bucket) Get(w, h int) *Frame { return nil }
func f(b *Bucket) *Frame { return b.Get(1, 1) }
`
	_, file, info := typecheckSrc(t, src)
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isPoolGetCall(info, call) {
				found = true
			}
		}
		return true
	})
	if found {
		t.Error("Get on a non-Pool type wrongly recognized as ownership grant")
	}
}
