package analysis

// This file is the module-wide summary engine under the interprocedural
// analyzers (poolown, splitbudget, stagekey, intrange). Where the first
// generation of summaries was one hop and same-package — a function's
// summary reflected only its own body — the engine here computes
// summaries bottom-up over the whole module:
//
//   - packages are visited in import-DAG order (the order retained by the
//     loader), so every cross-package callee is fully summarized before
//     its callers are looked at;
//   - within one package, declarations are re-summarized until nothing
//     changes, so same-package call chains and cycles (mutual recursion)
//     reach a fixpoint;
//   - the iteration is budgeted: summaries start empty (the bottom of
//     their lattice) and only ever grow, so cutting the iteration off
//     leaves a partial summary that under-approximates — the analyzers
//     see fewer facts and stay silent, never wrong in the noisy
//     direction.
//
// The summary maps are keyed by *types.Func. That works across package
// boundaries because the loader resolves module-internal imports to the
// very *types.Package values being loaded (and standard-library imports
// through one process-wide importer), so a call site in package b and the
// declaration in package a agree on the callee's object identity.
//
// A Module computes its summaries at most once, on first use, and every
// analyzer pass shares the result — the whole-module self-lint
// type-checks and summarizes each package exactly once no matter how many
// analyzers run.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// maxSummaryRounds bounds the within-package fixpoint iteration. Straight-
// line call chains converge in as many rounds as the chain is deep (the
// declarations are revisited in file order, not topological order), and
// mutual recursion converges as soon as the facts stop growing; sixteen
// rounds is far beyond any call structure in this tree. Hitting the cap
// leaves the summaries partial, which is safe (see above) and recorded in
// bounded.
const maxSummaryRounds = 16

// moduleSummaries is the shared result of one whole-module summary
// computation.
type moduleSummaries struct {
	// own maps declared functions to their frame-ownership summaries
	// (dataflow.go); only functions with a non-empty summary appear.
	own map[*types.Func]ownSummary
	// spawn maps declared functions to their parallel-region spawn
	// summaries (splitbudget.go); only non-empty summaries appear.
	spawn map[*types.Func]spawnSummary
	// mixed maps a declared function to its stage-domain-mixing findings:
	// Stage parameters that receive registry constants from more than one
	// seed domain across all module call sites (stagekey reports them at
	// the declaration).
	mixed map[*types.Func][]stageMixFinding
	// contracts maps declared functions to their parsed //range parameter
	// contracts (intrange.go).
	contracts map[*types.Func]rangeContract
	// contractDiags holds malformed //range directives per package import
	// path, reported by intrange when it visits that package.
	contractDiags map[string][]contractDiag
	// rounds is the largest number of fixpoint rounds any package needed.
	rounds int
	// bounded records that some package hit maxSummaryRounds and its
	// summaries are a (safe) under-approximation.
	bounded bool
}

// Summaries returns the module's summary set, computing it on first use.
func (m *Module) Summaries() *moduleSummaries {
	m.summariesOnce.Do(func() {
		m.summaries = computeSummaries(m.Fset, m.inOrder())
	})
	return m.summaries
}

// computeSummaries runs the bottom-up fixpoint over pkgs, which must be in
// import-DAG order (dependencies first).
func computeSummaries(fset *token.FileSet, pkgs []*Package) *moduleSummaries {
	s := &moduleSummaries{
		own:           make(map[*types.Func]ownSummary),
		spawn:         make(map[*types.Func]spawnSummary),
		mixed:         make(map[*types.Func][]stageMixFinding),
		contracts:     make(map[*types.Func]rangeContract),
		contractDiags: make(map[string][]contractDiag),
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		decls := packageFuncDecls(pkg)
		rounds := 0
		for ; rounds < maxSummaryRounds; rounds++ {
			changed := false
			for _, d := range decls {
				newOwn := summarizeOwnFunc(pkg.Info, d.fd, s.own)
				if !newOwn.equal(s.own[d.obj]) {
					s.own[d.obj] = newOwn
					changed = true
				}
				newSpawn := summarizeSpawnFunc(pkg.Info, d.fd, s.spawn)
				if !newSpawn.equal(s.spawn[d.obj]) {
					s.spawn[d.obj] = newSpawn
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		if rounds >= maxSummaryRounds {
			s.bounded = true
		}
		if rounds+1 > s.rounds {
			s.rounds = rounds + 1
		}
	}
	// Drop empty summaries so clients' presence checks keep meaning "this
	// callee does something".
	for fn, sum := range s.own {
		if len(sum.consumes) == 0 && !sum.returnsOwned {
			delete(s.own, fn)
		}
	}
	for fn, sum := range s.spawn {
		if sum.empty() {
			delete(s.spawn, fn)
		}
	}
	computeStageMix(s, fset, pkgs)
	collectRangeContracts(s, fset, pkgs)
	return s
}

// funcDecl pairs a declaration with its function object.
type funcDecl struct {
	fd  *ast.FuncDecl
	obj *types.Func
}

func packageFuncDecls(pkg *Package) []funcDecl {
	var out []funcDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcDecl{fd, obj})
		}
	}
	return out
}

// --- Pass-side access ---

// ownSummaries returns the module-wide ownership summaries when the pass
// runs under Run, or package-local ones (same fixpoint, one package) for
// single-package fixture runs.
func (p *Pass) ownSummaries() map[*types.Func]ownSummary {
	return p.moduleSummaries().own
}

// spawnSummaries is ownSummaries' spawn counterpart.
func (p *Pass) spawnSummaries() map[*types.Func]spawnSummary {
	return p.moduleSummaries().spawn
}

// stageMixFindings returns the module-wide stage-domain-mixing facts.
func (p *Pass) stageMixFindings() map[*types.Func][]stageMixFinding {
	return p.moduleSummaries().mixed
}

// rangeContracts returns the parsed //range contracts.
func (p *Pass) rangeContracts() map[*types.Func]rangeContract {
	return p.moduleSummaries().contracts
}

// contractDiagsFor returns the malformed-directive diagnostics for the
// pass's package.
func (p *Pass) contractDiagsFor() []contractDiag {
	return p.moduleSummaries().contractDiags[p.Path]
}

// moduleSummaries returns the summary set backing this pass. Run wires the
// module's shared, cached set; a pass constructed by RunPackage falls back
// to a package-local computation so fixture packages see the same
// transitive semantics within their own boundary.
func (p *Pass) moduleSummaries() *moduleSummaries {
	if p.summaries == nil {
		p.summaries = computeSummaries(p.Fset, []*Package{{
			Path:  p.Path,
			Files: p.Files,
			Types: p.Pkg,
			Info:  p.Info,
		}})
	}
	return p.summaries
}

// --- stage-domain mixing ---

// stageMixFinding is one flagged Stage parameter: a non-registry function
// whose parameter receives registry constants from more than one seed
// domain somewhere in the module. Mixing domains through one forwarding
// wrapper couples streams the registry deliberately separates — the
// wrapper belongs to exactly one domain, or in the registry package.
type stageMixFinding struct {
	// param is the parameter name (or its index when unnamed).
	param string
	// detail lists the domains and one example call site each, sorted by
	// domain label for deterministic output.
	detail string
}

// stageNode is one Stage-typed parameter position of one function.
type stageNode struct {
	fn  *types.Func
	idx int
}

// computeStageMix aggregates, for every Stage-typed parameter position in
// the module, the set of registry domains whose constants reach it — via
// direct constant arguments and through the sanctioned forwarding of a
// caller's own Stage parameter — and records a finding for every
// non-registry-package function receiving more than one domain.
func computeStageMix(s *moduleSummaries, fset *token.FileSet, pkgs []*Package) {
	// Registry domains: one const block in a Stage home package is one
	// seed domain, labeled by its first constant's name.
	domainOf := make(map[*types.Const]string)
	homePkgs := make(map[*types.Package]bool)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		if obj := pkg.Types.Scope().Lookup("Stage"); obj != nil {
			if _, ok := obj.(*types.TypeName); ok {
				homePkgs[pkg.Types] = true
			}
		}
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil || !homePkgs[pkg.Types] {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				label := ""
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						cobj, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						if _, isStage := isStageType(cobj.Type()); !isStage {
							continue
						}
						if label == "" {
							label = name.Name
						}
						domainOf[cobj] = label
					}
				}
			}
		}
	}
	if len(domainOf) == 0 {
		return
	}

	// Flow collection: constants seeding nodes directly, and forwarding
	// edges from a caller's own Stage parameter to the callee position it
	// is passed into.
	domains := make(map[stageNode]map[string]token.Pos)
	edges := make(map[stageNode]map[stageNode]bool)
	seed := func(n stageNode, domain string, pos token.Pos) {
		m := domains[n]
		if m == nil {
			m = make(map[string]token.Pos)
			domains[n] = m
		}
		if prev, ok := m[domain]; !ok || pos < prev {
			m[domain] = pos
		}
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				paramIdx := stageParamIndexes(pkg.Info, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := funcObj(pkg.Info, call.Fun)
					if callee == nil {
						return true
					}
					sig, ok := callee.Type().(*types.Signature)
					if !ok {
						return true
					}
					params := sig.Params()
					for i := 0; i < params.Len() && i < len(call.Args); i++ {
						pt := params.At(i).Type()
						if i == params.Len()-1 && sig.Variadic() {
							if slice, ok := pt.(*types.Slice); ok {
								pt = slice.Elem()
							}
						}
						if _, isStage := isStageType(pt); !isStage {
							continue
						}
						node := stageNode{callee, i}
						arg := ast.Unparen(call.Args[i])
						var id *ast.Ident
						switch a := arg.(type) {
						case *ast.Ident:
							id = a
						case *ast.SelectorExpr:
							id = a.Sel
						default:
							continue
						}
						obj := pkg.Info.Uses[id]
						if cobj, ok := obj.(*types.Const); ok {
							if d, ok := domainOf[cobj]; ok {
								seed(node, d, arg.Pos())
							}
							continue
						}
						if obj == nil {
							continue
						}
						if srcIdx, isParam := paramIdx[obj]; isParam {
							from := stageNode{caller, srcIdx}
							m := edges[from]
							if m == nil {
								m = make(map[stageNode]bool)
								edges[from] = m
							}
							m[node] = true
						}
					}
					return true
				})
			}
		}
	}

	// Propagate along forwarding edges to a fixpoint. Domain sets only
	// grow, so the rounds cap is a safe under-approximating budget.
	for round := 0; round < maxSummaryRounds*2; round++ {
		changed := false
		for from, tos := range edges {
			src := domains[from]
			if len(src) == 0 {
				continue
			}
			for to := range tos {
				for d, pos := range src {
					m := domains[to]
					if prev, ok := m[d]; !ok || pos < prev {
						seed(to, d, pos)
						changed = true
					}
				}
			}
		}
		if !changed {
			s.rounds = max(s.rounds, round+1)
			break
		}
		if round == maxSummaryRounds*2-1 {
			s.bounded = true
		}
	}

	// Findings: more than one domain reaching a function declared outside
	// every Stage home package.
	for node, ds := range domains {
		if len(ds) < 2 {
			continue
		}
		if node.fn.Pkg() == nil || homePkgs[node.fn.Pkg()] {
			continue
		}
		sig, ok := node.fn.Type().(*types.Signature)
		if !ok || node.idx >= sig.Params().Len() {
			continue
		}
		pname := sig.Params().At(node.idx).Name()
		if pname == "" {
			pname = fmt.Sprintf("#%d", node.idx)
		}
		labels := make([]string, 0, len(ds))
		for d := range ds {
			labels = append(labels, d)
		}
		sort.Strings(labels)
		parts := make([]string, len(labels))
		for i, d := range labels {
			p := fset.Position(ds[d])
			parts[i] = fmt.Sprintf("%s (%s:%d)", d, p.Filename, p.Line)
		}
		s.mixed[node.fn] = append(s.mixed[node.fn], stageMixFinding{
			param:  pname,
			detail: joinComma(parts),
		})
	}
	for fn := range s.mixed {
		sort.Slice(s.mixed[fn], func(i, j int) bool { return s.mixed[fn][i].param < s.mixed[fn][j].param })
	}
}

// stageParamIndexes maps fd's Stage-typed parameter objects to their
// positional index in the signature (receivers excluded: forwarding a
// Stage receiver has no positional seat to propagate through).
func stageParamIndexes(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Type.Params == nil {
		return out
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil {
				if _, ok := isStageType(obj.Type()); ok {
					out[obj] = idx
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
