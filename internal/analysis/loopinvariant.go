package analysis

import "go/ast"

// LoopInvariantAnalyzer hoists recomputation out of hot loops: a call to a
// known-pure geometry/waveform helper (Layout.GOBsX, Shape.Between, …) whose
// receiver and arguments are loop-invariant returns the same value every
// iteration, so evaluating it inside the loop is pure waste — and in a for
// condition it is waste the compiler cannot remove, because it cannot prove
// the method pure across the call boundary.
//
// Inside hot functions (see loops.go) it flags invariant pure calls:
//
//   - in the condition or post statement of ANY loop (those re-evaluate on
//     every iteration regardless of nesting depth — `for gx := 0;
//     gx < l.GOBsX(); gx++` recomputes the bound each pass even when the
//     loop has children);
//   - in the body of innermost loops (outer-loop bodies run once per outer
//     iteration; the win is smaller and hoisting hurts readability more).
//
// The fix is the repo idiom: bind the value once before the loop
// (`gobsX := l.GOBsX()`).
var LoopInvariantAnalyzer = &Analyzer{
	Name: "loopinvariant",
	Doc:  "hoist calls to known-pure helpers with loop-invariant arguments out of hot loops",
	Run:  runLoopInvariant,
}

func runLoopInvariant(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		if !fn.hot {
			continue
		}
		for _, loop := range fn.loops {
			if fs, ok := loop.stmt.(*ast.ForStmt); ok {
				if fs.Cond != nil {
					checkInvariantCalls(pass, fn, loop, fs.Cond, "condition")
				}
				if fs.Post != nil {
					checkInvariantCalls(pass, fn, loop, fs.Post, "post statement")
				}
			}
			if loop.innermost() {
				checkInvariantCalls(pass, fn, loop, loop.body(), "body")
			}
		}
	}
}

// checkInvariantCalls reports every pure call under n whose receiver and
// arguments are invariant with respect to loop.
func checkInvariantCalls(pass *Pass, fn *funcLoops, loop *loopNode, n ast.Node, where string) {
	inspectLoop(n, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		obj := funcObj(pass.Info, call.Fun)
		if obj == nil || !isPureHelper(obj) {
			return
		}
		if !loopInvariant(pass.Info, call, loop) {
			return
		}
		pass.Reportf(call.Pos(), "pure call %s with loop-invariant arguments is recomputed every iteration in the loop %s of %s; bind it once before the loop", obj.Name(), where, fn.name)
	})
}
