package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer keeps per-iteration heap traffic out of the pipeline's
// innermost loops. The mux render, camera synthesis and DecodeCaptures
// loops run per pixel or per Block at 30–120 Hz; an allocation inside them
// turns into millions of allocations per second and GC pressure that shows
// up directly in ns/op (the benchdiff gate catches it dynamically — this
// analyzer catches it before it is ever measured).
//
// Inside the innermost loops of hot functions (see loops.go for hotness)
// it flags:
//
//   - make / new calls;
//   - composite literals that allocate: slice or map literals, and any
//     literal whose address is taken (&T{...}); plain value struct/array
//     literals are register-allocated and stay allowed;
//   - string concatenation (each + builds a fresh string);
//   - fmt calls (they allocate and box every operand);
//   - explicit conversions of concrete values to interface types (boxing);
//   - software transcendental math calls (math.Pow, math.Round, math.Sin,
//     …): not allocations, but the same per-iteration cost class — a
//     50–200-cycle library call on every pixel. The fixed-point era made
//     this the repo's dominant regression vector (camera gamma encode was
//     31% of EndToEnd before the internal/fixed LUT cutover), so the
//     analyzer flags them alongside heap traffic. Intrinsified functions
//     (Sqrt, Abs, Floor, Ceil, Trunc, Min, Max) compile to single
//     instructions and stay allowed.
//
// The sanctioned pattern is the repo's scratch-buffer idiom: allocate once
// per function or per worker chunk (camera.Capture's rowBuf) and reuse;
// for curves, tabulate once (internal/fixed's Gamma) and interpolate.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations (make/new/escaping literals/string concat/fmt/boxing) and software transcendental math calls in innermost loops of hot functions",
	Run:  runHotAlloc,
}

// transcendentalMath lists the math functions that are genuine software
// call-outs (no compiler intrinsic): each costs tens to hundreds of cycles
// per call. Sqrt/Abs/Floor/Ceil/Trunc/Inf/NaN/Signbit/Min/Max are
// intrinsified or trivial and deliberately absent.
var transcendentalMath = map[string]bool{
	"Pow": true, "Exp": true, "Exp2": true, "Expm1": true,
	"Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Sin": true, "Cos": true, "Tan": true, "Sincos": true,
	"Asin": true, "Acos": true, "Atan": true, "Atan2": true,
	"Sinh": true, "Cosh": true, "Tanh": true,
	"Asinh": true, "Acosh": true, "Atanh": true,
	"Round": true, "RoundToEven": true, "Mod": true, "Remainder": true,
	"Hypot": true, "Cbrt": true, "Gamma": true, "Lgamma": true,
	"Erf": true, "Erfc": true, "Erfinv": true, "Erfcinv": true,
}

func runHotAlloc(pass *Pass) {
	for _, fn := range collectHotFuncs(pass) {
		if !fn.hot {
			continue
		}
		for _, loop := range fn.loops {
			if !loop.innermost() {
				continue
			}
			inspectLoop(loop.body(), func(n ast.Node) {
				checkHotAllocNode(pass, fn, n)
			})
			if fs, ok := loop.stmt.(*ast.ForStmt); ok {
				if fs.Cond != nil {
					inspectLoop(fs.Cond, func(n ast.Node) { checkHotAllocNode(pass, fn, n) })
				}
				if fs.Post != nil {
					inspectLoop(fs.Post, func(n ast.Node) { checkHotAllocNode(pass, fn, n) })
				}
			}
		}
	}
}

// inspectLoop walks an innermost loop region without descending into
// function literals (their bodies run on their own frame and get their own
// funcLoops entry).
func inspectLoop(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

func checkHotAllocNode(pass *Pass, fn *funcLoops, n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		checkHotAllocCall(pass, fn, n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&composite literal escapes to the heap every iteration of a hot innermost loop in %s; allocate once outside the loop", fn.name)
			}
		}
	case *ast.CompositeLit:
		t := pass.Info.Types[ast.Expr(n)].Type
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			pass.Reportf(n.Pos(), "%s literal allocates every iteration of a hot innermost loop in %s; hoist or reuse a scratch buffer", litKind(t), fn.name)
		}
	case *ast.BinaryExpr:
		if n.Op != token.ADD {
			return
		}
		if t, ok := pass.Info.Types[ast.Expr(n)].Type.Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
			// Constant folding happens at compile time; only flag runtime
			// concatenation.
			if pass.Info.Types[ast.Expr(n)].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates every iteration of a hot innermost loop in %s; build once outside or use a []byte scratch", fn.name)
			}
		}
	}
}

func checkHotAllocCall(pass *Pass, fn *funcLoops, call *ast.CallExpr) {
	// Type conversions to interface types box their operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if at := pass.Info.Types[call.Args[0]].Type; at != nil {
				if _, already := at.Underlying().(*types.Interface); !already {
					pass.Reportf(call.Pos(), "conversion to interface boxes its operand every iteration of a hot innermost loop in %s", fn.name)
				}
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates every iteration of a hot innermost loop in %s; hoist the buffer and reuse it", b.Name(), fn.name)
			}
			return
		}
	}
	obj := funcObj(pass.Info, call.Fun)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s allocates and boxes in a hot innermost loop in %s; move formatting out of the per-element path", obj.Name(), fn.name)
	case "math":
		if transcendentalMath[obj.Name()] {
			pass.Reportf(call.Pos(), "math.%s is a software transcendental call on every iteration of a hot innermost loop in %s; hoist it, tabulate it (see internal/fixed), or move to integer arithmetic", obj.Name(), fn.name)
		}
	}
}

// litKind names the allocating literal class for the diagnostic.
func litKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}
