package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineAnalyzer enforces the concurrency architecture established in
// PR 1: all fan-out flows through the deterministic worker-pool engine in
// internal/parallel, which owns result ordering and is the only place where
// goroutine scheduling may vary. Outside that package (and outside cmd/ and
// examples/, which may drive the engine however they like) it bans raw `go`
// statements and any reference to sync.WaitGroup — hand-rolled fan-out is
// exactly how ordering nondeterminism re-enters the pipeline.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "forbid raw go statements and sync.WaitGroup fan-out outside internal/parallel",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	if !isPipelinePackage(pass.Path) || isParallelEnginePackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement outside internal/parallel; use the deterministic engine (parallel.Map / parallel.Pipeline)")
			case *ast.SelectorExpr:
				if tn, ok := pass.Info.Uses[n.Sel].(*types.TypeName); ok && isNamed(tn.Type(), "sync", "WaitGroup") {
					pass.Reportf(n.Pos(), "bare sync.WaitGroup outside internal/parallel; use the deterministic engine (parallel.Map / parallel.Pipeline)")
				}
			}
			return true
		})
	}
}

// isParallelEnginePackage reports whether path is the blessed concurrency
// engine package (the module's internal/parallel).
func isParallelEnginePackage(path string) bool {
	return path == "internal/parallel" || strings.HasSuffix(path, "/internal/parallel")
}
