package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkBaseline(entries ...Entry) *Baseline {
	return &Baseline{
		Schema:     Schema,
		GoVersion:  "go1.24.0",
		GoOS:       "linux",
		GoArch:     "amd64",
		GoMaxProcs: 1,
		Scale:      2,
		Benchmarks: entries,
	}
}

// TestCompareTolerance pins the gate math: strictly above base*(1+tol) is a
// regression, the boundary itself is not, and improvements are labeled.
func TestCompareTolerance(t *testing.T) {
	base := mkBaseline(Entry{Name: "EndToEnd/workers=1", Iterations: 2, NsPerOp: 1000})
	cases := []struct {
		name   string
		curNs  int64
		tol    float64
		status Status
	}{
		{"regression at +50%", 1500, 0.15, StatusRegression},
		{"ok at +10%", 1100, 0.15, StatusOK},
		{"ok exactly at the boundary", 1150, 0.15, StatusOK},
		{"regression just past the boundary", 1151, 0.15, StatusRegression},
		{"improved at -30%", 700, 0.15, StatusImproved},
		{"ok at -10%", 900, 0.15, StatusOK},
		{"zero tolerance flags +1", 1001, 0, StatusRegression},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cur := mkBaseline(Entry{Name: "EndToEnd/workers=1", Iterations: 2, NsPerOp: c.curNs})
			r := Compare(base, cur, c.tol)
			if len(r.Rows) != 1 {
				t.Fatalf("got %d rows, want 1", len(r.Rows))
			}
			if r.Rows[0].Status != c.status {
				t.Errorf("cur=%d tol=%v: status %s, want %s", c.curNs, c.tol, r.Rows[0].Status, c.status)
			}
			wantRegs := 0
			if c.status == StatusRegression {
				wantRegs = 1
			}
			if r.Regressions() != wantRegs {
				t.Errorf("Regressions() = %d, want %d", r.Regressions(), wantRegs)
			}
		})
	}
}

// TestCompareAllocGate pins the v2 alloc gating: allocs/op regress only when
// the count exceeds both the fractional tolerance and the absolute slack,
// and an alloc regression overrides a clean (or even improved) time verdict.
func TestCompareAllocGate(t *testing.T) {
	cases := []struct {
		name                  string
		baseAllocs, curAllocs int64
		curNs                 int64
		status                Status
	}{
		{"steady zero-alloc stays ok", 0, 0, 1000, StatusOK},
		{"slack absorbs harness jitter", 0, 2, 1000, StatusOK},
		{"zero baseline catches a real leak", 0, 3, 1000, StatusRegression},
		{"within fractional tolerance", 100, 110, 1000, StatusOK},
		{"alloc jump past tolerance", 100, 120, 1000, StatusRegression},
		{"alloc regression overrides faster time", 100, 200, 500, StatusRegression},
		{"fewer allocs alone is not improved", 100, 10, 1000, StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := mkBaseline(Entry{Name: "EndToEnd/workers=1", NsPerOp: 1000, AllocsPerOp: c.baseAllocs})
			cur := mkBaseline(Entry{Name: "EndToEnd/workers=1", NsPerOp: c.curNs, AllocsPerOp: c.curAllocs})
			r := Compare(base, cur, 0.15)
			if got := r.Rows[0].Status; got != c.status {
				t.Errorf("allocs %d->%d ns %d: status %s, want %s", c.baseAllocs, c.curAllocs, c.curNs, got, c.status)
			}
		})
	}
}

// TestCompareMissingAndNew pins that machine-shape differences (a baseline
// taken on more cores than the current machine, or vice versa) warn instead
// of failing the gate.
func TestCompareMissingAndNew(t *testing.T) {
	base := mkBaseline(
		Entry{Name: "EndToEnd/workers=1", NsPerOp: 1000},
		Entry{Name: "EndToEnd/workers=8", NsPerOp: 300},
	)
	cur := mkBaseline(
		Entry{Name: "EndToEnd/workers=1", NsPerOp: 1000},
		Entry{Name: "DecodeCaptures/workers=1", NsPerOp: 50},
	)
	r := Compare(base, cur, 0.15)
	if r.Regressions() != 0 {
		t.Fatalf("missing/new entries must not count as regressions, got %d", r.Regressions())
	}
	byName := make(map[string]Status, len(r.Rows))
	for _, row := range r.Rows {
		byName[row.Name] = row.Status
	}
	if byName["EndToEnd/workers=8"] != StatusMissing {
		t.Errorf("workers=8 status = %s, want missing", byName["EndToEnd/workers=8"])
	}
	if byName["DecodeCaptures/workers=1"] != StatusNew {
		t.Errorf("DecodeCaptures status = %s, want new", byName["DecodeCaptures/workers=1"])
	}
	var warned bool
	for _, w := range r.Warnings {
		if strings.Contains(w, "workers=8") {
			warned = true
		}
	}
	if !warned {
		t.Error("missing benchmark did not produce a warning")
	}
}

// TestCompareEnvironmentWarnings pins the environment-mismatch warnings.
func TestCompareEnvironmentWarnings(t *testing.T) {
	base := mkBaseline(Entry{Name: "EndToEnd/workers=1", NsPerOp: 1000})
	cur := mkBaseline(Entry{Name: "EndToEnd/workers=1", NsPerOp: 1000})
	cur.GoVersion = "go1.25.0"
	cur.GoMaxProcs = 8
	cur.Scale = 4
	r := Compare(base, cur, 0.15)
	joined := strings.Join(r.Warnings, "\n")
	for _, want := range []string{"go version", "GOMAXPROCS", "scale"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q mismatch: %q", want, joined)
		}
	}
}

// TestRoundTrip pins the schema round-trip: Write then Load restores the
// baseline exactly.
func TestRoundTrip(t *testing.T) {
	b := mkBaseline(
		Entry{Name: "EndToEnd/workers=1", Iterations: 2, NsPerOp: 775382860, AllocsPerOp: 412, BytesPerOp: 1 << 20},
		Entry{Name: "DecodeCaptures/workers=1", Iterations: 74, NsPerOp: 15323870, AllocsPerOp: 9, BytesPerOp: 2048},
	)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Schema != Schema || got.GoVersion != b.GoVersion || got.Scale != b.Scale {
		t.Errorf("header mismatch: %+v vs %+v", got, b)
	}
	if len(got.Benchmarks) != len(b.Benchmarks) {
		t.Fatalf("got %d benchmarks, want %d", len(got.Benchmarks), len(b.Benchmarks))
	}
	for i, e := range got.Benchmarks {
		if e != b.Benchmarks[i] {
			t.Errorf("entry %d = %+v, want %+v", i, e, b.Benchmarks[i])
		}
	}
}

// TestLoadRejectsBadSchema pins the loud-failure contract on both sides of
// the round-trip.
func TestLoadRejectsBadSchema(t *testing.T) {
	bad := mkBaseline(Entry{Name: "EndToEnd/workers=1", NsPerOp: 1})
	bad.Schema = "inframe-bench-baseline/v1"
	if err := bad.Write(filepath.Join(t.TempDir(), "refused.json")); err == nil {
		t.Error("Write accepted a foreign schema")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"inframe-bench-baseline/v0","benchmarks":[{"name":"x","iterations":1,"ns_per_op":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted a foreign schema")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"inframe-bench-baseline/v2","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("Load accepted a baseline with no benchmarks")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load of a missing file did not fail")
	}
}

// TestCompareCalibration pins the speed-normalized gate: when both baselines
// carry a calibration reference, a slowdown fails only if it survives both
// the raw and the speed-normalized reading — a container that drifted into
// a slower speed state does not read as a code regression, and the gate is
// never stricter than the raw comparison.
func TestCompareCalibration(t *testing.T) {
	entry := func(ns int64) Entry { return Entry{Name: "Fleet/workers=1", Iterations: 3, NsPerOp: ns} }
	cases := []struct {
		name       string
		baseCalib  int64
		curCalib   int64
		curNs      int64
		status     Status
		speedRatio float64
	}{
		// Machine 30% slower, benchmark 30% slower: normalized flat.
		{"slow machine excused", 100, 130, 1300, StatusOK, 1.3},
		// Machine 30% slower but benchmark 80% slower: still a regression.
		{"real regression on slow machine", 100, 130, 1800, StatusRegression, 1.3},
		// Machine faster and raw ns flat: OK even though the normalized
		// reading alone would cross the threshold — the gate takes the more
		// favorable interpretation, never the stricter one.
		{"fast machine does not manufacture regression", 130, 100, 920, StatusOK, 100.0 / 130},
		// Calibration missing on either side: raw comparison, ratio unset.
		{"no baseline calib", 0, 130, 1100, StatusOK, 0},
		{"no current calib", 100, 0, 1100, StatusOK, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := mkBaseline(entry(1000))
			base.CalibNsPerOp = c.baseCalib
			cur := mkBaseline(entry(c.curNs))
			cur.CalibNsPerOp = c.curCalib
			r := Compare(base, cur, 0.15)
			if len(r.Rows) != 1 {
				t.Fatalf("got %d rows, want 1", len(r.Rows))
			}
			if r.Rows[0].Status != c.status {
				t.Errorf("status %s, want %s (delta %.3f)", r.Rows[0].Status, c.status, r.Rows[0].Delta)
			}
			if diff := r.SpeedRatio - c.speedRatio; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("SpeedRatio = %v, want %v", r.SpeedRatio, c.speedRatio)
			}
			// Raw ns always land in the columns untouched.
			if r.Rows[0].CurNs != c.curNs {
				t.Errorf("CurNs = %d, want raw %d", r.Rows[0].CurNs, c.curNs)
			}
		})
	}
}

// TestCalibrationRoundTrip: the optional calib field survives the JSON
// round-trip and old files without it load as calib-less baselines.
func TestCalibrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	b := mkBaseline(Entry{Name: "EndToEnd/workers=1", Iterations: 1, NsPerOp: 10})
	b.CalibNsPerOp = 12345
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CalibNsPerOp != 12345 {
		t.Fatalf("CalibNsPerOp = %d, want 12345", got.CalibNsPerOp)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "calib_ns_per_op") {
		t.Fatal("calib field missing from JSON")
	}
}
