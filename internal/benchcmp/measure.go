package benchcmp

import (
	"fmt"
	"runtime"
	"testing"

	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/fleet"
	"inframe/internal/frame"
	"inframe/internal/video"
)

// FleetReceivers is the population size of the Fleet baseline entries; the
// receivers/sec headline is FleetReceivers / (ns-per-op · 1e-9).
const FleetReceivers = 8

// FleetConfig returns the baseline fleet shape: one rendered 4·τ stream on
// the scaled paper geometry decoded by a FleetReceivers-member default
// population, sharing a capped pool and the given worker budget — the same
// shape BenchmarkFleet measures.
func FleetConfig(scale, w int) (fleet.Config, error) {
	l, err := core.ScaledPaperLayout(scale)
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.DefaultConfig(l, 1280/scale, 720/scale, FleetReceivers, 1)
	cfg.Seconds = float64(4*cfg.Params.Tau) / cfg.Display.RefreshHz
	cfg.Workers = w
	cfg.PoolCap = 4
	return cfg, nil
}

// pipeline builds the scaled paper pipeline with every stage's worker pool
// set to w and one shared frame pool — the same shape benchPipeline gives
// the BenchmarkEndToEnd / BenchmarkDecodeCaptures tests, so baseline
// numbers are directly comparable to `go test -bench` output.
func pipeline(scale, w int) (*core.Multiplexer, channel.Config, *core.Receiver, int, *frame.Pool, error) {
	l, err := core.ScaledPaperLayout(scale)
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	pool := frame.NewPool()
	p := core.DefaultParams(l)
	p.Workers = w
	p.Pool = pool
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 1))
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	cfg := channel.DefaultConfig(1280/scale, 720/scale)
	cfg.Workers = w
	cfg.Pool = pool
	cfg.Camera.Workers = w
	rcfg := core.DefaultReceiverConfig(p, 1280/scale, 720/scale)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = w
	rcfg.Pool = pool
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	return m, cfg, rcv, 4 * p.Tau, pool, nil
}

// measureRepeats is how many times each benchmark is sampled; the fastest
// sample is kept. Benchmark noise on a shared container is one-sided (CPU
// steal and scheduler interference only ever slow a run down), so the
// minimum across a few repetitions is the robust ns/op estimator — a single
// sample of the short Fleet benchmark can swing past the benchdiff
// tolerance on its own.
const measureRepeats = 3

// measureBest runs fn through testing.Benchmark measureRepeats times and
// returns the fastest run. allocs/op and bytes/op come from the same run,
// which is fine: they are deterministic up to pool warm-up (±1). Each
// sample starts from a freshly collected heap: the stages run back to back
// in one process, and whatever garbage the previous stage left alive skews
// the GC pacing the next sample sees — Fleet measured after EndToEnd swings
// ±15% from that alone, while a clean-process Fleet holds ±2%.
func measureBest(fn func(b *testing.B)) testing.BenchmarkResult {
	runtime.GC()
	best := testing.Benchmark(fn)
	for i := 1; i < measureRepeats; i++ {
		runtime.GC()
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// calibSize and calibPasses size the calibration kernel: a fixed
// float32 stream + int32 accumulate pass shaped like the pipeline's hot
// loops (clamped multiply-add over whole frames, integer reduction). The
// buffer must be far larger than the last-level cache so the kernel is
// memory-bandwidth-bound like the frame pipeline it normalizes: the
// dominant drift on shared containers is memory-controller contention,
// which a cache-resident kernel does not see at all (measured: an L2-sized
// kernel's ns/op moved opposite to the pipeline's between speed states).
const (
	calibSize   = 1 << 22
	calibPasses = 4
)

// calibSink keeps the calibration reduction observable so the kernel cannot
// be optimized away.
var calibSink int32

// Calibrate times the fixed reference kernel and returns its ns/op, best of
// measureRepeats samples. The kernel does a constant amount of work, so its
// ns/op moves only with the machine's effective speed — the normalization
// denominator Compare uses to cancel run-to-run machine drift.
func Calibrate() int64 {
	buf := make([]float32, calibSize)
	for i := range buf {
		buf[i] = float32(i%251) / 4
	}
	var acc int32
	r := measureBest(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for p := 0; p < calibPasses; p++ {
				for i, v := range buf {
					v = v*1.0009766 + 0.5
					if v > 255 {
						v -= 255
					}
					buf[i] = v
					acc += int32(v)
				}
			}
		}
	})
	calibSink = acc
	return r.NsPerOp()
}

// Measure benchmarks EndToEnd (render + channel + decode) and DecodeCaptures
// (receive side only) at workers=1 and, when the machine has more than one
// core, workers=GOMAXPROCS, and returns the results as a fresh baseline.
// Every entry is the best of measureRepeats samples, so committed baselines
// and benchdiff's fresh runs estimate the same (noise-free) quantity, and
// the calibration kernel is timed alongside so Compare can normalize away
// whatever speed state the machine was in.
func Measure(scale int) (*Baseline, error) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	base := &Baseline{
		Schema:       Schema,
		GoVersion:    runtime.Version(),
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Scale:        scale,
		CalibNsPerOp: Calibrate(),
	}
	for _, w := range counts {
		m, cfg, rcv, nDisplay, pool, err := pipeline(scale, w)
		if err != nil {
			return nil, err
		}
		var benchErr error
		r := measureBest(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := channel.Simulate(m, nDisplay, cfg)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
				res.Recycle(pool)
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("EndToEnd/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	// Decode-only: one captured sequence (full pool), then time the decode
	// at each worker count.
	m, cfg, _, nDisplay, _, err := pipeline(scale, 0)
	if err != nil {
		return nil, err
	}
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return nil, err
	}
	for _, w := range counts {
		_, _, rcv, _, _, err := pipeline(scale, w)
		if err != nil {
			return nil, err
		}
		r := measureBest(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
			}
		})
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("DecodeCaptures/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	// Drop the captured sequence before the Fleet stage so tens of MB of
	// capture frames don't distort its GC pacing.
	res = nil
	_ = res
	// Fleet: render once, decode a FleetReceivers-member population — the
	// receivers/sec scaling headline.
	for _, w := range counts {
		cfg, err := FleetConfig(scale, w)
		if err != nil {
			return nil, err
		}
		var benchErr error
		r := measureBest(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("Fleet/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return base, nil
}
