package benchcmp

import (
	"fmt"
	"runtime"
	"testing"

	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/fleet"
	"inframe/internal/frame"
	"inframe/internal/video"
)

// FleetReceivers is the population size of the Fleet baseline entries; the
// receivers/sec headline is FleetReceivers / (ns-per-op · 1e-9).
const FleetReceivers = 8

// FleetConfig returns the baseline fleet shape: one rendered 4·τ stream on
// the scaled paper geometry decoded by a FleetReceivers-member default
// population, sharing a capped pool and the given worker budget — the same
// shape BenchmarkFleet measures.
func FleetConfig(scale, w int) (fleet.Config, error) {
	l, err := core.ScaledPaperLayout(scale)
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.DefaultConfig(l, 1280/scale, 720/scale, FleetReceivers, 1)
	cfg.Seconds = float64(4*cfg.Params.Tau) / cfg.Display.RefreshHz
	cfg.Workers = w
	cfg.PoolCap = 4
	return cfg, nil
}

// pipeline builds the scaled paper pipeline with every stage's worker pool
// set to w and one shared frame pool — the same shape benchPipeline gives
// the BenchmarkEndToEnd / BenchmarkDecodeCaptures tests, so baseline
// numbers are directly comparable to `go test -bench` output.
func pipeline(scale, w int) (*core.Multiplexer, channel.Config, *core.Receiver, int, *frame.Pool, error) {
	l, err := core.ScaledPaperLayout(scale)
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	pool := frame.NewPool()
	p := core.DefaultParams(l)
	p.Workers = w
	p.Pool = pool
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 1))
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	cfg := channel.DefaultConfig(1280/scale, 720/scale)
	cfg.Workers = w
	cfg.Pool = pool
	cfg.Camera.Workers = w
	rcfg := core.DefaultReceiverConfig(p, 1280/scale, 720/scale)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = w
	rcfg.Pool = pool
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return nil, channel.Config{}, nil, 0, nil, err
	}
	return m, cfg, rcv, 4 * p.Tau, pool, nil
}

// Measure benchmarks EndToEnd (render + channel + decode) and DecodeCaptures
// (receive side only) at workers=1 and, when the machine has more than one
// core, workers=GOMAXPROCS, and returns the results as a fresh baseline.
func Measure(scale int) (*Baseline, error) {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	base := &Baseline{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	for _, w := range counts {
		m, cfg, rcv, nDisplay, pool, err := pipeline(scale, w)
		if err != nil {
			return nil, err
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := channel.Simulate(m, nDisplay, cfg)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
				res.Recycle(pool)
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("EndToEnd/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	// Decode-only: one captured sequence (full pool), then time the decode
	// at each worker count.
	m, cfg, _, nDisplay, _, err := pipeline(scale, 0)
	if err != nil {
		return nil, err
	}
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return nil, err
	}
	for _, w := range counts {
		_, _, rcv, _, _, err := pipeline(scale, w)
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/rcv.Config().Tau)
			}
		})
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("DecodeCaptures/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	// Fleet: render once, decode a FleetReceivers-member population — the
	// receivers/sec scaling headline.
	for _, w := range counts {
		cfg, err := FleetConfig(scale, w)
		if err != nil {
			return nil, err
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		base.Benchmarks = append(base.Benchmarks, Entry{
			Name:        fmt.Sprintf("Fleet/workers=%d", w),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return base, nil
}
