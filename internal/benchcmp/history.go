package benchcmp

// The history report: every committed BENCH_*.json read in date order and
// rendered as one trend table per benchmark column, so a PR that updates
// the baseline also shows where the number came from. Unlike the gate
// (Load/Compare), history reading is lenient about schema age — v1 files
// predate the alloc columns and still anchor the ns/op trend.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// schemaV1 is the original baseline format: ns/op only.
const schemaV1 = "inframe-bench-baseline/v1"

// LoadAny reads a baseline file accepting any schema this package has
// ever written; v1 entries simply carry zero alloc columns.
func LoadAny(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing %s: %w", path, err)
	}
	switch b.Schema {
	case Schema, schemaV1:
	default:
		return nil, fmt.Errorf("benchcmp: %s has unknown schema %q", path, b.Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s contains no benchmarks", path)
	}
	return &b, nil
}

// History is the chronological sequence of committed baselines.
type History struct {
	// Files holds the baseline file names, lexical (= date) order.
	Files []string
	// Baselines holds the parsed files, aligned with Files.
	Baselines []*Baseline
}

// LoadHistory loads every BENCH_*.json in dir. The files are
// date-stamped, so lexical order is chronological order.
func LoadHistory(dir string) (*History, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("benchcmp: no BENCH_*.json baselines in %s", dir)
	}
	sort.Strings(names)
	h := &History{}
	for _, name := range names {
		b, err := LoadAny(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		h.Files = append(h.Files, name)
		h.Baselines = append(h.Baselines, b)
	}
	return h, nil
}

// Names returns the union of benchmark names across the history in
// first-seen order, so columns stay stable as benchmarks are added.
func (h *History) Names() []string {
	var names []string
	seen := make(map[string]bool)
	for _, b := range h.Baselines {
		for _, e := range b.Benchmarks {
			if !seen[e.Name] {
				seen[e.Name] = true
				names = append(names, e.Name)
			}
		}
	}
	return names
}

// entry returns baseline i's result for name, nil when the file predates
// the benchmark.
func (h *History) entry(i int, name string) *Entry {
	for j := range h.Baselines[i].Benchmarks {
		if h.Baselines[i].Benchmarks[j].Name == name {
			return &h.Baselines[i].Benchmarks[j]
		}
	}
	return nil
}

// WriteMarkdown renders the trend table as a GitHub-flavored pipe table
// (equally readable in a terminal): one row per baseline file with ns/op
// and the delta against the previous file carrying that benchmark, and a
// closing newest-vs-oldest row summarizing the whole series.
func (h *History) WriteMarkdown(w io.Writer) {
	names := h.Names()
	fmt.Fprint(w, "| baseline |")
	for _, n := range names {
		fmt.Fprintf(w, " %s | Δ |", n)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range names {
		fmt.Fprint(w, "---:|---:|")
	}
	fmt.Fprintln(w)
	for i, file := range h.Files {
		fmt.Fprintf(w, "| %s |", strings.TrimSuffix(strings.TrimPrefix(file, "BENCH_"), ".json"))
		for _, n := range names {
			e := h.entry(i, n)
			if e == nil {
				fmt.Fprint(w, " — | — |")
				continue
			}
			fmt.Fprintf(w, " %s |", formatNs(e.NsPerOp))
			if prev := h.previous(i, n); prev != nil {
				fmt.Fprintf(w, " %s |", formatDelta(prev.NsPerOp, e.NsPerOp))
			} else {
				fmt.Fprint(w, " — |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "| newest vs oldest |")
	for _, n := range names {
		first, last := h.bookends(n)
		if first == nil || last == nil || first == last {
			fmt.Fprint(w, " | — |")
			continue
		}
		fmt.Fprintf(w, " | %s |", formatDelta(first.NsPerOp, last.NsPerOp))
	}
	fmt.Fprintln(w)
}

// previous returns the most recent result for name strictly before
// baseline i, nil when i is the first sighting.
func (h *History) previous(i int, name string) *Entry {
	for j := i - 1; j >= 0; j-- {
		if e := h.entry(j, name); e != nil {
			return e
		}
	}
	return nil
}

// bookends returns the oldest and newest results for name.
func (h *History) bookends(name string) (first, last *Entry) {
	for i := range h.Files {
		if e := h.entry(i, name); e != nil {
			if first == nil {
				first = e
			}
			last = e
		}
	}
	return first, last
}

// formatNs renders ns/op at millisecond scale, the natural unit of the
// pipeline stages.
func formatNs(ns int64) string {
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}

// formatDelta renders the fractional change from a to b as a signed
// percentage.
func formatDelta(a, b int64) string {
	if a == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(b)-float64(a))/float64(a))
}
