// Package benchcmp owns the benchmark-baseline schema shared by
// cmd/inframe-bench (which writes BENCH_*.json seed points) and
// cmd/inframe-benchdiff (which gates changes against them): the baseline
// type, its JSON round-trip, fresh measurement of the pipeline stages, and
// the tolerance comparison that turns two baselines into a verdict.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the baseline file format. Readers reject anything else
// so a stale or foreign JSON file fails loudly instead of comparing apples
// to nonsense. v2 added allocs_per_op and bytes_per_op so the gate catches
// allocation regressions (a pooled pipeline that starts allocating frames
// again) even when ns/op happens to stay inside tolerance.
const Schema = "inframe-bench-baseline/v2"

// Baseline is one measured seed point: the environment it was taken in and
// the ns/op and allocs/op of each pipeline stage benchmark.
//
// CalibNsPerOp is the ns/op of the fixed calibration kernel (Calibrate)
// measured alongside the benchmarks. Shared containers drift between speed
// states minutes apart (CPU steal, frequency scaling), so two runs of
// identical code can differ by ±20% in raw ns; the calibration reference
// captures the machine's speed at measurement time, letting Compare gate on
// speed-normalized ratios instead. Optional: baselines written before the
// field existed compare raw, as before.
type Baseline struct {
	Schema       string  `json:"schema"`
	GoVersion    string  `json:"go_version"`
	GoOS         string  `json:"goos"`
	GoArch       string  `json:"goarch"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Scale        int     `json:"scale"`
	CalibNsPerOp int64   `json:"calib_ns_per_op,omitempty"`
	Benchmarks   []Entry `json:"benchmarks"`
}

// Entry is one benchmark result.
type Entry struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("benchcmp: %s has schema %q, want %q", path, b.Schema, Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: %s contains no benchmarks", path)
	}
	return &b, nil
}

// Write marshals the baseline to path with a trailing newline.
func (b *Baseline) Write(path string) error {
	if b.Schema != Schema {
		return fmt.Errorf("benchcmp: refusing to write schema %q", b.Schema)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
