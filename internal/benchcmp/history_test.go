package benchcmp

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeHistoryFile drops one baseline JSON into dir.
func writeHistoryFile(t *testing.T, dir, name, schema string, entries []Entry) {
	t.Helper()
	b := Baseline{
		Schema:     schema,
		GoVersion:  "go1.24.0",
		GoOS:       "linux",
		GoArch:     "amd64",
		GoMaxProcs: 1,
		Scale:      2,
		Benchmarks: entries,
	}
	// Write bypasses the schema guard on purpose: history files may carry
	// the v1 schema that Baseline.Write refuses.
	data := []byte(`{"schema":"` + schema + `","go_version":"go1.24.0","goos":"linux","goarch":"amd64","gomaxprocs":1,"scale":2,"benchmarks":[`)
	for i, e := range b.Benchmarks {
		if i > 0 {
			data = append(data, ',')
		}
		data = append(data, []byte(
			`{"name":"`+e.Name+`","iterations":1,"ns_per_op":`+strconv.FormatInt(e.NsPerOp, 10)+`}`)...)
	}
	data = append(data, []byte("]}")...)
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadHistory pins the trend report: v1 and v2 files load side by
// side, order is lexical, late-added benchmarks render as gaps, and the
// closing row compares newest against oldest.
func TestLoadHistory(t *testing.T) {
	dir := t.TempDir()
	writeHistoryFile(t, dir, "BENCH_2026-01-01.json", schemaV1, []Entry{
		{Name: "EndToEnd/workers=1", NsPerOp: 1000e6},
	})
	writeHistoryFile(t, dir, "BENCH_2026-01-02.json", Schema, []Entry{
		{Name: "EndToEnd/workers=1", NsPerOp: 800e6},
		{Name: "Fleet/workers=1", NsPerOp: 2000e6},
	})
	h, err := LoadHistory(dir)
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if len(h.Files) != 2 || h.Files[0] != "BENCH_2026-01-01.json" {
		t.Fatalf("files = %v, want lexical order", h.Files)
	}
	if names := h.Names(); len(names) != 2 || names[0] != "EndToEnd/workers=1" {
		t.Fatalf("names = %v", names)
	}

	var out strings.Builder
	h.WriteMarkdown(&out)
	got := out.String()
	for _, want := range []string{
		"| 2026-01-01 | 1000.0ms | — | — | — |",
		"| 2026-01-02 | 800.0ms | -20.0% | 2000.0ms | — |",
		"| newest vs oldest | | -20.0% | | — |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("history table missing %q:\n%s", want, got)
		}
	}
}

// TestLoadHistoryEmptyDir pins the no-baselines error.
func TestLoadHistoryEmptyDir(t *testing.T) {
	if _, err := LoadHistory(t.TempDir()); err == nil {
		t.Fatal("LoadHistory on an empty dir did not fail")
	}
}

// TestLoadAnyRejectsUnknownSchema keeps the lenient loader from reading
// foreign JSON.
func TestLoadAnyRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","benchmarks":[{"name":"a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(path); err == nil {
		t.Fatal("unknown schema did not fail")
	}
}
