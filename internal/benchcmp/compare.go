package benchcmp

import (
	"fmt"
	"io"
)

// Status classifies one benchmark's movement between two baselines.
type Status string

const (
	// StatusOK: within tolerance of the baseline.
	StatusOK Status = "ok"
	// StatusRegression: slower than baseline by more than the tolerance.
	StatusRegression Status = "regression"
	// StatusImproved: faster than baseline by more than the tolerance.
	StatusImproved Status = "improved"
	// StatusMissing: present in the baseline, absent from the current run
	// (a warning, not a failure — worker-count entries vary with the
	// machine's core count).
	StatusMissing Status = "missing"
	// StatusNew: absent from the baseline, present in the current run.
	StatusNew Status = "new"
)

// allocSlack is the absolute allocs/op headroom granted on top of the
// fractional tolerance: counting semantics (one-time lazy init amortized
// across few iterations, testing harness bookkeeping) wobble by an
// allocation or two, and a zero-alloc baseline would otherwise turn any
// nonzero count into a regression regardless of tolerance.
const allocSlack = 2

// Row is one benchmark's comparison.
type Row struct {
	Name       string  `json:"name"`
	BaseNs     int64   `json:"base_ns_per_op"`
	CurNs      int64   `json:"current_ns_per_op"`
	Delta      float64 `json:"delta"` // fractional ns change, (cur-base)/base
	BaseAllocs int64   `json:"base_allocs_per_op"`
	CurAllocs  int64   `json:"current_allocs_per_op"`
	Status     Status  `json:"status"`
}

// Report is the full verdict of a baseline comparison. SpeedRatio is the
// machine-speed factor current/baseline measured by the calibration kernel
// (>1 means the current run saw a slower machine); 0 when either side lacks
// calibration, in which case deltas are raw.
type Report struct {
	Tolerance  float64  `json:"tolerance"`
	SpeedRatio float64  `json:"speed_ratio,omitempty"`
	Rows       []Row    `json:"rows"`
	Warnings   []string `json:"warnings,omitempty"`
}

// Compare evaluates cur against base with the given fractional tolerance:
// a benchmark regresses when its ns/op exceeds base*(1+tol) strictly, or
// when its allocs/op exceeds both base*(1+tol) and base+allocSlack — the
// absolute slack keeps one-allocation jitter on near-zero baselines from
// tripping the gate while still catching a pooled loop that starts
// allocating frames. It counts as improved below base*(1-tol) ns/op
// without an alloc regression. When both baselines carry a calibration
// reference, each benchmark is additionally judged after dividing its
// current ns/op by the machine-speed ratio cur.Calib/base.Calib, and the
// verdict uses whichever reading is more favorable: a shared container
// drifts between speed states minutes apart, so a slowdown only fails the
// gate when it survives both the raw and the speed-normalized
// interpretation. This is strictly more lenient than the raw gate — never
// stricter — so calibration can only remove machine-drift flakes, not
// manufacture regressions. Rows follow the baseline's order,
// then any new benchmarks in the current run's order — no map iteration, so
// the report is deterministic.
func Compare(base, cur *Baseline, tol float64) *Report {
	r := &Report{Tolerance: tol}
	speed := 0.0
	if base.CalibNsPerOp > 0 && cur.CalibNsPerOp > 0 {
		speed = float64(cur.CalibNsPerOp) / float64(base.CalibNsPerOp)
		r.SpeedRatio = speed
	}
	if base.GoVersion != cur.GoVersion {
		r.Warnings = append(r.Warnings, fmt.Sprintf("go version differs: baseline %s, current %s", base.GoVersion, cur.GoVersion))
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		r.Warnings = append(r.Warnings, fmt.Sprintf("GOMAXPROCS differs: baseline %d, current %d", base.GoMaxProcs, cur.GoMaxProcs))
	}
	if base.Scale != cur.Scale {
		r.Warnings = append(r.Warnings, fmt.Sprintf("geometry scale differs: baseline 1/%d, current 1/%d — deltas are not meaningful", base.Scale, cur.Scale))
	}
	curByName := make(map[string]Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		curByName[e.Name] = e
	}
	inBase := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		inBase[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			r.Rows = append(r.Rows, Row{Name: b.Name, BaseNs: b.NsPerOp, BaseAllocs: b.AllocsPerOp, Status: StatusMissing})
			r.Warnings = append(r.Warnings, fmt.Sprintf("benchmark %s missing from current run", b.Name))
			continue
		}
		r.Rows = append(r.Rows, compareEntry(b, c, tol, speed))
	}
	for _, c := range cur.Benchmarks {
		if !inBase[c.Name] {
			r.Rows = append(r.Rows, Row{Name: c.Name, CurNs: c.NsPerOp, CurAllocs: c.AllocsPerOp, Status: StatusNew})
		}
	}
	return r
}

// compareEntry scores one benchmark present in both baselines. speed > 0 is
// the calibration ratio; Delta and the verdict then use the more favorable
// of the raw and speed-normalized readings, while the raw ns land in the
// row's columns untouched.
func compareEntry(b, c Entry, tol, speed float64) Row {
	row := Row{
		Name:   b.Name,
		BaseNs: b.NsPerOp, CurNs: c.NsPerOp,
		BaseAllocs: b.AllocsPerOp, CurAllocs: c.AllocsPerOp,
		Status: StatusOK,
	}
	if b.NsPerOp > 0 {
		base := float64(b.NsPerOp)
		curNs := float64(c.NsPerOp)
		row.Delta = (curNs - base) / base
		if speed > 0 {
			if norm := (curNs/speed - base) / base; norm < row.Delta {
				row.Delta = norm
			}
		}
		switch {
		case row.Delta > tol:
			row.Status = StatusRegression
		case row.Delta < -tol:
			row.Status = StatusImproved
		}
	}
	// An alloc regression overrides a time verdict: the pipeline's
	// zero-frame-alloc steady state is an invariant, not a speed knob.
	if allocRegressed(b.AllocsPerOp, c.AllocsPerOp, tol) {
		row.Status = StatusRegression
	}
	return row
}

// allocRegressed applies the dual threshold: the current count must exceed
// the baseline by more than the fractional tolerance AND by more than the
// absolute slack.
func allocRegressed(base, cur int64, tol float64) bool {
	return float64(cur) > float64(base)*(1+tol) && cur-base > allocSlack
}

// Regressions counts the rows that exceeded tolerance.
func (r *Report) Regressions() int {
	n := 0
	for _, row := range r.Rows {
		if row.Status == StatusRegression {
			n++
		}
	}
	return n
}

// WriteText renders the report as an aligned table with warnings below.
func (r *Report) WriteText(w io.Writer) {
	if r.SpeedRatio > 0 {
		fmt.Fprintf(w, "calibration: current machine ran the reference kernel at %.2f× baseline ns — deltas are speed-normalized\n", r.SpeedRatio)
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s  %s\n",
		"benchmark", "base ns/op", "current ns/op", "delta", "base allocs", "cur allocs", "status")
	for _, row := range r.Rows {
		switch row.Status {
		case StatusMissing:
			fmt.Fprintf(w, "%-28s %14d %14s %8s %12d %12s  %s\n",
				row.Name, row.BaseNs, "-", "-", row.BaseAllocs, "-", row.Status)
		case StatusNew:
			fmt.Fprintf(w, "%-28s %14s %14d %8s %12s %12d  %s\n",
				row.Name, "-", row.CurNs, "-", "-", row.CurAllocs, row.Status)
		default:
			fmt.Fprintf(w, "%-28s %14d %14d %+7.1f%% %12d %12d  %s\n",
				row.Name, row.BaseNs, row.CurNs, row.Delta*100, row.BaseAllocs, row.CurAllocs, row.Status)
		}
	}
	for _, warn := range r.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
}
