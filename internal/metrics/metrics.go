// Package metrics accounts the secondary-channel performance figures the
// paper reports in Fig. 7: throughput, available-GOB ratio and GOB error
// rate, plus oracle-verified goodput and summary statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"inframe/internal/core"
)

// GOBStats accumulates per-GOB outcomes across decoded data frames.
type GOBStats struct {
	// Frames is how many data frames were decoded.
	Frames int
	// Total is the number of GOB observations (frames × GOBs per frame).
	Total int
	// Available counts GOBs whose Blocks all decoded (§4).
	Available int
	// Erroneous counts available GOBs failing parity.
	Erroneous int
	// OracleCorrect counts available, parity-clean GOBs whose data bits
	// all match the transmitted frame (requires AddWithOracle).
	OracleCorrect int
	// oracle notes whether oracle information was supplied.
	oracle bool
}

// Add accumulates one decoded frame without ground truth.
func (s *GOBStats) Add(fd *core.FrameDecode) {
	s.Frames++
	s.Total += len(fd.GOBs)
	s.Available += fd.AvailableGOBs()
	s.Erroneous += fd.ErroneousGOBs()
}

// AddWithOracle accumulates one decoded frame and verifies every available,
// parity-clean GOB against the transmitted data frame.
func (s *GOBStats) AddWithOracle(fd *core.FrameDecode, sent *core.DataFrame) {
	s.Add(fd)
	s.oracle = true
	l := sent.Layout
	for _, g := range fd.GOBs {
		if !g.Available || !g.ParityOK {
			continue
		}
		good := true
		for _, blk := range l.GOBBlocks(g.GX, g.GY) {
			if fd.Bits.Bit(blk[0], blk[1]) != sent.Bit(blk[0], blk[1]) {
				good = false
				break
			}
		}
		if good {
			s.OracleCorrect++
		}
	}
}

// AvailableRatio returns available/total (0 when empty).
func (s *GOBStats) AvailableRatio() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Available) / float64(s.Total)
}

// ErrorRate returns erroneous/available (0 when nothing was available).
func (s *GOBStats) ErrorRate() float64 {
	if s.Available == 0 {
		return 0
	}
	return float64(s.Erroneous) / float64(s.Available)
}

// Report is the Fig. 7 row for one experimental setting.
type Report struct {
	// ThroughputBps follows the paper's accounting: data frame rate ×
	// data bits per frame × available ratio × (1 − error rate).
	ThroughputBps float64
	// GoodputBps is the oracle-verified rate: only GOBs whose decoded
	// data bits match the transmission count (0 if no oracle was used).
	GoodputBps float64
	// RawBps is the channel's nominal rate with every GOB delivered.
	RawBps float64
	// AvailableRatio and ErrorRate echo the GOB statistics.
	AvailableRatio float64
	ErrorRate      float64
}

// Compute derives the report from accumulated statistics and the channel
// parameters: refresh rate (Hz), smoothing cycle τ (display frames per data
// frame) and the layout's data bits per frame.
func Compute(s *GOBStats, layout core.Layout, tau int, refreshHz float64) Report {
	frameRate := refreshHz / float64(tau)
	bitsPerGOB := float64(layout.BlocksPerGOB() - 1)
	raw := frameRate * bitsPerGOB * float64(layout.NumGOBs())
	r := Report{
		RawBps:         raw,
		AvailableRatio: s.AvailableRatio(),
		ErrorRate:      s.ErrorRate(),
	}
	r.ThroughputBps = raw * r.AvailableRatio * (1 - r.ErrorRate)
	if s.oracle && s.Total > 0 {
		r.GoodputBps = raw * float64(s.OracleCorrect) / float64(s.Total)
	}
	return r
}

// String renders the report in the spirit of a Fig. 7 annotation.
func (r Report) String() string {
	return fmt.Sprintf("throughput=%.1fkbps avail=%.1f%% err=%.1f%% raw=%.1fkbps goodput=%.1fkbps",
		r.ThroughputBps/1000, 100*r.AvailableRatio, 100*r.ErrorRate, r.RawBps/1000, r.GoodputBps/1000)
}

// DegradationStats accumulates the graceful-degradation figures of decoded
// runs: how many GOBs were erased and why, how the link quality evolved, and
// how often the receiver lost and regained the capture stream. It is the
// metrics-side companion of core.DecodeReport.
type DegradationStats struct {
	// Runs counts accumulated reports.
	Runs int
	// Causes tallies GOB outcomes by erasure cause; index with
	// core.ErasureCause (core.CauseNone counts delivered GOBs).
	Causes [core.NumErasureCauses]int
	// GapFrames, Resyncs and ExcludedCaptures sum the reports' counters.
	GapFrames        int
	Resyncs          int
	ExcludedCaptures int
	// Quality collects the per-capture link-quality scores of every scored
	// capture across runs.
	Quality Series
}

// AddReport accumulates one decode report. A nil report is a no-op: a
// fleet receiver that produced nothing (camera started past the rendered
// stream, decode path bailed) must not crash the aggregation or count as a
// run.
func (d *DegradationStats) AddReport(rep *core.DecodeReport) {
	if rep == nil {
		return
	}
	d.Runs++
	counts := rep.CauseCounts()
	for c, n := range counts {
		d.Causes[c] += n
	}
	d.GapFrames += rep.GapFrames
	d.Resyncs += rep.Resyncs
	d.ExcludedCaptures += rep.ExcludedCaptures
	for _, q := range rep.Quality {
		if q.Scored {
			d.Quality.Add(q.Quality)
		}
	}
}

// Merge folds another accumulation into d, for combining per-receiver
// statistics gathered independently (each fleet receiver accumulates its
// own DegradationStats, then the harness merges them in receiver-index
// order). Counter fields sum; the quality series concatenates in the
// other's observation order, so merging a fixed sequence of stats in a
// fixed order yields a bit-identical aggregate — float sums in Mean/Std
// depend on observation order, which is why callers must merge in a
// deterministic order (by receiver index, never map iteration). A nil
// other is a no-op.
func (d *DegradationStats) Merge(other *DegradationStats) {
	if other == nil {
		return
	}
	d.Runs += other.Runs
	for c := range other.Causes {
		d.Causes[c] += other.Causes[c]
	}
	d.GapFrames += other.GapFrames
	d.Resyncs += other.Resyncs
	d.ExcludedCaptures += other.ExcludedCaptures
	d.Quality.AddSeries(&other.Quality)
}

// TotalGOBs returns the number of GOB observations across all reports.
func (d *DegradationStats) TotalGOBs() int {
	n := 0
	for _, c := range d.Causes {
		n += c
	}
	return n
}

// DeliveredRatio returns the fraction of GOB observations that decoded and
// passed parity (0 when empty).
func (d *DegradationStats) DeliveredRatio() float64 {
	total := d.TotalGOBs()
	if total == 0 {
		return 0
	}
	return float64(d.Causes[core.CauseNone]) / float64(total)
}

// String renders the erasure breakdown and degradation counters on one line.
func (d *DegradationStats) String() string {
	total := d.TotalGOBs()
	if total == 0 {
		return "degradation: no GOBs observed"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "delivered=%.1f%%", 100*d.DeliveredRatio())
	for c := core.CauseParity; int(c) < core.NumErasureCauses; c++ {
		if n := d.Causes[c]; n > 0 {
			fmt.Fprintf(&b, " %s=%.1f%%", c, 100*float64(n)/float64(total))
		}
	}
	fmt.Fprintf(&b, " gaps=%d resyncs=%d excluded=%d quality=%.2f",
		d.GapFrames, d.Resyncs, d.ExcludedCaptures, d.Quality.Mean())
	return b.String()
}

// Series summarizes repeated scalar measurements.
type Series struct{ xs []float64 }

// Add appends one observation.
func (s *Series) Add(x float64) { s.xs = append(s.xs, x) }

// AddSeries appends every observation of other, in other's order. A nil
// other is a no-op.
func (s *Series) AddSeries(other *Series) {
	if other == nil {
		return
	}
	s.xs = append(s.xs, other.xs...)
}

// Percentile returns the exact p-quantile (p in [0, 1]) by sort-then-index
// over a copy of the observations: nearest-rank, idx = ceil(p·n)−1, so
// Percentile(0.5) of [1 2 3 4] is 2 and Percentile(1) is the maximum. No
// interpolation, no map iteration — the value returned is always one of
// the observations, chosen deterministically. An empty series returns 0
// (matching Mean's empty convention); p outside [0, 1] panics.
func (s *Series) Percentile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %v outside [0,1]", p))
	}
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// N returns the observation count.
func (s *Series) N() int { return len(s.xs) }

// Mean returns the sample mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the population standard deviation (0 when empty).
func (s *Series) Std() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean (0 for fewer than 2 observations).
func (s *Series) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	// Sample std (n−1) for the interval.
	m := s.Mean()
	var acc float64
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	sd := math.Sqrt(acc / float64(n-1))
	return 1.96 * sd / math.Sqrt(float64(n))
}
