package metrics

import (
	"math"
	"strings"
	"testing"

	"inframe/internal/core"
)

func testLayout() core.Layout {
	return core.Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

// fakeDecode builds a FrameDecode with the given number of available GOBs,
// of which errs fail parity, against an all-zero transmission.
func fakeDecode(t *testing.T, l core.Layout, avail, errs int) (*core.FrameDecode, *core.DataFrame) {
	t.Helper()
	sent := core.NewDataFrame(l) // all zero: parity holds trivially
	scores := make([]float64, l.NumBlocks())
	for i := range scores {
		scores[i] = -2 // confident zeros
	}
	cfg := core.DefaultReceiverConfig(core.DefaultParams(l), l.FrameW, l.FrameH)
	cfg.Adaptive = false // deterministic fixed-threshold decisions
	r, err := core.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Make (NumGOBs - avail) GOBs unavailable by zeroing one block score
	// (inside the hysteresis band), and errs GOBs erroneous by flipping one
	// block to a confident 1.
	g := 0
	for gy := 0; gy < l.GOBsY(); gy++ {
		for gx := 0; gx < l.GOBsX(); gx++ {
			blk := l.GOBBlocks(gx, gy)[0]
			idx := blk[1]*l.BlocksX + blk[0]
			switch {
			case g >= avail:
				scores[idx] = 0 // undecided
			case g < errs:
				scores[idx] = 2 // wrong bit → parity failure
			}
			g++
		}
	}
	return r.DecodeScores(0, scores, nil, 1), sent
}

func TestGOBStatsCounts(t *testing.T) {
	l := testLayout() // 6 GOBs
	fd, sent := fakeDecode(t, l, 4, 1)
	var s GOBStats
	s.AddWithOracle(fd, sent)
	if s.Frames != 1 || s.Total != 6 {
		t.Fatalf("frames=%d total=%d", s.Frames, s.Total)
	}
	if s.Available != 4 {
		t.Fatalf("available=%d, want 4", s.Available)
	}
	if s.Erroneous != 1 {
		t.Fatalf("erroneous=%d, want 1", s.Erroneous)
	}
	// 3 available clean GOBs decode all-zero = transmitted.
	if s.OracleCorrect != 3 {
		t.Fatalf("oracleCorrect=%d, want 3", s.OracleCorrect)
	}
	if math.Abs(s.AvailableRatio()-4.0/6) > 1e-12 {
		t.Fatalf("availableRatio=%v", s.AvailableRatio())
	}
	if math.Abs(s.ErrorRate()-0.25) > 1e-12 {
		t.Fatalf("errorRate=%v", s.ErrorRate())
	}
}

func TestGOBStatsEmpty(t *testing.T) {
	var s GOBStats
	if s.AvailableRatio() != 0 || s.ErrorRate() != 0 {
		t.Fatal("empty stats should report zero ratios")
	}
}

func TestComputePaperAccounting(t *testing.T) {
	// The paper's headline: 1125 bits/frame at τ=10 on a 120 Hz display is
	// 13.5 kbps raw; at 95.2% availability and 1.5% error that lands near
	// the reported 12.6-12.8 kbps.
	l := core.PaperLayout()
	s := &GOBStats{Frames: 100, Total: 37500, Available: 35700, Erroneous: 536}
	r := Compute(s, l, 10, 120)
	if math.Abs(r.RawBps-13500) > 1e-9 {
		t.Fatalf("raw = %v, want 13500", r.RawBps)
	}
	if r.ThroughputBps < 12300 || r.ThroughputBps > 12900 {
		t.Fatalf("throughput = %v, want ≈12.6k", r.ThroughputBps)
	}
	if r.GoodputBps != 0 {
		t.Fatalf("goodput without oracle = %v, want 0", r.GoodputBps)
	}
}

func TestComputeGoodput(t *testing.T) {
	l := testLayout()
	fd, sent := fakeDecode(t, l, 6, 0)
	var s GOBStats
	s.AddWithOracle(fd, sent)
	r := Compute(&s, l, 8, 120)
	if r.GoodputBps <= 0 {
		t.Fatal("goodput should be positive with oracle data")
	}
	if r.GoodputBps > r.RawBps+1e-9 {
		t.Fatal("goodput exceeds raw rate")
	}
	if math.Abs(r.GoodputBps-r.RawBps) > 1e-9 {
		t.Fatalf("all-correct goodput %v != raw %v", r.GoodputBps, r.RawBps)
	}
}

func TestReportString(t *testing.T) {
	r := Report{ThroughputBps: 12600, AvailableRatio: 0.952, ErrorRate: 0.015, RawBps: 13500}
	s := r.String()
	for _, want := range []string{"12.6", "95.2", "1.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Fatal("empty series should be all zero")
	}
	for _, x := range []float64{1, 1, 3, 3} {
		s.Add(x)
	}
	if s.N() != 4 || s.Mean() != 2 || s.Std() != 1 {
		t.Fatalf("N=%d mean=%v std=%v", s.N(), s.Mean(), s.Std())
	}
	ci := s.CI95()
	want := 1.96 * math.Sqrt(4.0/3) / 2
	if math.Abs(ci-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestDegradationStats(t *testing.T) {
	l := testLayout() // 6 GOBs
	fd, _ := fakeDecode(t, l, 4, 1)
	rep := &core.DecodeReport{
		Frames: []*core.FrameDecode{fd},
		Quality: []core.CaptureQuality{
			{Index: 0, Quality: 0.9, Scored: true, Used: true},
			{Index: 1, Quality: 0.1, Scored: true, Excluded: true},
			{Index: 2}, // unscored: must not enter the quality series
		},
		GapFrames:        2,
		Resyncs:          1,
		ExcludedCaptures: 1,
	}
	var d DegradationStats
	d.AddReport(rep)
	d.AddReport(rep)
	if d.Runs != 2 || d.TotalGOBs() != 12 {
		t.Fatalf("runs=%d total=%d", d.Runs, d.TotalGOBs())
	}
	// Per report: 4 available GOBs of which 1 fails parity → 3 delivered,
	// 1 parity, 2 low-confidence (the undecided-score erasures).
	if d.Causes[core.CauseNone] != 6 || d.Causes[core.CauseParity] != 2 || d.Causes[core.CauseLowConfidence] != 4 {
		t.Fatalf("causes = %v", d.Causes)
	}
	if math.Abs(d.DeliveredRatio()-0.5) > 1e-12 {
		t.Fatalf("delivered ratio %v, want 0.5", d.DeliveredRatio())
	}
	if d.GapFrames != 4 || d.Resyncs != 2 || d.ExcludedCaptures != 2 {
		t.Fatalf("gaps=%d resyncs=%d excluded=%d", d.GapFrames, d.Resyncs, d.ExcludedCaptures)
	}
	if d.Quality.N() != 4 || math.Abs(d.Quality.Mean()-0.5) > 1e-12 {
		t.Fatalf("quality N=%d mean=%v", d.Quality.N(), d.Quality.Mean())
	}
	s := d.String()
	for _, want := range []string{"delivered=50.0%", "parity=16.7%", "low-confidence=33.3%", "gaps=4", "resyncs=2", "excluded=2", "quality=0.50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("degradation %q missing %q", s, want)
		}
	}
}

func TestDegradationStatsEmpty(t *testing.T) {
	var d DegradationStats
	if d.DeliveredRatio() != 0 || d.TotalGOBs() != 0 {
		t.Fatal("empty stats should be zero")
	}
	if !strings.Contains(d.String(), "no GOBs") {
		t.Fatalf("empty string = %q", d.String())
	}
}
