package metrics

import (
	"math"
	"strings"
	"testing"

	"inframe/internal/core"
)

func testLayout() core.Layout {
	return core.Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

// fakeDecode builds a FrameDecode with the given number of available GOBs,
// of which errs fail parity, against an all-zero transmission.
func fakeDecode(t *testing.T, l core.Layout, avail, errs int) (*core.FrameDecode, *core.DataFrame) {
	t.Helper()
	sent := core.NewDataFrame(l) // all zero: parity holds trivially
	scores := make([]float64, l.NumBlocks())
	for i := range scores {
		scores[i] = -2 // confident zeros
	}
	cfg := core.DefaultReceiverConfig(core.DefaultParams(l), l.FrameW, l.FrameH)
	cfg.Adaptive = false // deterministic fixed-threshold decisions
	r, err := core.NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Make (NumGOBs - avail) GOBs unavailable by zeroing one block score
	// (inside the hysteresis band), and errs GOBs erroneous by flipping one
	// block to a confident 1.
	g := 0
	for gy := 0; gy < l.GOBsY(); gy++ {
		for gx := 0; gx < l.GOBsX(); gx++ {
			blk := l.GOBBlocks(gx, gy)[0]
			idx := blk[1]*l.BlocksX + blk[0]
			switch {
			case g >= avail:
				scores[idx] = 0 // undecided
			case g < errs:
				scores[idx] = 2 // wrong bit → parity failure
			}
			g++
		}
	}
	return r.DecodeScores(0, scores, nil, 1), sent
}

func TestGOBStatsCounts(t *testing.T) {
	l := testLayout() // 6 GOBs
	fd, sent := fakeDecode(t, l, 4, 1)
	var s GOBStats
	s.AddWithOracle(fd, sent)
	if s.Frames != 1 || s.Total != 6 {
		t.Fatalf("frames=%d total=%d", s.Frames, s.Total)
	}
	if s.Available != 4 {
		t.Fatalf("available=%d, want 4", s.Available)
	}
	if s.Erroneous != 1 {
		t.Fatalf("erroneous=%d, want 1", s.Erroneous)
	}
	// 3 available clean GOBs decode all-zero = transmitted.
	if s.OracleCorrect != 3 {
		t.Fatalf("oracleCorrect=%d, want 3", s.OracleCorrect)
	}
	if math.Abs(s.AvailableRatio()-4.0/6) > 1e-12 {
		t.Fatalf("availableRatio=%v", s.AvailableRatio())
	}
	if math.Abs(s.ErrorRate()-0.25) > 1e-12 {
		t.Fatalf("errorRate=%v", s.ErrorRate())
	}
}

func TestGOBStatsEmpty(t *testing.T) {
	var s GOBStats
	if s.AvailableRatio() != 0 || s.ErrorRate() != 0 {
		t.Fatal("empty stats should report zero ratios")
	}
}

func TestComputePaperAccounting(t *testing.T) {
	// The paper's headline: 1125 bits/frame at τ=10 on a 120 Hz display is
	// 13.5 kbps raw; at 95.2% availability and 1.5% error that lands near
	// the reported 12.6-12.8 kbps.
	l := core.PaperLayout()
	s := &GOBStats{Frames: 100, Total: 37500, Available: 35700, Erroneous: 536}
	r := Compute(s, l, 10, 120)
	if math.Abs(r.RawBps-13500) > 1e-9 {
		t.Fatalf("raw = %v, want 13500", r.RawBps)
	}
	if r.ThroughputBps < 12300 || r.ThroughputBps > 12900 {
		t.Fatalf("throughput = %v, want ≈12.6k", r.ThroughputBps)
	}
	if r.GoodputBps != 0 {
		t.Fatalf("goodput without oracle = %v, want 0", r.GoodputBps)
	}
}

func TestComputeGoodput(t *testing.T) {
	l := testLayout()
	fd, sent := fakeDecode(t, l, 6, 0)
	var s GOBStats
	s.AddWithOracle(fd, sent)
	r := Compute(&s, l, 8, 120)
	if r.GoodputBps <= 0 {
		t.Fatal("goodput should be positive with oracle data")
	}
	if r.GoodputBps > r.RawBps+1e-9 {
		t.Fatal("goodput exceeds raw rate")
	}
	if math.Abs(r.GoodputBps-r.RawBps) > 1e-9 {
		t.Fatalf("all-correct goodput %v != raw %v", r.GoodputBps, r.RawBps)
	}
}

func TestReportString(t *testing.T) {
	r := Report{ThroughputBps: 12600, AvailableRatio: 0.952, ErrorRate: 0.015, RawBps: 13500}
	s := r.String()
	for _, want := range []string{"12.6", "95.2", "1.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Fatal("empty series should be all zero")
	}
	for _, x := range []float64{1, 1, 3, 3} {
		s.Add(x)
	}
	if s.N() != 4 || s.Mean() != 2 || s.Std() != 1 {
		t.Fatalf("N=%d mean=%v std=%v", s.N(), s.Mean(), s.Std())
	}
	ci := s.CI95()
	want := 1.96 * math.Sqrt(4.0/3) / 2
	if math.Abs(ci-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", ci, want)
	}
}

func TestDegradationStats(t *testing.T) {
	l := testLayout() // 6 GOBs
	fd, _ := fakeDecode(t, l, 4, 1)
	rep := &core.DecodeReport{
		Frames: []*core.FrameDecode{fd},
		Quality: []core.CaptureQuality{
			{Index: 0, Quality: 0.9, Scored: true, Used: true},
			{Index: 1, Quality: 0.1, Scored: true, Excluded: true},
			{Index: 2}, // unscored: must not enter the quality series
		},
		GapFrames:        2,
		Resyncs:          1,
		ExcludedCaptures: 1,
	}
	var d DegradationStats
	d.AddReport(rep)
	d.AddReport(rep)
	if d.Runs != 2 || d.TotalGOBs() != 12 {
		t.Fatalf("runs=%d total=%d", d.Runs, d.TotalGOBs())
	}
	// Per report: 4 available GOBs of which 1 fails parity → 3 delivered,
	// 1 parity, 2 low-confidence (the undecided-score erasures).
	if d.Causes[core.CauseNone] != 6 || d.Causes[core.CauseParity] != 2 || d.Causes[core.CauseLowConfidence] != 4 {
		t.Fatalf("causes = %v", d.Causes)
	}
	if math.Abs(d.DeliveredRatio()-0.5) > 1e-12 {
		t.Fatalf("delivered ratio %v, want 0.5", d.DeliveredRatio())
	}
	if d.GapFrames != 4 || d.Resyncs != 2 || d.ExcludedCaptures != 2 {
		t.Fatalf("gaps=%d resyncs=%d excluded=%d", d.GapFrames, d.Resyncs, d.ExcludedCaptures)
	}
	if d.Quality.N() != 4 || math.Abs(d.Quality.Mean()-0.5) > 1e-12 {
		t.Fatalf("quality N=%d mean=%v", d.Quality.N(), d.Quality.Mean())
	}
	s := d.String()
	for _, want := range []string{"delivered=50.0%", "parity=16.7%", "low-confidence=33.3%", "gaps=4", "resyncs=2", "excluded=2", "quality=0.50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("degradation %q missing %q", s, want)
		}
	}
}

func TestDegradationStatsEmpty(t *testing.T) {
	var d DegradationStats
	if d.DeliveredRatio() != 0 || d.TotalGOBs() != 0 {
		t.Fatal("empty stats should be zero")
	}
	if !strings.Contains(d.String(), "no GOBs") {
		t.Fatalf("empty string = %q", d.String())
	}
}

// TestDegradationStatsNilReport pins the cross-receiver merge guard: a nil
// report (a receiver that produced nothing) is a no-op, not a panic and not
// a counted run.
func TestDegradationStatsNilReport(t *testing.T) {
	var d DegradationStats
	d.AddReport(nil)
	if d.Runs != 0 || d.TotalGOBs() != 0 {
		t.Fatalf("nil report counted: runs=%d total=%d", d.Runs, d.TotalGOBs())
	}
}

// TestDegradationStatsMerge drives the cross-receiver aggregation table:
// merging per-receiver stats must equal accumulating the same reports into
// one stats object in the same order, empty and nil merges must be no-ops,
// and the rendered string must be identical (ordering determinism).
func TestDegradationStatsMerge(t *testing.T) {
	l := testLayout()
	fdA, _ := fakeDecode(t, l, 4, 1)
	fdB, _ := fakeDecode(t, l, 6, 0)
	repA := &core.DecodeReport{
		Frames:    []*core.FrameDecode{fdA},
		Quality:   []core.CaptureQuality{{Index: 0, Quality: 0.8, Scored: true, Used: true}},
		GapFrames: 3, Resyncs: 1, ExcludedCaptures: 2,
	}
	repB := &core.DecodeReport{
		Frames:  []*core.FrameDecode{fdB},
		Quality: []core.CaptureQuality{{Index: 0, Quality: 0.4, Scored: true, Used: true}},
	}
	cases := []struct {
		name    string
		batches [][]*core.DecodeReport // one DegradationStats per batch, merged in order
	}{
		{name: "two-receivers", batches: [][]*core.DecodeReport{{repA}, {repB}}},
		{name: "empty-middle", batches: [][]*core.DecodeReport{{repA}, {}, {repB}}},
		{name: "nil-report-inside", batches: [][]*core.DecodeReport{{repA, nil}, {repB}}},
		{name: "all-in-one", batches: [][]*core.DecodeReport{{repA, repB}}},
	}
	var want DegradationStats
	want.AddReport(repA)
	want.AddReport(repB)
	for _, tc := range cases {
		var merged DegradationStats
		for _, batch := range tc.batches {
			var per DegradationStats
			for _, rep := range batch {
				per.AddReport(rep)
			}
			merged.Merge(&per)
		}
		merged.Merge(nil) // must be a no-op
		if merged.Runs != want.Runs || merged.Causes != want.Causes ||
			merged.GapFrames != want.GapFrames || merged.Resyncs != want.Resyncs ||
			merged.ExcludedCaptures != want.ExcludedCaptures {
			t.Errorf("%s: merged counters = %+v, want %+v", tc.name, merged, want)
		}
		if merged.Quality.N() != want.Quality.N() {
			t.Errorf("%s: quality N=%d, want %d", tc.name, merged.Quality.N(), want.Quality.N())
		}
		if got := merged.String(); got != want.String() {
			t.Errorf("%s: merged string %q != accumulated %q", tc.name, got, want.String())
		}
	}
}

// TestSeriesPercentile pins the sort-then-index quantiles, including the
// empty, single-observation, unsorted-input and out-of-range cases.
func TestSeriesPercentile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{name: "empty", xs: nil, p: 0.5, want: 0},
		{name: "single", xs: []float64{7}, p: 0.99, want: 7},
		{name: "median-even", xs: []float64{4, 1, 3, 2}, p: 0.5, want: 2},
		{name: "median-odd", xs: []float64{5, 1, 3}, p: 0.5, want: 3},
		{name: "p0-is-min", xs: []float64{9, 2, 5}, p: 0, want: 2},
		{name: "p1-is-max", xs: []float64{9, 2, 5}, p: 1, want: 9},
		{name: "p95-of-100", xs: seq100(), p: 0.95, want: 94},
		{name: "p99-of-100", xs: seq100(), p: 0.99, want: 98},
		{name: "inf-tail", xs: []float64{1, 2, math.Inf(1)}, p: 1, want: math.Inf(1)},
	}
	for _, tc := range cases {
		var s Series
		for _, x := range tc.xs {
			s.Add(x)
		}
		got := s.Percentile(tc.p)
		//lint:ignore floateq percentile returns an exact element of the input, so the comparison is exact
		if got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// Percentile must not mutate the series (it sorts a copy).
	var s Series
	s.Add(3)
	s.Add(1)
	s.Percentile(0.5)
	if s.xs[0] != 3 {
		t.Fatal("Percentile sorted the series in place")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range percentile did not panic")
		}
	}()
	s.Percentile(1.5)
}

// seq100 returns 0..99 in scrambled (deterministic) order.
func seq100() []float64 {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64((i*37 + 11) % 100)
	}
	return xs
}

// TestSeriesAddSeries pins concatenation order: AddSeries appends other's
// observations after the receiver's, preserving both orders.
func TestSeriesAddSeries(t *testing.T) {
	var a, b Series
	a.Add(1)
	a.Add(2)
	b.Add(3)
	a.AddSeries(&b)
	a.AddSeries(nil)
	if a.N() != 3 || a.xs[0] != 1 || a.xs[1] != 2 || a.xs[2] != 3 {
		t.Fatalf("AddSeries order = %v", a.xs)
	}
}
