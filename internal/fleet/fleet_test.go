package fleet_test

import (
	"math"
	"reflect"
	"testing"

	"inframe/internal/core"
	"inframe/internal/fleet"
	"inframe/internal/frame"
)

// testLayout mirrors the repo-wide compact geometry: 24×16 Blocks of 4×4 at
// Pixel pitch 2 on a 192×128 display, GOBs of 2×2 Blocks.
func testLayout() core.Layout {
	return core.Layout{
		FrameW: 192, FrameH: 128,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 24, BlocksY: 16,
	}
}

// testConfig is a small, fast fleet: 0.8 s at 120 Hz (12 data frames at
// τ=8), quiet cameras, two capture geometries.
func testConfig(n, workers int) fleet.Config {
	l := testLayout()
	cfg := fleet.DefaultConfig(l, l.FrameW, l.FrameH, n, 5)
	cfg.Params.Tau = 8
	cfg.Seconds = 0.8
	cfg.Workers = workers
	cfg.Camera.ReadoutTime = 0
	cfg.Pop.Sizes = [][2]int{{192, 128}, {96, 64}}
	cfg.Pop.NoiseMin, cfg.Pop.NoiseMax = 0.5, 1.5
	return cfg
}

// aggregate strips the interleaving-dependent pool counters, leaving the
// fields the determinism contract covers bit-for-bit.
func aggregate(res *fleet.Result) fleet.Result {
	c := *res
	c.Pool = frame.PoolStats{}
	c.PoolHighWater = frame.PoolHighWater{}
	return c
}

// TestFleetDeterminismAcrossWorkers pins the acceptance criterion: the
// entire fleet aggregate — every per-receiver row, the distributions, the
// merged degradation stats — is bit-identical at Workers ∈ {1, 2, 8}.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet runs; the verify.sh fleet stage covers them")
	}
	base, err := fleet.Run(testConfig(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if base.NeverDecoded == base.N {
		t.Fatalf("no receiver decoded anything; fleet config is not exercising the channel")
	}
	want := aggregate(base)
	for _, w := range []int{2, 8} {
		res, err := fleet.Run(testConfig(6, w))
		if err != nil {
			t.Fatal(err)
		}
		if got := aggregate(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d aggregate diverges from workers=1:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

// TestFleetBudgetMatchesUncapped is the oversubscription-bugfix regression:
// threading the worker budget through the nested fan-out (outer receivers ×
// inner capture/decode workers) must not change a single decoded bit
// relative to the legacy path where every receiver resolves Workers=0 to
// GOMAXPROCS.
func TestFleetBudgetMatchesUncapped(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet runs; the verify.sh fleet stage covers them")
	}
	capped, err := fleet.Run(testConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	uncfg := testConfig(4, 0)
	uncfg.Uncapped = true
	uncapped, err := fleet.Run(uncfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := aggregate(uncapped), aggregate(capped); !reflect.DeepEqual(got, want) {
		t.Fatalf("uncapped aggregate diverges from budgeted:\n got %+v\nwant %+v", got, want)
	}
}

// TestFleetRenderOncePoolMissesFrozen proves the render-once architecture
// through the shared pool: with one capture geometry and aligned starts,
// every allocation after the first receiver's warmup is a pool hit, so
// growing the fleet adds zero misses — the stream was not re-rendered and
// no per-receiver buffer set exists.
func TestFleetRenderOncePoolMissesFrozen(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet runs; the verify.sh fleet stage covers them")
	}
	run := func(n int) frame.PoolStats {
		cfg := testConfig(n, 1)
		cfg.Pop.Sizes = [][2]int{{192, 128}}
		cfg.Pop.StartMax = 0
		cfg.Pop.ExposureJitter = 0
		cfg.Pop.CleanFrac = 1 // no drop/dup profiles: identical capture counts
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pool
	}
	small, large := run(2), run(6)
	if small.Misses != large.Misses {
		t.Fatalf("pool misses grew with fleet size: N=2 missed %d, N=6 missed %d",
			small.Misses, large.Misses)
	}
	if large.Hits <= small.Hits {
		t.Fatalf("larger fleet did not add pool hits (N=2: %d, N=6: %d)", small.Hits, large.Hits)
	}
}

// TestFleetLateStartAllErasure pins the satellite regression: a population
// whose start offsets land beyond the rendered stream must come back as
// all-erasure reports — zero captures, every data frame a gap — never a
// panic, and identically at every worker count.
func TestFleetLateStartAllErasure(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet runs; the verify.sh fleet stage covers them")
	}
	make_ := func(workers int) fleet.Config {
		cfg := testConfig(3, workers)
		cfg.Pop.StartMin = 10 // 0.8 s rendered; every start is far past the end
		cfg.Pop.StartMax = 20
		return cfg
	}
	base, err := fleet.Run(make_(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range base.Receivers {
		if rr.Captures != 0 {
			t.Fatalf("receiver %d captured %d frames from a finished stream", i, rr.Captures)
		}
		if rr.Avail != 0 || rr.Decoded || !math.IsInf(rr.TTFD, 1) {
			t.Fatalf("receiver %d decoded from a finished stream: %+v", i, rr)
		}
		if rr.GapFrames != base.DataFrames {
			t.Fatalf("receiver %d gaps = %d, want all %d frames", i, rr.GapFrames, base.DataFrames)
		}
	}
	if base.NeverDecoded != base.N {
		t.Fatalf("NeverDecoded = %d, want %d", base.NeverDecoded, base.N)
	}
	if got, want := base.Degrade.GapFrames, base.N*base.DataFrames; got != want {
		t.Fatalf("merged gap frames = %d, want %d", got, want)
	}
	nGOBs := testLayout().NumGOBs()
	if got, want := base.Degrade.Causes[core.CauseNoCapture], base.N*base.DataFrames*nGOBs; got != want {
		t.Fatalf("no-capture erasures = %d, want %d", got, want)
	}
	want := aggregate(base)
	for _, w := range []int{2, 8} {
		res, err := fleet.Run(make_(w))
		if err != nil {
			t.Fatal(err)
		}
		if got := aggregate(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d late-start aggregate diverges from workers=1", w)
		}
	}
}

// TestFleetPoolCapBoundsHighWater pins the heterogeneous-geometry memory
// fix at fleet level: an uncapped shared pool retains every geometry's full
// capture sequence between receivers, while a per-size cap holds the
// high-water near the cap — without changing one bit of the aggregate.
func TestFleetPoolCapBoundsHighWater(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet runs; the verify.sh fleet stage covers them")
	}
	run := func(poolCap int) *fleet.Result {
		cfg := testConfig(6, 1)
		cfg.PoolCap = poolCap
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbounded, capped := run(0), run(2)
	if capped.PoolHighWater.Frames >= unbounded.PoolHighWater.Frames {
		t.Fatalf("per-size cap did not lower the high-water: capped %+v, unbounded %+v",
			capped.PoolHighWater, unbounded.PoolHighWater)
	}
	if capped.Pool.Evicted == 0 {
		t.Fatalf("capped fleet run evicted nothing; the cap was never exercised")
	}
	// ~0.8 s of 30 FPS captures per receiver sit in the free list between
	// receivers when unbounded; the cap must keep the resident set to a
	// few frames per distinct size key.
	if hw := capped.PoolHighWater.Frames; hw > 16 {
		t.Fatalf("capped high-water %d frames; want a small bound", hw)
	}
	if got, want := aggregate(capped), aggregate(unbounded); !reflect.DeepEqual(got, want) {
		t.Fatalf("pool cap changed the fleet aggregate:\n got %+v\nwant %+v", got, want)
	}
}
