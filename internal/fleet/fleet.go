package fleet

import (
	"fmt"
	"math"

	"inframe/internal/camera"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/impair"
	"inframe/internal/metrics"
	"inframe/internal/parallel"
	"inframe/internal/video"
)

// Config describes one broadcast-fleet run: a single rendered transmission
// and the population that decodes it.
type Config struct {
	// Params is the transmitter configuration. Pool and Workers are
	// managed by Run (the render shares the fleet pool and the one worker
	// budget).
	Params core.Params
	// Display is the monitor model.
	Display display.Config
	// Source is the carried video; nil plays uniform gray, the
	// experiments' standard carrier.
	Source video.Source
	// Seconds is the rendered transmission length.
	Seconds float64
	// StreamSeed keys the random payload stream.
	StreamSeed int64
	// Camera is the base capture template the population specializes
	// (geometry, exposure, noise and seed are overridden per receiver).
	Camera camera.Config
	// Pop is the receiver population.
	Pop Population
	// Workers is the fleet's total effective worker budget: receivers fan
	// out across min(Resolve(Workers), N) goroutines and each receiver's
	// capture and decode stages get the per-receiver share from
	// parallel.Split, so total concurrency never exceeds one resolved
	// budget. 0 means GOMAXPROCS; 1 forces the sequential path. Results
	// are bit-identical at any value.
	Workers int
	// PoolCap bounds the shared frame pool's per-size free lists
	// (frame.Pool.SetMaxPerSize); 0 leaves them unbounded. A fleet of
	// heterogeneous geometries keys one free list per distinct W×H, so a
	// cap is what keeps retained memory flat as sizes multiply.
	PoolCap int
	// MinCaptureQuality and RecalibrateEvery configure the receivers'
	// graceful-degradation decode (see core.ReceiverConfig).
	MinCaptureQuality float64
	RecalibrateEvery  int
	// Uncapped disables the nested-parallelism budget: every receiver's
	// inner stages resolve Workers=0 to GOMAXPROCS, reproducing the
	// oversubscribed fan-out the budget fixes. Decode output is
	// bit-identical either way (the regression test proves it); only
	// scheduling pressure differs. Benchmark knob, not a production mode.
	Uncapped bool
}

// DefaultConfig returns a fleet run over the standard experiment link: the
// layout's gray carrier at 120 Hz with instant pixel response, the default
// 30 FPS camera with no optical blur, and DefaultPopulation(seed, n) around
// the given capture geometry.
func DefaultConfig(l core.Layout, capW, capH, n int, seed int64) Config {
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0 // keep long renders in memory; see display docs
	ccfg := camera.DefaultConfig(capW, capH)
	ccfg.BlurRadius = 0
	return Config{
		Params:            core.DefaultParams(l),
		Display:           dcfg,
		Seconds:           1,
		StreamSeed:        seed,
		Camera:            ccfg,
		Pop:               DefaultPopulation(seed, n, capW, capH),
		MinCaptureQuality: 0.1,
		RecalibrateEvery:  10,
	}
}

// ReceiverResult is one fleet member's outcome.
type ReceiverResult struct {
	// Index and Profile identify the sampled spec.
	Index   int
	Profile string
	// CaptureW, CaptureH and Start echo the sampled camera geometry and
	// join offset.
	CaptureW, CaptureH int
	Start              float64
	// Captures is how many captures reached the decoder (after any
	// drop/duplicate impairments).
	Captures int
	// Avail is the available-GOB ratio over all data frames (gaps count
	// unavailable); BER is the confident-bit error rate over decided
	// Blocks, verified against the transmitted payload.
	Avail, BER float64
	// TTFD is the time from this receiver's start to the display-side end
	// of the first data frame it decoded any GOB of; +Inf when the
	// receiver never decoded (Decoded false).
	TTFD    float64
	Decoded bool
	// GapFrames and Resyncs echo the receiver's decode report.
	GapFrames int
	Resyncs   int
}

// Dist summarizes one per-receiver metric across the fleet. Percentiles are
// exact sort-then-index order statistics (metrics.Series.Percentile), not
// interpolations.
type Dist struct {
	Mean, P50, P95, P99 float64
}

func distOf(s *metrics.Series) Dist {
	return Dist{
		Mean: s.Mean(),
		P50:  s.Percentile(0.50),
		P95:  s.Percentile(0.95),
		P99:  s.Percentile(0.99),
	}
}

// Result aggregates a fleet run.
type Result struct {
	// N, DataFrames and DisplayFrames fix the run's scale.
	N             int
	DataFrames    int
	DisplayFrames int
	// Receivers holds every member's outcome, indexed by receiver.
	Receivers []ReceiverResult
	// Avail, BER and TTFD are the fleet distributions. TTFD summarizes
	// only receivers that decoded; NeverDecoded counts the rest.
	Avail, BER, TTFD Dist
	NeverDecoded     int
	// Degrade merges every receiver's degradation stats in index order.
	Degrade metrics.DegradationStats
	// Pool and PoolHighWater snapshot the shared frame pool after the
	// run. Gets/Puts/Evicted and the high-water are deterministic for a
	// fixed config at Workers=1; under concurrent receivers the Hit/Miss
	// split (and therefore the exact high-water) depends on interleaving,
	// while every decode output remains bit-identical.
	Pool          frame.PoolStats
	PoolHighWater frame.PoolHighWater
	// Render snapshots the transmitter's incremental-render counters for
	// the one shared render pass: how many Block delta rewrites, headroom
	// scans and video loads the caches avoided.
	Render core.RenderStats
}

// Run renders the transmission once and decodes it with every receiver in
// the population. Receiver outcomes are written to index-addressed slots
// and aggregated in index order, so the entire Result — distributions,
// merged degradation stats, every per-receiver row — is bit-identical at
// any worker count.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Pop.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("fleet: Seconds must be positive, got %v", cfg.Seconds)
	}
	nDisplay := int(cfg.Seconds * cfg.Display.RefreshHz)
	nData := nDisplay / cfg.Params.Tau
	if nData <= 0 {
		return nil, fmt.Errorf("fleet: %v s at %v Hz holds no complete data frame (tau %d)",
			cfg.Seconds, cfg.Display.RefreshHz, cfg.Params.Tau)
	}

	// One shared pool for render, every capture and every decode. The cap
	// (when set) bounds each size key's free list so the union of N
	// geometries cannot grow retained memory without bound.
	pool := frame.NewPool()
	if cfg.PoolCap > 0 {
		pool.SetMaxPerSize(cfg.PoolCap)
	}

	// Render the multiplexed stream exactly once. The display keeps the
	// full drive history and is safe for any number of concurrent
	// light-field readers, so N receivers capture from it directly.
	p := cfg.Params
	p.Pool = pool
	p.Workers = cfg.Workers
	stream := core.NewRandomStream(p.Layout, cfg.StreamSeed)
	src := cfg.Source
	if src == nil {
		src = video.Gray(p.Layout.FrameW, p.Layout.FrameH)
	}
	m, err := core.NewMultiplexer(p, src, stream)
	if err != nil {
		return nil, err
	}
	d, err := display.New(cfg.Display)
	if err != nil {
		return nil, err
	}
	if err := m.PushTo(d, nDisplay); err != nil {
		return nil, err
	}
	renderStats := m.RenderStats()
	// Materialize the oracle frames before the fan-out: RandomStream's
	// lazy cache is not safe for concurrent first touches, and every
	// receiver scores against the same nData frames.
	oracle := make([]*core.DataFrame, nData)
	for i := range oracle {
		oracle[i] = stream.DataFrame(i)
	}

	// The worker budget: receivers take min(Resolve(Workers), N) outer
	// slots and each receiver's capture/decode stages share the remainder,
	// so the fleet never runs more than one resolved budget of goroutines.
	// (Uncapped reproduces the pre-budget oversubscription for the
	// regression test and benchmark comparison.)
	n := cfg.Pop.N
	outer := parallel.Resolve(cfg.Workers)
	if outer > n {
		outer = n
	}
	inner := parallel.Split(cfg.Workers, outer)
	if cfg.Uncapped {
		inner = 0
	}

	recvs := make([]ReceiverResult, n)
	stats := make([]metrics.DegradationStats, n)
	errs := make([]error, n)
	parallel.For(cfg.Workers, n, func(i int) {
		recvs[i], stats[i], errs[i] = cfg.runReceiver(i, d, pool, oracle, inner)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: receiver %d: %w", i, err)
		}
	}

	// Aggregate strictly in receiver-index order: Merge's quality series
	// and the distributions' float sums are order-sensitive, and index
	// order is what makes the aggregate bit-identical at any worker count.
	res := &Result{
		N:             n,
		DataFrames:    nData,
		DisplayFrames: nDisplay,
		Receivers:     recvs,
	}
	var availS, berS, ttfdS metrics.Series
	for i := range recvs {
		res.Degrade.Merge(&stats[i])
		availS.Add(recvs[i].Avail)
		berS.Add(recvs[i].BER)
		if recvs[i].Decoded {
			ttfdS.Add(recvs[i].TTFD)
		} else {
			res.NeverDecoded++
		}
	}
	res.Avail = distOf(&availS)
	res.BER = distOf(&berS)
	res.TTFD = distOf(&ttfdS)
	res.Pool = pool.Stats()
	res.PoolHighWater = pool.HighWater()
	res.Render = renderStats
	return res, nil
}

// runReceiver captures and decodes one fleet member against the already
// rendered display. Everything it does is keyed by the receiver index: the
// sampled spec, the camera noise, the impairment streams. inner is this
// receiver's worker share from the fleet budget (0 = legacy uncapped).
func (cfg *Config) runReceiver(i int, d *display.Display, pool *frame.Pool, oracle []*core.DataFrame, inner int) (ReceiverResult, metrics.DegradationStats, error) {
	base := cfg.Camera
	base.Pool = pool
	base.Workers = 1 // rows stay sequential; parallelism lives at capture granularity
	spec := cfg.Pop.Spec(i, base)
	cam, err := camera.New(spec.Camera)
	if err != nil {
		return ReceiverResult{}, metrics.DegradationStats{}, err
	}

	// Capture-count arithmetic replicates channel.CaptureAll and
	// simulateImpaired exactly (same expressions, same float order), so a
	// fleet member decodes bit-identically to a standalone channel run
	// with the same spec.
	dur := d.Duration()
	period := cam.FramePeriod()
	exposureSpan := spec.Camera.Exposure + spec.Camera.ReadoutTime
	var st *impair.Stack
	if spec.Impair.Enabled() {
		if err := spec.Impair.Validate(); err != nil {
			return ReceiverResult{}, metrics.DegradationStats{}, err
		}
		st = impair.New(*spec.Impair)
		period = st.Period(period)
	}
	budget := dur - spec.Start - exposureSpan
	if st != nil {
		budget -= spec.Impair.StartJitter
	}
	nCaps := int(budget / period)

	// A receiver whose start offset leaves no room for a single capture
	// decodes an empty sequence: every data frame comes back an
	// all-CauseNoCapture erasure, never a panic.
	var caps []*frame.Frame
	var times []float64
	if nCaps > 0 {
		caps = make([]*frame.Frame, nCaps)
		times = make([]float64, nCaps)
		for j := range times {
			if st != nil {
				times[j] = st.CaptureTime(j, spec.Start, period)
			} else {
				times[j] = spec.Start + float64(j)*period
			}
		}
		parallel.For(inner, nCaps, func(j int) {
			f := cam.Capture(d, times[j], j)
			if st != nil {
				st.ApplyFrame(f, j, times[j], spec.Camera.Exposure)
			}
			caps[j] = f
		})
		if st != nil {
			caps, times = st.ApplySequence(caps, times, period, pool)
		}
	}

	rcfg := core.DefaultReceiverConfig(cfg.Params, spec.Camera.W, spec.Camera.H)
	rcfg.RefreshHz = cfg.Display.RefreshHz
	rcfg.Exposure = spec.Camera.Exposure
	rcfg.ReadoutTime = spec.Camera.ReadoutTime
	rcfg.Workers = inner
	rcfg.Pool = pool
	rcfg.MinCaptureQuality = cfg.MinCaptureQuality
	rcfg.RecalibrateEvery = cfg.RecalibrateEvery
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return ReceiverResult{}, metrics.DegradationStats{}, err
	}
	decoded, rep := rcv.DecodeCapturesReport(caps, times, spec.Camera.Exposure, len(oracle))
	// The captures' borrow ends with the decode; hand the buffers back so
	// the next receiver of this geometry reuses them.
	for _, f := range caps {
		pool.Put(f)
	}

	rr := ReceiverResult{
		Index:    i,
		Profile:  spec.Profile,
		CaptureW: spec.Camera.W,
		CaptureH: spec.Camera.H,
		Start:    spec.Start,
		Captures: len(caps),

		GapFrames: rep.GapFrames,
		Resyncs:   rep.Resyncs,
	}
	rr.Avail, rr.BER = score(decoded, oracle, cfg.Params.Layout)
	rr.TTFD, rr.Decoded = timeToFirstDecode(decoded, cfg.Params.Tau, cfg.Display.RefreshHz, spec.Start)
	var deg metrics.DegradationStats
	deg.AddReport(rep)
	return rr, deg, nil
}

// score tallies availability over all data frames (gap frames count as
// unavailable) and the confident-bit error rate of decided Blocks against
// the transmitted payload — the fleet-side twin of the robustness oracle.
func score(decoded []*core.FrameDecode, oracle []*core.DataFrame, l core.Layout) (avail, ber float64) {
	availGOBs, totalGOBs := 0, 0
	wrong, decided := 0, 0
	for d, fd := range decoded {
		totalGOBs += l.NumGOBs()
		availGOBs += fd.AvailableGOBs()
		want := oracle[d]
		for j, dec := range fd.Decided {
			if !dec {
				continue
			}
			decided++
			if fd.Bits.Bits[j] != want.Bits[j] {
				wrong++
			}
		}
	}
	if totalGOBs > 0 {
		avail = float64(availGOBs) / float64(totalGOBs)
	}
	if decided > 0 {
		ber = float64(wrong) / float64(decided)
	}
	return avail, ber
}

// timeToFirstDecode returns how long after its own start a receiver first
// delivered any GOB, measured to the display-side end of that data frame
// ((d+1)·τ/refresh). A receiver that never decodes reports +Inf, false.
func timeToFirstDecode(decoded []*core.FrameDecode, tau int, refreshHz, start float64) (float64, bool) {
	for d, fd := range decoded {
		if fd.AvailableGOBs() > 0 {
			end := float64((d+1)*tau) / refreshHz
			return end - start, true
		}
	}
	return math.Inf(1), false
}
