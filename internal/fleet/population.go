// Package fleet is the broadcast harness of the InFrame deployment story:
// one screen renders the 120 Hz multiplexed stream once, and a heterogeneous
// population of N receivers decodes it concurrently. The display is the
// paper's single transmitter; the fleet is the "humans and devices" audience
// — phones at different resolutions, free-running start offsets, and
// real-world channel impairments drawn from a seeded population model.
//
// Determinism contract (matching internal/impair and internal/parallel):
// every sampled receiver attribute is keyed by (population seed, stage,
// receiver index) through a splitmix64-style finalizer, never by worker
// identity or scheduling order, so a fleet run is bit-identical at any
// worker count. Aggregation walks receivers in index order — no map
// iteration feeds any ordered output.
package fleet

import (
	"fmt"
	"math/rand"
	"strings"

	"inframe/internal/camera"
	"inframe/internal/detrng"
	"inframe/internal/impair"
)

// Population is the seeded model receivers are drawn from. The zero value
// is not usable; fill every field or start from DefaultPopulation.
type Population struct {
	// Seed drives all population sampling. Two populations with equal
	// fields produce identical receiver specs, receiver by receiver.
	Seed int64
	// N is the fleet size.
	N int
	// Sizes lists the candidate capture geometries as {W, H} pairs; each
	// receiver samples one uniformly. Distinct sizes exercise the shared
	// frame pool's per-size free lists.
	Sizes [][2]int
	// StartMin and StartMax bound the uniform camera start offset in
	// seconds relative to the first displayed frame. Receivers join a
	// broadcast mid-stream; offsets beyond the rendered duration model a
	// camera that arrived after the transmission ended and must yield an
	// all-erasure report, not a panic.
	StartMin, StartMax float64
	// ExposureJitter is the half-width of the relative exposure
	// perturbation: each receiver's exposure is the base camera's times
	// 1 ± U(0, ExposureJitter). Must stay below 1.
	ExposureJitter float64
	// NoiseMin and NoiseMax bound the uniform per-receiver sensor read
	// noise (8-bit levels).
	NoiseMin, NoiseMax float64
	// CleanFrac is the fraction of receivers with an unimpaired channel;
	// the rest sample one of Profiles uniformly.
	CleanFrac float64
	// Profiles are the impairment templates impaired receivers draw from.
	// The template's Seed is replaced per receiver, so two receivers with
	// the same profile still see independent fault streams.
	Profiles []impair.Config
}

// DefaultPopulation models a plausible broadcast audience around a base
// capture geometry: full, 3/4 and 1/2 resolution sensors, sub-150 ms join
// offsets, mild exposure and noise spread, and a 40% clean / 60% impaired
// split over single-fault profiles (drift, mains flicker, capture loss,
// gain hunting plus ambient ramp, partial occlusion).
func DefaultPopulation(seed int64, n, capW, capH int) Population {
	return Population{
		Seed: seed,
		N:    n,
		Sizes: [][2]int{
			{capW, capH},
			{3 * capW / 4, 3 * capH / 4},
			{capW / 2, capH / 2},
		},
		StartMax:       0.15,
		ExposureJitter: 0.15,
		NoiseMin:       1.5,
		NoiseMax:       3.5,
		CleanFrac:      0.4,
		Profiles: []impair.Config{
			{ClockDriftPPM: 300},
			{FlickerAmp: 3, FlickerHz: 100},
			{DropRate: 0.1},
			{GainAmp: 0.02, GainHz: 0.7, AmbientRamp: 6},
			{OccludeX: 0.1, OccludeY: 0.1, OccludeW: 0.2, OccludeH: 0.2, OccludeLevel: 30},
		},
	}
}

// Validate reports whether the population is usable.
func (p *Population) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("fleet: population N must be positive, got %d", p.N)
	}
	if len(p.Sizes) == 0 {
		return fmt.Errorf("fleet: population needs at least one capture size")
	}
	for i, sz := range p.Sizes {
		if sz[0] <= 0 || sz[1] <= 0 {
			return fmt.Errorf("fleet: population size %d is %dx%d", i, sz[0], sz[1])
		}
	}
	if p.StartMin < 0 || p.StartMax < p.StartMin {
		return fmt.Errorf("fleet: start offsets need 0 <= StartMin <= StartMax, got [%v, %v]",
			p.StartMin, p.StartMax)
	}
	if p.ExposureJitter < 0 || p.ExposureJitter >= 1 {
		return fmt.Errorf("fleet: ExposureJitter must be in [0,1), got %v", p.ExposureJitter)
	}
	if p.NoiseMin < 0 || p.NoiseMax < p.NoiseMin {
		return fmt.Errorf("fleet: noise range needs 0 <= NoiseMin <= NoiseMax, got [%v, %v]",
			p.NoiseMin, p.NoiseMax)
	}
	if p.CleanFrac < 0 || p.CleanFrac > 1 {
		return fmt.Errorf("fleet: CleanFrac must be in [0,1], got %v", p.CleanFrac)
	}
	if p.CleanFrac < 1 && len(p.Profiles) == 0 {
		return fmt.Errorf("fleet: CleanFrac %v < 1 needs impairment profiles", p.CleanFrac)
	}
	for i := range p.Profiles {
		if err := p.Profiles[i].Validate(); err != nil {
			return fmt.Errorf("fleet: profile %d: %w", i, err)
		}
	}
	return nil
}

// Population sampling stages key the per-attribute random streams; they
// live in the frozen registry (internal/detrng, fleet domain), exactly
// like internal/impair's: adding, removing or toggling one sampled
// attribute never shifts another attribute's stream, and the stagekey
// analyzer rejects derivations that do not key off a registry constant.

// rng returns the random stream of one (stage, receiver index) cell via
// the shared splitmix64 finalizer (detrng.Mix), the same mix impair.Stack
// uses, so adjacent receivers land far apart in seed space.
func (p *Population) rng(stage detrng.Stage, index int) *rand.Rand {
	return detrng.Rand(p.Seed, stage, index)
}

// ReceiverSpec is one sampled fleet member: a concrete camera, a start
// offset, and an optional impairment stack.
type ReceiverSpec struct {
	// Index is the receiver's position in the population, the key of
	// every random stream that shaped it.
	Index int
	// Camera is the fully resolved capture configuration.
	Camera camera.Config
	// Start is the camera start offset in seconds (channel.Config.CameraStart).
	Start float64
	// Impair is the receiver's fault stack; nil for a clean channel.
	Impair *impair.Config
	// Profile names the impairment stack ("clean", or the '+'-joined
	// stage names) for cohort reporting.
	Profile string
}

// Spec samples receiver i. base supplies everything the population does not
// model (FPS, gamma, readout, pool, workers); geometry, exposure, noise and
// the noise seed are overridden from the seeded streams. Spec is pure: the
// same (population, i, base) always returns the same spec, and sampling
// receiver i never consumes receiver j's stream.
func (p *Population) Spec(i int, base camera.Config) ReceiverSpec {
	cam := base
	sz := p.Sizes[p.rng(detrng.FleetSize, i).Intn(len(p.Sizes))]
	cam.W, cam.H = sz[0], sz[1]
	if p.ExposureJitter > 0 {
		cam.Exposure = base.Exposure * (1 + p.ExposureJitter*(2*p.rng(detrng.FleetExposure, i).Float64()-1))
	}
	cam.NoiseSigma = p.NoiseMin + (p.NoiseMax-p.NoiseMin)*p.rng(detrng.FleetNoise, i).Float64()
	cam.Seed = p.rng(detrng.FleetCamSeed, i).Int63()
	start := p.StartMin + (p.StartMax-p.StartMin)*p.rng(detrng.FleetStart, i).Float64()

	spec := ReceiverSpec{Index: i, Camera: cam, Start: start, Profile: "clean"}
	prng := p.rng(detrng.FleetProfile, i)
	if prng.Float64() >= p.CleanFrac && len(p.Profiles) > 0 {
		cfg := p.Profiles[prng.Intn(len(p.Profiles))]
		cfg.Seed = p.rng(detrng.FleetImpairSeed, i).Int63()
		spec.Impair = &cfg
		if names := impair.New(cfg).Names(); len(names) > 0 {
			spec.Profile = strings.Join(names, "+")
		}
	}
	return spec
}
