// Package parity implements the XOR-based parity checking the InFrame
// prototype applies per Group of Blocks (§3.3): a GOB is formed from 2×2
// neighbouring Blocks, the fourth Block carrying the XOR of the other three.
package parity

import "fmt"

// Encode returns data with one appended parity bit equal to the XOR of all
// data bits, so the full group XORs to false.
func Encode(data []bool) []bool {
	out := make([]bool, len(data)+1)
	copy(out, data)
	var p bool
	for _, b := range data {
		p = p != b
	}
	out[len(data)] = p
	return out
}

// Check reports whether a full group (data bits plus trailing parity bit)
// satisfies the parity relation. Groups of fewer than 2 bits are invalid.
func Check(group []bool) bool {
	if len(group) < 2 {
		return false
	}
	var p bool
	for _, b := range group {
		p = p != b
	}
	return !p
}

// Data returns the data portion of a checked group (everything but the
// trailing parity bit). It panics on an empty group.
func Data(group []bool) []bool {
	if len(group) == 0 {
		panic("parity: empty group")
	}
	return group[:len(group)-1]
}

// GroupSize is the number of Blocks per GOB in the paper's prototype
// (2×2 = 4: three data Blocks and one parity Block).
const GroupSize = 4

// DataBitsPerGOB is the number of data bits carried per GOB.
const DataBitsPerGOB = GroupSize - 1

// EncodeFrameBits expands a stream of data bits into GOB-coded frame bits:
// every 3 data bits become 4 frame bits. len(data) must be a multiple of 3.
func EncodeFrameBits(data []bool) ([]bool, error) {
	if len(data)%DataBitsPerGOB != 0 {
		return nil, fmt.Errorf("parity: data length %d not a multiple of %d", len(data), DataBitsPerGOB)
	}
	out := make([]bool, 0, len(data)/DataBitsPerGOB*GroupSize)
	for i := 0; i < len(data); i += DataBitsPerGOB {
		out = append(out, Encode(data[i:i+DataBitsPerGOB])...)
	}
	return out, nil
}

// DecodeFrameBits splits GOB-coded frame bits back into data bits and
// reports, per GOB, whether the parity check passed. len(coded) must be a
// multiple of GroupSize.
func DecodeFrameBits(coded []bool) (data []bool, ok []bool, err error) {
	if len(coded)%GroupSize != 0 {
		return nil, nil, fmt.Errorf("parity: coded length %d not a multiple of %d", len(coded), GroupSize)
	}
	n := len(coded) / GroupSize
	data = make([]bool, 0, n*DataBitsPerGOB)
	ok = make([]bool, n)
	for g := 0; g < n; g++ {
		grp := coded[g*GroupSize : (g+1)*GroupSize]
		ok[g] = Check(grp)
		data = append(data, Data(grp)...)
	}
	return data, ok, nil
}
