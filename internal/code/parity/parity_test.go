package parity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeCheckRoundTrip(t *testing.T) {
	prop := func(b0, b1, b2 bool) bool {
		g := Encode([]bool{b0, b1, b2})
		return len(g) == 4 && Check(g)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		data := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
		g := Encode(data)
		pos := rng.Intn(4)
		g[pos] = !g[pos]
		if Check(g) {
			t.Fatalf("flip at %d undetected", pos)
		}
	}
}

func TestDoubleBitFlipUndetected(t *testing.T) {
	// XOR parity cannot see even numbers of flips; document the limitation.
	g := Encode([]bool{true, false, true})
	g[0] = !g[0]
	g[1] = !g[1]
	if !Check(g) {
		t.Fatal("double flip unexpectedly detected — not XOR parity?")
	}
}

func TestCheckShortGroups(t *testing.T) {
	if Check(nil) || Check([]bool{true}) {
		t.Fatal("short groups must fail Check")
	}
}

func TestData(t *testing.T) {
	g := Encode([]bool{true, true, false})
	d := Data(g)
	if len(d) != 3 || !d[0] || !d[1] || d[2] {
		t.Fatalf("Data = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Data(empty) did not panic")
		}
	}()
	Data(nil)
}

func TestEncodeFrameBits(t *testing.T) {
	data := []bool{true, false, true, false, false, true}
	coded, err := EncodeFrameBits(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(coded) != 8 {
		t.Fatalf("coded length %d, want 8", len(coded))
	}
	back, ok, err := DecodeFrameBits(coded)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 6 || len(ok) != 2 {
		t.Fatalf("decode shapes: %d data, %d gobs", len(back), len(ok))
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	for g, o := range ok {
		if !o {
			t.Fatalf("clean GOB %d failed parity", g)
		}
	}
}

func TestEncodeFrameBitsLength(t *testing.T) {
	if _, err := EncodeFrameBits(make([]bool, 4)); err == nil {
		t.Fatal("accepted non-multiple-of-3 data")
	}
	if _, _, err := DecodeFrameBits(make([]bool, 6)); err == nil {
		t.Fatal("accepted non-multiple-of-4 coded bits")
	}
}

func TestDecodeFlagsBadGOB(t *testing.T) {
	data := []bool{true, false, true, false, false, true}
	coded, _ := EncodeFrameBits(data)
	coded[5] = !coded[5] // corrupt second GOB
	_, ok, err := DecodeFrameBits(coded)
	if err != nil {
		t.Fatal(err)
	}
	if !ok[0] || ok[1] {
		t.Fatalf("ok = %v, want [true false]", ok)
	}
}
