// Package gf256 implements arithmetic over GF(2⁸) with the primitive
// polynomial x⁸+x⁴+x³+x²+1 (0x11d), the field used by the Reed–Solomon
// codes the paper applies to Groups of Blocks (§3.3).
package gf256

// poly is the primitive reduction polynomial (0x11d) without the x⁸ term.
const poly = 0x1d

var (
	expTable [512]byte // generator powers, doubled to avoid mod 255 in Mul
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// Multiply by the generator α = 2.
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a+b in GF(2⁸) (XOR; identical to Sub).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b in GF(2⁸).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Exp returns α^e for the generator α = 2; e may be any integer.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return expTable[e]
}

// Log returns log_α(a). It panics for a = 0, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Inv returns the multiplicative inverse of a. It panics for a = 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Div returns a/b. It panics for b = 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// PolyEval evaluates the polynomial p (coefficients in descending degree
// order, p[0] the highest) at x using Horner's rule.
func PolyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = Mul(y, x) ^ c
	}
	return y
}

// PolyMul multiplies two polynomials (descending degree order).
func PolyMul(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// PolyScale multiplies every coefficient of p by k.
func PolyScale(p []byte, k byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[i] = Mul(c, k)
	}
	return out
}

// PolyAdd adds two polynomials (descending degree order), aligning their
// low-order ends.
func PolyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out[n-len(a):], a)
	for i, c := range b {
		out[n-len(b)+i] ^= c
	}
	return out
}
