package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xca) != 0x53^0xca {
		t.Fatal("Add is not XOR")
	}
	if Add(7, 7) != 0 {
		t.Fatal("a+a != 0")
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("%d*1 != %d", a, a)
		}
		if Mul(byte(a), 0) != 0 || Mul(0, byte(a)) != 0 {
			t.Fatalf("%d*0 != 0", a)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Standard 0x11d field test vectors.
	cases := []struct{ a, b, want byte }{
		{2, 2, 4},
		{0x80, 2, 0x1d},
		{0x53, 2, 0xa6}, // doubling without reduction (MSB clear)
		{3, 7, 9},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Fatal(err)
	}
	assoc := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	prop := func(a, b, c byte) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a*Inv(a) != 1 for a=%d", a)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
	if Div(0, 5) != 0 {
		t.Fatal("0/5 != 0")
	}
}

func TestInvZeroPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Inv(0)":   func() { Inv(0) },
		"Div(1,0)": func() { Div(1, 0) },
		"Log(0)":   func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp not periodic with 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("Exp of negative exponent wrong")
	}
}

func TestExpCoversField(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator orbit covers %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Fatal("generator orbit contains 0")
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = x² + 3x + 2 at x=1 → 1^3^2 = 0.
	p := []byte{1, 3, 2}
	if got := PolyEval(p, 1); got != 0 {
		t.Fatalf("PolyEval = %d, want 0", got)
	}
	if got := PolyEval(p, 0); got != 2 {
		t.Fatalf("PolyEval at 0 = %d, want constant term 2", got)
	}
	if got := PolyEval(nil, 7); got != 0 {
		t.Fatalf("PolyEval(nil) = %d, want 0", got)
	}
}

func TestPolyMul(t *testing.T) {
	// (x+1)(x+2) = x² + 3x + 2 over GF(2⁸).
	got := PolyMul([]byte{1, 1}, []byte{1, 2})
	want := []byte{1, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coef %d = %d, want %d", i, got[i], want[i])
		}
	}
	if PolyMul(nil, []byte{1}) != nil {
		t.Fatal("PolyMul with empty operand should be nil")
	}
}

func TestPolyMulEvalHomomorphism(t *testing.T) {
	prop := func(a0, a1, b0, b1, x byte) bool {
		a := []byte{a0, a1}
		b := []byte{b0, b1}
		return PolyEval(PolyMul(a, b), x) == Mul(PolyEval(a, x), PolyEval(b, x))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolyScaleAdd(t *testing.T) {
	p := []byte{1, 2, 3}
	s := PolyScale(p, 2)
	if s[0] != 2 || s[1] != 4 || s[2] != 6 {
		t.Fatalf("PolyScale = %v", s)
	}
	sum := PolyAdd([]byte{1, 2}, []byte{1, 0, 0})
	// x+2 aligned under x²: x² + x + 2.
	if len(sum) != 3 || sum[0] != 1 || sum[1] != 1 || sum[2] != 2 {
		t.Fatalf("PolyAdd = %v", sum)
	}
}
