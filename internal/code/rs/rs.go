// Package rs implements systematic Reed–Solomon codes over GF(2⁸), the
// "common error correction code such as RS code" the paper applies within
// Groups of Blocks (§3.3). The decoder handles both errors (unknown
// locations, via Berlekamp–Massey + Chien search + Forney) and erasures
// (locations known from undecodable Blocks), up to the usual bound
// 2·errors + erasures ≤ n − k.
package rs

import (
	"errors"
	"fmt"

	"inframe/internal/code/gf256"
)

// Code is a systematic RS(n, k) code: k data bytes, n−k parity bytes.
type Code struct {
	n, k int
	gen  []byte // generator polynomial, descending degree, monic
}

// ErrTooManyErrors is returned when the received word is corrupted beyond
// the code's correction capability.
var ErrTooManyErrors = errors.New("rs: too many errors to correct")

// New constructs an RS(n, k) code. n must be at most 255 and greater than k.
func New(n, k int) (*Code, error) {
	if n <= 0 || n > 255 {
		return nil, fmt.Errorf("rs: n must be in [1,255], got %d", n)
	}
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("rs: k must be in [1,n), got k=%d n=%d", k, n)
	}
	// g(x) = Π_{i=0}^{n-k-1} (x − α^i)
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = gf256.PolyMul(gen, []byte{1, gf256.Exp(i)})
	}
	return &Code{n: n, k: k, gen: gen}, nil
}

// N returns the codeword length.
func (c *Code) N() int { return c.n }

// K returns the data length.
func (c *Code) K() int { return c.k }

// Parity returns the number of parity symbols n−k.
func (c *Code) Parity() int { return c.n - c.k }

// Encode appends n−k parity bytes to the k data bytes and returns the
// systematic codeword of length n.
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: data length %d, want %d", len(data), c.k)
	}
	out := make([]byte, c.n)
	copy(out, data)
	// Polynomial long division of data·x^(n−k) by the generator; the
	// remainder is the parity.
	rem := make([]byte, c.n)
	copy(rem, data)
	for i := 0; i < c.k; i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		for j, g := range c.gen {
			rem[i+j] ^= gf256.Mul(g, coef)
		}
	}
	copy(out[c.k:], rem[c.k:])
	return out, nil
}

// syndromes returns the n−k syndromes of the received word, and whether all
// of them are zero (no detectable corruption).
func (c *Code) syndromes(recv []byte) ([]byte, bool) {
	syn := make([]byte, c.n-c.k)
	clean := true
	for i := range syn {
		s := gf256.PolyEval(recv, gf256.Exp(i))
		syn[i] = s
		if s != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Decode corrects the received codeword in place and returns the k data
// bytes. erasures lists known-bad positions (0-based, position 0 is the
// first data byte); pass nil when no erasure information is available.
func (c *Code) Decode(recv []byte, erasures []int) ([]byte, error) {
	if len(recv) != c.n {
		return nil, fmt.Errorf("rs: received length %d, want %d", len(recv), c.n)
	}
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range", e)
		}
	}
	if len(erasures) > c.Parity() {
		return nil, ErrTooManyErrors
	}
	word := make([]byte, c.n)
	copy(word, recv)

	syn, clean := c.syndromes(word)
	if clean {
		return word[:c.k], nil
	}

	// Erasure locator Γ(x) = Π (1 + X_j·x), X_j = α^{position exponent}.
	// Locator polynomials are kept in ascending coefficient order (index 0
	// is the constant term); PolyMul is a plain convolution, so it applies
	// unchanged as long as both operands use the same orientation.
	gamma := []byte{1}
	for _, e := range erasures {
		x := gf256.Exp(c.n - 1 - e)
		gamma = gf256.PolyMul(gamma, []byte{1, x})
	}

	// Modified syndromes: Ξ(x) = Γ(x)·S(x) mod x^{n−k}, with S ascending.
	xi := polyMulMod(gamma, syn, c.Parity())

	// Berlekamp–Massey for the error locator Λ(x) (ascending), on the
	// modified syndromes, with the erasure count already consumed.
	rho := len(erasures)
	lambda := bmLocator(xi, c.Parity(), rho)
	if lambda == nil {
		return nil, ErrTooManyErrors
	}

	// Combined locator Ψ(x) = Λ(x)·Γ(x).
	psi := gf256.PolyMul(lambda, gamma) // ascending·ascending = ascending
	psi = trimAsc(psi)

	// Chien search over all positions.
	positions := chien(psi, c.n)
	if len(positions) != degAsc(psi) {
		return nil, ErrTooManyErrors
	}

	// Forney: error magnitudes from the evaluator Ω(x) = Ψ(x)·S(x) mod
	// x^{n−k} (ascending).
	omega := polyMulMod(psi, syn, c.Parity())
	psiDeriv := formalDerivAsc(psi)
	for _, pos := range positions {
		x := gf256.Exp(c.n - 1 - pos)
		xInv := gf256.Inv(x)
		num := evalAsc(omega, xInv)
		den := evalAsc(psiDeriv, xInv)
		if den == 0 {
			return nil, ErrTooManyErrors
		}
		// b = 0 syndrome convention: e_j = X_j·Ω(X_j⁻¹)/Ψ′(X_j⁻¹).
		mag := gf256.Mul(x, gf256.Div(num, den))
		word[pos] ^= mag
	}

	// Verify the corrected word.
	if _, ok := c.syndromes(word); !ok {
		return nil, ErrTooManyErrors
	}
	return word[:c.k], nil
}

// polyMulMod multiplies two ascending-order polynomials modulo x^m.
func polyMulMod(a, b []byte, m int) []byte {
	out := make([]byte, m)
	for i, ca := range a {
		if ca == 0 || i >= m {
			continue
		}
		for j, cb := range b {
			if i+j >= m {
				break
			}
			out[i+j] ^= gf256.Mul(ca, cb)
		}
	}
	return out
}

// bmLocator runs Berlekamp–Massey on the (modified) syndromes, returning
// the ascending-order error locator, or nil if the error count exceeds the
// remaining capacity (parity − erasures)/2.
func bmLocator(syn []byte, parity, erasures int) []byte {
	lambda := []byte{1}
	b := []byte{1}
	var l int
	m := 1
	bb := byte(1)
	for n := erasures; n < parity; n++ {
		// Discrepancy.
		var d byte
		for i := 0; i <= l; i++ {
			if i < len(lambda) && n-i >= 0 && n-i < len(syn) {
				d ^= gf256.Mul(lambda[i], syn[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n-erasures {
			tmp := make([]byte, len(lambda))
			copy(tmp, lambda)
			lambda = polySubShift(lambda, b, gf256.Div(d, bb), m)
			l = n - erasures + 1 - l
			b = tmp
			bb = d
			m = 1
		} else {
			lambda = polySubShift(lambda, b, gf256.Div(d, bb), m)
			m++
		}
	}
	if 2*l > parity-erasures {
		return nil
	}
	return trimAsc(lambda)
}

// polySubShift computes lambda − coef·x^shift·b for ascending polynomials.
func polySubShift(lambda, b []byte, coef byte, shift int) []byte {
	n := len(lambda)
	if len(b)+shift > n {
		n = len(b) + shift
	}
	out := make([]byte, n)
	copy(out, lambda)
	for i, c := range b {
		out[i+shift] ^= gf256.Mul(c, coef)
	}
	return out
}

// chien finds codeword positions whose locator evaluates to zero.
func chien(psi []byte, n int) []int {
	var out []int
	for pos := 0; pos < n; pos++ {
		xInv := gf256.Exp(-(n - 1 - pos))
		if evalAsc(psi, xInv) == 0 {
			out = append(out, pos)
		}
	}
	return out
}

// evalAsc evaluates an ascending-order polynomial at x.
func evalAsc(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gf256.Mul(y, x) ^ p[i]
	}
	return y
}

// formalDerivAsc returns the formal derivative of an ascending polynomial;
// over GF(2⁸) even-power terms vanish.
func formalDerivAsc(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i++ {
		if i%2 == 1 {
			out[i-1] = p[i]
		}
	}
	return out
}

// trimAsc removes trailing zero coefficients of an ascending polynomial.
func trimAsc(p []byte) []byte {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// degAsc returns the degree of an ascending polynomial.
func degAsc(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return 0
}
