package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func mustCode(t *testing.T, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, p := range [][2]int{{0, 0}, {256, 200}, {10, 10}, {10, 0}, {10, 12}} {
		if _, err := New(p[0], p[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", p[0], p[1])
		}
	}
	c := mustCode(t, 15, 11)
	if c.N() != 15 || c.K() != 11 || c.Parity() != 4 {
		t.Fatalf("accessors: %d %d %d", c.N(), c.K(), c.Parity())
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := mustCode(t, 15, 11)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	cw, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 15 {
		t.Fatalf("codeword length %d", len(cw))
	}
	if !bytes.Equal(cw[:11], data) {
		t.Fatal("code is not systematic")
	}
}

func TestEncodeLengthCheck(t *testing.T) {
	c := mustCode(t, 15, 11)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Fatal("Encode accepted short data")
	}
}

func TestDecodeClean(t *testing.T) {
	c := mustCode(t, 15, 11)
	data := []byte("hello world")
	cw, _ := c.Encode(data)
	got, err := c.Decode(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("clean decode = %q, want %q", got, data)
	}
}

func TestDecodeLengthCheck(t *testing.T) {
	c := mustCode(t, 15, 11)
	if _, err := c.Decode(make([]byte, 14), nil); err == nil {
		t.Fatal("Decode accepted short word")
	}
	if _, err := c.Decode(make([]byte, 15), []int{15}); err == nil {
		t.Fatal("Decode accepted out-of-range erasure")
	}
}

func TestCorrectSingleErrorAllPositions(t *testing.T) {
	c := mustCode(t, 15, 11)
	data := []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255}
	cw, _ := c.Encode(data)
	for pos := 0; pos < 15; pos++ {
		corrupted := append([]byte(nil), cw...)
		corrupted[pos] ^= 0x5a
		got, err := c.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong data", pos)
		}
	}
}

func TestCorrectTwoErrors(t *testing.T) {
	c := mustCode(t, 15, 11) // t = 2
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 11)
	for trial := 0; trial < 200; trial++ {
		rng.Read(data)
		cw, _ := c.Encode(data)
		corrupted := append([]byte(nil), cw...)
		p1 := rng.Intn(15)
		p2 := (p1 + 1 + rng.Intn(14)) % 15
		corrupted[p1] ^= byte(1 + rng.Intn(255))
		corrupted[p2] ^= byte(1 + rng.Intn(255))
		got, err := c.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestThreeErrorsDetected(t *testing.T) {
	c := mustCode(t, 15, 11)
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 11)
	detected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		rng.Read(data)
		cw, _ := c.Encode(data)
		corrupted := append([]byte(nil), cw...)
		perm := rng.Perm(15)[:3]
		for _, p := range perm {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := c.Decode(corrupted, nil)
		if err != nil {
			detected++
			continue
		}
		// Miscorrection to some other codeword is allowed by the distance
		// bound, but the result must not silently equal the original while
		// claiming 3 corrections happened elsewhere — just count it.
		if bytes.Equal(got, data) {
			t.Fatalf("trial %d: 3 errors silently reverted to original data", trial)
		}
	}
	if detected < trials*3/4 {
		t.Fatalf("only %d/%d triple errors detected", detected, trials)
	}
}

func TestErasuresOnlyUpToParity(t *testing.T) {
	c := mustCode(t, 15, 11) // 4 parity → 4 erasures correctable
	data := []byte("RS-erasures")
	cw, _ := c.Encode(data)
	corrupted := append([]byte(nil), cw...)
	erasures := []int{0, 5, 11, 14}
	for _, e := range erasures {
		corrupted[e] = 0
	}
	got, err := c.Decode(corrupted, erasures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("erasure decode = %q, want %q", got, data)
	}
}

func TestErasurePlusError(t *testing.T) {
	c := mustCode(t, 15, 11) // 2·1 + 2 = 4 ≤ parity
	rng := rand.New(rand.NewSource(13))
	data := make([]byte, 11)
	for trial := 0; trial < 100; trial++ {
		rng.Read(data)
		cw, _ := c.Encode(data)
		corrupted := append([]byte(nil), cw...)
		perm := rng.Perm(15)
		e1, e2, errPos := perm[0], perm[1], perm[2]
		corrupted[e1] = byte(rng.Intn(256))
		corrupted[e2] = byte(rng.Intn(256))
		corrupted[errPos] ^= byte(1 + rng.Intn(255))
		got, err := c.Decode(corrupted, []int{e1, e2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestTooManyErasures(t *testing.T) {
	c := mustCode(t, 15, 11)
	cw, _ := c.Encode(make([]byte, 11))
	if _, err := c.Decode(cw, []int{0, 1, 2, 3, 4}); !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("err = %v, want ErrTooManyErrors", err)
	}
}

func TestErasedPositionContentIrrelevant(t *testing.T) {
	// An erased position's received value must not affect the result.
	c := mustCode(t, 15, 11)
	data := []byte("indifferent")
	cw, _ := c.Encode(data)
	for v := 0; v < 256; v += 17 {
		corrupted := append([]byte(nil), cw...)
		corrupted[7] = byte(v)
		got, err := c.Decode(corrupted, []int{7})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("v=%d: wrong data", v)
		}
	}
}

func TestLargerCode(t *testing.T) {
	c := mustCode(t, 255, 223) // the classic CCSDS shape, t = 16
	rng := rand.New(rand.NewSource(77))
	data := make([]byte, 223)
	rng.Read(data)
	cw, _ := c.Encode(data)
	corrupted := append([]byte(nil), cw...)
	for _, p := range rng.Perm(255)[:16] {
		corrupted[p] ^= byte(1 + rng.Intn(255))
	}
	got, err := c.Decode(corrupted, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RS(255,223) failed at full correction capacity")
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	c := mustCode(t, 15, 11)
	cw, _ := c.Encode([]byte("hello world"))
	corrupted := append([]byte(nil), cw...)
	corrupted[3] ^= 0xff
	snapshot := append([]byte(nil), corrupted...)
	if _, err := c.Decode(corrupted, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corrupted, snapshot) {
		t.Fatal("Decode mutated its input")
	}
}

func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 150; trial++ {
		n := 8 + rng.Intn(60)
		k := 1 + rng.Intn(n-1)
		c := mustCode(t, n, k)
		data := make([]byte, k)
		rng.Read(data)
		cw, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt within capacity: e errors + r erasures, 2e+r ≤ n−k.
		parity := n - k
		e := rng.Intn(parity/2 + 1)
		r := rng.Intn(parity - 2*e + 1)
		perm := rng.Perm(n)
		corrupted := append([]byte(nil), cw...)
		var erasures []int
		for i := 0; i < e; i++ {
			corrupted[perm[i]] ^= byte(1 + rng.Intn(255))
		}
		for i := e; i < e+r; i++ {
			corrupted[perm[i]] = byte(rng.Intn(256))
			erasures = append(erasures, perm[i])
		}
		got, err := c.Decode(corrupted, erasures)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d e=%d r=%d): %v", trial, n, k, e, r, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d (n=%d k=%d e=%d r=%d): wrong data", trial, n, k, e, r)
		}
	}
}
