package display

import (
	"math"
	"testing"

	"inframe/internal/frame"
)

func mustNew(t *testing.T, cfg Config) *Display {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func idealConfig() Config {
	c := DefaultConfig()
	c.ResponseTime = 0
	c.Gamma = 1
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{RefreshHz: 0, Brightness: 1, Gamma: 2.2},
		{RefreshHz: 120, Brightness: 0, Gamma: 2.2},
		{RefreshHz: 120, Brightness: 1.5, Gamma: 2.2},
		{RefreshHz: 120, Brightness: 1, Gamma: 0},
		{RefreshHz: 120, Brightness: 1, Gamma: 2.2, ResponseTime: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestPushSizeEnforcement(t *testing.T) {
	d := mustNew(t, idealConfig())
	if err := d.Push(frame.NewFilled(8, 4, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(frame.NewFilled(4, 4, 100)); err == nil {
		t.Fatal("Push accepted mismatched frame size")
	}
	if w, h := d.Size(); w != 8 || h != 4 {
		t.Fatalf("Size = %dx%d, want 8x4", w, h)
	}
}

func TestDurationAccounting(t *testing.T) {
	d := mustNew(t, idealConfig())
	for i := 0; i < 12; i++ {
		if err := d.Push(frame.NewFilled(4, 4, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumFrames() != 12 {
		t.Fatalf("NumFrames = %d", d.NumFrames())
	}
	if math.Abs(d.Duration()-0.1) > 1e-12 {
		t.Fatalf("Duration = %v, want 0.1", d.Duration())
	}
	if math.Abs(d.FrameDuration()-1.0/120) > 1e-15 {
		t.Fatalf("FrameDuration = %v", d.FrameDuration())
	}
}

func TestGammaMapsDriveToLuminance(t *testing.T) {
	cfg := idealConfig()
	cfg.Gamma = 2.2
	d := mustNew(t, cfg)
	if err := d.Push(frame.NewFilled(2, 2, 127)); err != nil {
		t.Fatal(err)
	}
	want := 255 * math.Pow(127.0/255, 2.2)
	got := float64(d.Luminance(0).At(0, 0))
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("luminance = %v, want %v", got, want)
	}
	// Drive 255 → peak.
	d2 := mustNew(t, cfg)
	d2.Push(frame.NewFilled(1, 1, 255))
	if v := d2.Luminance(0).At(0, 0); math.Abs(float64(v)-255) > 1e-3 {
		t.Fatalf("peak luminance = %v, want 255", v)
	}
}

func TestBrightnessScales(t *testing.T) {
	cfg := idealConfig()
	cfg.Brightness = 0.5
	d := mustNew(t, cfg)
	d.Push(frame.NewFilled(1, 1, 255))
	if v := d.Luminance(0).At(0, 0); math.Abs(float64(v)-127.5) > 1e-3 {
		t.Fatalf("half-brightness peak = %v, want 127.5", v)
	}
}

func TestPushClampsAndQuantizes(t *testing.T) {
	d := mustNew(t, idealConfig())
	f := frame.New(3, 1)
	f.Pix[0], f.Pix[1], f.Pix[2] = -40, 300, 99.7
	d.Push(f)
	l := d.Luminance(0)
	if l.Pix[0] != 0 || l.Pix[1] != 255 || l.Pix[2] != 100 {
		t.Fatalf("clamp/quantize: got %v", l.Pix[:3])
	}
}

func TestWindowAverageSingleFrame(t *testing.T) {
	d := mustNew(t, idealConfig())
	d.Push(frame.NewFilled(4, 4, 80))
	avg := d.WindowAverage(0, d.FrameDuration())
	if math.Abs(float64(avg.At(2, 2))-80) > 1e-4 {
		t.Fatalf("single-frame average = %v, want 80", avg.At(2, 2))
	}
}

func TestWindowAverageSpansFrames(t *testing.T) {
	d := mustNew(t, idealConfig())
	d.Push(frame.NewFilled(2, 2, 100))
	d.Push(frame.NewFilled(2, 2, 200))
	T := d.FrameDuration()
	avg := d.WindowAverage(0, 2*T)
	if math.Abs(float64(avg.At(0, 0))-150) > 1e-4 {
		t.Fatalf("two-frame average = %v, want 150", avg.At(0, 0))
	}
	// 75/25 split.
	avg2 := d.WindowAverage(0.5*T, T+0.5*T+1e-12)
	if math.Abs(float64(avg2.At(0, 0))-150) > 1e-3 {
		t.Fatalf("half-offset average = %v, want 150", avg2.At(0, 0))
	}
	avg3 := d.WindowAverage(0, 0.5*T)
	if math.Abs(float64(avg3.At(0, 0))-100) > 1e-4 {
		t.Fatalf("first-half average = %v, want 100", avg3.At(0, 0))
	}
}

func TestWindowAverageHoldsBeyondEnds(t *testing.T) {
	d := mustNew(t, idealConfig())
	d.Push(frame.NewFilled(2, 2, 60))
	T := d.FrameDuration()
	before := d.WindowAverage(-5*T, -4*T)
	if math.Abs(float64(before.At(0, 0))-60) > 1e-4 {
		t.Fatalf("pre-start hold = %v, want 60", before.At(0, 0))
	}
	after := d.WindowAverage(10*T, 12*T)
	if math.Abs(float64(after.At(1, 1))-60) > 1e-4 {
		t.Fatalf("post-end hold = %v, want 60", after.At(1, 1))
	}
}

// TestComplementaryFusionOnDisplay: the core InFrame property end-to-end at
// the display level — with gamma=1, averaging V+D and V−D over one pair
// window recovers V exactly.
func TestComplementaryFusionOnDisplay(t *testing.T) {
	d := mustNew(t, idealConfig())
	v := frame.NewFilled(4, 4, 127)
	chess := frame.New(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if (x+y)%2 == 1 {
				chess.Set(x, y, 20)
			}
		}
	}
	plus := v.Clone()
	plus.Add(chess)
	minus := v.Clone()
	minus.Sub(chess)
	d.Push(plus)
	d.Push(minus)
	avg := d.WindowAverage(0, 2*d.FrameDuration())
	for i, p := range avg.Pix {
		if math.Abs(float64(p)-127) > 1e-3 {
			t.Fatalf("fused pixel %d = %v, want 127", i, p)
		}
	}
}

func TestResponseSmearsTransition(t *testing.T) {
	cfg := idealConfig()
	cfg.ResponseTime = 0.004
	d := mustNew(t, cfg)
	d.Push(frame.NewFilled(2, 2, 0))
	d.Push(frame.NewFilled(2, 2, 200))
	T := d.FrameDuration()
	// During the second interval, the pixel is still rising: its mean must
	// be strictly between 0 and 200, and below an ideal display's 200.
	avg := d.WindowAverage(T, 2*T)
	v := float64(avg.At(0, 0))
	if v <= 0 || v >= 200 {
		t.Fatalf("smeared average = %v, want within (0,200)", v)
	}
	// With a long settling run the state converges to the target.
	for i := 0; i < 40; i++ {
		d.Push(frame.NewFilled(2, 2, 200))
	}
	late := d.WindowAverage(40*T, 41*T)
	if math.Abs(float64(late.At(0, 0))-200) > 0.5 {
		t.Fatalf("settled average = %v, want ~200", late.At(0, 0))
	}
}

func TestResponseConservesPairMean(t *testing.T) {
	// Complementary alternation through a symmetric exponential response
	// still fuses to the video level once the alternation reaches steady
	// state (the response delays but does not bias the mean).
	cfg := idealConfig()
	cfg.ResponseTime = 0.003
	d := mustNew(t, cfg)
	for i := 0; i < 40; i++ {
		lv := float32(107)
		if i%2 == 0 {
			lv = 147
		}
		d.Push(frame.NewFilled(2, 2, lv))
	}
	T := d.FrameDuration()
	avg := d.WindowAverage(20*T, 22*T)
	if math.Abs(float64(avg.At(0, 0))-127) > 0.5 {
		t.Fatalf("steady alternation mean = %v, want ~127", avg.At(0, 0))
	}
}

func TestPixelWaveform(t *testing.T) {
	d := mustNew(t, idealConfig())
	d.Push(frame.NewFilled(2, 2, 100))
	d.Push(frame.NewFilled(2, 2, 200))
	T := d.FrameDuration()
	wf := d.PixelWaveform(0, 0, 0, 2*T, 4)
	if len(wf) != 4 {
		t.Fatalf("len = %d", len(wf))
	}
	if math.Abs(wf[0]-100) > 1e-3 || math.Abs(wf[3]-200) > 1e-3 {
		t.Fatalf("waveform = %v", wf)
	}
}

func TestEncodeLuminanceInverse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseTime = 0
	d := mustNew(t, cfg)
	d.Push(frame.NewFilled(1, 1, 180))
	l := float64(d.Luminance(0).At(0, 0))
	if got := d.EncodeLuminance(l); math.Abs(got-180) > 1e-3 {
		t.Fatalf("EncodeLuminance round trip = %v, want 180", got)
	}
	if d.EncodeLuminance(-4) != 0 {
		t.Fatal("negative luminance should encode to 0")
	}
	if d.EncodeLuminance(1e6) != 255 {
		t.Fatal("huge luminance should clamp to 255")
	}
}

func TestRowAveragePanics(t *testing.T) {
	d := mustNew(t, idealConfig())
	d.Push(frame.NewFilled(2, 2, 1))
	row := make([]float32, 2)
	for name, fn := range map[string]func(){
		"empty window": func() { d.RowAverage(0, 1, 1, row) },
		"bad row":      func() { d.RowAverage(5, 0, 0.01, row) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLuminanceBeforePushPanics(t *testing.T) {
	d := mustNew(t, idealConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Luminance before Push did not panic")
		}
	}()
	d.Luminance(0)
}

func TestStrobeValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StrobeDuty = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("StrobeDuty > 1 accepted")
	}
	cfg.StrobeDuty = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative StrobeDuty accepted")
	}
}

// TestStrobePreservesMeanLuminance: the 1/duty boost keeps the full-frame
// average identical to a continuous backlight.
func TestStrobePreservesMeanLuminance(t *testing.T) {
	cfg := idealConfig()
	cfg.StrobeDuty = 0.25
	d := mustNew(t, cfg)
	for i := 0; i < 4; i++ {
		d.Push(frame.NewFilled(4, 4, 100))
	}
	avg := d.WindowAverage(0, 4*d.FrameDuration())
	if math.Abs(float64(avg.At(2, 2))-100) > 1e-3 {
		t.Fatalf("strobed mean %v, want 100", avg.At(2, 2))
	}
}

// TestStrobeConcentratesLight: a window covering only the dark part of the
// interval sees nothing; the strobe slot sees the boosted level.
func TestStrobeConcentratesLight(t *testing.T) {
	cfg := idealConfig()
	cfg.StrobeDuty = 0.25
	d := mustNew(t, cfg)
	d.Push(frame.NewFilled(2, 2, 80))
	T := d.FrameDuration()
	dark := d.WindowAverage(0, 0.5*T)
	if dark.At(0, 0) != 0 {
		t.Fatalf("dark phase luminance %v, want 0", dark.At(0, 0))
	}
	lit := d.WindowAverage(0.75*T, T)
	if math.Abs(float64(lit.At(0, 0))-4*80) > 1e-3 {
		t.Fatalf("strobe slot luminance %v, want %v", lit.At(0, 0), 4*80)
	}
}

// TestStrobeComplementaryPairStillFuses: strobing does not bias the pair
// average, so the viewer still sees V.
func TestStrobeComplementaryPairStillFuses(t *testing.T) {
	cfg := idealConfig()
	cfg.StrobeDuty = 0.3
	d := mustNew(t, cfg)
	d.Push(frame.NewFilled(2, 2, 147))
	d.Push(frame.NewFilled(2, 2, 107))
	avg := d.WindowAverage(0, 2*d.FrameDuration())
	if math.Abs(float64(avg.At(1, 1))-127) > 1e-3 {
		t.Fatalf("strobed pair fuses to %v, want 127", avg.At(1, 1))
	}
}
