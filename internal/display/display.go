// Package display simulates the transmitter-side monitor of the InFrame
// system (the paper uses an Eizo FG2421: 120 Hz, 1920×1080, brightness 100%).
//
// The display accepts a sequence of 8-bit drive frames, one per refresh
// interval, and exposes the resulting *light field*: the linear-light
// luminance of any pixel averaged over any time window. Both receivers in
// the dual-mode channel — the human visual system model and the camera
// simulator — consume the light field through time-window integration,
// which is exactly how eyes (temporal summation) and sensors (exposure)
// observe a screen.
//
// Two display non-idealities matter for InFrame and are modelled:
//
//   - gamma: drive values map to luminance via a power law, so a ±δ drive
//     modulation produces *luminance* modulation that depends on the local
//     video level (dark content compresses the chessboard);
//   - pixel response: LCD cells approach their target exponentially with a
//     gray-to-gray time constant, smearing consecutive frames into each
//     other at 120 Hz.
//
// Drive frames are stored as bytes (the cable carries 8-bit values) and
// mapped to luminance through a 256-entry lookup table, keeping hour-long
// simulations within memory and avoiding per-pixel pow() in the hot path.
package display

import (
	"fmt"
	"math"
	"sync"

	"inframe/internal/frame"
)

// Config describes the simulated monitor.
type Config struct {
	// RefreshHz is the refresh rate; the paper's setup runs at 120.
	RefreshHz float64
	// Brightness scales peak luminance, 0..1 (paper: 100% → 1.0).
	Brightness float64
	// Gamma is the drive-to-luminance exponent (typical LCD: 2.2).
	Gamma float64
	// ResponseTime is the exponential gray-to-gray time constant in
	// seconds (0 = ideal instant pixels; fast gaming LCD ≈ 2 ms).
	// Nonzero response keeps one float32 state frame per refresh in
	// memory; prefer 0 for long throughput runs.
	ResponseTime float64
	// StrobeDuty enables a strobed backlight (the FG2421's "Turbo 240"
	// black-frame insertion): light is emitted only during the final
	// StrobeDuty fraction of each refresh interval, scaled 1/duty so the
	// mean luminance is unchanged. The strobe fires after the LCD has
	// settled, so pixel response is hidden and ResponseTime is ignored.
	// 0 disables strobing (continuous backlight).
	StrobeDuty float64
}

// DefaultConfig models the paper's Eizo FG2421 at 100% brightness.
func DefaultConfig() Config {
	return Config{RefreshHz: 120, Brightness: 1.0, Gamma: 2.2, ResponseTime: 0.002}
}

// Validate reports whether the configuration is physical.
func (c Config) Validate() error {
	if c.RefreshHz <= 0 {
		return fmt.Errorf("display: RefreshHz must be positive, got %v", c.RefreshHz)
	}
	if c.Brightness <= 0 || c.Brightness > 1 {
		return fmt.Errorf("display: Brightness must be in (0,1], got %v", c.Brightness)
	}
	if c.Gamma <= 0 {
		return fmt.Errorf("display: Gamma must be positive, got %v", c.Gamma)
	}
	if c.ResponseTime < 0 {
		return fmt.Errorf("display: ResponseTime must be non-negative, got %v", c.ResponseTime)
	}
	if c.StrobeDuty < 0 || c.StrobeDuty > 1 {
		return fmt.Errorf("display: StrobeDuty must be in [0,1], got %v", c.StrobeDuty)
	}
	return nil
}

// Display holds the pushed drive frames and the derived light field state.
// Luminance is expressed on a 0..255 linear scale (255 = peak white at
// Brightness 1.0) so it composes naturally with 8-bit pixel arithmetic.
//
// A Display is safe for concurrent use by one pusher and any number of
// readers: Push takes the write lock, every light-field query takes the
// read lock. That is exactly the shape of the pipelined channel simulator,
// where capture workers integrate frames the renderer has already pushed
// while it keeps pushing new ones.
type Display struct {
	cfg  Config
	w, h int

	// mu orders Push (writer) against the light-field readers.
	mu sync.RWMutex
	// drive[k] is the quantized 8-bit drive frame of interval k.
	drive [][]uint8
	// arena backs drive rows in multi-frame chunks, so a Push costs an
	// amortized slice carve instead of a per-frame allocation. Exhausted
	// chunks stay alive through the drive slices that point into them (the
	// drive history IS the light field, so nothing is ever freed anyway).
	arena []uint8
	// lut maps a drive value to linear luminance.
	lut [256]float32
	// state[k] is the actual luminance at the *start* of interval k when
	// ResponseTime > 0, accounting for the exponential response; extended
	// eagerly at Push so readers never mutate.
	state []*frame.Frame
}

// New returns a display with the given config; frame dimensions are fixed by
// the first pushed frame.
func New(cfg Config) (*Display, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Display{cfg: cfg}
	for v := 0; v < 256; v++ {
		d.lut[v] = float32(cfg.Brightness * 255 * math.Pow(float64(v)/255, cfg.Gamma))
	}
	return d, nil
}

// Config returns the display configuration.
func (d *Display) Config() Config { return d.cfg }

// FrameDuration returns the length of one refresh interval in seconds.
func (d *Display) FrameDuration() float64 { return 1 / d.cfg.RefreshHz }

// NumFrames returns how many drive frames have been pushed.
func (d *Display) NumFrames() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.drive)
}

// Duration returns the total displayed time in seconds.
func (d *Display) Duration() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return float64(len(d.drive)) / d.cfg.RefreshHz
}

// Size returns the panel resolution (0,0 before the first Push).
func (d *Display) Size() (int, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w, d.h
}

// Push appends one drive frame for the next refresh interval. Drive values
// are clamped to [0,255] and quantized (the cable carries 8-bit values).
func (d *Display) Push(f *frame.Frame) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.w == 0 {
		d.w, d.h = f.W, f.H
	} else if f.W != d.w || f.H != d.h {
		return fmt.Errorf("display: frame %dx%d does not match panel %dx%d", f.W, f.H, d.w, d.h)
	}
	n := len(f.Pix)
	if cap(d.arena)-len(d.arena) < n {
		// Carve drive frames from 16-frame chunks: same retained memory
		// as per-frame allocation (the history is kept forever either
		// way), 1/16th the allocations.
		d.arena = make([]uint8, 0, 16*n)
	}
	dr := d.arena[len(d.arena) : len(d.arena)+n : len(d.arena)+n]
	d.arena = d.arena[:len(d.arena)+n]
	for i, v := range f.Pix {
		dr[i] = frame.Quant8(v)
	}
	d.drive = append(d.drive, dr)
	if d.cfg.ResponseTime > 0 {
		d.extendState()
	}
	return nil
}

// clampFrame returns the drive frame index clamped to the pushed range: the
// first/last frame is held before t=0 and after the end.
func (d *Display) clampFrame(k int) int {
	if k < 0 {
		return 0
	}
	if k >= len(d.drive) {
		return len(d.drive) - 1
	}
	return k
}

// Luminance returns the steady-state linear luminance frame of drive frame
// k (clamped to the pushed range) as a freshly materialized frame.
func (d *Display) Luminance(k int) *frame.Frame {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.luminance(k)
}

// luminance is Luminance without locking; callers hold mu.
func (d *Display) luminance(k int) *frame.Frame {
	if len(d.drive) == 0 {
		panic("display: no frames pushed")
	}
	dr := d.drive[d.clampFrame(k)]
	out := frame.New(d.w, d.h)
	for i, v := range dr {
		out.Pix[i] = d.lut[v]
	}
	return out
}

// extendState advances the response-state chain to cover every pushed frame
// (state[k] exists for k ≤ len(drive)), so the read paths never mutate.
// state[0] assumes the panel settled on frame 0 before t=0. Called from Push
// with the write lock held.
func (d *Display) extendState() {
	if len(d.state) == 0 {
		d.state = append(d.state, d.luminance(0))
	}
	alpha := float32(math.Exp(-d.FrameDuration() / d.cfg.ResponseTime))
	for len(d.state) <= len(d.drive) {
		j := len(d.state) - 1 // completed interval
		prev := d.state[j]
		target := d.drive[d.clampFrame(j)]
		next := frame.New(d.w, d.h)
		for i := range next.Pix {
			tg := d.lut[target[i]]
			next.Pix[i] = tg + (prev.Pix[i]-tg)*alpha
		}
		d.state = append(d.state, next)
	}
}

// RowAverage computes, for every pixel of row y, the mean linear luminance
// over the time window [t0, t1) and stores it into dst (length ≥ panel
// width). Windows extending before 0 or past the last frame see the first /
// last frame held steady.
//
//hot:the camera synthesizes every captured row through this path
func (d *Display) RowAverage(y int, t0, t1 float64, dst []float32) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.drive) == 0 {
		panic("display: no frames pushed")
	}
	if t1 <= t0 {
		panic(fmt.Sprintf("display: empty window [%v,%v)", t0, t1))
	}
	if y < 0 || y >= d.h {
		panic(fmt.Sprintf("display: row %d out of range", y))
	}
	w := d.w
	for x := 0; x < w; x++ {
		dst[x] = 0
	}
	T := d.FrameDuration()
	k0 := int(math.Floor(t0 / T))
	k1 := int(math.Ceil(t1 / T))
	if k1 <= k0 {
		k1 = k0 + 1
	}
	total := t1 - t0
	if duty := d.cfg.StrobeDuty; duty > 0 && duty < 1 {
		// Strobed backlight: light only during the final duty fraction of
		// each interval, at target luminance scaled by 1/duty.
		boost := float32(1 / duty)
		for k := k0; k < k1; k++ {
			sOn := (float64(k) + 1 - duty) * T
			sOff := float64(k+1) * T
			a := math.Max(t0, sOn)
			b := math.Min(t1, sOff)
			if b <= a {
				continue
			}
			target := d.drive[d.clampFrame(k)][y*w : y*w+w]
			wgt := float32((b-a)/total) * boost
			for x := 0; x < w; x++ {
				dst[x] += d.lut[target[x]] * wgt
			}
		}
		return
	}
	// The response-state chain is maintained at Push time, so the read path
	// needs no mutation: state[k] exists for every k < len(drive).
	useResp := d.cfg.ResponseTime > 0
	tauR := d.cfg.ResponseTime
	for k := k0; k < k1; k++ {
		a := math.Max(t0, float64(k)*T)
		b := math.Min(t1, float64(k+1)*T)
		if b <= a {
			continue
		}
		target := d.drive[d.clampFrame(k)][y*w : y*w+w]
		if !useResp || k < 0 || k >= len(d.drive) {
			// Settled (held) frame or ideal pixels: constant luminance.
			wgt := float32((b - a) / total)
			for x := 0; x < w; x++ {
				dst[x] += d.lut[target[x]] * wgt
			}
			continue
		}
		// Exponential approach from the interval-start state:
		// ∫ target + (s−target)·e^{−(t−tk)/τ} dt over [a,b].
		tk := float64(k) * T
		ea := math.Exp(-(a - tk) / tauR)
		eb := math.Exp(-(b - tk) / tauR)
		cLin := float32((b - a) / total)
		cExp := float32(tauR * (ea - eb) / total)
		st := d.state[k].Pix[y*w : y*w+w]
		for x := 0; x < w; x++ {
			tg := d.lut[target[x]]
			dst[x] += tg*cLin + (st[x]-tg)*cExp
		}
	}
}

// WindowAverage returns a full frame of mean linear luminance over [t0, t1).
func (d *Display) WindowAverage(t0, t1 float64) *frame.Frame {
	w, h := d.Size()
	out := frame.New(w, h)
	d.WindowAverageInto(t0, t1, out)
	return out
}

// WindowAverageInto computes the mean linear luminance over [t0, t1) into
// dst (which must match the panel size), writing each panel row in place —
// the allocation-free form of WindowAverage for pooled buffers.
func (d *Display) WindowAverageInto(t0, t1 float64, dst *frame.Frame) {
	w, h := d.Size()
	if dst.W != w || dst.H != h {
		panic(fmt.Sprintf("display: WindowAverageInto %dx%d does not match panel %dx%d", dst.W, dst.H, w, h))
	}
	for y := 0; y < h; y++ {
		d.RowAverage(y, t0, t1, dst.Row(y))
	}
}

// PixelWaveform samples the luminance of pixel (x, y) at n uniform points in
// [t0, t1), using a sample window of dt seconds each; used by the HVS model
// and waveform verification.
func (d *Display) PixelWaveform(x, y int, t0, t1 float64, n int) []float64 {
	if n <= 0 {
		panic("display: non-positive sample count")
	}
	out := make([]float64, n)
	w, _ := d.Size()
	d.PixelWaveformInto(x, y, t0, t1, out, make([]float32, w))
	return out
}

// PixelWaveformInto is PixelWaveform writing into caller-owned buffers: out
// receives one sample per element (its length sets the sample count) and
// row is integration scratch of at least the panel width. The HVS fusion
// path shares one row buffer across every sampled point rather than
// allocating per waveform.
func (d *Display) PixelWaveformInto(x, y int, t0, t1 float64, out []float64, row []float32) {
	n := len(out)
	if n <= 0 {
		panic("display: non-positive sample count")
	}
	dt := (t1 - t0) / float64(n)
	for i := 0; i < n; i++ {
		a := t0 + float64(i)*dt
		d.RowAverage(y, a, a+dt, row)
		out[i] = float64(row[x])
	}
}

// EncodeLuminance converts a linear-light value (0..255 scale) back to the
// 8-bit drive value that would produce it, inverting gamma and brightness.
// It is the reference inverse transform used by the camera's encoder.
func (d *Display) EncodeLuminance(l float64) float64 {
	if l <= 0 {
		return 0
	}
	v := 255 * math.Pow(l/(255*d.cfg.Brightness), 1/d.cfg.Gamma)
	if v > 255 {
		v = 255
	}
	return v
}
