package barcode

import (
	"math"
	"math/rand"
	"testing"

	"inframe/internal/camera"
	"inframe/internal/display"
	"inframe/internal/frame"
)

func testConfig() Config {
	return Config{X0: 24, Y0: 16, W: 24, H: 16, CellPx: 2, Quiet: 1, FramesPerCode: 8}
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultConfig(960, 540).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{X0: -1, Y0: 0, W: 10, H: 10, CellPx: 2, FramesPerCode: 1},
		{W: 0, H: 10, CellPx: 2, FramesPerCode: 1},
		{W: 10, H: 10, CellPx: 0, FramesPerCode: 1},
		{W: 10, H: 10, CellPx: 2, Quiet: -1, FramesPerCode: 1},
		{W: 10, H: 10, CellPx: 2, FramesPerCode: 0},
		{W: 4, H: 4, CellPx: 2, Quiet: 1, FramesPerCode: 1}, // no data cells
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := testConfig()
	if c.CellsX() != 10 || c.CellsY() != 6 {
		t.Fatalf("cells %dx%d, want 10x6", c.CellsX(), c.CellsY())
	}
	if c.BitsPerCode() != 60 {
		t.Fatalf("bits per code %d", c.BitsPerCode())
	}
	if f := c.AreaFraction(48, 32); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("area fraction %v, want 0.25", f)
	}
	// 60 bits per 8 frames at 120 Hz = 900 bps.
	if r := c.RawBps(120); math.Abs(r-900) > 1e-9 {
		t.Fatalf("raw rate %v, want 900", r)
	}
}

func TestRenderReplacesRegionOnly(t *testing.T) {
	c := testConfig()
	v := frame.NewFilled(48, 32, 127)
	bits := make([]bool, c.BitsPerCode())
	bits[0] = true
	out := c.Render(v, bits)
	// Outside the region untouched.
	if out.At(0, 0) != 127 || out.At(23, 31) != 127 {
		t.Fatal("video outside region altered")
	}
	// Quiet border white.
	if out.At(c.X0, c.Y0) != 255 {
		t.Fatal("quiet zone not white")
	}
	// First data cell black at its center.
	if out.At(c.X0+c.CellPx+1, c.Y0+c.CellPx+1) != 0 {
		t.Fatal("set cell not black")
	}
	// Input not mutated.
	if v.At(c.X0, c.Y0) != 127 {
		t.Fatal("Render mutated the input frame")
	}
}

func TestDecodeIdeal(t *testing.T) {
	c := testConfig()
	rng := rand.New(rand.NewSource(8))
	bits := make([]bool, c.BitsPerCode())
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	out := c.Render(frame.NewFilled(48, 32, 127), bits)
	got := c.Decode(out, 1, 1)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

// TestDecodeThroughChannel: barcode through the display+camera simulators
// decodes perfectly — the full-contrast cells are the easy case.
func TestDecodeThroughChannel(t *testing.T) {
	c := Config{X0: 32, Y0: 16, W: 32, H: 32, CellPx: 4, Quiet: 1, FramesPerCode: 8}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	bits := make([]bool, c.BitsPerCode())
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	dcfg := display.DefaultConfig()
	d, err := display.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	shown := c.Render(frame.NewFilled(96, 64, 127), bits)
	for i := 0; i < 12; i++ {
		if err := d.Push(shown); err != nil {
			t.Fatal(err)
		}
	}
	ccfg := camera.DefaultConfig(64, 43)
	ccfg.NoiseSigma = 1.5
	cam, err := camera.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := cam.Capture(d, 0.01, 0)
	got := c.Decode(cap, 64.0/96, 43.0/64)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("%d/%d cell errors through benign channel", errs, len(bits))
	}
}

func TestDecodeOutOfBoundsSafe(t *testing.T) {
	c := testConfig()
	tiny := frame.NewFilled(4, 4, 0)
	// Must not panic even when the mapped region exceeds the capture.
	bits := c.Decode(tiny, 0.1, 0.1)
	if len(bits) != c.BitsPerCode() {
		t.Fatal("wrong bit count")
	}
}
