// Package barcode implements the conventional alternative InFrame argues
// against (§1): a dynamic barcode that exclusively occupies a region of the
// display. The video cannot use that region, quantifying the space
// contention, and the code is fully visible (maximally distracting) but
// trivially robust: cells are full-contrast black/white.
//
// It serves as the comparison baseline in examples and ablations: similar
// or higher raw bit rate than InFrame, at the cost of surrendering screen
// area and aesthetics.
package barcode

import (
	"fmt"

	"inframe/internal/frame"
)

// Config describes the barcode region and geometry.
type Config struct {
	// X0, Y0, W, H is the exclusive screen region in pixels.
	X0, Y0, W, H int
	// CellPx is the square cell side in pixels.
	CellPx int
	// Quiet is the white quiet-zone border width in cells.
	Quiet int
	// FramesPerCode is how many display frames each code persists
	// (a camera needs the code stable across at least one capture).
	FramesPerCode int
}

// DefaultConfig places a barcode of roughly a fifth of the screen width in
// the bottom-right corner — the familiar QR-in-the-corner layout.
func DefaultConfig(screenW, screenH int) Config {
	side := screenW / 5
	return Config{
		X0: screenW - side, Y0: screenH - side, W: side, H: side,
		CellPx: side / 16, Quiet: 1, FramesPerCode: 8,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.W <= 0 || c.H <= 0 || c.X0 < 0 || c.Y0 < 0 {
		return fmt.Errorf("barcode: invalid region %d,%d %dx%d", c.X0, c.Y0, c.W, c.H)
	}
	if c.CellPx <= 0 {
		return fmt.Errorf("barcode: CellPx must be positive")
	}
	if c.Quiet < 0 {
		return fmt.Errorf("barcode: Quiet must be non-negative")
	}
	if c.FramesPerCode < 1 {
		return fmt.Errorf("barcode: FramesPerCode must be >= 1")
	}
	if c.CellsX() < 1 || c.CellsY() < 1 {
		return fmt.Errorf("barcode: region too small for any data cell")
	}
	return nil
}

// CellsX returns the data cell columns (quiet zone excluded).
func (c Config) CellsX() int { return c.W/c.CellPx - 2*c.Quiet }

// CellsY returns the data cell rows.
func (c Config) CellsY() int { return c.H/c.CellPx - 2*c.Quiet }

// BitsPerCode returns the bits carried by one code.
func (c Config) BitsPerCode() int { return c.CellsX() * c.CellsY() }

// AreaFraction returns the fraction of a screenW×screenH display the code
// occupies — the space-contention figure.
func (c Config) AreaFraction(screenW, screenH int) float64 {
	return float64(c.W*c.H) / float64(screenW*screenH)
}

// Render draws code bits (row-major, CellsX×CellsY) over the video frame,
// replacing the region content entirely: white quiet zone, black cell for
// 1, white for 0. Bits beyond len(bits) render white.
func (c Config) Render(v *frame.Frame, bits []bool) *frame.Frame {
	out := v.Clone()
	// Quiet zone: whole region white first.
	for y := c.Y0; y < c.Y0+c.H && y < out.H; y++ {
		for x := c.X0; x < c.X0+c.W && x < out.W; x++ {
			out.Pix[y*out.W+x] = 255
		}
	}
	cx, cy := c.CellsX(), c.CellsY()
	for j := 0; j < cy; j++ {
		for i := 0; i < cx; i++ {
			idx := j*cx + i
			if idx >= len(bits) || !bits[idx] {
				continue
			}
			x0 := c.X0 + (c.Quiet+i)*c.CellPx
			y0 := c.Y0 + (c.Quiet+j)*c.CellPx
			for y := y0; y < y0+c.CellPx && y < out.H; y++ {
				for x := x0; x < x0+c.CellPx && x < out.W; x++ {
					out.Pix[y*out.W+x] = 0
				}
			}
		}
	}
	return out
}

// Decode reads code bits from a captured frame, given the capture scale
// relative to the display (capW/dispW, capH/dispH). Each cell is sampled by
// a patch centered in the cell, covering about half the cell's mapped size,
// and thresholded at mid-gray.
func (c Config) Decode(cap *frame.Frame, sx, sy float64) []bool {
	cx, cy := c.CellsX(), c.CellsY()
	pw := int(float64(c.CellPx) * sx / 2)
	if pw < 1 {
		pw = 1
	}
	ph := int(float64(c.CellPx) * sy / 2)
	if ph < 1 {
		ph = 1
	}
	bits := make([]bool, cx*cy)
	for j := 0; j < cy; j++ {
		for i := 0; i < cx; i++ {
			centerX := (float64(c.X0+(c.Quiet+i)*c.CellPx) + float64(c.CellPx)/2) * sx
			centerY := (float64(c.Y0+(c.Quiet+j)*c.CellPx) + float64(c.CellPx)/2) * sy
			x0 := int(centerX) - pw/2
			y0 := int(centerY) - ph/2
			var sum float64
			var n int
			for y := y0; y < y0+ph; y++ {
				if y < 0 || y >= cap.H {
					continue
				}
				for x := x0; x < x0+pw; x++ {
					if x < 0 || x >= cap.W {
						continue
					}
					sum += float64(cap.Pix[y*cap.W+x])
					n++
				}
			}
			bits[j*cx+i] = n > 0 && sum/float64(n) < 128
		}
	}
	return bits
}

// RawBps returns the barcode channel's nominal rate at the given display
// refresh rate.
func (c Config) RawBps(refreshHz float64) float64 {
	return float64(c.BitsPerCode()) * refreshHz / float64(c.FramesPerCode)
}
