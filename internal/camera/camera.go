// Package camera simulates the receiver-side camera of the InFrame system
// (the paper uses a Lumia 1020 capturing 1280×720 at 30 FPS from 50 cm).
//
// The simulator models the channel impairments §3.3 of the paper designs
// against:
//
//   - rolling shutter: sensor rows expose at staggered times, so one capture
//     can straddle a display-frame (and data-frame) boundary row-wise;
//   - display/camera frame-rate mismatch and free-running phase;
//   - exposure integration over multiple refresh intervals;
//   - optical blur, sensor noise, resolution mismatch and 8-bit quantization
//     ("poor capture quality").
//
// A capture samples the display's light field (linear luminance), then
// gamma-encodes back to 8-bit pixel values, as real camera ISPs do.
package camera

import (
	"fmt"
	"math/rand"

	"inframe/internal/display"
	"inframe/internal/fixed"
	"inframe/internal/frame"
	"inframe/internal/parallel"
)

// Config describes the simulated camera.
type Config struct {
	// W, H is the sensor output resolution.
	W, H int
	// FPS is the capture rate (paper: 30).
	FPS float64
	// Exposure is the per-row integration time in seconds. It must be
	// positive and at most the frame period.
	Exposure float64
	// ReadoutTime is the rolling-shutter scan time across all rows in
	// seconds; 0 models a global shutter. A binned 720p mode reads out in
	// under 10 ms.
	ReadoutTime float64
	// NoiseSigma is the additive Gaussian read-noise standard deviation in
	// 8-bit output units.
	NoiseSigma float64
	// BlurRadius is an optical defocus radius in display pixels applied
	// before spatial resampling (0 = sharp focus).
	BlurRadius int
	// Gamma is the output encoding exponent; matching the display's gamma
	// makes the net drive→capture map identity for static content.
	Gamma float64
	// Seed drives the noise generator; captures are deterministic per
	// (Seed, capture index).
	Seed int64
	// CropX0, CropY0, CropW, CropH select the display-pixel window the
	// sensor frames (zoom/offset). All zero means the camera frames the
	// whole display. The window is resampled onto the full sensor; parts
	// of the window outside the display see black (overscan: the camera
	// films the monitor plus the dark room behind it).
	CropX0, CropY0, CropW, CropH int
	// Workers bounds the capture worker pool: rolling-shutter row synthesis
	// within one capture and whole captures within CaptureSequence fan out
	// across this many goroutines. 0 means GOMAXPROCS; 1 forces the
	// sequential path. Captures are bit-identical at any worker count: rows
	// write disjoint spans and the noise RNG is seeded from the capture
	// index, never from worker identity.
	Workers int
	// Pool supplies the capture working buffers (display-resolution
	// integration plane, blur scratch, crop window) and the returned
	// capture itself. Intermediates are Put back inside Capture; the
	// returned capture is owned by the caller, who may Put it back after
	// decoding to close the loop. Nil means a private pool (intermediates
	// still recycle; returned captures are simply never reused).
	Pool *frame.Pool
}

// cropped reports whether a crop window is configured.
func (c Config) cropped() bool { return c.CropW > 0 && c.CropH > 0 }

// DefaultConfig models the paper's Lumia 1020 settings scaled to the
// simulation: 30 FPS with a short exposure (a 100%-brightness monitor fills
// the sensor quickly, and every millisecond of exposure risks integrating
// across a complementary sign flip) and a binned-readout rolling shutter.
func DefaultConfig(w, h int) Config {
	return Config{
		W: w, H: h,
		FPS:         30,
		Exposure:    0.0007,
		ReadoutTime: 0.008,
		NoiseSigma:  2.5,
		BlurRadius:  1,
		Gamma:       2.2,
		Seed:        1,
	}
}

// Validate reports whether the configuration is physical.
func (c Config) Validate() error {
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("camera: invalid sensor size %dx%d", c.W, c.H)
	}
	if c.FPS <= 0 {
		return fmt.Errorf("camera: FPS must be positive, got %v", c.FPS)
	}
	if c.Exposure <= 0 {
		return fmt.Errorf("camera: Exposure must be positive, got %v", c.Exposure)
	}
	period := 1 / c.FPS
	if c.Exposure > period {
		return fmt.Errorf("camera: Exposure %v exceeds frame period %v", c.Exposure, period)
	}
	if c.ReadoutTime < 0 || c.ReadoutTime > period {
		return fmt.Errorf("camera: ReadoutTime %v outside [0, frame period]", c.ReadoutTime)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("camera: NoiseSigma must be non-negative, got %v", c.NoiseSigma)
	}
	if c.BlurRadius < 0 {
		return fmt.Errorf("camera: BlurRadius must be non-negative, got %v", c.BlurRadius)
	}
	if c.Gamma <= 0 {
		return fmt.Errorf("camera: Gamma must be positive, got %v", c.Gamma)
	}
	if (c.CropW > 0) != (c.CropH > 0) {
		return fmt.Errorf("camera: crop needs both dimensions, got %dx%d", c.CropW, c.CropH)
	}
	if c.Workers < 0 {
		return fmt.Errorf("camera: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Camera captures frames from a simulated display.
type Camera struct {
	cfg  Config
	pool *frame.Pool
	// gamma is the ISP's encode curve as a Q16 fixed-point lookup table,
	// built once per camera: the per-pixel math.Pow it replaces was the
	// single largest EndToEnd profile entry (see DESIGN.md §5j).
	gamma *fixed.Gamma
}

// New returns a camera for the given configuration.
func New(cfg Config) (*Camera, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	return &Camera{cfg: cfg, pool: pool, gamma: fixed.NewGamma(cfg.Gamma)}, nil
}

// Config returns the camera configuration.
func (c *Camera) Config() Config { return c.cfg }

// FramePeriod returns the capture interval in seconds.
func (c *Camera) FramePeriod() float64 { return 1 / c.cfg.FPS }

// Capture exposes one frame starting at time t0 (the exposure start of the
// first sensor row) and returns the 8-bit-quantized capture. index selects
// the deterministic noise stream for this capture. The returned frame is
// drawn from the camera's pool; the caller owns it and may Put it back to
// that pool when done with it.
func (c *Camera) Capture(d *display.Display, t0 float64, index int) *frame.Frame {
	return c.captureWith(d, t0, index, c.cfg.Workers)
}

// captureWith is Capture with an explicit worker budget for the row
// sweep, so callers that are themselves inside a parallel region
// (CaptureSequence) can thread a Split share instead of handing every
// capture the full worker count.
func (c *Camera) captureWith(d *display.Display, t0 float64, index, rowWorkers int) *frame.Frame {
	dw, dh := d.Size()
	if dw == 0 || dh == 0 {
		panic("camera: display has no frames")
	}
	// Integrate the light field at display resolution, one display row at a
	// time, each row using the exposure window of the sensor row it maps to.
	// Rows write disjoint spans of lin, so the rolling-shutter synthesis
	// fans out across workers with a bit-identical ordered merge; RowAverage
	// writes each destination row in place, so no per-chunk scratch row is
	// needed. Every working buffer comes from the camera's pool and goes
	// back once the next stage has consumed it.
	lin := c.pool.Get(dw, dh)
	var rowDt float64
	if c.cfg.H > 1 {
		rowDt = c.cfg.ReadoutTime / float64(c.cfg.H)
	}
	parallel.ForChunked(rowWorkers, dh, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			sensorRow := y * c.cfg.H / dh
			a := t0 + float64(sensorRow)*rowDt
			d.RowAverage(y, a, a+c.cfg.Exposure, lin.Row(y))
		}
	})
	if c.cfg.BlurRadius > 0 {
		blurred := c.pool.Get(dw, dh)
		frame.BoxBlurInto(lin, blurred, c.cfg.BlurRadius, c.pool)
		c.pool.Put(lin)
		lin = blurred
	}
	if c.cfg.cropped() {
		// The window arrives zeroed from the pool, so parts extending
		// beyond the display stay black (overscan).
		window := c.pool.Get(c.cfg.CropW, c.cfg.CropH)
		window.Blit(lin, -c.cfg.CropX0, -c.cfg.CropY0)
		c.pool.Put(lin)
		lin = window
	}
	out := c.pool.Get(c.cfg.W, c.cfg.H)
	frame.ResampleInto(lin, out)
	c.pool.Put(lin)
	c.encode(out)
	c.addNoise(out, index)
	out.Quantize()
	return out
}

// encode converts linear luminance (0..255 scale) to gamma-encoded 8-bit
// values in place, through the camera's Q16 fixed-point curve table (the
// error bound against the exact math.Pow curve is in fixed.Gamma's doc).
func (c *Camera) encode(f *frame.Frame) {
	g := c.gamma
	for i, v := range f.Pix {
		f.Pix[i] = g.Encode8(v)
	}
}

// addNoise adds deterministic Gaussian read noise for capture index.
func (c *Camera) addNoise(f *frame.Frame, index int) {
	//lint:ignore floateq NoiseSigma==0 is the configured "noise disabled" sentinel, never a computed value
	if c.cfg.NoiseSigma == 0 {
		return
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(index)*1000003))
	sigma := c.cfg.NoiseSigma
	for i := range f.Pix {
		f.Pix[i] += float32(rng.NormFloat64() * sigma)
	}
}

// CaptureSequence captures n frames starting at time start, spaced by the
// camera frame period, and returns them with their exposure start times.
// Captures are independent (the display is read-only and each capture's
// noise stream is keyed by its index), so they fan out across the
// configured workers with results merged by position — bit-identical to a
// sequential run.
func (c *Camera) CaptureSequence(d *display.Display, start float64, n int) ([]*frame.Frame, []float64) {
	frames := make([]*frame.Frame, n)
	times := make([]float64, n)
	period := c.FramePeriod()
	// Split the budget between the capture fan-out and each capture's row
	// sweep: n captures × full-worker sweeps oversubscribes the pool W-fold.
	outer := parallel.Resolve(c.cfg.Workers)
	if outer > n {
		outer = n
	}
	inner := parallel.Split(c.cfg.Workers, outer)
	parallel.For(c.cfg.Workers, n, func(i int) {
		t := start + float64(i)*period
		frames[i] = c.captureWith(d, t, i, inner)
		times[i] = t
	})
	return frames, times
}
