package camera

import (
	"math"
	"testing"

	"inframe/internal/display"
	"inframe/internal/frame"
)

func testDisplay(t *testing.T, frames ...*frame.Frame) *display.Display {
	t.Helper()
	cfg := display.DefaultConfig()
	cfg.ResponseTime = 0
	d, err := display.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := d.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func quietConfig(w, h int) Config {
	c := DefaultConfig(w, h)
	c.NoiseSigma = 0
	c.BlurRadius = 0
	c.ReadoutTime = 0
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64, 36).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{W: 0, H: 10, FPS: 30, Exposure: 0.001, Gamma: 2.2},
		{W: 10, H: 10, FPS: 0, Exposure: 0.001, Gamma: 2.2},
		{W: 10, H: 10, FPS: 30, Exposure: 0, Gamma: 2.2},
		{W: 10, H: 10, FPS: 30, Exposure: 0.1, Gamma: 2.2}, // exposure > period
		{W: 10, H: 10, FPS: 30, Exposure: 0.001, Gamma: 2.2, ReadoutTime: 0.05},
		{W: 10, H: 10, FPS: 30, Exposure: 0.001, Gamma: 2.2, NoiseSigma: -1},
		{W: 10, H: 10, FPS: 30, Exposure: 0.001, Gamma: 2.2, BlurRadius: -1},
		{W: 10, H: 10, FPS: 30, Exposure: 0.001, Gamma: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

// TestStaticSceneRoundTrip: with matched gammas and no impairments, the
// camera recovers the drive values of a static display.
func TestStaticSceneRoundTrip(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(32, 32, 180), frame.NewFilled(32, 32, 180))
	cam, err := New(quietConfig(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	cap := cam.Capture(d, 0, 0)
	if cap.W != 32 || cap.H != 32 {
		t.Fatalf("capture size %dx%d", cap.W, cap.H)
	}
	if math.Abs(float64(cap.At(16, 16))-180) > 1 {
		t.Fatalf("captured %v, want ~180", cap.At(16, 16))
	}
}

func TestResolutionMismatch(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(48, 36, 127))
	cam, err := New(quietConfig(32, 24))
	if err != nil {
		t.Fatal(err)
	}
	cap := cam.Capture(d, 0, 0)
	if cap.W != 32 || cap.H != 24 {
		t.Fatalf("capture size %dx%d, want 32x24", cap.W, cap.H)
	}
	if math.Abs(float64(cap.At(10, 10))-127) > 1.5 {
		t.Fatalf("captured %v, want ~127", cap.At(10, 10))
	}
}

func TestNoiseDeterministicPerIndex(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(16, 16, 100))
	cfg := quietConfig(16, 16)
	cfg.NoiseSigma = 3
	cam, _ := New(cfg)
	a := cam.Capture(d, 0, 0)
	b := cam.Capture(d, 0, 0)
	if !a.Equal(b) {
		t.Fatal("same capture index produced different noise")
	}
	c := cam.Capture(d, 0, 1)
	if a.Equal(c) {
		t.Fatal("different capture indices produced identical noise")
	}
}

func TestNoiseMagnitude(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(64, 64, 128))
	cfg := quietConfig(64, 64)
	cfg.NoiseSigma = 4
	cam, _ := New(cfg)
	cap := cam.Capture(d, 0, 0)
	// Sample standard deviation should be near sigma (quantization adds a
	// little).
	var sum, sum2 float64
	for _, v := range cap.Pix {
		sum += float64(v)
		sum2 += float64(v) * float64(v)
	}
	n := float64(len(cap.Pix))
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if sd < 3 || sd > 5 {
		t.Fatalf("noise sd = %v, want ~4", sd)
	}
	if math.Abs(mean-128) > 0.5 {
		t.Fatalf("noise biased mean to %v", mean)
	}
}

// TestRollingShutterStraddlesTransition: when the display switches content
// mid-readout, top sensor rows see the old frame and bottom rows the new one.
func TestRollingShutterStraddlesTransition(t *testing.T) {
	// 120 Hz display: frame 0 dark (drive 50), frames 1.. bright (drive 200).
	frames := []*frame.Frame{frame.NewFilled(32, 32, 50)}
	for i := 0; i < 5; i++ {
		frames = append(frames, frame.NewFilled(32, 32, 200))
	}
	d := testDisplay(t, frames...)
	cfg := quietConfig(32, 32)
	cfg.ReadoutTime = 0.020
	cfg.Exposure = 0.002
	cam, _ := New(cfg)
	// Start exposure so that the display transition (at t=1/120≈8.33 ms)
	// falls mid-readout.
	cap := cam.Capture(d, 0.004, 0)
	top := float64(cap.Region(0, 0, 32, 4).Mean())
	bottom := float64(cap.Region(0, 28, 32, 4).Mean())
	if !(top < 80 && bottom > 170) {
		t.Fatalf("rolling shutter: top=%v bottom=%v, want dark top / bright bottom", top, bottom)
	}
	// A global shutter at the same instant sees a uniform frame.
	cfg.ReadoutTime = 0
	cam2, _ := New(cfg)
	cap2 := cam2.Capture(d, 0.004, 0)
	top2 := float64(cap2.Region(0, 0, 32, 4).Mean())
	bottom2 := float64(cap2.Region(0, 28, 32, 4).Mean())
	if math.Abs(top2-bottom2) > 2 {
		t.Fatalf("global shutter: top=%v bottom=%v, want uniform", top2, bottom2)
	}
}

// TestExposureSpanningPairFusesData: an exposure covering a complementary
// pair integrates the chessboard away — the reason InFrame needs the camera
// exposure shorter than one refresh interval.
func TestExposureSpanningPairFusesData(t *testing.T) {
	base := frame.NewFilled(16, 16, 127)
	chess := frame.New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if (x+y)%2 == 1 {
				chess.Set(x, y, 30)
			}
		}
	}
	plus := base.Clone()
	plus.Add(chess)
	minus := base.Clone()
	minus.Sub(chess)
	d := testDisplay(t, plus, minus, plus, minus)

	cfg := quietConfig(16, 16)
	cfg.Gamma = 1 // isolate temporal integration from gamma asymmetry
	dispCfg := display.DefaultConfig()
	dispCfg.ResponseTime = 0
	dispCfg.Gamma = 1
	dLin, _ := display.New(dispCfg)
	for _, f := range []*frame.Frame{plus, minus, plus, minus} {
		dLin.Push(f)
	}

	// Short exposure within one refresh interval: chessboard visible.
	cfg.Exposure = 0.004
	camShort, _ := New(cfg)
	short := camShort.Capture(dLin, 0.001, 0)
	if e := frame.HighFreqEnergy(short, 1); e < 8 {
		t.Fatalf("short exposure chessboard energy = %v, want >= 8", e)
	}
	// Exposure spanning exactly one pair: chessboard cancels.
	cfg.Exposure = 2.0 / 120
	camLong, _ := New(cfg)
	long := camLong.Capture(dLin, 0, 0)
	if e := frame.HighFreqEnergy(long, 1); e > 1 {
		t.Fatalf("pair-spanning exposure energy = %v, want <= 1", e)
	}
	_ = d
}

func TestCaptureSequenceSpacing(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(8, 8, 100))
	cam, _ := New(quietConfig(8, 8))
	frames, times := cam.CaptureSequence(d, 0.5, 3)
	if len(frames) != 3 || len(times) != 3 {
		t.Fatalf("got %d frames, %d times", len(frames), len(times))
	}
	if math.Abs(times[1]-times[0]-cam.FramePeriod()) > 1e-12 {
		t.Fatalf("spacing %v, want %v", times[1]-times[0], cam.FramePeriod())
	}
	if times[0] != 0.5 {
		t.Fatalf("start %v, want 0.5", times[0])
	}
}

func TestBlurSoftensEdges(t *testing.T) {
	f := frame.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			f.Set(x, y, 255)
		}
	}
	d := testDisplay(t, f)
	cfgSharp := quietConfig(32, 32)
	cfgBlur := quietConfig(32, 32)
	cfgBlur.BlurRadius = 2
	camSharp, _ := New(cfgSharp)
	camBlur, _ := New(cfgBlur)
	sharp := camSharp.Capture(d, 0, 0)
	blur := camBlur.Capture(d, 0, 0)
	eSharp := frame.HighFreqEnergy(sharp, 2)
	eBlur := frame.HighFreqEnergy(blur, 2)
	if eBlur >= eSharp {
		t.Fatalf("blur did not reduce edge energy: %v >= %v", eBlur, eSharp)
	}
}

func TestCaptureQuantized(t *testing.T) {
	d := testDisplay(t, frame.NewFilled(8, 8, 100))
	cfg := quietConfig(8, 8)
	cfg.NoiseSigma = 2
	cam, _ := New(cfg)
	cap := cam.Capture(d, 0, 0)
	for i, v := range cap.Pix {
		if v != float32(math.Trunc(float64(v))) || v < 0 || v > 255 {
			t.Fatalf("pixel %d = %v not an 8-bit integer", i, v)
		}
	}
}

func TestCapturePanicsOnEmptyDisplay(t *testing.T) {
	d := testDisplay(t)
	cam, _ := New(quietConfig(8, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("capture of empty display did not panic")
		}
	}()
	cam.Capture(d, 0, 0)
}
