package camera

import (
	"math"
	"testing"

	"inframe/internal/display"
	"inframe/internal/frame"
)

func TestCropValidation(t *testing.T) {
	cfg := DefaultConfig(32, 32)
	cfg.CropX0, cfg.CropY0 = -8, -8 // overscan is legal
	cfg.CropW, cfg.CropH = 48, 48
	if err := cfg.Validate(); err != nil {
		t.Fatalf("overscan rejected: %v", err)
	}
	cfg = DefaultConfig(32, 32)
	cfg.CropW = 10 // height missing
	if err := cfg.Validate(); err == nil {
		t.Fatal("half-specified crop accepted")
	}
}

// TestOverscanPadsBlack: a window larger than the display sees the display
// centered on black.
func TestOverscanPadsBlack(t *testing.T) {
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0
	dcfg.Gamma = 1
	d, err := display.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Push(frame.NewFilled(32, 32, 200)); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(48, 48)
	cfg.ReadoutTime = 0
	cfg.NoiseSigma = 0
	cfg.BlurRadius = 0
	cfg.Gamma = 1
	cfg.CropX0, cfg.CropY0, cfg.CropW, cfg.CropH = -8, -8, 48, 48
	cam, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := cam.Capture(d, 0.001, 0)
	if v := cap.At(2, 2); v != 0 {
		t.Fatalf("border pixel = %v, want black", v)
	}
	if v := float64(cap.At(24, 24)); math.Abs(v-200) > 2 {
		t.Fatalf("display center = %v, want ~200", v)
	}
}

// TestCropFramesWindow: a camera cropped to the display's bright quadrant
// sees only that content, scaled onto the full sensor.
func TestCropFramesWindow(t *testing.T) {
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0
	dcfg.Gamma = 1
	d, err := display.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	f := frame.New(64, 64)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, 200) // bright top-left quadrant
		}
	}
	if err := d.Push(f); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(32, 32)
	cfg.ReadoutTime = 0
	cfg.NoiseSigma = 0
	cfg.BlurRadius = 0
	cfg.Gamma = 1
	cfg.CropX0, cfg.CropY0, cfg.CropW, cfg.CropH = 0, 0, 32, 32
	cam, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := cam.Capture(d, 0.001, 0)
	if cap.W != 32 || cap.H != 32 {
		t.Fatalf("capture %dx%d", cap.W, cap.H)
	}
	// Whole sensor sees the bright quadrant.
	if m := cap.Mean(); math.Abs(m-200) > 2 {
		t.Fatalf("cropped capture mean %.1f, want ~200", m)
	}
	// Uncropped camera sees the mixed scene (~50 mean).
	cfg2 := cfg
	cfg2.CropW, cfg2.CropH = 0, 0
	cam2, _ := New(cfg2)
	full := cam2.Capture(d, 0.001, 0)
	if m := full.Mean(); math.Abs(m-50) > 3 {
		t.Fatalf("full capture mean %.1f, want ~50", m)
	}
}
