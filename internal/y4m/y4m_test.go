package y4m

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"inframe/internal/frame"
)

func testFrames(n int) []*frame.RGB {
	out := make([]*frame.RGB, n)
	for i := range out {
		f := frame.NewRGB(16, 12)
		for y := 0; y < 12; y++ {
			for x := 0; x < 16; x++ {
				f.Set(x, y, float32((x*16+i*30)%256), float32((y*20)%256), float32((x*y+i)%256))
			}
		}
		out[i] = f
	}
	return out
}

func TestHeaderValidate(t *testing.T) {
	good := Header{W: 16, H: 12, FPSNum: 30, FPSDen: 1, ColorSpace: C444}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Header{
		{W: 0, H: 12, FPSNum: 30, FPSDen: 1},
		{W: 16, H: 12, FPSNum: 0, FPSDen: 1},
		{W: 16, H: 12, FPSNum: 30, FPSDen: 0},
		{W: 15, H: 12, FPSNum: 30, FPSDen: 1, ColorSpace: C420}, // odd width
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad header %d validated", i)
		}
	}
	if math.Abs(good.FPS()-30) > 1e-12 {
		t.Fatalf("FPS = %v", good.FPS())
	}
}

func TestRoundTripC444(t *testing.T) {
	frames := testFrames(3)
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, Header{W: 16, H: 12, FPSNum: 120, FPSDen: 1, ColorSpace: C444})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := wr.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "YUV4MPEG2 W16 H12 F120:1 Ip A1:1 C444\n") {
		t.Fatalf("header line wrong: %q", buf.String()[:40])
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header.W != 16 || rd.Header.H != 12 || rd.Header.FPS() != 120 {
		t.Fatalf("parsed header %+v", rd.Header)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d frames", len(got))
	}
	// 8-bit YCbCr quantization costs a little; stay within 2 levels.
	for i := range frames {
		for j := range frames[i].R {
			if math.Abs(float64(frames[i].R[j]-got[i].R[j])) > 2.5 ||
				math.Abs(float64(frames[i].G[j]-got[i].G[j])) > 2.5 ||
				math.Abs(float64(frames[i].B[j]-got[i].B[j])) > 2.5 {
				t.Fatalf("frame %d pixel %d drifted: (%v,%v,%v) -> (%v,%v,%v)",
					i, j, frames[i].R[j], frames[i].G[j], frames[i].B[j],
					got[i].R[j], got[i].G[j], got[i].B[j])
			}
		}
	}
}

func TestRoundTripC420LumaExact(t *testing.T) {
	// C420 subsamples chroma but the luma plane must survive exactly
	// (within quantization) — it is the plane InFrame's data lives on.
	frames := testFrames(2)
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, Header{W: 16, H: 12, FPSNum: 30, FPSDen: 1, ColorSpace: C420})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := wr.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	wr.Flush()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		y, _, _, err := rd.ReadFrameYCbCr()
		if err != nil {
			t.Fatal(err)
		}
		want := frames[i].Luma()
		for j := range want.Pix {
			if math.Abs(float64(want.Pix[j]-y.Pix[j])) > 1.0 {
				t.Fatalf("frame %d luma pixel %d drifted %v -> %v",
					i, j, want.Pix[j], y.Pix[j])
			}
		}
	}
}

func TestWriteLumaFrame(t *testing.T) {
	var buf bytes.Buffer
	wr, _ := NewWriter(&buf, Header{W: 8, H: 8, FPSNum: 30, FPSDen: 1, ColorSpace: C444})
	if err := wr.WriteLumaFrame(frame.NewFilled(8, 8, 127)); err != nil {
		t.Fatal(err)
	}
	wr.Flush()
	rd, _ := NewReader(&buf)
	got, err := rd.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	r, g, b := got.At(4, 4)
	if math.Abs(float64(r)-127) > 1.5 || math.Abs(float64(g)-127) > 1.5 || math.Abs(float64(b)-127) > 1.5 {
		t.Fatalf("gray frame came back (%v,%v,%v)", r, g, b)
	}
}

func TestWriterSizeCheck(t *testing.T) {
	var buf bytes.Buffer
	wr, _ := NewWriter(&buf, Header{W: 8, H: 8, FPSNum: 30, FPSDen: 1, ColorSpace: C444})
	if err := wr.WriteFrame(frame.NewRGB(4, 4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a y4m\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewReader(strings.NewReader("YUV4MPEG2 W16 H12 F30:1 C999\n")); err == nil {
		t.Fatal("unknown colorspace accepted")
	}
	if _, err := NewReader(strings.NewReader("YUV4MPEG2 W16 H12 Fbogus\n")); err == nil {
		t.Fatal("bad frame rate accepted")
	}
	// Truncated frame payload.
	rd, err := NewReader(strings.NewReader("YUV4MPEG2 W4 H4 F30:1 C444\nFRAME\nshort"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadFrame(); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameEOF(t *testing.T) {
	var buf bytes.Buffer
	wr, _ := NewWriter(&buf, Header{W: 8, H: 8, FPSNum: 30, FPSDen: 1, ColorSpace: C444})
	wr.WriteLumaFrame(frame.NewFilled(8, 8, 10))
	wr.Flush()
	rd, _ := NewReader(&buf)
	if _, err := rd.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadFrame(); !errors.Is(err, ErrNoMoreFrames) {
		t.Fatalf("err = %v, want ErrNoMoreFrames", err)
	}
}

func TestDefaultColorspaceIs420(t *testing.T) {
	rd, err := NewReader(strings.NewReader("YUV4MPEG2 W4 H4 F25:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header.ColorSpace != C420 {
		t.Fatalf("default colorspace = %v", rd.Header.ColorSpace)
	}
	if rd.Header.FPS() != 25 {
		t.Fatalf("FPS = %v", rd.Header.FPS())
	}
}
