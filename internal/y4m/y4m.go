// Package y4m reads and writes the YUV4MPEG2 (.y4m) uncompressed video
// format, the lingua franca of video tooling (ffmpeg, mpv, x264 all speak
// it). It lets the InFrame pipeline ingest real clips as primary-channel
// content and emit multiplexed sequences that standard players render at a
// controlled frame rate — the role DirectX playback serves in the paper's
// C# prototype.
//
// Supported colorspaces: C444 (full chroma) and C420 (2×2 subsampled,
// JPEG-style siting), 8-bit.
package y4m

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"inframe/internal/frame"
)

// ColorSpace enumerates the supported chroma layouts.
type ColorSpace int

const (
	// C444 stores full-resolution chroma planes.
	C444 ColorSpace = iota
	// C420 stores 2×2-subsampled chroma planes (C420jpeg siting).
	C420
)

// String implements fmt.Stringer with the Y4M header tag.
func (c ColorSpace) String() string {
	switch c {
	case C444:
		return "C444"
	case C420:
		return "C420jpeg"
	default:
		return fmt.Sprintf("ColorSpace(%d)", int(c))
	}
}

// Header describes a Y4M stream.
type Header struct {
	W, H       int
	FPSNum     int
	FPSDen     int
	ColorSpace ColorSpace
}

// FPS returns the frame rate as a float.
func (h Header) FPS() float64 { return float64(h.FPSNum) / float64(h.FPSDen) }

// Validate reports whether the header is usable.
func (h Header) Validate() error {
	if h.W <= 0 || h.H <= 0 {
		return fmt.Errorf("y4m: invalid size %dx%d", h.W, h.H)
	}
	if h.FPSNum <= 0 || h.FPSDen <= 0 {
		return fmt.Errorf("y4m: invalid frame rate %d:%d", h.FPSNum, h.FPSDen)
	}
	if h.ColorSpace == C420 && (h.W%2 != 0 || h.H%2 != 0) {
		return fmt.Errorf("y4m: C420 requires even dimensions, got %dx%d", h.W, h.H)
	}
	return nil
}

// ErrNoMoreFrames is returned by Reader.ReadFrame at end of stream.
var ErrNoMoreFrames = errors.New("y4m: no more frames")

// Writer emits a Y4M stream.
type Writer struct {
	w      *bufio.Writer
	header Header
	wrote  bool
}

// NewWriter prepares a writer; the header goes out with the first frame.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &Writer{w: bufio.NewWriter(w), header: h}, nil
}

// WriteFrame appends one color frame, converting to Y'CbCr.
func (wr *Writer) WriteFrame(f *frame.RGB) error {
	if f.W != wr.header.W || f.H != wr.header.H {
		return fmt.Errorf("y4m: frame %dx%d does not match header %dx%d",
			f.W, f.H, wr.header.W, wr.header.H)
	}
	if !wr.wrote {
		fmt.Fprintf(wr.w, "YUV4MPEG2 W%d H%d F%d:%d Ip A1:1 %s\n",
			wr.header.W, wr.header.H, wr.header.FPSNum, wr.header.FPSDen, wr.header.ColorSpace)
		wr.wrote = true
	}
	if _, err := wr.w.WriteString("FRAME\n"); err != nil {
		return err
	}
	y, cb, cr := f.YCbCr()
	if err := writePlane(wr.w, y, 1); err != nil {
		return err
	}
	sub := 1
	if wr.header.ColorSpace == C420 {
		sub = 2
	}
	if err := writePlane(wr.w, cb, sub); err != nil {
		return err
	}
	return writePlane(wr.w, cr, sub)
}

// WriteLumaFrame appends a grayscale frame (neutral chroma).
func (wr *Writer) WriteLumaFrame(y *frame.Frame) error {
	return wr.WriteFrame(frame.FromLuma(y))
}

// Flush finishes the stream.
func (wr *Writer) Flush() error { return wr.w.Flush() }

// writePlane emits a plane quantized to bytes, optionally box-subsampled.
func writePlane(w *bufio.Writer, p *frame.Frame, sub int) error {
	if sub == 1 {
		for _, v := range p.Pix {
			if err := w.WriteByte(quantByte(v)); err != nil {
				return err
			}
		}
		return nil
	}
	for y := 0; y < p.H; y += sub {
		for x := 0; x < p.W; x += sub {
			var sum float32
			for dy := 0; dy < sub; dy++ {
				for dx := 0; dx < sub; dx++ {
					sum += p.Pix[(y+dy)*p.W+x+dx]
				}
			}
			if err := w.WriteByte(quantByte(sum / float32(sub*sub))); err != nil {
				return err
			}
		}
	}
	return nil
}

func quantByte(v float32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v + 0.5)
}

// Reader consumes a Y4M stream.
type Reader struct {
	r      *bufio.Reader
	Header Header
}

// NewReader parses the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("y4m: reading header: %w", err)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "\n"))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("y4m: not a YUV4MPEG2 stream")
	}
	h := Header{FPSNum: 30, FPSDen: 1, ColorSpace: C420}
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case 'W':
			h.W, err = strconv.Atoi(f[1:])
		case 'H':
			h.H, err = strconv.Atoi(f[1:])
		case 'F':
			parts := strings.SplitN(f[1:], ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("y4m: bad frame rate %q", f)
			}
			if h.FPSNum, err = strconv.Atoi(parts[0]); err == nil {
				h.FPSDen, err = strconv.Atoi(parts[1])
			}
		case 'C':
			switch f[1:] {
			case "444":
				h.ColorSpace = C444
			case "420", "420jpeg", "420mpeg2", "420paldv":
				h.ColorSpace = C420
			default:
				return nil, fmt.Errorf("y4m: unsupported colorspace %q", f)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("y4m: parsing %q: %w", f, err)
		}
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &Reader{r: br, Header: h}, nil
}

// ReadFrameYCbCr returns the next frame's planes at full resolution
// (chroma upsampled for C420), or ErrNoMoreFrames at end of stream. The Y
// plane is bit-exact with the stream — the property InFrame's luma-domain
// decoding relies on.
func (rd *Reader) ReadFrameYCbCr() (y, cb, cr *frame.Frame, err error) {
	line, err := rd.r.ReadString('\n')
	if err == io.EOF && line == "" {
		return nil, nil, nil, ErrNoMoreFrames
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("y4m: reading frame marker: %w", err)
	}
	if !strings.HasPrefix(line, "FRAME") {
		return nil, nil, nil, fmt.Errorf("y4m: expected FRAME marker, got %q", strings.TrimSpace(line))
	}
	w, h := rd.Header.W, rd.Header.H
	y, err = readPlane(rd.r, w, h)
	if err != nil {
		return nil, nil, nil, err
	}
	cw, ch := w, h
	if rd.Header.ColorSpace == C420 {
		cw, ch = w/2, h/2
	}
	cb, err = readPlane(rd.r, cw, ch)
	if err != nil {
		return nil, nil, nil, err
	}
	cr, err = readPlane(rd.r, cw, ch)
	if err != nil {
		return nil, nil, nil, err
	}
	if rd.Header.ColorSpace == C420 {
		cb = frame.Resample(cb, w, h)
		cr = frame.Resample(cr, w, h)
	}
	return y, cb, cr, nil
}

// ReadFrame returns the next frame as RGB, or ErrNoMoreFrames at end of
// stream. Saturated colors may clamp slightly under C420 chroma
// upsampling; use ReadFrameYCbCr for bit-exact luma.
func (rd *Reader) ReadFrame() (*frame.RGB, error) {
	y, cb, cr, err := rd.ReadFrameYCbCr()
	if err != nil {
		return nil, err
	}
	return frame.RGBFromYCbCr(y, cb, cr)
}

// ReadAll drains the stream into a slice of frames.
func (rd *Reader) ReadAll() ([]*frame.RGB, error) {
	var out []*frame.RGB
	for {
		f, err := rd.ReadFrame()
		if errors.Is(err, ErrNoMoreFrames) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}

func readPlane(r *bufio.Reader, w, h int) (*frame.Frame, error) {
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("y4m: reading plane: %w", err)
	}
	p := frame.New(w, h)
	for i, b := range buf {
		p.Pix[i] = float32(b)
	}
	return p, nil
}
