// Package fixed holds the int32 fixed-point kernels of the InFrame hot
// path: the float→uint8 quantizer, the camera's gamma-encode lookup table
// and the demultiplexer's integer box-window energy primitives. The
// pipeline keeps its float32 frame representation (see package frame);
// what moves to integer arithmetic is the per-pixel inner loops, where
// transcendental calls (math.Pow, math.Round) and float rounding dominated
// the EndToEnd profile.
//
// Two cutover classes exist, and DESIGN.md §5j keeps the ledger:
//
//   - Proven bit-identical: Round8 reproduces the math.Round-based
//     reference exactly over its whole domain (the proof is in the Round8
//     doc comment and pinned by TestFixedPointBitIdentity).
//   - Re-pinned: the Q16 gamma LUT (Gamma) and the integer window-sum
//     energy kernel are *exact integer* or *bounded-error* replacements
//     whose outputs differ from the float reference in the last bits; the
//     golden baselines were re-pinned once, with the error-bound argument
//     recorded in DESIGN.md §5j.
//
// Q-format. Kernels use Q16 (16 fractional bits) in int32: pixel values
// live in [0, 255], so Q16 magnitudes stay below 2^24 and every
// interpolation product fits int32 with headroom (the //range contracts
// below make the bounds checkable by the intrange analyzer).
package fixed

import "math"

// Round8 converts a float32 sample to its nearest uint8, saturating to
// [0, 255]: the fixed-point replacement for the
// math.Round-then-clamp reference (refRound8).
//
// Bit-identity argument: for x = float64(v),
//
//   - x ≤ 0, or NaN: the reference rounds to a non-positive value (or
//     propagates NaN into a conversion the Go spec leaves undefined) and
//     clamps to 0; returning 0 is exact for every defined case.
//   - 0 < x < 254.5: math.Round is half-away-from-zero, which for
//     positive x equals floor(x+0.5); x+0.5 is computed in float64 where
//     every float32-representable x keeps the sum either exact or, for
//     subnormal x, rounded to exactly 0.5 — truncation (the int32
//     conversion) of a positive value is floor, so int32(x+0.5) equals
//     the reference on all of (0, 254.5).
//   - x ≥ 254.5: the reference rounds half away from zero to ≥ 255 and
//     clamps; returning 255 matches (and keeps x+0.5 from ever being
//     converted out of int32 range for huge inputs).
func Round8(v float32) uint8 {
	x := float64(v)
	if !(x > 0) {
		return 0
	}
	if x >= 254.5 {
		return 255
	}
	return uint8(int32(x + 0.5))
}

// refRound8 is the float reference quantizer Round8 replaced, kept for the
// bit-identity tests.
func refRound8(v float32) uint8 {
	q := math.Round(float64(v))
	if q < 0 {
		q = 0
	} else if q > 255 {
		q = 255
	}
	//lint:ignore clamp q is saturated to [0,255] by the branches above; this is the reference the quant helpers are proven against
	return uint8(q)
}

// qBits is the fixed-point fraction width: Q16 in int32.
const qBits = 16

// gammaTableBits sizes the two gamma tables at 2^12 intervals each.
const gammaTableBits = 12

// gammaFineMax is the upper edge of the fine table's domain: the gamma
// curve's slope is unbounded at 0, so [0, 16) gets a 16× denser table.
const gammaFineMax = 16

// Gamma is a two-level Q16 lookup table for the camera ISP's gamma encode
// 255·(v/255)^(1/γ), replacing a per-pixel math.Pow. The coarse table
// spans [0, 256) at 1/16 steps; the fine table spans [0, 16) at 1/256
// steps, where the curve bends hardest. Between entries the kernel
// interpolates linearly in integer Q16.
//
// Error bound (γ = 2.2, the worst supported curvature in practice): the
// linear-interpolation error of a concave curve over a step h is at most
// |f”|·h²/8. On [16, 256) with h = 1/16 the error stays below 0.003
// drive units; on [1/256, 16) with h = 1/256 below 0.05; on the first
// fine interval [0, 1/256), where the derivative diverges, the chord
// deviates from the curve by at most 0.42 drive units — all well inside
// the camera model's read noise (σ = 2.5) and the ±0.5 ADC quantization
// that follow. The input truncation to Q16 adds at most 2^-16 · slope,
// bounded by the same first-interval term. DESIGN.md §5j records why this
// is a re-pin, not a bit-identical cutover.
type Gamma struct {
	invG float64
	// coarse[i] is Q16 of encode(i/16), i in [0, 4096].
	coarse [1<<gammaTableBits + 1]int32
	// fine[i] is Q16 of encode(i/256), i in [0, 4096].
	fine [1<<gammaTableBits + 1]int32
}

// NewGamma builds the encode table for exponent gamma (> 0).
func NewGamma(gamma float64) *Gamma {
	g := &Gamma{invG: 1 / gamma}
	for i := range g.coarse {
		v := float64(i) / 16
		//lint:ignore hotalloc table construction runs once per camera, not per pixel
		g.coarse[i] = int32(math.Round(255 * math.Pow(v/255, g.invG) * (1 << qBits))) //lint:ignore intrange the encode curve maps [0,255]→[0,255], so the Q16 node value is bounded by 255·2^16 < 2^24
	}
	for i := range g.fine {
		v := float64(i) / 256
		//lint:ignore hotalloc table construction runs once per camera, not per pixel
		g.fine[i] = int32(math.Round(255 * math.Pow(v/255, g.invG) * (1 << qBits))) //lint:ignore intrange same bound: curve node values stay below 2^24
	}
	return g
}

// refEncode is the float math.Pow reference the table replaces, kept for
// the error-bound tests.
func (g *Gamma) refEncode(v float32) float32 {
	if v <= 0 {
		return 0
	}
	return float32(255 * math.Pow(float64(v)/255, g.invG))
}

// Encode8 gamma-encodes one linear sample on the 0..255 scale. Inputs at
// or above 255 fall back to the exact math.Pow (the curve passes through
// (255, 255) exactly, and the table does not extend past its domain);
// non-positive and NaN inputs encode to 0, as in the reference.
func (g *Gamma) Encode8(v float32) float32 {
	if !(v > 0) {
		return 0
	}
	if v >= 255 {
		//lint:ignore floateq 255 is exactly representable and the guard above already holds; equality selects the exact curve endpoint
		if v == 255 {
			return 255
		}
		return g.refEncode(v)
	}
	// v < 255 ⇒ x < 255·2^16 < 2^24: exact int32, truncated to Q16.
	x := int32(v * (1 << qBits))
	var q int32
	if x < gammaFineMax<<qBits {
		// Fine table: node step 1/256 = 2^8 in Q16.
		i := x >> 8
		f := x & (1<<8 - 1)
		l0 := g.fine[i]
		q = l0 + ((g.fine[i+1]-l0)*f)>>8 //lint:ignore intrange table nodes lie in [0, 255·2^16] and adjacent nodes differ by < 2^16, so the interpolation product stays below 2^24
	} else {
		// Coarse table: node step 1/16 = 2^12 in Q16.
		i := x >> gammaTableBits
		f := x & (1<<gammaTableBits - 1)
		l0 := g.coarse[i]
		q = l0 + ((g.coarse[i+1]-l0)*f)>>gammaTableBits //lint:ignore intrange same node bounds as the fine path: the Q16 interpolation product stays below 2^28
	}
	return float32(q) * (1.0 / (1 << qBits))
}

// IsIntegral8 reports whether every sample is an integer in [0, 255] —
// the precondition for the exact integer window-sum kernels (quantized
// captures satisfy it; impaired frames with analog gain generally do not).
func IsIntegral8(pix []float32) bool {
	for _, v := range pix {
		if !(v >= 0 && v <= 255) {
			return false
		}
		//lint:ignore floateq integrality is an exact property: v is integral iff it round-trips through int32
		if v != float32(int32(v)) {
			return false
		}
	}
	return true
}

// WindowSums computes, for every pixel of an integral-valued w×h plane,
// the (2r+1)×(2r+1) replicate-padded box window sum into sums (len w·h),
// as two separable integer sliding passes (rows, then columns in place
// through the col scratch, len ≥ h). The result is the exact integer
// numerator of the box blur the float demodulator computed with rounding:
// sums[i] / (2r+1)² is the blurred plane.
//
//range:r 1,128
func WindowSums(pix []float32, w, h, r int, sums, col []int32) {
	// Row pass: sums[y*w+x] = Σ pix[y*w+clamp(x-r..x+r)].
	for y := 0; y < h; y++ {
		row := pix[y*w : (y+1)*w]
		out := sums[y*w : (y+1)*w]
		var s int32
		for i := -r; i <= r; i++ {
			s += int32(row[clampIdx(i, w)])
		}
		for x := 0; x < w; x++ {
			out[x] = s
			s += int32(row[clampIdx(x+r+1, w)]) - int32(row[clampIdx(x-r, w)])
		}
	}
	// Column pass over the row sums, in place: the column is copied into
	// the scratch first, so writing sums[y*w+x] never clobbers a value the
	// sliding window still needs.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = sums[y*w+x]
		}
		var s int32
		for i := -r; i <= r; i++ {
			s += col[clampIdx(i, h)]
		}
		for y := 0; y < h; y++ {
			sums[y*w+x] = s
			s += col[clampIdx(y+r+1, h)] - col[clampIdx(y-r, h)]
		}
	}
}

// clampIdx clamps a window coordinate into [0, n): replicate padding,
// matching frame.BoxBlurInto's edge handling.
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// BilinearQ16 interpolates one bilinear tap in exact integer Q16: v00..v11
// are the four integral pixel taps (top-left, top-right, bottom-left,
// bottom-right, each in [0, 255] under the IsIntegral8 precondition) and
// wx, wy are the Q16 fractional weights. The result is the Q16 sample;
// callers convert with float32(q)·2⁻¹⁶, which is exact.
//
// Overflow argument: each horizontal lerp v0·2¹⁶ + (v1−v0)·wx is a convex
// combination in [0, 255·2¹⁶] with every product below 255·2¹⁶ < 2²⁴, so it
// fits int32; the vertical blend's product (bot−top)·wy reaches 255·2³² and
// runs in int64 before the shift brings it back under 2²⁴.
//
//range:wx 0,65536
//range:wy 0,65536
func BilinearQ16(v00, v01, v10, v11, wx, wy int32) int32 {
	top := v00<<qBits + (v01-v00)*wx
	bot := v10<<qBits + (v11-v10)*wx //lint:ignore intrange taps are in [0,255] under the IsIntegral8 precondition, so each Q16 lerp product stays below 255·2^16 < 2^24
	return top + int32((int64(bot-top)*int64(wy))>>qBits)
}

// RowAbsEnergy accumulates Σ |pix[i]·scale − sums[i]| over one row span in
// exact integer arithmetic: the high-frequency chessboard energy numerator
// of the §3.3 detector, scaled by scale = (2r+1)². Each term is bounded by
// 255·scale (< 2^25 for r ≤ 128), so the int32 difference cannot wrap; the
// row accumulator is int64 so no row width can overflow it.
//
//range:scale 1,66049
func RowAbsEnergy(pix []float32, sums []int32, scale int32) int64 {
	var acc int64
	for i, v := range pix {
		//lint:ignore intrange callers guarantee IsIntegral8(pix), so v converts exactly within [0, 255]
		d := int32(v)*scale - sums[i] //lint:ignore intrange both terms are bounded by 255·scale ≤ 255·66049 < 2^25 under the IsIntegral8 precondition
		if d < 0 {
			//lint:ignore intrange |d| < 2^25 under the IsIntegral8 precondition, so the negation cannot hit the int32 minimum
			d = -d
		}
		acc += int64(d)
	}
	return acc
}
