package fixed

import (
	"math"
	"math/rand"
	"testing"
)

// adversarialSamples covers every rounding boundary of the 8-bit domain plus
// the specials the kernels must not mishandle: exact integers, exact halves,
// the nearest representable neighbours of each half, negatives, overflow,
// subnormals, infinities and NaN.
func adversarialSamples() []float32 {
	vals := []float32{
		0, float32(math.Copysign(0, -1)), 255, 255.0000001, 256, 1000,
		-1, -0.5, -255, 254.5, 255.5, 1e-45, 1e-38, 1e20, -1e20,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		1.0 / 3, 2.0 / 3, 100.0 / 7, 254.0 + 1.0/3,
	}
	for i := 0; i <= 255; i++ {
		v := float32(i)
		vals = append(vals, v, v+0.5, v-0.5, v+0.25, v-0.25,
			math.Nextafter32(v+0.5, 0), math.Nextafter32(v+0.5, 1000))
	}
	return vals
}

// TestFixedPointBitIdentity pins the proven-identical cutover class of
// DESIGN.md §5j: Round8 must agree with the math.Round reference on every
// defined input. NaN is the one input the reference leaves undefined (a
// float→int conversion of NaN); there only Round8's own contract (0) is
// checked.
func TestFixedPointBitIdentity(t *testing.T) {
	check := func(v float32) {
		t.Helper()
		if math.IsNaN(float64(v)) {
			if got := Round8(v); got != 0 {
				t.Fatalf("Round8(NaN) = %d, want 0", got)
			}
			return
		}
		if got, want := Round8(v), refRound8(v); got != want {
			t.Fatalf("Round8(%v) = %d, reference %d", v, got, want)
		}
	}
	for _, v := range adversarialSamples() {
		check(v)
	}
	// Dense sweep in 1/256 steps across and beyond the whole domain.
	for i := -2560; i <= 258*256; i++ {
		check(float32(i) / 256)
	}
	// Random float32 bit patterns: every finite value must still agree.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200000; i++ {
		v := math.Float32frombits(rng.Uint32())
		if math.IsNaN(float64(v)) {
			continue
		}
		check(v)
	}
}

// TestGammaErrorBound pins the re-pinned cutover class: the two-level Q16
// table must stay within the §5j interpolation bounds of the math.Pow
// reference on every supported curve, and must be exact at the endpoints.
func TestGammaErrorBound(t *testing.T) {
	for _, gamma := range []float64{1.8, 2.2, 2.4} {
		g := NewGamma(gamma)
		// The §5j bounds (0.42 / 0.05 / 0.003 plus truncation slack) hold for
		// curvature up to γ = 2.2; steeper curves diverge harder at 0, where
		// the analytic chord bound is encode(1/256)·max(t^(1/γ)−t) ≈ 0.78 for
		// γ = 2.4.
		first, fine, coarse := 0.47, 0.06, 0.01
		if gamma > 2.2 {
			first, fine = 0.85, 0.11
		}
		for i := 0; i <= 255*512; i++ {
			v := float32(i) / 512
			got := float64(g.Encode8(v))
			want := float64(g.refEncode(v))
			var bound float64
			switch x := float64(v); {
			case x < 1.0/256:
				bound = first // chord error where the derivative diverges
			case x < gammaFineMax:
				bound = fine // fine table, step 1/256
			default:
				bound = coarse // coarse table, step 1/16
			}
			if math.Abs(got-want) > bound {
				t.Fatalf("gamma %.1f: Encode8(%v) = %v, reference %v, bound %v",
					gamma, v, got, want, bound)
			}
		}
		if got := g.Encode8(255); got != 255 {
			t.Fatalf("gamma %.1f: Encode8(255) = %v, want exactly 255", gamma, got)
		}
		for _, v := range []float32{0, -1, -255, float32(math.NaN())} {
			if got := g.Encode8(v); got != 0 {
				t.Fatalf("gamma %.1f: Encode8(%v) = %v, want 0", gamma, v, got)
			}
		}
		// Above the table domain the exact reference takes over.
		for _, v := range []float32{255.5, 260, 1000} {
			if got, want := g.Encode8(v), g.refEncode(v); got != want {
				t.Fatalf("gamma %.1f: Encode8(%v) = %v, want reference %v", gamma, v, got, want)
			}
		}
	}
}

func TestIsIntegral8(t *testing.T) {
	if !IsIntegral8([]float32{0, 1, 127, 255}) {
		t.Fatal("integral plane rejected")
	}
	for _, bad := range [][]float32{
		{0.5}, {-1}, {256}, {float32(math.NaN())}, {float32(math.Inf(1))},
		{0, 255, 254.5},
	} {
		if IsIntegral8(bad) {
			t.Fatalf("non-integral plane %v accepted", bad)
		}
	}
	if !IsIntegral8(nil) {
		t.Fatal("empty plane should be trivially integral")
	}
}

// naiveWindowSum is the O(r²)-per-pixel reference for the separable kernel:
// the replicate-padded box window sum at (x, y).
func naiveWindowSum(pix []float32, w, h, r, x, y int) int32 {
	var s int32
	for dy := -r; dy <= r; dy++ {
		yy := clampIdx(y+dy, h)
		for dx := -r; dx <= r; dx++ {
			s += int32(pix[yy*w+clampIdx(x+dx, w)])
		}
	}
	return s
}

func integralPlanes(w, h int) map[string][]float32 {
	n := w * h
	all0 := make([]float32, n)
	all255 := make([]float32, n)
	edges := make([]float32, n)
	random := make([]float32, n)
	rng := rand.New(rand.NewSource(3))
	edgeVals := []float32{0, 255, 20, 235, 1, 254}
	for i := 0; i < n; i++ {
		all255[i] = 255
		edges[i] = edgeVals[i%len(edgeVals)]
		random[i] = float32(rng.Intn(256))
	}
	return map[string][]float32{"all0": all0, "all255": all255, "edges": edges, "random": random}
}

// TestWindowSumsMatchesNaive: the separable sliding-window kernel must equal
// the direct window sum exactly — integer arithmetic leaves no tolerance.
func TestWindowSumsMatchesNaive(t *testing.T) {
	const w, h = 23, 17
	for name, pix := range integralPlanes(w, h) {
		if !IsIntegral8(pix) {
			t.Fatalf("%s: fixture violates the kernel precondition", name)
		}
		for _, r := range []int{1, 2, 5, 8, 16} {
			sums := make([]int32, w*h)
			col := make([]int32, h)
			WindowSums(pix, w, h, r, sums, col)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if want := naiveWindowSum(pix, w, h, r, x, y); sums[y*w+x] != want {
						t.Fatalf("%s r=%d: sums[%d,%d] = %d, want %d", name, r, x, y, sums[y*w+x], want)
					}
				}
			}
		}
	}
}

// TestRowAbsEnergyMatchesNaive: the row kernel must equal the direct
// Σ|pix·scale − sums| in exact integer arithmetic.
func TestRowAbsEnergyMatchesNaive(t *testing.T) {
	const w, h = 23, 17
	for name, pix := range integralPlanes(w, h) {
		for _, r := range []int{1, 5, 128} {
			sums := make([]int32, w*h)
			col := make([]int32, h)
			WindowSums(pix, w, h, r, sums, col)
			side := int32(2*r + 1)
			scale := side * side
			for y := 0; y < h; y++ {
				row := pix[y*w : (y+1)*w]
				srow := sums[y*w : (y+1)*w]
				var want int64
				for i, v := range row {
					d := int64(int32(v))*int64(scale) - int64(srow[i])
					if d < 0 {
						d = -d
					}
					want += d
				}
				if got := RowAbsEnergy(row, srow, scale); got != want {
					t.Fatalf("%s r=%d row %d: RowAbsEnergy = %d, want %d", name, r, y, got, want)
				}
			}
		}
	}
}

// TestBilinearQ16MatchesFloat pins the warp kernel's tap against the float
// reference: corner weights are exact, and over seeded random taps and
// weights the Q16 result stays within one quantization step (2⁻¹⁶ weight
// resolution on 8-bit magnitudes keeps the Q16 error below 8 ULPs, i.e.
// well under 2⁻¹² drive units after the exact float conversion).
func TestBilinearQ16MatchesFloat(t *testing.T) {
	const qOne = 1 << qBits
	ref := func(v00, v01, v10, v11 int32, wx, wy float64) float64 {
		top := float64(v00) + (float64(v01)-float64(v00))*wx
		bot := float64(v10) + (float64(v11)-float64(v10))*wx
		return top + (bot-top)*wy
	}
	// Corner weights select taps exactly.
	corners := []struct {
		wx, wy int32
		want   func(v00, v01, v10, v11 int32) int32
	}{
		{0, 0, func(v00, _, _, _ int32) int32 { return v00 }},
		{qOne, 0, func(_, v01, _, _ int32) int32 { return v01 }},
		{0, qOne, func(_, _, v10, _ int32) int32 { return v10 }},
		{qOne, qOne, func(_, _, _, v11 int32) int32 { return v11 }},
	}
	taps := [][4]int32{{0, 0, 0, 0}, {255, 255, 255, 255}, {0, 255, 255, 0}, {17, 200, 3, 91}}
	for _, tp := range taps {
		for _, c := range corners {
			got := BilinearQ16(tp[0], tp[1], tp[2], tp[3], c.wx, c.wy)
			if want := c.want(tp[0], tp[1], tp[2], tp[3]) << qBits; got != want {
				t.Fatalf("taps %v weights (%d,%d): got %d, want %d", tp, c.wx, c.wy, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 20000; n++ {
		v00, v01 := int32(rng.Intn(256)), int32(rng.Intn(256))
		v10, v11 := int32(rng.Intn(256)), int32(rng.Intn(256))
		wx, wy := int32(rng.Intn(qOne+1)), int32(rng.Intn(qOne+1))
		got := float64(BilinearQ16(v00, v01, v10, v11, wx, wy)) / qOne
		want := ref(v00, v01, v10, v11, float64(wx)/qOne, float64(wy)/qOne)
		if math.Abs(got-want) > 1.0/(1<<12) {
			t.Fatalf("taps (%d,%d,%d,%d) weights (%d,%d): got %v, want %v",
				v00, v01, v10, v11, wx, wy, got, want)
		}
	}
}
