// Package detrng is the frozen registry of deterministic random-stream
// stages. Every seeded subsystem that derives per-item random streams —
// the channel fault injector (internal/impair) and the broadcast-fleet
// population sampler (internal/fleet) — keys each stream by
// (seed, stage, index) through the same splitmix64-style finalizer, so
// that enabling, disabling or reordering one consumer never shifts
// another consumer's stream, and nothing ever depends on worker identity
// or scheduling order.
//
// The Stage values below are part of the repository's determinism
// contract: renumbering one changes every seeded outcome downstream of
// it (the robustness matrix bounds, the fleet distribution pins, the
// EXPERIMENTS.md tables). They are therefore declared here, once, as
// explicit literals — never iota — and the stagekey analyzer
// (internal/analysis) enforces at lint time that every stream derivation
// in the tree keys off one of these constants: no inline literals, no
// arithmetic on stage values, no duplicate IDs within a domain.
//
// Stages are grouped into domains (one const block per consumer). IDs
// must be unique within a domain but may repeat across domains: an
// impair stack and a fleet population never share a seed, so their
// stream spaces cannot collide. The impair and fleet blocks preserve the
// exact values those packages shipped with (impair 1–4 since PR 5, fleet
// 1–7 since PR 6).
package detrng

import "math/rand"

// Stage identifies one random-stream family within a seeded domain. The
// stagekey analyzer requires every Stage-typed argument in the tree to
// be one of the registry constants declared in this package.
type Stage uint64

// Impair domain: the channel fault injector's per-capture streams
// (internal/impair). Values are frozen; see the package comment.
const (
	ImpairJitter Stage = 1
	ImpairDrop   Stage = 2
	ImpairDup    Stage = 3
	ImpairBurst  Stage = 4
	ImpairPose   Stage = 5
)

// Fleet domain: the broadcast-population sampler's per-receiver streams
// (internal/fleet). Values are frozen; see the package comment.
const (
	FleetSize       Stage = 1
	FleetStart      Stage = 2
	FleetExposure   Stage = 3
	FleetNoise      Stage = 4
	FleetProfile    Stage = 5
	FleetCamSeed    Stage = 6
	FleetImpairSeed Stage = 7
)

// Mix collapses one (seed, stage, index) cell to a stream seed with a
// splitmix64-style finalizer, so adjacent stages and adjacent indices
// land far apart in seed space. The arithmetic is bit-for-bit the
// finalizer impair.Stack and fleet.Population shipped with; changing any
// constant here changes every seeded outcome in the tree.
func Mix(seed int64, stage Stage, index int) int64 {
	h := uint64(seed) ^ uint64(stage)*0x9E3779B97F4A7C15
	h += uint64(index) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return int64(h)
}

// Rand returns the random stream of one (seed, stage, index) cell. Each
// call returns an independent generator positioned at the stream's
// start, so consuming one cell's stream never advances another's.
func Rand(seed int64, stage Stage, index int) *rand.Rand {
	return rand.New(rand.NewSource(Mix(seed, stage, index)))
}
