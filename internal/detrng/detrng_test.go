package detrng

import "testing"

// TestMixPinned freezes the splitmix64 finalizer: these values are the
// stream seeds the impair and fleet determinism contracts were measured
// against (robustness matrix bounds, fleet distribution pins). A failure
// here means every seeded outcome in the tree has silently shifted.
func TestMixPinned(t *testing.T) {
	cases := []struct {
		seed  int64
		stage Stage
		index int
		want  int64
	}{
		{0, 1, 0, 7893588036579047788},
		{0, 1, 1, 7207592892552679482},
		{42, 2, 7, 6755715404768474657},
		{-7, 4, 3, -5618624051753434498},
		{12345, 7, 99, -4357055306056311327},
	}
	for _, c := range cases {
		if got := Mix(c.seed, c.stage, c.index); got != c.want {
			t.Errorf("Mix(%d, %d, %d) = %d, want %d", c.seed, c.stage, c.index, got, c.want)
		}
	}
}

// TestMixSeparatesCells pins that adjacent cells (stage or index off by
// one) produce distinct stream seeds — the property that lets stages be
// toggled independently without shifting their neighbors.
func TestMixSeparatesCells(t *testing.T) {
	base := Mix(42, ImpairDrop, 7)
	if got := Mix(42, ImpairDup, 7); got == base {
		t.Error("adjacent stages collided")
	}
	if got := Mix(42, ImpairDrop, 8); got == base {
		t.Error("adjacent indices collided")
	}
	if got := Mix(43, ImpairDrop, 7); got == base {
		t.Error("adjacent seeds collided")
	}
}

// TestRandIsPositionedAtStreamStart pins that Rand returns a fresh
// generator per call: consuming one cell's stream must not advance
// another call's view of the same cell.
func TestRandIsPositionedAtStreamStart(t *testing.T) {
	a := Rand(9, FleetNoise, 3)
	_ = a.Float64()
	_ = a.Float64()
	b := Rand(9, FleetNoise, 3)
	c := Rand(9, FleetNoise, 3)
	if b.Float64() != c.Float64() {
		t.Error("two Rand calls for one cell diverged")
	}
}

// TestRegistryDomainsAreDense documents the frozen shape of the two
// domains: impair 1–5, fleet 1–7, no gaps. New stages append at the end
// of their domain; nothing is ever renumbered.
func TestRegistryDomainsAreDense(t *testing.T) {
	impair := []Stage{ImpairJitter, ImpairDrop, ImpairDup, ImpairBurst, ImpairPose}
	for i, s := range impair {
		if s != Stage(i+1) {
			t.Errorf("impair stage %d has ID %d, want %d", i, s, i+1)
		}
	}
	fleet := []Stage{FleetSize, FleetStart, FleetExposure, FleetNoise, FleetProfile, FleetCamSeed, FleetImpairSeed}
	for i, s := range fleet {
		if s != Stage(i+1) {
			t.Errorf("fleet stage %d has ID %d, want %d", i, s, i+1)
		}
	}
}
