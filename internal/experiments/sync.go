package experiments

import (
	"fmt"
	"io"

	"inframe/internal/barcode"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/metrics"
)

// SyncRow is one frame-synchronization accuracy point: how well the
// blind phase estimator recovers the data-frame boundary from captures
// alone, as a function of observation length.
type SyncRow struct {
	Captures int
	// PhaseErrorFrac is the circular phase error as a fraction of the
	// data frame period.
	PhaseErrorFrac float64
}

// SyncAccuracy runs the blind phase estimator against a known camera start
// offset on the gray video, for increasing observation windows.
func SyncAccuracy(s Setup) ([]SyncRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams(l)
	p.Tau = 12
	m, err := core.NewMultiplexer(p, VideoGray.source(l, s.Seed), core.NewRandomStream(l, s.Seed))
	if err != nil {
		return nil, err
	}
	cfg := s.channelConfig()
	// A camera locked at exactly 30 FPS samples only 3 distinct phases of
	// a τ=12 data period, limiting any blind estimator to ±1/6 period.
	// Real camera clocks free-run; a 0.3% skew sweeps the phase space.
	cfg.Camera.FPS = 29.9
	period := float64(p.Tau) / cfg.Display.RefreshHz
	truePhase := 0.37 * period
	cfg.CameraStart = truePhase
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return nil, err
	}
	var out []SyncRow
	for _, n := range []int{8, 16, 32, len(res.Captures)} {
		if n > len(res.Captures) {
			n = len(res.Captures)
		}
		est := core.EstimatePhase(res.Captures[:n], res.Times[:n], res.Exposure, period, 96)
		// The estimator reports where steady windows begin on the capture
		// clock; the transmitter's frames start at -truePhase on it.
		errFrac := core.PhaseError(est, 0, period) / period
		out = append(out, SyncRow{Captures: n, PhaseErrorFrac: errFrac})
	}
	return out, nil
}

// WriteSync prints the synchronization accuracy table.
func WriteSync(w io.Writer, rows []SyncRow) {
	fmt.Fprintf(w, "%8s | %12s\n", "captures", "phase-error")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d | %10.1f%%\n", r.Captures, 100*r.PhaseErrorFrac)
	}
}

// BaselineRow compares InFrame against the conventional dynamic barcode on
// the two axes the introduction argues about: data rate and how much of the
// screen the viewer loses.
type BaselineRow struct {
	System        string
	ThroughputBps float64
	// ScreenLoss is the fraction of display area unusable for video.
	ScreenLoss float64
	// Perceptible notes whether the data channel is visible to the viewer.
	Perceptible bool
}

// BarcodeComparison quantifies the §1 contention argument: a corner barcode
// achieves comparable raw rate only by surrendering screen area and showing
// a fully visible code, while InFrame rides invisibly on the full frame.
func BarcodeComparison(s Setup) ([]BaselineRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	// InFrame at the paper's sweet spot on the real video content.
	stats, _, _, err := runVariant(s, ThroughputSetting{VideoClip, 20, 12}, nil, nil)
	if err != nil {
		return nil, err
	}
	rep := metrics.Compute(stats, l, 12, 120)

	bc := barcode.DefaultConfig(l.FrameW, l.FrameH)
	if err := bc.Validate(); err != nil {
		return nil, err
	}
	return []BaselineRow{
		{
			System:        "InFrame (full frame)",
			ThroughputBps: rep.ThroughputBps,
			ScreenLoss:    0,
			Perceptible:   false,
		},
		{
			System:        "corner barcode",
			ThroughputBps: bc.RawBps(120),
			ScreenLoss:    bc.AreaFraction(l.FrameW, l.FrameH),
			Perceptible:   true,
		},
	}, nil
}

// WriteBaseline prints the barcode comparison.
func WriteBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintf(w, "%-22s | %11s %11s %12s\n", "system", "throughput", "screen-loss", "perceptible")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s | %8.2fkbps %10.1f%% %12v\n",
			r.System, r.ThroughputBps/1000, 100*r.ScreenLoss, r.Perceptible)
	}
}
