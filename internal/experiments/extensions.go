package experiments

import (
	"fmt"
	"io"

	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/metrics"
	"inframe/internal/register"
)

// RegistrationRow compares decoding under camera misregistration with and
// without the blind calibration pass (extension experiment: the paper's
// "how to multiplex on any display" practical-issues question, receiver
// side).
type RegistrationRow struct {
	Name string
	// NaiveCorrect / CalibCorrect are oracle-verified GOB ratios without
	// and with the energy-based registration.
	NaiveCorrect float64
	CalibCorrect float64
}

// Registration runs the gray-video pipeline through cameras that frame the
// display exactly, offset, and zoomed-in, decoding each capture set with
// and without blind calibration.
func Registration(s Setup) ([]RegistrationRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams(l)
	stream := core.NewRandomStream(l, s.Seed)
	capW, capH := s.captureSize()

	// The misregistered variants overscan: the camera films the whole
	// monitor plus dark surroundings, centered or shifted — the realistic
	// hand-held misalignments blind calibration can solve. (A camera that
	// crops the data grid partially offscreen loses those Blocks for good;
	// the receiver tolerates it but no calibration can recover them.)
	variants := []struct {
		name string
		crop func(*camera.Config)
	}{
		{"aligned", nil},
		{"overscan 115%", func(c *camera.Config) {
			mx, my := l.FrameW*3/40, l.FrameH*3/40
			c.CropX0, c.CropY0 = -mx, -my
			c.CropW, c.CropH = l.FrameW+2*mx, l.FrameH+2*my
		}},
		{"shifted overscan", func(c *camera.Config) {
			c.CropX0, c.CropY0 = -l.FrameW/8, -l.FrameH/30
			c.CropW, c.CropH = l.FrameW+l.FrameW/6, l.FrameH+l.FrameH/10
		}},
	}
	var out []RegistrationRow
	for _, v := range variants {
		m, err := core.NewMultiplexer(p, VideoGray.source(l, s.Seed), stream)
		if err != nil {
			return nil, err
		}
		cfg := s.channelConfig()
		if v.crop != nil {
			v.crop(&cfg.Camera)
		}
		nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
		res, err := channel.Simulate(m, nDisplay, cfg)
		if err != nil {
			return nil, err
		}
		nData := nDisplay / p.Tau
		evaluate := func(calib *core.CaptureMapping) (float64, error) {
			rcfg := core.DefaultReceiverConfig(p, capW, capH)
			rcfg.Exposure = cfg.Camera.Exposure
			rcfg.ReadoutTime = cfg.Camera.ReadoutTime
			rcfg.Calib = calib
			rcv, err := core.NewReceiver(rcfg)
			if err != nil {
				return 0, err
			}
			var stats metrics.GOBStats
			for d, fd := range rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData) {
				if fd.Captures == 0 {
					continue
				}
				stats.AddWithOracle(fd, stream.DataFrame(d))
			}
			if stats.Total == 0 {
				return 0, nil
			}
			return float64(stats.OracleCorrect) / float64(stats.Total), nil
		}
		naive, err := evaluate(nil)
		if err != nil {
			return nil, err
		}
		calib, err := register.Calibrate(l, res.Captures[:min(6, len(res.Captures))])
		calibCorrect := 0.0
		if err == nil {
			calibCorrect, err = evaluate(&calib)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, RegistrationRow{Name: v.name, NaiveCorrect: naive, CalibCorrect: calibCorrect})
	}
	return out, nil
}

// WriteRegistration prints the registration comparison.
func WriteRegistration(w io.Writer, rows []RegistrationRow) {
	fmt.Fprintf(w, "%-12s | %14s %14s\n", "camera", "naive-correct", "calib-correct")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | %13.1f%% %13.1f%%\n", r.Name, 100*r.NaiveCorrect, 100*r.CalibCorrect)
	}
}

// StreamingRow compares the batch (whole-run calibration) and streaming
// (trailing-window) receivers on the same capture set.
type StreamingRow struct {
	Receiver       string
	AvailableRatio float64
	ErrorRate      float64
}

// Streaming runs the sun-rise pipeline once and decodes it with both
// receiver disciplines. The streaming numbers exclude the warm-up window.
func Streaming(s Setup) ([]StreamingRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams(l)
	stream := core.NewRandomStream(l, s.Seed)
	m, err := core.NewMultiplexer(p, VideoClip.source(l, s.Seed), stream)
	if err != nil {
		return nil, err
	}
	cfg := s.channelConfig()
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return nil, err
	}
	capW, capH := s.captureSize()
	rcfg := core.DefaultReceiverConfig(p, capW, capH)
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	nData := nDisplay / p.Tau
	const warmup = 12

	// Batch.
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return nil, err
	}
	var batch metrics.GOBStats
	for d, fd := range rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData) {
		if fd.Captures == 0 || d < warmup {
			continue
		}
		batch.AddWithOracle(fd, stream.DataFrame(d))
	}

	// Streaming.
	sr, err := core.NewStreamingReceiver(rcfg, warmup)
	if err != nil {
		return nil, err
	}
	var online metrics.GOBStats
	for i := range res.Captures {
		for _, fd := range sr.Push(res.Captures[i], res.Times[i], res.Exposure) {
			if fd.Captures == 0 || fd.Index < warmup {
				continue
			}
			online.AddWithOracle(fd, stream.DataFrame(fd.Index))
		}
	}
	return []StreamingRow{
		{Receiver: "batch (whole run)", AvailableRatio: batch.AvailableRatio(), ErrorRate: batch.ErrorRate()},
		{Receiver: "streaming (window)", AvailableRatio: online.AvailableRatio(), ErrorRate: online.ErrorRate()},
	}, nil
}

// WriteStreaming prints the receiver-discipline comparison.
func WriteStreaming(w io.Writer, rows []StreamingRow) {
	fmt.Fprintf(w, "%-20s | %9s %8s\n", "receiver", "available", "err-rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s | %8.1f%% %7.2f%%\n", r.Receiver, 100*r.AvailableRatio, 100*r.ErrorRate)
	}
}
