package experiments

import (
	"fmt"
	"io"

	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/metrics"
	"inframe/internal/video"
)

// VideoKind names the paper's three test inputs.
type VideoKind string

const (
	// VideoGray is the pure light-gray input (RGB 180).
	VideoGray VideoKind = "Gray"
	// VideoDarkGray is the pure dark-gray input (RGB 127).
	VideoDarkGray VideoKind = "Dark-Gray"
	// VideoClip is the sun-rising clip.
	VideoClip VideoKind = "Video"
)

// VideoKinds lists the Fig. 7 inputs in the paper's order.
func VideoKinds() []VideoKind { return []VideoKind{VideoGray, VideoDarkGray, VideoClip} }

// source instantiates the named video at the layout's panel size.
func (v VideoKind) source(l core.Layout, seed int64) video.Source {
	switch v {
	case VideoGray:
		return video.Gray(l.FrameW, l.FrameH)
	case VideoDarkGray:
		return video.DarkGray(l.FrameW, l.FrameH)
	case VideoClip:
		return video.NewSunRise(l.FrameW, l.FrameH, seed)
	default:
		panic(fmt.Sprintf("experiments: unknown video %q", v))
	}
}

// ThroughputSetting is one Fig. 7 bar: a (video, δ, τ) combination.
type ThroughputSetting struct {
	Video VideoKind
	Delta float64
	Tau   int
}

// Fig7Settings returns the paper's twelve bars: three videos × four
// parameter settings (δ=20 with τ∈{10,12,14}, and δ=30 with τ=12).
func Fig7Settings() []ThroughputSetting {
	var out []ThroughputSetting
	for _, v := range VideoKinds() {
		for _, pt := range []struct {
			delta float64
			tau   int
		}{{20, 10}, {20, 12}, {20, 14}, {30, 12}} {
			out = append(out, ThroughputSetting{Video: v, Delta: pt.delta, Tau: pt.tau})
		}
	}
	return out
}

// ThroughputRow is one measured Fig. 7 bar.
type ThroughputRow struct {
	Setting ThroughputSetting
	Report  metrics.Report
	// Frames is the number of decoded data frames behind the numbers.
	Frames int
}

// RunSetting simulates one (video, δ, τ) bar end to end: multiplex, display,
// capture with the rolling-shutter camera, demultiplex, and account GOBs
// against the transmitted oracle.
func RunSetting(s Setup, setting ThroughputSetting) (ThroughputRow, error) {
	if err := s.Validate(); err != nil {
		return ThroughputRow{}, err
	}
	l, err := s.layout()
	if err != nil {
		return ThroughputRow{}, err
	}
	p := core.DefaultParams(l)
	p.Delta = setting.Delta
	p.Tau = setting.Tau
	stream := core.NewRandomStream(l, s.Seed)
	src := setting.Video.source(l, s.Seed)
	m, err := core.NewMultiplexer(p, src, stream)
	if err != nil {
		return ThroughputRow{}, err
	}
	cfg := s.channelConfig()
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return ThroughputRow{}, err
	}
	capW, capH := s.captureSize()
	rcfg := core.DefaultReceiverConfig(p, capW, capH)
	rcfg.RefreshHz = cfg.Display.RefreshHz
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return ThroughputRow{}, err
	}
	// Only data frames whose steady window the captures can cover.
	nData := nDisplay / p.Tau
	decoded := rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData)
	var stats metrics.GOBStats
	frames := 0
	for d, fd := range decoded {
		if fd.Captures == 0 {
			continue // tail frames past the last capture
		}
		stats.AddWithOracle(fd, stream.DataFrame(d))
		frames++
	}
	return ThroughputRow{
		Setting: setting,
		Report:  metrics.Compute(&stats, l, p.Tau, cfg.Display.RefreshHz),
		Frames:  frames,
	}, nil
}

// Throughput reproduces Fig. 7: every bar of the paper's throughput chart.
func Throughput(s Setup) ([]ThroughputRow, error) {
	settings := Fig7Settings()
	rows := make([]ThroughputRow, 0, len(settings))
	for _, st := range settings {
		row, err := RunSetting(s, st)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v δ=%v τ=%d: %w", st.Video, st.Delta, st.Tau, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteThroughput prints the Fig. 7 table: one row per bar with the paper's
// three reported quantities.
func WriteThroughput(w io.Writer, rows []ThroughputRow) {
	fmt.Fprintf(w, "%-10s %5s %4s | %11s %9s %8s | %9s %7s\n",
		"video", "delta", "tau", "throughput", "available", "err-rate", "raw", "frames")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %5.0f %4d | %9.2fkbps %8.1f%% %7.2f%% | %6.2fkbps %7d\n",
			r.Setting.Video, r.Setting.Delta, r.Setting.Tau,
			r.Report.ThroughputBps/1000, 100*r.Report.AvailableRatio,
			100*r.Report.ErrorRate, r.Report.RawBps/1000, r.Frames)
	}
}
