package experiments

import (
	"fmt"
	"io"

	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/impair"
	"inframe/internal/metrics"
)

// RobustnessScenario is one impairment setting of the robustness sweep: a
// named fault-injection configuration applied to the standard gray-video
// link.
type RobustnessScenario struct {
	Name   string
	Impair *impair.Config // nil = clean channel
}

// RobustnessScenarios returns the sweep's settings: the clean reference,
// every impairment family in isolation, and a kitchen-sink run stacking the
// lot. All randomness derives from the given seed.
func RobustnessScenarios(seed int64) []RobustnessScenario {
	return []RobustnessScenario{
		{Name: "clean", Impair: nil},
		{Name: "clock-drift", Impair: &impair.Config{Seed: seed, ClockDriftPPM: 500}},
		{Name: "start-jitter", Impair: &impair.Config{Seed: seed, StartJitter: 3e-4}},
		{Name: "capture-drop", Impair: &impair.Config{Seed: seed, DropRate: 0.15}},
		{Name: "capture-dup", Impair: &impair.Config{Seed: seed, DupRate: 0.15}},
		{Name: "ambient-ramp", Impair: &impair.Config{Seed: seed, AmbientRamp: 12}},
		{Name: "mains-flicker", Impair: &impair.Config{Seed: seed, FlickerAmp: 5, FlickerHz: 100}},
		{Name: "gain-drift", Impair: &impair.Config{Seed: seed, GainAmp: 0.04, GainHz: 0.7}},
		{Name: "noise-burst", Impair: &impair.Config{Seed: seed, BurstRate: 0.1, BurstSigma: 6}},
		// Even a short horizontal blur spans the capture-domain chessboard
		// period, so this scenario documents the channel's one true cliff:
		// camera motion erases the signal rather than degrading it.
		{Name: "motion-blur", Impair: &impair.Config{Seed: seed, MotionBlurLen: 3}},
		{Name: "occlusion", Impair: &impair.Config{Seed: seed, OccludeX: 0.1, OccludeY: 0.1, OccludeW: 0.25, OccludeH: 0.25, OccludeLevel: 30}},
		{Name: "kitchen-sink", Impair: &impair.Config{
			Seed: seed, ClockDriftPPM: 300, StartJitter: 1e-4,
			DropRate: 0.05, DupRate: 0.05, AmbientRamp: 6,
			FlickerAmp: 3, FlickerHz: 100, GainAmp: 0.02, GainHz: 0.7,
			BurstRate: 0.05, BurstSigma: 5,
		}},
	}
}

// RobustnessRow is one measured scenario of the sweep.
type RobustnessRow struct {
	Scenario string
	Report   metrics.Report
	Degrade  metrics.DegradationStats
	// Frames is the number of decoded data frames behind the numbers.
	Frames int
}

// RunRobustness measures one scenario: gray video at the default (δ, τ)
// through the impaired channel, decoded by a receiver with the
// graceful-degradation features on (capture gating plus windowed threshold
// recalibration), accounted against the transmitted oracle.
func RunRobustness(s Setup, sc RobustnessScenario) (RobustnessRow, error) {
	if err := s.Validate(); err != nil {
		return RobustnessRow{}, err
	}
	l, err := s.layout()
	if err != nil {
		return RobustnessRow{}, err
	}
	p := core.DefaultParams(l)
	stream := core.NewRandomStream(l, s.Seed)
	m, err := core.NewMultiplexer(p, VideoGray.source(l, s.Seed), stream)
	if err != nil {
		return RobustnessRow{}, err
	}
	cfg := s.channelConfig()
	cfg.Impair = sc.Impair
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return RobustnessRow{}, err
	}
	capW, capH := s.captureSize()
	rcfg := core.DefaultReceiverConfig(p, capW, capH)
	rcfg.RefreshHz = cfg.Display.RefreshHz
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	rcfg.Workers = s.Workers
	// Graceful degradation: gate out garbage captures, recalibrate the
	// per-Block thresholds in windows so lighting and gain drift track.
	rcfg.MinCaptureQuality = 0.1
	rcfg.RecalibrateEvery = 10
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return RobustnessRow{}, err
	}
	nData := nDisplay / p.Tau
	decoded, rep := rcv.DecodeCapturesReport(res.Captures, res.Times, res.Exposure, nData)
	var stats metrics.GOBStats
	var deg metrics.DegradationStats
	deg.AddReport(rep)
	frames := 0
	for d, fd := range decoded {
		if fd.Captures == 0 {
			continue // gap or tail frames past the last surviving capture
		}
		stats.AddWithOracle(fd, stream.DataFrame(d))
		frames++
	}
	return RobustnessRow{
		Scenario: sc.Name,
		Report:   metrics.Compute(&stats, l, p.Tau, cfg.Display.RefreshHz),
		Degrade:  deg,
		Frames:   frames,
	}, nil
}

// Robustness runs the full impairment sweep.
func Robustness(s Setup) ([]RobustnessRow, error) {
	scenarios := RobustnessScenarios(s.Seed)
	rows := make([]RobustnessRow, 0, len(scenarios))
	for _, sc := range scenarios {
		row, err := RunRobustness(s, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: robustness %s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteRobustness prints the impairment sweep: per scenario the paper-style
// channel figures plus the degradation accounting (gaps, resyncs, excluded
// captures, mean link quality).
func WriteRobustness(w io.Writer, rows []RobustnessRow) {
	fmt.Fprintf(w, "%-14s | %9s %8s | %6s %4s %7s %8s %7s\n",
		"scenario", "available", "err-rate", "frames", "gaps", "resyncs", "excluded", "quality")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s | %8.1f%% %7.2f%% | %6d %4d %7d %8d %7.2f\n",
			r.Scenario, 100*r.Report.AvailableRatio, 100*r.Report.ErrorRate,
			r.Frames, r.Degrade.GapFrames, r.Degrade.Resyncs,
			r.Degrade.ExcludedCaptures, r.Degrade.Quality.Mean())
	}
}
