package experiments

import (
	"fmt"
	"io"

	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/impair"
	"inframe/internal/metrics"
	"inframe/internal/register"
)

// PoseTilts is the camera-pose sweep: frontal through grazing, bracketing
// the tilt where the rigid receiver collapses so the table shows both the
// cliff and how far the projective registration pushes it out.
var PoseTilts = []float64{0, 5, 10, 15, 20, 30, 45, 60}

// PoseRow is one tilt setting of the sweep, decoded by both receivers over
// the identical capture set.
type PoseRow struct {
	TiltDeg float64
	// Rigid is the axis-aligned receiver: full-frame mapping, no
	// perspective model — the pre-homography decoder.
	Rigid metrics.Report
	// Registered is the receiver handed the blindly calibrated homography
	// (register.CalibrateProjective over the leading captures).
	Registered metrics.Report
	// Calibrated is false when the blind solve itself failed and the
	// registered decode fell back to the rigid path.
	Calibrated bool
	// Projective reports whether the registered decode actually rectified
	// (false at low tilt, where calibration collapses to the frontal
	// fast path on purpose).
	Projective bool
	// MaxCornerOffsetPx is the decode report's pose diagnostic: how far the
	// solved pose displaces the grid corners from the frontal mapping.
	MaxCornerOffsetPx float64
}

// RunPose measures one tilt: gray video through the camera-pose impairment,
// then two decodes of the same captures — rigid and blindly registered —
// scored against the transmitted oracle.
func RunPose(s Setup, tiltDeg float64) (PoseRow, error) {
	if err := s.Validate(); err != nil {
		return PoseRow{}, err
	}
	l, err := s.layout()
	if err != nil {
		return PoseRow{}, err
	}
	p := core.DefaultParams(l)
	stream := core.NewRandomStream(l, s.Seed)
	m, err := core.NewMultiplexer(p, VideoGray.source(l, s.Seed), stream)
	if err != nil {
		return PoseRow{}, err
	}
	cfg := s.channelConfig()
	// The pose sweep captures at the paper's native sensor resolution: the
	// perspective experiment must not be confounded by the sub-Nyquist cell
	// pitch the spatial downscale would otherwise introduce.
	capW, capH := s.poseCaptureSize()
	ccfg := camera.DefaultConfig(capW, capH)
	ccfg.BlurRadius = 0
	ccfg.Seed = s.Seed
	ccfg.Workers = s.Workers
	cfg.Camera = ccfg
	if tiltDeg > 0 {
		cfg.Impair = &impair.Config{Seed: s.Seed, TiltDeg: tiltDeg}
	}
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return PoseRow{}, err
	}
	nData := nDisplay / p.Tau
	decode := func(pose *frame.Homography) (metrics.Report, core.Registration, error) {
		rcfg := core.DefaultReceiverConfig(p, capW, capH)
		rcfg.RefreshHz = cfg.Display.RefreshHz
		rcfg.Exposure = cfg.Camera.Exposure
		rcfg.ReadoutTime = cfg.Camera.ReadoutTime
		rcfg.Workers = s.Workers
		rcfg.MinCaptureQuality = 0.1
		rcfg.Pose = pose
		rcv, err := core.NewReceiver(rcfg)
		if err != nil {
			return metrics.Report{}, core.Registration{}, err
		}
		decoded, rep := rcv.DecodeCapturesReport(res.Captures, res.Times, res.Exposure, nData)
		var stats metrics.GOBStats
		for d, fd := range decoded {
			if fd.Captures == 0 {
				continue
			}
			stats.AddWithOracle(fd, stream.DataFrame(d))
		}
		return metrics.Compute(&stats, l, p.Tau, cfg.Display.RefreshHz), rep.Registration, nil
	}
	rigid, _, err := decode(nil)
	if err != nil {
		return PoseRow{}, err
	}
	row := PoseRow{TiltDeg: tiltDeg, Rigid: rigid}
	pose, err := register.CalibrateProjective(l, res.Captures[:min(10, len(res.Captures))])
	if err != nil {
		// Blind calibration found no usable grid (e.g. grazing tilt): the
		// registered column degrades to the rigid decode rather than
		// failing the sweep.
		row.Registered = rigid
		return row, nil
	}
	row.Calibrated = true
	reg, regDiag, err := decode(&pose)
	if err != nil {
		return PoseRow{}, err
	}
	row.Registered = reg
	row.Projective = regDiag.Projective
	row.MaxCornerOffsetPx = regDiag.MaxCornerOffsetPx
	return row, nil
}

// Pose runs the camera-pose sweep over PoseTilts.
func Pose(s Setup) ([]PoseRow, error) {
	rows := make([]PoseRow, 0, len(PoseTilts))
	for _, tilt := range PoseTilts {
		row, err := RunPose(s, tilt)
		if err != nil {
			return nil, fmt.Errorf("experiments: pose tilt %g: %w", tilt, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WritePose prints the pose sweep: availability and confident-bit error rate
// for the rigid and registered receivers side by side, plus the registration
// diagnostics (path taken, solved corner displacement).
func WritePose(w io.Writer, rows []PoseRow) {
	fmt.Fprintf(w, "%8s | %9s %8s | %9s %8s | %-10s %7s\n",
		"tilt", "available", "err-rate", "available", "err-rate", "path", "corners")
	fmt.Fprintf(w, "%8s | %18s | %18s | %18s\n", "", "rigid", "registered", "registration")
	for _, r := range rows {
		path := "rigid"
		if r.Calibrated {
			path = "frontal"
			if r.Projective {
				path = "projective"
			}
		}
		fmt.Fprintf(w, "%7g° | %8.1f%% %7.2f%% | %8.1f%% %7.2f%% | %-10s %6.1fpx\n",
			r.TiltDeg, 100*r.Rigid.AvailableRatio, 100*r.Rigid.ErrorRate,
			100*r.Registered.AvailableRatio, 100*r.Registered.ErrorRate,
			path, r.MaxCornerOffsetPx)
	}
}
