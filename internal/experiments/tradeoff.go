package experiments

import (
	"fmt"
	"io"
)

// TradeoffRow is one operating point of the §5 discussion: the throughput
// and the perceptual cost of a (δ, τ) pair on the gray video.
type TradeoffRow struct {
	Delta float64
	Tau   int
	// ThroughputBps is the secondary-channel rate at this point.
	ThroughputBps float64
	// FlickerMean is the simulated panel's rating (0-4).
	FlickerMean float64
	// Satisfactory marks ratings ≤ 1 (the paper's acceptance bar).
	Satisfactory bool
}

// Tradeoff sweeps the (δ, τ) plane on the gray video, producing the
// rate-vs-perceptibility map behind the paper's parameter recommendation:
// pick the highest-throughput point that still rates ≤1.
func Tradeoff(s Setup) ([]TradeoffRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []TradeoffRow
	for _, tau := range []int{8, 10, 12, 16} {
		for _, delta := range []float64{10, 20, 30, 40} {
			row, err := RunSetting(s, ThroughputSetting{Video: VideoGray, Delta: delta, Tau: tau})
			if err != nil {
				return nil, err
			}
			mean, _, err := s.rateMultiplexed(180, delta, tau)
			if err != nil {
				return nil, err
			}
			out = append(out, TradeoffRow{
				Delta:         delta,
				Tau:           tau,
				ThroughputBps: row.Report.ThroughputBps,
				FlickerMean:   mean,
				Satisfactory:  mean <= 1.0,
			})
		}
	}
	return out, nil
}

// WriteTradeoff prints the operating-point map and the recommended point.
func WriteTradeoff(w io.Writer, rows []TradeoffRow) {
	fmt.Fprintf(w, "%6s %4s | %11s %8s %13s\n", "delta", "tau", "throughput", "flicker", "satisfactory")
	best := -1
	for i, r := range rows {
		fmt.Fprintf(w, "%6.0f %4d | %8.2fkbps %8.2f %13v\n",
			r.Delta, r.Tau, r.ThroughputBps/1000, r.FlickerMean, r.Satisfactory)
		if r.Satisfactory && (best < 0 || r.ThroughputBps > rows[best].ThroughputBps) {
			best = i
		}
	}
	if best >= 0 {
		fmt.Fprintf(w, "recommended: δ=%.0f τ=%d (%.2f kbps at flicker %.2f)\n",
			rows[best].Delta, rows[best].Tau,
			rows[best].ThroughputBps/1000, rows[best].FlickerMean)
	}
}
