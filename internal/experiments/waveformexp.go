package experiments

import (
	"fmt"
	"io"

	"inframe/internal/hvs"
	"inframe/internal/waveform"
)

// WaveformSeries is the Fig. 5 reproduction: the smoothed modulation
// waveform of one data Pixel through bit transitions, and the output of the
// electronic low-pass verification filter.
type WaveformSeries struct {
	// TimeMs is the sample time axis (one sample per display frame).
	TimeMs []float64
	// Raw is the displayed drive value (base ± smoothed amplitude).
	Raw []float64
	// Filtered is the electronic low-pass output.
	Filtered []float64
	// Ripple is the residual peak-to-peak excursion of Filtered after the
	// start-up transient: the "stable output waveform" criterion.
	Ripple float64
}

// SmoothingWaveform renders the Fig. 5 waveform: δ=20 amplitude around a
// mid-gray base, τ=12 smoothing, alternating 1→0→1 payload, square-root
// raised-cosine envelope, through a 45 Hz first-order electronic filter.
func SmoothingWaveform() WaveformSeries {
	const (
		delta = 20.0
		base  = 127.0
		tau   = 12
		fs    = 120.0
	)
	levels := []float64{delta, 0, delta, 0, delta, 0, delta, 0}
	env := waveform.Envelope(waveform.SqrtRaisedCosine, levels, tau)
	raw := waveform.Modulate(env, base)
	lp := waveform.NewCascade(2, 45, fs)
	filtered := lp.Filter(raw)
	times := make([]float64, len(raw))
	for i := range times {
		times[i] = float64(i) * 1000 / fs
	}
	return WaveformSeries{
		TimeMs:   times,
		Raw:      raw,
		Filtered: filtered,
		Ripple:   waveform.Ripple(filtered, tau*2),
	}
}

// WriteWaveform prints the Fig. 5 series.
func WriteWaveform(w io.Writer, s WaveformSeries) {
	fmt.Fprintf(w, "%8s %8s %9s\n", "t(ms)", "drive", "filtered")
	for i := range s.TimeMs {
		fmt.Fprintf(w, "%8.2f %8.2f %9.3f\n", s.TimeMs[i], s.Raw[i], s.Filtered[i])
	}
	fmt.Fprintf(w, "residual ripple after transient: %.3f (p-p, drive units)\n", s.Ripple)
}

// EnvelopeRow compares one transition envelope family (ablation A1: the
// §3.2 "after comparing with linear and stair function forms" choice).
type EnvelopeRow struct {
	Shape string
	// LPFRipple is the electronic low-pass residual ripple.
	LPFRipple float64
	// PhantomAmp is the phantom-array amplitude a default observer
	// assigns the transition at the paper's Pixel pitch.
	PhantomAmp float64
	// FlickerAmp is the observer's spectral flicker amplitude for the
	// modulated waveform. In this model the two smooth shapes score
	// nearly equal (both far below stair); the paper's preference for
	// the raised cosine is a finer perceptual distinction than the
	// first-order observer resolves.
	FlickerAmp float64
}

// EnvelopeAblation reruns the Fig. 5 verification for all three envelope
// shapes, adding the phantom-array measure that explains the paper's choice.
func EnvelopeAblation() []EnvelopeRow {
	const (
		delta = 20.0
		base  = 127.0
		tau   = 12
		fs    = 120.0
	)
	levels := []float64{delta, 0, delta, 0, delta, 0, delta, 0}
	obs := hvs.DefaultObserver()
	var out []EnvelopeRow
	for _, shape := range []waveform.Shape{waveform.SqrtRaisedCosine, waveform.Linear, waveform.Stair} {
		env := waveform.Envelope(shape, levels, tau)
		raw := waveform.Modulate(env, base)
		lp := waveform.NewCascade(2, 45, fs)
		filtered := lp.Filter(raw)
		out = append(out, EnvelopeRow{
			Shape:      shape.String(),
			LPFRipple:  waveform.Ripple(filtered, tau*2),
			PhantomAmp: obs.PhantomAmplitude(raw, fs, fs, 4),
			FlickerAmp: obs.FlickerAmplitude(raw, fs),
		})
	}
	return out
}

// WriteEnvelopes prints the envelope ablation table.
func WriteEnvelopes(w io.Writer, rows []EnvelopeRow) {
	fmt.Fprintf(w, "%-20s | %10s %11s %11s\n", "envelope", "lpf-ripple", "phantom-amp", "flicker-amp")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s | %10.3f %11.3f %11.3f\n", r.Shape, r.LPFRipple, r.PhantomAmp, r.FlickerAmp)
	}
}
