package experiments

import "testing"

func TestRobustnessScenariosCoverFamilies(t *testing.T) {
	scenarios := RobustnessScenarios(1)
	if len(scenarios) != 12 {
		t.Fatalf("got %d scenarios, want 12", len(scenarios))
	}
	if scenarios[0].Name != "clean" || scenarios[0].Impair != nil {
		t.Fatal("first scenario must be the clean reference")
	}
	for _, sc := range scenarios[1:] {
		if sc.Impair == nil {
			t.Fatalf("scenario %s has no impairment", sc.Name)
		}
		if err := sc.Impair.Validate(); err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		if !sc.Impair.Enabled() {
			t.Fatalf("scenario %s impairment is a no-op", sc.Name)
		}
	}
}

// TestRobustnessSweepShapes runs the impairment sweep and asserts the
// qualitative structure: the clean channel delivers best, drops create gaps
// the receiver resyncs from, and no single impairment collapses the link.
func TestRobustnessSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	s := fastSetup()
	rows, err := Robustness(s)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) RobustnessRow {
		for _, r := range rows {
			if r.Scenario == name {
				return r
			}
		}
		t.Fatalf("missing scenario %s", name)
		return RobustnessRow{}
	}
	clean := get("clean")
	if clean.Report.AvailableRatio < 0.9 {
		t.Fatalf("clean availability %.2f, want >= 0.9", clean.Report.AvailableRatio)
	}
	if clean.Degrade.GapFrames != 0 || clean.Degrade.ExcludedCaptures != 0 {
		t.Fatalf("clean run degraded: %+v", clean.Degrade)
	}
	for _, r := range rows {
		if r.Report.AvailableRatio > clean.Report.AvailableRatio+1e-9 {
			t.Errorf("%s availability %.3f beats clean %.3f", r.Scenario,
				r.Report.AvailableRatio, clean.Report.AvailableRatio)
		}
		switch r.Scenario {
		case "motion-blur":
			// The documented cliff: blur spanning the chessboard period
			// erases the signal outright.
			if r.Report.AvailableRatio > 0.05 {
				t.Errorf("motion-blur availability %.3f, expected a wipeout", r.Report.AvailableRatio)
			}
		case "kitchen-sink":
			if r.Report.AvailableRatio < 0.4 {
				t.Errorf("kitchen-sink availability %.3f collapsed", r.Report.AvailableRatio)
			}
		default:
			// Graceful, not catastrophic: every other single-fault scenario
			// keeps a usable channel.
			if r.Report.AvailableRatio < 0.5 {
				t.Errorf("%s availability %.3f collapsed", r.Scenario, r.Report.AvailableRatio)
			}
		}
	}
	drop := get("capture-drop")
	if drop.Degrade.GapFrames == 0 {
		t.Error("capture-drop produced no gap frames")
	}
	if drop.Degrade.Resyncs == 0 {
		t.Error("capture-drop produced no resyncs")
	}
	dup := get("capture-dup")
	if dup.Degrade.GapFrames != 0 {
		t.Errorf("capture-dup produced %d gap frames", dup.Degrade.GapFrames)
	}
}
