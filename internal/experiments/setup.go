// Package experiments reproduces every figure and table of the paper's
// evaluation (§4) on the simulated substrate, plus the ablations DESIGN.md
// calls out. Each experiment returns typed rows and has a matching writer
// that prints the same series the paper reports.
package experiments

import (
	"fmt"

	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/display"
)

// Setup fixes the global simulation scale. Defaults run the full pipeline
// at half the paper's spatial scale (960×540 display, 640×360 capture),
// which preserves the Block/GOB geometry and Pixel pitch ratios exactly
// while keeping runtimes workable.
type Setup struct {
	// Seed drives all randomness (payloads, noise, panel, ratings).
	Seed int64
	// ScaleDiv divides the paper's 1920×1080/1280×720 geometry (2 → half).
	ScaleDiv int
	// ThroughputSeconds is the simulated duration per Fig. 7 setting.
	ThroughputSeconds float64
	// FlickerSeconds is the simulated duration per Fig. 6 rating.
	FlickerSeconds float64
	// PanelSize is the number of simulated study participants (paper: 8).
	PanelSize int
	// Workers bounds the channel simulation's worker pools (0 = GOMAXPROCS,
	// 1 = sequential). Results are bit-identical at any value.
	Workers int
}

// DefaultSetup returns the standard configuration.
func DefaultSetup() Setup {
	return Setup{
		Seed:              1,
		ScaleDiv:          2,
		ThroughputSeconds: 2.0,
		FlickerSeconds:    1.0,
		PanelSize:         8,
	}
}

// Validate reports whether the setup is usable.
func (s Setup) Validate() error {
	if s.ScaleDiv <= 0 {
		return fmt.Errorf("experiments: ScaleDiv must be positive")
	}
	if s.ThroughputSeconds <= 0 || s.FlickerSeconds <= 0 {
		return fmt.Errorf("experiments: durations must be positive")
	}
	if s.PanelSize <= 0 {
		return fmt.Errorf("experiments: PanelSize must be positive")
	}
	if s.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be non-negative")
	}
	return nil
}

// layout returns the paper geometry at the setup's scale.
func (s Setup) layout() (core.Layout, error) {
	return core.ScaledPaperLayout(s.ScaleDiv)
}

// captureSize returns the Lumia-equivalent capture resolution at scale.
func (s Setup) captureSize() (int, int) {
	return 1280 / s.ScaleDiv, 720 / s.ScaleDiv
}

// poseCaptureSize returns the capture resolution for the camera-pose sweep:
// the paper's native 1280×720 regardless of ScaleDiv. The spatial downscale
// preserves the display/capture *ratio*, but it also halves the absolute
// Pixel-cell pitch on the sensor to 4/3 capture px — below Nyquist — so a
// scaled capture adds moiré aliasing the paper's hardware never sees (at
// the paper's scale each cell spans 8/3 capture px). FrameW/PixelSize is
// scale-invariant, so the native capture restores the paper's per-cell
// sampling rate at every ScaleDiv.
func (s Setup) poseCaptureSize() (int, int) { return 1280, 720 }

// channelConfig returns the standard simulated link: 120 Hz display,
// 30 FPS rolling-shutter camera at the paper's office-distance quality.
// Optical blur is left at 0 because at ScaleDiv ≥ 2 one display pixel
// already aggregates 2×2 paper pixels — the blur is baked into the scale.
func (s Setup) channelConfig() channel.Config {
	capW, capH := s.captureSize()
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0 // keep long runs in memory; see display docs
	ccfg := camera.DefaultConfig(capW, capH)
	ccfg.BlurRadius = 0
	ccfg.Seed = s.Seed
	ccfg.Workers = s.Workers
	return channel.Config{Display: dcfg, Camera: ccfg, Workers: s.Workers}
}

// flickerLayout is a compact panel for the Fig. 6 perception stimuli: the
// content is uniform, so a small Block grid at the correct Pixel pitch
// produces identical waveforms to the full panel at a fraction of the cost.
func (s Setup) flickerLayout() core.Layout {
	p := 4 / s.ScaleDiv
	if p < 1 {
		p = 1
	}
	bs := 4
	bp := p * bs
	return core.Layout{
		FrameW: 12 * bp, FrameH: 8 * bp,
		PixelSize: p, BlockSize: bs, GOBSize: 2,
		BlocksX: 12, BlocksY: 8,
	}
}

// fullScalePitch converts the scaled Pixel pitch back to paper-equivalent
// screen pixels for the HVS geometry (PixelsPerDegree assumes 1080p).
func (s Setup) fullScalePitch(l core.Layout) float64 {
	return float64(l.PixelSize * s.ScaleDiv)
}
