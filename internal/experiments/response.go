package experiments

import (
	"fmt"
	"io"

	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/metrics"
)

// ResponseRow is one display-panel variant in the pixel-response ablation.
type ResponseRow struct {
	Name           string
	AvailableRatio float64
	ThroughputBps  float64
}

// ResponseAblation quantifies why the channel default models the FG2421's
// effectively-instant pixels: an un-strobed LCD's gray-to-gray response
// smears each complementary frame into the next, eroding the captured
// chessboard in proportion to the time constant. (The display simulator
// also models black-frame-insertion strobing, which hides the response from
// the *viewer*; filming a strobed panel with a short rolling-shutter
// exposure instead produces banding, so the camera-facing fix is fast
// pixels, not strobing.) Runs shortened because the response model keeps
// one state frame per refresh in memory.
func ResponseAblation(s Setup) ([]ResponseRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	small := s
	if small.ThroughputSeconds > 1.0 {
		small.ThroughputSeconds = 1.0
	}
	l, err := small.layout()
	if err != nil {
		return nil, err
	}
	p := core.DefaultParams(l)
	stream := core.NewRandomStream(l, small.Seed)
	capW, capH := small.captureSize()

	variants := []struct {
		name     string
		response float64
	}{
		{"instant pixels (default)", 0},
		{"1ms gray-to-gray", 0.001},
		{"2ms gray-to-gray", 0.002},
		{"4ms gray-to-gray", 0.004},
	}
	var out []ResponseRow
	for _, v := range variants {
		m, err := core.NewMultiplexer(p, VideoGray.source(l, small.Seed), stream)
		if err != nil {
			return nil, err
		}
		cfg := small.channelConfig()
		cfg.Display.ResponseTime = v.response
		nDisplay := int(small.ThroughputSeconds * cfg.Display.RefreshHz)
		res, err := channel.Simulate(m, nDisplay, cfg)
		if err != nil {
			return nil, err
		}
		rcfg := core.DefaultReceiverConfig(p, capW, capH)
		rcfg.Exposure = cfg.Camera.Exposure
		rcfg.ReadoutTime = cfg.Camera.ReadoutTime
		rcv, err := core.NewReceiver(rcfg)
		if err != nil {
			return nil, err
		}
		var stats metrics.GOBStats
		for d, fd := range rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau) {
			if fd.Captures == 0 {
				continue
			}
			stats.AddWithOracle(fd, stream.DataFrame(d))
		}
		rep := metrics.Compute(&stats, l, p.Tau, cfg.Display.RefreshHz)
		out = append(out, ResponseRow{
			Name:           v.name,
			AvailableRatio: rep.AvailableRatio,
			ThroughputBps:  rep.ThroughputBps,
		})
	}
	return out, nil
}

// WriteResponse prints the panel-response ablation.
func WriteResponse(w io.Writer, rows []ResponseRow) {
	fmt.Fprintf(w, "%-36s | %9s %11s\n", "panel", "available", "throughput")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s | %8.1f%% %8.2fkbps\n", r.Name, 100*r.AvailableRatio, r.ThroughputBps/1000)
	}
}
