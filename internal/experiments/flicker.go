package experiments

import (
	"fmt"
	"io"

	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/hvs"
	"inframe/internal/naive"
	"inframe/internal/video"
	"inframe/internal/waveform"
)

// FlickerPoint is one Fig. 6 data point: the simulated 8-subject panel's
// mean and standard deviation on the 0–4 flicker scale.
type FlickerPoint struct {
	Brightness float64
	Delta      float64
	Tau        int
	Mean, Std  float64
}

// rateMultiplexed builds the multiplexed and reference streams for a solid
// video at the given brightness and returns the panel's ratings summary.
func (s Setup) rateMultiplexed(brightness, delta float64, tau int) (mean, std float64, err error) {
	l := s.flickerLayout()
	p := core.DefaultParams(l)
	p.Delta = delta
	p.Tau = tau
	src := video.NewSolid(l.FrameW, l.FrameH, float32(brightness))
	m, errMux := core.NewMultiplexer(p, src, core.NewRandomStream(l, s.Seed))
	if errMux != nil {
		return 0, 0, errMux
	}
	dcfg := display.DefaultConfig()
	shown, errD := display.New(dcfg)
	if errD != nil {
		return 0, 0, errD
	}
	n := int(s.FlickerSeconds * dcfg.RefreshHz)
	if err := m.PushTo(shown, n); err != nil {
		return 0, 0, err
	}
	ref, errR := display.New(dcfg)
	if errR != nil {
		return 0, 0, errR
	}
	for k := 0; k < n; k++ {
		if err := ref.Push(src.Frame(k / p.VideoFrameRatio)); err != nil {
			return 0, 0, err
		}
	}
	panel := hvs.Panel(s.PanelSize, s.Seed)
	ratings := hvs.RateDisplayRef(panel, shown, ref, 3, 4, s.fullScalePitch(l), s.Seed)
	mean, std = hvs.MeanStd(ratings)
	return mean, std, nil
}

// ratePixelPitch rates a phantom-array-dominated stimulus (stair envelope,
// δ=30) rendered with Pixel size p, judged at the paper-scale pitch.
func (s Setup) ratePixelPitch(p int, paperPitch float64) (mean, std float64, err error) {
	bs := 4
	bp := p * bs
	l := core.Layout{
		FrameW: 12 * bp, FrameH: 8 * bp,
		PixelSize: p, BlockSize: bs, GOBSize: 2,
		BlocksX: 12, BlocksY: 8,
	}
	params := core.DefaultParams(l)
	params.Delta = 30
	params.Tau = 12
	params.Shape = waveform.Stair
	src := video.Gray(l.FrameW, l.FrameH)
	m, errMux := core.NewMultiplexer(params, src, core.NewRandomStream(l, s.Seed))
	if errMux != nil {
		return 0, 0, errMux
	}
	dcfg := display.DefaultConfig()
	shown, errD := display.New(dcfg)
	if errD != nil {
		return 0, 0, errD
	}
	n := int(s.FlickerSeconds * dcfg.RefreshHz)
	if err := m.PushTo(shown, n); err != nil {
		return 0, 0, err
	}
	ref, errR := display.New(dcfg)
	if errR != nil {
		return 0, 0, errR
	}
	for k := 0; k < n; k++ {
		if err := ref.Push(src.Frame(k / 4)); err != nil {
			return 0, 0, err
		}
	}
	panel := hvs.Panel(s.PanelSize, s.Seed)
	ratings := hvs.RateDisplayRef(panel, shown, ref, 3, 4, paperPitch, s.Seed)
	mean, std = hvs.MeanStd(ratings)
	return mean, std, nil
}

// FlickerVsBrightness reproduces Fig. 6 (left): flicker perception versus
// color brightness for δ=20 and δ=50 at τ=12.
func FlickerVsBrightness(s Setup) ([]FlickerPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []FlickerPoint
	for _, delta := range []float64{20, 50} {
		for b := 60.0; b <= 200; b += 20 {
			mean, std, err := s.rateMultiplexed(b, delta, 12)
			if err != nil {
				return nil, fmt.Errorf("experiments: flicker b=%v δ=%v: %w", b, delta, err)
			}
			out = append(out, FlickerPoint{Brightness: b, Delta: delta, Tau: 12, Mean: mean, Std: std})
		}
	}
	return out, nil
}

// FlickerVsAmplitude reproduces Fig. 6 (right): flicker perception versus
// waveform amplitude δ for τ ∈ {10, 12, 14} on the bright gray video.
func FlickerVsAmplitude(s Setup) ([]FlickerPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []FlickerPoint
	for _, tau := range []int{10, 12, 14} {
		for _, delta := range []float64{20, 30, 50} {
			mean, std, err := s.rateMultiplexed(180, delta, tau)
			if err != nil {
				return nil, fmt.Errorf("experiments: flicker δ=%v τ=%d: %w", delta, tau, err)
			}
			out = append(out, FlickerPoint{Brightness: 180, Delta: delta, Tau: tau, Mean: mean, Std: std})
		}
	}
	return out, nil
}

// WriteFlicker prints flicker points as a table.
func WriteFlicker(w io.Writer, rows []FlickerPoint) {
	fmt.Fprintf(w, "%10s %6s %4s | %6s %6s\n", "brightness", "delta", "tau", "mean", "std")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.0f %6.0f %4d | %6.2f %6.2f\n", r.Brightness, r.Delta, r.Tau, r.Mean, r.Std)
	}
}

// NaiveRow is one Fig. 3 outcome: a naive frame-insertion scheme's panel
// rating next to InFrame's at the same amplitude.
type NaiveRow struct {
	Scheme    string
	Mean, Std float64
}

// NaiveDesigns reproduces the §3.1 user-study outcome: every naive scheme
// flickers visibly, the complementary design does not. InFrame is appended
// as the last row.
func NaiveDesigns(s Setup) ([]NaiveRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l := s.flickerLayout()
	delta := 40.0
	src := video.Gray(l.FrameW, l.FrameH)
	stream := core.NewRandomStream(l, s.Seed)
	dcfg := display.DefaultConfig()
	n := int(s.FlickerSeconds * dcfg.RefreshHz)
	panel := hvs.Panel(s.PanelSize, s.Seed)

	build := func(frameAt func(k int) *frame.Frame) (*display.Display, error) {
		d, err := display.New(dcfg)
		if err != nil {
			return nil, err
		}
		for k := 0; k < n; k++ {
			if err := d.Push(frameAt(k)); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	ref, err := build(func(k int) *frame.Frame { return src.Frame(k / 4) })
	if err != nil {
		return nil, err
	}
	rate := func(frameAt func(k int) *frame.Frame) (float64, float64, error) {
		d, err := build(frameAt)
		if err != nil {
			return 0, 0, err
		}
		ratings := hvs.RateDisplayRef(panel, d, ref, 3, 4, s.fullScalePitch(l), s.Seed)
		mean, std := hvs.MeanStd(ratings)
		return mean, std, nil
	}

	var out []NaiveRow
	for _, scheme := range naive.Schemes() {
		r, err := naive.NewRenderer(scheme, l, delta, src, stream)
		if err != nil {
			return nil, err
		}
		mean, std, err := rate(r.Frame)
		if err != nil {
			return nil, err
		}
		out = append(out, NaiveRow{Scheme: scheme.String(), Mean: mean, Std: std})
	}
	p := core.DefaultParams(l)
	p.Delta = delta
	m, err := core.NewMultiplexer(p, src, stream)
	if err != nil {
		return nil, err
	}
	mean, std, err := rate(m.Frame)
	if err != nil {
		return nil, err
	}
	out = append(out, NaiveRow{Scheme: "InFrame (complementary)", Mean: mean, Std: std})
	return out, nil
}

// WriteNaive prints the Fig. 3 comparison table.
func WriteNaive(w io.Writer, rows []NaiveRow) {
	fmt.Fprintf(w, "%-26s | %6s %6s\n", "scheme", "mean", "std")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s | %6.2f %6.2f\n", r.Scheme, r.Mean, r.Std)
	}
}
