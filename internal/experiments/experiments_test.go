package experiments

import (
	"strings"
	"testing"
)

// fastSetup shortens simulated durations so the shape assertions stay
// affordable in the regular test run.
func fastSetup() Setup {
	s := DefaultSetup()
	s.ThroughputSeconds = 1.5
	s.FlickerSeconds = 0.8
	return s
}

func TestSetupValidate(t *testing.T) {
	if err := DefaultSetup().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Setup){
		func(s *Setup) { s.ScaleDiv = 0 },
		func(s *Setup) { s.ThroughputSeconds = 0 },
		func(s *Setup) { s.FlickerSeconds = -1 },
		func(s *Setup) { s.PanelSize = 0 },
	}
	for i, m := range bad {
		s := DefaultSetup()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad setup %d validated", i)
		}
	}
}

func TestFig7SettingsCoverPaper(t *testing.T) {
	settings := Fig7Settings()
	if len(settings) != 12 {
		t.Fatalf("got %d settings, want 12 (3 videos × 4 parameter points)", len(settings))
	}
	seen := map[string]bool{}
	for _, st := range settings {
		seen[string(st.Video)] = true
	}
	for _, v := range []string{"Gray", "Dark-Gray", "Video"} {
		if !seen[v] {
			t.Fatalf("missing video %q", v)
		}
	}
}

// TestFig7Shapes runs the full throughput experiment and asserts the
// paper's qualitative structure (who wins, in which direction each knob
// moves), not its absolute testbed numbers.
func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := Throughput(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	get := func(v VideoKind, delta float64, tau int) ThroughputRow {
		for _, r := range rows {
			if r.Setting.Video == v && r.Setting.Delta == delta && r.Setting.Tau == tau {
				return r
			}
		}
		t.Fatalf("missing row %v δ=%v τ=%d", v, delta, tau)
		return ThroughputRow{}
	}
	// Throughput scales ~1/τ for every video.
	for _, v := range VideoKinds() {
		t10 := get(v, 20, 10).Report.ThroughputBps
		t12 := get(v, 20, 12).Report.ThroughputBps
		t14 := get(v, 20, 14).Report.ThroughputBps
		if !(t10 > t12 && t12 > t14) {
			t.Errorf("%v: throughput not decreasing in tau: %v %v %v", v, t10, t12, t14)
		}
	}
	// Pure colors beat the real video clip at every setting.
	for _, tau := range []int{10, 12, 14} {
		if get(VideoGray, 20, tau).Report.ThroughputBps <= get(VideoClip, 20, tau).Report.ThroughputBps {
			t.Errorf("τ=%d: gray not above video", tau)
		}
	}
	// Availability: pure colors ≥ 90%, video clearly lower (paper: ~63%).
	grayAvail := get(VideoGray, 20, 12).Report.AvailableRatio
	vidAvail := get(VideoClip, 20, 12).Report.AvailableRatio
	if grayAvail < 0.9 {
		t.Errorf("gray availability %.2f, want >= 0.9", grayAvail)
	}
	if vidAvail > grayAvail-0.15 {
		t.Errorf("video availability %.2f not clearly below gray %.2f", vidAvail, grayAvail)
	}
	// Error rates: video well above pure colors.
	if get(VideoClip, 20, 12).Report.ErrorRate < 2*get(VideoGray, 20, 12).Report.ErrorRate+0.01 {
		t.Errorf("video error rate not clearly above gray")
	}
	// Headline magnitudes: gray τ=10 lands near the paper's ~12.8 kbps and
	// video τ=12 near its 5.6-7 kbps.
	if tp := get(VideoGray, 20, 10).Report.ThroughputBps; tp < 10000 || tp > 13500 {
		t.Errorf("gray τ=10 throughput %.0f outside [10k, 13.5k]", tp)
	}
	if tp := get(VideoClip, 20, 12).Report.ThroughputBps; tp < 4000 || tp > 9000 {
		t.Errorf("video τ=12 throughput %.0f outside [4k, 9k]", tp)
	}
	var sb strings.Builder
	WriteThroughput(&sb, rows)
	if !strings.Contains(sb.String(), "Gray") {
		t.Fatal("WriteThroughput lost the video names")
	}
}

// TestFig6BrightnessShape: flicker grows with brightness and with δ; the
// recommended δ=20 stays satisfactory (≤1) everywhere.
func TestFig6BrightnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("flicker panel experiment")
	}
	rows, err := FlickerVsBrightness(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	series := map[float64][]FlickerPoint{}
	for _, r := range rows {
		series[r.Delta] = append(series[r.Delta], r)
	}
	for delta, pts := range series {
		first, last := pts[0], pts[len(pts)-1]
		if last.Mean < first.Mean {
			t.Errorf("δ=%v: flicker fell with brightness (%.2f -> %.2f)", delta, first.Mean, last.Mean)
		}
	}
	for i := range series[20.0] {
		if series[20.0][i].Mean > series[50.0][i].Mean+0.51 {
			t.Errorf("brightness %v: δ=20 (%.2f) above δ=50 (%.2f)",
				series[20.0][i].Brightness, series[20.0][i].Mean, series[50.0][i].Mean)
		}
		if series[20.0][i].Mean > 1.05 {
			t.Errorf("δ=20 at brightness %v rated %.2f, want satisfactory (≤1)",
				series[20.0][i].Brightness, series[20.0][i].Mean)
		}
	}
}

// TestFig6AmplitudeShape: flicker grows with δ and falls with τ.
func TestFig6AmplitudeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("flicker panel experiment")
	}
	rows, err := FlickerVsAmplitude(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	get := func(delta float64, tau int) FlickerPoint {
		for _, r := range rows {
			if r.Delta == delta && r.Tau == tau {
				return r
			}
		}
		t.Fatalf("missing point δ=%v τ=%d", delta, tau)
		return FlickerPoint{}
	}
	for _, tau := range []int{10, 12, 14} {
		if get(50, tau).Mean < get(20, tau).Mean {
			t.Errorf("τ=%d: δ=50 not above δ=20", tau)
		}
	}
	// Longer cycles reduce perceived flicker at the large amplitude.
	if get(50, 14).Mean > get(50, 10).Mean+0.51 {
		t.Errorf("δ=50: τ=14 (%.2f) above τ=10 (%.2f)", get(50, 14).Mean, get(50, 10).Mean)
	}
	// The recommended corner stays satisfactory.
	if get(20, 10).Mean > 1.05 {
		t.Errorf("δ=20 τ=10 rated %.2f, want ≤ 1", get(20, 10).Mean)
	}
}

func TestNaiveDesignsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("flicker panel experiment")
	}
	rows, err := NaiveDesigns(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 5 naive + InFrame", len(rows))
	}
	byName := map[string]NaiveRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	if byName["normal"].Mean > 0.5 {
		t.Errorf("pure video rated %.2f", byName["normal"].Mean)
	}
	inframe := byName["InFrame (complementary)"].Mean
	for _, name := range []string{"V:D=1:3", "V:D=1:1", "V:D=2:2", "V:D=3:1"} {
		if byName[name].Mean < 2 {
			t.Errorf("naive %s rated %.2f, want >= 2", name, byName[name].Mean)
		}
		if inframe >= byName[name].Mean {
			t.Errorf("InFrame (%.2f) not below naive %s (%.2f)", inframe, name, byName[name].Mean)
		}
	}
}

func TestSmoothingWaveform(t *testing.T) {
	s := SmoothingWaveform()
	if len(s.Raw) == 0 || len(s.Raw) != len(s.Filtered) || len(s.TimeMs) != len(s.Raw) {
		t.Fatal("series shapes inconsistent")
	}
	// The filtered output must be stable: residual ripple well below the
	// raw ±δ swing.
	if s.Ripple >= 20 {
		t.Fatalf("filtered ripple %.2f, want well below the 40 p-p input", s.Ripple)
	}
	var sb strings.Builder
	WriteWaveform(&sb, s)
	if !strings.Contains(sb.String(), "ripple") {
		t.Fatal("WriteWaveform missing summary")
	}
}

func TestEnvelopeAblationOrdering(t *testing.T) {
	rows := EnvelopeAblation()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]EnvelopeRow{}
	for _, r := range rows {
		byName[r.Shape] = r
	}
	srrc, lin, stair := byName["sqrt-raised-cosine"], byName["linear"], byName["stair"]
	// The un-smoothed stair is clearly worst on every axis; the two smooth
	// shapes land close together (see EnvelopeRow.FlickerAmp docs).
	if srrc.PhantomAmp >= 0.5*stair.PhantomAmp || lin.PhantomAmp >= 0.5*stair.PhantomAmp {
		t.Errorf("smooth shapes not well below stair: srrc=%.3f linear=%.3f stair=%.3f",
			srrc.PhantomAmp, lin.PhantomAmp, stair.PhantomAmp)
	}
	if srrc.FlickerAmp >= stair.FlickerAmp || lin.FlickerAmp >= stair.FlickerAmp {
		t.Errorf("smooth flicker not below stair: srrc=%.3f linear=%.3f stair=%.3f",
			srrc.FlickerAmp, lin.FlickerAmp, stair.FlickerAmp)
	}
	if srrc.LPFRipple >= stair.LPFRipple {
		t.Errorf("srrc LPF ripple %.3f not below stair %.3f", srrc.LPFRipple, stair.LPFRipple)
	}
}

func TestThresholdSweepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := ThresholdSweep(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	// Availability falls as the band widens.
	if rows[0].AvailableRatio <= rows[len(rows)-1].AvailableRatio {
		t.Errorf("availability did not fall with band: %.2f -> %.2f",
			rows[0].AvailableRatio, rows[len(rows)-1].AvailableRatio)
	}
	// The unconditional error mass (erroneous GOBs per transmitted GOB)
	// falls as the band widens; the *conditional* rate can drift either
	// way because the surviving population changes.
	first := rows[0].ErrorRate * rows[0].AvailableRatio
	last := rows[len(rows)-1].ErrorRate * rows[len(rows)-1].AvailableRatio
	if last > first+0.01 {
		t.Errorf("unconditional errors rose with band: %.3f -> %.3f", first, last)
	}
}

func TestShutterAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := ShutterAblation(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShutterRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// A pair-spanning exposure kills the channel.
	if byName["exposure 16.7ms (pair)"].ThroughputBps > 0.3*byName["rolling (default)"].ThroughputBps {
		t.Errorf("pair-spanning exposure did not collapse throughput")
	}
	// A global shutter is at least as good as rolling.
	if byName["global shutter"].AvailableRatio < byName["rolling (default)"].AvailableRatio-0.03 {
		t.Errorf("global shutter below rolling availability")
	}
}

func TestNoiseSweepDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := NoiseSweep(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1].ThroughputBps > rows[0].ThroughputBps {
		t.Errorf("throughput rose with noise: %.0f -> %.0f",
			rows[0].ThroughputBps, rows[len(rows)-1].ThroughputBps)
	}
}

func TestDetectorAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := DetectorAblation(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestCodingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := CodingAblation(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var sb strings.Builder
	WriteCoding(&sb, rows)
	if !strings.Contains(sb.String(), "RS(") {
		t.Fatal("coding table missing RS row")
	}
}

func TestSyncAccuracyConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := SyncAccuracy(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	final := rows[len(rows)-1]
	// The template correlator resolves the boundary to a fraction of the
	// data frame period — enough to seed the fine (per-frame) alignment.
	if final.PhaseErrorFrac > 0.2 {
		t.Errorf("phase error %.1f%% of period with %d captures, want <= 20%%",
			100*final.PhaseErrorFrac, final.Captures)
	}
}

func TestBarcodeComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := BarcodeComparison(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	inframe, bc := rows[0], rows[1]
	if inframe.ScreenLoss != 0 || bc.ScreenLoss <= 0 {
		t.Errorf("screen loss: inframe %.2f, barcode %.2f", inframe.ScreenLoss, bc.ScreenLoss)
	}
	if inframe.Perceptible || !bc.Perceptible {
		t.Error("perceptibility flags wrong")
	}
	if inframe.ThroughputBps <= bc.ThroughputBps {
		t.Errorf("InFrame %.0f bps not above the corner barcode %.0f bps",
			inframe.ThroughputBps, bc.ThroughputBps)
	}
}

func TestPixelSizeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("flicker panel experiment")
	}
	rows, err := PixelSizeAblation(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	byPitch := map[int]float64{}
	for _, r := range rows {
		byPitch[r.PitchPaperPx] = r.Mean
	}
	// The paper's p=4 sits at (or near) the minimum of the U.
	if byPitch[4] > byPitch[1]+0.51 || byPitch[4] > byPitch[16]+0.51 {
		t.Errorf("p=4 (%.2f) not near minimal vs p=1 (%.2f) / p=16 (%.2f)",
			byPitch[4], byPitch[1], byPitch[16])
	}
}

func TestRegistrationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := Registration(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]RegistrationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["aligned"].NaiveCorrect < 0.8 {
		t.Errorf("aligned naive correct %.2f, want >= 0.8", byName["aligned"].NaiveCorrect)
	}
	for _, name := range []string{"overscan 115%", "shifted overscan"} {
		r := byName[name]
		if r.CalibCorrect < r.NaiveCorrect+0.2 {
			t.Errorf("%s: calibration gain too small (%.2f vs %.2f)",
				name, r.CalibCorrect, r.NaiveCorrect)
		}
		if r.CalibCorrect < 0.7 {
			t.Errorf("%s: calibrated correct %.2f, want >= 0.7", name, r.CalibCorrect)
		}
	}
}

func TestStreamingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	s := fastSetup()
	s.ThroughputSeconds = 3.0 // warm-up excluded; leave enough tail
	rows, err := Streaming(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvailableRatio <= 0.3 {
			t.Errorf("%s availability %.2f suspiciously low", r.Receiver, r.AvailableRatio)
		}
	}
}

func TestTradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	s := fastSetup()
	s.ThroughputSeconds = 1.0
	s.FlickerSeconds = 0.5
	rows, err := Tradeoff(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("got %d points", len(rows))
	}
	get := func(delta float64, tau int) TradeoffRow {
		for _, r := range rows {
			if r.Delta == delta && r.Tau == tau {
				return r
			}
		}
		t.Fatalf("missing point")
		return TradeoffRow{}
	}
	// Rate falls with tau; flicker falls with tau and rises with delta.
	if get(20, 8).ThroughputBps <= get(20, 16).ThroughputBps {
		t.Error("throughput not decreasing in tau")
	}
	if get(40, 8).FlickerMean < get(10, 8).FlickerMean {
		t.Error("flicker not increasing in delta")
	}
	// The paper's recommended region is satisfactory.
	if !get(20, 12).Satisfactory {
		t.Errorf("δ=20 τ=12 rated %.2f, expected satisfactory", get(20, 12).FlickerMean)
	}
	var sb strings.Builder
	WriteTradeoff(&sb, rows)
	if !strings.Contains(sb.String(), "recommended") {
		t.Error("no recommended point emitted")
	}
}

func TestRegistrationAlignedNotDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := Registration(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "aligned" && r.CalibCorrect < r.NaiveCorrect-0.05 {
			t.Fatalf("calibration degraded the aligned camera: %.2f vs %.2f",
				r.CalibCorrect, r.NaiveCorrect)
		}
	}
}

func TestResponseAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	rows, err := ResponseAblation(fastSetup())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ResponseRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	instant := byName["instant pixels (default)"].ThroughputBps
	mid := byName["2ms gray-to-gray"].ThroughputBps
	slow := byName["4ms gray-to-gray"].ThroughputBps
	if !(instant > mid && mid > slow) {
		t.Errorf("throughput not monotone in response time: %v, %v, %v", instant, mid, slow)
	}
}
