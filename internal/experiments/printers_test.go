package experiments

import (
	"strings"
	"testing"

	"inframe/internal/metrics"
)

// TestPrinters exercises every table writer on synthetic rows, checking the
// headline values survive into the text (the tables are EXPERIMENTS.md's
// source of truth, so formatting regressions matter).
func TestPrinters(t *testing.T) {
	var sb strings.Builder
	check := func(name string, wants ...string) {
		t.Helper()
		out := sb.String()
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", name, w, out)
			}
		}
		sb.Reset()
	}

	WriteFlicker(&sb, []FlickerPoint{{Brightness: 180, Delta: 20, Tau: 12, Mean: 0.75, Std: 0.43}})
	check("WriteFlicker", "180", "0.75", "0.43")

	WriteNaive(&sb, []NaiveRow{{Scheme: "V:D=1:3", Mean: 3.12, Std: 0.6}})
	check("WriteNaive", "V:D=1:3", "3.12")

	WriteBands(&sb, []BandRow{{Band: 0.3, AvailableRatio: 0.594, ErrorRate: 0.079}})
	check("WriteBands", "0.30", "59.4", "7.90")

	WriteShutter(&sb, []ShutterRow{{Name: "global", AvailableRatio: 0.995, ErrorRate: 0.0003, ThroughputBps: 11190}})
	check("WriteShutter", "global", "99.5", "11.19")

	WriteNoise(&sb, []NoiseRow{{Sigma: 2.5, AvailableRatio: 0.946, ErrorRate: 0.0003, ThroughputBps: 10640}})
	check("WriteNoise", "2.5", "94.6", "10.64")

	WriteDetectors(&sb, []DetectorRow{{Detector: "energy", AvailableRatio: 0.594, ErrorRate: 0.079}})
	check("WriteDetectors", "energy", "59.4")

	WriteCoding(&sb, []CodingRow{{Scheme: "RS(250,187)", FrameSuccessRatio: 1, GoodputBps: 11220}})
	check("WriteCoding", "RS(250,187)", "100.0", "11.22")

	WriteSync(&sb, []SyncRow{{Captures: 16, PhaseErrorFrac: 0.021}})
	check("WriteSync", "16", "2.1")

	WriteBaseline(&sb, []BaselineRow{{System: "InFrame", ThroughputBps: 6160, ScreenLoss: 0, Perceptible: false}})
	check("WriteBaseline", "InFrame", "6.16", "false")

	WriteRegistration(&sb, []RegistrationRow{{Name: "aligned", NaiveCorrect: 0.946, CalibCorrect: 0.946}})
	check("WriteRegistration", "aligned", "94.6")

	WriteStreaming(&sb, []StreamingRow{{Receiver: "batch", AvailableRatio: 0.597, ErrorRate: 0.0815}})
	check("WriteStreaming", "batch", "59.7", "8.15")

	WriteResponse(&sb, []ResponseRow{{Name: "instant", AvailableRatio: 0.944, ThroughputBps: 10620}})
	check("WriteResponse", "instant", "94.4", "10.62")

	WritePixelSizes(&sb, []PixelSizeRow{{PitchPaperPx: 4, Mean: 1.75, Std: 0.43}})
	check("WritePixelSizes", "4", "1.75")

	WriteTradeoff(&sb, []TradeoffRow{{Delta: 20, Tau: 10, ThroughputBps: 12710, FlickerMean: 0.88, Satisfactory: true}})
	check("WriteTradeoff", "12.71", "0.88", "recommended")

	WriteThroughput(&sb, []ThroughputRow{{
		Setting: ThroughputSetting{Video: VideoGray, Delta: 20, Tau: 10},
		Frames:  24,
	}})
	check("WriteThroughput", "Gray", "24")

	deg := metrics.DegradationStats{GapFrames: 3, Resyncs: 2, ExcludedCaptures: 1}
	deg.Quality.Add(0.85)
	WriteRobustness(&sb, []RobustnessRow{{
		Scenario: "capture-drop",
		Report:   metrics.Report{AvailableRatio: 0.913, ErrorRate: 0.004},
		Degrade:  deg,
		Frames:   20,
	}})
	check("WriteRobustness", "capture-drop", "91.3", "0.40", "3", "0.85")
}
