package experiments

import (
	"fmt"
	"io"
	"sort"

	"inframe/internal/fleet"
)

// fleetPoolCap bounds the shared frame pool's per-size free lists during a
// fleet run: the population samples several capture geometries, and without
// a cap every distinct W×H retains its full capture sequence between
// receivers (see fleet.Config.PoolCap).
const fleetPoolCap = 4

// Fleet runs the broadcast-fleet experiment: the standard scaled link
// rendered once, decoded by an n-receiver population drawn from
// fleet.DefaultPopulation around the setup's capture geometry. The
// transmission lasts ThroughputSeconds; the worker budget is the setup's
// Workers value, threaded through the nested fan-out so total concurrency
// stays inside one resolved pool.
func Fleet(s Setup, n int) (*fleet.Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("experiments: fleet size must be positive, got %d", n)
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	capW, capH := s.captureSize()
	cfg := fleet.DefaultConfig(l, capW, capH, n, s.Seed)
	cfg.Seconds = s.ThroughputSeconds
	cfg.Workers = s.Workers
	cfg.PoolCap = fleetPoolCap
	return fleet.Run(cfg)
}

// WriteFleet prints the fleet-distribution table: availability, confident-bit
// BER and time-to-first-decode across the population (exact p50/p95/p99 order
// statistics), the cohort breakdown by impairment profile, and the shared
// pool's accounting.
func WriteFleet(w io.Writer, res *fleet.Result) {
	fmt.Fprintf(w, "receivers=%d  data-frames=%d  display-frames=%d  never-decoded=%d\n",
		res.N, res.DataFrames, res.DisplayFrames, res.NeverDecoded)
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", "metric", "mean", "p50", "p95", "p99")
	row := func(name string, d fleet.Dist) {
		fmt.Fprintf(w, "%-12s %8.4f %8.4f %8.4f %8.4f\n", name, d.Mean, d.P50, d.P95, d.P99)
	}
	row("avail", res.Avail)
	row("ber", res.BER)
	row("ttfd(s)", res.TTFD)

	// Cohorts: count and mean availability per impairment profile, in
	// sorted-name order (map iteration only collects keys; the ordered
	// output comes from the sort).
	counts := make(map[string]int)
	avail := make(map[string]float64)
	for _, rr := range res.Receivers {
		counts[rr.Profile]++
		avail[rr.Profile] += rr.Avail
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-32s %4s %10s\n", "cohort", "n", "mean-avail")
	for _, name := range names {
		fmt.Fprintf(w, "%-32s %4d %10.4f\n", name, counts[name], avail[name]/float64(counts[name]))
	}

	fmt.Fprintf(w, "%s\n", res.Degrade.String())
	fmt.Fprintf(w, "pool: gets=%d hits=%d misses=%d evicted=%d high-water=%d frames (%d px)\n",
		res.Pool.Gets, res.Pool.Hits, res.Pool.Misses, res.Pool.Evicted,
		res.PoolHighWater.Frames, res.PoolHighWater.Pixels)
	fmt.Fprintf(w, "render: blocks=%d skipped=%d (skip-rate %.3f) headroom-skipped=%d/%d video-skipped=%d/%d\n",
		res.Render.Blocks, res.Render.BlocksSkipped, res.Render.SkipRate(),
		res.Render.HeadroomSkipped, res.Render.HeadroomBlocks+res.Render.HeadroomSkipped,
		res.Render.VideoSkipped, res.Render.VideoRefreshes+res.Render.VideoSkipped)
	if res.NeverDecoded > 0 {
		fmt.Fprintf(w, "note: ttfd covers the %d receivers that decoded\n", res.N-res.NeverDecoded)
	}
}
