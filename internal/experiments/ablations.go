package experiments

import (
	"bytes"
	"fmt"
	"io"

	"inframe/internal/channel"
	"inframe/internal/code/rs"
	"inframe/internal/core"
	"inframe/internal/link"
	"inframe/internal/metrics"
)

// runVariant simulates one (video, δ, τ) setting with caller-tweaked channel
// and receiver configurations, returning the GOB statistics and the decoded
// frames with their oracle.
func runVariant(s Setup, setting ThroughputSetting,
	tweakChannel func(*channel.Config), tweakReceiver func(*core.ReceiverConfig)) (*metrics.GOBStats, []*core.FrameDecode, *core.RandomStream, error) {
	l, err := s.layout()
	if err != nil {
		return nil, nil, nil, err
	}
	p := core.DefaultParams(l)
	p.Delta = setting.Delta
	p.Tau = setting.Tau
	stream := core.NewRandomStream(l, s.Seed)
	m, err := core.NewMultiplexer(p, setting.Video.source(l, s.Seed), stream)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := s.channelConfig()
	if tweakChannel != nil {
		tweakChannel(&cfg)
	}
	nDisplay := int(s.ThroughputSeconds * cfg.Display.RefreshHz)
	res, err := channel.Simulate(m, nDisplay, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	capW, capH := s.captureSize()
	rcfg := core.DefaultReceiverConfig(p, capW, capH)
	rcfg.RefreshHz = cfg.Display.RefreshHz
	rcfg.Exposure = cfg.Camera.Exposure
	rcfg.ReadoutTime = cfg.Camera.ReadoutTime
	if tweakReceiver != nil {
		tweakReceiver(&rcfg)
	}
	rcv, err := core.NewReceiver(rcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	decoded := rcv.DecodeCaptures(res.Captures, res.Times, res.Exposure, nDisplay/p.Tau)
	stats := &metrics.GOBStats{}
	var kept []*core.FrameDecode
	for d, fd := range decoded {
		if fd.Captures == 0 {
			continue
		}
		stats.AddWithOracle(fd, stream.DataFrame(d))
		kept = append(kept, fd)
	}
	return stats, kept, stream, nil
}

// BandRow is one confidence-band sweep point (ablation A3: the
// availability/error trade-off behind the threshold T of §3.3).
type BandRow struct {
	Band           float64
	AvailableRatio float64
	ErrorRate      float64
}

// ThresholdSweep sweeps the receiver's absolute confidence band on the
// sun-rise video at the paper's δ=20, τ=12 point.
func ThresholdSweep(s Setup) ([]BandRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []BandRow
	for _, band := range []float64{0.05, 0.15, 0.3, 0.6, 1.0, 1.5} {
		band := band
		stats, _, _, err := runVariant(s, ThroughputSetting{VideoClip, 20, 12}, nil,
			func(rc *core.ReceiverConfig) { rc.MinConfidence = band })
		if err != nil {
			return nil, err
		}
		out = append(out, BandRow{Band: band, AvailableRatio: stats.AvailableRatio(), ErrorRate: stats.ErrorRate()})
	}
	return out, nil
}

// WriteBands prints the threshold sweep.
func WriteBands(w io.Writer, rows []BandRow) {
	fmt.Fprintf(w, "%6s | %9s %8s\n", "band", "available", "err-rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%6.2f | %8.1f%% %7.2f%%\n", r.Band, 100*r.AvailableRatio, 100*r.ErrorRate)
	}
}

// ShutterRow is one rolling-shutter/exposure variant (ablation A4).
type ShutterRow struct {
	Name           string
	AvailableRatio float64
	ErrorRate      float64
	ThroughputBps  float64
}

// ShutterAblation compares shutter regimes on the gray video: the default
// rolling shutter, a global shutter, a long exposure near one refresh
// period, and a pair-spanning exposure that cancels the chessboard.
func ShutterAblation(s Setup) ([]ShutterRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		tweak func(*channel.Config)
	}{
		{"rolling (default)", nil},
		{"global shutter", func(c *channel.Config) { c.Camera.ReadoutTime = 0 }},
		{"exposure 5ms", func(c *channel.Config) { c.Camera.Exposure = 0.005 }},
		{"exposure 16.7ms (pair)", func(c *channel.Config) { c.Camera.Exposure = 2.0 / 120 }},
	}
	setting := ThroughputSetting{VideoGray, 20, 12}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	var out []ShutterRow
	for _, v := range variants {
		// The receiver's timing model follows the camera tweak via
		// runVariant's wiring.
		stats, _, _, err := runVariant(s, setting, v.tweak, nil)
		if err != nil {
			return nil, err
		}
		rep := metrics.Compute(stats, l, setting.Tau, 120)
		out = append(out, ShutterRow{
			Name:           v.name,
			AvailableRatio: rep.AvailableRatio,
			ErrorRate:      rep.ErrorRate,
			ThroughputBps:  rep.ThroughputBps,
		})
	}
	return out, nil
}

// WriteShutter prints the shutter ablation.
func WriteShutter(w io.Writer, rows []ShutterRow) {
	fmt.Fprintf(w, "%-24s | %9s %8s %11s\n", "shutter", "available", "err-rate", "throughput")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s | %8.1f%% %7.2f%% %8.2fkbps\n",
			r.Name, 100*r.AvailableRatio, 100*r.ErrorRate, r.ThroughputBps/1000)
	}
}

// NoiseRow is one sensor-noise sweep point (ablation A6: capture quality /
// distance proxy).
type NoiseRow struct {
	Sigma          float64
	AvailableRatio float64
	ErrorRate      float64
	ThroughputBps  float64
}

// NoiseSweep sweeps the camera read noise on the gray video.
func NoiseSweep(s Setup) ([]NoiseRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	setting := ThroughputSetting{VideoGray, 20, 12}
	var out []NoiseRow
	for _, sigma := range []float64{0, 2.5, 5, 8, 12} {
		sigma := sigma
		stats, _, _, err := runVariant(s, setting,
			func(c *channel.Config) { c.Camera.NoiseSigma = sigma }, nil)
		if err != nil {
			return nil, err
		}
		rep := metrics.Compute(stats, l, setting.Tau, 120)
		out = append(out, NoiseRow{
			Sigma:          sigma,
			AvailableRatio: rep.AvailableRatio,
			ErrorRate:      rep.ErrorRate,
			ThroughputBps:  rep.ThroughputBps,
		})
	}
	return out, nil
}

// WriteNoise prints the noise sweep.
func WriteNoise(w io.Writer, rows []NoiseRow) {
	fmt.Fprintf(w, "%6s | %9s %8s %11s\n", "sigma", "available", "err-rate", "throughput")
	for _, r := range rows {
		fmt.Fprintf(w, "%6.1f | %8.1f%% %7.2f%% %8.2fkbps\n",
			r.Sigma, 100*r.AvailableRatio, 100*r.ErrorRate, r.ThroughputBps/1000)
	}
}

// DetectorRow compares bit detectors (energy vs matched filter).
type DetectorRow struct {
	Detector       string
	AvailableRatio float64
	ErrorRate      float64
}

// DetectorAblation compares the paper's energy detector with the matched
// filter on the textured sun-rise clip.
func DetectorAblation(s Setup) ([]DetectorRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []DetectorRow
	for _, det := range []core.Detector{core.DetectorEnergy, core.DetectorMatched} {
		det := det
		stats, _, _, err := runVariant(s, ThroughputSetting{VideoClip, 20, 12}, nil,
			func(rc *core.ReceiverConfig) { rc.Detector = det })
		if err != nil {
			return nil, err
		}
		out = append(out, DetectorRow{
			Detector:       det.String(),
			AvailableRatio: stats.AvailableRatio(),
			ErrorRate:      stats.ErrorRate(),
		})
	}
	return out, nil
}

// WriteDetectors prints the detector ablation.
func WriteDetectors(w io.Writer, rows []DetectorRow) {
	fmt.Fprintf(w, "%-10s | %9s %8s\n", "detector", "available", "err-rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %8.1f%% %7.2f%%\n", r.Detector, 100*r.AvailableRatio, 100*r.ErrorRate)
	}
}

// CodingRow compares GOB protection schemes (ablation A5: the §3.3 "more
// sophisticated error correction codes" future work).
type CodingRow struct {
	Scheme string
	// FrameSuccessRatio is the fraction of data frames delivered intact.
	FrameSuccessRatio float64
	// GoodputBps is the verified delivered rate under the scheme.
	GoodputBps float64
}

// CodingAblation replays the gray channel's measured per-Block outcomes
// under two equal-rate protections: the paper's XOR parity (detection only;
// a frame's GOB survives if available and clean) and an RS(250,187) code
// over the frame's Block bits, where undecided Blocks become erasures and
// wrong Blocks become symbol errors. Gray is the right substrate: with the
// sun-rise clip ~40% of GOBs are unavailable and no per-frame code of this
// rate can recover a frame, while on gray the RS code turns scattered
// losses into complete frames.
func CodingAblation(s Setup) ([]CodingRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l, err := s.layout()
	if err != nil {
		return nil, err
	}
	setting := ThroughputSetting{VideoGray, 20, 12}
	stats, decoded, stream, err := runVariant(s, setting, nil, nil)
	if err != nil {
		return nil, err
	}
	rep := metrics.Compute(stats, l, setting.Tau, 120)

	// RS replay: 1500 Block bits → 187 data bytes striped into one
	// RS(250,187) codeword per frame (catching the same 25% redundancy as
	// 1 parity Block per 4).
	const n, k = 250, 187
	code, err := rs.New(n, k)
	if err != nil {
		return nil, err
	}
	frameRate := 120.0 / float64(setting.Tau)
	success := 0
	for _, fd := range decoded {
		sent := stream.DataFrame(fd.Index)
		// Transmitted codeword: the frame's raw 1500 Block bits are the
		// data portion (zero-padded to 187 bytes), parity appended.
		dataBytes := link.BitsToBytes(padBits(sent.Bits, k*8))
		cw, err := code.Encode(dataBytes)
		if err != nil {
			return nil, err
		}
		// Receiver view: symbol erasures where any constituent Block was
		// undecided; symbol errors happen implicitly where bits flipped.
		recv := append([]byte(nil), cw...)
		recvBits := padBits(fd.Bits.Bits, k*8)
		var erasures []int
		for b := 0; b < k; b++ {
			anyUndecided := false
			var v byte
			for j := 0; j < 8; j++ {
				idx := b*8 + j
				if idx < len(fd.Decided) && !fd.Decided[idx] {
					anyUndecided = true
				}
				if recvBits[b*8+j] {
					v |= 1 << (7 - j)
				}
			}
			recv[b] = v
			if anyUndecided {
				erasures = append(erasures, b)
			}
		}
		if got, err := code.Decode(recv, capErasures(erasures, code.Parity())); err == nil && bytes.Equal(got, dataBytes) {
			success++
		}
	}
	frameBits := float64(l.NumBlocks()) * float64(k) / float64(n) // equal-rate accounting
	rsGoodput := frameRate * frameBits * float64(success) / float64(len(decoded))
	return []CodingRow{
		{
			Scheme:            "XOR parity (paper)",
			FrameSuccessRatio: rep.AvailableRatio * (1 - rep.ErrorRate),
			GoodputBps:        rep.GoodputBps,
		},
		{
			Scheme:            "RS(250,187) per frame",
			FrameSuccessRatio: float64(success) / float64(len(decoded)),
			GoodputBps:        rsGoodput,
		},
	}, nil
}

// padBits copies bits into a new slice of exactly n entries.
func padBits(bits []bool, n int) []bool {
	out := make([]bool, n)
	copy(out, bits)
	return out
}

// capErasures truncates the erasure list to the code's capacity; beyond it
// the decode fails anyway, and shorter lists keep Decode's pre-checks quiet.
func capErasures(erasures []int, parity int) []int {
	if len(erasures) > parity {
		return erasures[:parity]
	}
	return erasures
}

// WriteCoding prints the coding ablation.
func WriteCoding(w io.Writer, rows []CodingRow) {
	fmt.Fprintf(w, "%-24s | %13s %11s\n", "scheme", "frame-success", "goodput")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s | %12.1f%% %8.2fkbps\n", r.Scheme, 100*r.FrameSuccessRatio, r.GoodputBps/1000)
	}
}

// PixelSizeRow is one Pixel-pitch ablation point (ablation A2: §3.3's
// "properly selected p … minimal Phantom Array effect").
type PixelSizeRow struct {
	// PitchPaperPx is the Pixel size in paper-scale (1080p) pixels.
	PitchPaperPx int
	Mean, Std    float64
}

// PixelSizeAblation rates flicker for Pixel pitches around the paper's
// p=4 using a stair envelope (phantom-array dominated stimulus).
func PixelSizeAblation(s Setup) ([]PixelSizeRow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []PixelSizeRow
	for _, paperP := range []int{1, 2, 4, 8, 16} {
		p := paperP / s.ScaleDiv
		if p < 1 {
			p = 1
		}
		mean, std, err := s.ratePixelPitch(p, float64(paperP))
		if err != nil {
			return nil, err
		}
		out = append(out, PixelSizeRow{PitchPaperPx: paperP, Mean: mean, Std: std})
	}
	return out, nil
}

// WritePixelSizes prints the Pixel-pitch ablation.
func WritePixelSizes(w io.Writer, rows []PixelSizeRow) {
	fmt.Fprintf(w, "%8s | %6s %6s\n", "pitch-px", "mean", "std")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d | %6.2f %6.2f\n", r.PitchPaperPx, r.Mean, r.Std)
	}
}
