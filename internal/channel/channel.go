// Package channel composes the display and camera simulators into the full
// screen→camera link of the InFrame system, providing the one-call
// simulation used by experiments: multiplexed frames in, captured frames
// (with exposure timing) out.
package channel

import (
	"fmt"
	"math"

	"inframe/internal/camera"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/impair"
	"inframe/internal/parallel"
)

// Config describes one end-to-end link.
type Config struct {
	// Display is the monitor model.
	Display display.Config
	// Camera is the capture model.
	Camera camera.Config
	// CameraStart offsets the first exposure relative to the first
	// displayed frame, modelling free-running clocks (0 = aligned).
	//
	// Any finite offset is defined, not just [0, frame period):
	//
	//   - A negative offset starts exposures before the first display
	//     frame. The display clamps: windows before t=0 integrate the
	//     first pushed frame as if it had always been on the monitor (a
	//     camera that starts rolling while the screen shows a static
	//     image). The capture-count budget shrinks accordingly — the
	//     formula n = (duration − CameraStart − exposure − readout) /
	//     period grows n for negative offsets, and every extra capture
	//     sees the held first frame.
	//   - Offsets of one display-frame period or more simply skip that
	//     much of the transmission; with a free-running camera clock the
	//     offset is arbitrary, so no wrap-around is applied. Offsets
	//     beyond the displayed duration leave no room for a capture and
	//     Simulate reports the "too short" error.
	CameraStart float64
	// Workers bounds Simulate's pipeline pool: display frame k+1 renders
	// while captures whose exposure windows are already covered run behind
	// it. 0 means GOMAXPROCS; 1 forces the sequential render-then-capture
	// path. Results are bit-identical at any worker count — a capture is
	// dispatched only once every display frame its exposure window touches
	// has been pushed, and captures merge by index.
	Workers int
	// Pool supplies the frame buffers of the capture side (see
	// camera.Config.Pool); it is copied into the camera configuration when
	// the camera has no pool of its own. Share one pool with the
	// multiplexer and receiver (core.Params.Pool, ReceiverConfig.Pool) and
	// Put captures back after decoding for an allocation-free steady
	// state. Nil keeps per-stage private pools.
	Pool *frame.Pool
	// Impair optionally corrupts the link with a seeded, deterministic
	// fault stack — clock drift, exposure jitter, capture drop and
	// duplication, lighting and sensor faults (see internal/impair). Nil
	// or an all-zero config leaves the clean path untouched: Simulate
	// routes through exactly the same code as a config without the field,
	// so clean results stay bit-identical.
	Impair *impair.Config
}

// DefaultConfig returns the paper's setup scaled to a capture resolution:
// 120 Hz display, 30 FPS rolling-shutter camera. The display's pixel
// response is zeroed: the paper's Eizo FG2421 is a strobed fast-GtG gaming
// panel, and an un-strobed 2 ms exponential response would smear every
// complementary pair into the next frame (see the response ablation in the
// experiments package for the quantified effect).
func DefaultConfig(capW, capH int) Config {
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0
	return Config{
		Display: dcfg,
		Camera:  camera.DefaultConfig(capW, capH),
	}
}

// Link is an instantiated screen→camera channel.
type Link struct {
	Display *display.Display
	Camera  *camera.Camera
	cfg     Config
}

// New builds a link from the configuration.
func New(cfg Config) (*Link, error) {
	d, err := display.New(cfg.Display)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	if cfg.Pool != nil && cfg.Camera.Pool == nil {
		cfg.Camera.Pool = cfg.Pool
	}
	if err := cfg.Impair.Validate(); err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	c, err := camera.New(cfg.Camera)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	return &Link{Display: d, Camera: c, cfg: cfg}, nil
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Transmit pushes pre-rendered display frames onto the monitor.
func (l *Link) Transmit(frames []*frame.Frame) error {
	for i, f := range frames {
		if err := l.Display.Push(f); err != nil {
			return fmt.Errorf("channel: frame %d: %w", i, err)
		}
	}
	return nil
}

// CaptureAll captures as many camera frames as fit inside the displayed
// duration, starting at CameraStart, returning frames and exposure start
// times.
func (l *Link) CaptureAll() ([]*frame.Frame, []float64) {
	dur := l.Display.Duration()
	period := l.Camera.FramePeriod()
	exposureSpan := l.cfg.Camera.Exposure + l.cfg.Camera.ReadoutTime
	n := int((dur - l.cfg.CameraStart - exposureSpan) / period)
	if n <= 0 {
		return nil, nil
	}
	return l.Camera.CaptureSequence(l.Display, l.cfg.CameraStart, n)
}

// Result bundles a one-shot simulation's outputs.
type Result struct {
	Captures []*frame.Frame
	Times    []float64
	Exposure float64
}

// Recycle puts every capture back into p (typically the shared pipeline
// pool the captures came from) once decoding is done, and clears the
// capture slice so the frames cannot be used after their return. A nil
// pool drops the frames.
func (r *Result) Recycle(p *frame.Pool) {
	for i, f := range r.Captures {
		p.Put(f)
		r.Captures[i] = nil
	}
	r.Captures = r.Captures[:0]
}

// Simulate runs a multiplexer for nDisplayFrames through the link and
// captures the whole sequence: the standard experiment entry point.
//
// With Workers resolving above 1 the stages pipeline: the renderer keeps
// pushing display frames while capture workers integrate the frames already
// pushed (capture i is dispatched the moment the last display frame its
// exposure + readout window touches is on the monitor). The captured
// sequence is bit-identical to the sequential path — see Config.Workers.
func Simulate(m *core.Multiplexer, nDisplayFrames int, cfg Config) (*Result, error) {
	link, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Impair.Enabled() {
		return simulateImpaired(m, nDisplayFrames, cfg, link)
	}
	if parallel.Resolve(cfg.Workers) <= 1 {
		if err := m.PushTo(link.Display, nDisplayFrames); err != nil {
			return nil, err
		}
		caps, times := link.CaptureAll()
		if len(caps) == 0 {
			return nil, fmt.Errorf("channel: displayed duration too short for any capture")
		}
		return &Result{Captures: caps, Times: times, Exposure: cfg.Camera.Exposure}, nil
	}
	return simulatePipelined(m, nDisplayFrames, cfg, link)
}

// simulatePipelined overlaps display rendering with camera capture. The
// capture count and exposure times replicate CaptureAll's arithmetic
// exactly (same expressions, same float order) so both paths agree to the
// last bit.
func simulatePipelined(m *core.Multiplexer, nDisplayFrames int, cfg Config, link *Link) (*Result, error) {
	dur := float64(nDisplayFrames) / cfg.Display.RefreshHz
	period := link.Camera.FramePeriod()
	exposureSpan := cfg.Camera.Exposure + cfg.Camera.ReadoutTime
	nCaps := int((dur - cfg.CameraStart - exposureSpan) / period)
	if nCaps <= 0 {
		// Render anyway so the error mirrors the sequential path's state.
		if err := m.PushTo(link.Display, nDisplayFrames); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("channel: displayed duration too short for any capture")
	}
	caps := make([]*frame.Frame, nCaps)
	times := make([]float64, nCaps)
	pool := parallel.NewPool(cfg.Workers)
	frameT := 1 / cfg.Display.RefreshHz
	next := 0
	dispatch := func(i int) {
		t := cfg.CameraStart + float64(i)*period
		times[i] = t
		pool.Go(func() {
			caps[i] = link.Camera.Capture(link.Display, t, i)
		})
	}
	for k := 0; k < nDisplayFrames; k++ {
		f := m.Frame(k)
		if err := link.Display.Push(f); err != nil {
			// The display rejected the frame, so nothing holds the buffer:
			// hand it back before unwinding.
			m.Recycle(f)
			pool.Wait()
			return nil, fmt.Errorf("channel: frame %d: %w", k, err)
		}
		// The display has copied the frame into its drive history; hand
		// the buffer back so the next render reuses it.
		m.Recycle(f)
		for next < nCaps {
			t := cfg.CameraStart + float64(next)*period
			// Capture windows integrate display rows over
			// [t, t+exposure+readout); frames 0..ceil(end/T)-1 must be on
			// the monitor before the capture may run.
			if need := int(math.Ceil((t + exposureSpan) / frameT)); need > k+1 {
				break
			}
			dispatch(next)
			next++
		}
	}
	// Float-boundary stragglers: everything is pushed now, so any capture
	// still pending is safe to run.
	for ; next < nCaps; next++ {
		dispatch(next)
	}
	pool.Wait()
	return &Result{Captures: caps, Times: times, Exposure: cfg.Camera.Exposure}, nil
}

// simulateImpaired is the fault-injected counterpart of simulatePipelined:
// capture times follow the drift-skewed, jittered schedule, every finished
// capture runs through the pixel-domain impairment stages, and the delivery
// stages (drop/duplicate) rewrite the final sequence. One code path serves
// every worker count — the worker pool degrades to inline execution at 1 —
// and all randomness is keyed by capture index, so results are bit-identical
// at any worker count.
func simulateImpaired(m *core.Multiplexer, nDisplayFrames int, cfg Config, link *Link) (*Result, error) {
	st := impair.New(*cfg.Impair)
	dur := float64(nDisplayFrames) / cfg.Display.RefreshHz
	period := st.Period(link.Camera.FramePeriod())
	exposureSpan := cfg.Camera.Exposure + cfg.Camera.ReadoutTime
	// Jitter may push an exposure later by up to StartJitter; budget for it
	// so every scheduled capture fits inside the displayed duration even at
	// the jitter extreme.
	nCaps := int((dur - cfg.CameraStart - exposureSpan - cfg.Impair.StartJitter) / period)
	if nCaps <= 0 {
		if err := m.PushTo(link.Display, nDisplayFrames); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("channel: displayed duration too short for any capture")
	}
	caps := make([]*frame.Frame, nCaps)
	times := make([]float64, nCaps)
	for i := range times {
		times[i] = st.CaptureTime(i, cfg.CameraStart, period)
	}
	pool := parallel.NewPool(cfg.Workers)
	frameT := 1 / cfg.Display.RefreshHz
	next := 0
	dispatch := func(i int) {
		t := times[i]
		pool.Go(func() {
			f := link.Camera.Capture(link.Display, t, i)
			st.ApplyFrame(f, i, t, cfg.Camera.Exposure)
			caps[i] = f
		})
	}
	for k := 0; k < nDisplayFrames; k++ {
		f := m.Frame(k)
		if err := link.Display.Push(f); err != nil {
			// The display rejected the frame; recycle before unwinding.
			m.Recycle(f)
			pool.Wait()
			return nil, fmt.Errorf("channel: frame %d: %w", k, err)
		}
		m.Recycle(f)
		for next < nCaps {
			// Dispatch in index order using each capture's own (jittered)
			// window; a not-yet-coverable capture blocks later ones only
			// until the straggler sweep below.
			if need := int(math.Ceil((times[next] + exposureSpan) / frameT)); need > k+1 {
				break
			}
			dispatch(next)
			next++
		}
	}
	for ; next < nCaps; next++ {
		dispatch(next)
	}
	pool.Wait()
	// Delivery-pipeline stages run on the assembled sequence. Dropped
	// captures go back to the pool the camera drew them from; duplicates
	// are drawn from it.
	outCaps, outTimes := st.ApplySequence(caps, times, period, link.cfg.Camera.Pool)
	return &Result{Captures: outCaps, Times: outTimes, Exposure: cfg.Camera.Exposure}, nil
}
