package channel

import (
	"math"
	"testing"

	"inframe/internal/camera"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/impair"
	"inframe/internal/metrics"
	"inframe/internal/video"
)

// testLayout: 6×4 blocks of 8×8 px (p=2, s=4) on a 48×32 panel.
func testLayout() core.Layout {
	return core.Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

func testParams() core.Params {
	p := core.DefaultParams(testLayout())
	p.Tau = 8
	return p
}

// quietChannel is a benign channel: capture at display resolution, short
// exposure, no rolling shutter, light noise.
func quietChannel(capW, capH int) Config {
	cfg := DefaultConfig(capW, capH)
	cfg.Camera.ReadoutTime = 0
	cfg.Camera.NoiseSigma = 0.5
	cfg.Camera.BlurRadius = 0
	cfg.Camera.Exposure = 0.004
	cfg.Display.ResponseTime = 0
	return cfg
}

func TestNewValidatesConfigs(t *testing.T) {
	cfg := DefaultConfig(48, 32)
	cfg.Display.RefreshHz = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted bad display config")
	}
	cfg = DefaultConfig(48, 32)
	cfg.Camera.FPS = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted bad camera config")
	}
}

func TestTransmitAndCaptureAll(t *testing.T) {
	link, err := New(quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*frame.Frame, 60) // 0.5 s at 120 Hz
	for i := range frames {
		frames[i] = frame.NewFilled(48, 32, 127)
	}
	if err := link.Transmit(frames); err != nil {
		t.Fatal(err)
	}
	caps, times := link.CaptureAll()
	if len(caps) == 0 {
		t.Fatal("no captures from a 0.5 s transmission")
	}
	if len(caps) != len(times) {
		t.Fatal("captures/times length mismatch")
	}
	// ~30 FPS over 0.5 s minus the tail margin.
	if len(caps) < 12 || len(caps) > 15 {
		t.Fatalf("capture count %d, want ~14", len(caps))
	}
}

func TestCaptureAllEmptyDisplay(t *testing.T) {
	link, err := New(quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	caps, _ := link.CaptureAll()
	if caps != nil {
		t.Fatal("expected no captures from an empty display")
	}
}

func TestSimulateEndToEndGray(t *testing.T) {
	p := testParams()
	l := p.Layout
	stream := core.NewRandomStream(l, 31)
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), stream)
	if err != nil {
		t.Fatal(err)
	}
	nData := 14 // enough frames for the per-Block baseline to settle
	res, err := Simulate(m, nData*p.Tau+24, quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	rcfg := core.DefaultReceiverConfig(p, 48, 32)
	r, err := core.NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded := r.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData)
	var stats metrics.GOBStats
	for d, fd := range decoded {
		stats.AddWithOracle(fd, stream.DataFrame(d))
	}
	if ratio := stats.AvailableRatio(); ratio < 0.9 {
		t.Fatalf("benign-channel availability %.2f, want >= 0.9", ratio)
	}
	if errRate := stats.ErrorRate(); errRate > 0.05 {
		t.Fatalf("benign-channel error rate %.2f, want <= 0.05", errRate)
	}
}

func TestSimulateTooShort(t *testing.T) {
	p := testParams()
	m, err := core.NewMultiplexer(p, video.Gray(48, 32), core.NewRandomStream(p.Layout, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(m, 2, quietChannel(48, 32)); err == nil {
		t.Fatal("expected error for too-short transmission")
	}
}

// TestRollingShutterDegradesAvailability: the same transmission decoded
// through a rolling-shutter, longer-exposure camera must lose availability
// relative to the benign channel — the §3.3 impairment.
func TestRollingShutterDegradesAvailability(t *testing.T) {
	p := testParams()
	l := p.Layout
	stream := core.NewRandomStream(l, 33)
	availability := func(cfg Config) float64 {
		m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), stream)
		if err != nil {
			t.Fatal(err)
		}
		nData := 14
		res, err := Simulate(m, nData*p.Tau+24, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.NewReceiver(core.DefaultReceiverConfig(p, 48, 32))
		if err != nil {
			t.Fatal(err)
		}
		var stats metrics.GOBStats
		for _, fd := range r.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData) {
			stats.Add(fd)
		}
		return stats.AvailableRatio()
	}
	benign := availability(quietChannel(48, 32))
	// An exposure spanning exactly one complementary pair integrates the
	// chessboard away on every row — the §3.2 rate-mismatch failure mode.
	harsh := quietChannel(48, 32)
	harsh.Camera.Exposure = 2.0 / 120
	harshAvail := availability(harsh)
	if harshAvail >= benign-0.3 {
		t.Fatalf("pair-spanning exposure did not collapse availability: %.3f vs benign %.3f", harshAvail, benign)
	}
}

// TestCameraStartEdgeCases is the regression test for CameraStart values
// outside [0, display frame period): both directions are defined behaviour
// (see the Config.CameraStart doc), not artifacts.
func TestCameraStartEdgeCases(t *testing.T) {
	mkFrames := func() []*frame.Frame {
		frames := make([]*frame.Frame, 60) // 0.5 s at 120 Hz
		for k := range frames {
			frames[k] = frame.NewFilled(48, 32, float32(40+2*k))
		}
		return frames
	}
	base := quietChannel(48, 32)
	base.Camera.NoiseSigma = 0

	t.Run("negative offset holds the first frame", func(t *testing.T) {
		cfg := base
		cfg.CameraStart = -0.05
		link, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := link.Transmit(mkFrames()); err != nil {
			t.Fatal(err)
		}
		caps, times := link.CaptureAll()
		// The budget formula gains captures from a negative offset: every
		// extra slot sees the held first frame.
		wantN := int((0.5 - cfg.CameraStart - cfg.Camera.Exposure) / (1.0 / 30))
		if len(caps) != wantN {
			t.Fatalf("capture count %d, want %d from the budget formula", len(caps), wantN)
		}
		if math.Abs(times[0]-cfg.CameraStart) > 0 {
			t.Fatalf("first exposure at %v, want CameraStart %v", times[0], cfg.CameraStart)
		}
		// Captures whose window closes before t=0 integrate the first
		// pushed frame as a static hold.
		held := link.Camera.Capture(link.Display, 0, 0)
		for i := range caps {
			if times[i]+cfg.Camera.Exposure > 0 {
				break
			}
			if !caps[i].Equal(held) {
				t.Fatalf("pre-start capture %d differs from the held first frame", i)
			}
		}
		if !caps[0].Equal(held) {
			t.Fatal("no pre-start capture was checked")
		}
	})

	t.Run("offset beyond one frame period skips ahead", func(t *testing.T) {
		frameT := 1.0 / 120
		cfg := base
		cfg.CameraStart = 10.5 * frameT // mid-interval of display frame 10
		link, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := link.Transmit(mkFrames()); err != nil {
			t.Fatal(err)
		}
		caps, times := link.CaptureAll()
		if len(caps) == 0 {
			t.Fatal("no captures for an in-range late start")
		}
		if math.Abs(times[0]-cfg.CameraStart) > 0 {
			t.Fatalf("first exposure at %v, want %v (no period wrap-around)", times[0], cfg.CameraStart)
		}
		// Display frame 10 is filled with 60; the default gamma round-trip
		// is identity for static content, so the capture must read ~60 —
		// not the ~40 of frame 0 a modulo-period wrap would produce.
		mean := caps[0].Mean()
		if mean < 58 || mean > 62 {
			t.Fatalf("first capture mean %.1f, want ~60 (display frame 10), not ~40 (frame 0)", mean)
		}
	})

	t.Run("offset beyond the transmission fails cleanly", func(t *testing.T) {
		p := testParams()
		m, err := core.NewMultiplexer(p, video.Gray(48, 32), core.NewRandomStream(p.Layout, 1))
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.CameraStart = 0.6 // past the 0.5 s transmission
		if _, err := Simulate(m, 60, cfg); err == nil {
			t.Fatal("expected the too-short error for an offset past the transmission")
		}
	})
}

// impairedConfig is a moderately hostile stack used by the channel-level
// impairment tests.
func impairedConfig() *impair.Config {
	return &impair.Config{
		Seed:          17,
		ClockDriftPPM: 300,
		StartJitter:   2e-4,
		DropRate:      0.3,
		DupRate:       0.3,
		AmbientRamp:   6,
		FlickerAmp:    3,
		FlickerHz:     100,
		BurstRate:     0.2,
		BurstSigma:    6,
	}
}

// TestImpairedSimulateWorkerInvariance: the fault-injected path must stay
// bit-identical at any worker count — impairments are keyed by capture
// index, never by scheduling.
func TestImpairedSimulateWorkerInvariance(t *testing.T) {
	run := func(workers int) *Result {
		p := testParams()
		m, err := core.NewMultiplexer(p, video.Gray(48, 32), core.NewRandomStream(p.Layout, 5))
		if err != nil {
			t.Fatal(err)
		}
		cfg := quietChannel(48, 32)
		cfg.Workers = workers
		cfg.Camera.Workers = workers
		cfg.Impair = impairedConfig()
		res, err := Simulate(m, 120, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	if len(want.Captures) == 0 {
		t.Fatal("impaired run produced no captures")
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got.Captures) != len(want.Captures) {
			t.Fatalf("workers=%d: %d captures, want %d", w, len(got.Captures), len(want.Captures))
		}
		for i, c := range got.Captures {
			if math.Abs(got.Times[i]-want.Times[i]) > 0 {
				t.Fatalf("workers=%d: capture %d time %v, want %v", w, i, got.Times[i], want.Times[i])
			}
			if !c.Equal(want.Captures[i]) {
				t.Fatalf("workers=%d: capture %d not bit-identical", w, i)
			}
		}
	}
}

// TestImpairedPoolRecycling is the drop/duplicate pool-safety test: over
// repeated impaired simulate+recycle cycles with one shared pool, dropped
// captures must go back exactly once (a double Put panics loudly) and
// duplicates must come from and return to the pool — after warmup the pool
// stops allocating entirely, which rules out leaks.
func TestImpairedPoolRecycling(t *testing.T) {
	p := testParams()
	pool := frame.NewPool()
	cycle := func() {
		m, err := core.NewMultiplexer(p, video.Gray(48, 32), core.NewRandomStream(p.Layout, 5))
		if err != nil {
			t.Fatal(err)
		}
		cfg := quietChannel(48, 32)
		cfg.Pool = pool
		cfg.Impair = impairedConfig()
		res, err := Simulate(m, 120, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[*frame.Frame]bool, len(res.Captures))
		for i, c := range res.Captures {
			if seen[c] {
				t.Fatalf("capture %d aliases an earlier capture: Recycle would double-Put", i)
			}
			seen[c] = true
		}
		res.Recycle(pool)
	}
	cycle()
	cycle()
	warm := pool.Stats()
	if warm.Puts == 0 || warm.Hits == 0 {
		t.Fatalf("pool not exercised during warmup: %+v", warm)
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	steady := pool.Stats()
	if steady.Misses != warm.Misses {
		t.Errorf("impaired steady state allocated %d frame buffers (misses %d -> %d): dropped or duplicated captures leaked",
			steady.Misses-warm.Misses, warm.Misses, steady.Misses)
	}
}

func TestDisplayCameraDefaultsCompose(t *testing.T) {
	cfg := DefaultConfig(640, 360)
	want := display.DefaultConfig()
	want.ResponseTime = 0 // channel default models the strobed FG2421
	if cfg.Display != want {
		t.Fatal("display default mismatch")
	}
	if cfg.Camera != camera.DefaultConfig(640, 360) {
		t.Fatal("camera default mismatch")
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}
