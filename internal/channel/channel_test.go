package channel

import (
	"testing"

	"inframe/internal/camera"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/metrics"
	"inframe/internal/video"
)

// testLayout: 6×4 blocks of 8×8 px (p=2, s=4) on a 48×32 panel.
func testLayout() core.Layout {
	return core.Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

func testParams() core.Params {
	p := core.DefaultParams(testLayout())
	p.Tau = 8
	return p
}

// quietChannel is a benign channel: capture at display resolution, short
// exposure, no rolling shutter, light noise.
func quietChannel(capW, capH int) Config {
	cfg := DefaultConfig(capW, capH)
	cfg.Camera.ReadoutTime = 0
	cfg.Camera.NoiseSigma = 0.5
	cfg.Camera.BlurRadius = 0
	cfg.Camera.Exposure = 0.004
	cfg.Display.ResponseTime = 0
	return cfg
}

func TestNewValidatesConfigs(t *testing.T) {
	cfg := DefaultConfig(48, 32)
	cfg.Display.RefreshHz = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted bad display config")
	}
	cfg = DefaultConfig(48, 32)
	cfg.Camera.FPS = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted bad camera config")
	}
}

func TestTransmitAndCaptureAll(t *testing.T) {
	link, err := New(quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*frame.Frame, 60) // 0.5 s at 120 Hz
	for i := range frames {
		frames[i] = frame.NewFilled(48, 32, 127)
	}
	if err := link.Transmit(frames); err != nil {
		t.Fatal(err)
	}
	caps, times := link.CaptureAll()
	if len(caps) == 0 {
		t.Fatal("no captures from a 0.5 s transmission")
	}
	if len(caps) != len(times) {
		t.Fatal("captures/times length mismatch")
	}
	// ~30 FPS over 0.5 s minus the tail margin.
	if len(caps) < 12 || len(caps) > 15 {
		t.Fatalf("capture count %d, want ~14", len(caps))
	}
}

func TestCaptureAllEmptyDisplay(t *testing.T) {
	link, err := New(quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	caps, _ := link.CaptureAll()
	if caps != nil {
		t.Fatal("expected no captures from an empty display")
	}
}

func TestSimulateEndToEndGray(t *testing.T) {
	p := testParams()
	l := p.Layout
	stream := core.NewRandomStream(l, 31)
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), stream)
	if err != nil {
		t.Fatal(err)
	}
	nData := 14 // enough frames for the per-Block baseline to settle
	res, err := Simulate(m, nData*p.Tau+24, quietChannel(48, 32))
	if err != nil {
		t.Fatal(err)
	}
	rcfg := core.DefaultReceiverConfig(p, 48, 32)
	r, err := core.NewReceiver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	decoded := r.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData)
	var stats metrics.GOBStats
	for d, fd := range decoded {
		stats.AddWithOracle(fd, stream.DataFrame(d))
	}
	if ratio := stats.AvailableRatio(); ratio < 0.9 {
		t.Fatalf("benign-channel availability %.2f, want >= 0.9", ratio)
	}
	if errRate := stats.ErrorRate(); errRate > 0.05 {
		t.Fatalf("benign-channel error rate %.2f, want <= 0.05", errRate)
	}
}

func TestSimulateTooShort(t *testing.T) {
	p := testParams()
	m, err := core.NewMultiplexer(p, video.Gray(48, 32), core.NewRandomStream(p.Layout, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(m, 2, quietChannel(48, 32)); err == nil {
		t.Fatal("expected error for too-short transmission")
	}
}

// TestRollingShutterDegradesAvailability: the same transmission decoded
// through a rolling-shutter, longer-exposure camera must lose availability
// relative to the benign channel — the §3.3 impairment.
func TestRollingShutterDegradesAvailability(t *testing.T) {
	p := testParams()
	l := p.Layout
	stream := core.NewRandomStream(l, 33)
	availability := func(cfg Config) float64 {
		m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), stream)
		if err != nil {
			t.Fatal(err)
		}
		nData := 14
		res, err := Simulate(m, nData*p.Tau+24, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.NewReceiver(core.DefaultReceiverConfig(p, 48, 32))
		if err != nil {
			t.Fatal(err)
		}
		var stats metrics.GOBStats
		for _, fd := range r.DecodeCaptures(res.Captures, res.Times, res.Exposure, nData) {
			stats.Add(fd)
		}
		return stats.AvailableRatio()
	}
	benign := availability(quietChannel(48, 32))
	// An exposure spanning exactly one complementary pair integrates the
	// chessboard away on every row — the §3.2 rate-mismatch failure mode.
	harsh := quietChannel(48, 32)
	harsh.Camera.Exposure = 2.0 / 120
	harshAvail := availability(harsh)
	if harshAvail >= benign-0.3 {
		t.Fatalf("pair-spanning exposure did not collapse availability: %.3f vs benign %.3f", harshAvail, benign)
	}
}

func TestDisplayCameraDefaultsCompose(t *testing.T) {
	cfg := DefaultConfig(640, 360)
	want := display.DefaultConfig()
	want.ResponseTime = 0 // channel default models the strobed FG2421
	if cfg.Display != want {
		t.Fatal("display default mismatch")
	}
	if cfg.Camera != camera.DefaultConfig(640, 360) {
		t.Fatal("camera default mismatch")
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}
