package video

import (
	"math/rand"

	"inframe/internal/frame"
)

// Ticker is a TextCard-style scene with one horizontally scrolling
// pseudo-text band (a news ticker): everything outside the band never
// changes between frames, and DirtyRegion reports exactly the band, so an
// incremental consumer (the multiplexer's per-Block headroom and delta
// caches) only touches the Blocks the ticker crosses. The scrolling
// content is the same seeded word-block texture TextCard uses, laid out as
// a cyclic one-dimensional strip.
type Ticker struct {
	W, H int
	Rate float64
	// Speed is the scroll in pixels per video frame (≥ 1).
	Speed int
	// bandY0/bandH bound the scrolling band's rows; textY0/textH the word
	// rows inside it.
	bandY0, bandH, textY0, textH int
	base                         *frame.Frame
	// strip is the cyclic 1-D word-block pattern: strip[x] is the band
	// column's text luminance (or the band background where no word is).
	strip []float32
}

// NewTicker builds a deterministic ticker scene from seed: a TextCard
// background with the lower band replaced by a scrolling word strip. The
// strip is at least twice the frame width so the scroll phase never shows
// a seam.
func NewTicker(w, h int, seed int64, speed int) *Ticker {
	if speed < 1 {
		speed = 1
	}
	base := NewTextCard(w, h, seed).base
	lineH := maxInt(h/18, 2)
	bandH := lineH * 3
	bandY0 := h - h/8 - bandH
	if bandY0 < 0 {
		bandY0 = 0
	}
	if bandY0+bandH > h {
		bandH = h - bandY0
	}
	t := &Ticker{
		W: w, H: h, Rate: 30, Speed: speed,
		bandY0: bandY0, bandH: bandH,
		textY0: bandY0 + lineH, textH: minInt(lineH, bandY0+bandH-(bandY0+lineH)),
		base: base.Clone(),
	}
	// Band background: darker than the card so the scroll region reads as
	// a banner.
	for y := bandY0; y < bandY0+bandH; y++ {
		for x := 0; x < w; x++ {
			t.base.Set(x, y, 70)
		}
	}
	// Cyclic word strip, seeded independently of the card body.
	rng := rand.New(rand.NewSource(seed*7919 + 1))
	n := maxInt(2*w, 64)
	t.strip = make([]float32, n)
	for i := range t.strip {
		t.strip[i] = 70
	}
	x := 0
	for x < n-lineH {
		wordW := (2 + rng.Intn(6)) * lineH
		if x+wordW > n {
			wordW = n - x
		}
		for xx := x; xx < x+wordW; xx++ {
			t.strip[xx] = 230
		}
		x += wordW + lineH + rng.Intn(lineH+1)
	}
	return t
}

// Band returns the scrolling band's row extent (y0, height): the region
// DirtyRegion reports for every frame transition.
func (t *Ticker) Band() (y0, h int) { return t.bandY0, t.bandH }

// Frame implements Source.
func (t *Ticker) Frame(i int) *frame.Frame {
	f := frame.New(t.W, t.H)
	t.FrameInto(i, f)
	return f
}

// FrameInto implements IntoSource: the static base plus the strip scrolled
// to frame i's phase. Equal i yields bit-identical pixels.
func (t *Ticker) FrameInto(i int, dst *frame.Frame) {
	t.base.CloneInto(dst)
	n := len(t.strip)
	shift := (i * t.Speed) % n
	if shift < 0 {
		shift += n
	}
	for y := t.textY0; y < t.textY0+t.textH; y++ {
		row := dst.Pix[y*t.W : (y+1)*t.W]
		for x := range row {
			row[x] = t.strip[(x+shift)%n]
		}
	}
}

// Size implements Source.
func (t *Ticker) Size() (int, int) { return t.W, t.H }

// FPS implements Source.
func (t *Ticker) FPS() float64 { return t.Rate }

// DirtyRegion implements RegionSource: only the band's rows ever change.
func (t *Ticker) DirtyRegion(i int) (Region, bool) {
	if i <= 0 {
		return Region{}, false
	}
	return Region{X: 0, Y: t.bandY0, W: t.W, H: t.bandH}, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
