package video

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/y4m"
)

func writeY4M(t *testing.T, frames []*frame.RGB, fps int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	wr, err := y4m.NewWriter(&buf, y4m.Header{
		W: frames[0].W, H: frames[0].H, FPSNum: fps, FPSDen: 1, ColorSpace: y4m.C444,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := wr.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestFromY4M(t *testing.T) {
	frames := []*frame.RGB{
		frame.NewRGBFilled(16, 12, 50, 60, 70),
		frame.NewRGBFilled(16, 12, 150, 140, 130),
	}
	clip, err := FromY4M(writeY4M(t, frames, 24))
	if err != nil {
		t.Fatal(err)
	}
	if clip.FPS() != 24 {
		t.Fatalf("FPS = %v", clip.FPS())
	}
	w, h := clip.Size()
	if w != 16 || h != 12 {
		t.Fatalf("size %dx%d", w, h)
	}
	r, _, _ := clip.FrameRGB(0).At(8, 6)
	if math.Abs(float64(r)-50) > 2 {
		t.Fatalf("frame 0 red = %v, want ~50", r)
	}
	// Loops.
	r2, _, _ := clip.FrameRGB(2).At(8, 6)
	if math.Abs(float64(r2)-50) > 2 {
		t.Fatalf("frame 2 (looped) red = %v, want ~50", r2)
	}
}

func TestFromY4MErrors(t *testing.T) {
	if _, err := FromY4M(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Header-only stream: no frames.
	if _, err := FromY4M(strings.NewReader("YUV4MPEG2 W4 H4 F30:1 C444\n")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestOpenY4M(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.y4m")
	buf := writeY4M(t, []*frame.RGB{frame.NewRGBFilled(8, 8, 10, 20, 30)}, 30)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	clip, err := OpenY4M(path)
	if err != nil {
		t.Fatal(err)
	}
	if clip.FPS() != 30 {
		t.Fatalf("FPS = %v", clip.FPS())
	}
	if _, err := OpenY4M(filepath.Join(t.TempDir(), "missing.y4m")); err == nil {
		t.Fatal("missing file opened")
	}
}
