package video

import (
	"math"
	"testing"

	"inframe/internal/frame"
)

func checkSource(t *testing.T, s Source, wantW, wantH int) {
	t.Helper()
	w, h := s.Size()
	if w != wantW || h != wantH {
		t.Fatalf("Size = %dx%d, want %dx%d", w, h, wantW, wantH)
	}
	if s.FPS() <= 0 {
		t.Fatalf("FPS = %v, want > 0", s.FPS())
	}
	f := s.Frame(0)
	if f.W != w || f.H != h {
		t.Fatalf("Frame size %dx%d mismatches Size %dx%d", f.W, f.H, w, h)
	}
	min, max := f.MinMax()
	if min < 0 || max > 255 {
		t.Fatalf("frame values out of range: [%v,%v]", min, max)
	}
}

func TestSolidLevels(t *testing.T) {
	g := Gray(32, 24)
	checkSource(t, g, 32, 24)
	if v := g.Frame(5).At(3, 3); v != 180 {
		t.Fatalf("Gray level = %v, want 180", v)
	}
	d := DarkGray(32, 24)
	if v := d.Frame(0).At(0, 0); v != 127 {
		t.Fatalf("DarkGray level = %v, want 127", v)
	}
}

func TestSolidFramesAreIndependent(t *testing.T) {
	s := Gray(8, 8)
	a := s.Frame(0)
	a.Fill(0)
	if s.Frame(0).At(0, 0) != 180 {
		t.Fatal("mutating a returned frame corrupted the source")
	}
}

func TestSunRiseDeterministic(t *testing.T) {
	a := NewSunRise(48, 32, 7)
	b := NewSunRise(48, 32, 7)
	checkSource(t, a, 48, 32)
	for _, i := range []int{0, 10, 100} {
		if !a.Frame(i).Equal(b.Frame(i)) {
			t.Fatalf("frame %d differs between identically seeded sources", i)
		}
	}
}

func TestSunRiseEvolves(t *testing.T) {
	s := NewSunRise(48, 32, 7)
	if s.Frame(0).Equal(s.Frame(60)) {
		t.Fatal("sun-rise clip is static; expected temporal evolution")
	}
	// Sky should brighten over the first half of the clip.
	early := s.Frame(0).Region(0, 0, 48, 8).Mean()
	late := s.Frame(250).Region(0, 0, 48, 8).Mean()
	if late <= early {
		t.Fatalf("sky did not brighten: %.1f -> %.1f", early, late)
	}
}

func TestSunRiseHasTexture(t *testing.T) {
	s := NewSunRise(64, 64, 3)
	f := s.Frame(0)
	ground := f.Region(0, 48, 64, 16)
	if e := frame.HighFreqEnergy(ground, 1); e < 3 {
		t.Fatalf("ground texture energy = %v, want >= 3", e)
	}
}

func TestNoiseRangeAndDeterminism(t *testing.T) {
	n := NewNoise(16, 16, 50, 200, 42)
	checkSource(t, n, 16, 16)
	f := n.Frame(3)
	min, max := f.MinMax()
	if min < 50 || max > 200 {
		t.Fatalf("noise out of [50,200]: [%v,%v]", min, max)
	}
	if !f.Equal(NewNoise(16, 16, 50, 200, 42).Frame(3)) {
		t.Fatal("noise frames not reproducible for equal seeds")
	}
	if f.Equal(n.Frame(4)) {
		t.Fatal("consecutive noise frames identical")
	}
}

func TestMovingBarsMove(t *testing.T) {
	m := NewMovingBars(40, 20, 10, 2)
	checkSource(t, m, 40, 20)
	if m.Frame(0).Equal(m.Frame(1)) {
		t.Fatal("bars did not move between frames")
	}
	// Bars drifting at 2 px/frame repeat exactly every period/speed frames.
	if !m.Frame(0).Equal(m.Frame(5)) {
		t.Fatal("bars did not wrap after one full period")
	}
}

func TestGradientCoversRange(t *testing.T) {
	g := NewGradient(32, 32)
	checkSource(t, g, 32, 32)
	f := g.Frame(0)
	min, max := f.MinMax()
	if min != 0 || math.Abs(float64(max)-255) > 1e-3 {
		t.Fatalf("gradient range [%v,%v], want [0,255]", min, max)
	}
	if f.At(0, 0) >= f.At(31, 31) {
		t.Fatal("gradient not increasing along diagonal")
	}
}

func TestClipLoops(t *testing.T) {
	frames := []*frame.Frame{
		frame.NewFilled(4, 4, 1),
		frame.NewFilled(4, 4, 2),
		frame.NewFilled(4, 4, 3),
	}
	c := NewClip(frames)
	checkSource(t, c, 4, 4)
	if c.Frame(4).At(0, 0) != 2 {
		t.Fatalf("Frame(4) = %v, want 2 (looped)", c.Frame(4).At(0, 0))
	}
	if c.Frame(-1).At(0, 0) != 3 {
		t.Fatalf("Frame(-1) = %v, want 3 (wrapped)", c.Frame(-1).At(0, 0))
	}
}

func TestClipFramesAreCopies(t *testing.T) {
	c := NewClip([]*frame.Frame{frame.NewFilled(2, 2, 9)})
	f := c.Frame(0)
	f.Fill(0)
	if c.Frame(0).At(0, 0) != 9 {
		t.Fatal("Clip handed out its backing frame")
	}
}

func TestNewClipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClip(nil) did not panic")
		}
	}()
	NewClip(nil)
}

func TestNewClipPanicsOnMixedSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClip with mixed sizes did not panic")
		}
	}()
	NewClip([]*frame.Frame{frame.New(2, 2), frame.New(3, 3)})
}

func TestRecordFreezesSource(t *testing.T) {
	src := NewSunRise(24, 16, 5)
	clip := Record(src, 4)
	if len(clip.Frames) != 4 {
		t.Fatalf("Record kept %d frames, want 4", len(clip.Frames))
	}
	if clip.FPS() != src.FPS() {
		t.Fatalf("Record FPS = %v, want %v", clip.FPS(), src.FPS())
	}
	if !clip.Frame(2).Equal(src.Frame(2)) {
		t.Fatal("recorded frame differs from source frame")
	}
}

func TestTextCard(t *testing.T) {
	c := NewTextCard(64, 48, 1)
	checkSource(t, c, 64, 48)
	f := c.Frame(0)
	// Banner darker than body background.
	banner := f.Region(0, 0, 64, 8).Mean()
	body := f.Region(0, 40, 64, 8).Mean()
	if banner >= body {
		t.Fatalf("banner %.0f not darker than body %.0f", banner, body)
	}
	// Deterministic per seed, static over time.
	if !f.Equal(NewTextCard(64, 48, 1).Frame(9)) {
		t.Fatal("text card not deterministic")
	}
	if NewTextCard(64, 48, 2).Frame(0).Equal(f) {
		t.Fatal("different seeds produced identical cards")
	}
}
