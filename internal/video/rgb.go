package video

import (
	"fmt"
	"math"

	"inframe/internal/frame"
)

// RGBSource yields color primary-channel content. The secondary channel
// lives on luma only, so RGBSource exists for the presentation path: color
// demos, Y4M export, and ingesting real footage.
type RGBSource interface {
	// FrameRGB returns the i-th color frame (caller may mutate).
	FrameRGB(i int) *frame.RGB
	// Size returns the frame dimensions in pixels.
	Size() (w, h int)
	// FPS returns the native content frame rate.
	FPS() float64
}

// Luma adapts an RGBSource to the grayscale Source interface by extracting
// the Y plane — the view the core pipeline and the camera operate on.
type Luma struct{ Src RGBSource }

// Frame implements Source.
func (l Luma) Frame(i int) *frame.Frame { return l.Src.FrameRGB(i).Luma() }

// Size implements Source.
func (l Luma) Size() (int, int) { return l.Src.Size() }

// FPS implements Source.
func (l Luma) FPS() float64 { return l.Src.FPS() }

// Colorize adapts a grayscale Source to RGBSource (equal channels).
type Colorize struct{ Src Source }

// FrameRGB implements RGBSource.
func (c Colorize) FrameRGB(i int) *frame.RGB { return frame.FromLuma(c.Src.Frame(i)) }

// Size implements RGBSource.
func (c Colorize) Size() (int, int) { return c.Src.Size() }

// FPS implements RGBSource.
func (c Colorize) FPS() float64 { return c.Src.FPS() }

// RGBClip is a fixed, looping sequence of color frames — the adapter for
// footage loaded from Y4M files.
type RGBClip struct {
	Frames []*frame.RGB
	Rate   float64
}

// NewRGBClip wraps pre-rendered color frames as a looping source. It panics
// on empty or inconsistently sized input (a construction-time bug).
func NewRGBClip(frames []*frame.RGB, fps float64) *RGBClip {
	if len(frames) == 0 {
		panic("video.NewRGBClip: no frames")
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			panic(fmt.Sprintf("video.NewRGBClip: frame %d is %dx%d, want %dx%d", i, f.W, f.H, w, h))
		}
	}
	if fps <= 0 {
		fps = 30
	}
	return &RGBClip{Frames: frames, Rate: fps}
}

// FrameRGB implements RGBSource, looping.
func (c *RGBClip) FrameRGB(i int) *frame.RGB {
	n := len(c.Frames)
	return c.Frames[((i%n)+n)%n].Clone()
}

// Size implements RGBSource.
func (c *RGBClip) Size() (int, int) { return c.Frames[0].W, c.Frames[0].H }

// FPS implements RGBSource.
func (c *RGBClip) FPS() float64 { return c.Rate }

// ColorSunRise is the color rendition of the sun-rise clip: orange sun and
// halo over a blue-to-amber sky gradient, dark green textured ground. Its
// luma plane matches the channel behaviour of SunRise (bright saturated
// halo, heavy ground texture) while exercising the full color path.
type ColorSunRise struct {
	W, H int
	Rate float64
	mono *SunRise
}

// NewColorSunRise builds the color clip; the same seed reproduces it.
func NewColorSunRise(w, h int, seed int64) *ColorSunRise {
	return &ColorSunRise{W: w, H: h, Rate: 30, mono: NewSunRise(w, h, seed)}
}

// FrameRGB implements RGBSource: the luma structure comes from the
// grayscale clip and a position-dependent tint supplies chroma.
func (s *ColorSunRise) FrameRGB(i int) *frame.RGB {
	y := s.mono.Frame(i)
	out := frame.NewRGB(s.W, s.H)
	horizon := 0.65 * float64(s.H)
	for py := 0; py < s.H; py++ {
		sky := float64(py) < horizon
		for px := 0; px < s.W; px++ {
			idx := py*s.W + px
			v := float64(y.Pix[idx])
			var r, g, b float64
			if sky {
				// Sky: blue high up, amber near the horizon/sun.
				warm := math.Min(1, v/255*1.2)
				r = v * (0.75 + 0.35*warm)
				g = v * 0.92
				b = v * (1.25 - 0.45*warm)
			} else {
				// Ground: muted green.
				r = v * 0.85
				g = v * 1.1
				b = v * 0.75
			}
			out.R[idx] = float32(math.Min(255, r))
			out.G[idx] = float32(math.Min(255, g))
			out.B[idx] = float32(math.Min(255, b))
		}
	}
	return out
}

// Size implements RGBSource.
func (s *ColorSunRise) Size() (int, int) { return s.W, s.H }

// FPS implements RGBSource.
func (s *ColorSunRise) FPS() float64 { return s.Rate }
