package video

import (
	"fmt"
	"io"
	"os"

	"inframe/internal/y4m"
)

// FromY4M drains a YUV4MPEG2 stream into a looping color source — the
// ingestion path for real footage as primary-channel content.
func FromY4M(r io.Reader) (*RGBClip, error) {
	rd, err := y4m.NewReader(r)
	if err != nil {
		return nil, err
	}
	frames, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("video: y4m stream has no frames")
	}
	return NewRGBClip(frames, rd.Header.FPS()), nil
}

// OpenY4M loads the .y4m file at path as a looping color source.
func OpenY4M(path string) (*RGBClip, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("video: opening %s: %w", path, err)
	}
	defer fh.Close()
	return FromY4M(fh)
}
