package video

import (
	"math/rand"

	"inframe/internal/frame"
)

// TextCard renders a title-card-like scene: a light background with dark
// pseudo-text line blocks and a highlighted banner. It models the
// advertisement / announcement content from the paper's application
// scenarios (§5), giving the pipeline large flat regions separated by sharp
// high-contrast edges.
type TextCard struct {
	W, H int
	Rate float64
	seed int64
	base *frame.Frame
}

// NewTextCard builds a deterministic text-card scene from seed.
func NewTextCard(w, h int, seed int64) *TextCard {
	t := &TextCard{W: w, H: h, Rate: 30, seed: seed}
	t.base = t.render()
	return t
}

func (t *TextCard) render() *frame.Frame {
	rng := rand.New(rand.NewSource(t.seed))
	f := frame.NewFilled(t.W, t.H, 225)

	// Banner across the top fifth.
	bannerH := t.H / 5
	for y := 0; y < bannerH; y++ {
		for x := 0; x < t.W; x++ {
			f.Set(x, y, 90)
		}
	}
	// "Text" lines: runs of dark word blocks with random lengths and gaps.
	lineH := maxInt(t.H/18, 2)
	gap := lineH
	y := bannerH + 2*gap
	for y+lineH < t.H-gap {
		x := t.W / 12
		for x < t.W*10/12 {
			wordW := (2 + rng.Intn(6)) * lineH
			if x+wordW > t.W*11/12 {
				wordW = t.W*11/12 - x
			}
			for yy := y; yy < y+lineH; yy++ {
				for xx := x; xx < x+wordW && xx < t.W; xx++ {
					f.Set(xx, yy, 40)
				}
			}
			x += wordW + lineH + rng.Intn(lineH+1)
		}
		y += lineH + gap
	}
	return f
}

// Frame implements Source; the card is static.
func (t *TextCard) Frame(int) *frame.Frame { return t.base.Clone() }

// FrameInto implements IntoSource, copying the static card into dst.
func (t *TextCard) FrameInto(_ int, dst *frame.Frame) { t.base.CloneInto(dst) }

// Size implements Source.
func (t *TextCard) Size() (int, int) { return t.W, t.H }

// FPS implements Source.
func (t *TextCard) FPS() float64 { return t.Rate }

// DirtyRegion implements RegionSource: the card is static, so no frame
// transition ever dirties a pixel and incremental consumers (the
// multiplexer's headroom and delta caches) skip every Block.
func (t *TextCard) DirtyRegion(i int) (Region, bool) { return staticDirty(i) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
