// Package video provides the primary-channel content sources for InFrame:
// an abstract Source interface and a set of procedural generators standing in
// for the paper's test inputs (pure gray, pure dark-gray, and a sun-rising
// clip), plus extra scenes used in tests and ablations.
//
// A Source produces luminance frames indexed by frame number at its native
// frame rate (the paper uses 30 FPS content on a 120 Hz display).
package video

import (
	"fmt"
	"math"
	"math/rand"

	"inframe/internal/frame"
)

// Source yields the primary video content, frame by frame.
type Source interface {
	// Frame returns the i-th video frame. Implementations must return a
	// frame the caller may mutate (a fresh copy or freshly rendered).
	Frame(i int) *frame.Frame
	// Size returns the frame dimensions in pixels.
	Size() (w, h int)
	// FPS returns the native content frame rate.
	FPS() float64
}

// IntoSource is an optional Source capability: FrameInto renders frame i
// into a caller-owned buffer instead of allocating one, producing pixels
// bit-identical to Frame(i). The pooled multiplexer type-asserts for it so
// the steady-state render loop reuses one video buffer for the whole run;
// sources without it fall back to per-video-frame allocation. dst must
// match the source size and every pixel is overwritten (dst need not be
// zeroed).
type IntoSource interface {
	Source
	FrameInto(i int, dst *frame.Frame)
}

// Region is an axis-aligned pixel rectangle inside a video frame. The zero
// Region is empty and means "nothing changed".
type Region struct {
	X, Y, W, H int
}

// Empty reports whether the region covers no pixels.
func (r Region) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Union returns the bounding region of r and s.
func (r Region) Union(s Region) Region {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x0, y0 := min(r.X, s.X), min(r.Y, s.Y)
	x1 := max(r.X+r.W, s.X+s.W)
	y1 := max(r.Y+r.H, s.Y+s.H)
	return Region{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Intersects reports whether r overlaps the rectangle with origin (x0, y0)
// and size w×h.
func (r Region) Intersects(x0, y0, w, h int) bool {
	return !r.Empty() && r.X < x0+w && x0 < r.X+r.W && r.Y < y0+h && y0 < r.Y+r.H
}

// RegionSource is an optional Source capability: a dirty-region hint for
// incremental consumers. DirtyRegion(i) returns, for i > 0, a region
// guaranteed to contain every pixel that differs between frames i-1 and i
// (an empty region therefore promises frame i is identical to frame i-1),
// with ok true. Returning ok false — required for i ≤ 0, allowed anywhere —
// degrades the caller to a conservative full-frame update, which is also
// what consumers must assume for sources without the interface. The hint
// must be sound: over-reporting is a missed optimization, under-reporting
// corrupts incremental renderers such as the multiplexer's per-Block
// headroom cache.
type RegionSource interface {
	Source
	DirtyRegion(i int) (Region, bool)
}

// staticDirty is the DirtyRegion of a source whose frames never change:
// empty (nothing dirty) for every transition, unknown for i ≤ 0.
func staticDirty(i int) (Region, bool) {
	if i <= 0 {
		return Region{}, false
	}
	return Region{}, true
}

// Solid is a constant-luminance video, the paper's "pure gray" and
// "pure dark gray" inputs (RGB 180 and 127 respectively, which collapse to
// the same value in luminance).
type Solid struct {
	W, H  int
	Level float32
	Rate  float64
}

// NewSolid returns a solid video source at 30 FPS.
func NewSolid(w, h int, level float32) *Solid {
	return &Solid{W: w, H: h, Level: level, Rate: 30}
}

// Frame implements Source.
func (s *Solid) Frame(int) *frame.Frame { return frame.NewFilled(s.W, s.H, s.Level) }

// FrameInto implements IntoSource.
func (s *Solid) FrameInto(_ int, dst *frame.Frame) { dst.Fill(s.Level) }

// Size implements Source.
func (s *Solid) Size() (int, int) { return s.W, s.H }

// FPS implements Source.
func (s *Solid) FPS() float64 { return s.Rate }

// DirtyRegion implements RegionSource: a solid field never changes.
func (s *Solid) DirtyRegion(i int) (Region, bool) { return staticDirty(i) }

// Gray returns the paper's bright pure-gray input (RGB 180,180,180).
func Gray(w, h int) *Solid { return NewSolid(w, h, 180) }

// DarkGray returns the paper's dark-gray input (RGB 127,127,127).
func DarkGray(w, h int) *Solid { return NewSolid(w, h, 127) }

// SunRise procedurally reproduces the structure of the paper's "sun-rising
// video clip" as seen by the secondary channel: a brightening sky gradient,
// a rising sun disc with a wide saturated halo and a glare band on the
// horizon (areas with no clipping headroom, where the local amplitude
// adjustment of §3.3 crushes the chessboard regardless of δ), and a dark
// ground with patchy high-spatial-frequency texture (false chessboard
// energy that stresses the noise detector).
type SunRise struct {
	W, H int
	Rate float64
	seed int64
	// texture is static per-pixel noise; strength is a patchy low-
	// frequency field modulating it, both regenerated from the seed.
	texture  []float32
	strength []float32
}

// NewSunRise builds the procedural clip. The same seed reproduces the same
// clip exactly.
func NewSunRise(w, h int, seed int64) *SunRise {
	s := &SunRise{W: w, H: h, Rate: 30, seed: seed}
	rng := rand.New(rand.NewSource(seed))
	s.texture = make([]float32, w*h)
	for i := range s.texture {
		s.texture[i] = rng.Float32()*2 - 1
	}
	// Patchy strength: constant within ~1/32-frame cells, varied across
	// them, so some regions are heavily textured and others nearly flat.
	cell := w / 32
	if cell < 2 {
		cell = 2
	}
	cw := (w + cell - 1) / cell
	ch := (h + cell - 1) / cell
	cells := make([]float32, cw*ch)
	for i := range cells {
		// Heavy-tailed: most cells mild, some strong.
		u := rng.Float32()
		cells[i] = 15 + 200*u*u
	}
	s.strength = make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s.strength[y*w+x] = cells[(y/cell)*cw+x/cell]
		}
	}
	return s
}

// Frame implements Source. The clip loops every 20 seconds of content.
func (s *SunRise) Frame(i int) *frame.Frame {
	f := frame.New(s.W, s.H)
	s.FrameInto(i, f)
	return f
}

// FrameInto implements IntoSource; every pixel of dst is written.
func (s *SunRise) FrameInto(i int, f *frame.Frame) {
	t := math.Mod(float64(i)/s.Rate, 20) / 20 // progress 0..1
	w, h := float64(s.W), float64(s.H)
	horizon := 0.65 * h
	sunX := w * (0.25 + 0.5*t)
	sunY := horizon - (0.05+0.45*t)*horizon
	sunR := 0.09 * w
	skyBase := 90 + 80*t
	glareH := 0.10 * h // saturated glare band above the horizon
	for y := 0; y < s.H; y++ {
		fy := float64(y)
		for x := 0; x < s.W; x++ {
			fx := float64(x)
			var v float64
			if fy < horizon {
				// Sky: vertical gradient brightening towards the horizon.
				v = skyBase + 120*(fy/horizon)
				// Glare band hugging the horizon: effectively saturated.
				if fy > horizon-glareH {
					v = 250
				}
				// Sun disc and halo.
				d := math.Hypot(fx-sunX, fy-sunY)
				switch {
				case d < sunR:
					v = 252
				case d < 3*sunR:
					v += (252 - v) * math.Exp(-(d-sunR)/(1.1*sunR))
				}
			} else {
				// Ground: dark with patchy texture that drifts slowly
				// (water/foliage motion), plus gentle luminance waves.
				// The drift matters to the secondary channel: moving
				// texture defeats temporal background subtraction the way
				// real footage does.
				base := 55 + 18*math.Sin(fx/17+3*t*2*math.Pi)
				drift := int(float64(i) / s.Rate * 45) // 1.5 px per frame
				tx := ((x+drift)%s.W + s.W) % s.W
				idx := y*s.W + tx
				v = base + float64(s.strength[y*s.W+x])*float64(s.texture[idx])
			}
			if v > 255 {
				v = 255
			} else if v < 0 {
				v = 0
			}
			f.Pix[y*s.W+x] = float32(v)
		}
	}
}

// Size implements Source.
func (s *SunRise) Size() (int, int) { return s.W, s.H }

// FPS implements Source.
func (s *SunRise) FPS() float64 { return s.Rate }

// Noise is an i.i.d. uniform noise video: the worst case for the chessboard
// detector, used in robustness tests.
type Noise struct {
	W, H int
	Rate float64
	Lo   float32
	Hi   float32
	seed int64
}

// NewNoise returns a noise source with pixel values uniform in [lo, hi].
func NewNoise(w, h int, lo, hi float32, seed int64) *Noise {
	return &Noise{W: w, H: h, Rate: 30, Lo: lo, Hi: hi, seed: seed}
}

// Frame implements Source. Each index yields a deterministic frame derived
// from the source seed and the index.
func (n *Noise) Frame(i int) *frame.Frame {
	f := frame.New(n.W, n.H)
	n.FrameInto(i, f)
	return f
}

// FrameInto implements IntoSource; every pixel of dst is written.
func (n *Noise) FrameInto(i int, f *frame.Frame) {
	rng := rand.New(rand.NewSource(n.seed ^ int64(i)*0x9e3779b97f4a7c))
	span := n.Hi - n.Lo
	for j := range f.Pix {
		f.Pix[j] = n.Lo + rng.Float32()*span
	}
}

// Size implements Source.
func (n *Noise) Size() (int, int) { return n.W, n.H }

// FPS implements Source.
func (n *Noise) FPS() float64 { return n.Rate }

// MovingBars renders vertical bars drifting horizontally: sustained motion
// content exercising the phantom-array interaction and mid-level texture.
type MovingBars struct {
	W, H   int
	Rate   float64
	Period int     // bar period in pixels
	Speed  float64 // pixels per frame
	Lo, Hi float32
}

// NewMovingBars returns a drifting-bars source.
func NewMovingBars(w, h int, period int, speed float64) *MovingBars {
	return &MovingBars{W: w, H: h, Rate: 30, Period: period, Speed: speed, Lo: 60, Hi: 190}
}

// Frame implements Source.
func (m *MovingBars) Frame(i int) *frame.Frame {
	f := frame.New(m.W, m.H)
	m.FrameInto(i, f)
	return f
}

// FrameInto implements IntoSource; every pixel of dst is written.
func (m *MovingBars) FrameInto(i int, f *frame.Frame) {
	off := m.Speed * float64(i)
	p := float64(m.Period)
	for x := 0; x < m.W; x++ {
		phase := math.Mod(float64(x)+off, p) / p
		v := m.Lo
		if phase >= 0.5 {
			v = m.Hi
		}
		for y := 0; y < m.H; y++ {
			f.Pix[y*m.W+x] = v
		}
	}
}

// Size implements Source.
func (m *MovingBars) Size() (int, int) { return m.W, m.H }

// FPS implements Source.
func (m *MovingBars) FPS() float64 { return m.Rate }

// Gradient renders a static diagonal luminance ramp covering the full 0..255
// range, exercising the clipping-aware amplitude adjustment at both ends.
type Gradient struct {
	W, H int
	Rate float64
}

// NewGradient returns a static full-range gradient source.
func NewGradient(w, h int) *Gradient { return &Gradient{W: w, H: h, Rate: 30} }

// Frame implements Source.
func (g *Gradient) Frame(int) *frame.Frame {
	f := frame.New(g.W, g.H)
	g.FrameInto(0, f)
	return f
}

// FrameInto implements IntoSource; every pixel of dst is written.
func (g *Gradient) FrameInto(_ int, f *frame.Frame) {
	den := float64(g.W + g.H - 2)
	if g.W+g.H-2 == 0 {
		den = 1
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			f.Pix[y*g.W+x] = float32(255 * float64(x+y) / den)
		}
	}
}

// Size implements Source.
func (g *Gradient) Size() (int, int) { return g.W, g.H }

// FPS implements Source.
func (g *Gradient) FPS() float64 { return g.Rate }

// DirtyRegion implements RegionSource: the gradient is static.
func (g *Gradient) DirtyRegion(i int) (Region, bool) { return staticDirty(i) }

// Clip is a fixed, pre-rendered sequence of frames that loops; it adapts any
// recorded material to the Source interface.
type Clip struct {
	Frames []*frame.Frame
	Rate   float64
}

// NewClip wraps pre-rendered frames as a looping 30 FPS source. It panics if
// frames is empty or sizes are inconsistent, since that is a programming
// error at construction time.
func NewClip(frames []*frame.Frame) *Clip {
	if len(frames) == 0 {
		panic("video.NewClip: no frames")
	}
	w, h := frames[0].W, frames[0].H
	for i, f := range frames {
		if f.W != w || f.H != h {
			panic(fmt.Sprintf("video.NewClip: frame %d is %dx%d, want %dx%d", i, f.W, f.H, w, h))
		}
	}
	return &Clip{Frames: frames, Rate: 30}
}

// Frame implements Source, looping over the recorded frames.
func (c *Clip) Frame(i int) *frame.Frame {
	n := len(c.Frames)
	return c.Frames[((i%n)+n)%n].Clone()
}

// FrameInto implements IntoSource, copying the recorded frame into dst.
func (c *Clip) FrameInto(i int, dst *frame.Frame) {
	n := len(c.Frames)
	c.Frames[((i%n)+n)%n].CloneInto(dst)
}

// Size implements Source.
func (c *Clip) Size() (int, int) { return c.Frames[0].W, c.Frames[0].H }

// FPS implements Source.
func (c *Clip) FPS() float64 { return c.Rate }

// Record renders n frames of src into a Clip, freezing procedural content so
// repeated passes (e.g. encoder calibration then measurement) see identical
// input.
func Record(src Source, n int) *Clip {
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = src.Frame(i)
	}
	c := NewClip(frames)
	c.Rate = src.FPS()
	return c
}
