package hvs

import (
	"testing"
)

func TestArtifactAmplitude(t *testing.T) {
	o := DefaultObserver()
	ref := []float64{100, 100, 100, 100}
	shifted := []float64{110, 110, 110, 110}
	if a := o.ArtifactAmplitude(shifted, ref); a != 10 {
		t.Fatalf("artifact = %v, want 10", a)
	}
	if a := o.ArtifactAmplitude(ref, ref); a != 0 {
		t.Fatalf("identical artifact = %v, want 0", a)
	}
	if a := o.ArtifactAmplitude(nil, ref); a != 0 {
		t.Fatalf("empty samples artifact = %v, want 0", a)
	}
	if a := o.ArtifactAmplitude(ref, nil); a != 0 {
		t.Fatalf("empty reference artifact = %v, want 0", a)
	}
	// A zero-mean alternation around the reference level: no artifact.
	alt := alternation(100, 30, 8, 1)
	if a := o.ArtifactAmplitude(alt, ref); a > 1e-9 {
		t.Fatalf("balanced alternation artifact = %v, want 0", a)
	}
}

// TestScoreWaveformRefCatchesStaticShift: a one-sided overlay fuses to a
// shifted mean; side-by-side scoring must flag it even though temporal
// flicker is fused away.
func TestScoreWaveformRefCatchesStaticShift(t *testing.T) {
	o := DefaultObserver()
	fs := 480.0
	ref := make([]float64, 960)
	for i := range ref {
		ref[i] = 120
	}
	// 60 Hz alternation between 120 and 160 (one-sided +40): fuses to 140.
	oneSided := make([]float64, 960)
	for i := range oneSided {
		if (i/4)%2 == 0 {
			oneSided[i] = 160
		} else {
			oneSided[i] = 120
		}
	}
	plain := o.ScoreWaveform(oneSided, fs, 120, 4)
	withRef := o.ScoreWaveformRef(oneSided, ref, fs, 120, 4)
	if withRef <= plain {
		t.Fatalf("reference scoring %.2f not above plain %.2f", withRef, plain)
	}
	if withRef < 2 {
		t.Fatalf("static +20 luminance shift scored %.2f, want >= 2", withRef)
	}
	// A balanced (complementary) alternation stays clean under both.
	balanced := alternation(120, 20, 240, 4)
	if s := o.ScoreWaveformRef(balanced, ref, fs, 120, 4); s > 1 {
		t.Fatalf("balanced alternation scored %.2f with reference, want <= 1", s)
	}
}

func TestWorstScoreRefHandlesShortRefs(t *testing.T) {
	o := DefaultObserver()
	waves := [][]float64{alternation(127, 5, 240, 4), alternation(127, 5, 240, 4)}
	refs := [][]float64{make([]float64, 960)} // fewer refs than waves
	for i := range refs[0] {
		refs[0][i] = 127
	}
	// Must not panic; second waveform scored without reference.
	s := WorstScoreRef(o, waves, refs, 480, 120, 4)
	if s < 0 || s > 4 {
		t.Fatalf("score %v out of range", s)
	}
}
