package hvs

import (
	"inframe/internal/display"
)

// Point is a pixel position sampled by an observer.
type Point struct{ X, Y int }

// GridPoints returns an n×n grid of sample positions covering a w×h panel,
// inset by one cell so samples avoid the exact border.
func GridPoints(w, h, n int) []Point {
	if n <= 0 {
		panic("hvs: non-positive grid size")
	}
	pts := make([]Point, 0, n*n)
	for j := 0; j < n; j++ {
		y := (2*j + 1) * h / (2 * n)
		for i := 0; i < n; i++ {
			x := (2*i + 1) * w / (2 * n)
			pts = append(pts, Point{X: x, Y: y})
		}
	}
	return pts
}

// ExtractWaveforms samples the luminance waveform of each point over the
// display's full duration, at oversample samples per refresh interval.
// The waveforms can then be scored by many observers without re-integration.
//
// All waveforms are carved from one flat sample buffer and share one row
// integration scratch: the fusion pass allocates a constant three slices
// regardless of how many points it samples.
func ExtractWaveforms(d *display.Display, points []Point, oversample int) (waves [][]float64, fs float64) {
	if oversample <= 0 {
		panic("hvs: non-positive oversample")
	}
	fs = d.Config().RefreshHz * float64(oversample)
	n := d.NumFrames() * oversample
	w, _ := d.Size()
	row := make([]float32, w)
	samples := make([]float64, n*len(points))
	dur := d.Duration()
	waves = make([][]float64, len(points))
	for i, p := range points {
		wave := samples[i*n : (i+1)*n : (i+1)*n]
		d.PixelWaveformInto(p.X, p.Y, 0, dur, wave, row)
		waves[i] = wave
	}
	return waves, fs
}

// WorstScore scores every waveform with the observer and returns the
// maximum: a viewer judges a clip by its worst visible region.
func WorstScore(o Observer, waves [][]float64, fs, refreshHz, pitchPx float64) float64 {
	var worst float64
	for _, w := range waves {
		if s := o.ScoreWaveform(w, fs, refreshHz, pitchPx); s > worst {
			worst = s
		}
	}
	return worst
}

// WorstScoreRef scores every waveform against its reference waveform and
// returns the maximum.
func WorstScoreRef(o Observer, waves, refs [][]float64, fs, refreshHz, pitchPx float64) float64 {
	var worst float64
	for i, w := range waves {
		var ref []float64
		if i < len(refs) {
			ref = refs[i]
		}
		if s := o.ScoreWaveformRef(w, ref, fs, refreshHz, pitchPx); s > worst {
			worst = s
		}
	}
	return worst
}

// RateDisplay runs a full simulated user-study trial: the panel views the
// displayed stream, each member reports an integer rating of the worst
// region, and the ratings are returned. pitchPx is the data-Pixel pitch.
func RateDisplay(panel []Observer, d *display.Display, grid, oversample int, pitchPx float64, seed int64) []int {
	waves, fs := ExtractWaveforms(d, GridPoints(mustW(d), mustH(d), grid), oversample)
	refresh := d.Config().RefreshHz
	ratings := make([]int, len(panel))
	for i, o := range panel {
		s := WorstScore(o, waves, fs, refresh, pitchPx)
		ratings[i] = jitterRating(s, seed+int64(i))
	}
	return ratings
}

// RateDisplayRef is RateDisplay with the paper's side-by-side protocol: ref
// shows the original (unmultiplexed) stream, and static fused artifacts
// count against the rating alongside flicker.
func RateDisplayRef(panel []Observer, d, ref *display.Display, grid, oversample int, pitchPx float64, seed int64) []int {
	points := GridPoints(mustW(d), mustH(d), grid)
	waves, fs := ExtractWaveforms(d, points, oversample)
	refWaves, _ := ExtractWaveforms(ref, points, oversample)
	refresh := d.Config().RefreshHz
	ratings := make([]int, len(panel))
	for i, o := range panel {
		s := WorstScoreRef(o, waves, refWaves, fs, refresh, pitchPx)
		ratings[i] = jitterRating(s, seed+int64(i))
	}
	return ratings
}

func mustW(d *display.Display) int { w, _ := d.Size(); return w }
func mustH(d *display.Display) int { _, h := d.Size(); return h }
