package hvs

import (
	"math"
	"testing"

	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/waveform"
)

// alternation builds a linear-light waveform alternating base±amp at half
// the sample rate (the complementary-frame pattern at 1 sample per refresh),
// oversampled by repeating each value rep times.
func alternation(base, amp float64, frames, rep int) []float64 {
	out := make([]float64, 0, frames*rep)
	for i := 0; i < frames; i++ {
		v := base + amp
		if i%2 == 1 {
			v = base - amp
		}
		for j := 0; j < rep; j++ {
			out = append(out, v)
		}
	}
	return out
}

func TestDefaultObserverValid(t *testing.T) {
	if err := DefaultObserver().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadObservers(t *testing.T) {
	mods := []func(*Observer){
		func(o *Observer) { o.CFFBase = 0 },
		func(o *Observer) { o.CFFSlope = -1 },
		func(o *Observer) { o.PeakLuminance = 0 },
		func(o *Observer) { o.Threshold = 0 },
		func(o *Observer) { o.Sensitivity = 0 },
		func(o *Observer) { o.PixelsPerDegree = 0 },
	}
	for i, m := range mods {
		o := DefaultObserver()
		m(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("modification %d validated", i)
		}
	}
}

func TestCFFFerryPorter(t *testing.T) {
	o := DefaultObserver()
	// Monotone in luminance.
	if o.CFF(10) >= o.CFF(100) {
		t.Fatal("CFF not increasing with luminance")
	}
	// Typical office luminance range lands in the paper's 40-50 Hz window.
	cff := o.CFF(60)
	if cff < 40 || cff > 55 {
		t.Fatalf("CFF(60 cd/m²) = %v, want in [40,55]", cff)
	}
	// Floor applied at tiny luminance.
	if o.CFF(1e-9) < 10 {
		t.Fatal("CFF floor violated")
	}
}

// Test60HzFusesBelowCFF: a 60 Hz complementary alternation at moderate
// amplitude must fuse (score ≤ 1), while the same pattern at 30 Hz — the
// naive designs' rate — must be clearly visible.
func TestFusionVersus30Hz(t *testing.T) {
	o := DefaultObserver()
	fs := 480.0
	lum := 150.0
	amp := 40.0
	// 60 Hz: one sign flip every display frame at 120 Hz (4 samples each).
	w60 := alternation(lum, amp, 240, 4)
	// 30 Hz: sign flips every two display frames.
	w30 := make([]float64, 0, 960)
	for i := 0; i < 120; i++ {
		v := lum + amp
		if i%2 == 1 {
			v = lum - amp
		}
		for j := 0; j < 8; j++ {
			w30 = append(w30, v)
		}
	}
	s60 := o.Score(o.FlickerAmplitude(w60, fs))
	s30 := o.Score(o.FlickerAmplitude(w30, fs))
	if s60 > 1 {
		t.Fatalf("60 Hz alternation score = %v, want <= 1 (fused)", s60)
	}
	if s30 < 2 {
		t.Fatalf("30 Hz alternation score = %v, want >= 2 (visible)", s30)
	}
	if s30 <= s60 {
		t.Fatal("30 Hz must be more visible than 60 Hz")
	}
}

// TestBrighterFlickersMore reproduces the Fig. 6 (left) trend: the same
// drive-level amplitude flickers more on brighter content, because the
// luminance modulation grows with the gamma slope and the CFF rises.
func TestBrighterFlickersMore(t *testing.T) {
	o := DefaultObserver()
	fs := 480.0
	gamma := 2.2
	toLum := func(v float64) float64 { return 255 * math.Pow(v/255, gamma) }
	score := func(drive, delta float64) float64 {
		hi := toLum(drive + delta)
		lo := toLum(drive - delta)
		base := (hi + lo) / 2
		w := alternation(base, (hi-lo)/2, 240, 4)
		return o.Score(o.FlickerAmplitude(w, fs))
	}
	prev := -1.0
	for _, b := range []float64{60, 100, 140, 180} {
		s := score(b, 50)
		if s < prev {
			t.Fatalf("score decreased with brightness at %v: %v < %v", b, s, prev)
		}
		prev = s
	}
	// Larger amplitude flickers more at fixed brightness.
	if score(180, 50) <= score(180, 20) {
		t.Fatal("delta=50 not worse than delta=20")
	}
}

func TestFlickerAmplitudeIgnoresSlowContent(t *testing.T) {
	o := DefaultObserver()
	fs := 480.0
	// A slow 2 Hz luminance swell (legitimate video content) must not read
	// as flicker.
	n := 960
	w := make([]float64, n)
	for i := range w {
		w[i] = 120 + 60*math.Sin(2*math.Pi*2*float64(i)/fs)
	}
	amp := o.FlickerAmplitude(w, fs)
	if s := o.Score(amp); s > 0.5 {
		t.Fatalf("slow content scored %v, want <= 0.5", s)
	}
}

func TestFlickerAmplitudeShortInput(t *testing.T) {
	o := DefaultObserver()
	if a := o.FlickerAmplitude([]float64{1, 2}, 480); a != 0 {
		t.Fatalf("short input amplitude = %v, want 0", a)
	}
}

func TestScoreMapping(t *testing.T) {
	o := DefaultObserver()
	if s := o.Score(0); s != 0 {
		t.Fatalf("Score(0) = %v", s)
	}
	// Threshold amplitude maps to 1 ("almost unnoticeable").
	if s := o.Score(o.Threshold); math.Abs(s-1) > 1e-9 {
		t.Fatalf("Score(threshold) = %v, want 1", s)
	}
	if s := o.Score(1e9); s < 3.9 {
		t.Fatalf("Score(huge) = %v, want ~4", s)
	}
	// Monotone.
	if o.Score(1) >= o.Score(2) {
		t.Fatal("Score not monotone")
	}
}

func TestPhantomAmplitudeKeysOnEnvelopeChanges(t *testing.T) {
	o := DefaultObserver()
	fs := 120.0
	refresh := 120.0
	pitch := 4.0
	// Steady alternation: envelope constant → zero jerk.
	steady := alternation(127, 20, 120, 1)
	if a := o.PhantomAmplitude(steady, fs, refresh, pitch); a > 1e-9 {
		t.Fatalf("steady alternation phantom = %v, want 0", a)
	}
	// Abrupt on/off data transition (stair): large envelope curvature.
	levels := []float64{20, 0, 20, 0}
	abrupt := waveform.Modulate(waveform.Envelope(waveform.Stair, levels, 12), 127)
	smooth := waveform.Modulate(waveform.Envelope(waveform.SqrtRaisedCosine, levels, 12), 127)
	pa := o.PhantomAmplitude(abrupt, fs, refresh, pitch)
	ps := o.PhantomAmplitude(smooth, fs, refresh, pitch)
	if pa <= 3*ps {
		t.Fatalf("abrupt phantom %v not well above smooth %v", pa, ps)
	}
	if ps <= 0 {
		t.Fatal("smooth transition should retain small nonzero phantom term")
	}
}

func TestPhantomStrideHandlesOversampling(t *testing.T) {
	o := DefaultObserver()
	levels := []float64{20, 0, 20, 0}
	base := waveform.Modulate(waveform.Envelope(waveform.Stair, levels, 12), 127)
	// Oversample 4x by repetition: the phantom measure must agree with the
	// 1x measurement because it works per display frame.
	over := make([]float64, 0, len(base)*4)
	for _, v := range base {
		for j := 0; j < 4; j++ {
			over = append(over, v)
		}
	}
	a1 := o.PhantomAmplitude(base, 120, 120, 4)
	a4 := o.PhantomAmplitude(over, 480, 120, 4)
	if math.Abs(a1-a4) > 1e-9 {
		t.Fatalf("oversampled phantom %v != base %v", a4, a1)
	}
}

func TestPhantomPitchMinimumAtOptimal(t *testing.T) {
	o := DefaultObserver()
	fs := 120.0
	levels := []float64{20, 0, 20, 0, 20, 0}
	w := waveform.Modulate(waveform.Envelope(waveform.Stair, levels, 12), 127)
	optPx := o.OptimalPitchDeg * o.PixelsPerDegree
	at := func(px float64) float64 { return o.PhantomAmplitude(w, fs, 120, px) }
	if at(optPx) >= at(optPx/4) || at(optPx) >= at(optPx*4) {
		t.Fatalf("phantom not minimal at optimal pitch: %v vs %v / %v",
			at(optPx), at(optPx/4), at(optPx*4))
	}
	if at(0) != 0 {
		t.Fatal("non-positive pitch should yield 0")
	}
}

func TestPanelDeterministicAndVaried(t *testing.T) {
	a := Panel(8, 42)
	b := Panel(8, 42)
	if len(a) != 8 {
		t.Fatalf("panel size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("panel not deterministic for equal seeds")
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("panel member %d invalid: %v", i, err)
		}
	}
	seen := map[float64]bool{}
	for _, o := range a {
		seen[o.Sensitivity] = true
	}
	if len(seen) < 4 {
		t.Fatal("panel members suspiciously uniform")
	}
}

func TestRateWaveformBounds(t *testing.T) {
	panel := Panel(8, 1)
	w := alternation(127, 20, 240, 4)
	ratings := RateWaveform(panel, w, 480, 120, 4, 99)
	if len(ratings) != 8 {
		t.Fatalf("got %d ratings", len(ratings))
	}
	for _, r := range ratings {
		if r < 0 || r > 4 {
			t.Fatalf("rating %d out of scale", r)
		}
	}
	again := RateWaveform(panel, w, 480, 120, 4, 99)
	for i := range ratings {
		if ratings[i] != again[i] {
			t.Fatal("ratings not deterministic for equal seeds")
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]int{1, 1, 3, 3})
	if m != 2 || s != 1 {
		t.Fatalf("MeanStd = %v, %v, want 2, 1", m, s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatalf("MeanStd(nil) = %v, %v", m, s)
	}
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(100, 60, 3)
	if len(pts) != 9 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 100 || p.Y < 0 || p.Y >= 60 {
			t.Fatalf("point %+v out of bounds", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GridPoints(.,.,0) did not panic")
		}
	}()
	GridPoints(10, 10, 0)
}

func buildDisplay(t *testing.T, flipEvery int, base, amp float32, n int) *display.Display {
	t.Helper()
	cfg := display.DefaultConfig()
	cfg.ResponseTime = 0
	d, err := display.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := base + amp
		if (i/flipEvery)%2 == 1 {
			v = base - amp
		}
		if err := d.Push(frame.NewFilled(16, 16, v)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestRateDisplayEndToEnd(t *testing.T) {
	panel := Panel(8, 7)
	// Complementary-style 60 Hz alternation: should rate low.
	good := buildDisplay(t, 1, 160, 20, 120)
	// Naive 30 Hz alternation: should rate high.
	bad := buildDisplay(t, 2, 160, 40, 120)
	gr := RateDisplay(panel, good, 2, 4, 4, 5)
	br := RateDisplay(panel, bad, 2, 4, 4, 5)
	gm, _ := MeanStd(gr)
	bm, _ := MeanStd(br)
	if gm > 1.2 {
		t.Fatalf("60 Hz display rated %v, want <= 1.2", gm)
	}
	if bm < 2 {
		t.Fatalf("30 Hz display rated %v, want >= 2", bm)
	}
}

func TestExtractWaveformsShape(t *testing.T) {
	d := buildDisplay(t, 1, 127, 10, 24)
	waves, fs := ExtractWaveforms(d, []Point{{X: 1, Y: 1}, {X: 8, Y: 8}}, 4)
	if len(waves) != 2 {
		t.Fatalf("got %d waveforms", len(waves))
	}
	if len(waves[0]) != 96 {
		t.Fatalf("waveform length %d, want 96", len(waves[0]))
	}
	if fs != 480 {
		t.Fatalf("fs = %v, want 480", fs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversample 0 did not panic")
		}
	}()
	ExtractWaveforms(d, nil, 0)
}
