// Package hvs models the human visual system as the paper's §2 describes
// it: a linear temporal low-pass filter whose cutoff — the critical flicker
// frequency (CFF) — rises with luminance (the Ferry–Porter law), plus the
// phantom-array sensitivity to abrupt spatio-temporal transitions.
//
// The package replaces the paper's 8-participant user study (Fig. 6) with a
// panel of simulated observers. Each observer converts a pixel's luminance
// waveform into a flicker-perception score on the paper's 0–4 scale:
//
//	0 "no difference at all"        1 "almost unnoticeable"
//	2 "merely noticeable"           3 "evident flicker"
//	4 "strong flicker or artifact"
//
// The model follows the classical account the paper cites: above the CFF,
// time-variant fluctuations fuse to their mean; near and below the CFF the
// residual modulation that survives the eye's low-pass determines perceived
// flicker. In the Ferry–Porter regime visibility tracks the *absolute*
// luminance modulation amplitude, so brighter content flickers more for a
// fixed drive-level amplitude — exactly the trend in Fig. 6 (left).
package hvs

import (
	"fmt"
	"math"
	"math/rand"
)

// Observer is one simulated study participant.
type Observer struct {
	// CFFBase and CFFSlope define the Ferry–Porter law
	// CFF = CFFBase + CFFSlope·log10(L) with L in cd/m².
	// Typical human values give a CFF of 40–50 Hz at office luminances.
	CFFBase  float64
	CFFSlope float64
	// PeakLuminance is the display's luminance in cd/m² at drive 255
	// (Eizo FG2421 class panels: ~300).
	PeakLuminance float64
	// Threshold is the filtered luminance-modulation amplitude (on the
	// 0..255 linear-light scale) that registers as score 1
	// ("almost unnoticeable").
	Threshold float64
	// Sensitivity scales perceived flicker; panel members vary around 1.
	Sensitivity float64
	// PhantomSensitivity scales the phantom-array term.
	PhantomSensitivity float64
	// PixelsPerDegree converts screen pixels to visual angle at the
	// paper's viewing distance (1.2× screen diagonal → ≈46 px/deg for a
	// 24" 1080p panel).
	PixelsPerDegree float64
	// OptimalPitchDeg is the data-Pixel pitch in degrees at which the
	// phantom-array effect is least visible (§3.3: p approximating eye
	// resolution minimizes it).
	OptimalPitchDeg float64
}

// DefaultObserver returns the nominal observer used for single-viewer
// evaluations and as the panel mean.
func DefaultObserver() Observer {
	return Observer{
		CFFBase:            32,
		CFFSlope:           11,
		PeakLuminance:      300,
		Threshold:          6.0,
		Sensitivity:        1,
		PhantomSensitivity: 1,
		PixelsPerDegree:    46,
		OptimalPitchDeg:    4.0 / 46, // p=4 at the paper's geometry
	}
}

// Validate reports whether the observer parameters are usable.
func (o Observer) Validate() error {
	if o.CFFBase <= 0 || o.CFFSlope < 0 {
		return fmt.Errorf("hvs: invalid Ferry-Porter coefficients %v, %v", o.CFFBase, o.CFFSlope)
	}
	if o.PeakLuminance <= 0 {
		return fmt.Errorf("hvs: PeakLuminance must be positive")
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("hvs: Threshold must be positive")
	}
	if o.Sensitivity <= 0 {
		return fmt.Errorf("hvs: Sensitivity must be positive")
	}
	if o.PixelsPerDegree <= 0 {
		return fmt.Errorf("hvs: PixelsPerDegree must be positive")
	}
	return nil
}

// CFF returns the critical flicker frequency in Hz at luminance lcd (cd/m²),
// floored at a scotopic minimum of 10 Hz.
func (o Observer) CFF(lcd float64) float64 {
	if lcd < 1e-3 {
		lcd = 1e-3
	}
	cff := o.CFFBase + o.CFFSlope*math.Log10(lcd)
	if cff < 10 {
		cff = 10
	}
	return cff
}

// luminanceCd converts a 0..255 linear-light value to cd/m².
func (o Observer) luminanceCd(l float64) float64 {
	return l / 255 * o.PeakLuminance
}

// flickerBandFloor is the lowest temporal frequency (Hz) treated as flicker;
// slower modulation is legitimate video content the eye tracks.
const flickerBandFloor = 10.0

// FlickerAmplitude returns the perceived modulation amplitude (0..255
// linear-light scale) of a pixel waveform after the eye's temporal
// filtering. samples must be linear-light values sampled uniformly at fs Hz.
//
// The waveform's Hann-windowed amplitude spectrum is weighted by a Gaussian
// eye attenuation centered on DC whose width tracks the Ferry–Porter CFF:
//
//	H(f) = exp(−ln2 · (f / (0.52·CFF))²)
//
// so components well above the CFF fuse (H(60 Hz) ≈ 0.05–0.08 for CFF in
// the 47–57 Hz range) while components at half the rate — the naive designs
// of Fig. 3 — survive with ~0.5 gain. Sub-10 Hz content is excluded as
// video, not flicker. The returned value is the root-sum-square of the
// weighted in-band amplitudes.
func (o Observer) FlickerAmplitude(samples []float64, fs float64) float64 {
	n := len(samples)
	if n < 8 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	cff := o.CFF(o.luminanceCd(mean))
	fh := 0.52 * cff

	// Hann window; its coherent gain normalizes bin magnitudes back to
	// tone amplitudes.
	win := make([]float64, n)
	var wsum float64
	for i := range win {
		//lint:ignore hotalloc the Hann table is built once per flicker measurement over n temporal samples, not per pixel
		win[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		wsum += win[i]
	}
	windowed := make([]float64, n)
	for i, s := range samples {
		windowed[i] = (s - mean) * win[i]
	}

	var energy float64
	for k := 1; k <= n/2; k++ {
		f := float64(k) * fs / float64(n)
		if f < flickerBandFloor {
			continue
		}
		h := math.Exp(-math.Ln2 * (f / fh) * (f / fh))
		if h < 1e-4 {
			break // bins only get higher in f from here
		}
		// Goertzel-style direct DFT bin.
		var re, im float64
		w := 2 * math.Pi * float64(k) / float64(n)
		for i, v := range windowed {
			// Direct per-bin evaluation keeps the flicker pins bit-stable;
			// a rotation recurrence would drift the Fig. 3/6 means. n is
			// temporal samples (hundreds), far off the per-pixel path.
			re += v * math.Cos(w*float64(i)) //lint:ignore hotalloc exact DFT bin over temporal samples, not pixels; a recurrence would change pinned flicker scores
			im -= v * math.Sin(w*float64(i))
		}
		amp := 2 * math.Hypot(re, im) / wsum
		wa := amp * h
		energy += wa * wa
	}
	// The Hann window spreads each tone across a 1.5-bin equivalent noise
	// bandwidth; dividing the summed energy by it makes the measure exact
	// for isolated tones and unbiased for noise-like spectra.
	return math.Sqrt(energy / 1.5)
}

// PhantomAmplitude returns the phantom-array contribution for a pixel
// waveform: sensitivity to *abrupt changes in the alternation envelope*
// (un-smoothed data transitions) rather than the steady alternation itself,
// scaled by how far the data-Pixel pitch sits from the least-visible pitch.
//
// refreshHz is the display refresh rate, used to locate the complementary
// alternation inside a possibly oversampled waveform; pitchPx is the data
// Pixel pitch in screen pixels. The detector measures the envelope's
// curvature (second difference per display frame): a raised-cosine ramp has
// small curvature everywhere, a stair transition concentrates the full
// amplitude step into one frame — the saccade-visible event of §2.
func (o Observer) PhantomAmplitude(samples []float64, fs, refreshHz, pitchPx float64) float64 {
	stride := int(math.Round(fs / refreshHz))
	if stride < 1 {
		stride = 1
	}
	if len(samples) < 4*stride+1 {
		return 0
	}
	// Alternation amplitude per display frame tracks the smoothing
	// envelope; its maximum curvature is the phantom "jerk".
	n := (len(samples) - stride) / stride
	amp := make([]float64, n)
	for i := 0; i < n; i++ {
		amp[i] = math.Abs(samples[(i+1)*stride] - samples[i*stride])
	}
	var jerk float64
	for i := 0; i+2 < n; i++ {
		s0 := amp[i+1] - amp[i]
		s1 := amp[i+2] - amp[i+1]
		if d := math.Abs(s1 - s0); d > jerk {
			jerk = d
		}
	}
	pitchDeg := pitchPx / o.PixelsPerDegree
	if pitchDeg <= 0 {
		return 0
	}
	// Visibility is minimal at the optimal pitch and grows (slowly) as the
	// pitch departs from it in either direction — the §3.3 user-study
	// finding. Phenomenological but monotone in |ln(pitch/optimal)|.
	mis := math.Abs(math.Log(pitchDeg / o.OptimalPitchDeg))
	factor := 0.15 * math.Exp(0.6*mis)
	return o.PhantomSensitivity * jerk * factor
}

// Score converts a combined filtered modulation amplitude into the paper's
// continuous 0–4 flicker scale. The mapping is calibrated so that amplitude
// at Threshold reads 1 ("almost unnoticeable") and saturates at 4.
func (o Observer) Score(amplitude float64) float64 {
	v := o.Sensitivity * amplitude / o.Threshold
	if v <= 0 {
		return 0
	}
	s := 4 * v / (v + 3)
	if s > 4 {
		s = 4
	}
	return s
}

// ScoreWaveform runs the full per-pixel pipeline: flicker band amplitude +
// phantom-array term → 0–4 score.
func (o Observer) ScoreWaveform(samples []float64, fs, refreshHz, pitchPx float64) float64 {
	amp := o.FlickerAmplitude(samples, fs)
	amp += o.PhantomAmplitude(samples, fs, refreshHz, pitchPx)
	return o.Score(amp)
}

// ArtifactAmplitude measures the *static* artifact a multiplexing scheme
// leaves after flicker fusion: the difference between the time-fused
// luminance of the shown pixel and of the reference (unmultiplexed) pixel.
// Complementary frames cancel exactly, so InFrame scores 0 here; the naive
// V+D insertions of Fig. 3 shift the fused mean by half the data amplitude
// and are caught ("the average of sequential data frames did not match that
// of original video frames", §3.1).
func (o Observer) ArtifactAmplitude(samples, reference []float64) float64 {
	if len(samples) == 0 || len(reference) == 0 {
		return 0
	}
	var a, b float64
	for _, s := range samples {
		a += s
	}
	a /= float64(len(samples))
	for _, s := range reference {
		b += s
	}
	b /= float64(len(reference))
	return math.Abs(a - b)
}

// ScoreWaveformRef scores a pixel waveform against the reference
// (unmultiplexed) waveform of the same pixel: temporal flicker + phantom
// array + static fused-artifact, matching the paper's side-by-side rating
// protocol ("we showed original and multiplexed videos side by side").
func (o Observer) ScoreWaveformRef(samples, reference []float64, fs, refreshHz, pitchPx float64) float64 {
	amp := o.FlickerAmplitude(samples, fs)
	amp += o.PhantomAmplitude(samples, fs, refreshHz, pitchPx)
	amp += o.ArtifactAmplitude(samples, reference)
	return o.Score(amp)
}

// Panel returns n observers varying deterministically around the default:
// per-subject sensitivity spread (the paper's designer and video expert are
// "more sensitive to video quality") and CFF offsets.
func Panel(n int, seed int64) []Observer {
	// Deterministic by construction (detrand-audited): the generator is
	// seeded from the caller-supplied seed alone, and the panel is drawn in
	// a fixed single-threaded order, so the same seed reproduces the same
	// panel on every run and at every worker count.
	rng := rand.New(rand.NewSource(seed))
	panel := make([]Observer, n)
	for i := range panel {
		o := DefaultObserver()
		//lint:ignore hotalloc panel construction draws once per observer, not per pixel
		o.Sensitivity = math.Exp(rng.NormFloat64() * 0.25)
		o.CFFBase += rng.NormFloat64() * 2
		//lint:ignore hotalloc same once-per-observer draw
		o.PhantomSensitivity = math.Exp(rng.NormFloat64() * 0.3)
		panel[i] = o
	}
	return panel
}

// RateWaveform collects one integer 0–4 rating per panel member for the
// same stimulus, adding per-subject reporting noise, and returns the
// ratings — the raw material of a Fig. 6 data point.
func RateWaveform(panel []Observer, samples []float64, fs, refreshHz, pitchPx float64, seed int64) []int {
	ratings := make([]int, len(panel))
	for i, o := range panel {
		s := o.ScoreWaveform(samples, fs, refreshHz, pitchPx)
		ratings[i] = jitterRating(s, seed+int64(i))
	}
	return ratings
}

// jitterRating adds per-subject reporting noise and rounds to the 0–4 scale.
func jitterRating(score float64, seed int64) int {
	// Deterministic by construction (detrand-audited): one throwaway
	// generator per rating, keyed by subject index, so ratings do not
	// depend on evaluation order and stay bit-identical under the
	// parallel experiment sweeps.
	rng := rand.New(rand.NewSource(seed))
	r := int(math.Round(score + rng.NormFloat64()*0.3))
	if r < 0 {
		r = 0
	} else if r > 4 {
		r = 4
	}
	return r
}

// MeanStd summarizes a set of integer ratings as mean and (population)
// standard deviation, the form Fig. 6 plots.
func MeanStd(ratings []int) (mean, std float64) {
	if len(ratings) == 0 {
		return 0, 0
	}
	for _, r := range ratings {
		mean += float64(r)
	}
	mean /= float64(len(ratings))
	for _, r := range ratings {
		d := float64(r) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(ratings)))
	return mean, std
}
