package register

import (
	"math"
	"sort"

	"inframe/internal/core"
	"inframe/internal/frame"
)

// integralImage holds summed-area energies for O(1) rectangle sums.
type integralImage struct {
	w, h int
	sum  []float64 // (w+1)×(h+1), sum[y][x] = Σ energy over [0,x)×[0,y)
}

func newIntegral(e *frame.Frame) *integralImage {
	ii := &integralImage{w: e.W, h: e.H, sum: make([]float64, (e.W+1)*(e.H+1))}
	stride := e.W + 1
	for y := 0; y < e.H; y++ {
		var rowSum float64
		for x := 0; x < e.W; x++ {
			rowSum += float64(e.Pix[y*e.W+x])
			ii.sum[(y+1)*stride+x+1] = ii.sum[y*stride+x+1] + rowSum
		}
	}
	return ii
}

// rectMean returns the mean energy over [x0,x1)×[y0,y1), clipped; zero for
// empty intersections.
func (ii *integralImage) rectMean(x0, y0, x1, y1 int) float64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > ii.w {
		x1 = ii.w
	}
	if y1 > ii.h {
		y1 = ii.h
	}
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := ii.w + 1
	s := ii.sum[y1*stride+x1] - ii.sum[y0*stride+x1] - ii.sum[y1*stride+x0] + ii.sum[y0*stride+x0]
	return s / float64((x1-x0)*(y1-y0))
}

// sumAt evaluates the summed-area table at fractional coordinates by
// bilinear interpolation of the four surrounding nodes — the continuous
// extension S(x, y) = ∫∫ energy over [0,x)×[0,y).
func (ii *integralImage) sumAt(x, y float64) float64 {
	if x < 0 {
		x = 0
	} else if x > float64(ii.w) {
		x = float64(ii.w)
	}
	if y < 0 {
		y = 0
	} else if y > float64(ii.h) {
		y = float64(ii.h)
	}
	x0, y0 := int(x), int(y)
	if x0 >= ii.w {
		x0 = ii.w - 1
	}
	if y0 >= ii.h {
		y0 = ii.h - 1
	}
	fx, fy := x-float64(x0), y-float64(y0)
	stride := ii.w + 1
	s00 := ii.sum[y0*stride+x0]
	s01 := ii.sum[y0*stride+x0+1]
	s10 := ii.sum[(y0+1)*stride+x0]
	s11 := ii.sum[(y0+1)*stride+x0+1]
	top := s00 + (s01-s00)*fx
	bot := s10 + (s11-s10)*fx
	return top + (bot-top)*fy
}

// rectMeanFrac returns the mean over the fractional rectangle
// [x0,x1)×[y0,y1), clipped to the plane; zero for empty intersections. The
// sub-pixel box boundary is resolved by bilinear interpolation of the
// summed-area table, so the mean varies smoothly as the box slides — the
// property the projective polish needs from its objective.
func (ii *integralImage) rectMeanFrac(x0, y0, x1, y1 float64) float64 {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > float64(ii.w) {
		x1 = float64(ii.w)
	}
	if y1 > float64(ii.h) {
		y1 = float64(ii.h)
	}
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	s := ii.sumAt(x1, y1) - ii.sumAt(x0, y1) - ii.sumAt(x1, y0) + ii.sumAt(x0, y0)
	return s / ((x1 - x0) * (y1 - y0))
}

// alignScore measures how well a candidate mapping lines up with the Block
// grid by decoding it: per-Block mean energies are thresholded at their
// median into bits, and the score is the fraction of GOBs whose XOR parity
// holds. A correctly aligned grid scores near the channel's availability;
// any misalignment beyond a fraction of a Block mixes neighbours and decays
// toward the 50% random-parity floor. (A shift by exactly one GOB pitch
// also satisfies parity, but the coarse region detection is always well
// inside one pitch.)
func alignScore(l core.Layout, iis []*integralImage, m core.CaptureMapping) float64 {
	nBlocks := l.NumBlocks()
	energies := make([]float64, nBlocks)
	bits := make([]bool, nBlocks)
	var total float64
	for _, ii := range iis {
		for by := 0; by < l.BlocksY; by++ {
			for bx := 0; bx < l.BlocksX; bx++ {
				x0, y0, w, h := l.BlockRect(bx, by)
				fx0, fy0 := m.Apply(float64(x0), float64(y0))
				fx1, fy1 := m.Apply(float64(x0+w), float64(y0+h))
				dx := (fx1 - fx0) / 4
				dy := (fy1 - fy0) / 4
				energies[by*l.BlocksX+bx] = ii.rectMean(int(fx0+dx), int(fy0+dy), int(fx1-dx), int(fy1-dy))
			}
		}
		sorted := append([]float64(nil), energies...)
		sort.Float64s(sorted)
		thr := sorted[len(sorted)/2]
		for i, e := range energies {
			bits[i] = e > thr
		}
		pass := 0
		for gy := 0; gy < l.GOBsY(); gy++ {
			for gx := 0; gx < l.GOBsX(); gx++ {
				parity := false
				for _, blk := range l.GOBBlocks(gx, gy) {
					parity = parity != bits[blk[1]*l.BlocksX+blk[0]]
				}
				if !parity {
					pass++
				}
			}
		}
		total += float64(pass) / float64(l.NumGOBs())
	}
	return total / float64(len(iis))
}

// Refine polishes a coarse mapping by two-stage local search over offsets
// (±radius capture pixels) and scales (±3%), maximizing the parity-decode
// alignment score over the given captures.
func Refine(l core.Layout, caps []*frame.Frame, m core.CaptureMapping, radius float64) core.CaptureMapping {
	if len(caps) == 0 {
		return m
	}
	n := len(caps)
	if n > 3 {
		n = 3
	}
	iis := make([]*integralImage, n)
	for i := 0; i < n; i++ {
		iis[i] = newIntegral(EnergyMap(caps[i], 1))
	}
	search := func(base core.CaptureMapping, scaleSpan, scaleStep, offSpan, offStep float64) core.CaptureMapping {
		best := base
		bestScore := alignScore(l, iis, base)
		for sy := 1 - scaleSpan; sy <= 1+scaleSpan+1e-9; sy += scaleStep {
			for sx := 1 - scaleSpan; sx <= 1+scaleSpan+1e-9; sx += scaleStep {
				for dy := -offSpan; dy <= offSpan+1e-9; dy += offStep {
					for dx := -offSpan; dx <= offSpan+1e-9; dx += offStep {
						cand := core.CaptureMapping{
							ScaleX: base.ScaleX * sx,
							ScaleY: base.ScaleY * sy,
							OffX:   base.OffX + dx,
							OffY:   base.OffY + dy,
						}
						if s := alignScore(l, iis, cand); s > bestScore {
							bestScore = s
							best = cand
						}
					}
				}
			}
		}
		return best
	}
	coarse := search(m, 0.03, 0.01, radius, 2)
	return search(coarse, 0.0075, 0.0025, 1.5, 0.5)
}

// distance returns the max corner displacement between two mappings over the
// layout's grid, in capture pixels — a convergence diagnostic.
func distance(l core.Layout, a, b core.CaptureMapping) float64 {
	var worst float64
	for _, pt := range [][2]float64{
		{float64(l.MarginX()), float64(l.MarginY())},
		{float64(l.MarginX() + l.BlocksX*l.BlockPx()), float64(l.MarginY() + l.BlocksY*l.BlockPx())},
	} {
		ax, ay := a.Apply(pt[0], pt[1])
		bx, by := b.Apply(pt[0], pt[1])
		if d := math.Hypot(ax-bx, ay-by); d > worst {
			worst = d
		}
	}
	return worst
}
