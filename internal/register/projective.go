package register

import (
	"math"

	"inframe/internal/core"
	"inframe/internal/frame"
)

// Quad is the four detected grid corners in capture coordinates, ordered
// top-left, top-right, bottom-right, bottom-left. The ordering convention
// assumes the camera roll stays below 45° — past that the extremal-corner
// labels rotate — which covers every pose the impair stack admits as
// handheld viewing.
type Quad [4][2]float64

// GridCorners returns the display-space corners of the layout's Block grid
// (the region that carries chessboard energy; margins are static), in Quad
// order. These are the source correspondences of the projective solve.
func GridCorners(l core.Layout) Quad {
	x0 := float64(l.MarginX())
	y0 := float64(l.MarginY())
	x1 := float64(l.MarginX() + l.BlocksX*l.BlockPx())
	y1 := float64(l.MarginY() + l.BlocksY*l.BlockPx())
	return Quad{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}

// DetectQuad locates the four corners of the chessboard-bearing region in
// capture coordinates from the temporal-variance map. The scan is two
// allocation-free passes over the pooled energy plane: the first finds the
// peak energy, the second classifies every pixel above a fixed fraction of
// the peak by the four extremal corner scores x+y (top-left minimum,
// bottom-right maximum) and x−y (top-right maximum, bottom-left minimum).
// The blur inside TemporalEnergy both suppresses isolated noise maxima and
// pushes the detected corners a few pixels outward; CalibrateProjective's
// polish step pulls them back onto the grid.
func DetectQuad(caps []*frame.Frame) (Quad, error) {
	q, _, err := detectQuad(caps)
	return q, err
}

// detectQuad is DetectQuad plus the gated energy plane it thresholded, which
// the per-edge refinement reuses.
func detectQuad(caps []*frame.Frame) (Quad, *frame.Frame, error) {
	acc, err := TemporalEnergy(caps)
	if err != nil {
		return Quad{}, nil, err
	}
	// Gate the energy map by lit level: a posed capture is surrounded by
	// black overscan where the camera's gamma curve amplifies sensor noise
	// into temporal variance comparable to the modulation's. The data grid
	// can only live on the lit screen, so dark pixels are masked out before
	// any thresholding.
	mean := frame.New(acc.W, acc.H)
	inv := 1 / float32(len(caps))
	for _, c := range caps {
		for i, v := range c.Pix {
			mean.Pix[i] += v * inv
		}
	}
	const minLitLevel = 24
	for i, v := range mean.Pix {
		if v < minLitLevel {
			acc.Pix[i] = 0
		}
	}
	var peak float32
	for _, v := range acc.Pix {
		if v > peak {
			peak = v
		}
	}
	if !(peak > 0.3) {
		// No modulation anywhere: the same "no real contrast" floor
		// profileSpan applies to its 1-D profiles.
		return Quad{}, nil, ErrNoRegion
	}
	thr := 0.18 * peak
	var (
		minSum, maxSum   int // x+y extremes: top-left, bottom-right
		minDiff, maxDiff int // x−y extremes: bottom-left, top-right
		q                Quad
		count            int
	)
	for y := 0; y < acc.H; y++ {
		row := acc.Pix[y*acc.W : (y+1)*acc.W]
		for x, v := range row {
			if v < thr {
				continue
			}
			s := x + y
			d := x - y
			if count == 0 || s < minSum {
				minSum = s
				q[0] = [2]float64{float64(x), float64(y)}
			}
			if count == 0 || d > maxDiff {
				maxDiff = d
				q[1] = [2]float64{float64(x), float64(y)}
			}
			if count == 0 || s > maxSum {
				maxSum = s
				q[2] = [2]float64{float64(x), float64(y)}
			}
			if count == 0 || d < minDiff {
				minDiff = d
				q[3] = [2]float64{float64(x), float64(y)}
			}
			count++
		}
	}
	if count < 64 || maxSum-minSum < 16 || maxDiff-minDiff < 16 {
		return Quad{}, nil, ErrNoRegion
	}
	return q, acc, nil
}

// refineQuad relocates each edge of a detected quad on the energy plane and
// re-derives corners as edge intersections. The detection threshold is one
// fixed fraction of the global peak, so it lands differently on every edge:
// on a dim side it crosses inside the true boundary and the quad shrinks;
// where the lit margin's noise floor clears it, the quad bulges out to the
// panel edge.
//
// The energy profile along an edge's outward normal is not a clean step.
// When the camera undersamples the chessboard, the cell pattern beats
// against the sensor grid and the interior energy oscillates in moiré bands
// — between band peaks the modulation aliases to nearly nothing, and a band
// valley is indistinguishable by level or gradient from the lit margin
// between the grid and the panel edge. What is distinctive about the
// interior is that a band *peak* is never farther than one band period
// away. Each station therefore dilates its profile with a 1-D max filter
// wider than the band period, which flattens the oscillating interior into
// one high plateau while leaving margin and overscan low; the grid edge is
// the innermost mid-level crossing of the dilated profile, pulled back
// inward by the filter radius (a max filter shifts a falling edge outward
// by exactly its radius).
//
// Per edge, a total-least-squares line is fitted through the station
// crossings with one outlier-rejection pass, and adjacent lines intersect
// into corners. Stations without usable contrast are skipped; an edge with
// fewer than half its stations, or a corner that would move farther than
// maxTravel, keeps its detected geometry. The result is coarse — good to a
// few pixels, the residual being the edge-to-nearest-band-peak distance —
// and is handed to the scan stage to bridge into the matched filter's
// phase-lock basin.
func refineQuad(acc *frame.Frame, q Quad) Quad {
	const (
		stations = 15 // profile stations per edge
		// The profile reaches deep both ways because the detected corner can
		// sit far off the true edge in either direction: inward when the
		// border rows alias away, outward (past the whole lit margin) when
		// the margin's noise floor clears the detection threshold — the
		// interior reference is only valid if the profile's deep end clears
		// the worst detection overshoot.
		inDepth   = 30.0
		outDepth  = 30.0
		marchStep = 0.5
		boxHalf   = 1.5 // profile sample box half-size, px
		// dilR is the 1-D max-filter radius, in px: it must exceed half the
		// moiré band period so the dilated interior never drops into a band
		// valley. A max filter shifts a falling edge outward by exactly its
		// radius, so the crossing found on the dilated profile is pulled back
		// by dilR; the residual error is the distance from the edge back to
		// the nearest band peak, at most half a band period.
		dilR       = 9.0
		maxTravel  = 30.0
		minStation = stations / 2
	)
	ii := newIntegral(acc)
	sample := func(x, y float64) float64 {
		return ii.rectMeanFrac(x-boxHalf, y-boxHalf, x+boxHalf, y+boxHalf)
	}
	type line struct {
		px, py, dx, dy float64 // point + unit direction
		ok             bool
	}
	fitLine := func(pts [][2]float64) line {
		fit := func(pts [][2]float64) line {
			var mx, my float64
			for _, p := range pts {
				mx += p[0]
				my += p[1]
			}
			n := float64(len(pts))
			mx /= n
			my /= n
			var sxx, sxy, syy float64
			for _, p := range pts {
				ux, uy := p[0]-mx, p[1]-my
				sxx += ux * ux
				sxy += ux * uy
				syy += uy * uy
			}
			th := 0.5 * math.Atan2(2*sxy, sxx-syy)
			return line{px: mx, py: my, dx: math.Cos(th), dy: math.Sin(th), ok: true}
		}
		l := fit(pts)
		// One rejection pass: drop crossings more than 2px off the first
		// fit (corner blur, a noisy profile) and refit from the rest.
		kept := pts[:0]
		for _, p := range pts {
			if math.Abs((p[0]-l.px)*l.dy-(p[1]-l.py)*l.dx) <= 2 {
				kept = append(kept, p)
			}
		}
		if len(kept) >= minStation && len(kept) < len(pts) {
			l = fit(kept)
		}
		return l
	}
	var lines [4]line
	for k := 0; k < 4; k++ {
		p0, p1 := q[k], q[(k+1)%4]
		ex, ey := p1[0]-p0[0], p1[1]-p0[1]
		elen := math.Hypot(ex, ey)
		if elen < 1 {
			continue
		}
		// Quad order is clockwise in image coordinates (y down), so the
		// outward normal of p0→p1 is (dy, −dx).
		nx, ny := ey/elen, -ex/elen
		var crossings [][2]float64
		for s := 0; s < stations; s++ {
			f := 0.15 + 0.7*float64(s)/float64(stations-1)
			bx, by := p0[0]+f*ex, p0[1]+f*ey
			// Profile along the outward normal, deep interior to past the
			// panel edge. Index i holds t = (i−nIn)·marchStep.
			const (
				nIn  = int(inDepth / marchStep)
				nOut = int(outDepth / marchStep)
				dilK = int(dilR / marchStep)
			)
			var prof, dil [nIn + nOut + 1]float64
			for i := range prof {
				t := float64(i-nIn) * marchStep
				prof[i] = sample(bx+nx*t, by+ny*t)
			}
			// Flatten the moiré bands: dilate with a max filter wider than a
			// band period so the interior reads as one high plateau.
			for i := range dil {
				lo, hi := i-dilK, i+dilK
				if lo < 0 {
					lo = 0
				}
				if hi > len(prof)-1 {
					hi = len(prof) - 1
				}
				m := prof[lo]
				for j := lo + 1; j <= hi; j++ {
					if prof[j] > m {
						m = prof[j]
					}
				}
				dil[i] = m
			}
			// Interior and exterior references on the dilated profile, over
			// the range where the filter window is complete.
			innerRef := dil[dilK]
			outerRef := innerRef
			for i := dilK; i <= len(dil)-1-dilK; i++ {
				if dil[i] < outerRef {
					outerRef = dil[i]
				}
			}
			if innerRef <= 1e-6 || outerRef > 0.7*innerRef {
				continue // no usable contrast at this station
			}
			// Innermost downward crossing of the mid level. The dilated
			// profile starts at the interior plateau (above the level by
			// construction) and steps down once per real boundary; the first
			// crossing is the grid edge, shifted outward by dilR.
			level := outerRef + 0.5*(innerRef-outerRef)
			pick := -1
			for i := dilK; i < len(dil)-1-dilK; i++ {
				if dil[i] >= level && dil[i+1] < level {
					pick = i
					break
				}
			}
			if pick < 0 {
				continue
			}
			frac := (dil[pick] - level) / (dil[pick] - dil[pick+1])
			tc := (float64(pick-nIn)+frac)*marchStep - dilR
			crossings = append(crossings, [2]float64{bx + nx*tc, by + ny*tc})
		}
		if len(crossings) >= minStation {
			lines[k] = fitLine(crossings)
		}
	}
	// Fallback for an edge with no usable fit: the detected edge itself.
	for k := 0; k < 4; k++ {
		if !lines[k].ok {
			p0, p1 := q[k], q[(k+1)%4]
			ex, ey := p1[0]-p0[0], p1[1]-p0[1]
			n := math.Hypot(ex, ey)
			if n < 1 {
				n = 1
			}
			lines[k] = line{px: p0[0], py: p0[1], dx: ex / n, dy: ey / n, ok: true}
		}
	}
	out := q
	for k := 0; k < 4; k++ {
		// Corner k is where edge k−1 meets edge k.
		a, b := lines[(k+3)%4], lines[k]
		den := a.dx*b.dy - a.dy*b.dx
		if math.Abs(den) < 1e-9 {
			continue
		}
		t := ((b.px-a.px)*b.dy - (b.py-a.py)*b.dx) / den
		cx, cy := a.px+t*a.dx, a.py+t*a.dy
		if math.Hypot(cx-q[k][0], cy-q[k][1]) <= maxTravel {
			out[k] = [2]float64{cx, cy}
		}
	}
	return out
}

// diffIntegrals prepares the matched filter's inputs: signed integral
// images of each capture's deviation from the temporal mean. Averaging over
// captures cancels the static video and the margins; what remains on
// chessboard-on Pixel cells is the signed modulation amplitude (one global
// sign per capture), zero on off cells, plus noise.
func diffIntegrals(caps []*frame.Frame) []*integralImage {
	w, h := caps[0].W, caps[0].H
	mean := frame.New(w, h)
	inv := 1 / float32(len(caps))
	for _, c := range caps {
		for i, v := range c.Pix {
			mean.Pix[i] += v * inv
		}
	}
	n := len(caps)
	if n > 6 {
		n = 6
	}
	iis := make([]*integralImage, n)
	diff := frame.New(w, h)
	for i := 0; i < n; i++ {
		for j, v := range caps[i].Pix {
			diff.Pix[j] = v - mean.Pix[j]
		}
		iis[i] = newIntegral(diff)
	}
	return iis
}

// mfScore is the projective alignment objective: a chessboard matched
// filter aggregated over every Block's warped footprint. For each capture's
// mean-subtracted plane, every Pixel cell's warped mean is accumulated with
// the transmitted chessboard sign (core.ChessOn); the per-capture statistic
// is |Σ|, since the modulation carries one global pair sign per capture and
// non-negative per-Block amplitudes. Alignment within a fraction of a cell
// maximizes the coherent sum; any residual warp makes cell footprints
// straddle on/off cells and the filter output decays smoothly toward the
// noise floor. Unlike a parity-pass score, the matched filter cannot be
// gamed by spatially smooth energy fields, which is what a misaligned
// frontal hypothesis produces on real camera captures.
func mfScore(l core.Layout, iis []*integralImage, h frame.Homography) float64 {
	return mfScoreStride(l, iis, h, 1)
}

// mfScoreStride is mfScore sampled on every stride-th Block in each axis — a
// proportionally cheaper estimate used to rank candidate alignments before
// the full-resolution score decides. The warped cell footprint is computed
// once per cell and shared by every capture plane.
func mfScoreStride(l core.Layout, iis []*integralImage, h frame.Homography, stride int) float64 {
	ps := l.PixelSize
	n := len(iis)
	if n > 6 {
		n = 6
	}
	var accs [6]float64
	for by := 0; by < l.BlocksY; by += stride {
		for bx := 0; bx < l.BlocksX; bx += stride {
			x0, y0, w, hh := l.BlockRect(bx, by)
			pi0, pj0 := x0/ps, y0/ps
			for cj := 0; cj*ps < hh; cj++ {
				cy0 := float64(y0 + cj*ps)
				for ci := 0; ci*ps < w; ci++ {
					cx0 := float64(x0 + ci*ps)
					minX, minY, maxX, maxY, ok := warpedBox(h, cx0, cy0, cx0+float64(ps), cy0+float64(ps))
					if !ok {
						continue
					}
					if core.ChessOn(pi0+ci, pj0+cj) {
						for i := 0; i < n; i++ {
							accs[i] += iis[i].rectMeanFrac(minX, minY, maxX, maxY)
						}
					} else {
						for i := 0; i < n; i++ {
							accs[i] -= iis[i].rectMeanFrac(minX, minY, maxX, maxY)
						}
					}
				}
			}
		}
	}
	var total float64
	for i := 0; i < n; i++ {
		total += math.Abs(accs[i])
	}
	return total / float64(n)
}

// warpedBox maps a display rectangle's corners through h and returns the
// warped footprint's bounding box, which the caller averages at sub-pixel
// resolution (rectMeanFrac). Pixel-cell footprints are only a couple of
// pixels across, so integer box coordinates would quantize the polish
// objective into a staircase; the fractional mean keeps it smooth in
// sub-pixel corner moves. Corners on the horizon line (impossible for
// validated poses, reachable for fuzzed homographies) report ok=false and
// the cell contributes nothing.
func warpedBox(h frame.Homography, x0, y0, x1, y1 float64) (minX, minY, maxX, maxY float64, ok bool) {
	n := 0
	for _, c := range [4][2]float64{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}} {
		fx, fy, applied := h.Apply(c[0], c[1])
		if !applied {
			return 0, 0, 0, 0, false
		}
		if n == 0 || fx < minX {
			minX = fx
		}
		if n == 0 || fx > maxX {
			maxX = fx
		}
		if n == 0 || fy < minY {
			minY = fy
		}
		if n == 0 || fy > maxY {
			maxY = fy
		}
		n++
	}
	return minX, minY, maxX, maxY, true
}

// polishSteps is the corner polish's search schedule in units of the
// *capture-space* Pixel-cell pitch: every calibration runs the same number
// of solve+score evaluations regardless of the data, so the projective path
// stays free of data-dependent convergence loops. Total per-corner travel is
// capped at 2.25 cell pitches on purpose: the chessboard matched filter is
// near-periodic in the cell pitch, and a longer leash lets the descent slip
// onto an anti-phase comb tooth that scores well but decodes inverted.
// Expressing the schedule in pitches keeps that leash meaningful whether the
// camera oversamples the panel (pitch > PixelSize) or undersamples it
// (pitch < PixelSize, e.g. the half-scale paper capture).
var polishSteps = [4]float64{1, 0.5, 0.5, 0.25}

// descendQuad runs fixed-iteration coordinate descent over the four capture
// corners of start, maximizing the matched-filter score of the solved
// homography: for each round, each corner axis tries ± the round's step (in
// capture pixels, pre-scaled by the cell pitch); an improved solve is adopted
// immediately. The iteration count is fixed (rounds × corners × axes × 2
// candidate offsets), never data-dependent. Returns the descended quad, its
// homography and score; ok is false when no corner configuration solved.
func descendQuad(l core.Layout, iis []*integralImage, src, start Quad, pitch float64, steps []float64, stride int) (Quad, frame.Homography, float64, bool) {
	h, err := frame.SolveHomography(src, start)
	if err != nil {
		return start, frame.Homography{}, 0, false
	}
	score := mfScoreStride(l, iis, h, stride)
	for _, step := range steps {
		for c := 0; c < 4; c++ {
			for axis := 0; axis < 2; axis++ {
				for _, d := range [2]float64{-step * pitch, step * pitch} {
					cand := start
					cand[c][axis] += d
					hc, err := frame.SolveHomography(src, cand)
					if err != nil {
						continue
					}
					if s := mfScoreStride(l, iis, hc, stride); s > score {
						score = s
						h = hc
						start = cand
					}
				}
			}
		}
	}
	return start, h, score, true
}

// scanEdges bridges a coarse quad into the matched filter's phase-lock
// basin. The filter is near-periodic in the cell pitch, so plain descent
// from a start more than half a pitch off locks onto the wrong comb tooth —
// and the edge refinement's residual error is a per-edge *offset* along the
// normal (its line directions are accurate, its levels biased inward by up
// to half a moiré band). The scan therefore translates one whole edge at a
// time along its outward normal over a ±spanPx window at sub-pitch steps:
// both corners move coherently, so every cell in the edge's band shifts in
// lockstep and the true tooth is guaranteed to be sampled. Coordinate-wise
// per-corner moves cannot find these offsets — moving one corner alone
// tilts the edge and gains almost nothing. Two rounds over the four edges,
// argmax on the stride-2 score; the evaluation count is fixed by the window
// and step, never data-dependent.
func scanEdges(l core.Layout, iis []*integralImage, src, start Quad, pitch, spanPx float64) (Quad, float64, bool) {
	q := start
	h, err := frame.SolveHomography(src, q)
	if err != nil {
		return q, 0, false
	}
	best := mfScoreStride(l, iis, h, 2)
	step := pitch / 3
	span := int(math.Ceil(spanPx / step))
	for round := 0; round < 2; round++ {
		for k := 0; k < 4; k++ {
			j := (k + 1) % 4
			ex, ey := q[j][0]-q[k][0], q[j][1]-q[k][1]
			elen := math.Hypot(ex, ey)
			if elen < 1 {
				continue
			}
			nx, ny := ey/elen, -ex/elen
			bestOff := 0.0
			for o := -span; o <= span; o++ {
				if o == 0 {
					continue
				}
				d := float64(o) * step
				cand := q
				cand[k][0] += nx * d
				cand[k][1] += ny * d
				cand[j][0] += nx * d
				cand[j][1] += ny * d
				hc, err := frame.SolveHomography(src, cand)
				if err != nil {
					continue
				}
				if s := mfScoreStride(l, iis, hc, 2); s > best {
					best = s
					bestOff = d
				}
			}
			q[k][0] += nx * bestOff
			q[k][1] += ny * bestOff
			q[j][0] += nx * bestOff
			q[j][1] += ny * bestOff
		}
	}
	return q, best, true
}

// scanCorners is the fine counterpart of scanEdges: once every edge offset
// is phase-locked, each corner coordinate is swept independently over a
// small ±spanPx window to absorb the residual shear and perspective the
// per-edge translations cannot express.
func scanCorners(l core.Layout, iis []*integralImage, src, start Quad, pitch, spanPx float64) (Quad, float64, bool) {
	q := start
	h, err := frame.SolveHomography(src, q)
	if err != nil {
		return q, 0, false
	}
	best := mfScoreStride(l, iis, h, 2)
	step := pitch / 3
	span := int(math.Ceil(spanPx / step))
	for round := 0; round < 2; round++ {
		for c := 0; c < 4; c++ {
			for axis := 0; axis < 2; axis++ {
				base := q[c][axis]
				bestOff := 0.0
				for o := -span; o <= span; o++ {
					if o == 0 {
						continue
					}
					cand := q
					cand[c][axis] = base + float64(o)*step
					hc, err := frame.SolveHomography(src, cand)
					if err != nil {
						continue
					}
					if s := mfScoreStride(l, iis, hc, 2); s > best {
						best = s
						bestOff = float64(o) * step
					}
				}
				q[c][axis] = base + bestOff
			}
		}
	}
	return q, best, true
}

// CalibrateProjective is the projective one-call path: detect the grid quad
// over the captures, refine each edge on the dilated energy profile, scan
// each corner into the matched filter's phase-lock basin, solve the
// display→capture homography by normalized DLT, and polish the four capture
// corners by fixed-iteration coordinate descent on the full-resolution
// matched-filter score. The frontal (full-frame axis-aligned) hypothesis
// competes on the same score and wins near-ties, so an already-aligned
// camera yields an exactly axis-aligned homography — which the receiver
// then routes through the pre-homography decode path bit-identically.
func CalibrateProjective(l core.Layout, caps []*frame.Frame) (frame.Homography, error) {
	if len(caps) == 0 {
		return frame.Homography{}, ErrNoRegion
	}
	ff := core.FullFrame(l, caps[0].W, caps[0].H)
	hff := frame.AxisAlignedHomography(ff.ScaleX, ff.ScaleY, ff.OffX, ff.OffY)
	quad, energy, err := detectQuad(caps)
	if err != nil {
		return frame.Homography{}, err
	}
	src := GridCorners(l)
	iis := diffIntegrals(caps)
	// Cell pitch in capture pixels, estimated from the detected quad's mean
	// horizontal extent against the display grid's width. It sets the polish
	// step sizes.
	gridW := float64(l.BlocksX * l.BlockPx())
	topW := math.Hypot(quad[1][0]-quad[0][0], quad[1][1]-quad[0][1])
	botW := math.Hypot(quad[2][0]-quad[3][0], quad[2][1]-quad[3][1])
	pitch := float64(l.PixelSize) * (topW + botW) / (2 * gridW)
	if !(pitch > 0.5) {
		pitch = 0.5
	}
	// Three starts — the edge-refined quad, the raw detected one (the
	// refinement's safety net), and the frontal grid (where a near-frontal
	// camera truly is, which detection can miss entirely when the energy
	// gate latches onto a content artifact) — each tried under two
	// strategies. A raw pre-descent score cannot rank candidates, because
	// the matched filter is near-periodic in the cell pitch and a start two
	// pixels off the true grid (outside the central comb tooth) can score
	// below one ten pixels off that aliases onto a tooth; only fully
	// descended scores compare.
	frontal := Quad{}
	for i, c := range src {
		frontal[i][0] = ff.OffX + c[0]*ff.ScaleX
		frontal[i][1] = ff.OffY + c[1]*ff.ScaleY
	}
	var (
		best      frame.Homography
		bestScore = math.Inf(-1)
		solved    bool
	)
	consider := func(start Quad) {
		_, h, s, ok := descendQuad(l, iis, src, start, pitch, polishSteps[:], 1)
		if ok && s > bestScore {
			bestScore = s
			best = h
			solved = true
		}
	}
	for _, cand := range [3]Quad{refineQuad(energy, quad), quad, frontal} {
		// Leashed descent straight from the coarse quad: the winning
		// strategy when detection landed within a couple of pixels, where
		// any longer-range move risks hopping onto an aliased comb tooth.
		consider(cand)
		// Scan bridge for the biased-detection regime: coherent per-edge
		// offsets first, then per-corner shear, then the same leashed
		// descent. All six final candidates are scored by the identical
		// full-resolution descended matched filter, so the regimes compete
		// on equal terms.
		if q, _, ok := scanEdges(l, iis, src, cand, pitch, 9); ok {
			if q, _, ok = scanCorners(l, iis, src, q, pitch, 3); ok {
				consider(q)
			}
		}
	}
	if !solved {
		return frame.Homography{}, frame.ErrDegenerateQuad
	}
	// Among near-ties prefer the frontal hypothesis, exactly as the affine
	// Calibrate prefers the full-frame mapping: the matched filter saturates
	// once alignment is within a fraction of a Pixel cell, and the
	// eight-parameter polish can always trade a sliver of coherence for
	// spurious sub-pixel wiggle. The margin is relative because the filter's
	// scale tracks the (layout- and channel-dependent) modulation amplitude;
	// a real pose costs the frontal grid far more than 10% of its coherence.
	if mfScore(l, iis, hff) >= 0.9*bestScore {
		return hff, nil
	}
	return best, nil
}
