package register

import (
	"errors"
	"math"
	"testing"

	"inframe/internal/camera"
	"inframe/internal/channel"
	"inframe/internal/core"
	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/metrics"
	"inframe/internal/video"
)

// testLayout: 12×8 blocks of 8 px on a 112×72 panel → margins 8/4.
func testLayout() core.Layout {
	return core.Layout{
		FrameW: 112, FrameH: 72,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 12, BlocksY: 8,
	}
}

func TestEnergyMapHighlightsChessboard(t *testing.T) {
	f := frame.NewFilled(64, 64, 127)
	// Chessboard patch in the middle.
	for y := 20; y < 44; y++ {
		for x := 20; x < 44; x++ {
			if (x/2+y/2)%2 == 1 {
				f.Set(x, y, 147)
			}
		}
	}
	e := EnergyMap(f, 1)
	inside := e.Region(24, 24, 16, 16).Mean()
	outside := e.Region(0, 0, 12, 12).Mean()
	if inside < 4*outside+1 {
		t.Fatalf("energy inside %.2f not well above outside %.2f", inside, outside)
	}
}

// renderedCaptures produces ideal captures of a multiplexed stream with an
// optional crop window (misregistration).
func renderedCaptures(t *testing.T, l core.Layout, crop *Rect, n int) []*frame.Frame {
	t.Helper()
	p := core.DefaultParams(l)
	p.Tau = 8
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), core.NewRandomStream(l, 5))
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]*frame.Frame, n)
	for i := range caps {
		// One steady frame per data period, alternating the pair sign, so
		// every Block's residual varies across the set.
		f := m.Frame(i*p.Tau + i%2)
		if crop != nil {
			// Overscan windows pad with black, like the camera does.
			window := frame.New(crop.W, crop.H)
			window.Blit(f, -crop.X0, -crop.Y0)
			f = window
		}
		caps[i] = f
	}
	return caps
}

func TestDetectRegionFullFrame(t *testing.T) {
	l := testLayout()
	caps := renderedCaptures(t, l, nil, 10)
	region, err := DetectRegion(caps)
	if err != nil {
		t.Fatal(err)
	}
	// The grid spans [8, 104) × [4, 68); allow a couple of pixels of
	// blur-driven spread.
	if math.Abs(float64(region.X0-8)) > 4 || math.Abs(float64(region.Y0-4)) > 4 {
		t.Fatalf("region origin (%d,%d), want ≈(8,4)", region.X0, region.Y0)
	}
	if math.Abs(float64(region.W-96)) > 8 || math.Abs(float64(region.H-64)) > 8 {
		t.Fatalf("region size %dx%d, want ≈96x64", region.W, region.H)
	}
}

func TestDetectRegionRejectsFlat(t *testing.T) {
	caps := []*frame.Frame{frame.NewFilled(64, 64, 127)}
	if _, err := DetectRegion(caps); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
	if _, err := DetectRegion(nil); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("empty input err = %v", err)
	}
}

func TestSolveIdentity(t *testing.T) {
	l := testLayout()
	// Region exactly framing the grid at capture == display resolution.
	m, err := Solve(l, Rect{X0: l.MarginX(), Y0: l.MarginY(), W: l.BlocksX * l.BlockPx(), H: l.BlocksY * l.BlockPx()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ScaleX-1) > 1e-9 || math.Abs(m.OffX) > 1e-9 || math.Abs(m.OffY) > 1e-9 {
		t.Fatalf("identity mapping = %+v", m)
	}
	if _, err := Solve(l, Rect{}); err == nil {
		t.Fatal("empty region solved")
	}
}

// TestCalibrateRecoversOverscan: captures framed by an overscan window (the
// camera sees the whole display plus dark border) yield a mapping that
// projects display coordinates onto the right capture pixels.
func TestCalibrateRecoversOverscan(t *testing.T) {
	l := testLayout()
	crop := &Rect{X0: -10, Y0: -6, W: 132, H: 84}
	caps := renderedCaptures(t, l, crop, 10)
	m, err := Calibrate(l, caps)
	if err != nil {
		t.Fatal(err)
	}
	// Display grid origin (8,4) should map near capture (18,10) at unit
	// scale (the window keeps display resolution).
	// Within half a Block pitch; the end-to-end test below is the binding
	// decode-quality criterion.
	gx, gy := m.Apply(float64(l.MarginX()), float64(l.MarginY()))
	if math.Abs(gx-18) > 4.5 || math.Abs(gy-10) > 4.5 {
		t.Fatalf("grid origin maps to (%.1f,%.1f), want ≈(18,10)", gx, gy)
	}
}

// TestMisregisteredEndToEnd: through the physical channel with a cropped,
// zoomed camera, decoding with the calibrated mapping works while the
// naive full-frame assumption collapses.
func TestMisregisteredEndToEnd(t *testing.T) {
	l := testLayout()
	p := core.DefaultParams(l)
	p.Tau = 8
	stream := core.NewRandomStream(l, 9)
	m, err := core.NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), stream)
	if err != nil {
		t.Fatal(err)
	}
	capW, capH := 100, 66
	ccfg := camera.DefaultConfig(capW, capH)
	ccfg.ReadoutTime = 0
	ccfg.NoiseSigma = 0.5
	ccfg.BlurRadius = 0
	// Camera overscans: the whole display plus a dark border, shifted.
	ccfg.CropX0, ccfg.CropY0, ccfg.CropW, ccfg.CropH = -8, -3, 126, 80
	dcfg := display.DefaultConfig()
	dcfg.ResponseTime = 0
	link, err := channel.New(channel.Config{Display: dcfg, Camera: ccfg})
	if err != nil {
		t.Fatal(err)
	}
	nData := 16
	if err := m.PushTo(link.Display, nData*p.Tau+24); err != nil {
		t.Fatal(err)
	}
	caps, times := link.CaptureAll()
	if len(caps) == 0 {
		t.Fatal("no captures")
	}

	availability := func(calib *core.CaptureMapping) float64 {
		rcfg := core.DefaultReceiverConfig(p, capW, capH)
		rcfg.Exposure = ccfg.Exposure
		rcfg.ReadoutTime = ccfg.ReadoutTime
		rcfg.Calib = calib
		rcv, err := core.NewReceiver(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		var stats metrics.GOBStats
		for d, fd := range rcv.DecodeCaptures(caps, times, ccfg.Exposure, nData) {
			if fd.Captures == 0 {
				continue
			}
			stats.AddWithOracle(fd, stream.DataFrame(d))
		}
		return float64(stats.OracleCorrect) / float64(stats.Total)
	}

	calib, err := Calibrate(l, caps)
	if err != nil {
		t.Fatal(err)
	}
	withCalib := availability(&calib)
	naive := availability(nil)
	if withCalib < 0.8 {
		t.Fatalf("calibrated oracle-correct ratio %.2f, want >= 0.8", withCalib)
	}
	if withCalib < naive+0.2 {
		t.Fatalf("calibration gain too small: %.2f vs naive %.2f", withCalib, naive)
	}
}
