package register

import (
	"errors"
	"math"
	"testing"

	"inframe/internal/core"
	"inframe/internal/frame"
	"inframe/internal/impair"
)

// posedCaptures warps ideal rendered captures through a pinhole camera pose,
// the same geometry model the impair stack applies.
func posedCaptures(t *testing.T, l core.Layout, tiltDeg, rollDeg, dist float64, n int) ([]*frame.Frame, frame.Homography) {
	t.Helper()
	caps := renderedCaptures(t, l, nil, n)
	pose := impair.PoseHomography(l.FrameW, l.FrameH, tiltDeg, rollDeg, dist)
	inv, err := pose.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range caps {
		warped := frame.New(c.W, c.H)
		frame.WarpInto(c, warped, inv)
		caps[i] = warped
	}
	return caps, pose
}

func TestGridCorners(t *testing.T) {
	l := testLayout()
	q := GridCorners(l)
	want := Quad{{8, 4}, {104, 4}, {104, 68}, {8, 68}}
	if q != want {
		t.Fatalf("GridCorners = %v, want %v", q, want)
	}
}

// TestDetectQuadFrontal: on frontal captures the detected quad must frame
// the chessboard-bearing grid, with a few pixels of blur-driven spread.
func TestDetectQuadFrontal(t *testing.T) {
	l := testLayout()
	caps := renderedCaptures(t, l, nil, 10)
	q, err := DetectQuad(caps)
	if err != nil {
		t.Fatal(err)
	}
	want := GridCorners(l)
	for i := range q {
		if math.Abs(q[i][0]-want[i][0]) > 5 || math.Abs(q[i][1]-want[i][1]) > 5 {
			t.Fatalf("corner %d at (%v,%v), want ≈(%v,%v)", i, q[i][0], q[i][1], want[i][0], want[i][1])
		}
	}
}

func TestDetectQuadRejectsFlat(t *testing.T) {
	if _, err := DetectQuad([]*frame.Frame{frame.NewFilled(64, 64, 127)}); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("flat captures: err = %v, want ErrNoRegion", err)
	}
	if _, err := DetectQuad(nil); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("no captures: err = %v, want ErrNoRegion", err)
	}
}

// TestCalibrateProjectiveFrontal pins the frontal tie-break: on undistorted
// captures the solver must return the exactly axis-aligned full-frame
// hypothesis, so the receiver's fast path stays reachable.
func TestCalibrateProjectiveFrontal(t *testing.T) {
	l := testLayout()
	caps := renderedCaptures(t, l, nil, 10)
	h, err := CalibrateProjective(l, caps)
	if err != nil {
		t.Fatal(err)
	}
	sx, sy, ox, oy, ok := h.AxisAligned()
	if !ok {
		t.Fatalf("frontal calibration is not axis-aligned: %v", h.M)
	}
	ff := core.FullFrame(l, caps[0].W, caps[0].H)
	if sx != ff.ScaleX || sy != ff.ScaleY || ox != ff.OffX || oy != ff.OffY {
		t.Fatalf("frontal calibration (%v,%v,%v,%v) != full-frame mapping %+v", sx, sy, ox, oy, ff)
	}
}

// TestCalibrateProjectivePosed: on keystoned captures the solved homography
// must land each grid corner within a couple of Block pitches of where the
// true pose puts it, and must beat the frontal hypothesis on the alignment
// score (i.e. the tie-break must not swallow a real pose).
func TestCalibrateProjectivePosed(t *testing.T) {
	l := testLayout()
	for _, tc := range []struct {
		name             string
		tilt, roll, dist float64
	}{
		{"tilt-20", 20, 0, 1},
		{"tilt-25-roll-5-far", 25, 5, 1.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			caps, pose := posedCaptures(t, l, tc.tilt, tc.roll, tc.dist, 10)
			h, err := CalibrateProjective(l, caps)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, _, ok := h.AxisAligned(); ok {
				t.Fatal("posed calibration collapsed to the frontal hypothesis")
			}
			tol := 2 * float64(l.BlockPx())
			for _, c := range GridCorners(l) {
				wx, wy, ok1 := pose.Apply(c[0], c[1])
				gx, gy, ok2 := h.Apply(c[0], c[1])
				if !ok1 || !ok2 {
					t.Fatalf("corner (%v,%v) on horizon", c[0], c[1])
				}
				if math.Abs(gx-wx) > tol || math.Abs(gy-wy) > tol {
					t.Fatalf("corner (%v,%v) solved to (%.1f,%.1f), true pose (%.1f,%.1f)",
						c[0], c[1], gx, gy, wx, wy)
				}
			}
		})
	}
}

// FuzzRegister shakes the projective registration front end with arbitrary
// pixel buffers and corner coordinates: DetectQuad, CalibrateProjective and
// SolveHomography must never panic, index out of range, or hand back a
// non-finite homography as a success.
func FuzzRegister(f *testing.F) {
	f.Add([]byte{0, 255, 0, 255, 128, 7}, uint8(8), uint8(8), uint8(3),
		0.0, 0.0, 100.0, 0.0, 100.0, 60.0, 0.0, 60.0)
	f.Add([]byte{1, 2, 3}, uint8(1), uint8(1), uint8(1),
		math.NaN(), math.Inf(1), 0.0, 0.0, 1e300, -1e300, 5.0, 5.0)
	f.Add([]byte{}, uint8(40), uint8(30), uint8(2),
		0.0, 0.0, 10.0, 10.0, 20.0, 20.0, 30.0, 30.0)
	f.Fuzz(func(t *testing.T, data []byte, w, h, n uint8,
		x0, y0, x1, y1, x2, y2, x3, y3 float64) {
		l := testLayout()
		fw, fh := int(w%96)+1, int(h%96)+1
		caps := make([]*frame.Frame, int(n%4)+1)
		for i := range caps {
			c := frame.New(fw, fh)
			for j := range c.Pix {
				if len(data) > 0 {
					c.Pix[j] = float32(data[(i*len(c.Pix)+j)%len(data)])
				}
			}
			caps[i] = c
		}
		if q, err := DetectQuad(caps); err == nil {
			for _, c := range q {
				if math.IsNaN(c[0]) || math.IsNaN(c[1]) {
					t.Fatalf("DetectQuad returned NaN corner %v", q)
				}
			}
		}
		if hm, err := CalibrateProjective(l, caps); err == nil {
			if err := hm.Validate(); err != nil {
				t.Fatalf("CalibrateProjective returned invalid homography: %v", err)
			}
		}
		dst := [4][2]float64{{x0, y0}, {x1, y1}, {x2, y2}, {x3, y3}}
		if hm, err := frame.SolveHomography(GridCorners(l), dst); err == nil {
			if err := hm.Validate(); err != nil {
				t.Fatalf("SolveHomography success with invalid homography: %v", err)
			}
		}
	})
}
