// Package register performs blind geometric calibration of the
// screen→camera link: it locates the data-bearing region inside captured
// frames from the chessboard's own high-spatial-frequency energy and solves
// the display→capture coordinate mapping the receiver needs.
//
// The paper's experiments fix the camera on a desk at 50 cm, implying known
// registration; this package removes that assumption for translation and
// zoom (a hand-held camera roughly facing the screen). Perspective and
// rotation are out of scope.
package register

import (
	"errors"
	"fmt"
	"sort"

	"inframe/internal/core"
	"inframe/internal/frame"
)

// Rect is a pixel-aligned rectangle in capture coordinates.
type Rect struct{ X0, Y0, W, H int }

// ErrNoRegion is returned when no chessboard-bearing region stands out.
var ErrNoRegion = errors.New("register: no data region detected")

// EnergyMap computes a per-pixel high-spatial-frequency energy image of a
// capture: |f − blur(f)|, then aggregated with a second blur so isolated
// noise pixels do not register.
func EnergyMap(f *frame.Frame, radius int) *frame.Frame {
	sm := frame.BoxBlur(f, radius)
	e := frame.New(f.W, f.H)
	for i, v := range f.Pix {
		d := v - sm.Pix[i]
		if d < 0 {
			d = -d
		}
		e.Pix[i] = d
	}
	return frame.BoxBlur(e, 2*radius+1)
}

// TemporalEnergy computes, per pixel, the variance across captures of the
// high-spatial-frequency residual (f − blur(f)). Chessboard pixels flip
// their residual's sign from capture to capture (the complementary
// alternation sampled at varying phases), so their variance carries the
// squared modulation amplitude on top of the noise floor; static content
// and sensor noise contribute only the floor. The result is blurred for
// spatial support.
func TemporalEnergy(caps []*frame.Frame) (*frame.Frame, error) {
	if len(caps) < 2 {
		return nil, ErrNoRegion
	}
	w, h := caps[0].W, caps[0].H
	sum := frame.New(w, h)
	sum2 := frame.New(w, h)
	for _, c := range caps {
		if c.W != w || c.H != h {
			return nil, fmt.Errorf("register: %w", frame.ErrSizeMismatch)
		}
		sm := frame.BoxBlur(c, 1)
		for i, v := range c.Pix {
			r := v - sm.Pix[i]
			sum.Pix[i] += r
			sum2.Pix[i] += r * r
		}
	}
	n := float32(len(caps))
	out := frame.New(w, h)
	for i := range out.Pix {
		mean := sum.Pix[i] / n
		out.Pix[i] = sum2.Pix[i]/n - mean*mean
	}
	return frame.BoxBlur(out, 3), nil
}

// DetectRegion locates the chessboard-bearing region across several
// captures using the temporal-variance map, row/column profiles and
// longest-plateau spans.
func DetectRegion(caps []*frame.Frame) (Rect, error) {
	acc, err := TemporalEnergy(caps)
	if err != nil {
		return Rect{}, err
	}

	// Column and row energy profiles: averaging a whole line suppresses
	// per-pixel noise outliers that would inflate a raw bounding box.
	colProfile := make([]float64, acc.W)
	rowProfile := make([]float64, acc.H)
	for y := 0; y < acc.H; y++ {
		for x := 0; x < acc.W; x++ {
			e := float64(acc.Pix[y*acc.W+x])
			colProfile[x] += e
			rowProfile[y] += e
		}
	}
	for x := range colProfile {
		colProfile[x] /= float64(acc.H)
	}
	for y := range rowProfile {
		rowProfile[y] /= float64(acc.W)
	}

	x0, x1, ok := profileSpan(colProfile)
	if !ok {
		return Rect{}, ErrNoRegion
	}
	y0, y1, ok := profileSpan(rowProfile)
	if !ok {
		return Rect{}, ErrNoRegion
	}
	if x1-x0 < 8 || y1-y0 < 8 {
		return Rect{}, ErrNoRegion
	}
	return Rect{X0: x0, Y0: y0, W: x1 - x0 + 1, H: y1 - y0 + 1}, nil
}

// profileSpan finds the active span of a 1-D energy profile: indices above
// the midpoint of the profile's low/high percentile levels. The span is the
// first and last above-threshold index; the profile must show real contrast
// and the span must be mostly active.
func profileSpan(profile []float64) (lo, hi int, ok bool) {
	sorted := append([]float64(nil), profile...)
	sort.Float64s(sorted)
	// The data grid may cover most of the capture, so the background level
	// must come from the extreme low tail; the foreground from the median
	// region, which is inside the grid whenever a grid is present at all.
	bg := sorted[len(sorted)/50]
	fg := sorted[len(sorted)*3/5]
	if fg-bg < 0.3 {
		return 0, 0, false
	}
	thr := bg + 0.7*(fg-bg)
	// The data grid is a wide plateau above threshold; thin spikes (the
	// display's own border against a dark room, content edges) are short
	// runs. Take the longest run, bridging gaps of up to 3 samples.
	bestLo, bestHi := -1, -1
	runLo := -1
	gap := 0
	for i := 0; i <= len(profile); i++ {
		above := i < len(profile) && profile[i] >= thr
		switch {
		case above && runLo < 0:
			runLo = i
			gap = 0
		case above:
			gap = 0
		case runLo >= 0:
			gap++
			if gap > 3 || i == len(profile) {
				hi := i - gap
				if hi-runLo > bestHi-bestLo {
					bestLo, bestHi = runLo, hi
				}
				runLo = -1
			}
		}
	}
	if bestLo < 0 || bestHi-bestLo < 8 {
		return 0, 0, false
	}
	return bestLo, bestHi, true
}

// Solve derives the display→capture mapping from a detected region: the
// region is assumed to frame the layout's Block grid (margins carry no
// energy and fall outside it).
func Solve(l core.Layout, region Rect) (core.CaptureMapping, error) {
	bp := l.BlockPx()
	gridW := float64(l.BlocksX * bp)
	gridH := float64(l.BlocksY * bp)
	if region.W <= 0 || region.H <= 0 {
		return core.CaptureMapping{}, ErrNoRegion
	}
	m := core.CaptureMapping{
		ScaleX: float64(region.W) / gridW,
		ScaleY: float64(region.H) / gridH,
	}
	// Region origin corresponds to the grid origin (MarginX, MarginY).
	m.OffX = float64(region.X0) - float64(l.MarginX())*m.ScaleX
	m.OffY = float64(region.Y0) - float64(l.MarginY())*m.ScaleY
	if err := m.Validate(); err != nil {
		return core.CaptureMapping{}, err
	}
	return m, nil
}

// Calibrate is the one-call path: detect the region over the captures,
// solve the coarse mapping, and refine the better of {coarse, full-frame}
// to sub-block accuracy. Including the full-frame hypothesis keeps an
// already-aligned camera from being dragged off by a noisy region estimate.
func Calibrate(l core.Layout, caps []*frame.Frame) (core.CaptureMapping, error) {
	if len(caps) == 0 {
		return core.CaptureMapping{}, ErrNoRegion
	}
	candidates := []core.CaptureMapping{core.FullFrame(l, caps[0].W, caps[0].H)}
	if region, err := DetectRegion(caps); err == nil {
		if coarse, err := Solve(l, region); err == nil {
			candidates = append(candidates, coarse)
		}
	}
	// Consider each hypothesis both as-is and refined: refinement explores
	// a neighbourhood whose parity score can tie within noise, and an
	// already-perfect mapping should not be dragged off by a tie.
	pool := make([]core.CaptureMapping, 0, 2*len(candidates))
	for _, cand := range candidates {
		pool = append(pool, cand, Refine(l, caps, cand, 5))
	}
	scores := make([]float64, len(pool))
	bestScore := 0.0
	for i, cand := range pool {
		scores[i] = scoreMapping(l, caps, cand)
		if i == 0 || scores[i] > bestScore {
			bestScore = scores[i]
		}
	}
	// Among near-tied scores (the parity metric saturates once alignment is
	// within a fraction of a Block), prefer the mapping closest to the
	// full-frame hypothesis: ties otherwise wander within the search
	// neighbourhood.
	full := pool[0]
	best := pool[0]
	bestDist := 0.0
	first := true
	for i, cand := range pool {
		if scores[i] < bestScore-0.02 {
			continue
		}
		d := distance(l, cand, full)
		if first || d < bestDist {
			best = cand
			bestDist = d
			first = false
		}
	}
	return best, nil
}

// scoreMapping evaluates a mapping's parity-decode quality on the captures.
func scoreMapping(l core.Layout, caps []*frame.Frame, m core.CaptureMapping) float64 {
	n := len(caps)
	if n > 3 {
		n = 3
	}
	iis := make([]*integralImage, n)
	for i := 0; i < n; i++ {
		iis[i] = newIntegral(EnergyMap(caps[i], 1))
	}
	return alignScore(l, iis, m)
}
