package link

import "fmt"

// Interleaver is a byte block interleaver of depth D over fixed-size frame
// payloads: D consecutive codewords are written as rows and transmitted as
// columns, so a whole lost frame (a burst on the screen→camera channel:
// occlusion, a hand waving past, a scene cut) becomes ≤⌈n/D⌉ scattered
// erasures in each codeword instead of one destroyed codeword.
type Interleaver struct {
	depth      int
	frameBytes int
}

// NewInterleaver builds a depth-D interleaver over frames of n bytes.
func NewInterleaver(depth, frameBytes int) (*Interleaver, error) {
	if depth < 1 {
		return nil, fmt.Errorf("link: interleaver depth must be >= 1, got %d", depth)
	}
	if frameBytes < 1 {
		return nil, fmt.Errorf("link: frame size must be >= 1, got %d", frameBytes)
	}
	return &Interleaver{depth: depth, frameBytes: frameBytes}, nil
}

// Depth returns D.
func (il *Interleaver) Depth() int { return il.depth }

// Interleave maps D codewords onto D transmitted frame payloads. Input and
// output are both depth×frameBytes.
func (il *Interleaver) Interleave(codewords [][]byte) ([][]byte, error) {
	if err := il.check(codewords); err != nil {
		return nil, err
	}
	out := make([][]byte, il.depth)
	for i := range out {
		out[i] = make([]byte, il.frameBytes)
	}
	// Transmitted frame f, position p carries codeword (f+p) mod D's byte p.
	for f := 0; f < il.depth; f++ {
		for p := 0; p < il.frameBytes; p++ {
			out[f][p] = codewords[(f+p)%il.depth][p]
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave. Nil rows mark frames lost in transit;
// their contributions surface as per-codeword erasure positions.
func (il *Interleaver) Deinterleave(frames [][]byte) (codewords [][]byte, erasures [][]int, err error) {
	if len(frames) != il.depth {
		return nil, nil, fmt.Errorf("link: got %d frames, want %d", len(frames), il.depth)
	}
	for i, f := range frames {
		if f != nil && len(f) != il.frameBytes {
			return nil, nil, fmt.Errorf("link: frame %d has %d bytes, want %d", i, len(f), il.frameBytes)
		}
	}
	codewords = make([][]byte, il.depth)
	erasures = make([][]int, il.depth)
	for i := range codewords {
		codewords[i] = make([]byte, il.frameBytes)
	}
	for f := 0; f < il.depth; f++ {
		for p := 0; p < il.frameBytes; p++ {
			c := (f + p) % il.depth
			if frames[f] == nil {
				erasures[c] = append(erasures[c], p)
				continue
			}
			codewords[c][p] = frames[f][p]
		}
	}
	return codewords, erasures, nil
}

func (il *Interleaver) check(rows [][]byte) error {
	if len(rows) != il.depth {
		return fmt.Errorf("link: got %d codewords, want %d", len(rows), il.depth)
	}
	for i, r := range rows {
		if len(r) != il.frameBytes {
			return fmt.Errorf("link: codeword %d has %d bytes, want %d", i, len(r), il.frameBytes)
		}
	}
	return nil
}
