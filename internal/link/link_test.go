package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketMarshalRoundTrip(t *testing.T) {
	p := &Packet{Seq: 3, Total: 7, Payload: []byte("hello, inframe")}
	buf := p.Marshal()
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seq != 3 || q.Total != 7 || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("round trip = %+v", q)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := &Packet{Seq: 0, Total: 1, Payload: []byte("payload")}
	buf := p.Marshal()
	for i := 0; i < len(buf); i++ {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d undetected", i)
		}
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("short buffer accepted")
	}
}

func TestUnmarshalRejectsBadSeq(t *testing.T) {
	p := &Packet{Seq: 5, Total: 5, Payload: []byte("x")} // seq >= total
	if _, err := Unmarshal(p.Marshal()); !errors.Is(err, ErrCorrupt) {
		t.Fatal("seq >= total accepted")
	}
	p2 := &Packet{Seq: 0, Total: 0, Payload: []byte("x")}
	if _, err := Unmarshal(p2.Marshal()); !errors.Is(err, ErrCorrupt) {
		t.Fatal("total == 0 accepted")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// MSB-first convention.
	bits := BytesToBits([]byte{0x80})
	if !bits[0] || bits[7] {
		t.Fatal("not MSB-first")
	}
	// Partial final byte truncated.
	if len(BitsToBytes(make([]bool, 10))) != 1 {
		t.Fatal("partial byte not truncated")
	}
}

func TestNewSegmenterMinimumSize(t *testing.T) {
	if _, err := NewSegmenter(95); err == nil {
		t.Fatal("accepted frame too small for header+1")
	}
	s, err := NewSegmenter(1125) // the paper's frame payload
	if err != nil {
		t.Fatal(err)
	}
	// 1125/8 = 140 bytes − 12 header = 128 payload bytes per frame.
	if s.PayloadPerPacket() != 128 {
		t.Fatalf("payload per packet = %d, want 128", s.PayloadPerPacket())
	}
}

func TestSegmentReassemble(t *testing.T) {
	s, _ := NewSegmenter(1125)
	msg := make([]byte, 1000)
	rand.New(rand.NewSource(4)).Read(msg)
	pkts, err := s.Segment(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 8 { // ceil(1000/128)
		t.Fatalf("segmented into %d packets, want 8", len(pkts))
	}
	r := NewReassembler()
	for _, p := range pkts {
		fresh, err := r.Offer(s.FrameBits(p))
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatal("fresh packet reported duplicate")
		}
	}
	if !r.Complete() {
		t.Fatal("not complete after all packets")
	}
	got, err := r.Message()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("reassembled message differs")
	}
}

func TestSegmentEmpty(t *testing.T) {
	s, _ := NewSegmenter(1125)
	if _, err := s.Segment(nil); err == nil {
		t.Fatal("accepted empty message")
	}
}

func TestReassemblerOutOfOrderAndDuplicates(t *testing.T) {
	s, _ := NewSegmenter(1125)
	msg := []byte("the quick brown fox jumps over the lazy dog, repeatedly, for a while longer than one packet's worth of payload bytes would ever allow in this configuration")
	pkts, _ := s.Segment(msg)
	if len(pkts) < 2 {
		t.Fatalf("want multi-packet message, got %d", len(pkts))
	}
	r := NewReassembler()
	// Feed in reverse with duplicates.
	for i := len(pkts) - 1; i >= 0; i-- {
		if _, err := r.Offer(s.FrameBits(pkts[i])); err != nil {
			t.Fatal(err)
		}
		fresh, err := r.Offer(s.FrameBits(pkts[i]))
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			t.Fatal("duplicate reported fresh")
		}
	}
	got, err := r.Message()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblerMissing(t *testing.T) {
	s, _ := NewSegmenter(1125)
	msg := make([]byte, 300)
	pkts, _ := s.Segment(msg) // 3 packets
	r := NewReassembler()
	if r.Missing() != nil {
		t.Fatal("missing before any packet should be nil")
	}
	r.Offer(s.FrameBits(pkts[1]))
	miss := r.Missing()
	if len(miss) != 2 || miss[0] != 0 || miss[1] != 2 {
		t.Fatalf("missing = %v, want [0 2]", miss)
	}
	if _, err := r.Message(); err == nil {
		t.Fatal("incomplete message returned")
	}
	if r.Complete() {
		t.Fatal("incomplete reassembler claims complete")
	}
}

func TestReassemblerRejectsCorruptFrames(t *testing.T) {
	s, _ := NewSegmenter(1125)
	pkts, _ := s.Segment([]byte("some payload"))
	bits := s.FrameBits(pkts[0])
	bits[40] = !bits[40] // corrupt inside payload area covered by CRC
	r := NewReassembler()
	if _, err := r.Offer(bits); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame accepted: %v", err)
	}
	if len(r.received) != 0 {
		t.Fatal("corrupt frame stored")
	}
}

func TestReassemblerInconsistentTotal(t *testing.T) {
	s, _ := NewSegmenter(1125)
	a := &Packet{Seq: 0, Total: 2, Payload: []byte("a")}
	b := &Packet{Seq: 1, Total: 3, Payload: []byte("b")}
	r := NewReassembler()
	if _, err := r.Offer(s.FrameBits(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Offer(s.FrameBits(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("inconsistent total accepted")
	}
}
