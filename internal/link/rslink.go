package link

import (
	"fmt"

	"inframe/internal/code/rs"
)

// RSSegmenter is the forward-error-corrected framing layer: each packet is
// Reed–Solomon coded across its data frame, so the frame survives the GOB
// losses a physical screen→camera channel always has (unavailable GOBs
// become byte erasures, undetected flips become symbol errors). This is the
// "more sophisticated error correction codes" extension of §3.3 made load-
// bearing: without it, one bad Block in a 375-GOB frame would kill the
// whole packet.
type RSSegmenter struct {
	frameBytes int
	code       *rs.Code
}

// MaxParityBytes returns the largest RS parity budget NewSegmenterRS accepts
// for data frames carrying frameBits payload bits: the frame's byte budget
// minus the packet header and one payload byte. The result can be below the
// 2-byte minimum (or negative) for frames too small to carry any packet;
// callers deciding a budget should clamp to this and reject layouts where it
// falls under 2.
func MaxParityBytes(frameBits int) int {
	return frameBits/8 - headerSize - 1
}

// NewSegmenterRS builds an RS-protected segmenter for data frames carrying
// frameBits payload bits, reserving parityBytes of each frame's byte budget
// for RS parity. The remaining bytes carry one packet (header + payload).
func NewSegmenterRS(frameBits, parityBytes int) (*RSSegmenter, error) {
	frameBytes := frameBits / 8
	if frameBytes > 255 {
		return nil, fmt.Errorf("link: frame of %d bytes exceeds RS(255) symbol budget", frameBytes)
	}
	k := frameBytes - parityBytes
	if parityBytes < 2 {
		return nil, fmt.Errorf("link: need at least 2 parity bytes, got %d", parityBytes)
	}
	if k < headerSize+1 {
		return nil, fmt.Errorf("link: frame of %d bits cannot hold a packet plus %d parity bytes",
			frameBits, parityBytes)
	}
	code, err := rs.New(frameBytes, k)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	return &RSSegmenter{frameBytes: frameBytes, code: code}, nil
}

// PayloadPerPacket returns the message bytes carried per data frame.
func (s *RSSegmenter) PayloadPerPacket() int { return s.code.K() - headerSize }

// ParityBytes returns the per-frame RS parity budget.
func (s *RSSegmenter) ParityBytes() int { return s.code.Parity() }

// Segment splits the message into packets, one per data frame.
func (s *RSSegmenter) Segment(msg []byte) ([]*Packet, error) {
	if len(msg) == 0 {
		return nil, fmt.Errorf("link: empty message")
	}
	per := s.PayloadPerPacket()
	total := (len(msg) + per - 1) / per
	if total > 0xffff {
		return nil, fmt.Errorf("link: message needs %d packets, max 65535", total)
	}
	pkts := make([]*Packet, total)
	for i := range pkts {
		lo := i * per
		hi := lo + per
		if hi > len(msg) {
			hi = len(msg)
		}
		pkts[i] = &Packet{Seq: uint16(i), Total: uint16(total), Payload: msg[lo:hi]}
	}
	return pkts, nil
}

// FrameBits renders one packet into its RS-coded frame bit payload.
func (s *RSSegmenter) FrameBits(p *Packet) ([]bool, error) {
	data := make([]byte, s.code.K())
	buf := p.Marshal()
	if len(buf) > len(data) {
		return nil, fmt.Errorf("link: packet of %d bytes exceeds frame data budget %d", len(buf), len(data))
	}
	copy(data, buf)
	cw, err := s.code.Encode(data)
	if err != nil {
		return nil, err
	}
	return BytesToBits(cw), nil
}

// DecodeFrame recovers the packet from a decoded frame's payload bits.
// erasedBytes lists byte positions the physical layer flagged unreliable
// (e.g. bytes touching unavailable GOBs). Returns ErrCorrupt when the RS
// decode fails or the recovered header is invalid.
func (s *RSSegmenter) DecodeFrame(bits []bool, erasedBytes []int) (*Packet, error) {
	cw := BytesToBytesBudget(bits, s.frameBytes)
	if len(erasedBytes) > s.code.Parity() {
		// Beyond RS capacity: truncation would invite miscorrection, so
		// report the frame lost outright.
		return nil, ErrCorrupt
	}
	data, err := s.code.Decode(cw, erasedBytes)
	if err != nil {
		return nil, ErrCorrupt
	}
	return Unmarshal(data)
}

// BytesToBytesBudget packs bits MSB-first into exactly n bytes, zero-padding
// or truncating as needed.
func BytesToBytesBudget(bits []bool, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var b byte
		for j := 0; j < 8; j++ {
			idx := i*8 + j
			if idx < len(bits) && bits[idx] {
				b |= 1 << (7 - j)
			}
		}
		out[i] = b
	}
	return out
}

// OfferPacket feeds an already-validated packet into the reassembler,
// applying the same duplicate/consistency rules as Offer.
func (r *Reassembler) OfferPacket(p *Packet) (bool, error) {
	if p.Total == 0 || p.Seq >= p.Total {
		return false, ErrCorrupt
	}
	if r.total == -1 {
		r.total = int(p.Total)
	} else if r.total != int(p.Total) {
		return false, ErrCorrupt
	}
	if _, dup := r.received[p.Seq]; dup {
		return false, nil
	}
	r.received[p.Seq] = p.Payload
	return true, nil
}
