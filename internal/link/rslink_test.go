package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestNewSegmenterRSValidation(t *testing.T) {
	// 1125 bits = 140 bytes; 35 parity leaves 105 data ≥ header+1.
	s, err := NewSegmenterRS(1125, 35)
	if err != nil {
		t.Fatal(err)
	}
	if s.ParityBytes() != 35 {
		t.Fatalf("parity = %d", s.ParityBytes())
	}
	if s.PayloadPerPacket() != 140-35-12 {
		t.Fatalf("payload = %d", s.PayloadPerPacket())
	}
	if _, err := NewSegmenterRS(1125, 1); err == nil {
		t.Fatal("1 parity byte accepted")
	}
	if _, err := NewSegmenterRS(1125, 130); err == nil {
		t.Fatal("parity leaving no packet room accepted")
	}
	if _, err := NewSegmenterRS(3000, 35); err == nil {
		t.Fatal("frame beyond RS(255) accepted")
	}
}

func TestRSFrameRoundTripClean(t *testing.T) {
	s, _ := NewSegmenterRS(1125, 35)
	msg := []byte("reed-solomon protected link frame")
	pkts, err := s.Segment(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("packets = %d", len(pkts))
	}
	bits, err := s.FrameBits(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 140*8 {
		t.Fatalf("frame bits = %d", len(bits))
	}
	got, err := s.DecodeFrame(bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, msg) {
		t.Fatal("payload changed")
	}
}

func TestRSFrameCorrectsErrorsAndErasures(t *testing.T) {
	s, _ := NewSegmenterRS(1125, 35)
	msg := make([]byte, 90)
	rand.New(rand.NewSource(5)).Read(msg)
	pkts, _ := s.Segment(msg)
	bits, err := s.FrameBits(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt 10 unknown bytes (errors) and zero 15 known bytes (erasures):
	// 2·10 + 15 = 35 = parity budget.
	rng := rand.New(rand.NewSource(6))
	perm := rng.Perm(140)
	flip := func(byteIdx int) {
		bit := byteIdx*8 + rng.Intn(8)
		bits[bit] = !bits[bit]
	}
	for _, b := range perm[:10] {
		flip(b)
	}
	var erasures []int
	for _, b := range perm[10:25] {
		erasures = append(erasures, b)
		for j := 0; j < 8; j++ {
			bits[b*8+j] = false
		}
	}
	got, err := s.DecodeFrame(bits, erasures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, msg) {
		t.Fatal("payload corrupted after correction")
	}
}

func TestRSFrameBeyondCapacity(t *testing.T) {
	s, _ := NewSegmenterRS(1125, 35)
	pkts, _ := s.Segment([]byte("x"))
	bits, _ := s.FrameBits(pkts[0])
	var erasures []int
	for b := 0; b < 36; b++ { // one beyond parity
		erasures = append(erasures, b)
	}
	if _, err := s.DecodeFrame(bits, erasures); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRSSegmentEdgeCases(t *testing.T) {
	s, _ := NewSegmenterRS(1125, 35)
	if _, err := s.Segment(nil); err == nil {
		t.Fatal("empty message accepted")
	}
	// Oversized packet payload rejected by FrameBits.
	big := &Packet{Seq: 0, Total: 1, Payload: make([]byte, 1000)}
	if _, err := s.FrameBits(big); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

func TestOfferPacket(t *testing.T) {
	r := NewReassembler()
	if _, err := r.OfferPacket(&Packet{Seq: 2, Total: 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("seq >= total accepted")
	}
	fresh, err := r.OfferPacket(&Packet{Seq: 0, Total: 2, Payload: []byte("a")})
	if err != nil || !fresh {
		t.Fatalf("first offer: %v %v", fresh, err)
	}
	fresh, err = r.OfferPacket(&Packet{Seq: 0, Total: 2, Payload: []byte("a")})
	if err != nil || fresh {
		t.Fatal("duplicate reported fresh")
	}
	if _, err := r.OfferPacket(&Packet{Seq: 1, Total: 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatal("inconsistent total accepted")
	}
	if _, err := r.OfferPacket(&Packet{Seq: 1, Total: 2, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	msg, err := r.Message()
	if err != nil || string(msg) != "ab" {
		t.Fatalf("message = %q, %v", msg, err)
	}
}

func TestBytesToBytesBudget(t *testing.T) {
	bits := BytesToBits([]byte{0xAB, 0xCD})
	out := BytesToBytesBudget(bits, 3) // pad
	if out[0] != 0xAB || out[1] != 0xCD || out[2] != 0 {
		t.Fatalf("padded = %x", out)
	}
	out = BytesToBytesBudget(bits, 1) // truncate
	if out[0] != 0xAB {
		t.Fatalf("truncated = %x", out)
	}
}
