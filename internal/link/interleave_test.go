package link

import (
	"bytes"
	"math/rand"
	"testing"

	"inframe/internal/code/rs"
)

func TestNewInterleaverValidation(t *testing.T) {
	if _, err := NewInterleaver(0, 10); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewInterleaver(4, 0); err == nil {
		t.Fatal("frame size 0 accepted")
	}
	il, err := NewInterleaver(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if il.Depth() != 4 {
		t.Fatal("depth accessor wrong")
	}
}

func testCodewords(depth, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, depth)
	for i := range out {
		out[i] = make([]byte, n)
		rng.Read(out[i])
	}
	return out
}

func TestInterleaveRoundTrip(t *testing.T) {
	il, _ := NewInterleaver(5, 23)
	cws := testCodewords(5, 23, 1)
	frames, err := il.Interleave(cws)
	if err != nil {
		t.Fatal(err)
	}
	back, erasures, err := il.Deinterleave(frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cws {
		if !bytes.Equal(back[i], cws[i]) {
			t.Fatalf("codeword %d changed", i)
		}
		if len(erasures[i]) != 0 {
			t.Fatalf("codeword %d has spurious erasures", i)
		}
	}
}

func TestInterleaveShapeChecks(t *testing.T) {
	il, _ := NewInterleaver(3, 8)
	if _, err := il.Interleave(testCodewords(2, 8, 1)); err == nil {
		t.Fatal("wrong row count accepted")
	}
	if _, err := il.Interleave(testCodewords(3, 9, 1)); err == nil {
		t.Fatal("wrong row size accepted")
	}
	if _, _, err := il.Deinterleave(testCodewords(2, 8, 1)); err == nil {
		t.Fatal("wrong frame count accepted")
	}
	bad := testCodewords(3, 8, 1)
	bad[1] = bad[1][:5]
	if _, _, err := il.Deinterleave(bad); err == nil {
		t.Fatal("wrong frame size accepted")
	}
}

// TestLostFrameSpreadsErasures: dropping one of D frames erases about n/D
// bytes of every codeword — within RS correction reach — instead of one
// whole codeword.
func TestLostFrameSpreadsErasures(t *testing.T) {
	const depth, n = 4, 32
	il, _ := NewInterleaver(depth, n)
	cws := testCodewords(depth, n, 9)
	frames, _ := il.Interleave(cws)
	frames[2] = nil // one whole frame lost
	back, erasures, err := il.Deinterleave(frames)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < depth; c++ {
		if len(erasures[c]) != n/depth {
			t.Fatalf("codeword %d: %d erasures, want %d", c, len(erasures[c]), n/depth)
		}
		// Non-erased positions intact.
		eras := map[int]bool{}
		for _, p := range erasures[c] {
			eras[p] = true
		}
		for p := 0; p < n; p++ {
			if !eras[p] && back[c][p] != cws[c][p] {
				t.Fatalf("codeword %d byte %d corrupted", c, p)
			}
		}
	}
}

// TestInterleavedRSSurvivesFrameLoss: end-to-end with RS(32, 24): one lost
// frame in four is fully recovered through interleaving, while without
// interleaving the codeword carried by that frame is gone.
func TestInterleavedRSSurvivesFrameLoss(t *testing.T) {
	const depth, n, k = 4, 32, 24
	code, err := rs.New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	il, _ := NewInterleaver(depth, n)
	rng := rand.New(rand.NewSource(4))
	data := make([][]byte, depth)
	cws := make([][]byte, depth)
	for i := range cws {
		data[i] = make([]byte, k)
		rng.Read(data[i])
		cw, err := code.Encode(data[i])
		if err != nil {
			t.Fatal(err)
		}
		cws[i] = cw
	}
	frames, _ := il.Interleave(cws)
	frames[1] = nil
	back, erasures, err := il.Deinterleave(frames)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < depth; c++ {
		got, err := code.Decode(back[c], erasures[c])
		if err != nil {
			t.Fatalf("codeword %d: %v", c, err)
		}
		if !bytes.Equal(got, data[c]) {
			t.Fatalf("codeword %d data corrupted", c)
		}
	}
	// Without interleaving: the lost frame's codeword is simply absent —
	// 32 erasures exceed the 8-byte parity and cannot be decoded.
	allErased := make([]int, n)
	for i := range allErased {
		allErased[i] = i
	}
	if _, err := code.Decode(make([]byte, n), allErased); err == nil {
		t.Fatal("whole-codeword loss should be undecodable")
	}
}
