// Package link provides a byte-stream framing layer over InFrame data
// frames — the "further framing optimizations" hook of §3.3. It segments a
// message into packets with sequence numbers and CRC-32 integrity, maps
// packets to data-frame bit payloads, and reassembles on the receive side,
// tolerating lost and corrupted data frames through retransmission rounds.
package link

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Packet header layout (big endian):
//
//	0:2  magic 0x1F7A
//	2:4  sequence number
//	4:6  total packets in message
//	6:8  payload length in bytes
//	8:12 CRC-32 (IEEE) of header[0:8] + payload
const (
	headerSize = 12
	magic      = 0x1F7A
)

// HeaderSize is the packet header length in bytes, exported so budget
// calculations outside the package (e.g. parity clamping) can reason about
// the minimum frame capacity.
const HeaderSize = headerSize

// ErrCorrupt is returned for packets failing CRC or structural checks.
var ErrCorrupt = errors.New("link: corrupt packet")

// Packet is one link-layer unit, sized to fit one data frame.
type Packet struct {
	Seq     uint16
	Total   uint16
	Payload []byte
}

// Marshal serializes the packet with header and CRC.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, headerSize+len(p.Payload))
	binary.BigEndian.PutUint16(buf[0:2], magic)
	binary.BigEndian.PutUint16(buf[2:4], p.Seq)
	binary.BigEndian.PutUint16(buf[4:6], p.Total)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(p.Payload)))
	copy(buf[headerSize:], p.Payload)
	crc := crc32.ChecksumIEEE(append(append([]byte{}, buf[0:8]...), p.Payload...))
	binary.BigEndian.PutUint32(buf[8:12], crc)
	return buf
}

// Unmarshal parses and validates a packet.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < headerSize {
		return nil, ErrCorrupt
	}
	if binary.BigEndian.Uint16(buf[0:2]) != magic {
		return nil, ErrCorrupt
	}
	plen := int(binary.BigEndian.Uint16(buf[6:8]))
	if len(buf) < headerSize+plen {
		return nil, ErrCorrupt
	}
	payload := buf[headerSize : headerSize+plen]
	want := binary.BigEndian.Uint32(buf[8:12])
	crc := crc32.ChecksumIEEE(append(append([]byte{}, buf[0:8]...), payload...))
	if crc != want {
		return nil, ErrCorrupt
	}
	p := &Packet{
		Seq:     binary.BigEndian.Uint16(buf[2:4]),
		Total:   binary.BigEndian.Uint16(buf[4:6]),
		Payload: append([]byte(nil), payload...),
	}
	if p.Total == 0 || p.Seq >= p.Total {
		return nil, ErrCorrupt
	}
	return p, nil
}

// BytesToBits expands bytes MSB-first.
func BytesToBits(data []byte) []bool {
	bits := make([]bool, len(data)*8)
	for i, b := range data {
		for j := 0; j < 8; j++ {
			bits[i*8+j] = b&(1<<(7-j)) != 0
		}
	}
	return bits
}

// BitsToBytes packs bits MSB-first, truncating a partial final byte.
func BitsToBytes(bits []bool) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			if bits[i*8+j] {
				b |= 1 << (7 - j)
			}
		}
		out[i] = b
	}
	return out
}

// Segmenter splits a message into packets sized for a data frame carrying
// frameBits payload bits.
type Segmenter struct {
	frameBits int
}

// NewSegmenter returns a segmenter for data frames of frameBits bits. The
// frame must fit at least the header plus one payload byte.
func NewSegmenter(frameBits int) (*Segmenter, error) {
	if frameBits < (headerSize+1)*8 {
		return nil, fmt.Errorf("link: frame of %d bits cannot hold a packet", frameBits)
	}
	return &Segmenter{frameBits: frameBits}, nil
}

// PayloadPerPacket returns the payload bytes carried per packet.
func (s *Segmenter) PayloadPerPacket() int { return s.frameBits/8 - headerSize }

// Segment splits the message into packets, one per data frame.
func (s *Segmenter) Segment(msg []byte) ([]*Packet, error) {
	if len(msg) == 0 {
		return nil, errors.New("link: empty message")
	}
	per := s.PayloadPerPacket()
	total := (len(msg) + per - 1) / per
	if total > 0xffff {
		return nil, fmt.Errorf("link: message needs %d packets, max 65535", total)
	}
	pkts := make([]*Packet, total)
	for i := range pkts {
		lo := i * per
		hi := lo + per
		if hi > len(msg) {
			hi = len(msg)
		}
		pkts[i] = &Packet{Seq: uint16(i), Total: uint16(total), Payload: msg[lo:hi]}
	}
	return pkts, nil
}

// FrameBits renders one packet into a frame-sized bit payload, zero-padded.
func (s *Segmenter) FrameBits(p *Packet) []bool {
	bits := BytesToBits(p.Marshal())
	out := make([]bool, s.frameBits)
	copy(out, bits)
	return out
}

// Reassembler collects packets until a message completes.
type Reassembler struct {
	total    int
	received map[uint16][]byte
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{total: -1, received: make(map[uint16][]byte)}
}

// Offer feeds one decoded frame's bits. It returns true if the frame held a
// valid, new packet; corrupt frames are ignored with ErrCorrupt.
func (r *Reassembler) Offer(bits []bool) (bool, error) {
	p, err := Unmarshal(BitsToBytes(bits))
	if err != nil {
		return false, err
	}
	if r.total == -1 {
		r.total = int(p.Total)
	} else if r.total != int(p.Total) {
		return false, ErrCorrupt
	}
	if _, dup := r.received[p.Seq]; dup {
		return false, nil
	}
	r.received[p.Seq] = p.Payload
	return true, nil
}

// Missing returns the sequence numbers still outstanding (nil when nothing
// has been learned yet).
func (r *Reassembler) Missing() []uint16 {
	if r.total < 0 {
		return nil
	}
	var out []uint16
	for i := 0; i < r.total; i++ {
		if _, ok := r.received[uint16(i)]; !ok {
			out = append(out, uint16(i))
		}
	}
	return out
}

// Complete reports whether every packet has arrived.
func (r *Reassembler) Complete() bool { return r.total > 0 && len(r.received) == r.total }

// Message concatenates the payloads; it errors until Complete.
func (r *Reassembler) Message() ([]byte, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("link: message incomplete: %d of %d packets", len(r.received), r.total)
	}
	var out []byte
	for i := 0; i < r.total; i++ {
		out = append(out, r.received[uint16(i)]...)
	}
	return out, nil
}
