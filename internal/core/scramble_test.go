package core

import "testing"

func TestScrambleBitsSelfInverse(t *testing.T) {
	bits := make([]bool, 64)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	s := ScrambleBits(bits, 42, 7)
	same := true
	for i := range bits {
		if s[i] != bits[i] {
			same = false
		}
	}
	if same {
		t.Fatal("scrambling changed nothing")
	}
	back := ScrambleBits(s, 42, 7)
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("bit %d not restored", i)
		}
	}
}

func TestScrambleBitsKeyed(t *testing.T) {
	bits := make([]bool, 64)
	a := ScrambleBits(bits, 1, 0)
	b := ScrambleBits(bits, 1, 1)
	c := ScrambleBits(bits, 2, 0)
	diff := func(x, y []bool) int {
		n := 0
		for i := range x {
			if x[i] != y[i] {
				n++
			}
		}
		return n
	}
	if diff(a, b) < 16 {
		t.Fatal("frame indices produce near-identical whitening")
	}
	if diff(a, c) < 16 {
		t.Fatal("seeds produce near-identical whitening")
	}
}

func TestScrambledStreamTogglesConstantPayload(t *testing.T) {
	l := smallLayout()
	constant := NewDataFrame(l) // all zero payload
	ss := &ScrambledStream{Inner: &FixedStream{Frames: []*DataFrame{constant}}, Seed: 9}
	a := ss.DataFrame(0)
	b := ss.DataFrame(1)
	if a.Equal(b) {
		t.Fatal("whitened frames identical across indices")
	}
	// Parity still holds on every whitened frame.
	for gy := 0; gy < l.GOBsY(); gy++ {
		for gx := 0; gx < l.GOBsX(); gx++ {
			if !a.ParityOK(gx, gy) || !b.ParityOK(gx, gy) {
				t.Fatal("whitened frame violates parity")
			}
		}
	}
	// Descrambling recovers the constant payload.
	back := ScrambleBits(a.DataBits(), 9, 0)
	for i, bit := range back {
		if bit {
			t.Fatalf("descrambled bit %d not zero", i)
		}
	}
}
