package core

import (
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

// TestEstimatePhaseRecoversOffset: render a multiplexed stream, present the
// display frames as captures with a time base shifted by a known phase, and
// check the estimator finds it.
func TestEstimatePhaseRecoversOffset(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), NewRandomStream(l, 21))
	period := float64(p.Tau) / 120

	nData := 12
	frames := m.Render(nData * p.Tau)
	truePhase := 0.375 * period
	// Captures at ~31 FPS (sampling many phases), shifted by truePhase.
	var caps []*frame.Frame
	var times []float64
	for t0 := 0.0; t0 < float64(nData)*period-0.02; t0 += 1.0 / 31 {
		k := int((t0) * 120)
		if k >= len(frames) {
			break
		}
		caps = append(caps, frames[k])
		times = append(times, t0+truePhase)
	}
	est := EstimatePhase(caps, times, 1.0/120, period, 64)
	if err := PhaseError(est, truePhase, period); err > 0.1*period {
		t.Fatalf("phase error %.4f (%.1f%% of period), estimated %.4f want %.4f",
			err, 100*err/period, est, truePhase)
	}
}

func TestEstimatePhaseDegenerateInputs(t *testing.T) {
	if p := EstimatePhase(nil, nil, 0.01, 0.1, 16); p != 0 {
		t.Fatalf("empty input phase = %v", p)
	}
	f := frame.NewFilled(8, 8, 1)
	if p := EstimatePhase([]*frame.Frame{f}, []float64{0}, 0.01, 0.1, 0); p != 0 {
		t.Fatalf("zero grid phase = %v", p)
	}
	if p := EstimatePhase([]*frame.Frame{f}, []float64{0, 1}, 0.01, 0.1, 8); p != 0 {
		t.Fatalf("mismatched lengths phase = %v", p)
	}
}

func TestPhaseError(t *testing.T) {
	if e := PhaseError(0.1, 0.9, 1.0); e > 0.2000001 || e < 0.1999999 {
		t.Fatalf("circular phase error = %v, want 0.2", e)
	}
	if e := PhaseError(0.3, 0.3, 1.0); e != 0 {
		t.Fatalf("identical phases error = %v", e)
	}
}
