// Package core implements the InFrame contribution itself: the hierarchical
// data frame structure (Element pixels → Pixels → Blocks → GOBs, §3.3), the
// chessboard on/off-keying encoder, the complementary-frame multiplexer with
// clipping-aware local amplitude adjustment and temporal block smoothing
// (§3.2), and the noise-energy demultiplexer/decoder.
package core

import "fmt"

// Layout fixes the spatial hierarchy of a data frame on the display panel:
//
//   - an Element pixel is one screen pixel;
//   - a Pixel is p×p Element pixels sharing one value (§3.3's minimum
//     operating unit, p chosen near the eye's resolution);
//   - a Block is s×s Pixels and carries one bit;
//   - a GOB is m×m Blocks; with m=2 the paper uses 3 data bits + 1 XOR
//     parity bit per GOB.
//
// The Block grid is centered on the panel; margins carry no data.
type Layout struct {
	// FrameW, FrameH are the panel dimensions in screen pixels.
	FrameW, FrameH int
	// PixelSize is p, the side of a super Pixel in screen pixels.
	PixelSize int
	// BlockSize is s, the side of a Block in Pixels.
	BlockSize int
	// GOBSize is m, the side of a GOB in Blocks (paper: 2).
	GOBSize int
	// BlocksX, BlocksY are the data frame dimensions in Blocks
	// (paper: 50×30, i.e. 15×25 GOBs).
	BlocksX, BlocksY int
}

// PaperLayout returns the paper's experimental geometry: a 1920×1080 panel,
// p=4, s=9 (36-pixel Blocks), 50×30 Blocks forming 25×15 GOBs, with 60-pixel
// horizontal margins.
func PaperLayout() Layout {
	return Layout{
		FrameW: 1920, FrameH: 1080,
		PixelSize: 4, BlockSize: 9, GOBSize: 2,
		BlocksX: 50, BlocksY: 30,
	}
}

// ScaledPaperLayout returns the paper geometry at 1/div scale (div must
// divide the Pixel size evenly: div ∈ {1, 2, 4}). Block and GOB counts are
// unchanged, so rate accounting matches the paper at any scale.
func ScaledPaperLayout(div int) (Layout, error) {
	l := PaperLayout()
	if div <= 0 || l.PixelSize%div != 0 || l.FrameW%div != 0 || l.FrameH%div != 0 {
		return Layout{}, fmt.Errorf("core: scale divisor %d incompatible with paper layout", div)
	}
	l.FrameW /= div
	l.FrameH /= div
	l.PixelSize /= div
	return l, nil
}

// Validate reports whether the layout is self-consistent and fits the panel.
func (l Layout) Validate() error {
	if l.FrameW <= 0 || l.FrameH <= 0 {
		return fmt.Errorf("core: invalid frame size %dx%d", l.FrameW, l.FrameH)
	}
	if l.PixelSize <= 0 || l.BlockSize <= 0 || l.GOBSize <= 0 {
		return fmt.Errorf("core: non-positive pixel/block/gob size")
	}
	if l.BlocksX <= 0 || l.BlocksY <= 0 {
		return fmt.Errorf("core: non-positive block counts %dx%d", l.BlocksX, l.BlocksY)
	}
	if l.BlocksX%l.GOBSize != 0 || l.BlocksY%l.GOBSize != 0 {
		return fmt.Errorf("core: block grid %dx%d not divisible into %d-Block GOBs",
			l.BlocksX, l.BlocksY, l.GOBSize)
	}
	if l.BlocksX*l.BlockPx() > l.FrameW || l.BlocksY*l.BlockPx() > l.FrameH {
		return fmt.Errorf("core: %dx%d blocks of %d px exceed %dx%d panel",
			l.BlocksX, l.BlocksY, l.BlockPx(), l.FrameW, l.FrameH)
	}
	return nil
}

// BlockPx returns the Block side in screen pixels (p·s).
func (l Layout) BlockPx() int { return l.PixelSize * l.BlockSize }

// MarginX returns the left margin in screen pixels (grid centered).
func (l Layout) MarginX() int { return (l.FrameW - l.BlocksX*l.BlockPx()) / 2 }

// MarginY returns the top margin in screen pixels.
func (l Layout) MarginY() int { return (l.FrameH - l.BlocksY*l.BlockPx()) / 2 }

// GOBsX returns the number of GOB columns.
func (l Layout) GOBsX() int { return l.BlocksX / l.GOBSize }

// GOBsY returns the number of GOB rows.
func (l Layout) GOBsY() int { return l.BlocksY / l.GOBSize }

// NumBlocks returns the total Block count (one bit each on the wire).
func (l Layout) NumBlocks() int { return l.BlocksX * l.BlocksY }

// NumGOBs returns the total GOB count.
func (l Layout) NumGOBs() int { return l.GOBsX() * l.GOBsY() }

// BlocksPerGOB returns the Blocks in one GOB (m²).
func (l Layout) BlocksPerGOB() int { return l.GOBSize * l.GOBSize }

// DataBitsPerFrame returns the data bits per data frame excluding parity:
// with m=2, each GOB carries m²−1 = 3 data bits (the paper's
// w/s/2 × h/s/2 × 3 accounting).
func (l Layout) DataBitsPerFrame() int { return l.NumGOBs() * (l.BlocksPerGOB() - 1) }

// BlockRect returns the screen-pixel rectangle of Block (bx, by).
func (l Layout) BlockRect(bx, by int) (x0, y0, w, h int) {
	if bx < 0 || bx >= l.BlocksX || by < 0 || by >= l.BlocksY {
		panic(fmt.Sprintf("core: block (%d,%d) out of %dx%d grid", bx, by, l.BlocksX, l.BlocksY))
	}
	bp := l.BlockPx()
	return l.MarginX() + bx*bp, l.MarginY() + by*bp, bp, bp
}

// GOBBlocks returns the (bx, by) coordinates of the Blocks of GOB (gx, gy)
// in row-major order; with m=2 the fourth entry is the parity Block.
func (l Layout) GOBBlocks(gx, gy int) [][2]int {
	if gx < 0 || gx >= l.GOBsX() || gy < 0 || gy >= l.GOBsY() {
		panic(fmt.Sprintf("core: GOB (%d,%d) out of %dx%d grid", gx, gy, l.GOBsX(), l.GOBsY()))
	}
	out := make([][2]int, 0, l.BlocksPerGOB())
	for j := 0; j < l.GOBSize; j++ {
		for i := 0; i < l.GOBSize; i++ {
			out = append(out, [2]int{gx*l.GOBSize + i, gy*l.GOBSize + j})
		}
	}
	return out
}

// ChessOn reports whether the Pixel at global Pixel coordinates (pi, pj) is
// a raised ("on") cell of the chessboard pattern: δ where pi+pj is odd, 0
// otherwise (§3.3).
func ChessOn(pi, pj int) bool { return (pi+pj)%2 == 1 }
