package core

import (
	"math"
	"reflect"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

func TestErasureCauseString(t *testing.T) {
	want := map[ErasureCause]string{
		CauseNone:          "ok",
		CauseParity:        "parity",
		CauseLowConfidence: "low-confidence",
		CauseNoSwing:       "no-swing",
		CauseNoSignal:      "no-signal",
		CauseNoCapture:     "no-capture",
		ErasureCause(42):   "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("ErasureCause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if NumErasureCauses != 6 {
		t.Fatalf("NumErasureCauses = %d, want 6", NumErasureCauses)
	}
}

func TestEmptyDecodeAllNoCapture(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	fd := r.emptyDecode(3)
	if fd.Index != 3 || fd.Captures != 0 {
		t.Fatalf("empty decode index/captures = %d/%d", fd.Index, fd.Captures)
	}
	for j, c := range fd.BlockCauses {
		if c != CauseNoCapture {
			t.Fatalf("block %d cause %v, want no-capture", j, c)
		}
	}
	for _, g := range fd.GOBs {
		if g.Available || g.Cause != CauseNoCapture {
			t.Fatalf("GOB (%d,%d) = %+v, want unavailable no-capture", g.GX, g.GY, g)
		}
	}
}

// TestDecodeCapturesReportIdealChannel: on a clean channel the report's
// frames are the exact DecodeCaptures output, every capture is scored and
// used, and the cause tally is all CauseNone.
func TestDecodeCapturesReportIdealChannel(t *testing.T) {
	p := smallParams()
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	nData := 24
	caps, times, exp := idealCaptures(m, nData*p.Tau)
	r := smallReceiver(t, p)
	plain := r.DecodeCaptures(caps, times, exp, nData)
	decoded, rep := r.DecodeCapturesReport(caps, times, exp, nData)
	if !reflect.DeepEqual(plain, decoded) {
		t.Fatal("report decode differs from plain decode")
	}
	if len(rep.Quality) != len(caps) {
		t.Fatalf("quality timeline has %d entries, want %d", len(rep.Quality), len(caps))
	}
	scored := 0
	for i, q := range rep.Quality {
		if q.Index != i {
			t.Fatalf("quality entry %d has index %d", i, q.Index)
		}
		// Captures whose mid-exposure falls in the inverted half of the
		// data-frame period are legitimately unscored; the interior
		// steady-window captures must all be scored+used. Capture τ/2−1 of
		// each frame sits exactly on the window edge, where float rounding
		// legitimately decides either way.
		switch phase := i % p.Tau; {
		case phase < p.Tau/2-1:
			if !q.Scored || !q.Used || q.Excluded {
				t.Fatalf("capture %d: scored=%v used=%v excluded=%v on an ideal channel",
					i, q.Scored, q.Used, q.Excluded)
			}
			if q.Quality <= 0 || q.Quality > 1 {
				t.Fatalf("capture %d quality %v outside (0,1]", i, q.Quality)
			}
			scored++
		case phase >= p.Tau/2:
			if q.Scored || q.Used {
				t.Fatalf("out-of-window capture %d was scored", i)
			}
		}
	}
	if want := nData * (p.Tau/2 - 1); scored != want {
		t.Fatalf("scored %d interior captures, want %d", scored, want)
	}
	if rep.GapFrames != 0 || rep.Resyncs != 0 || rep.ExcludedCaptures != 0 {
		t.Fatalf("gaps=%d resyncs=%d excluded=%d on an ideal channel",
			rep.GapFrames, rep.Resyncs, rep.ExcludedCaptures)
	}
	counts := rep.CauseCounts()
	if counts[CauseNone] != nData*l.NumGOBs() {
		t.Fatalf("delivered GOBs = %d, want %d", counts[CauseNone], nData*l.NumGOBs())
	}
	for c := CauseParity; c < ErasureCause(NumErasureCauses); c++ {
		if counts[c] != 0 {
			t.Fatalf("cause %v count = %d on an ideal channel", c, counts[c])
		}
	}
	avail := rep.GOBAvailability()
	if len(avail) != l.NumGOBs() {
		t.Fatalf("availability map has %d GOBs, want %d", len(avail), l.NumGOBs())
	}
	for i, a := range avail {
		if math.Abs(a-1) > 0 {
			t.Fatalf("GOB %d availability %v, want 1", i, a)
		}
	}
	if rep.MeanQuality() <= 0 || rep.MinQuality() <= 0 {
		t.Fatalf("mean/min quality %v/%v, want positive", rep.MeanQuality(), rep.MinQuality())
	}
}

// TestDecodeReportGapsAndResyncs: removing the captures of one data frame in
// the middle of the run produces a gap frame (all GOBs CauseNoCapture) and
// one resync when decoding resumes.
func TestDecodeReportGapsAndResyncs(t *testing.T) {
	p := smallParams()
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	nData := 24
	caps, times, exp := idealCaptures(m, nData*p.Tau)
	// Drop every capture that observes data frame 5 (τ display frames).
	gap := 5
	keptCaps := make([]*frame.Frame, 0, len(caps))
	keptTimes := make([]float64, 0, len(times))
	for i := range caps {
		if i/p.Tau == gap {
			continue
		}
		keptCaps = append(keptCaps, caps[i])
		keptTimes = append(keptTimes, times[i])
	}
	r := smallReceiver(t, p)
	decoded, rep := r.DecodeCapturesReport(keptCaps, keptTimes, exp, nData)
	if rep.GapFrames != 1 || rep.Resyncs != 1 {
		t.Fatalf("gaps=%d resyncs=%d, want 1/1", rep.GapFrames, rep.Resyncs)
	}
	fd := decoded[gap]
	if fd.Captures != 0 {
		t.Fatalf("gap frame saw %d captures", fd.Captures)
	}
	for _, g := range fd.GOBs {
		if g.Cause != CauseNoCapture {
			t.Fatalf("gap frame GOB cause %v, want no-capture", g.Cause)
		}
	}
	counts := rep.CauseCounts()
	if counts[CauseNoCapture] != l.NumGOBs() {
		t.Fatalf("no-capture tally = %d, want %d", counts[CauseNoCapture], l.NumGOBs())
	}
	// Neighbouring frames still decode in full.
	for _, d := range []int{gap - 1, gap + 1} {
		if decoded[d].AvailableGOBs() != l.NumGOBs() {
			t.Fatalf("frame %d lost GOBs to the gap", d)
		}
	}
	avail := rep.GOBAvailability()
	wantRatio := float64(nData-1) / float64(nData)
	for i, a := range avail {
		if math.Abs(a-wantRatio) > 1e-12 {
			t.Fatalf("GOB %d availability %v, want %v", i, a, wantRatio)
		}
	}
}

// TestMinCaptureQualityGating: a clipped garbage capture inside a steady
// window is excluded by the gate, leaving the decode bit-identical to the
// clean sequence; without the gate it is used (and scored near zero).
func TestMinCaptureQualityGating(t *testing.T) {
	p := smallParams()
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	nData := 24
	caps, times, exp := idealCaptures(m, nData*p.Tau)
	// Splice an all-black (fully clipped) capture into data frame 7's
	// steady window, after the genuine captures so the aggregation order of
	// the clean prefix is unchanged.
	garbage := frame.NewFilled(l.FrameW, l.FrameH, 0)
	gt := times[7*p.Tau] + exp/4
	polluted := append(append([]*frame.Frame{}, caps...), garbage)
	pollutedTimes := append(append([]float64{}, times...), gt)

	cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	cfg.MinCaptureQuality = 0.2
	gated, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := smallReceiver(t, p)

	want := clean.DecodeCaptures(caps, times, exp, nData)
	got, rep := gated.DecodeCapturesReport(polluted, pollutedTimes, exp, nData)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("gated decode of polluted sequence differs from clean decode")
	}
	if rep.ExcludedCaptures != 1 {
		t.Fatalf("excluded = %d, want 1", rep.ExcludedCaptures)
	}
	last := rep.Quality[len(rep.Quality)-1]
	if !last.Scored || !last.Excluded || last.Used {
		t.Fatalf("garbage capture entry = %+v, want scored+excluded", last)
	}
	if last.Quality >= 0.2 {
		t.Fatalf("garbage capture quality %v, want < 0.2", last.Quality)
	}
	// Gate off: the garbage capture is scored but used.
	_, rep2 := clean.DecodeCapturesReport(polluted, pollutedTimes, exp, nData)
	last2 := rep2.Quality[len(rep2.Quality)-1]
	if !last2.Used || last2.Excluded || rep2.ExcludedCaptures != 0 {
		t.Fatalf("ungated garbage entry = %+v (excluded=%d), want used", last2, rep2.ExcludedCaptures)
	}
}

// TestRecalibrateEveryWindows: RecalibrateEvery=0 and a window spanning the
// whole run are bit-identical, and a genuinely windowed calibration still
// decodes an ideal channel in full.
func TestRecalibrateEveryWindows(t *testing.T) {
	p := smallParams()
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	nData := 24
	caps, times, exp := idealCaptures(m, nData*p.Tau)

	decodeWith := func(every int) []*FrameDecode {
		cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
		cfg.RecalibrateEvery = every
		r, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.DecodeCaptures(caps, times, exp, nData)
	}
	whole := decodeWith(0)
	if !reflect.DeepEqual(whole, decodeWith(nData)) {
		t.Fatal("whole-run window differs from RecalibrateEvery=0")
	}
	if !reflect.DeepEqual(whole, decodeWith(10*nData)) {
		t.Fatal("over-long window differs from RecalibrateEvery=0")
	}
	// Shorter windows starve the percentile estimates slightly, so demand
	// near-full (not perfect) availability — and zero confident errors.
	avail, total := 0, 0
	for d, fd := range decodeWith(nData / 2) {
		avail += fd.AvailableGOBs()
		total += l.NumGOBs()
		want := stream.DataFrame(d)
		for j, decided := range fd.Decided {
			if decided && fd.Bits.Bits[j] != want.Bits[j] {
				t.Fatalf("windowed decode frame %d block %d: confident wrong bit", d, j)
			}
		}
	}
	// 12-frame windows give each Block only ~6 samples per bit level, so a
	// fraction of GOBs rightly come back no-swing; most must still deliver.
	if ratio := float64(avail) / float64(total); ratio < 0.75 {
		t.Fatalf("windowed availability %.2f, want >= 0.75", ratio)
	}
}

// TestBuildGOBsCauses: the GOB aggregation reports the worst cause among a
// GOB's Blocks, CauseParity on confident-but-wrong groups, and falls back to
// low-confidence when no per-Block causes were recorded.
func TestBuildGOBsCauses(t *testing.T) {
	l := smallLayout()
	nBlocks := l.NumBlocks()
	mk := func() *FrameDecode {
		fd := &FrameDecode{
			Bits:        NewDataFrame(l),
			Decided:     make([]bool, nBlocks),
			BlockCauses: make([]ErasureCause, nBlocks),
		}
		for j := range fd.Decided {
			fd.Decided[j] = true
		}
		return fd
	}
	// All decided, all-zero bits: every GOB's XOR parity holds.
	fd := mk()
	buildGOBs(fd, l)
	for _, g := range fd.GOBs {
		if !g.Available || !g.ParityOK || g.Cause != CauseNone {
			t.Fatalf("clean GOB = %+v", g)
		}
	}
	// Flip one data bit of GOB (0,0): confident wrong group → CauseParity.
	fd = mk()
	blk := l.GOBBlocks(0, 0)[0]
	fd.Bits.SetBit(blk[0], blk[1], true)
	buildGOBs(fd, l)
	if g := fd.GOBs[0]; !g.Available || g.ParityOK || g.Cause != CauseParity {
		t.Fatalf("parity-failed GOB = %+v", g)
	}
	// Two undecided Blocks in one GOB with different causes: the worst wins.
	fd = mk()
	blks := l.GOBBlocks(0, 0)
	j0 := blks[0][1]*l.BlocksX + blks[0][0]
	j1 := blks[1][1]*l.BlocksX + blks[1][0]
	fd.Decided[j0] = false
	fd.BlockCauses[j0] = CauseLowConfidence
	fd.Decided[j1] = false
	fd.BlockCauses[j1] = CauseNoSignal
	buildGOBs(fd, l)
	if g := fd.GOBs[0]; g.Available || g.Cause != CauseNoSignal {
		t.Fatalf("mixed-cause GOB = %+v, want worst cause no-signal", g)
	}
	// Legacy callers without BlockCauses degrade to low-confidence.
	fd = mk()
	fd.BlockCauses = nil
	fd.Decided[j0] = false
	buildGOBs(fd, l)
	if g := fd.GOBs[0]; g.Available || g.Cause != CauseLowConfidence {
		t.Fatalf("nil-causes GOB = %+v, want low-confidence", g)
	}
}

// TestLinkQuality: clean mid-gray captures score high, a fully clipped frame
// scores zero, and the score never leaves [0, 1].
func TestLinkQuality(t *testing.T) {
	p := smallParams()
	l := p.Layout
	r := smallReceiver(t, p)
	gray := frame.NewFilled(l.FrameW, l.FrameH, 127)
	scores, quality := r.MeasureCaptureAt(gray, 0)
	q := r.linkQuality(gray, scores, quality)
	if q <= 0.9 || q > 1 {
		t.Fatalf("mid-gray link quality %v, want ~1", q)
	}
	black := frame.NewFilled(l.FrameW, l.FrameH, 0)
	scores, quality = r.MeasureCaptureAt(black, 0)
	//lint:ignore floateq the clipped-frame score is exactly zeroed by the clip factor
	if q := r.linkQuality(black, scores, quality); q != 0 {
		t.Fatalf("all-black link quality %v, want 0", q)
	}
	// Half the frame saturated: quality degrades roughly with the clipped
	// fraction but stays inside [0, 1].
	half := frame.NewFilled(l.FrameW, l.FrameH, 127)
	for i := 0; i < len(half.Pix)/2; i++ {
		half.Pix[i] = 255
	}
	scores, quality = r.MeasureCaptureAt(half, 0)
	if q := r.linkQuality(half, scores, quality); q <= 0 || q >= 0.8 {
		t.Fatalf("half-clipped link quality %v, want in (0, 0.8)", q)
	}
}

func TestDecodeReportEmpty(t *testing.T) {
	rep := &DecodeReport{}
	if rep.GOBAvailability() != nil {
		t.Fatal("empty report returned an availability map")
	}
	//lint:ignore floateq empty-report sentinels are exact
	if rep.MeanQuality() != 0 || !math.IsInf(rep.MinQuality(), 1) {
		t.Fatalf("empty report mean/min = %v/%v", rep.MeanQuality(), rep.MinQuality())
	}
}
