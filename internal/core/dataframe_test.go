package core

import "testing"

// smallLayout is a compact geometry for unit tests: 4×6 blocks of 8×8 px
// (p=2, s=4) in a 48×32 panel, 2×3 GOBs.
func smallLayout() Layout {
	return Layout{
		FrameW: 48, FrameH: 32,
		PixelSize: 2, BlockSize: 4, GOBSize: 2,
		BlocksX: 6, BlocksY: 4,
	}
}

func TestSmallLayoutValid(t *testing.T) {
	if err := smallLayout().Validate(); err != nil {
		t.Fatal(err)
	}
	l := smallLayout()
	if l.NumGOBs() != 6 || l.DataBitsPerFrame() != 18 {
		t.Fatalf("GOBs=%d bits=%d", l.NumGOBs(), l.DataBitsPerFrame())
	}
}

func TestFromDataBitsRoundTrip(t *testing.T) {
	l := smallLayout()
	bits := make([]bool, l.DataBitsPerFrame())
	for i := range bits {
		bits[i] = i%3 == 0 || i%7 == 2
	}
	df, err := FromDataBits(l, bits)
	if err != nil {
		t.Fatal(err)
	}
	back := df.DataBits()
	if len(back) != len(bits) {
		t.Fatalf("extracted %d bits, want %d", len(back), len(bits))
	}
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestFromDataBitsParityHolds(t *testing.T) {
	l := smallLayout()
	bits := make([]bool, l.DataBitsPerFrame())
	bits[0], bits[4], bits[9] = true, true, true
	df, err := FromDataBits(l, bits)
	if err != nil {
		t.Fatal(err)
	}
	for gy := 0; gy < l.GOBsY(); gy++ {
		for gx := 0; gx < l.GOBsX(); gx++ {
			if !df.ParityOK(gx, gy) {
				t.Fatalf("GOB (%d,%d) parity violated after encode", gx, gy)
			}
		}
	}
	// Flipping any single Block breaks its GOB's parity.
	df.SetBit(0, 0, !df.Bit(0, 0))
	if df.ParityOK(0, 0) {
		t.Fatal("parity survived a flipped block")
	}
}

func TestFromDataBitsWrongLength(t *testing.T) {
	if _, err := FromDataBits(smallLayout(), make([]bool, 5)); err == nil {
		t.Fatal("accepted wrong bit count")
	}
}

func TestDataFrameCloneEqual(t *testing.T) {
	df := NewDataFrame(smallLayout())
	df.SetBit(2, 1, true)
	cl := df.Clone()
	if !df.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.SetBit(0, 0, true)
	if df.Equal(cl) {
		t.Fatal("clone shares storage")
	}
	if df.Bit(2, 1) != true || df.Bit(0, 0) != false {
		t.Fatal("bit accessors wrong")
	}
}

func TestRandomStreamDeterministicPerSeed(t *testing.T) {
	l := smallLayout()
	a := NewRandomStream(l, 42)
	b := NewRandomStream(l, 42)
	for _, i := range []int{0, 1, 5} {
		if !a.DataFrame(i).Equal(b.DataFrame(i)) {
			t.Fatalf("frame %d differs across identically seeded streams", i)
		}
	}
	if a.DataFrame(0).Equal(a.DataFrame(1)) {
		t.Fatal("consecutive random frames identical")
	}
	if NewRandomStream(l, 43).DataFrame(0).Equal(a.DataFrame(0)) {
		t.Fatal("different seeds produced identical frames")
	}
	// Cached: same pointer for repeated access.
	if a.DataFrame(3) != a.DataFrame(3) {
		t.Fatal("random stream not cached")
	}
}

func TestRandomStreamParity(t *testing.T) {
	l := smallLayout()
	s := NewRandomStream(l, 7)
	df := s.DataFrame(0)
	for gy := 0; gy < l.GOBsY(); gy++ {
		for gx := 0; gx < l.GOBsX(); gx++ {
			if !df.ParityOK(gx, gy) {
				t.Fatalf("random frame GOB (%d,%d) fails parity", gx, gy)
			}
		}
	}
}

func TestFixedStreamCycles(t *testing.T) {
	l := smallLayout()
	a := NewDataFrame(l)
	b := NewDataFrame(l)
	b.SetBit(0, 0, true)
	fs := &FixedStream{Frames: []*DataFrame{a, b}}
	if fs.DataFrame(0) != a || fs.DataFrame(1) != b || fs.DataFrame(2) != a {
		t.Fatal("FixedStream does not cycle")
	}
	if fs.DataFrame(-1) != b {
		t.Fatal("FixedStream negative index should wrap")
	}
}

func TestFixedStreamEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty FixedStream did not panic")
		}
	}()
	(&FixedStream{}).DataFrame(0)
}

func TestBitsStreamPacksAndPads(t *testing.T) {
	l := smallLayout()
	per := l.DataBitsPerFrame() // 18
	bits := make([]bool, per+5)
	for i := range bits {
		bits[i] = i%2 == 0
	}
	bs := &BitsStream{Layout: l, Bits: bits}
	if bs.NumFrames() != 2 {
		t.Fatalf("NumFrames = %d, want 2", bs.NumFrames())
	}
	f0 := bs.DataFrame(0).DataBits()
	for i := 0; i < per; i++ {
		if f0[i] != bits[i] {
			t.Fatalf("frame 0 bit %d mismatch", i)
		}
	}
	f1 := bs.DataFrame(1).DataBits()
	for i := 0; i < 5; i++ {
		if f1[i] != bits[per+i] {
			t.Fatalf("frame 1 bit %d mismatch", i)
		}
	}
	for i := 5; i < per; i++ {
		if f1[i] {
			t.Fatalf("padding bit %d not zero", i)
		}
	}
	// Beyond the payload: all-zero frames.
	f5 := bs.DataFrame(5).DataBits()
	for i, b := range f5 {
		if b {
			t.Fatalf("post-payload frame has bit %d set", i)
		}
	}
	if (&BitsStream{Layout: l}).NumFrames() != 0 {
		t.Fatal("empty BitsStream should have 0 frames")
	}
}
