package core

import (
	"fmt"
	"math"
	"sort"

	"inframe/internal/frame"
)

// StreamingReceiver is the online counterpart of Receiver.DecodeCaptures:
// captures are pushed as they arrive and data frames are emitted as soon as
// their steady window has passed, with the per-Block level calibration
// computed causally over a trailing window of frames.
//
// Besides enabling live operation, the sliding window lets the calibration
// track content drift: a Block whose texture changes (a moving edge passes
// through) poisons only the frames inside the window, not the whole run.
type StreamingReceiver struct {
	rcv    *Receiver
	window int

	// per pending/recent data frame: aggregated energies and quality
	agg     map[int]*streamAgg
	emitted int // next data frame index to emit
}

type streamAgg struct {
	sum  []float64
	qual []float64
	// n counts contributing captures per Block; an integer so the
	// no-contribution test stays exact (no float equality).
	n        []int
	captures int
}

// NewStreamingReceiver wraps a receiver configuration with a trailing
// calibration window of the given length (data frames). Windows shorter
// than ~12 frames starve the per-Block level estimates.
func NewStreamingReceiver(cfg ReceiverConfig, window int) (*StreamingReceiver, error) {
	if window < 4 {
		return nil, fmt.Errorf("core: calibration window %d too short", window)
	}
	rcv, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	return &StreamingReceiver{rcv: rcv, window: window, agg: make(map[int]*streamAgg)}, nil
}

// Receiver exposes the wrapped physical-layer receiver.
func (s *StreamingReceiver) Receiver() *Receiver { return s.rcv }

// Push ingests one capture taken at time t (exposure start) and returns any
// data frames that became decodable. Frames are emitted in order; a frame
// no capture observed is emitted with zero captures.
func (s *StreamingReceiver) Push(capture *frame.Frame, t, exposure float64) []*FrameDecode {
	period := s.rcv.DataFramePeriod()
	mid := t + exposure/2
	d := int(mid / period)
	if d >= 0 {
		t0, t1 := s.rcv.steadyWindow(d, exposure)
		if mid >= t0 && mid <= t1 {
			scores, quality := s.rcv.MeasureCaptureAt(capture, t)
			a := s.agg[d]
			if a == nil {
				n := s.rcv.cfg.Layout.NumBlocks()
				a = &streamAgg{sum: make([]float64, n), qual: make([]float64, n), n: make([]int, n)}
				s.agg[d] = a
			}
			for j, sc := range scores {
				if math.IsNaN(sc) {
					continue
				}
				a.sum[j] += sc
				a.qual[j] += quality[j]
				a.n[j]++
			}
			a.captures++
		}
	}
	// Emit every frame whose steady window has fully passed.
	var out []*FrameDecode
	for float64(s.emitted)*period+period/2 < t {
		//lint:ignore preallocate the emit window yields 0–1 frames per push; a hint would overshoot
		out = append(out, s.finalize(s.emitted))
		s.emitted++
	}
	return out
}

// finalize decodes data frame d against the trailing-window calibration and
// drops aggregates that fell out of every future window.
func (s *StreamingReceiver) finalize(d int) *FrameDecode {
	a := s.agg[d]
	if a == nil || a.captures == 0 {
		return s.rcv.emptyDecode(d)
	}
	l := s.rcv.cfg.Layout
	nBlocks := l.NumBlocks()
	scores := make([]float64, nBlocks)
	quality := make([]float64, nBlocks)
	for j := 0; j < nBlocks; j++ {
		if a.n[j] == 0 {
			scores[j] = math.NaN()
			continue
		}
		scores[j] = a.sum[j] / float64(a.n[j])
		quality[j] = a.qual[j] / float64(a.n[j])
	}

	// Trailing-window per-Block levels.
	lo := make([]float64, nBlocks)
	hi := make([]float64, nBlocks)
	series := make([]float64, 0, s.window)
	for j := 0; j < nBlocks; j++ {
		series = series[:0]
		for w := d; w > d-s.window && w >= 0; w-- {
			if wa := s.agg[w]; wa != nil && wa.n[j] > 0 {
				series = append(series, wa.sum[j]/float64(wa.n[j]))
			}
		}
		if len(series) == 0 {
			lo[j] = math.Inf(1)
			hi[j] = math.Inf(-1)
			continue
		}
		sort.Float64s(series)
		lo[j] = series[int(0.1*float64(len(series)-1))]
		hi[j] = series[int(math.Ceil(0.9*float64(len(series)-1)))]
	}

	fd := &FrameDecode{
		Index:       d,
		Captures:    a.captures,
		Bits:        NewDataFrame(l),
		Decided:     make([]bool, nBlocks),
		BlockCauses: make([]ErasureCause, nBlocks),
	}
	for j, sc := range scores {
		if math.IsNaN(sc) || math.IsInf(lo[j], 1) {
			fd.BlockCauses[j] = CauseNoSignal
			continue
		}
		gap := hi[j] - lo[j]
		if gap < s.rcv.cfg.MinGap {
			fd.BlockCauses[j] = CauseNoSwing
			continue
		}
		thr := (lo[j] + hi[j]) / 2
		band := s.rcv.cfg.AdaptiveBand * gap
		if band < s.rcv.cfg.MinConfidence {
			band = s.rcv.cfg.MinConfidence
		}
		if quality[j] > 0 && quality[j] < 1 {
			band /= math.Sqrt(quality[j])
		}
		fd.Bits.Bits[j] = sc > thr
		fd.Decided[j] = math.Abs(sc-thr) >= band
		if !fd.Decided[j] {
			fd.BlockCauses[j] = CauseLowConfidence
		}
	}
	buildGOBs(fd, l)
	// Garbage-collect aggregates older than any future window.
	delete(s.agg, d-s.window)
	return fd
}
