package core

import "testing"

func TestPaperLayoutMatchesPaper(t *testing.T) {
	l := PaperLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// §4: 30*50 Blocks, 15*25 GOBs, on 1920×1080 with p=4.
	if l.BlocksX != 50 || l.BlocksY != 30 {
		t.Fatalf("blocks %dx%d, want 50x30", l.BlocksX, l.BlocksY)
	}
	if l.GOBsX() != 25 || l.GOBsY() != 15 {
		t.Fatalf("GOBs %dx%d, want 25x15", l.GOBsX(), l.GOBsY())
	}
	if l.NumGOBs() != 375 {
		t.Fatalf("NumGOBs = %d, want 375", l.NumGOBs())
	}
	// A frame carries up to w/s/2 × h/s/2 × 3 = 1125 data bits.
	if l.DataBitsPerFrame() != 1125 {
		t.Fatalf("DataBitsPerFrame = %d, want 1125", l.DataBitsPerFrame())
	}
	if l.BlockPx() != 36 {
		t.Fatalf("BlockPx = %d, want 36", l.BlockPx())
	}
	if l.MarginX() != 60 || l.MarginY() != 0 {
		t.Fatalf("margins %d,%d, want 60,0", l.MarginX(), l.MarginY())
	}
}

func TestScaledPaperLayout(t *testing.T) {
	l, err := ScaledPaperLayout(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.FrameW != 960 || l.FrameH != 540 || l.PixelSize != 2 {
		t.Fatalf("scaled layout %dx%d p=%d", l.FrameW, l.FrameH, l.PixelSize)
	}
	// Rate accounting unchanged by scaling.
	if l.DataBitsPerFrame() != 1125 {
		t.Fatalf("scaled DataBitsPerFrame = %d, want 1125", l.DataBitsPerFrame())
	}
	if _, err := ScaledPaperLayout(3); err == nil {
		t.Fatal("divisor 3 should be rejected (does not divide p=4 evenly)")
	}
	if _, err := ScaledPaperLayout(0); err == nil {
		t.Fatal("divisor 0 should be rejected")
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	base := PaperLayout()
	mods := []func(*Layout){
		func(l *Layout) { l.FrameW = 0 },
		func(l *Layout) { l.PixelSize = 0 },
		func(l *Layout) { l.BlockSize = -1 },
		func(l *Layout) { l.GOBSize = 0 },
		func(l *Layout) { l.BlocksX = 0 },
		func(l *Layout) { l.BlocksX = 51 },  // not divisible by GOBSize
		func(l *Layout) { l.BlocksX = 100 }, // exceeds panel
	}
	for i, m := range mods {
		l := base
		m(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("modification %d validated", i)
		}
	}
}

func TestBlockRect(t *testing.T) {
	l := PaperLayout()
	x0, y0, w, h := l.BlockRect(0, 0)
	if x0 != 60 || y0 != 0 || w != 36 || h != 36 {
		t.Fatalf("BlockRect(0,0) = %d,%d,%d,%d", x0, y0, w, h)
	}
	x0, y0, _, _ = l.BlockRect(49, 29)
	if x0 != 60+49*36 || y0 != 29*36 {
		t.Fatalf("BlockRect(49,29) = %d,%d", x0, y0)
	}
	if x0+36 > l.FrameW || y0+36 > l.FrameH {
		t.Fatal("last block exceeds panel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range BlockRect did not panic")
		}
	}()
	l.BlockRect(50, 0)
}

func TestGOBBlocks(t *testing.T) {
	l := PaperLayout()
	blocks := l.GOBBlocks(0, 0)
	want := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if len(blocks) != 4 {
		t.Fatalf("GOB has %d blocks", len(blocks))
	}
	for i, w := range want {
		if blocks[i] != w {
			t.Fatalf("block %d = %v, want %v", i, blocks[i], w)
		}
	}
	blocks = l.GOBBlocks(24, 14)
	if blocks[3] != [2]int{49, 29} {
		t.Fatalf("last GOB last block = %v", blocks[3])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range GOBBlocks did not panic")
		}
	}()
	l.GOBBlocks(25, 0)
}

func TestChessOn(t *testing.T) {
	if ChessOn(0, 0) || !ChessOn(0, 1) || !ChessOn(1, 0) || ChessOn(1, 1) {
		t.Fatal("chessboard parity wrong")
	}
	// Exactly half the Pixels of any 2×2 tile are on.
	n := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if ChessOn(i, j) {
				n++
			}
		}
	}
	if n != 2 {
		t.Fatalf("%d of 4 pixels on, want 2", n)
	}
}
