package core

import "math"

// ErasureCause classifies why a GOB (or Block) failed to deliver data. The
// values are ordered by severity — a GOB whose Blocks failed for several
// reasons reports the worst one — and the ordering is part of the decode
// report contract: higher means "less signal reached the decision stage".
type ErasureCause int8

const (
	// CauseNone: the GOB decoded and passed parity.
	CauseNone ErasureCause = iota
	// CauseParity: every Block decoded confidently but the XOR parity
	// failed — a confident wrong bit somewhere in the GOB.
	CauseParity
	// CauseLowConfidence: at least one Block's score fell inside the
	// hysteresis band around its threshold.
	CauseLowConfidence
	// CauseNoSwing: at least one Block never showed a usable bit-0/bit-1
	// level separation across the run (saturated or occluded area,
	// constant payload, crushed amplitude).
	CauseNoSwing
	// CauseNoSignal: at least one Block produced no usable measurement at
	// all (outside the camera's view, or every sensor row dropped by the
	// shutter model).
	CauseNoSignal
	// CauseNoCapture: the whole data frame was observed by no capture —
	// a timing gap in the capture sequence.
	CauseNoCapture

	// NumErasureCauses is the number of distinct causes, for fixed-size
	// tallies.
	NumErasureCauses = int(CauseNoCapture) + 1
)

// String implements fmt.Stringer.
func (c ErasureCause) String() string {
	switch c {
	case CauseNone:
		return "ok"
	case CauseParity:
		return "parity"
	case CauseLowConfidence:
		return "low-confidence"
	case CauseNoSwing:
		return "no-swing"
	case CauseNoSignal:
		return "no-signal"
	case CauseNoCapture:
		return "no-capture"
	default:
		return "unknown"
	}
}

// CaptureQuality is one entry of the decode report's quality timeline.
type CaptureQuality struct {
	// Index is the capture's position in the input sequence.
	Index int
	// Time is the capture's exposure start (as given to the decoder).
	Time float64
	// Quality is the link-quality score in [0, 1]: the product of block
	// coverage (finite measurements / visible Blocks), mean shutter
	// quality and the unclipped-pixel fraction. 0 for unscored captures.
	Quality float64
	// Scored: the capture fell in some data frame's steady window and was
	// measured.
	Scored bool
	// Used: the capture contributed to at least one decoded frame.
	Used bool
	// Excluded: the capture was scored but gated out by
	// ReceiverConfig.MinCaptureQuality.
	Excluded bool
}

// Registration describes the geometric decode path of a run — the pose and
// rectification diagnostics of the projective receiver. All fields derive
// deterministically from the receiver configuration, so reports compare
// equal across worker counts.
type Registration struct {
	// Projective: the decode rectified every capture through a homography.
	// False means the rigid axis-aligned path ran (including the frontal
	// fast path of an exactly axis-aligned pose).
	Projective bool
	// Pose is the display→capture homography the decode used (row-major),
	// or the zero matrix when no pose was configured.
	Pose [9]float64
	// MaxCornerOffsetPx is the largest displacement, in capture pixels,
	// between the pose's mapping of the layout's grid corners and the
	// effective axis-aligned calibration's — how far from frontal the
	// registered view sits. 0 when no pose was configured.
	MaxCornerOffsetPx float64
}

// DecodeReport is the graceful-degradation companion of a decoded run: which
// data frames arrived, why GOBs were erased, and how link quality evolved
// over the capture sequence.
type DecodeReport struct {
	// Frames are the decoded data frames, in order.
	Frames []*FrameDecode
	// Quality is the per-capture quality timeline, in capture order.
	Quality []CaptureQuality
	// Registration records the geometric decode path (projective
	// rectification vs rigid mapping) and its pose diagnostics.
	Registration Registration
	// GapFrames counts data frames observed by no (surviving) capture.
	GapFrames int
	// Resyncs counts recoveries: transitions from a gap frame back to a
	// frame with captures.
	Resyncs int
	// ExcludedCaptures counts captures gated out by MinCaptureQuality.
	ExcludedCaptures int
}

// CauseCounts tallies GOB outcomes across all frames by erasure cause;
// index with ErasureCause. CauseNone counts delivered GOBs.
func (r *DecodeReport) CauseCounts() [NumErasureCauses]int {
	var counts [NumErasureCauses]int
	for _, fd := range r.Frames {
		for _, g := range fd.GOBs {
			counts[g.Cause]++
		}
	}
	return counts
}

// GOBAvailability returns the per-GOB availability ratio across all frames,
// indexed gy*GOBsX+gx — the spatial availability map of the run. Frames
// with no GOBs are skipped; an empty report returns nil.
func (r *DecodeReport) GOBAvailability() []float64 {
	var out []float64
	n := 0
	for _, fd := range r.Frames {
		if len(fd.GOBs) == 0 {
			continue
		}
		if out == nil {
			out = make([]float64, len(fd.GOBs))
		}
		for i, g := range fd.GOBs {
			if g.Available {
				out[i]++
			}
		}
		n++
	}
	if out == nil {
		return nil
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// MeanQuality returns the mean link quality over scored captures (0 when
// none were scored).
func (r *DecodeReport) MeanQuality() float64 {
	var sum float64
	n := 0
	for _, q := range r.Quality {
		if q.Scored {
			sum += q.Quality
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinQuality returns the lowest link quality over scored captures (+Inf
// when none were scored).
func (r *DecodeReport) MinQuality() float64 {
	min := math.Inf(1)
	for _, q := range r.Quality {
		if q.Scored && q.Quality < min {
			min = q.Quality
		}
	}
	return min
}
