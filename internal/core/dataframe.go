package core

import (
	"fmt"
	"math/rand"

	"inframe/internal/code/parity"
)

// DataFrame holds one bit per Block, row-major (by·BlocksX + bx). Parity
// Blocks are stored explicitly; Encode-side helpers fill them.
type DataFrame struct {
	Layout Layout
	Bits   []bool
}

// NewDataFrame returns an all-zero data frame for the layout.
func NewDataFrame(l Layout) *DataFrame {
	return &DataFrame{Layout: l, Bits: make([]bool, l.NumBlocks())}
}

// Bit returns the bit of Block (bx, by).
func (df *DataFrame) Bit(bx, by int) bool { return df.Bits[by*df.Layout.BlocksX+bx] }

// SetBit assigns the bit of Block (bx, by).
func (df *DataFrame) SetBit(bx, by int, v bool) { df.Bits[by*df.Layout.BlocksX+bx] = v }

// Clone returns a deep copy.
func (df *DataFrame) Clone() *DataFrame {
	out := NewDataFrame(df.Layout)
	copy(out.Bits, df.Bits)
	return out
}

// Equal reports whether two data frames carry identical bits.
func (df *DataFrame) Equal(other *DataFrame) bool {
	if df.Layout != other.Layout || len(df.Bits) != len(other.Bits) {
		return false
	}
	for i, b := range df.Bits {
		if other.Bits[i] != b {
			return false
		}
	}
	return true
}

// FromDataBits builds a data frame from payload bits, filling each GOB with
// m²−1 data bits and one XOR parity bit (the paper's 2×2 scheme, where the
// fourth Block is the parity of the other three). GOBs are filled row-major;
// bits must supply exactly DataBitsPerFrame() values.
func FromDataBits(l Layout, bits []bool) (*DataFrame, error) {
	if len(bits) != l.DataBitsPerFrame() {
		return nil, fmt.Errorf("core: got %d data bits, layout carries %d", len(bits), l.DataBitsPerFrame())
	}
	df := NewDataFrame(l)
	idx := 0
	per := l.BlocksPerGOB() - 1
	gobsX, gobsY := l.GOBsX(), l.GOBsY()
	for gy := 0; gy < gobsY; gy++ {
		for gx := 0; gx < gobsX; gx++ {
			group := parity.Encode(bits[idx : idx+per])
			idx += per
			for i, blk := range l.GOBBlocks(gx, gy) {
				df.SetBit(blk[0], blk[1], group[i])
			}
		}
	}
	return df, nil
}

// DataBits extracts the payload bits (excluding parity Blocks) in the same
// order FromDataBits consumes them.
func (df *DataFrame) DataBits() []bool {
	l := df.Layout
	out := make([]bool, 0, l.DataBitsPerFrame())
	per := l.BlocksPerGOB() - 1
	gobsX, gobsY := l.GOBsX(), l.GOBsY()
	for gy := 0; gy < gobsY; gy++ {
		for gx := 0; gx < gobsX; gx++ {
			blocks := l.GOBBlocks(gx, gy)
			for i := 0; i < per; i++ {
				out = append(out, df.Bit(blocks[i][0], blocks[i][1]))
			}
		}
	}
	return out
}

// ParityOK reports whether GOB (gx, gy) satisfies its XOR parity.
func (df *DataFrame) ParityOK(gx, gy int) bool {
	blocks := df.Layout.GOBBlocks(gx, gy)
	group := make([]bool, len(blocks))
	for i, blk := range blocks {
		group[i] = df.Bit(blk[0], blk[1])
	}
	return parity.Check(group)
}

// Stream supplies the data frame sequence to the multiplexer.
type Stream interface {
	// DataFrame returns the i-th data frame (i ≥ 0). Frames may repeat.
	DataFrame(i int) *DataFrame
}

// RandomStream generates pseudo-random payload frames from a fixed seed —
// the paper's "pseudo-random data generator with a pre-set seed".
type RandomStream struct {
	Layout Layout
	Seed   int64
	cache  map[int]*DataFrame
}

// NewRandomStream returns a deterministic random payload stream.
func NewRandomStream(l Layout, seed int64) *RandomStream {
	return &RandomStream{Layout: l, Seed: seed, cache: make(map[int]*DataFrame)}
}

// DataFrame implements Stream. Frames are cached so the transmitter and an
// oracle receiver observe identical payloads.
func (rs *RandomStream) DataFrame(i int) *DataFrame {
	if df, ok := rs.cache[i]; ok {
		return df
	}
	rng := rand.New(rand.NewSource(rs.Seed + int64(i)*7919))
	bits := make([]bool, rs.Layout.DataBitsPerFrame())
	for j := range bits {
		bits[j] = rng.Intn(2) == 1
	}
	df, err := FromDataBits(rs.Layout, bits)
	if err != nil {
		panic(err) // impossible: bits sized from the same layout
	}
	rs.cache[i] = df
	return df
}

// FixedStream repeats a fixed cycle of data frames.
type FixedStream struct{ Frames []*DataFrame }

// DataFrame implements Stream, cycling through the fixed frames.
func (fs *FixedStream) DataFrame(i int) *DataFrame {
	if len(fs.Frames) == 0 {
		panic("core: FixedStream has no frames")
	}
	n := len(fs.Frames)
	return fs.Frames[((i%n)+n)%n]
}

// BitsStream packs an arbitrary bit sequence into successive data frames,
// zero-padding the tail. It is the bridge from the link layer (§3.3's
// "further framing optimizations") to the physical data frames.
type BitsStream struct {
	Layout Layout
	Bits   []bool
}

// NumFrames returns how many data frames the bit sequence occupies.
func (bs *BitsStream) NumFrames() int {
	per := bs.Layout.DataBitsPerFrame()
	if len(bs.Bits) == 0 {
		return 0
	}
	return (len(bs.Bits) + per - 1) / per
}

// DataFrame implements Stream: frame i carries bits [i·per, (i+1)·per),
// zero-padded; frames beyond the payload are all zero.
func (bs *BitsStream) DataFrame(i int) *DataFrame {
	per := bs.Layout.DataBitsPerFrame()
	chunk := make([]bool, per)
	start := i * per
	for j := 0; j < per; j++ {
		if idx := start + j; idx >= 0 && idx < len(bs.Bits) {
			chunk[j] = bs.Bits[idx]
		}
	}
	df, err := FromDataBits(bs.Layout, chunk)
	if err != nil {
		panic(err) // impossible: chunk sized from the same layout
	}
	return df
}
