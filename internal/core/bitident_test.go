package core

import (
	"math"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

// refRender renders display frame k the pre-refactor way — clone the video
// frame, add the signed clipped envelope at every chessboard-on pixel, clamp
// — with the same float expressions the fused path uses, so any divergence
// is the fusion's fault, not the reference's.
func refRender(p Params, v *frame.Frame, data Stream, k int) *frame.Frame {
	l := p.Layout
	out := v.Clone()
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	ps := l.PixelSize
	cur := data.DataFrame(k / p.Tau)
	next := data.DataFrame(k/p.Tau + 1)
	for by := 0; by < l.BlocksY; by++ {
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			head := float32(255)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if !ChessOn(x/ps, pj) {
						continue
					}
					pv := v.Pix[rowBase+x]
					if hi := 255 - pv; hi < head {
						head = hi
					}
					if pv < head {
						head = pv
					}
				}
			}
			if head < 0 {
				head = 0
			}
			a := envelopeBetween(p, cur, next, bx, by, k)
			if hd := float64(head); a > hd {
				a = hd
			}
			if a < 0 {
				a = 0
			}
			want := float32(a)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if ChessOn(x/ps, pj) {
						i := rowBase + x
						out.Pix[i] = v.Pix[i] + sign*want
					}
				}
			}
		}
	}
	for i, pv := range out.Pix {
		if pv < 0 {
			out.Pix[i] = 0
		} else if pv > 255 {
			out.Pix[i] = 255
		}
	}
	return out
}

// adversarialVideo builds a short clip of the frames the fused clamp must
// not mishandle: all-black, all-white, values one delta away from both clamp
// edges, and NaN-free rationals that exercise float rounding.
func adversarialVideo(l Layout, delta float32) *video.Clip {
	mk := func(fill func(i int) float32) *frame.Frame {
		f := frame.New(l.FrameW, l.FrameH)
		for i := range f.Pix {
			f.Pix[i] = fill(i)
		}
		return f
	}
	edge := []float32{0, 255, delta, 255 - delta, delta - 0.25, 255.5 - delta}
	rational := []float32{1.0 / 3, 254 + 2.0/3, 100.0 / 7, 200.0 / 3}
	return video.NewClip([]*frame.Frame{
		mk(func(int) float32 { return 0 }),
		mk(func(int) float32 { return 255 }),
		mk(func(i int) float32 { return edge[i%len(edge)] }),
		mk(func(i int) float32 { return rational[i%len(rational)] }),
	})
}

// TestFusedRenderMatchesReference: the incremental pair-aware renderer must
// be bit-identical to the direct clone+add+clamp formulation over the
// adversarial clip at every worker count, including across video-frame
// switches that invalidate the caches.
func TestFusedRenderMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := smallParams()
		p.Workers = workers
		p.VideoFrameRatio = 2
		src := adversarialVideo(p.Layout, float32(p.Delta))
		data := NewRandomStream(p.Layout, 7)
		m := newMux(t, p, src, data)
		for k := 0; k < 3*p.Tau; k++ {
			got := m.Frame(k)
			want := refRender(p, src.Frame(k/p.VideoFrameRatio), data, k)
			for i := range want.Pix {
				if math.Float32bits(got.Pix[i]) != math.Float32bits(want.Pix[i]) {
					t.Fatalf("workers=%d frame %d pixel %d: fused %v, reference %v",
						workers, k, i, got.Pix[i], want.Pix[i])
				}
			}
			m.Recycle(got)
		}
	}
}

// TestIncrementalRenderMatchesFresh: rendering a ticker sequence through one
// long-lived multiplexer (dirty-region skips, delta cache hits) must equal
// rendering each frame through a fresh multiplexer that refreshes everything
// — and the long-lived one must actually have skipped work.
func TestIncrementalRenderMatchesFresh(t *testing.T) {
	p := smallParams()
	p.Workers = 2
	l := p.Layout
	src := video.NewTicker(l.FrameW, l.FrameH, 5, 3)
	data := NewRandomStream(l, 11)
	inc := newMux(t, p, src, data)
	n := 4 * p.Tau
	for k := 0; k < n; k++ {
		got := inc.Frame(k)
		fresh := newMux(t, p, video.NewTicker(l.FrameW, l.FrameH, 5, 3), NewRandomStream(l, 11))
		want := fresh.Frame(k)
		if !got.Equal(want) {
			t.Fatalf("frame %d: incremental render diverges from fresh render", k)
		}
		inc.Recycle(got)
	}
	st := inc.RenderStats()
	if st.BlocksSkipped == 0 {
		t.Error("delta cache never skipped a Block over a ticker sequence")
	}
	if st.HeadroomSkipped == 0 {
		t.Error("dirty-region hint never skipped a headroom scan")
	}
	if st.Blocks != int64(n*l.NumBlocks()) {
		t.Errorf("stats saw %d Block evaluations, want %d", st.Blocks, n*l.NumBlocks())
	}
	if rate := st.SkipRate(); rate <= 0 || rate >= 1 {
		t.Errorf("skip rate %v outside (0, 1)", rate)
	}
}

// TestDeltaCacheFrozenPool: once the render loop is warm, the delta cache
// must add zero steady-state pool misses — the only live buffers are the
// video buffer, the delta plane and the in-flight output frame.
func TestDeltaCacheFrozenPool(t *testing.T) {
	pool := frame.NewPool()
	p := smallParams()
	p.Pool = pool
	l := p.Layout
	m := newMux(t, p, video.NewTicker(l.FrameW, l.FrameH, 9, 2), NewRandomStream(l, 3))
	for k := 0; k < 2*p.Tau; k++ {
		m.Recycle(m.Frame(k))
	}
	warm := pool.Stats().Misses
	for k := 2 * p.Tau; k < 8*p.Tau; k++ {
		m.Recycle(m.Frame(k))
	}
	if got := pool.Stats().Misses; got != warm {
		t.Fatalf("steady-state render missed the pool %d more times after warmup", got-warm)
	}
}

// TestRGBFusedMatchesCloneAdd: the color multiplexer's fused render must be
// bit-identical to the pre-refactor DeltaFrame + Clone + AddLumaDelta path,
// and LumaFrame to that frame's Luma().
func TestRGBFusedMatchesCloneAdd(t *testing.T) {
	p := smallParams()
	p.Workers = 2
	l := p.Layout
	data := NewRandomStream(l, 5)
	m, err := NewRGBMultiplexer(p, rgbTestSource(l), data)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2*p.Tau; k++ {
		got, err := m.FrameRGB(k)
		if err != nil {
			t.Fatal(err)
		}
		delta := m.DeltaFrame(k)
		want := m.vframe.Clone()
		if err := want.AddLumaDelta(delta); err != nil {
			t.Fatal(err)
		}
		m.Recycle(delta)
		for i := range want.R {
			if got.R[i] != want.R[i] || got.G[i] != want.G[i] || got.B[i] != want.B[i] {
				t.Fatalf("frame %d pixel %d: fused (%v,%v,%v), reference (%v,%v,%v)", k, i,
					got.R[i], got.G[i], got.B[i], want.R[i], want.G[i], want.B[i])
			}
		}
		luma, err := m.LumaFrame(k)
		if err != nil {
			t.Fatal(err)
		}
		if !luma.Equal(want.Luma()) {
			t.Fatalf("frame %d: LumaShifted diverges from the two-step luma", k)
		}
	}
	if m.RenderStats().BlocksSkipped == 0 {
		t.Error("RGB delta cache never skipped a Block")
	}
}
