package core

import (
	"math"

	"inframe/internal/frame"
)

// EstimatePhase recovers the data-frame boundary phase from captured frames
// alone, for receivers without genie timing (the paper's controlled setup
// implies known timing; this utility covers free-running operation).
//
// The observable is each capture's high-spatial-frequency energy. With the
// square-root raised-cosine smoothing, a block transitioning between bits
// carries |cos|+|sin| ≥ 1 of the steady chessboard amplitude, so captures
// landing in the transition half of a data period read *hotter* than
// captures in the steady half (≈14% for random data, where half the blocks
// change each frame). Scanning candidate phases and correlating the energy
// series against that hot-transition/cool-steady template peaks at the true
// phase. (A stair envelope produces no contrast — the estimator requires a
// smooth transition shape.)
//
// period is the data frame duration in seconds (τ/refresh). The returned
// phase is in [0, period).
func EstimatePhase(caps []*frame.Frame, times []float64, exposure, period float64, grid int) float64 {
	if len(caps) == 0 || len(caps) != len(times) || grid <= 0 || period <= 0 {
		return 0
	}
	energies := make([]float64, len(caps))
	for i, f := range caps {
		energies[i] = frame.HighFreqEnergy(f, 1)
	}
	bestPhase, bestScore := 0.0, math.Inf(-1)
	for g := 0; g < grid; g++ {
		phase := period * float64(g) / float64(grid)
		var steady, hot float64
		var nSteady, nHot int
		for i, t := range times {
			mid := t + exposure/2 - phase
			//lint:ignore hotalloc phase search runs grid×captures times once per sync, not per pixel
			frac := math.Mod(mid, period)
			if frac < 0 {
				frac += period
			}
			switch {
			case frac >= 0.05*period && frac <= 0.45*period:
				steady += energies[i]
				nSteady++
			case frac >= 0.55*period && frac <= 0.95*period:
				hot += energies[i]
				nHot++
			}
		}
		if nSteady == 0 || nHot == 0 {
			continue
		}
		if score := hot/float64(nHot) - steady/float64(nSteady); score > bestScore {
			bestScore = score
			bestPhase = phase
		}
	}
	return bestPhase
}

// PhaseError returns the circular distance between two phases modulo period.
func PhaseError(a, b, period float64) float64 {
	d := math.Mod(math.Abs(a-b), period)
	if d > period/2 {
		d = period - d
	}
	return d
}
