package core

import (
	"math"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

// idealCaptures renders n display frames and presents each one as a perfect
// capture (display resolution, no camera impairments) taken at its display
// time with a tiny exposure.
func idealCaptures(m *Multiplexer, n int) (caps []*frame.Frame, times []float64, exposure float64) {
	caps = m.Render(n)
	times = make([]float64, n)
	for i := range times {
		times[i] = float64(i) / 120
	}
	return caps, times, 1.0 / 120
}

func smallReceiver(t *testing.T, p Params) *Receiver {
	t.Helper()
	cfg := DefaultReceiverConfig(p, p.Layout.FrameW, p.Layout.FrameH)
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReceiverConfigValidate(t *testing.T) {
	p := smallParams()
	good := DefaultReceiverConfig(p, 48, 32)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ReceiverConfig){
		func(c *ReceiverConfig) { c.CaptureW = 0 },
		func(c *ReceiverConfig) { c.Tau = 5 },
		func(c *ReceiverConfig) { c.RefreshHz = 0 },
		func(c *ReceiverConfig) { c.MinConfidence = -1 },
		func(c *ReceiverConfig) { c.SmoothRadius = 0 },
		func(c *ReceiverConfig) { c.Layout.BlocksX = 0 },
	}
	for i, m := range bad {
		c := DefaultReceiverConfig(p, 48, 32)
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewReceiverDegenerateRect(t *testing.T) {
	p := smallParams()
	cfg := DefaultReceiverConfig(p, 4, 3) // absurdly small capture
	if _, err := NewReceiver(cfg); err == nil {
		t.Fatal("accepted degenerate block rects")
	}
}

func TestMeasureCaptureSeparatesBits(t *testing.T) {
	p := smallParams()
	l := p.Layout
	df := NewDataFrame(l)
	// Half the blocks on, in a fixed pattern.
	for by := 0; by < l.BlocksY; by++ {
		for bx := 0; bx < l.BlocksX; bx++ {
			df.SetBit(bx, by, (bx+by)%2 == 0)
		}
	}
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), &FixedStream{Frames: []*DataFrame{df}})
	r := smallReceiver(t, p)
	energies := r.MeasureCapture(m.Frame(0))
	for by := 0; by < l.BlocksY; by++ {
		for bx := 0; bx < l.BlocksX; bx++ {
			e := energies[by*l.BlocksX+bx]
			if df.Bit(bx, by) && e <= 2 {
				t.Fatalf("bit-1 block (%d,%d) energy %v, want > 2", bx, by, e)
			}
			if !df.Bit(bx, by) && e >= 0.5 {
				t.Fatalf("bit-0 block (%d,%d) energy %v, want ~0 on flat gray", bx, by, e)
			}
		}
	}
}

func TestMeasureCaptureSizeMismatchPanics(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	r.MeasureCapture(frame.New(10, 10))
}

func TestDecodeScoresHysteresis(t *testing.T) {
	p := smallParams()
	cfg := DefaultReceiverConfig(p, p.Layout.FrameW, p.Layout.FrameH)
	cfg.Adaptive = false // fixed-threshold semantics under test
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Layout
	scores := make([]float64, l.NumBlocks())
	for i := range scores {
		scores[i] = 2 // confident ones
	}
	scores[0] = 0.1 // inside the ±0.35 band → undecided
	fd := r.DecodeScores(0, scores, nil, 1)
	if fd.Decided[0] {
		t.Fatal("score inside hysteresis band decided")
	}
	if !fd.Decided[1] {
		t.Fatal("confident score undecided")
	}
	// GOB containing block 0 unavailable, others available.
	if fd.GOBs[0].Available {
		t.Fatal("GOB with undecided block marked available")
	}
	avail := fd.AvailableGOBs()
	if avail != l.NumGOBs()-1 {
		t.Fatalf("available GOBs = %d, want %d", avail, l.NumGOBs()-1)
	}
}

func TestDecodeScoresParity(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	l := p.Layout
	// Encode a legal data frame, convert to scores, decode: all GOBs
	// available and parity-clean.
	df := NewRandomStream(l, 3).DataFrame(0)
	scores := make([]float64, l.NumBlocks())
	for i, b := range df.Bits {
		if b {
			scores[i] = 2
		} else {
			scores[i] = -2
		}
	}
	fd := r.DecodeScores(0, scores, nil, 1)
	if fd.AvailableGOBs() != l.NumGOBs() {
		t.Fatalf("available = %d, want all %d", fd.AvailableGOBs(), l.NumGOBs())
	}
	if fd.ErroneousGOBs() != 0 {
		t.Fatalf("erroneous = %d, want 0", fd.ErroneousGOBs())
	}
	if !fd.Bits.Equal(df) {
		t.Fatal("decoded bits differ from encoded")
	}
	// Flip one block's score: its GOB becomes erroneous.
	scores[0] = -scores[0]
	fd2 := r.DecodeScores(0, scores, nil, 1)
	if fd2.ErroneousGOBs() != 1 {
		t.Fatalf("erroneous after flip = %d, want 1", fd2.ErroneousGOBs())
	}
}

// TestEndToEndIdealChannel: multiplex random data over gray video, decode
// from perfect captures — every data frame must come back exactly.
func TestEndToEndIdealChannel(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	// Enough frames that every Block carries both bit values several
	// times, so the per-Block level percentiles are learnable.
	nData := 24
	caps, times, exp := idealCaptures(m, nData*p.Tau)
	r := smallReceiver(t, p)
	decoded := r.DecodeCaptures(caps, times, exp, nData)
	if len(decoded) != nData {
		t.Fatalf("decoded %d frames", len(decoded))
	}
	for d, fd := range decoded {
		if fd.Captures == 0 {
			t.Fatalf("frame %d saw no captures", d)
		}
		if fd.AvailableGOBs() != l.NumGOBs() {
			t.Fatalf("frame %d: %d/%d GOBs available", d, fd.AvailableGOBs(), l.NumGOBs())
		}
		if fd.ErroneousGOBs() != 0 {
			t.Fatalf("frame %d: %d erroneous GOBs", d, fd.ErroneousGOBs())
		}
		if !fd.Bits.Equal(stream.DataFrame(d)) {
			t.Fatalf("frame %d bits mismatch", d)
		}
	}
}

// TestEndToEndTexturedVideo: on strongly textured content the energy
// detector still recovers most blocks on an ideal channel, because the
// frame-mean normalization removes the common texture level; accuracy is
// allowed to dip but not collapse.
func TestEndToEndTexturedVideo(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	stream := NewRandomStream(l, 13)
	src := video.NewSunRise(l.FrameW, l.FrameH, 5)
	m := newMux(t, p, src, stream)
	nData := 12
	caps, times, exp := idealCaptures(m, nData*p.Tau)
	r := smallReceiver(t, p)
	decoded := r.DecodeCaptures(caps, times, exp, nData)
	correct, decided, total := 0, 0, 0
	for d, fd := range decoded {
		want := stream.DataFrame(d)
		for i := range want.Bits {
			total++
			if !fd.Decided[i] {
				continue
			}
			decided++
			if fd.Bits.Bits[i] == want.Bits[i] {
				correct++
			}
		}
	}
	// The tiny sun-rise is dominated by saturated sun/glare blocks, which
	// rightly come back undecided; of the blocks the receiver does commit
	// to, the vast majority must be correct.
	if frac := float64(decided) / float64(total); frac < 0.4 {
		t.Fatalf("decided fraction %.2f, want >= 0.4", frac)
	}
	// Saturated bit-1 blocks whose chessboard the clipping adjustment
	// crushed decode as zeros — the same effect behind the paper's ~21%
	// video GOB error rate — so accuracy well above chance, not
	// perfection, is the right bar here.
	acc := float64(correct) / float64(decided)
	if acc < 0.70 {
		t.Fatalf("textured-video decided-bit accuracy %.2f, want >= 0.70", acc)
	}
}

func TestDecodeCapturesNoCoverage(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	// One capture far outside any steady window of frames 0..2.
	f := frame.NewFilled(p.Layout.FrameW, p.Layout.FrameH, 127)
	decoded := r.DecodeCaptures([]*frame.Frame{f}, []float64{100}, 0.001, 2)
	for d, fd := range decoded {
		if fd.Captures != 0 {
			t.Fatalf("frame %d claims %d captures", d, fd.Captures)
		}
		if fd.AvailableGOBs() != 0 {
			t.Fatalf("frame %d has available GOBs without captures", d)
		}
	}
}

func TestDecodeCapturesLengthMismatchPanics(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	r.DecodeCaptures(nil, []float64{1}, 0.01, 1)
}

func TestSteadyWindowLayout(t *testing.T) {
	p := smallParams()
	r := smallReceiver(t, p)
	period := r.DataFramePeriod()
	if math.Abs(period-float64(p.Tau)/120) > 1e-12 {
		t.Fatalf("period = %v", period)
	}
	exp := 0.004
	t0, t1 := r.steadyWindow(3, exp)
	if t0 < 3*period+exp/2-1e-12 || t1 > 3.5*period-exp/2+1e-12 {
		t.Fatalf("steady window [%v,%v] outside expectations", t0, t1)
	}
	// Over-long exposure degrades to a point at the quarter period.
	p0, p1 := r.steadyWindow(0, period)
	if p0 != p1 || p0 != period/4 {
		t.Fatalf("degenerate window [%v,%v], want point at %v", p0, p1, period/4)
	}
}

func TestMatchedDetectorOutperformsEnergyOnTexture(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	stream := NewRandomStream(l, 17)
	src := video.NewNoise(l.FrameW, l.FrameH, 60, 200, 9)
	frozen := video.Record(src, 4)
	m := newMux(t, p, frozen, stream)
	nData := 12
	caps, times, exp := idealCaptures(m, nData*p.Tau)

	accuracy := func(det Detector) float64 {
		cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
		cfg.Detector = det
		r, err := NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		decoded := r.DecodeCaptures(caps, times, exp, nData)
		correct, total := 0, 0
		for d, fd := range decoded {
			want := stream.DataFrame(d)
			for i := range want.Bits {
				total++
				if fd.Bits.Bits[i] == want.Bits[i] {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	aEnergy := accuracy(DetectorEnergy)
	aMatched := accuracy(DetectorMatched)
	if aMatched < aEnergy {
		t.Fatalf("matched %.3f worse than energy %.3f on noise video", aMatched, aEnergy)
	}
	// i.i.d. full-range *changing* noise is far harsher than any real
	// video (the temporal baseline cannot track it); the matched filter
	// should still beat coin flipping by a wide margin.
	if aMatched < 0.7 {
		t.Fatalf("matched detector accuracy %.3f on noise video, want >= 0.7", aMatched)
	}
}

func TestDetectorString(t *testing.T) {
	if DetectorEnergy.String() != "energy" || DetectorMatched.String() != "matched" {
		t.Fatal("detector names wrong")
	}
	if Detector(7).String() != "Detector(7)" {
		t.Fatal("unknown detector name wrong")
	}
}
