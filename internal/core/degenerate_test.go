package core

import (
	"math"
	"testing"
)

// degenerateReceiver builds an adaptive receiver with the confidence floors
// zeroed, so the only thing standing between an all-equal score distribution
// and a zero-width "confident" threshold is the !(gap > 0) guard under test.
func degenerateReceiver(t *testing.T) *Receiver {
	t.Helper()
	p := DefaultParams(smallLayout())
	cfg := DefaultReceiverConfig(p, 48, 32)
	cfg.MinGap = 0
	cfg.MinConfidence = 0
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCluster2DegenerateInputs(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
	}{
		{"empty", nil},
		{"all-NaN", []float64{math.NaN(), math.NaN()}},
		{"all-Inf", []float64{math.Inf(1), math.Inf(-1)}},
		{"mixed", []float64{math.Inf(1), 1, 1, math.Inf(-1), math.NaN()}},
		{"all-equal", []float64{2, 2, 2, 2}},
	}
	for _, tc := range cases {
		c0, c1 := cluster2(tc.scores)
		if math.IsNaN(c0) || math.IsNaN(c1) || math.IsInf(c0, 0) || math.IsInf(c1, 0) {
			t.Errorf("%s: cluster2 = (%v, %v), want finite", tc.name, c0, c1)
		}
		if c1-c0 > 0 {
			t.Errorf("%s: positive gap %v from degenerate input", tc.name, c1-c0)
		}
	}
}

// TestDecodeScoresDegenerate feeds the adaptive decision stage score
// distributions with no usable swing. Every Block must come back undecided
// and every GOB unavailable — never "confidently" decoded against a
// zero-width or NaN threshold.
func TestDecodeScoresDegenerate(t *testing.T) {
	r := degenerateReceiver(t)
	n := r.Config().Layout.NumBlocks()
	fill := func(v float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	cases := []struct {
		name   string
		scores []float64
	}{
		{"all-equal", fill(1.5)},
		{"all-zero", fill(0)},
		{"all-NaN", fill(math.NaN())},
	}
	for _, tc := range cases {
		fd := r.DecodeScores(0, tc.scores, nil, 1)
		for i, dec := range fd.Decided {
			if dec {
				t.Fatalf("%s: block %d decided", tc.name, i)
			}
		}
		if got := fd.AvailableGOBs(); got != 0 {
			t.Fatalf("%s: %d GOBs available, want 0", tc.name, got)
		}
	}
}

// TestDecodePerBlockDegenerate covers the per-Block calibration path: a run
// whose every frame shows the identical energy in every Block (e.g. black
// video whose δ the clipping adjustment crushed to nothing) has no swing to
// calibrate from, so every frame must decode all-unavailable.
func TestDecodePerBlockDegenerate(t *testing.T) {
	r := degenerateReceiver(t)
	n := r.Config().Layout.NumBlocks()
	row := func(v float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	agg := [][]float64{row(0.7), row(0.7), row(0.7)}
	qual := make([][]float64, len(agg))
	counts := []int{1, 1, 1}
	for _, fd := range r.decodePerBlock(agg, qual, counts) {
		for i, dec := range fd.Decided {
			if dec {
				t.Fatalf("frame %d block %d decided from all-equal series", fd.Index, i)
			}
		}
		if got := fd.AvailableGOBs(); got != 0 {
			t.Fatalf("frame %d: %d GOBs available, want 0", fd.Index, got)
		}
	}
}
