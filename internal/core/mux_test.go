package core

import (
	"math"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
	"inframe/internal/waveform"
)

func smallParams() Params {
	p := DefaultParams(smallLayout())
	p.Tau = 8
	return p
}

func constStream(l Layout, set func(*DataFrame)) Stream {
	df := NewDataFrame(l)
	if set != nil {
		set(df)
	}
	return &FixedStream{Frames: []*DataFrame{df}}
}

func newMux(t *testing.T, p Params, src video.Source, data Stream) *Multiplexer {
	t.Helper()
	m, err := NewMultiplexer(p, src, data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(PaperLayout()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.Delta = 200 },
		func(p *Params) { p.Tau = 7 },
		func(p *Params) { p.Tau = 0 },
		func(p *Params) { p.VideoFrameRatio = 0 },
		func(p *Params) { p.Layout.BlocksX = 0 },
	}
	for i, m := range bad {
		p := DefaultParams(PaperLayout())
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestNewMultiplexerSizeCheck(t *testing.T) {
	p := smallParams()
	if _, err := NewMultiplexer(p, video.Gray(10, 10), constStream(p.Layout, nil)); err == nil {
		t.Fatal("accepted mismatched video size")
	}
}

// TestComplementaryPairsFuseToVideo: the defining InFrame property — for any
// steady data frame, consecutive displayed frames average back to the video.
func TestComplementaryPairsFuseToVideo(t *testing.T) {
	p := smallParams()
	src := video.Gray(p.Layout.FrameW, p.Layout.FrameH)
	ones := constStream(p.Layout, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m := newMux(t, p, src, ones)
	f0 := m.Frame(0)
	f1 := m.Frame(1)
	avg, err := frame.Average(f0, f1)
	if err != nil {
		t.Fatal(err)
	}
	orig := src.Frame(0)
	mae, _ := frame.MAE(avg, orig)
	if mae > 1e-4 {
		t.Fatalf("pair average deviates from video by %v", mae)
	}
	// And the individual frames do carry the pattern.
	d, _ := frame.MAE(f0, orig)
	if d < 5 {
		t.Fatalf("multiplexed frame deviates only %v from video; no data embedded?", d)
	}
}

func TestZeroBitsLeaveVideoUntouched(t *testing.T) {
	p := smallParams()
	src := video.Gray(p.Layout.FrameW, p.Layout.FrameH)
	m := newMux(t, p, src, constStream(p.Layout, nil))
	for k := 0; k < 4; k++ {
		if !m.Frame(k).Equal(src.Frame(0)) {
			t.Fatalf("frame %d altered despite all-zero data", k)
		}
	}
}

func TestChessboardGeometry(t *testing.T) {
	p := smallParams()
	src := video.Gray(p.Layout.FrameW, p.Layout.FrameH)
	ones := constStream(p.Layout, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m := newMux(t, p, src, ones)
	f := m.Frame(0) // even frame: +D
	l := p.Layout
	ps := l.PixelSize
	x0, y0, w, h := l.BlockRect(1, 1)
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			want := float32(180)
			if ChessOn(x/ps, y/ps) {
				want = 180 + float32(p.Delta)
			}
			if got := f.At(x, y); got != want {
				t.Fatalf("pixel (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	// Odd frame: −D on the same pixels.
	f1 := m.Frame(1)
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			want := float32(180)
			if ChessOn(x/ps, y/ps) {
				want = 180 - float32(p.Delta)
			}
			if got := f1.At(x, y); got != want {
				t.Fatalf("odd pixel (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestElementPixelsShareValue(t *testing.T) {
	// All p×p Element pixels of one Pixel carry the same value.
	p := smallParams()
	src := video.Gray(p.Layout.FrameW, p.Layout.FrameH)
	ones := constStream(p.Layout, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m := newMux(t, p, src, ones)
	f := m.Frame(0)
	ps := p.Layout.PixelSize
	x0, y0, w, h := p.Layout.BlockRect(0, 0)
	for py := y0 / ps; py < (y0+h)/ps; py++ {
		for px := x0 / ps; px < (x0+w)/ps; px++ {
			ref := f.At(px*ps, py*ps)
			for dy := 0; dy < ps; dy++ {
				for dx := 0; dx < ps; dx++ {
					if f.At(px*ps+dx, py*ps+dy) != ref {
						t.Fatalf("Pixel (%d,%d) has non-uniform elements", px, py)
					}
				}
			}
		}
	}
}

func TestMarginsUntouched(t *testing.T) {
	l := Layout{FrameW: 64, FrameH: 40, PixelSize: 2, BlockSize: 4, GOBSize: 2, BlocksX: 6, BlocksY: 4}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(l)
	p.Tau = 8
	src := video.Gray(l.FrameW, l.FrameH)
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m := newMux(t, p, src, ones)
	f := m.Frame(0)
	if l.MarginX() == 0 || l.MarginY() == 0 {
		t.Fatal("test layout should have margins")
	}
	for x := 0; x < l.MarginX(); x++ {
		for y := 0; y < l.FrameH; y++ {
			if f.At(x, y) != 180 {
				t.Fatalf("margin pixel (%d,%d) altered", x, y)
			}
		}
	}
}

// TestSmoothingEnvelope: across a 1→0 transition, the block amplitude stays
// steady for the first τ/2 frames of the period, then decays monotonically.
func TestSmoothingEnvelope(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	a := NewDataFrame(l)
	for i := range a.Bits {
		a.Bits[i] = true
	}
	b := NewDataFrame(l) // zeros
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH),
		&FixedStream{Frames: []*DataFrame{a, b}})
	// Find a chessboard-on pixel of block (0,0).
	x0, y0, _, _ := l.BlockRect(0, 0)
	px, py := -1, -1
	for dy := 0; dy < l.BlockPx() && px < 0; dy++ {
		for dx := 0; dx < l.BlockPx(); dx++ {
			if ChessOn((x0+dx)/l.PixelSize, (y0+dy)/l.PixelSize) {
				px, py = x0+dx, y0+dy
				break
			}
		}
	}
	amps := make([]float64, p.Tau)
	for k := 0; k < p.Tau; k++ {
		amps[k] = math.Abs(float64(m.Frame(k).At(px, py)) - 180)
	}
	for k := 0; k < p.Tau/2; k++ {
		if math.Abs(amps[k]-p.Delta) > 1e-4 {
			t.Fatalf("steady frame %d amplitude %v, want %v", k, amps[k], p.Delta)
		}
	}
	for k := p.Tau / 2; k < p.Tau-1; k++ {
		if amps[k+1] > amps[k]+1e-9 {
			t.Fatalf("transition not monotone at %d: %v -> %v", k, amps[k], amps[k+1])
		}
	}
	if amps[p.Tau-1] > 1e-6 {
		t.Fatalf("end-of-transition amplitude %v, want 0", amps[p.Tau-1])
	}
	// Next period (data frame 1, all zeros): untouched video.
	if !m.Frame(p.Tau).Equal(video.Gray(l.FrameW, l.FrameH).Frame(0)) {
		t.Fatal("zero period altered")
	}
}

func TestNoTransitionWhenBitsEqual(t *testing.T) {
	p := smallParams()
	l := p.Layout
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), ones)
	// Every even frame identical across periods.
	if !m.Frame(0).Equal(m.Frame(p.Tau)) {
		t.Fatal("steady bits should repeat identically across periods")
	}
	if !m.Frame(p.Tau - 2).Equal(m.Frame(0)) {
		t.Fatal("no transition should occur when bits are equal")
	}
}

// TestClippingAdjustment: near-white video forces the local amplitude down
// so no pixel exceeds 255, and near-black symmetric.
func TestClippingAdjustment(t *testing.T) {
	p := smallParams()
	l := p.Layout
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	bright := video.NewSolid(l.FrameW, l.FrameH, 250) // headroom 5 < δ=20
	m := newMux(t, p, bright, ones)
	f0, f1 := m.Frame(0), m.Frame(1)
	min0, max0 := f0.MinMax()
	if max0 > 255 || min0 < 0 {
		t.Fatalf("clipped frame out of range [%v,%v]", min0, max0)
	}
	// The pair must still fuse exactly: amplitude reduced, not clipped.
	avg, _ := frame.Average(f0, f1)
	mae, _ := frame.MAE(avg, bright.Frame(0))
	if mae > 1e-4 {
		t.Fatalf("bright pair fuses with error %v", mae)
	}
	// Amplitude is the available headroom (5), not δ.
	x0, y0, _, _ := l.BlockRect(0, 0)
	var seen float64
	for dy := 0; dy < l.BlockPx(); dy++ {
		for dx := 0; dx < l.BlockPx(); dx++ {
			d := math.Abs(float64(f0.At(x0+dx, y0+dy)) - 250)
			if d > seen {
				seen = d
			}
		}
	}
	if math.Abs(seen-5) > 1e-4 {
		t.Fatalf("bright-area amplitude %v, want headroom 5", seen)
	}

	dark := video.NewSolid(l.FrameW, l.FrameH, 2)
	m2 := newMux(t, p, dark, ones)
	g0 := m2.Frame(1) // −D frame is the dangerous one near black
	minG, _ := g0.MinMax()
	if minG < 0 {
		t.Fatalf("dark frame went negative: %v", minG)
	}
}

func TestVideoFrameRatio(t *testing.T) {
	p := smallParams()
	p.VideoFrameRatio = 4
	l := p.Layout
	src := video.NewMovingBars(l.FrameW, l.FrameH, 8, 2)
	m := newMux(t, p, src, constStream(l, nil))
	// Frames 0..3 use video frame 0; frame 4 uses video frame 1.
	if !m.Frame(0).Equal(m.Frame(2)) {
		t.Fatal("display frames within one video frame differ (zero data)")
	}
	if m.Frame(3).Equal(m.Frame(4)) {
		t.Fatal("video frame did not advance after VideoFrameRatio frames")
	}
}

func TestRenderAndPushTo(t *testing.T) {
	p := smallParams()
	l := p.Layout
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), constStream(l, nil))
	frames := m.Render(6)
	if len(frames) != 6 {
		t.Fatalf("Render returned %d frames", len(frames))
	}
	if m.DataFrameIndex(0) != 0 || m.DataFrameIndex(p.Tau) != 1 {
		t.Fatal("DataFrameIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative frame index did not panic")
		}
	}()
	m.Frame(-1)
}

func TestStairShapeJumpsAtMidpoint(t *testing.T) {
	p := smallParams()
	p.Shape = waveform.Stair
	p.Tau = 8
	l := p.Layout
	a := NewDataFrame(l)
	for i := range a.Bits {
		a.Bits[i] = true
	}
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH),
		&FixedStream{Frames: []*DataFrame{a, NewDataFrame(l)}})
	x0, y0, _, _ := l.BlockRect(0, 0)
	px, py := x0, y0
	for ChessOn(px/l.PixelSize, py/l.PixelSize) == false {
		px++
	}
	amp := func(k int) float64 { return math.Abs(float64(m.Frame(k).At(px, py)) - 180) }
	// Stair: amplitude δ until the second half's midpoint, then 0.
	if amp(4) != p.Delta {
		t.Fatalf("stair early transition amplitude %v, want δ", amp(4))
	}
	if amp(7) != 0 {
		t.Fatalf("stair end amplitude %v, want 0", amp(7))
	}
}
