package core

import (
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

func TestNewStreamingReceiverValidation(t *testing.T) {
	p := smallParams()
	cfg := DefaultReceiverConfig(p, p.Layout.FrameW, p.Layout.FrameH)
	if _, err := NewStreamingReceiver(cfg, 2); err == nil {
		t.Fatal("tiny window accepted")
	}
	bad := cfg
	bad.CaptureW = 0
	if _, err := NewStreamingReceiver(bad, 16); err == nil {
		t.Fatal("bad receiver config accepted")
	}
	sr, err := NewStreamingReceiver(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Receiver() == nil {
		t.Fatal("wrapped receiver missing")
	}
}

// TestStreamingMatchesBatchOnIdealChannel: pushing ideal captures one at a
// time yields the same payload bits the batch decoder recovers.
func TestStreamingMatchesBatchOnIdealChannel(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	stream := NewRandomStream(l, 11)
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), stream)
	nData := 30
	caps, times, exp := idealCaptures(m, nData*p.Tau)

	cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	sr, err := NewStreamingReceiver(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []*FrameDecode
	for i := range caps {
		emitted = append(emitted, sr.Push(caps[i], times[i], exp)...)
	}
	if len(emitted) < nData-2 {
		t.Fatalf("emitted only %d of %d frames", len(emitted), nData)
	}
	// After the calibration window has filled, frames decode exactly.
	correct, total := 0, 0
	for _, fd := range emitted {
		if fd.Index < 16 || fd.Captures == 0 {
			continue
		}
		want := stream.DataFrame(fd.Index)
		for i := range want.Bits {
			if !fd.Decided[i] {
				continue
			}
			total++
			if fd.Bits.Bits[i] == want.Bits[i] {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no decided blocks after warm-up")
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Fatalf("streaming accuracy %.3f after warm-up, want >= 0.99", acc)
	}
}

// TestStreamingEmitsInOrder: frame indices come out strictly increasing and
// gaps (no captures) are emitted as empty decodes rather than skipped.
func TestStreamingEmitsInOrder(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	m := newMux(t, p, video.Gray(l.FrameW, l.FrameH), NewRandomStream(l, 3))
	caps, times, exp := idealCaptures(m, 10*p.Tau)
	cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	sr, err := NewStreamingReceiver(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	push := func(i int) {
		for _, fd := range sr.Push(caps[i], times[i], exp) {
			if fd.Index != next {
				t.Fatalf("emitted frame %d, want %d", fd.Index, next)
			}
			next++
		}
	}
	// Feed the first quarter, skip the second (camera occlusion), resume.
	quarter := len(caps) / 4
	for i := 0; i < quarter; i++ {
		push(i)
	}
	for i := 2 * quarter; i < len(caps); i++ {
		push(i)
	}
	if next < 7 {
		t.Fatalf("only %d frames emitted", next)
	}
}

// TestStreamingAdaptsToContentChange: a block whose video texture jumps
// mid-run recovers once the jump leaves the trailing window, whereas the
// batch decoder's whole-run percentiles stay polluted.
func TestStreamingAdaptsToContentChange(t *testing.T) {
	p := smallParams()
	p.Tau = 8
	l := p.Layout
	stream := NewRandomStream(l, 21)

	// Content: flat gray for 20 data frames, then strong static texture in
	// one block's area, then flat again for 40 more frames.
	texFrame := video.Gray(l.FrameW, l.FrameH).Frame(0)
	x0, y0, w, h := l.BlockRect(2, 1)
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			if (x+y)%2 == 0 {
				texFrame.Set(x, y, 60)
			} else {
				texFrame.Set(x, y, 200)
			}
		}
	}
	flat := video.Gray(l.FrameW, l.FrameH).Frame(0)
	nData := 70
	texStart, texEnd := 20, 30
	mux := newMux(t, p, &switchSource{
		flat: flat, tex: texFrame,
		fromVideo: texStart * p.Tau / 4, toVideo: texEnd * p.Tau / 4,
	}, stream)
	caps, times, exp := idealCaptures(mux, nData*p.Tau)

	cfg := DefaultReceiverConfig(p, l.FrameW, l.FrameH)
	sr, err := NewStreamingReceiver(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	blockIdx := 1*l.BlocksX + 2
	lateDecided := 0
	lateCorrect := 0
	for i := range caps {
		for _, fd := range sr.Push(caps[i], times[i], exp) {
			// Look at frames well after the texture burst has left the
			// 12-frame window.
			if fd.Index < texEnd+14 || fd.Captures == 0 {
				continue
			}
			if fd.Decided[blockIdx] {
				lateDecided++
				if fd.Bits.Bits[blockIdx] == stream.DataFrame(fd.Index).Bit(2, 1) {
					lateCorrect++
				}
			}
		}
	}
	if lateDecided < 10 {
		t.Fatalf("block stayed undecided after the burst left the window (%d decided)", lateDecided)
	}
	if float64(lateCorrect)/float64(lateDecided) < 0.9 {
		t.Fatalf("late accuracy %d/%d after recovery", lateCorrect, lateDecided)
	}
}

// switchSource shows flat content except for video frames in
// [fromVideo, toVideo), which carry the textured frame.
type switchSource struct {
	flat, tex          *frame.Frame
	fromVideo, toVideo int
}

func (s *switchSource) Frame(i int) *frame.Frame {
	if i >= s.fromVideo && i < s.toVideo {
		return s.tex.Clone()
	}
	return s.flat.Clone()
}
func (s *switchSource) Size() (int, int) { return s.flat.W, s.flat.H }
func (s *switchSource) FPS() float64     { return 30 }
