package core

import (
	"fmt"

	"inframe/internal/frame"
	"inframe/internal/parallel"
	"inframe/internal/video"
)

// RGBMultiplexer is the color rendition of the transmitter: the chessboard
// delta is added equally to R, G and B (a pure luma shift, as in the
// paper's prototype), so the viewer's chroma is untouched and the camera's
// luma plane carries exactly the grayscale pipeline's signal.
//
// The clipping-aware local amplitude (§3.3) considers all three channels: a
// saturated red sky limits the amplitude just like a saturated gray one.
//
// Rendering shares the grayscale multiplexer's pair-aware delta cache
// (DESIGN.md §5j): the unsigned chessboard plane is refreshed once per
// smoothing state and each output is one fused clamp(V + sign·D) pass per
// channel — no intermediate delta frame, full-frame clone or separate clamp
// sweep on the per-frame path.
type RGBMultiplexer struct {
	p     Params
	video video.RGBSource
	data  Stream
	pool  *frame.Pool

	videoIdx int
	vframe   *frame.RGB
	headroom []float32

	// delta / deltaAmp are the cached unsigned chessboard plane and its
	// per-Block amplitude memory (-1 forces the first write), exactly as in
	// Multiplexer. rowBlocks / rowSkips are the deterministic per-row
	// counter scratch renderDelta fans out over.
	delta     *frame.Frame
	deltaAmp  []float32
	rowBlocks []int64
	rowSkips  []int64
	stats     RenderStats
}

// RenderStats returns a snapshot of the incremental-render counters.
func (m *RGBMultiplexer) RenderStats() RenderStats { return m.stats }

// NewRGBMultiplexer builds a color multiplexer; the source must match the
// layout's panel size.
func NewRGBMultiplexer(p Params, src video.RGBSource, data Stream) (*RGBMultiplexer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, h := src.Size()
	if w != p.Layout.FrameW || h != p.Layout.FrameH {
		return nil, fmt.Errorf("core: video %dx%d does not match layout panel %dx%d",
			w, h, p.Layout.FrameW, p.Layout.FrameH)
	}
	pool := p.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	return &RGBMultiplexer{p: p, video: src, data: data, pool: pool, videoIdx: -1}, nil
}

// Params returns the transmitter parameters.
func (m *RGBMultiplexer) Params() Params { return m.p }

// refreshVideo loads the color frame for display frame k and recomputes the
// per-block headroom across all channels.
func (m *RGBMultiplexer) refreshVideo(k int) {
	vi := k / m.p.VideoFrameRatio
	if vi == m.videoIdx {
		return
	}
	m.videoIdx = vi
	m.vframe = m.video.FrameRGB(vi)
	m.stats.VideoRefreshes++
	l := m.p.Layout
	if m.headroom == nil {
		m.headroom = make([]float32, l.NumBlocks())
	}
	m.stats.HeadroomBlocks += int64(l.NumBlocks())
	ps := l.PixelSize
	// Disjoint per-Block-row headroom writes: ordered merge, bit-identical
	// at any worker count.
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			head := float32(255)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if !ChessOn(x/ps, pj) {
						continue
					}
					i := rowBase + x
					for _, v := range [3]float32{m.vframe.R[i], m.vframe.G[i], m.vframe.B[i]} {
						if hi := 255 - v; hi < head {
							head = hi
						}
						if v < head {
							head = v
						}
					}
				}
			}
			if head < 0 {
				head = 0
			}
			m.headroom[by*l.BlocksX+bx] = head
		}
	})
}

// ensureScratch sizes the delta cache and the per-Block-row counter scratch
// on first use. The pooled delta frame arrives zeroed; off-chess pixels are
// never written afterwards, so they carry zero delta forever.
func (m *RGBMultiplexer) ensureScratch() {
	l := m.p.Layout
	if m.rowBlocks == nil {
		m.rowBlocks = make([]int64, l.BlocksY)
		m.rowSkips = make([]int64, l.BlocksY)
	}
	if m.delta == nil {
		m.delta = m.pool.Get(l.FrameW, l.FrameH)
		m.deltaAmp = make([]float32, l.NumBlocks())
		for i := range m.deltaAmp {
			m.deltaAmp[i] = -1
		}
	}
}

// refreshDelta brings the cached unsigned delta plane up to date for display
// frame k (video, headroom, then stale Blocks only) and folds the skip
// counters into the stats.
func (m *RGBMultiplexer) refreshDelta(k int) {
	if k < 0 {
		panic("core: negative display frame index")
	}
	m.refreshVideo(k)
	m.ensureScratch()
	l := m.p.Layout
	cur := m.data.DataFrame(k / m.p.Tau)
	next := m.data.DataFrame(k/m.p.Tau + 1)
	renderDelta(m.p, cur, next, k, m.headroom, m.deltaAmp, m.delta, m.rowBlocks, m.rowSkips)
	for by := 0; by < l.BlocksY; by++ {
		m.stats.Blocks += m.rowBlocks[by]
		m.stats.BlocksSkipped += m.rowSkips[by]
	}
}

// DeltaFrame renders the signed chessboard-only delta of display frame k,
// with headroom clipping applied. The frame comes from the multiplexer's
// pool; callers that are done with it may return it via Recycle. The render
// is a sparse signed copy of the cached unsigned plane: only Blocks with a
// positive amplitude are written, and the pooled zeros elsewhere keep the
// output bit-identical to the former direct formulation.
func (m *RGBMultiplexer) DeltaFrame(k int) *frame.Frame {
	m.refreshDelta(k)
	l := m.p.Layout
	out := m.pool.Get(l.FrameW, l.FrameH)
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	ps := l.PixelSize
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			want := m.deltaAmp[by*l.BlocksX+bx]
			if want <= 0 {
				continue
			}
			add := sign * want
			x0, y0, w, h := l.BlockRect(bx, by)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if ChessOn(x/ps, pj) {
						out.Pix[rowBase+x] = add
					}
				}
			}
		}
	})
	return out
}

// Recycle returns a frame obtained from DeltaFrame to the multiplexer's
// pool for reuse by a later render.
func (m *RGBMultiplexer) Recycle(f *frame.Frame) { m.pool.Put(f) }

// FrameRGB renders the multiplexed color frame k in one fused pass per
// channel: clamp(V + sign·D) straight from the cached video frame and delta
// plane, with no intermediate delta frame or full-frame clone. The caller
// owns the returned frame.
func (m *RGBMultiplexer) FrameRGB(k int) (*frame.RGB, error) {
	m.refreshDelta(k)
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	l := m.p.Layout
	out := frame.NewRGB(l.FrameW, l.FrameH)
	if err := out.AddLumaDeltaOf(m.vframe, m.delta, sign); err != nil {
		return nil, err
	}
	return out, nil
}

// LumaFrame renders the luma plane of multiplexed frame k — what the
// grayscale channel pipeline (display/camera simulators) consumes. The Rec.
// 601 dot product runs directly over the fused clamp(V + sign·D) channel
// values, so the full-color intermediate FrameRGB used to build (and drop to
// the collector) is never materialized.
func (m *RGBMultiplexer) LumaFrame(k int) (*frame.Frame, error) {
	m.refreshDelta(k)
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	return m.vframe.LumaShifted(m.delta, sign)
}
