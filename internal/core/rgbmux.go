package core

import (
	"fmt"

	"inframe/internal/frame"
	"inframe/internal/parallel"
	"inframe/internal/video"
)

// RGBMultiplexer is the color rendition of the transmitter: the chessboard
// delta is added equally to R, G and B (a pure luma shift, as in the
// paper's prototype), so the viewer's chroma is untouched and the camera's
// luma plane carries exactly the grayscale pipeline's signal.
//
// The clipping-aware local amplitude (§3.3) considers all three channels: a
// saturated red sky limits the amplitude just like a saturated gray one.
type RGBMultiplexer struct {
	p     Params
	video video.RGBSource
	data  Stream
	pool  *frame.Pool

	videoIdx int
	vframe   *frame.RGB
	headroom []float32
}

// NewRGBMultiplexer builds a color multiplexer; the source must match the
// layout's panel size.
func NewRGBMultiplexer(p Params, src video.RGBSource, data Stream) (*RGBMultiplexer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, h := src.Size()
	if w != p.Layout.FrameW || h != p.Layout.FrameH {
		return nil, fmt.Errorf("core: video %dx%d does not match layout panel %dx%d",
			w, h, p.Layout.FrameW, p.Layout.FrameH)
	}
	pool := p.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	return &RGBMultiplexer{p: p, video: src, data: data, pool: pool, videoIdx: -1}, nil
}

// Params returns the transmitter parameters.
func (m *RGBMultiplexer) Params() Params { return m.p }

// refreshVideo loads the color frame for display frame k and recomputes the
// per-block headroom across all channels.
func (m *RGBMultiplexer) refreshVideo(k int) {
	vi := k / m.p.VideoFrameRatio
	if vi == m.videoIdx {
		return
	}
	m.videoIdx = vi
	m.vframe = m.video.FrameRGB(vi)
	l := m.p.Layout
	if m.headroom == nil {
		m.headroom = make([]float32, l.NumBlocks())
	}
	ps := l.PixelSize
	// Disjoint per-Block-row headroom writes: ordered merge, bit-identical
	// at any worker count.
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			head := float32(255)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if !ChessOn(x/ps, pj) {
						continue
					}
					i := rowBase + x
					for _, v := range [3]float32{m.vframe.R[i], m.vframe.G[i], m.vframe.B[i]} {
						if hi := 255 - v; hi < head {
							head = hi
						}
						if v < head {
							head = v
						}
					}
				}
			}
			if head < 0 {
				head = 0
			}
			m.headroom[by*l.BlocksX+bx] = head
		}
	})
}

// DeltaFrame renders the signed chessboard-only delta of display frame k,
// with headroom clipping applied. The frame comes from the multiplexer's
// pool; callers that are done with it may return it via Recycle.
func (m *RGBMultiplexer) DeltaFrame(k int) *frame.Frame {
	if k < 0 {
		panic("core: negative display frame index")
	}
	m.refreshVideo(k)
	l := m.p.Layout
	out := m.pool.Get(l.FrameW, l.FrameH)
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	ps := l.PixelSize
	cur := m.data.DataFrame(k / m.p.Tau)
	next := m.data.DataFrame(k/m.p.Tau + 1)
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			a := envelopeBetween(m.p, cur, next, bx, by, k)
			if a <= 0 {
				continue
			}
			if head := float64(m.headroom[by*l.BlocksX+bx]); a > head {
				a = head
			}
			if a <= 0 {
				continue
			}
			add := sign * float32(a)
			x0, y0, w, h := l.BlockRect(bx, by)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if ChessOn(x/ps, pj) {
						out.Pix[rowBase+x] = add
					}
				}
			}
		}
	})
	return out
}

// Recycle returns a frame obtained from DeltaFrame to the multiplexer's
// pool for reuse by a later render.
func (m *RGBMultiplexer) Recycle(f *frame.Frame) { m.pool.Put(f) }

// FrameRGB renders the multiplexed color frame k.
func (m *RGBMultiplexer) FrameRGB(k int) (*frame.RGB, error) {
	delta := m.DeltaFrame(k)
	out := m.vframe.Clone()
	err := out.AddLumaDelta(delta)
	m.Recycle(delta)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LumaFrame renders the luma plane of multiplexed frame k — what the
// grayscale channel pipeline (display/camera simulators) consumes.
func (m *RGBMultiplexer) LumaFrame(k int) (*frame.Frame, error) {
	f, err := m.FrameRGB(k)
	if err != nil {
		return nil, err
	}
	return f.Luma(), nil
}
