package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inframe/internal/frame"
	"inframe/internal/video"
)

// TestPropBlockRectsTile: Block rectangles partition the grid area exactly —
// no overlap, no gaps, all inside the panel.
func TestPropBlockRectsTile(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		s := 2 + rng.Intn(4)
		bx := 2 * (1 + rng.Intn(5))
		by := 2 * (1 + rng.Intn(4))
		l := Layout{
			FrameW: bx*p*s + 2*rng.Intn(8), FrameH: by*p*s + 2*rng.Intn(8),
			PixelSize: p, BlockSize: s, GOBSize: 2,
			BlocksX: bx, BlocksY: by,
		}
		if l.Validate() != nil {
			return true // not a valid layout; nothing to check
		}
		covered := make(map[[2]int]int)
		for j := 0; j < l.BlocksY; j++ {
			for i := 0; i < l.BlocksX; i++ {
				x0, y0, w, h := l.BlockRect(i, j)
				if x0 < 0 || y0 < 0 || x0+w > l.FrameW || y0+h > l.FrameH {
					return false
				}
				for y := y0; y < y0+h; y++ {
					for x := x0; x < x0+w; x++ {
						covered[[2]int{x, y}]++
					}
				}
			}
		}
		want := l.NumBlocks() * l.BlockPx() * l.BlockPx()
		if len(covered) != want {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDataBitsRoundTrip: FromDataBits ∘ DataBits is the identity for
// arbitrary payloads, and every GOB keeps parity.
func TestPropDataBitsRoundTrip(t *testing.T) {
	l := smallLayout()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, l.DataBitsPerFrame())
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		df, err := FromDataBits(l, bits)
		if err != nil {
			return false
		}
		back := df.DataBits()
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		for gy := 0; gy < l.GOBsY(); gy++ {
			for gx := 0; gx < l.GOBsX(); gx++ {
				if !df.ParityOK(gx, gy) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEnvelopeBounds: the smoothed amplitude never leaves [0, δ] for any
// payload and any display frame.
func TestPropEnvelopeBounds(t *testing.T) {
	l := smallLayout()
	prop := func(seed int64, kRaw uint16) bool {
		p := DefaultParams(l)
		p.Tau = 8
		stream := NewRandomStream(l, seed)
		k := int(kRaw) % (20 * p.Tau)
		for by := 0; by < l.BlocksY; by++ {
			for bx := 0; bx < l.BlocksX; bx++ {
				a := envelopeAmplitude(p, stream, bx, by, k)
				if a < -1e-12 || a > p.Delta+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPairFusion: for any random payload and any even display frame of
// a steady period, the complementary pair averages back to the video.
func TestPropPairFusion(t *testing.T) {
	l := smallLayout()
	prop := func(seed int64, periodRaw uint8) bool {
		p := DefaultParams(l)
		p.Tau = 8
		m, err := NewMultiplexer(p, video.Gray(l.FrameW, l.FrameH), NewRandomStream(l, seed))
		if err != nil {
			return false
		}
		// Even frame inside the steady half of an arbitrary period.
		k := int(periodRaw) % 16 * p.Tau
		avg, err := frame.Average(m.Frame(k), m.Frame(k+1))
		if err != nil {
			return false
		}
		mae, _ := frame.MAE(avg, video.Gray(l.FrameW, l.FrameH).Frame(0))
		return mae < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCaptureMappingInverse: FullFrame mappings round-trip coordinates.
func TestPropCaptureMappingInverse(t *testing.T) {
	l := smallLayout()
	prop := func(capWRaw, capHRaw uint8, xRaw, yRaw uint16) bool {
		capW := 16 + int(capWRaw)
		capH := 16 + int(capHRaw)
		m := FullFrame(l, capW, capH)
		x := float64(int(xRaw) % l.FrameW)
		y := float64(int(yRaw) % l.FrameH)
		cx, cy := m.Apply(x, y)
		// Invert manually.
		backX := (cx - m.OffX) / m.ScaleX
		backY := (cy - m.OffY) / m.ScaleY
		return math.Abs(backX-x) < 1e-9 && math.Abs(backY-y) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropScramblePreservesLength and inversion under arbitrary keys.
func TestPropScramble(t *testing.T) {
	prop := func(seed int64, idxRaw uint8, payload []byte) bool {
		bits := make([]bool, len(payload))
		for i, b := range payload {
			bits[i] = b&1 == 1
		}
		idx := int(idxRaw)
		s := ScrambleBits(bits, seed, idx)
		if len(s) != len(bits) {
			return false
		}
		back := ScrambleBits(s, seed, idx)
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
