package core

import (
	"fmt"

	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/parallel"
	"inframe/internal/video"
	"inframe/internal/waveform"
)

// Params are the tunable InFrame transmitter parameters from §3.2–3.3.
type Params struct {
	// Layout fixes the data frame geometry.
	Layout Layout
	// Delta is the chessboard amplitude δ in 8-bit drive units.
	Delta float64
	// Tau is the smoothing cycle τ: display frames per data frame. Even,
	// at least 2. The first τ/2 frames of a period are steady; the last
	// τ/2 carry the envelope transition to the next data frame.
	Tau int
	// Shape selects the transition envelope (paper: half square-root
	// raised cosine).
	Shape waveform.Shape
	// VideoFrameRatio is how many display frames repeat each video frame
	// (paper: 120 Hz display / 30 FPS video = 4).
	VideoFrameRatio int
	// Workers bounds the render worker pool: per-Block-row chessboard
	// application and headroom computation fan out across this many
	// goroutines. 0 means GOMAXPROCS; 1 forces the sequential path. Output
	// is bit-identical at any worker count (see internal/parallel).
	Workers int
	// Pool supplies and recycles the rendered frame buffers. Frame Gets
	// every output frame from it, and Recycle (called by PushTo and the
	// channel simulator once a frame is on the display) Puts it back, so a
	// steady-state render loop reuses the same buffers forever. Nil means
	// a private pool: the public API is unchanged and callers that keep
	// every rendered frame (Render) simply never recycle. Share one pool
	// across mux, camera and receiver to share buffers end to end.
	Pool *frame.Pool
}

// DefaultParams returns the paper's recommended operating point
// (δ=20, τ=12, SRRC smoothing) for the given layout.
func DefaultParams(l Layout) Params {
	return Params{Layout: l, Delta: 20, Tau: 12, Shape: waveform.SqrtRaisedCosine, VideoFrameRatio: 4}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	if p.Delta <= 0 || p.Delta > 127 {
		return fmt.Errorf("core: Delta must be in (0,127], got %v", p.Delta)
	}
	if p.Tau < 2 || p.Tau%2 != 0 {
		return fmt.Errorf("core: Tau must be even and >= 2, got %d", p.Tau)
	}
	if p.VideoFrameRatio < 1 {
		return fmt.Errorf("core: VideoFrameRatio must be >= 1, got %d", p.VideoFrameRatio)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", p.Workers)
	}
	return nil
}

// Multiplexer combines a video source and a data stream into the displayed
// frame sequence (Fig. 2): each video frame is duplicated VideoFrameRatio
// times, and every displayed frame carries ±D with the complementary sign
// alternating per display frame.
//
// Rendering is pair-aware and incremental (DESIGN.md §5j): the unsigned
// chessboard delta D of the current smoothing state is cached in one pooled
// frame and each displayed frame is produced by a single fused pass
// out = clamp(V + sign·D), so the two frames of a complementary pair share
// one delta render, and a Block whose clipped amplitude is unchanged since
// the previous frame is never rewritten.
type Multiplexer struct {
	p     Params
	video video.Source
	data  Stream
	pool  *frame.Pool

	// cached per-video-frame state
	videoIdx int
	vframe   *frame.Frame
	// vbuf is the persistent video buffer when the source supports
	// in-place rendering (video.IntoSource); nil means the source
	// allocates each video frame itself.
	vbuf     *frame.Frame
	headroom []float32 // per-block clipping-limited amplitude bound

	// delta is the cached unsigned chessboard plane: the clipped smoothed
	// amplitude at every chessboard-on pixel, zero elsewhere. Off-chess
	// pixels are never written after the pooled (zeroed) Get, so a Block
	// rewrite only touches its on-pixels. deltaAmp remembers the amplitude
	// each Block's pixels currently hold; -1 means "never rendered", which
	// no clipped amplitude (>= 0) can equal, forcing the first write.
	delta    *frame.Frame
	deltaAmp []float32

	// rowBlocks / rowSkips are per-Block-row scratch counters for the render
	// fan-out: workers write disjoint rows, and the sequential sum into
	// stats afterwards keeps the totals deterministic at any worker count.
	rowBlocks []int64
	rowSkips  []int64
	stats     RenderStats
}

// RenderStats counts the incremental renderer's work avoidance since the
// multiplexer was built. Totals are deterministic for a given frame
// sequence regardless of Workers.
type RenderStats struct {
	// Blocks is the number of per-frame Block envelope evaluations;
	// BlocksSkipped counts those whose cached delta pixels were already at
	// the wanted amplitude, so no pixels were rewritten.
	Blocks, BlocksSkipped int64
	// HeadroomBlocks counts Block headroom scans performed;
	// HeadroomSkipped counts scans avoided because the video source's
	// DirtyRegion hint proved the Block's pixels unchanged.
	HeadroomBlocks, HeadroomSkipped int64
	// VideoRefreshes counts video-frame loads; VideoSkipped counts loads
	// avoided entirely (the source certified the frame identical to the
	// cached one).
	VideoRefreshes, VideoSkipped int64
}

// RenderStats returns a snapshot of the incremental-render counters.
func (m *Multiplexer) RenderStats() RenderStats { return m.stats }

// SkipRate returns the fraction of Block renders avoided by the delta
// cache, or 0 before any frame has been rendered.
func (s RenderStats) SkipRate() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.BlocksSkipped) / float64(s.Blocks)
}

// NewMultiplexer builds a multiplexer. The video source must match the
// layout's panel size.
func NewMultiplexer(p Params, src video.Source, data Stream) (*Multiplexer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, h := src.Size()
	if w != p.Layout.FrameW || h != p.Layout.FrameH {
		return nil, fmt.Errorf("core: video %dx%d does not match layout panel %dx%d",
			w, h, p.Layout.FrameW, p.Layout.FrameH)
	}
	pool := p.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	return &Multiplexer{p: p, video: src, data: data, pool: pool, videoIdx: -1}, nil
}

// Params returns the transmitter parameters.
func (m *Multiplexer) Params() Params { return m.p }

// DataFrameIndex returns which data frame display frame k belongs to.
func (m *Multiplexer) DataFrameIndex(k int) int { return k / m.p.Tau }

// envelopeAmplitude computes §3.2's smoothed pre-clipping amplitude of
// Block (bx, by) at display frame k: steady during the first τ/2 frames of
// the data period, transitioning toward the next data frame's level
// afterwards. Shared by the grayscale and color multiplexers.
func envelopeAmplitude(p Params, data Stream, bx, by, k int) float64 {
	d := k / p.Tau
	return envelopeBetween(p, data.DataFrame(d), data.DataFrame(d+1), bx, by, k)
}

// envelopeBetween is envelopeAmplitude over pre-resolved current/next data
// frames. Resolving the frames once per rendered frame (instead of once per
// Block) keeps Stream implementations with per-call work (whitening, cache
// fills) off the per-Block path, and makes the Block fan-out safe: workers
// read the two frames but never touch the Stream.
func envelopeBetween(p Params, cur, next *DataFrame, bx, by, k int) float64 {
	tau := p.Tau
	j := k % tau
	c := cur.Bit(bx, by)
	a0 := 0.0
	if c {
		a0 = p.Delta
	}
	half := tau / 2
	if j < half {
		return a0
	}
	n := next.Bit(bx, by)
	if n == c {
		return a0
	}
	a1 := 0.0
	if n {
		a1 = p.Delta
	}
	u := float64(j-half+1) / float64(half)
	return p.Shape.Between(a0, a1, u)
}

// refreshVideo loads the video frame for display frame k and recomputes the
// per-block clipping headroom: the largest amplitude a such that v±a stays
// within [0,255] for every chessboard-on pixel of the block (§3.3's local
// amplitude adjustment for bright and dark areas).
//
// When the source is a video.RegionSource and certifies every video-frame
// transition since the cached frame, the refresh narrows to the accumulated
// dirty region: an empty union skips the load and all headroom scans, a
// partial union reloads the frame but rescans only intersecting Blocks.
func (m *Multiplexer) refreshVideo(k int) {
	vi := k / m.p.VideoFrameRatio
	if vi == m.videoIdx {
		return
	}
	prev := m.videoIdx
	m.videoIdx = vi
	l := m.p.Layout
	// Accumulate the dirty hint across every skipped-over video frame: the
	// multiplexer may jump several video indices between renders (Frame is
	// random-access), and soundness requires covering each transition. Any
	// uncertified step — including backwards jumps — degrades to a full
	// refresh.
	var dirty video.Region
	dirtyOK := false
	if rs, ok := m.video.(video.RegionSource); ok && m.vframe != nil && m.headroom != nil && vi > prev {
		dirtyOK = true
		for j := prev + 1; j <= vi; j++ {
			r, ok := rs.DirtyRegion(j)
			if !ok {
				dirtyOK = false
				break
			}
			dirty = dirty.Union(r)
		}
	}
	if dirtyOK && dirty.Empty() {
		// Frame vi is pixel-identical to the cached frame: keep the video
		// buffer, the headroom table and the delta cache untouched.
		m.stats.VideoSkipped++
		m.stats.HeadroomSkipped += int64(l.NumBlocks())
		return
	}
	m.stats.VideoRefreshes++
	if src, ok := m.video.(video.IntoSource); ok {
		// In-place-capable source: render into one persistent pooled
		// buffer instead of allocating a frame per video frame.
		if m.vbuf == nil {
			m.vbuf = m.pool.Get(m.p.Layout.FrameW, m.p.Layout.FrameH)
		}
		src.FrameInto(vi, m.vbuf)
		m.vframe = m.vbuf
	} else {
		m.vframe = m.video.Frame(vi)
	}
	if m.headroom == nil {
		m.headroom = make([]float32, l.NumBlocks())
	}
	ps := l.PixelSize
	m.ensureScratch()
	// Each Block row writes a disjoint headroom span, so the fan-out is an
	// ordered merge: bit-identical at any worker count.
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		var scanned, skipped int64
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			if dirtyOK && !dirty.Intersects(x0, y0, w, h) {
				// Every certified transition left this Block's pixels
				// unchanged, so its headroom (computed from exactly those
				// pixels) is still valid.
				skipped++
				continue
			}
			scanned++
			head := float32(255)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if !ChessOn(x/ps, pj) {
						continue
					}
					v := m.vframe.Pix[rowBase+x]
					if hi := 255 - v; hi < head {
						head = hi
					}
					if v < head {
						head = v
					}
				}
			}
			if head < 0 {
				head = 0
			}
			m.headroom[by*l.BlocksX+bx] = head
		}
		m.rowBlocks[by] = scanned
		m.rowSkips[by] = skipped
	})
	for by := 0; by < l.BlocksY; by++ {
		m.stats.HeadroomBlocks += m.rowBlocks[by]
		m.stats.HeadroomSkipped += m.rowSkips[by]
	}
}

// ensureScratch sizes the per-Block-row counter scratch and the delta-cache
// state on first use.
func (m *Multiplexer) ensureScratch() {
	l := m.p.Layout
	if m.rowBlocks == nil {
		m.rowBlocks = make([]int64, l.BlocksY)
		m.rowSkips = make([]int64, l.BlocksY)
	}
	if m.delta == nil {
		// The pooled frame arrives zeroed; off-chess pixels are never
		// written afterwards, so they carry zero delta forever.
		m.delta = m.pool.Get(l.FrameW, l.FrameH)
		m.deltaAmp = make([]float32, l.NumBlocks())
		for i := range m.deltaAmp {
			m.deltaAmp[i] = -1
		}
	}
}

// renderDelta refreshes a cached unsigned delta plane for display frame k:
// each Block's clipped envelope amplitude is compared against the amplitude
// its pixels already hold (deltaAmp), and only stale Blocks are rewritten.
// Block rows cover disjoint pixel bands, disjoint deltaAmp spans and
// disjoint counter slots, so the fan-out is an ordered merge — bit-identical
// at any worker count. rowBlocks[by] / rowSkips[by] receive each row's
// evaluated and skipped Block counts for the caller to fold into its stats.
// Shared by the grayscale and color multiplexers: headroom is whatever
// channel-aware bound the caller computed.
func renderDelta(p Params, cur, next *DataFrame, k int, headroom, deltaAmp []float32, delta *frame.Frame, rowBlocks, rowSkips []int64) {
	l := p.Layout
	ps := l.PixelSize
	parallel.For(p.Workers, l.BlocksY, func(by int) {
		var total, skipped int64
		for bx := 0; bx < l.BlocksX; bx++ {
			total++
			a := envelopeBetween(p, cur, next, bx, by, k)
			if head := float64(headroom[by*l.BlocksX+bx]); a > head {
				a = head
			}
			if a < 0 {
				a = 0
			}
			want := float32(a)
			b := by*l.BlocksX + bx
			//lint:ignore floateq cache key: both sides are the same clipped envelope computation, equal means the stored pixels are exactly right
			if want == deltaAmp[b] {
				skipped++
				continue
			}
			deltaAmp[b] = want
			x0, y0, w, h := l.BlockRect(bx, by)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if ChessOn(x/ps, pj) {
						delta.Pix[rowBase+x] = want
					}
				}
			}
		}
		rowBlocks[by] = total
		rowSkips[by] = skipped
	})
}

// Frame renders display frame k: the current video frame plus the signed,
// clipped, smoothed chessboard of every Block. The returned frame is drawn
// from the multiplexer's pool; the caller owns it until it hands it back
// via Recycle (or keeps it forever — Render's contract).
//
// The render is incremental: pass one refreshes the cached unsigned delta
// plane, rewriting only Blocks whose clipped amplitude changed since the
// previous render (during the steady half of a smoothing cycle on a static
// video that is zero Blocks); pass two fuses clone, signed add and clamp
// into one sweep out = clamp(V + sign·D). The complementary pair's two
// frames differ only in sign, so they share one delta refresh. The output
// is bit-identical to the direct clone+add+clamp formulation — see
// DESIGN.md §5j for the argument and TestFixedPointBitIdentity for the
// adversarial check.
func (m *Multiplexer) Frame(k int) *frame.Frame {
	if k < 0 {
		panic("core: negative display frame index")
	}
	m.refreshVideo(k)
	l := m.p.Layout
	m.ensureScratch()
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	// Resolve the two data frames once: workers must not touch the Stream
	// (implementations may cache or whiten per call).
	cur := m.data.DataFrame(k / m.p.Tau)
	next := m.data.DataFrame(k/m.p.Tau + 1)
	// Delta refresh. A Block row covers a disjoint band of delta pixel rows
	// and a disjoint span of deltaAmp, so rows fan out with no overlap and
	// the result is bit-identical at any worker count.
	renderDelta(m.p, cur, next, k, m.headroom, m.deltaAmp, m.delta, m.rowBlocks, m.rowSkips)
	for by := 0; by < l.BlocksY; by++ {
		m.stats.Blocks += m.rowBlocks[by]
		m.stats.BlocksSkipped += m.rowSkips[by]
	}
	// Fused output pass: clone, signed add and clamp in one sweep. Pixel
	// rows are disjoint, so the fan-out is again an ordered merge.
	out := m.pool.Get(l.FrameW, l.FrameH)
	vp, dp, op := m.vframe.Pix, m.delta.Pix, out.Pix
	w := l.FrameW
	parallel.For(m.p.Workers, l.FrameH, func(y int) {
		base := y * w
		for i := base; i < base+w; i++ {
			v := vp[i] + sign*dp[i]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			op[i] = v
		}
	})
	return out
}

// Recycle returns a frame obtained from Frame to the multiplexer's pool
// for reuse by a later render. Call it once the frame's contents have been
// consumed (e.g. pushed onto a display, which copies them into its drive
// history); the frame must not be used afterwards.
func (m *Multiplexer) Recycle(f *frame.Frame) { m.pool.Put(f) }

// Render produces display frames [0, n) in order. The caller owns every
// returned frame (they are never recycled), so Render allocates n buffers;
// use PushTo or the channel simulator for allocation-free steady state.
func (m *Multiplexer) Render(n int) []*frame.Frame {
	frames := make([]*frame.Frame, n)
	for k := 0; k < n; k++ {
		frames[k] = m.Frame(k)
	}
	return frames
}

// PushTo renders n display frames straight onto a display simulator,
// recycling each frame once the display has copied it into its drive
// history — the steady-state loop reuses one buffer for the whole run.
func (m *Multiplexer) PushTo(d *display.Display, n int) error {
	for k := 0; k < n; k++ {
		f := m.Frame(k)
		if err := d.Push(f); err != nil {
			// The display rejected the frame without consuming it; hand it
			// back before surfacing the error or the pool leaks a buffer.
			m.Recycle(f)
			//lint:ignore hotalloc error path runs at most once, then the loop exits
			return fmt.Errorf("core: pushing frame %d: %w", k, err)
		}
		m.Recycle(f)
	}
	return nil
}
