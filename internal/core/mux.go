package core

import (
	"fmt"

	"inframe/internal/display"
	"inframe/internal/frame"
	"inframe/internal/parallel"
	"inframe/internal/video"
	"inframe/internal/waveform"
)

// Params are the tunable InFrame transmitter parameters from §3.2–3.3.
type Params struct {
	// Layout fixes the data frame geometry.
	Layout Layout
	// Delta is the chessboard amplitude δ in 8-bit drive units.
	Delta float64
	// Tau is the smoothing cycle τ: display frames per data frame. Even,
	// at least 2. The first τ/2 frames of a period are steady; the last
	// τ/2 carry the envelope transition to the next data frame.
	Tau int
	// Shape selects the transition envelope (paper: half square-root
	// raised cosine).
	Shape waveform.Shape
	// VideoFrameRatio is how many display frames repeat each video frame
	// (paper: 120 Hz display / 30 FPS video = 4).
	VideoFrameRatio int
	// Workers bounds the render worker pool: per-Block-row chessboard
	// application and headroom computation fan out across this many
	// goroutines. 0 means GOMAXPROCS; 1 forces the sequential path. Output
	// is bit-identical at any worker count (see internal/parallel).
	Workers int
	// Pool supplies and recycles the rendered frame buffers. Frame Gets
	// every output frame from it, and Recycle (called by PushTo and the
	// channel simulator once a frame is on the display) Puts it back, so a
	// steady-state render loop reuses the same buffers forever. Nil means
	// a private pool: the public API is unchanged and callers that keep
	// every rendered frame (Render) simply never recycle. Share one pool
	// across mux, camera and receiver to share buffers end to end.
	Pool *frame.Pool
}

// DefaultParams returns the paper's recommended operating point
// (δ=20, τ=12, SRRC smoothing) for the given layout.
func DefaultParams(l Layout) Params {
	return Params{Layout: l, Delta: 20, Tau: 12, Shape: waveform.SqrtRaisedCosine, VideoFrameRatio: 4}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	if p.Delta <= 0 || p.Delta > 127 {
		return fmt.Errorf("core: Delta must be in (0,127], got %v", p.Delta)
	}
	if p.Tau < 2 || p.Tau%2 != 0 {
		return fmt.Errorf("core: Tau must be even and >= 2, got %d", p.Tau)
	}
	if p.VideoFrameRatio < 1 {
		return fmt.Errorf("core: VideoFrameRatio must be >= 1, got %d", p.VideoFrameRatio)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", p.Workers)
	}
	return nil
}

// Multiplexer combines a video source and a data stream into the displayed
// frame sequence (Fig. 2): each video frame is duplicated VideoFrameRatio
// times, and every displayed frame carries ±D with the complementary sign
// alternating per display frame.
type Multiplexer struct {
	p     Params
	video video.Source
	data  Stream
	pool  *frame.Pool

	// cached per-video-frame state
	videoIdx int
	vframe   *frame.Frame
	// vbuf is the persistent video buffer when the source supports
	// in-place rendering (video.IntoSource); nil means the source
	// allocates each video frame itself.
	vbuf     *frame.Frame
	headroom []float32 // per-block clipping-limited amplitude bound
}

// NewMultiplexer builds a multiplexer. The video source must match the
// layout's panel size.
func NewMultiplexer(p Params, src video.Source, data Stream) (*Multiplexer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w, h := src.Size()
	if w != p.Layout.FrameW || h != p.Layout.FrameH {
		return nil, fmt.Errorf("core: video %dx%d does not match layout panel %dx%d",
			w, h, p.Layout.FrameW, p.Layout.FrameH)
	}
	pool := p.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	return &Multiplexer{p: p, video: src, data: data, pool: pool, videoIdx: -1}, nil
}

// Params returns the transmitter parameters.
func (m *Multiplexer) Params() Params { return m.p }

// DataFrameIndex returns which data frame display frame k belongs to.
func (m *Multiplexer) DataFrameIndex(k int) int { return k / m.p.Tau }

// envelopeAmplitude computes §3.2's smoothed pre-clipping amplitude of
// Block (bx, by) at display frame k: steady during the first τ/2 frames of
// the data period, transitioning toward the next data frame's level
// afterwards. Shared by the grayscale and color multiplexers.
func envelopeAmplitude(p Params, data Stream, bx, by, k int) float64 {
	d := k / p.Tau
	return envelopeBetween(p, data.DataFrame(d), data.DataFrame(d+1), bx, by, k)
}

// envelopeBetween is envelopeAmplitude over pre-resolved current/next data
// frames. Resolving the frames once per rendered frame (instead of once per
// Block) keeps Stream implementations with per-call work (whitening, cache
// fills) off the per-Block path, and makes the Block fan-out safe: workers
// read the two frames but never touch the Stream.
func envelopeBetween(p Params, cur, next *DataFrame, bx, by, k int) float64 {
	tau := p.Tau
	j := k % tau
	c := cur.Bit(bx, by)
	a0 := 0.0
	if c {
		a0 = p.Delta
	}
	half := tau / 2
	if j < half {
		return a0
	}
	n := next.Bit(bx, by)
	if n == c {
		return a0
	}
	a1 := 0.0
	if n {
		a1 = p.Delta
	}
	u := float64(j-half+1) / float64(half)
	return p.Shape.Between(a0, a1, u)
}

// refreshVideo loads the video frame for display frame k and recomputes the
// per-block clipping headroom: the largest amplitude a such that v±a stays
// within [0,255] for every chessboard-on pixel of the block (§3.3's local
// amplitude adjustment for bright and dark areas).
func (m *Multiplexer) refreshVideo(k int) {
	vi := k / m.p.VideoFrameRatio
	if vi == m.videoIdx {
		return
	}
	m.videoIdx = vi
	if src, ok := m.video.(video.IntoSource); ok {
		// In-place-capable source: render into one persistent pooled
		// buffer instead of allocating a frame per video frame.
		if m.vbuf == nil {
			m.vbuf = m.pool.Get(m.p.Layout.FrameW, m.p.Layout.FrameH)
		}
		src.FrameInto(vi, m.vbuf)
		m.vframe = m.vbuf
	} else {
		m.vframe = m.video.Frame(vi)
	}
	l := m.p.Layout
	if m.headroom == nil {
		m.headroom = make([]float32, l.NumBlocks())
	}
	ps := l.PixelSize
	// Each Block row writes a disjoint headroom span, so the fan-out is an
	// ordered merge: bit-identical at any worker count.
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			head := float32(255)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if !ChessOn(x/ps, pj) {
						continue
					}
					v := m.vframe.Pix[rowBase+x]
					if hi := 255 - v; hi < head {
						head = hi
					}
					if v < head {
						head = v
					}
				}
			}
			if head < 0 {
				head = 0
			}
			m.headroom[by*l.BlocksX+bx] = head
		}
	})
}

// Frame renders display frame k: the current video frame plus the signed,
// clipped, smoothed chessboard of every Block. The returned frame is drawn
// from the multiplexer's pool; the caller owns it until it hands it back
// via Recycle (or keeps it forever — Render's contract).
func (m *Multiplexer) Frame(k int) *frame.Frame {
	if k < 0 {
		panic("core: negative display frame index")
	}
	m.refreshVideo(k)
	out := m.pool.Get(m.p.Layout.FrameW, m.p.Layout.FrameH)
	m.vframe.CloneInto(out)
	l := m.p.Layout
	sign := float32(1)
	if k%2 == 1 {
		sign = -1
	}
	ps := l.PixelSize
	// Resolve the two data frames once: workers must not touch the Stream
	// (implementations may cache or whiten per call).
	cur := m.data.DataFrame(k / m.p.Tau)
	next := m.data.DataFrame(k/m.p.Tau + 1)
	// A Block row covers a disjoint band of output pixel rows, so rows fan
	// out with no overlap and the result is bit-identical at any worker
	// count.
	parallel.For(m.p.Workers, l.BlocksY, func(by int) {
		for bx := 0; bx < l.BlocksX; bx++ {
			a := envelopeBetween(m.p, cur, next, bx, by, k)
			if a <= 0 {
				continue
			}
			if head := float64(m.headroom[by*l.BlocksX+bx]); a > head {
				a = head
			}
			if a <= 0 {
				continue
			}
			add := sign * float32(a)
			x0, y0, w, h := l.BlockRect(bx, by)
			for y := y0; y < y0+h; y++ {
				pj := y / ps
				rowBase := y * l.FrameW
				for x := x0; x < x0+w; x++ {
					if ChessOn(x/ps, pj) {
						out.Pix[rowBase+x] += add
					}
				}
			}
		}
	})
	out.Clamp(0, 255)
	return out
}

// Recycle returns a frame obtained from Frame to the multiplexer's pool
// for reuse by a later render. Call it once the frame's contents have been
// consumed (e.g. pushed onto a display, which copies them into its drive
// history); the frame must not be used afterwards.
func (m *Multiplexer) Recycle(f *frame.Frame) { m.pool.Put(f) }

// Render produces display frames [0, n) in order. The caller owns every
// returned frame (they are never recycled), so Render allocates n buffers;
// use PushTo or the channel simulator for allocation-free steady state.
func (m *Multiplexer) Render(n int) []*frame.Frame {
	frames := make([]*frame.Frame, n)
	for k := 0; k < n; k++ {
		frames[k] = m.Frame(k)
	}
	return frames
}

// PushTo renders n display frames straight onto a display simulator,
// recycling each frame once the display has copied it into its drive
// history — the steady-state loop reuses one buffer for the whole run.
func (m *Multiplexer) PushTo(d *display.Display, n int) error {
	for k := 0; k < n; k++ {
		f := m.Frame(k)
		if err := d.Push(f); err != nil {
			// The display rejected the frame without consuming it; hand it
			// back before surfacing the error or the pool leaks a buffer.
			m.Recycle(f)
			//lint:ignore hotalloc error path runs at most once, then the loop exits
			return fmt.Errorf("core: pushing frame %d: %w", k, err)
		}
		m.Recycle(f)
	}
	return nil
}
