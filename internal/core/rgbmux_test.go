package core

import (
	"math"
	"testing"

	"inframe/internal/frame"
	"inframe/internal/video"
)

func rgbTestSource(l Layout) video.RGBSource {
	base := frame.NewRGBFilled(l.FrameW, l.FrameH, 140, 160, 120)
	return &video.RGBClip{Frames: []*frame.RGB{base}, Rate: 30}
}

func TestNewRGBMultiplexerValidation(t *testing.T) {
	p := smallParams()
	if _, err := NewRGBMultiplexer(p, &video.RGBClip{
		Frames: []*frame.RGB{frame.NewRGB(4, 4)}, Rate: 30,
	}, constStream(p.Layout, nil)); err == nil {
		t.Fatal("accepted mismatched source")
	}
	bad := p
	bad.Tau = 3
	if _, err := NewRGBMultiplexer(bad, rgbTestSource(p.Layout), constStream(p.Layout, nil)); err == nil {
		t.Fatal("accepted bad params")
	}
}

// TestRGBPairFusesAndPreservesChroma: the color pair averages back to the
// original, and individual frames keep the original chroma.
func TestRGBPairFusesAndPreservesChroma(t *testing.T) {
	p := smallParams()
	l := p.Layout
	src := rgbTestSource(l)
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m, err := NewRGBMultiplexer(p, src, ones)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := m.FrameRGB(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := m.FrameRGB(1)
	if err != nil {
		t.Fatal(err)
	}
	orig := src.FrameRGB(0)
	for i := range orig.R {
		if avg := (f0.R[i] + f1.R[i]) / 2; math.Abs(float64(avg-orig.R[i])) > 1e-3 {
			t.Fatalf("R pixel %d fuses to %v, want %v", i, avg, orig.R[i])
		}
		if avg := (f0.G[i] + f1.G[i]) / 2; math.Abs(float64(avg-orig.G[i])) > 1e-3 {
			t.Fatalf("G pixel %d fuses to %v, want %v", i, avg, orig.G[i])
		}
		if avg := (f0.B[i] + f1.B[i]) / 2; math.Abs(float64(avg-orig.B[i])) > 1e-3 {
			t.Fatalf("B pixel %d fuses to %v, want %v", i, avg, orig.B[i])
		}
	}
	// Chroma of the multiplexed frame matches the original (luma-only add).
	_, cb0, cr0 := orig.YCbCr()
	_, cb1, cr1 := f0.YCbCr()
	for i := range cb0.Pix {
		if math.Abs(float64(cb1.Pix[i]-cb0.Pix[i])) > 1e-2 ||
			math.Abs(float64(cr1.Pix[i]-cr0.Pix[i])) > 1e-2 {
			t.Fatalf("chroma drifted at pixel %d", i)
		}
	}
}

// TestRGBLumaMatchesGrayPipeline: the color multiplexer's luma plane equals
// the grayscale multiplexer's output over the equivalent gray source.
func TestRGBLumaMatchesGrayPipeline(t *testing.T) {
	p := smallParams()
	l := p.Layout
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	graySrc := video.NewSolid(l.FrameW, l.FrameH, 150)
	colorSrc := video.Colorize{Src: graySrc}
	gm := newMux(t, p, graySrc, ones)
	cm, err := NewRGBMultiplexer(p, colorSrc, ones)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 5} {
		want := gm.Frame(k)
		got, err := cm.LumaFrame(k)
		if err != nil {
			t.Fatal(err)
		}
		mae, _ := frame.MAE(want, got)
		if mae > 1e-3 {
			t.Fatalf("frame %d luma MAE %v", k, mae)
		}
	}
}

// TestRGBHeadroomAcrossChannels: a block saturated in only one channel
// still limits the amplitude.
func TestRGBHeadroomAcrossChannels(t *testing.T) {
	p := smallParams()
	l := p.Layout
	// Red channel near 255, others mid: headroom = 255−250 = 5.
	base := frame.NewRGBFilled(l.FrameW, l.FrameH, 250, 128, 128)
	src := &video.RGBClip{Frames: []*frame.RGB{base}, Rate: 30}
	ones := constStream(l, func(df *DataFrame) {
		for i := range df.Bits {
			df.Bits[i] = true
		}
	})
	m, err := NewRGBMultiplexer(p, src, ones)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := m.FrameRGB(0)
	if err != nil {
		t.Fatal(err)
	}
	var maxShift float64
	for i := range f0.R {
		if d := math.Abs(float64(f0.R[i] - 250)); d > maxShift {
			maxShift = d
		}
	}
	if math.Abs(maxShift-5) > 1e-3 {
		t.Fatalf("red-channel shift %v, want clamped to headroom 5", maxShift)
	}
	// No channel leaves [0,255].
	for i := range f0.R {
		for _, v := range []float32{f0.R[i], f0.G[i], f0.B[i]} {
			if v < 0 || v > 255 {
				t.Fatalf("channel value %v out of range", v)
			}
		}
	}
}

func TestColorAdapters(t *testing.T) {
	l := smallLayout()
	gray := video.NewSolid(l.FrameW, l.FrameH, 99)
	rgb := video.Colorize{Src: gray}
	w, h := rgb.Size()
	if w != l.FrameW || h != l.FrameH || rgb.FPS() != gray.FPS() {
		t.Fatal("Colorize adapter metadata wrong")
	}
	back := video.Luma{Src: rgb}
	if v := back.Frame(0).At(1, 1); math.Abs(float64(v)-99) > 1e-3 {
		t.Fatalf("Luma(Colorize(gray)) = %v", v)
	}
	if back.FPS() != gray.FPS() {
		t.Fatal("Luma adapter FPS wrong")
	}
}

func TestColorSunRise(t *testing.T) {
	s := video.NewColorSunRise(64, 48, 3)
	f := s.FrameRGB(0)
	if f.W != 64 || f.H != 48 {
		t.Fatal("size wrong")
	}
	// Deterministic.
	g := video.NewColorSunRise(64, 48, 3).FrameRGB(0)
	for i := range f.R {
		if f.R[i] != g.R[i] {
			t.Fatal("not deterministic")
		}
	}
	// Sky is bluer than ground, ground greener than sky (tint check).
	skyB, skyG := 0.0, 0.0
	gndB, gndG := 0.0, 0.0
	n := 0
	for x := 0; x < 64; x++ {
		skyB += float64(f.B[5*64+x])
		skyG += float64(f.G[5*64+x])
		gndB += float64(f.B[44*64+x])
		gndG += float64(f.G[44*64+x])
		n++
	}
	if skyB/skyG <= gndB/gndG {
		t.Fatalf("sky not bluer than ground: sky B/G %.2f vs ground %.2f",
			skyB/skyG, gndB/gndG)
	}
	if s.FPS() != 30 {
		t.Fatal("FPS wrong")
	}
}
