package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"inframe/internal/fixed"
	"inframe/internal/frame"
	"inframe/internal/parallel"
)

// Detector selects the per-Block bit detector.
type Detector int

const (
	// DetectorEnergy is the paper's method (§3.3): smooth the Block,
	// subtract, sum absolute residual, remove the frame-wide mean.
	DetectorEnergy Detector = iota
	// DetectorMatched is an extension: correlate the Block residual with
	// the known chessboard phase (a matched filter). More robust on
	// textured content; used in ablations.
	DetectorMatched
)

// String implements fmt.Stringer.
func (d Detector) String() string {
	switch d {
	case DetectorEnergy:
		return "energy"
	case DetectorMatched:
		return "matched"
	default:
		return fmt.Sprintf("Detector(%d)", int(d))
	}
}

// Normalize selects the texture-normalization strategy of the receiver.
type Normalize int

const (
	// NormalizeBlockBaseline (default) removes a per-Block temporal
	// baseline: the minimum aggregated energy the Block showed across the
	// decoded data frames. Static video texture contributes the same
	// energy whether the Block carries a 0 or a 1, while the chessboard
	// toggles with the payload, so the minimum estimates the texture
	// floor — background subtraction for the §3.3 "high-texture areas"
	// workaround. Requires payloads that vary across frames (the paper
	// uses pseudo-random data).
	NormalizeBlockBaseline Normalize = iota
	// NormalizeFrameMean removes only the frame-wide mean energy — the
	// most literal reading of the paper's "remove the mean absolute
	// difference". Kept for the ablation; it confuses strongly textured
	// content with data.
	NormalizeFrameMean
)

// String implements fmt.Stringer.
func (n Normalize) String() string {
	switch n {
	case NormalizeBlockBaseline:
		return "block-baseline"
	case NormalizeFrameMean:
		return "frame-mean"
	default:
		return fmt.Sprintf("Normalize(%d)", int(n))
	}
}

// ReceiverConfig describes the InFrame receiver.
type ReceiverConfig struct {
	// Layout is the transmitter's data frame geometry in display pixels.
	Layout Layout
	// CaptureW, CaptureH are the camera frame dimensions; Block
	// rectangles are scaled from display to capture coordinates (the
	// paper's fixed 50 cm setup implies known registration).
	CaptureW, CaptureH int
	// Tau and RefreshHz recover the data frame timing.
	Tau       int
	RefreshHz float64
	// Threshold is T: a Block reads 1 when its normalized noise score
	// exceeds it (scores are frame-mean-removed, so T is near 0).
	Threshold float64
	// MinConfidence is the absolute hysteresis half-width (in energy
	// units): Blocks whose score lies within ±MinConfidence of the
	// threshold are "undecoded", making their GOB unavailable. Under the
	// adaptive stage it acts as the floor of the relative band, which is
	// what makes larger amplitudes decode more Blocks.
	MinConfidence float64
	// Adaptive switches the decision stage to per-Block temporal
	// self-calibration: across the decoded run, each Block's bit-0 and
	// bit-1 energy levels are estimated as its own minimum and maximum
	// aggregated energy, and the threshold sits midway between them. The
	// scheme is invariant to static texture, vignetting and per-region
	// attenuation, and Blocks that never show a usable swing (saturated
	// areas, constant payload bits) come back undecided rather than
	// wrong. Threshold is ignored when set; MinConfidence becomes the
	// absolute band floor. Requires payloads that vary across frames
	// (the paper uses pseudo-random data).
	Adaptive bool
	// AdaptiveBand is the hysteresis half-width as a fraction of the
	// cluster gap (used when Adaptive is set).
	AdaptiveBand float64
	// MinGap is the smallest per-Block bit-0/bit-1 level separation (in
	// energy units) the adaptive stage accepts as a live signal; Blocks
	// below it are undecodable (saturated areas where the clipping
	// adjustment crushed the chessboard, or captures whose exposure
	// integrated a full complementary pair).
	MinGap float64
	// Normalize selects how raw per-Block noise energies are normalized
	// before the decision stage (§3.3's high-texture workaround).
	Normalize Normalize
	// Exposure and ReadoutTime describe the camera's per-row timing (in
	// seconds). When both are known (> 0 exposure), the receiver applies
	// the §3.3 rolling-shutter counter-measure: rows whose exposure is
	// known to straddle a complementary sign flip are compensated by the
	// predicted attenuation, or skipped when mostly cancelled. Zero
	// disables the row-timing model.
	Exposure    float64
	ReadoutTime float64
	// SmoothRadius is the box-blur radius of the §3.3 smoothing step.
	SmoothRadius int
	// Detector selects the bit detector.
	Detector Detector
	// Calib maps display coordinates into capture coordinates. Nil means
	// the capture frames the display exactly (the paper's fixed tripod
	// setup); a registration pass (internal/register) supplies a mapping
	// when the camera is offset or zoomed.
	Calib *CaptureMapping
	// Pose is the projective display→capture map of an off-axis camera
	// (tilt, rotation, distance), as solved by the projective registration
	// pass (register.CalibrateProjective). Nil keeps the rigid axis-aligned
	// path. An exactly axis-aligned Pose collapses to a CaptureMapping and
	// takes the pre-homography decode path bit-identically — the frontal
	// fast path; anything else makes every measurement rectify its capture
	// through the pose's inverse warp (pool-borrowed plane) and decode the
	// rectified view with spatially aggregated, center-weighted Block
	// statistics. When both Pose and Calib are set, Pose wins: the
	// projective solve already subsumes translation and zoom.
	Pose *frame.Homography
	// Workers bounds the decode worker pool: per-capture energy
	// measurement, per-Block calibration and per-frame decision stages fan
	// out across this many goroutines. 0 means GOMAXPROCS; 1 forces the
	// sequential path. Decodes are bit-identical at any worker count (work
	// is partitioned by capture/Block/frame index and merged by position).
	Workers int
	// Pool supplies the receiver's per-capture scratch frames (the
	// smoothing plane of the §3.3 detector and its blur scratch); each is
	// Put back before the measurement returns, so steady-state decoding
	// allocates no frame buffers. Nil means a private pool. Share one pool
	// with the camera to reuse the same buffers across the whole pipeline.
	Pool *frame.Pool
	// MinCaptureQuality gates individual captures out of the decode: a
	// scored capture whose link quality (block coverage × shutter quality
	// × unclipped fraction, see DecodeReport's quality timeline) falls
	// below this threshold is excluded from aggregation — one garbage
	// capture (occluded, saturated, glitched) then degrades only itself,
	// not every data frame it overlaps. 0 disables the gate; captures are
	// still scored when a report is requested.
	MinCaptureQuality float64
	// RecalibrateEvery splits the adaptive per-Block level calibration
	// into windows of this many data frames, recalibrated independently:
	// slow ambient ramps and auto-exposure gain drift then re-centre each
	// window's thresholds instead of smearing one global level estimate.
	// 0 (the default) calibrates once over the whole run — bit-identical
	// to the pre-windowed decoder. The trailing remainder joins the final
	// window, so no window is ever shorter than the configured length.
	// Windows shorter than ~8 frames starve the percentile estimates.
	RecalibrateEvery int
}

// CaptureMapping is an axis-aligned affine map from display pixel
// coordinates to capture pixel coordinates:
//
//	capX = OffX + dispX·ScaleX,  capY = OffY + dispY·ScaleY.
//
// Rotation is out of scope: the registration experiments cover the
// translation/zoom misalignments a hand-held capture of a full screen
// produces, not arbitrary perspective.
type CaptureMapping struct {
	ScaleX, ScaleY float64
	OffX, OffY     float64
}

// FullFrame returns the identity framing for the given sizes.
func FullFrame(l Layout, capW, capH int) CaptureMapping {
	return CaptureMapping{
		ScaleX: float64(capW) / float64(l.FrameW),
		ScaleY: float64(capH) / float64(l.FrameH),
	}
}

// Apply maps a display coordinate to capture coordinates.
func (m CaptureMapping) Apply(x, y float64) (float64, float64) {
	return m.OffX + x*m.ScaleX, m.OffY + y*m.ScaleY
}

// AxisAlignedHomography lifts a CaptureMapping into homography form.
func AxisAlignedHomography(m CaptureMapping) frame.Homography {
	return frame.AxisAlignedHomography(m.ScaleX, m.ScaleY, m.OffX, m.OffY)
}

// Validate reports whether the mapping is usable.
func (m CaptureMapping) Validate() error {
	if m.ScaleX <= 0 || m.ScaleY <= 0 {
		return fmt.Errorf("core: mapping scales must be positive, got %v, %v", m.ScaleX, m.ScaleY)
	}
	return nil
}

// DefaultReceiverConfig returns a receiver matched to transmitter params and
// a capture size, with detection constants calibrated for the simulated
// channel.
func DefaultReceiverConfig(p Params, capW, capH int) ReceiverConfig {
	return ReceiverConfig{
		Layout:        p.Layout,
		CaptureW:      capW,
		CaptureH:      capH,
		Tau:           p.Tau,
		RefreshHz:     120,
		Threshold:     0,
		MinConfidence: 0.3,
		Adaptive:      true,
		AdaptiveBand:  0.1,
		MinGap:        0.6,
		SmoothRadius:  1,
		Detector:      DetectorEnergy,
	}
}

// Validate reports whether the configuration is usable.
func (c ReceiverConfig) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if c.CaptureW <= 0 || c.CaptureH <= 0 {
		return fmt.Errorf("core: invalid capture size %dx%d", c.CaptureW, c.CaptureH)
	}
	if c.Tau < 2 || c.Tau%2 != 0 {
		return fmt.Errorf("core: Tau must be even and >= 2, got %d", c.Tau)
	}
	if c.RefreshHz <= 0 {
		return fmt.Errorf("core: RefreshHz must be positive")
	}
	if c.MinConfidence < 0 {
		return fmt.Errorf("core: MinConfidence must be non-negative")
	}
	if c.Adaptive && (c.AdaptiveBand <= 0 || c.AdaptiveBand >= 0.5) {
		return fmt.Errorf("core: AdaptiveBand must be in (0,0.5), got %v", c.AdaptiveBand)
	}
	if c.MinGap < 0 {
		return fmt.Errorf("core: MinGap must be non-negative")
	}
	if c.SmoothRadius < 1 {
		return fmt.Errorf("core: SmoothRadius must be >= 1")
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	if c.MinCaptureQuality < 0 || c.MinCaptureQuality > 1 {
		return fmt.Errorf("core: MinCaptureQuality must be in [0,1], got %v", c.MinCaptureQuality)
	}
	if c.RecalibrateEvery < 0 {
		return fmt.Errorf("core: RecalibrateEvery must be non-negative, got %d", c.RecalibrateEvery)
	}
	return nil
}

// Receiver demultiplexes captured frames back into data frames.
type Receiver struct {
	cfg  ReceiverConfig
	pool *frame.Pool
	// calib is the effective axis-aligned display→capture mapping: the
	// configured Calib (or full-frame), or the collapsed form of an
	// axis-aligned Pose. In projective mode it maps display coordinates
	// into the *rectified* plane instead, which is the same coordinate
	// system by construction.
	calib CaptureMapping
	// rectify, when non-nil, is the rectified→capture homography
	// Pose ∘ calib⁻¹: every measurement inverse-warps its capture through
	// it into a pool-borrowed frontal plane before the Block scan.
	rectify *frame.Homography
	// rectW, rectH are the dimensions of the plane the Block scan runs on:
	// the capture itself on the rigid path, the display-resolution
	// rectified plane in projective mode.
	rectW, rectH int
	// minGap, minConf are the effective decision floors: the configured
	// MinGap/MinConfidence on the rigid path, scaled by the predicted
	// resample attenuation (warpAttenuation) in projective mode, where the
	// camera sampling plus the rectifying warp shrink the whole energy
	// scale that the absolute floors were calibrated for.
	minGap, minConf float64
	// per-block capture rectangles, precomputed; zero rects mark Blocks
	// outside the camera's view
	rects   []capRect
	visible int
	// intScratch recycles the integer-kernel window-sum buffers across
	// measurements. MeasureCaptureAt runs concurrently across captures
	// (DecodeCaptures fans out per capture on one receiver), so the scratch
	// is a sync.Pool rather than a plain field.
	intScratch sync.Pool
}

type capRect struct{ x0, y0, w, h int }

// intBufs is one measurement's integer scratch: the full-plane window sums
// and the column-pass scratch of fixed.WindowSums.
type intBufs struct {
	sums, col []int32
}

// getIntBufs draws (or grows) the integer scratch for an nPix-pixel,
// h-row capture.
func (r *Receiver) getIntBufs(nPix, h int) *intBufs {
	b, _ := r.intScratch.Get().(*intBufs)
	if b == nil || len(b.sums) < nPix || len(b.col) < h {
		b = &intBufs{sums: make([]int32, nPix), col: make([]int32, h)}
	}
	return b
}

// NewReceiver builds a receiver and precomputes Block→capture geometry.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := cfg.Layout
	calib := FullFrame(l, cfg.CaptureW, cfg.CaptureH)
	if cfg.Calib != nil {
		if err := cfg.Calib.Validate(); err != nil {
			return nil, err
		}
		calib = *cfg.Calib
	}
	var rectify *frame.Homography
	if cfg.Pose != nil {
		if err := cfg.Pose.Validate(); err != nil {
			return nil, err
		}
		if sx, sy, ox, oy, ok := cfg.Pose.AxisAligned(); ok {
			// Frontal fast path: an axis-aligned pose IS a CaptureMapping,
			// and routing it through the rigid decoder keeps clean captures
			// bit-identical to the pre-homography receiver — no silent
			// resampling.
			calib = CaptureMapping{ScaleX: sx, ScaleY: sy, OffX: ox, OffY: oy}
			if err := calib.Validate(); err != nil {
				return nil, err
			}
		} else {
			// Projective mode: decode a rectified view at native display
			// resolution — "what the display showed", frontal. The identity
			// calib makes display coordinates the rectified coordinates, so
			// the warp that *reads* the real capture from the rectified
			// plane is the pose itself. Rectifying at display resolution
			// (not capture resolution) matters when the camera undersamples
			// the panel: a scaled-down rectified plane would shrink the
			// Pixel-cell chessboard toward the resampling Nyquist limit and
			// erase the modulation before the Block scan ever sees it.
			calib = CaptureMapping{ScaleX: 1, ScaleY: 1}
			hr := *cfg.Pose
			rectify = &hr
		}
	}
	pool := cfg.Pool
	if pool == nil {
		pool = frame.NewPool()
	}
	rectW, rectH := cfg.CaptureW, cfg.CaptureH
	minGap, minConf := cfg.MinGap, cfg.MinConfidence
	if rectify != nil {
		rectW, rectH = l.FrameW, l.FrameH
		att := warpAttenuation(l, cfg.CaptureW, cfg.CaptureH, *cfg.Pose, cfg.SmoothRadius, pool)
		minGap *= att
		minConf *= att
	}
	r := &Receiver{cfg: cfg, pool: pool, calib: calib, rectify: rectify,
		rectW: rectW, rectH: rectH, minGap: minGap, minConf: minConf,
		rects: make([]capRect, l.NumBlocks())}
	for by := 0; by < l.BlocksY; by++ {
		for bx := 0; bx < l.BlocksX; bx++ {
			x0, y0, w, h := l.BlockRect(bx, by)
			fx0, fy0 := calib.Apply(float64(x0), float64(y0))
			fx1, fy1 := calib.Apply(float64(x0+w), float64(y0+h))
			//lint:ignore hotalloc rect-corner rounding runs once per Block at receiver construction, not per pixel
			cx0 := int(math.Round(fx0))
			cy0 := int(math.Round(fy0)) //lint:ignore hotalloc same construction-time rounding
			cx1 := int(math.Round(fx1)) //lint:ignore hotalloc same construction-time rounding
			cy1 := int(math.Round(fy1))
			// Inset to keep resample/blur bleed from neighbouring Blocks
			// out of the measurement.
			if cx1-cx0 > 6 {
				cx0++
				cx1--
			}
			if cy1-cy0 > 6 {
				cy0++
				cy1--
			}
			if cx0 < 0 {
				cx0 = 0
			}
			if cy0 < 0 {
				cy0 = 0
			}
			if cx1 > rectW {
				cx1 = rectW
			}
			if cy1 > rectH {
				cy1 = rectH
			}
			if cx1-cx0 < 2 || cy1-cy0 < 2 {
				// Block outside (or nearly outside) the camera's view:
				// it stays permanently undecodable rather than failing
				// the whole receiver — a zoomed-in capture legitimately
				// misses border Blocks.
				r.rects[by*l.BlocksX+bx] = capRect{}
				continue
			}
			r.rects[by*l.BlocksX+bx] = capRect{x0: cx0, y0: cy0, w: cx1 - cx0, h: cy1 - cy0}
			r.visible++
		}
	}
	if r.visible == 0 {
		return nil, fmt.Errorf("core: no block maps into the capture")
	}
	return r, nil
}

// warpAttenuation predicts how much chessboard residual energy survives the
// projective receiver's resampling chain — the camera's capture-resolution
// sampling followed by the rectifying inverse warp — relative to reading the
// displayed pattern directly. The probe is pure arithmetic on the
// configuration: a synthetic full-amplitude chessboard is warped from the
// display plane into the capture and back into the rectified plane, and the
// §3.3 blur-subtract residual of the round trip is compared against the
// pristine pattern's. The ratio rescales the receiver's absolute decision
// floors (MinGap, MinConfidence), which are calibrated against unattenuated
// cells: an undersampling camera at a steep pose can shrink the whole energy
// scale several-fold without losing the signal, and unscaled floors would
// reject every Block as dead. Clamped to [0.02, 1] so a degenerate probe can
// neither zero the floors nor inflate them.
func warpAttenuation(l Layout, capW, capH int, pose frame.Homography, smoothRadius int, pool *frame.Pool) float64 {
	inv, err := pose.Invert()
	if err != nil {
		return 1 // Validate already vouched for the pose; stay neutral
	}
	probe := pool.Get(l.FrameW, l.FrameH)
	defer pool.Put(probe)
	p := l.PixelSize
	for y := 0; y < l.FrameH; y++ {
		for x := 0; x < l.FrameW; x++ {
			if ChessOn(x/p, y/p) {
				probe.Pix[y*l.FrameW+x] = 200
			} else {
				probe.Pix[y*l.FrameW+x] = 55
			}
		}
	}
	cap_ := pool.Get(capW, capH)
	defer pool.Put(cap_)
	frame.WarpInto(probe, cap_, inv)
	rect := pool.Get(l.FrameW, l.FrameH)
	defer pool.Put(rect)
	frame.WarpInto(cap_, rect, pose)
	ideal := blurResidual(probe, smoothRadius, pool)
	if !(ideal > 0) {
		return 1
	}
	att := blurResidual(rect, smoothRadius, pool) / ideal
	if att < 0.02 {
		return 0.02
	}
	if att > 1 {
		return 1
	}
	return att
}

// blurResidual is the frame-mean §3.3 detector statistic: mean |pix − blur|.
func blurResidual(f *frame.Frame, radius int, pool *frame.Pool) float64 {
	sm := pool.Get(f.W, f.H)
	defer pool.Put(sm)
	frame.BoxBlurInto(f, sm, radius, pool)
	var acc float64
	for i, v := range f.Pix {
		acc += math.Abs(float64(v - sm.Pix[i]))
	}
	return acc / float64(len(f.Pix))
}

// Config returns the receiver configuration.
func (r *Receiver) Config() ReceiverConfig { return r.cfg }

// DataFramePeriod returns the duration of one data frame in seconds.
func (r *Receiver) DataFramePeriod() float64 {
	return float64(r.cfg.Tau) / r.cfg.RefreshHz
}

// rowAttenuationFloor is the predicted complementary-cancellation factor
// below which a sensor row is dropped outright; rows above it enter the
// block estimate with SNR weighting (weight ∝ attenuation), which keeps
// mildly straddled rows useful without amplifying the noise energy of
// nearly-cancelled ones. The weighting bias is constant across data frames
// (row timing repeats), so the per-Block baseline normalization removes it.
const rowAttenuationFloor = 0.15

// rowWeights returns, for each capture row, the predicted chessboard
// attenuation caused by the row's exposure straddling a complementary sign
// flip (1 = clean, 0 = dropped). t0 is the first row's exposure start; rows
// read out uniformly over ReadoutTime. Returns nil when the timing model is
// disabled or the capture time is unknown (NaN).
func (r *Receiver) rowWeights(t0 float64) []float64 {
	if r.cfg.Exposure <= 0 || math.IsNaN(t0) {
		return nil
	}
	T := 1 / r.cfg.RefreshHz
	rowDt := 0.0
	if r.cfg.CaptureH > 1 {
		rowDt = r.cfg.ReadoutTime / float64(r.cfg.CaptureH)
	}
	ws := make([]float64, r.cfg.CaptureH)
	for y := range ws {
		start := t0 + float64(y)*rowDt
		// Exact range reduction: start may sit thousands of refresh periods
		// into the run, where a Trunc(start/T)*T rewrite loses the low bits
		// that decide which side of a sign flip the row landed on.
		//lint:ignore hotalloc one Mod per sensor row per measurement, not per pixel, and exact reduction is load-bearing
		phase := math.Mod(start, T)
		if phase < 0 {
			phase += T
		}
		remain := T - phase
		if remain >= r.cfg.Exposure {
			ws[y] = 1
			continue
		}
		// Fraction w of the exposure before the sign flip: residual
		// chessboard amplitude is |2w−1| of the steady value.
		w := remain / r.cfg.Exposure
		att := math.Abs(2*w - 1)
		if att < rowAttenuationFloor {
			ws[y] = 0
		} else {
			ws[y] = att
		}
	}
	return ws
}

// MeasureCapture computes the raw per-Block noise energy of one captured
// frame (§3.3: smooth, subtract, sum absolute residual) without row-timing
// information. Energies are indexed by·BlocksX+bx.
func (r *Receiver) MeasureCapture(f *frame.Frame) []float64 {
	scores, _ := r.MeasureCaptureAt(f, math.NaN())
	return scores
}

// MeasureCaptureAt is MeasureCapture with the capture's exposure start time,
// enabling the rolling-shutter row compensation when the receiver's timing
// model is configured. Blocks whose every row was dropped yield NaN. The
// second result is a per-Block measurement quality in (0,1]: the fraction of
// the block's row-weight mass that survived the shutter model — low quality
// means a noisier estimate.
func (r *Receiver) MeasureCaptureAt(f *frame.Frame, t0 float64) ([]float64, []float64) {
	if f.W != r.cfg.CaptureW || f.H != r.cfg.CaptureH {
		panic(fmt.Sprintf("core: capture %dx%d does not match receiver %dx%d",
			f.W, f.H, r.cfg.CaptureW, r.cfg.CaptureH))
	}
	// Projective mode: rectify the capture into a pool-borrowed frontal
	// plane first, then run the unchanged Block scan on it — the warp, not
	// the scan, absorbs the pose. The plane is scratch (returned before this
	// measurement ends), and the warp depends only on (capture, homography),
	// so pose-mode decodes stay bit-identical at any worker count.
	if r.rectify != nil {
		rectified := r.pool.Get(r.rectW, r.rectH)
		frame.WarpInto(f, rectified, *r.rectify)
		scores, quality := r.measureOn(rectified, t0, true)
		r.pool.Put(rectified)
		return scores, quality
	}
	return r.measureOn(f, t0, false)
}

// measureOn runs the §3.3 Block scan over one plane — the capture itself on
// the rigid path, the pool-borrowed rectified plane in projective mode
// (warped = true, which adds the spatial-aggregation tent weighting).
func (r *Receiver) measureOn(f *frame.Frame, t0 float64, warped bool) ([]float64, []float64) {
	scores := make([]float64, len(r.rects))
	quality := make([]float64, len(r.rects))
	// Integer fast path (DESIGN.md §5j): an 8-bit-quantized capture under
	// the energy detector measures through exact integer window sums
	// instead of the float box blur — Σ|pix·(2r+1)² − windowsum| / (2r+1)²
	// is the blur-subtract residual without the float rounding of the
	// two-pass blur. Matched-detector and non-integral (e.g. analog-gain
	// impaired) captures keep the float path. The radius bounds restate
	// ReceiverConfig.Validate so the fixed.WindowSums //range contract is
	// provable at this call site.
	sr := r.cfg.SmoothRadius
	var (
		sm    *frame.Frame
		bufs  *intBufs
		scale int32 = 1
	)
	if r.cfg.Detector == DetectorEnergy && sr >= 1 && sr <= 128 && fixed.IsIntegral8(f.Pix) {
		bufs = r.getIntBufs(len(f.Pix), f.H)
		fixed.WindowSums(f.Pix, f.W, f.H, sr, bufs.sums, bufs.col)
		side := int32(2*sr + 1)
		scale = side * side
	} else {
		// The smoothing plane is pure scratch: borrowed from the pool for
		// the scan below and returned before this measurement ends.
		sm = r.pool.Get(f.W, f.H)
		frame.BoxBlurInto(f, sm, r.cfg.SmoothRadius, r.pool)
	}
	weights := r.rowWeights(t0)
	l := r.cfg.Layout
	// Chessboard phase in capture coordinates, for the matched detector:
	// display Pixel (x/p, y/p) found by inverting the calibration map (in
	// projective mode the scan runs on the rectified plane, where the
	// axis-aligned calib is the correct map by construction).
	calib := r.calib
	sxInv := 1 / calib.ScaleX
	syInv := 1 / calib.ScaleY
	offX, offY := calib.OffX, calib.OffY
	for i, rect := range r.rects {
		if rect.w == 0 || rect.h == 0 {
			scores[i] = math.NaN()
			continue
		}
		var acc float64
		var n float64
		// Shutter weights are indexed by *sensor* row. On the rigid path the
		// scan plane is the sensor; in projective mode each rectified row
		// images from the sensor row the pose maps it to (taken at the
		// Block's center column — row-timing varies slowly across a Block).
		cxMid := float64(rect.x0) + float64(rect.w)/2
		for y := rect.y0; y < rect.y0+rect.h; y++ {
			rowW := 1.0
			if weights != nil {
				wy := y
				if warped {
					_, fy, ok := r.rectify.Apply(cxMid, float64(y)+0.5)
					if !ok {
						continue
					}
					wy = int(fy)
					if wy < 0 || wy >= len(weights) {
						// The row reads only overscan zeros; skip it.
						continue
					}
				}
				rowW = weights[wy]
				//lint:ignore floateq rowWeights assigns the exact sentinel 0 below the attenuation floor; this tests that sentinel
				if rowW == 0 {
					continue
				}
			}
			if warped {
				// Spatial-aggregation weighting for residual warp: a tent
				// over the Block's rows, [0.5, 1] with the peak at the
				// center. Registration errors displace a Block's edges
				// first, so edge rows carry the neighbour-mixing risk;
				// down-weighting them degrades the estimate smoothly with
				// residual warp instead of cliffing, and the SNR-style
				// Σw·m / Σw² estimator below stays unbiased for clean rows.
				fr := float64(2*(y-rect.y0)+1)/float64(rect.h) - 1
				rowW *= 1 - 0.5*math.Abs(fr)
			}
			base := y * f.W
			var rowAcc float64
			if bufs != nil {
				rs := base + rect.x0
				rowAcc = float64(fixed.RowAbsEnergy(f.Pix[rs:rs+rect.w], bufs.sums[rs:rs+rect.w], scale)) / float64(scale)
			} else {
				for x := rect.x0; x < rect.x0+rect.w; x++ {
					d := float64(f.Pix[base+x] - sm.Pix[base+x])
					switch r.cfg.Detector {
					case DetectorMatched:
						dx := int((float64(x)-offX)*sxInv) / l.PixelSize
						dy := int((float64(y)-offY)*syInv) / l.PixelSize
						if ChessOn(dx, dy) {
							rowAcc += d
						} else {
							rowAcc -= d
						}
					default:
						rowAcc += math.Abs(d)
					}
				}
			}
			// SNR weighting: estimate = Σ w·m / Σ w², which reduces to the
			// plain mean when every row is clean (w = 1).
			acc += rowAcc * rowW
			n += float64(rect.w) * rowW * rowW
		}
		// n sums strictly positive terms (rect.w · rowW², rowW ≥ the
		// attenuation floor), so it is exactly zero iff every row was
		// skipped — the division guard needs the exact test.
		//lint:ignore floateq divide-by-zero guard on a sum of strictly positive terms
		if n == 0 {
			scores[i] = math.NaN()
			quality[i] = 0
			continue
		}
		s := acc / n
		if r.cfg.Detector == DetectorMatched {
			s = math.Abs(s)
		}
		scores[i] = s
		quality[i] = n / float64(rect.w*rect.h)
	}
	if bufs != nil {
		r.intScratch.Put(bufs)
	}
	r.pool.Put(sm) // nil on the integer path: a no-op by the Put contract
	return scores, quality
}

// BlockDecision is the tri-state outcome of a Block detector.
type BlockDecision int8

const (
	// BlockUndecided means the score fell inside the hysteresis band.
	BlockUndecided BlockDecision = iota
	// BlockZero is a confidently decoded 0.
	BlockZero
	// BlockOne is a confidently decoded 1.
	BlockOne
)

// GOBResult summarizes one Group of Blocks of one decoded data frame.
type GOBResult struct {
	GX, GY int
	// Available: every component Block was confidently decoded (§4's
	// "available GOB").
	Available bool
	// ParityOK: for available GOBs, whether the XOR parity held.
	ParityOK bool
	// Cause classifies the erasure: CauseNone for delivered GOBs, else
	// the worst failure among the GOB's Blocks (or CauseParity when every
	// Block decoded but the parity failed).
	Cause ErasureCause
}

// FrameDecode is the decoded form of one data frame.
type FrameDecode struct {
	// Index is the data frame index.
	Index int
	// Captures is how many captured frames contributed.
	Captures int
	// Bits holds the per-Block decisions (threshold sign), defined even
	// for undecided Blocks.
	Bits *DataFrame
	// Decided flags which Blocks cleared the confidence band.
	Decided []bool
	// BlockCauses records, per Block, why it stayed undecided (CauseNone
	// for decided Blocks).
	BlockCauses []ErasureCause
	// GOBs holds per-GOB availability, parity and erasure-cause outcomes.
	GOBs []GOBResult
}

// AvailableGOBs counts available GOBs.
func (fd *FrameDecode) AvailableGOBs() int {
	n := 0
	for _, g := range fd.GOBs {
		if g.Available {
			n++
		}
	}
	return n
}

// ErroneousGOBs counts available GOBs that failed parity.
func (fd *FrameDecode) ErroneousGOBs() int {
	n := 0
	for _, g := range fd.GOBs {
		if g.Available && !g.ParityOK {
			n++
		}
	}
	return n
}

// cluster2 estimates the bit-0 and bit-1 score levels robustly as the 20th
// and 80th percentiles of the finite score distribution. With roughly
// balanced random payloads the percentiles land inside the two clusters,
// and — unlike k-means — the estimate is immune to a minority tail of
// strongly textured outlier blocks. Degenerate inputs (no finite scores,
// all-equal scores) return equal levels; callers must treat a non-positive
// gap as "nothing decodable", never as a usable threshold.
func cluster2(scores []float64) (c0, c1 float64) {
	clean := make([]float64, 0, len(scores))
	for _, s := range scores {
		if !math.IsNaN(s) && !math.IsInf(s, 0) {
			clean = append(clean, s)
		}
	}
	if len(clean) == 0 {
		return 0, 0
	}
	sort.Float64s(clean)
	pct := func(q float64) float64 {
		return clean[int(q*float64(len(clean)-1))]
	}
	return pct(0.20), pct(0.80)
}

// DecodeScores converts accumulated per-Block scores into a FrameDecode,
// applying the decision stage (fixed threshold+hysteresis, or adaptive
// cluster-relative decision) and per-GOB parity.
// DecodeScores converts per-Block scores into a FrameDecode. quality may be
// nil (all blocks at full quality); low-quality blocks get a proportionally
// wider hysteresis band, since their estimates carry more noise.
func (r *Receiver) DecodeScores(index int, scores []float64, quality []float64, captures int) *FrameDecode {
	l := r.cfg.Layout
	fd := &FrameDecode{
		Index:       index,
		Captures:    captures,
		Bits:        NewDataFrame(l),
		Decided:     make([]bool, l.NumBlocks()),
		BlockCauses: make([]ErasureCause, l.NumBlocks()),
	}
	threshold := r.cfg.Threshold
	band := r.minConf
	if r.cfg.Adaptive && len(scores) > 1 {
		c0, c1 := cluster2(scores)
		gap := c1 - c0
		threshold = (c0 + c1) / 2
		band = r.cfg.AdaptiveBand * gap
		if band < r.minConf {
			band = r.minConf
		}
		// !(gap > 0) also catches NaN: a degenerate frame (all-equal or
		// all-unusable scores — e.g. a black video whose δ the clipping
		// adjustment crushed to nothing) must come back all-unavailable,
		// not as a zero-width threshold that "confidently" decodes noise.
		if !(gap > 0) || gap < r.minGap {
			band = math.Inf(1) // degenerate frame: nothing decodable
		}
		if math.IsNaN(threshold) {
			threshold = 0
			band = math.Inf(1)
		}
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			fd.Bits.Bits[i] = false
			fd.Decided[i] = false
			fd.BlockCauses[i] = CauseNoSignal
			continue
		}
		blockBand := band
		if quality != nil && quality[i] > 0 && quality[i] < 1 {
			blockBand = band / math.Sqrt(quality[i])
		}
		fd.Bits.Bits[i] = s > threshold
		fd.Decided[i] = math.Abs(s-threshold) >= blockBand
		if !fd.Decided[i] {
			if math.IsInf(blockBand, 1) {
				// The degenerate-frame sentinel: no usable swing anywhere.
				fd.BlockCauses[i] = CauseNoSwing
			} else {
				fd.BlockCauses[i] = CauseLowConfidence
			}
		}
	}
	buildGOBs(fd, l)
	return fd
}

// buildGOBs derives the per-GOB availability, parity and erasure-cause
// summary from a frame's Block decisions — the single GOB aggregation every
// decode path (batch, adaptive, streaming, empty) runs through. An erased
// GOB reports the worst cause among its undecided Blocks; an available GOB
// failing parity reports CauseParity.
func buildGOBs(fd *FrameDecode, l Layout) {
	gobsX, gobsY := l.GOBsX(), l.GOBsY()
	gobs := make([]GOBResult, 0, gobsX*gobsY)
	for gy := 0; gy < gobsY; gy++ {
		for gx := 0; gx < gobsX; gx++ {
			res := GOBResult{GX: gx, GY: gy, Available: true}
			for _, blk := range l.GOBBlocks(gx, gy) {
				j := blk[1]*l.BlocksX + blk[0]
				if fd.Decided[j] {
					continue
				}
				res.Available = false
				if fd.BlockCauses != nil && fd.BlockCauses[j] > res.Cause {
					res.Cause = fd.BlockCauses[j]
				} else if fd.BlockCauses == nil && res.Cause < CauseLowConfidence {
					res.Cause = CauseLowConfidence
				}
			}
			if res.Available {
				res.ParityOK = fd.Bits.ParityOK(gx, gy)
				if !res.ParityOK {
					res.Cause = CauseParity
				}
			}
			gobs = append(gobs, res)
		}
	}
	fd.GOBs = gobs
}

// steadyWindow returns the span of mid-exposure times for which a capture
// of exposure e sees data frame d at full amplitude: the envelope is steady
// over [0, τ/2) of the period (the previous transition completes exactly at
// the boundary, §3.2), so a capture fits when its whole exposure lies
// inside [0, P/2]. If the exposure is too long for any fully-steady
// placement, the window degrades gracefully to the center of the first
// half.
func (r *Receiver) steadyWindow(d int, exposure float64) (t0, t1 float64) {
	period := r.DataFramePeriod()
	start := float64(d) * period
	lo := exposure / 2
	hi := period/2 - exposure/2
	if hi < lo {
		mid := period / 4
		return start + mid, start + mid
	}
	return start + lo, start + hi
}

// DecodeCaptures demultiplexes a captured sequence (frames plus exposure
// start times) into data frames 0..nFrames-1, using the receiver's timing
// model to select the captures whose mid-exposure falls in each data
// frame's steady window. Data frames observed by no capture yield a
// FrameDecode with zero captures and no available GOBs.
//
// Decoding is two-pass: raw per-Block energies are first aggregated per
// data frame, then normalized across frames (per-Block temporal baseline or
// frame mean, per the configuration) before the per-frame decision stage.
//
// The expensive stages fan out across the configured workers — energy
// measurement per capture, then decision per data frame — with every
// intermediate merged by index, so the result is bit-identical to a
// sequential decode.
func (r *Receiver) DecodeCaptures(caps []*frame.Frame, times []float64, exposure float64, nFrames int) []*FrameDecode {
	dec, _ := r.decodeCaptures(caps, times, exposure, nFrames, false)
	return dec
}

// DecodeCapturesReport is DecodeCaptures plus the graceful-degradation
// companion report: the per-capture link-quality timeline, gap and resync
// accounting, and (through the frames' GOB causes) the erasure breakdown.
// The decoded frames are identical to DecodeCaptures' — the report is an
// observation layer, not a different decoder — except where the
// MinCaptureQuality gate excludes captures, which applies to both entry
// points equally.
func (r *Receiver) DecodeCapturesReport(caps []*frame.Frame, times []float64, exposure float64, nFrames int) ([]*FrameDecode, *DecodeReport) {
	return r.decodeCaptures(caps, times, exposure, nFrames, true)
}

func (r *Receiver) decodeCaptures(caps []*frame.Frame, times []float64, exposure float64, nFrames int, wantReport bool) ([]*FrameDecode, *DecodeReport) {
	if len(caps) != len(times) {
		panic("core: captures and times length mismatch")
	}
	nBlocks := r.cfg.Layout.NumBlocks()
	// Selection pass (cheap, pure timing): which captures contribute to
	// which data frame.
	selected := make([][]int, nFrames)
	neededSet := make([]bool, len(caps))
	for d := 0; d < nFrames; d++ {
		t0, t1 := r.steadyWindow(d, exposure)
		for i, t := range times {
			mid := t + exposure/2
			if mid < t0 || mid > t1 {
				continue
			}
			selected[d] = append(selected[d], i)
			neededSet[i] = true
		}
	}
	needed := make([]int, 0, len(caps))
	for i, n := range neededSet {
		if n {
			needed = append(needed, i)
		}
	}
	// Measurement pass: per-capture Block energy scans are independent, so
	// they fan out; each worker writes only its capture's slot. Link
	// quality rides along when the gate or a report needs it — a pure
	// observation, so the clean path's decode is untouched by it.
	measured := make([][]float64, len(caps))
	qualities := make([][]float64, len(caps))
	gating := r.cfg.MinCaptureQuality > 0
	var capQuality []float64
	if wantReport || gating {
		capQuality = make([]float64, len(caps))
	}
	parallel.For(r.cfg.Workers, len(needed), func(j int) {
		i := needed[j]
		measured[i], qualities[i] = r.MeasureCaptureAt(caps[i], times[i])
		if capQuality != nil {
			capQuality[i] = r.linkQuality(caps[i], measured[i], qualities[i])
		}
	})
	var excluded []bool
	if gating {
		excluded = make([]bool, len(caps))
		for _, i := range needed {
			excluded[i] = capQuality[i] < r.cfg.MinCaptureQuality
		}
	}
	// Aggregation pass: same capture order per frame as the sequential
	// code, so float accumulation is bit-identical.
	agg := make([][]float64, nFrames)
	qual := make([][]float64, nFrames)
	counts := make([]int, nFrames)
	blockN := make([]float64, nBlocks)
	for d := 0; d < nFrames; d++ {
		var acc []float64
		for j := range blockN {
			blockN[j] = 0
		}
		for _, i := range selected[d] {
			if excluded != nil && excluded[i] {
				continue
			}
			if acc == nil {
				acc = make([]float64, nBlocks)
				qual[d] = make([]float64, nBlocks)
			}
			for j, s := range measured[i] {
				if math.IsNaN(s) {
					continue // block fully inside a dropped row band
				}
				acc[j] += s
				qual[d][j] += qualities[i][j]
				blockN[j]++
			}
			counts[d]++
		}
		if acc != nil {
			for j := range acc {
				if blockN[j] > 0 {
					acc[j] /= blockN[j]
					qual[d][j] /= blockN[j]
				} else {
					acc[j] = math.NaN()
				}
			}
		}
		agg[d] = acc
	}

	var out []*FrameDecode
	if r.cfg.Adaptive {
		out = r.decodePerBlock(agg, qual, counts)
	} else {
		r.normalize(agg)
		out = make([]*FrameDecode, nFrames)
		parallel.For(r.cfg.Workers, nFrames, func(d int) {
			if counts[d] == 0 {
				out[d] = r.emptyDecode(d)
				return
			}
			out[d] = r.DecodeScores(d, agg[d], qual[d], counts[d])
		})
	}
	if !wantReport {
		return out, nil
	}
	rep := &DecodeReport{Frames: out, Quality: make([]CaptureQuality, len(caps)), Registration: r.registration()}
	for i := range caps {
		q := CaptureQuality{Index: i, Time: times[i]}
		if neededSet[i] {
			q.Scored = true
			q.Quality = capQuality[i]
			if excluded != nil && excluded[i] {
				q.Excluded = true
				rep.ExcludedCaptures++
			} else {
				q.Used = true
			}
		}
		rep.Quality[i] = q
	}
	prevGap := false
	for d, fd := range out {
		gap := fd.Captures == 0
		if gap {
			rep.GapFrames++
		} else if prevGap && d > 0 {
			// A frame decoded again after a gap: the receiver resynced.
			rep.Resyncs++
		}
		prevGap = gap
	}
	return out, rep
}

// registration derives the decode report's geometric diagnostics from the
// receiver's construction-time state: pure arithmetic on the configuration,
// identical at every worker count.
func (r *Receiver) registration() Registration {
	reg := Registration{Projective: r.rectify != nil}
	if r.cfg.Pose == nil {
		return reg
	}
	reg.Pose = r.cfg.Pose.M
	l := r.cfg.Layout
	x1 := float64(l.MarginX() + l.BlocksX*l.BlockPx())
	y1 := float64(l.MarginY() + l.BlocksY*l.BlockPx())
	var worst float64
	for _, c := range [4][2]float64{
		{float64(l.MarginX()), float64(l.MarginY())},
		{x1, float64(l.MarginY())},
		{x1, y1},
		{float64(l.MarginX()), y1},
	} {
		px, py, ok := r.cfg.Pose.Apply(c[0], c[1])
		if !ok {
			continue
		}
		ax, ay := r.calib.Apply(c[0], c[1])
		// Compare squared distances in the loop; one Sqrt at the end.
		if d := (px-ax)*(px-ax) + (py-ay)*(py-ay); d > worst {
			worst = d
		}
	}
	reg.MaxCornerOffsetPx = math.Sqrt(worst)
	return reg
}

// linkQuality scores one measured capture in [0, 1]: the product of Block
// coverage (finite measurements over visible Blocks), mean shutter quality
// (how much row-weight mass survived the rolling-shutter model) and the
// fraction of unclipped pixels (clipped pixels carry no chessboard energy —
// saturation, occlusion, a glitched readout). The pixel scan subsamples with
// a stride coprime to typical widths; quality feeds the MinCaptureQuality
// gate and the decode report's timeline, never the clean decode itself.
func (r *Receiver) linkQuality(f *frame.Frame, scores, quality []float64) float64 {
	finite := 0
	var shutterSum float64
	shutterN := 0
	for i, s := range scores {
		if !math.IsNaN(s) && !math.IsInf(s, 0) {
			finite++
		}
		if quality[i] > 0 {
			shutterSum += quality[i]
			shutterN++
		}
	}
	cover := float64(finite) / float64(r.visible)
	shutter := 0.0
	if shutterN > 0 {
		shutter = shutterSum / float64(shutterN)
		if shutter > 1 {
			shutter = 1
		}
	}
	clipped, n := 0, 0
	for i := 0; i < len(f.Pix); i += 7 {
		v := f.Pix[i]
		if v <= 0.5 || v >= 254.5 {
			clipped++
		}
		n++
	}
	q := cover * shutter * (1 - float64(clipped)/float64(n))
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// emptyDecode builds the all-undecided FrameDecode of a data frame no
// capture observed: a timing gap, every Block and GOB marked CauseNoCapture.
func (r *Receiver) emptyDecode(d int) *FrameDecode {
	l := r.cfg.Layout
	fd := &FrameDecode{
		Index:       d,
		Bits:        NewDataFrame(l),
		Decided:     make([]bool, l.NumBlocks()),
		BlockCauses: make([]ErasureCause, l.NumBlocks()),
	}
	for j := range fd.BlockCauses {
		fd.BlockCauses[j] = CauseNoCapture
	}
	buildGOBs(fd, l)
	return fd
}

// calibrateLevels estimates each Block's bit-0 and bit-1 energy levels over
// the given aggregated frames: the 10th/90th percentiles of the Block's own
// finite energy time series. Percentiles rather than extremes keep a single
// texture spike from inflating the Block's band forever, while still letting
// genuine content fluctuations produce the (realistic) occasional confident
// error. Blocks with no finite samples come back (+Inf, −Inf). The per-Block
// work is independent and each slot written exactly once, so the fan-out
// merges by index.
func (r *Receiver) calibrateLevels(rows [][]float64) (lo, hi []float64) {
	nBlocks := r.cfg.Layout.NumBlocks()
	series := make([][]float64, nBlocks)
	for _, row := range rows {
		if row == nil {
			continue
		}
		for j, s := range row {
			if !math.IsNaN(s) {
				series[j] = append(series[j], s)
			}
		}
	}
	lo = make([]float64, nBlocks)
	hi = make([]float64, nBlocks)
	parallel.ForChunked(r.cfg.Workers, nBlocks, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			sv := series[j]
			if len(sv) == 0 {
				lo[j] = math.Inf(1)
				hi[j] = math.Inf(-1)
				continue
			}
			sort.Float64s(sv)
			lo[j] = sv[int(0.1*float64(len(sv)-1))]
			hi[j] = sv[int(math.Ceil(0.9*float64(len(sv)-1)))]
		}
	})
	return lo, hi
}

// decodePerBlock implements the adaptive per-Block decision stage: each
// Block's bit levels are its own extremes across the calibration span, its
// threshold the midpoint, and its hysteresis band the larger of the relative
// band and the absolute MinConfidence floor (widened for shutter-degraded
// measurements). With RecalibrateEvery set, the run is calibrated in
// independent windows so the thresholds track slow lighting and gain drift.
func (r *Receiver) decodePerBlock(agg, qual [][]float64, counts []int) []*FrameDecode {
	if len(agg) == 0 {
		return make([]*FrameDecode, 0)
	}
	l := r.cfg.Layout
	nBlocks := l.NumBlocks()
	win := r.cfg.RecalibrateEvery
	if win <= 0 || win > len(agg) {
		win = len(agg)
	}
	type levels struct{ lo, hi []float64 }
	// The trailing remainder joins the final window: a runt window of a few
	// frames starves the percentile estimates far worse than a slightly
	// longer final window smears them.
	nWins := len(agg) / win
	if nWins == 0 {
		nWins = 1
	}
	wins := make([]levels, 0, nWins)
	for w := 0; w < nWins; w++ {
		w0 := w * win
		w1 := w0 + win
		if w == nWins-1 {
			w1 = len(agg)
		}
		lo, hi := r.calibrateLevels(agg[w0:w1])
		wins = append(wins, levels{lo: lo, hi: hi})
	}
	out := make([]*FrameDecode, len(agg))
	parallel.For(r.cfg.Workers, len(agg), func(d int) {
		row := agg[d]
		if counts[d] == 0 || row == nil {
			out[d] = r.emptyDecode(d)
			return
		}
		wi := d / win
		if wi >= len(wins) {
			wi = len(wins) - 1
		}
		lo, hi := wins[wi].lo, wins[wi].hi
		fd := &FrameDecode{
			Index:       d,
			Captures:    counts[d],
			Bits:        NewDataFrame(l),
			Decided:     make([]bool, nBlocks),
			BlockCauses: make([]ErasureCause, nBlocks),
		}
		for j, s := range row {
			if math.IsNaN(s) || math.IsInf(lo[j], 1) {
				fd.BlockCauses[j] = CauseNoSignal
				continue
			}
			gap := hi[j] - lo[j]
			// !(gap > 0) also catches NaN levels: an all-equal or unusable
			// series means no swing, never a zero-width "confident" band.
			if !(gap > 0) || gap < r.minGap {
				fd.BlockCauses[j] = CauseNoSwing
				continue // no usable swing: saturated or constant payload
			}
			thr := (lo[j] + hi[j]) / 2
			band := r.cfg.AdaptiveBand * gap
			if band < r.minConf {
				band = r.minConf
			}
			if qual[d] != nil && qual[d][j] > 0 && qual[d][j] < 1 {
				band /= math.Sqrt(qual[d][j])
			}
			fd.Bits.Bits[j] = s > thr
			fd.Decided[j] = math.Abs(s-thr) >= band
			if !fd.Decided[j] {
				fd.BlockCauses[j] = CauseLowConfidence
			}
		}
		buildGOBs(fd, l)
		out[d] = fd
	})
	return out
}

// normalize converts aggregated raw energies into decision scores in place,
// per the configured strategy. Frames without captures (nil rows) are
// skipped.
func (r *Receiver) normalize(agg [][]float64) {
	switch r.cfg.Normalize {
	case NormalizeFrameMean:
		for _, row := range agg {
			if row == nil {
				continue
			}
			var mean float64
			var n int
			for _, s := range row {
				if math.IsNaN(s) {
					continue
				}
				mean += s
				n++
			}
			if n == 0 {
				continue
			}
			mean /= float64(n)
			for j := range row {
				row[j] -= mean
			}
		}
	case NormalizeBlockBaseline:
		nBlocks := r.cfg.Layout.NumBlocks()
		baseline := make([]float64, nBlocks)
		for j := range baseline {
			baseline[j] = math.Inf(1)
		}
		seen := false
		for _, row := range agg {
			if row == nil {
				continue
			}
			seen = true
			for j, s := range row {
				if !math.IsNaN(s) && s < baseline[j] {
					baseline[j] = s
				}
			}
		}
		if !seen {
			return
		}
		for _, row := range agg {
			if row == nil {
				continue
			}
			for j := range row {
				if math.IsInf(baseline[j], 1) {
					row[j] = math.NaN()
					continue
				}
				row[j] -= baseline[j]
			}
		}
	default:
		panic(fmt.Sprintf("core: unknown normalization %v", r.cfg.Normalize))
	}
}
