package core

import "math/rand"

// ScrambleBits XORs the payload bits with a pseudo-random whitening
// sequence keyed by (seed, frameIdx). The operation is self-inverse:
// applying it twice with the same key restores the input.
//
// Whitening matters to the physical layer: the adaptive receiver
// self-calibrates each Block from the variation of its energy over time, so
// a payload that repeats (or holds many Blocks constant) would starve the
// calibration. With per-frame whitening every Block toggles like the
// paper's pseudo-random test data regardless of message content.
func ScrambleBits(bits []bool, seed int64, frameIdx int) []bool {
	rng := rand.New(rand.NewSource(seed ^ int64(frameIdx)*0x5deece66d))
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = b != (rng.Intn(2) == 1)
	}
	return out
}

// ScrambledStream wraps a Stream with per-frame payload whitening. The
// receive side undoes it with ScrambleBits using the same seed and the
// decoded frame's index.
type ScrambledStream struct {
	Inner Stream
	Seed  int64
}

// DataFrame implements Stream: the inner frame's payload bits are whitened
// and re-wrapped with fresh GOB parity.
func (ss *ScrambledStream) DataFrame(i int) *DataFrame {
	inner := ss.Inner.DataFrame(i)
	df, err := FromDataBits(inner.Layout, ScrambleBits(inner.DataBits(), ss.Seed, i))
	if err != nil {
		panic(err) // impossible: bit count comes from the same layout
	}
	return df
}
