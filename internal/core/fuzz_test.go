package core

import (
	"math"
	"math/rand"
	"testing"

	"inframe/internal/frame"
)

// FuzzDecodeCaptures throws arbitrary capture sequences at the full decode
// path — garbage pixels, non-finite times and exposures, degenerate capture
// counts — and checks the structural invariants that must hold for any
// input: no panic, exactly nFrames decodes, and every decode's availability
// and parity flags self-consistent with its Block decisions.
func FuzzDecodeCaptures(f *testing.F) {
	f.Add(int64(1), uint8(4), 0.0, 1.0/120, uint8(0))
	f.Add(int64(7), uint8(0), 0.5, 0.002, uint8(1))
	f.Add(int64(-3), uint8(6), -1.0, 0.0, uint8(2))
	f.Add(int64(99), uint8(3), 1e300, math.Inf(1), uint8(3))
	f.Add(int64(42), uint8(2), math.NaN(), math.NaN(), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nCaps uint8, tBase, exposure float64, mode uint8) {
		p := smallParams()
		l := p.Layout
		n := int(nCaps % 8)
		rng := rand.New(rand.NewSource(seed))
		caps := make([]*frame.Frame, n)
		times := make([]float64, n)
		for i := range caps {
			fr := frame.New(l.FrameW, l.FrameH)
			switch mode % 5 {
			case 0: // uniform noise
				for j := range fr.Pix {
					fr.Pix[j] = float32(rng.Float64() * 255)
				}
			case 1: // out-of-range and non-finite pixels
				for j := range fr.Pix {
					switch rng.Intn(4) {
					case 0:
						fr.Pix[j] = float32(math.Inf(1))
					case 1:
						fr.Pix[j] = float32(math.NaN())
					case 2:
						fr.Pix[j] = -1e6
					default:
						fr.Pix[j] = float32(rng.NormFloat64() * 1e4)
					}
				}
			case 2: // hard-clipped
				for j := range fr.Pix {
					if rng.Intn(2) == 0 {
						fr.Pix[j] = 255
					}
				}
			case 3: // constant mid-gray (degenerate: no swing anywhere)
				fr.Fill(127)
			default: // sparse impulses
				for k := 0; k < 16; k++ {
					fr.Pix[rng.Intn(len(fr.Pix))] = float32(rng.Float64() * 512)
				}
			}
			caps[i] = fr
			times[i] = tBase + float64(i)*rng.Float64()/30
		}
		r := smallReceiver(t, p)
		nFrames := 3
		decoded, rep := r.DecodeCapturesReport(caps, times, exposure, nFrames)
		if len(decoded) != nFrames {
			t.Fatalf("decoded %d frames, want %d", len(decoded), nFrames)
		}
		for d, fd := range decoded {
			if fd == nil {
				t.Fatalf("frame %d decode is nil", d)
			}
			if len(fd.GOBs) != l.NumGOBs() {
				t.Fatalf("frame %d has %d GOBs", d, len(fd.GOBs))
			}
			for _, g := range fd.GOBs {
				// Available means every component Block decided; a GOB must
				// never claim availability over undecided Blocks.
				allDecided := true
				for _, blk := range l.GOBBlocks(g.GX, g.GY) {
					if !fd.Decided[blk[1]*l.BlocksX+blk[0]] {
						allDecided = false
					}
				}
				if g.Available != allDecided {
					t.Fatalf("frame %d GOB (%d,%d): available=%v but allDecided=%v",
						d, g.GX, g.GY, g.Available, allDecided)
				}
				if g.Available && g.ParityOK != fd.Bits.ParityOK(g.GX, g.GY) {
					t.Fatalf("frame %d GOB (%d,%d): ParityOK flag inconsistent with bits",
						d, g.GX, g.GY)
				}
				if g.Available && !g.ParityOK && g.Cause != CauseParity {
					t.Fatalf("frame %d GOB (%d,%d): parity failure with cause %v",
						d, g.GX, g.GY, g.Cause)
				}
				if !g.Available && g.Cause == CauseNone {
					t.Fatalf("frame %d GOB (%d,%d): erased without a cause", d, g.GX, g.GY)
				}
			}
		}
		if len(rep.Quality) != n {
			t.Fatalf("quality timeline %d entries, want %d", len(rep.Quality), n)
		}
		for _, q := range rep.Quality {
			if q.Scored && (math.IsNaN(q.Quality) || q.Quality < 0 || q.Quality > 1) {
				t.Fatalf("capture %d quality %v outside [0,1]", q.Index, q.Quality)
			}
		}
	})
}

// FuzzGOBParity encodes arbitrary payload bits with the XOR parity scheme and
// checks that parity verifies on the clean frame and detects every single-bit
// mangling — no mangled GOB may pass as clean.
func FuzzGOBParity(f *testing.F) {
	f.Add([]byte{0x00}, uint16(0))
	f.Add([]byte{0xFF, 0x13}, uint16(5))
	f.Add([]byte{0xA5, 0x5A, 0x7E}, uint16(17))
	f.Fuzz(func(t *testing.T, raw []byte, flip uint16) {
		if len(raw) == 0 {
			return
		}
		l := smallLayout()
		bits := make([]bool, l.DataBitsPerFrame())
		for i := range bits {
			bits[i] = raw[i%len(raw)]>>(uint(i)%8)&1 == 1
		}
		df, err := FromDataBits(l, bits)
		if err != nil {
			t.Fatal(err)
		}
		for gy := 0; gy < l.GOBsY(); gy++ {
			for gx := 0; gx < l.GOBsX(); gx++ {
				if !df.ParityOK(gx, gy) {
					t.Fatalf("fresh encoding fails parity at GOB (%d,%d)", gx, gy)
				}
			}
		}
		// Flip one Block bit (data or parity) and check the mangled GOB is
		// detected while every other GOB still verifies.
		j := int(flip) % l.NumBlocks()
		bx, by := j%l.BlocksX, j/l.BlocksX
		df.SetBit(bx, by, !df.Bit(bx, by))
		mgx, mgy := bx/l.GOBSize, by/l.GOBSize
		for gy := 0; gy < l.GOBsY(); gy++ {
			for gx := 0; gx < l.GOBsX(); gx++ {
				ok := df.ParityOK(gx, gy)
				if gx == mgx && gy == mgy {
					if ok {
						t.Fatalf("GOB (%d,%d) passes parity with a flipped bit", gx, gy)
					}
				} else if !ok {
					t.Fatalf("untouched GOB (%d,%d) fails parity", gx, gy)
				}
			}
		}
	})
}
