package impair

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"inframe/internal/detrng"
	"inframe/internal/frame"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"zero", Config{}, ""},
		{"nil-ok", Config{}, ""},
		{"drift", Config{ClockDriftPPM: 200}, ""},
		{"negative jitter", Config{StartJitter: -1e-3}, "StartJitter"},
		{"drop too high", Config{DropRate: 1}, "DropRate"},
		{"dup negative", Config{DupRate: -0.1}, "DupRate"},
		{"flicker without hz", Config{FlickerAmp: 5}, "FlickerHz"},
		{"flicker ok", Config{FlickerAmp: 5, FlickerHz: 100}, ""},
		{"gain without hz", Config{GainAmp: 0.1}, "GainHz"},
		{"gain too high", Config{GainAmp: 1, GainHz: 0.5}, "GainAmp"},
		{"burst without sigma", Config{BurstRate: 0.2}, "BurstSigma"},
		{"burst ok", Config{BurstRate: 0.2, BurstSigma: 10}, ""},
		{"blur negative", Config{MotionBlurLen: -1}, "MotionBlurLen"},
		{"occlude width only", Config{OccludeW: 0.2}, "OccludeH"},
		{"occlude out of range", Config{OccludeW: 0.2, OccludeH: 1.5}, "fractions"},
		{"occlude level", Config{OccludeW: 0.2, OccludeH: 0.2, OccludeLevel: 300}, "OccludeLevel"},
		{"occlude ok", Config{OccludeW: 0.2, OccludeH: 0.2}, ""},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
	var nilCfg *Config
	if err := nilCfg.Validate(); err != nil {
		t.Errorf("nil config: unexpected error %v", err)
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{Seed: 42}).Enabled() {
		t.Error("seed-only config reports enabled")
	}
	actives := []Config{
		{ClockDriftPPM: 100},
		{ClockDriftPPM: -100},
		{StartJitter: 1e-4},
		{DropRate: 0.1},
		{DupRate: 0.1},
		{AmbientRamp: -3},
		{FlickerAmp: 2, FlickerHz: 100},
		{GainAmp: 0.05, GainHz: 0.7},
		{BurstRate: 0.1, BurstSigma: 8},
		{MotionBlurLen: 2},
		{OccludeW: 0.1, OccludeH: 0.1},
	}
	for i, c := range actives {
		if !c.Enabled() {
			t.Errorf("config %d (%+v) reports disabled", i, c)
		}
		if len(New(c).Names()) != 1 {
			t.Errorf("config %d: stage names %v, want exactly one", i, New(c).Names())
		}
	}
}

func TestPeriodDrift(t *testing.T) {
	s := New(Config{ClockDriftPPM: 500})
	base := 1.0 / 30
	got := s.Period(base)
	want := base * 1.0005
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Period = %v, want %v", got, want)
	}
	if p := New(Config{}).Period(base); math.Abs(p-base) > 0 {
		t.Errorf("zero drift changed the period: %v != %v", p, base)
	}
}

func TestCaptureTimeJitterBoundedAndDeterministic(t *testing.T) {
	const jitter = 2e-4
	s := New(Config{Seed: 11, StartJitter: jitter})
	period := 1.0 / 30
	for i := 0; i < 50; i++ {
		nominal := 0.01 + float64(i)*period
		got := s.CaptureTime(i, 0.01, period)
		if math.Abs(got-nominal) > jitter {
			t.Fatalf("capture %d: time %v is %v off nominal, want within %v",
				i, got, got-nominal, jitter)
		}
		if again := s.CaptureTime(i, 0.01, period); math.Abs(again-got) > 0 {
			t.Fatalf("capture %d: jitter not deterministic: %v vs %v", i, got, again)
		}
	}
	// Different seeds must jitter differently somewhere.
	other := New(Config{Seed: 12, StartJitter: jitter})
	same := true
	for i := 0; i < 50; i++ {
		if math.Abs(s.CaptureTime(i, 0, period)-other.CaptureTime(i, 0, period)) > 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("two seeds produced identical jitter sequences")
	}
}

// TestStageIndependence checks the determinism contract: enabling one stage
// must not shift another stage's random stream. The drop decisions with and
// without duplication enabled must be identical.
func TestStageIndependence(t *testing.T) {
	pool := frame.NewPool()
	mk := func() ([]*frame.Frame, []float64) {
		caps := make([]*frame.Frame, 40)
		times := make([]float64, 40)
		for i := range caps {
			caps[i] = frame.NewFilled(8, 6, float32(i))
			times[i] = float64(i)
		}
		return caps, times
	}
	dropOnly := New(Config{Seed: 5, DropRate: 0.3})
	caps, times := mk()
	aCaps, _ := dropOnly.ApplySequence(caps, times, 1, pool)
	surviveA := make(map[float32]bool)
	for _, f := range aCaps {
		surviveA[f.Pix[0]] = true
	}

	both := New(Config{Seed: 5, DropRate: 0.3, DupRate: 0.4})
	caps, times = mk()
	bCaps, _ := both.ApplySequence(caps, times, 1, pool)
	surviveB := make(map[float32]bool)
	for _, f := range bCaps {
		surviveB[f.Pix[0]] = true
	}
	if !reflect.DeepEqual(surviveA, surviveB) {
		t.Errorf("enabling duplication changed the drop decisions: %v vs %v", surviveA, surviveB)
	}
}

func TestApplySequenceDropAndDup(t *testing.T) {
	pool := frame.NewPool()
	const n = 200
	caps := make([]*frame.Frame, n)
	times := make([]float64, n)
	for i := range caps {
		caps[i] = frame.NewFilled(8, 6, float32(i%200))
		times[i] = float64(i) * 0.1
	}
	s := New(Config{Seed: 3, DropRate: 0.25, DupRate: 0.25})
	outCaps, outTimes := s.ApplySequence(caps, times, 0.1, pool)
	if len(outCaps) != len(outTimes) {
		t.Fatalf("caps/times length mismatch: %d vs %d", len(outCaps), len(outTimes))
	}
	if len(outCaps) == n {
		t.Fatal("no capture was dropped or duplicated at 25% rates over 200 captures")
	}
	// Every dropped frame went back to the pool; every duplicate came out
	// of it (possibly reusing a dropped buffer). Replay the per-index
	// decisions from the stage streams and demand the stats balance.
	st := pool.Stats()
	dropped, dups := 0, 0
	for i := 0; i < n; i++ {
		if s.rng(detrng.ImpairDrop, i).Float64() < 0.25 {
			dropped++
			continue
		}
		if s.rng(detrng.ImpairDup, i).Float64() < 0.25 {
			dups++
		}
	}
	if dropped == 0 || dups == 0 {
		t.Fatalf("expected both drops and dups, got dropped=%d dups=%d", dropped, dups)
	}
	if len(outCaps) != n-dropped+dups {
		t.Fatalf("survivors = %d, want %d - %d dropped + %d dups", len(outCaps), n, dropped, dups)
	}
	if st.Puts != uint64(dropped) {
		t.Errorf("pool Puts = %d, want one per dropped capture (%d)", st.Puts, dropped)
	}
	if st.Gets != uint64(dups) {
		t.Errorf("pool Gets = %d, want one per duplicate (%d)", st.Gets, dups)
	}
	// Duplicates are distinct buffers with identical pixels and a
	// one-period-later timestamp.
	for i := 1; i < len(outCaps); i++ {
		if outCaps[i] == outCaps[i-1] {
			t.Fatalf("capture %d aliases its predecessor", i)
		}
		if outCaps[i].Equal(outCaps[i-1]) && math.Abs(outTimes[i]-(outTimes[i-1]+0.1)) > 1e-12 {
			t.Fatalf("duplicate at %d has time %v, want %v", i, outTimes[i], outTimes[i-1]+0.1)
		}
	}
	// Deterministic replay: a fresh identical run makes identical choices.
	caps2 := make([]*frame.Frame, n)
	for i := range caps2 {
		caps2[i] = frame.NewFilled(8, 6, float32(i%200))
	}
	rCaps, rTimes := New(s.Config()).ApplySequence(caps2, append([]float64(nil), times...), 0.1, frame.NewPool())
	if len(rCaps) != len(outCaps) || !reflect.DeepEqual(rTimes, outTimes) {
		t.Error("replayed sequence decisions diverge")
	}
}

func TestApplySequencePassthrough(t *testing.T) {
	s := New(Config{Seed: 9, AmbientRamp: 3}) // no sequence stages active
	caps := []*frame.Frame{frame.NewFilled(4, 4, 1)}
	times := []float64{0.5}
	outCaps, outTimes := s.ApplySequence(caps, times, 0.1, nil)
	if &outCaps[0] != &caps[0] || &outTimes[0] != &times[0] {
		t.Error("passthrough rebuilt the sequence")
	}
}

func TestApplyFrameDeterministicAndIndexed(t *testing.T) {
	cfg := Config{
		Seed: 21, AmbientRamp: 4, FlickerAmp: 6, FlickerHz: 100,
		GainAmp: 0.1, GainHz: 0.5, BurstRate: 1, BurstSigma: 5,
		MotionBlurLen: 1, OccludeX: 0.5, OccludeY: 0.5, OccludeW: 0.3, OccludeH: 0.3,
	}
	mk := func() *frame.Frame {
		f := frame.New(32, 24)
		for i := range f.Pix {
			f.Pix[i] = float32((i * 37) % 256)
		}
		return f
	}
	a, b := mk(), mk()
	s := New(cfg)
	s.ApplyFrame(a, 4, 0.2, 0.001)
	New(cfg).ApplyFrame(b, 4, 0.2, 0.001)
	if !a.Equal(b) {
		t.Error("same (config, index, time) produced different frames")
	}
	c := mk()
	s.ApplyFrame(c, 5, 0.2, 0.001) // different index: different burst noise
	if a.Equal(c) {
		t.Error("different capture indices produced identical burst noise")
	}
	// Quantized output: corruption happens in the camera's 8-bit domain.
	for i, v := range a.Pix {
		if v < 0 || v > 255 || float32(math.Round(float64(v))) != v {
			t.Fatalf("pixel %d = %v not 8-bit quantized", i, v)
		}
	}
}

func TestApplyFrameDisabledIsNoop(t *testing.T) {
	f := frame.New(8, 8)
	for i := range f.Pix {
		f.Pix[i] = float32(i) + 0.25 // deliberately unquantized
	}
	want := f.Clone()
	New(Config{Seed: 99}).ApplyFrame(f, 0, 0.1, 0.001)
	if !f.Equal(want) {
		t.Error("disabled stack modified the frame (or re-quantized it)")
	}
}

func TestOcclusionRect(t *testing.T) {
	f := frame.NewFilled(40, 20, 200)
	s := New(Config{OccludeX: 0.25, OccludeY: 0.5, OccludeW: 0.5, OccludeH: 0.5, OccludeLevel: 10})
	s.ApplyFrame(f, 0, 0, 0.001)
	// Rectangle: x in [10,30), y in [10,20).
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := f.At(x, y)
			inside := x >= 10 && x < 30 && y >= 10
			if inside && math.Abs(float64(v)-10) > 0 {
				t.Fatalf("occluded pixel (%d,%d) = %v, want 10", x, y, v)
			}
			if !inside && math.Abs(float64(v)-200) > 0 {
				t.Fatalf("clear pixel (%d,%d) = %v, want 200", x, y, v)
			}
		}
	}
}

func TestFlickerIntegral(t *testing.T) {
	s := New(Config{FlickerAmp: 10, FlickerHz: 100})
	// Exposure spanning exactly one flicker cycle integrates to zero.
	if lvl := s.flickerLevel(0.123, 0.01); math.Abs(lvl) > 1e-9 {
		t.Errorf("full-cycle exposure flicker = %v, want ~0", lvl)
	}
	// A very short exposure approaches the instantaneous sinusoid.
	t0 := 0.0013
	inst := 10 * math.Sin(2*math.Pi*100*t0)
	if lvl := s.flickerLevel(t0, 1e-7); math.Abs(lvl-inst) > 1e-2 {
		t.Errorf("short-exposure flicker = %v, want ~%v", lvl, inst)
	}
}

func TestMotionBlurPreservesMeanAndSpreads(t *testing.T) {
	f := frame.New(33, 5)
	f.Set(16, 2, 255) // impulse
	before := f.Mean()
	motionBlur(f, 3)
	if math.Abs(f.Mean()-before) > 1e-4 {
		t.Errorf("motion blur changed the mean: %v -> %v", before, f.Mean())
	}
	if f.At(16, 2) >= 255 {
		t.Error("impulse not spread")
	}
	if f.At(13, 2) <= 0 || f.At(19, 2) <= 0 {
		t.Error("impulse energy did not reach the kernel extent")
	}
	if f.At(12, 2) > 0 || f.At(20, 2) > 0 || f.At(16, 1) > 0 {
		t.Error("blur leaked outside the horizontal kernel")
	}
}
