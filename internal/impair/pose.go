package impair

import (
	"fmt"
	"math"

	"inframe/internal/detrng"
	"inframe/internal/frame"
)

// poseFocal sets the pinhole focal length as a multiple of the larger
// capture dimension: a moderate telephoto, long enough that the projection
// denominator stays strictly positive over the whole validated pose range
// (see PoseHomography) while still producing a visible keystone at 20° tilt.
const poseFocal = 1.5

// PoseHomography returns the homography a pinhole camera at the given pose
// applies to a frontal w×h capture: frontal coordinates map to posed
// (keystoned, rolled, rescaled) coordinates. The model puts the screen
// plane at z = 0 centered on the optical axis, rotates it by
// R = Rx(tilt)·Rz(roll), and projects through a pinhole at distance
// f·dist with focal length f = poseFocal·max(w, h):
//
//	x' = f·p'x/(f·dist + p'z) + cx   (and likewise y')
//
// dist ≤ 0 means the nominal distance 1, where the zero pose is the exact
// identity map. Positivity of the denominator over the validated range
// (|tilt| ≤ 70°+5° jitter, dist ≥ 0.5): |p'z| ≤ sin(75°)·hypot(w, h)/2
// ≤ 0.966·(√2/2)·max ≈ 0.683·max, while f·dist ≥ 1.5·0.5·max = 0.75·max,
// so every screen point stays strictly in front of the pinhole and the
// homography is invertible by construction.
func PoseHomography(w, h int, tiltDeg, rollDeg, dist float64) frame.Homography {
	if dist <= 0 {
		dist = 1
	}
	f := poseFocal * float64(max(w, h))
	cx := float64(w-1) / 2
	cy := float64(h-1) / 2
	st, ct := math.Sincos(tiltDeg * math.Pi / 180)
	sr, cr := math.Sincos(rollDeg * math.Pi / 180)
	// R = Rx(tilt)·Rz(roll) applied to (u, v, 0): the screen plane has no
	// z-extent, so only the first two columns of R matter.
	r00, r01 := cr, -sr
	r10, r11 := ct*sr, ct*cr
	r20, r21 := st*sr, st*cr
	fd := f * dist
	// Projection as a homography on centered coordinates, composed with the
	// shift into pixel coordinates: x' = (f·p'x + cx·(f·d + p'z))/(f·d + p'z).
	centered := frame.Homography{M: [9]float64{
		f*r00 + cx*r20, f*r01 + cx*r21, cx * fd,
		f*r10 + cy*r20, f*r11 + cy*r21, cy * fd,
		r20, r21, fd,
	}}
	return centered.Mul(frame.AxisAlignedHomography(1, 1, -cx, -cy))
}

// applyPose warps one capture through the (possibly jittered) camera pose.
// The jitter stream is keyed by (Seed, ImpairPose, capture index), so
// whether and how capture i shakes never depends on any other capture or on
// worker identity.
func (s *Stack) applyPose(f *frame.Frame, index int) {
	tilt := s.cfg.TiltDeg
	roll := s.cfg.RotateDeg
	if s.cfg.PoseJitterDeg > 0 {
		rng := s.rng(detrng.ImpairPose, index)
		tilt += (2*rng.Float64() - 1) * s.cfg.PoseJitterDeg
		roll += (2*rng.Float64() - 1) * s.cfg.PoseJitterDeg
	}
	pose := PoseHomography(f.W, f.H, tilt, roll, s.cfg.Distance)
	inv, err := pose.Invert()
	if err != nil {
		// Validate's pose bounds make the projection invertible by
		// construction (see PoseHomography); reaching this is a plumbing bug,
		// not a data condition.
		panic(fmt.Sprintf("impair: pose homography not invertible: %v", err))
	}
	src, _ := s.poseScratch.Get().(*frame.Frame)
	if src == nil || src.W != f.W || src.H != f.H {
		src = frame.New(f.W, f.H)
	}
	f.CloneInto(src)
	// WarpInto's map goes destination→source, so the posed capture samples
	// the frontal plane through the pose's inverse.
	frame.WarpInto(src, f, inv)
	s.poseScratch.Put(src)
}
