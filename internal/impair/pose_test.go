package impair

import (
	"math"
	"strings"
	"testing"

	"inframe/internal/frame"
)

// TestPoseHomographyIdentity: the zero pose at nominal distance is the exact
// identity map — the precondition for the receiver's frontal fast path.
func TestPoseHomographyIdentity(t *testing.T) {
	h := PoseHomography(112, 72, 0, 0, 1)
	sx, sy, ox, oy, ok := h.AxisAligned()
	if !ok || sx != 1 || sy != 1 || ox != 0 || oy != 0 {
		t.Fatalf("zero pose is not the exact identity: (%v,%v,%v,%v,%v) from %v", sx, sy, ox, oy, ok, h.M)
	}
	// dist ≤ 0 means the nominal distance.
	if h0 := PoseHomography(112, 72, 0, 0, 0); h0 != h {
		t.Fatalf("dist=0 pose %v differs from dist=1 pose %v", h0.M, h.M)
	}
	for _, p := range [][2]float64{{0, 0}, {111, 71}, {55.5, 35.5}, {13, 60}} {
		x, y, ok := h.Apply(p[0], p[1])
		if !ok || x != p[0] || y != p[1] {
			t.Fatalf("identity pose maps (%v,%v) to (%v,%v,%v)", p[0], p[1], x, y, ok)
		}
	}
}

// TestPoseHomographyInvertibleOverValidatedRange sweeps the whole pose box
// Validate admits (plus the jitter allowance): every pose must invert, and
// the inverse must round-trip screen points.
func TestPoseHomographyInvertibleOverValidatedRange(t *testing.T) {
	for _, dims := range [][2]int{{112, 72}, {192, 128}, {64, 64}} {
		w, h := dims[0], dims[1]
		for tilt := -75.0; tilt <= 75; tilt += 15 {
			for roll := -180.0; roll <= 180; roll += 45 {
				for _, dist := range []float64{0.5, 1, 2.5, 4} {
					pose := PoseHomography(w, h, tilt, roll, dist)
					inv, err := pose.Invert()
					if err != nil {
						t.Fatalf("%dx%d tilt=%v roll=%v dist=%v: %v", w, h, tilt, roll, dist, err)
					}
					px, py := float64(w-1), float64(h)/3
					fx, fy, ok1 := pose.Apply(px, py)
					bx, by, ok2 := inv.Apply(fx, fy)
					if !ok1 || !ok2 || math.Abs(bx-px) > 1e-6 || math.Abs(by-py) > 1e-6 {
						t.Fatalf("%dx%d tilt=%v roll=%v dist=%v: round-trip (%v,%v)→(%v,%v)",
							w, h, tilt, roll, dist, px, py, bx, by)
					}
				}
			}
		}
	}
}

// TestPoseHomographyKeystones: a 20° tilt must visibly move the frame's top
// corners (the keystone the registration exists to undo), while the center
// of projection stays put.
func TestPoseHomographyKeystones(t *testing.T) {
	const w, h = 192, 128
	pose := PoseHomography(w, h, 20, 0, 1)
	cx, cy := float64(w-1)/2, float64(h-1)/2
	gx, gy, ok := pose.Apply(cx, cy)
	if !ok || math.Abs(gx-cx) > 1e-9 || math.Abs(gy-cy) > 1e-9 {
		t.Fatalf("optical center moved: (%v,%v) → (%v,%v)", cx, cy, gx, gy)
	}
	tx, ty, ok := pose.Apply(0, 0)
	if !ok {
		t.Fatal("top-left corner on horizon")
	}
	if math.Abs(tx-0)+math.Abs(ty-0) < 2 {
		t.Fatalf("20° tilt barely moves the top-left corner: (%v,%v)", tx, ty)
	}
}

// TestPoseValidateBounds: the pose knobs must be range-checked like every
// other impair knob.
func TestPoseValidateBounds(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" = valid
	}{
		{"pose ok", Config{TiltDeg: 20, RotateDeg: -5, Distance: 1.3, PoseJitterDeg: 1}, ""},
		{"distance unset", Config{TiltDeg: 20}, ""},
		{"tilt too steep", Config{TiltDeg: 71}, "TiltDeg"},
		{"tilt too steep negative", Config{TiltDeg: -80}, "TiltDeg"},
		{"roll out of range", Config{RotateDeg: 200}, "RotateDeg"},
		{"too close", Config{Distance: 0.3}, "Distance"},
		{"too far", Config{Distance: 5}, "Distance"},
		{"negative distance", Config{Distance: -1}, "Distance"},
		{"jitter negative", Config{PoseJitterDeg: -0.1}, "PoseJitterDeg"},
		{"jitter too large", Config{PoseJitterDeg: 6}, "PoseJitterDeg"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestPoseEnabledAndName: each pose knob alone activates exactly the
// camera-pose stage; the exact frontal sentinels (Distance 0 or 1) do not.
func TestPoseEnabledAndName(t *testing.T) {
	for i, c := range []Config{
		{TiltDeg: 10}, {RotateDeg: -3}, {Distance: 1.3}, {Distance: 0.5}, {PoseJitterDeg: 0.5},
	} {
		if !c.Enabled() {
			t.Errorf("config %d (%+v) reports disabled", i, c)
		}
		if names := New(c).Names(); len(names) != 1 || names[0] != "camera-pose" {
			t.Errorf("config %d: stage names %v, want [camera-pose]", i, New(c).Names())
		}
	}
	for i, c := range []Config{{}, {Distance: 1}, {Seed: 7}} {
		if c.Enabled() {
			t.Errorf("frontal config %d (%+v) reports enabled", i, c)
		}
	}
}

// TestApplyPoseDeterministicAndIndexed: the jittered pose stage is a pure
// function of (config, capture index) — worker identity and call order must
// not leak in.
func TestApplyPoseDeterministicAndIndexed(t *testing.T) {
	cfg := Config{Seed: 33, TiltDeg: 20, RotateDeg: 4, Distance: 1.2, PoseJitterDeg: 2}
	mk := func() *frame.Frame {
		f := frame.New(48, 32)
		for i := range f.Pix {
			f.Pix[i] = float32((i * 41) % 256)
		}
		return f
	}
	a, b := mk(), mk()
	s := New(cfg)
	s.ApplyFrame(a, 6, 0.1, 0.001)
	New(cfg).ApplyFrame(b, 6, 0.1, 0.001)
	if !a.Equal(b) {
		t.Error("same (config, index) produced different posed frames")
	}
	c := mk()
	s.ApplyFrame(c, 7, 0.1, 0.001)
	if a.Equal(c) {
		t.Error("different capture indices produced identical pose jitter")
	}
	// Out-of-order replay of index 6 must reproduce the first result.
	d := mk()
	s.ApplyFrame(d, 6, 0.1, 0.001)
	if !a.Equal(d) {
		t.Error("replaying an index after later captures changed the pose")
	}
}

// TestApplyPoseWarpsContent: a pure tilt moves edge content while the frame
// dimensions and the quantized value domain are preserved.
func TestApplyPoseWarpsContent(t *testing.T) {
	f := frame.New(64, 48)
	for i := range f.Pix {
		f.Pix[i] = float32((i * 29) % 256)
	}
	want := f.Clone()
	s := New(Config{TiltDeg: 25, Distance: 1.3})
	s.ApplyFrame(f, 0, 0.1, 0.001)
	if f.W != want.W || f.H != want.H {
		t.Fatalf("pose changed frame dimensions: %dx%d", f.W, f.H)
	}
	if f.Equal(want) {
		t.Fatal("25° tilt left the frame untouched")
	}
	for i, v := range f.Pix {
		if math.IsNaN(float64(v)) || v < 0 || v > 255 {
			t.Fatalf("pixel %d = %v outside the 8-bit domain", i, v)
		}
	}
}
