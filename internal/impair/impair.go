// Package impair injects deterministic channel faults into the simulated
// screen→camera link. The clean simulator (display + camera) models a
// well-behaved lab setup — the paper's fixed tripod at 50 cm — while real
// deployments suffer free-running clock drift, dropped and duplicated
// captures, ambient-light ramps, 50/60 Hz mains flicker, auto-exposure gain
// hunting, sensor-noise bursts, motion blur and partial occlusion.
//
// Every impairment is an independent stage keyed by (Seed, stage, capture
// index): enabling or disabling one stage never shifts another stage's
// random stream, and nothing depends on worker identity or wall-clock time,
// so an impaired simulation is bit-identical at any worker count and across
// runs. Stages apply in a fixed canonical order (see Stack.ApplyFrame and
// Stack.ApplySequence).
//
// The pixel-domain stages corrupt the camera's finished 8-bit output — a
// post-ISP fault model. That keeps the stack composable with any camera
// configuration: it never needs to reach inside the exposure integral.
package impair

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"inframe/internal/detrng"
	"inframe/internal/frame"
)

// Config enables and parameterizes the impairment stages. The zero value
// disables everything; a nil *Config behaves the same wherever one is
// accepted.
type Config struct {
	// Seed drives every stage's random stream. Two runs with equal Config
	// produce identical impairments.
	Seed int64

	// ClockDriftPPM skews the camera's frame period by the given parts per
	// million (positive = slow camera clock, longer period). Real phone
	// oscillators drift tens of ppm against the display's.
	ClockDriftPPM float64
	// StartJitter is the half-width (seconds) of a uniform per-capture
	// exposure-start jitter, modelling scheduling noise in the capture
	// pipeline. Each capture's jitter is independent.
	StartJitter float64

	// DropRate is the probability that a capture is lost in the delivery
	// pipeline (buffer overrun, USB stall). Dropped captures are returned
	// to the frame pool; the receiver sees a timing gap.
	DropRate float64
	// DupRate is the probability that a capture is delivered twice: the
	// duplicate carries the original's pixels but the next period's
	// timestamp — a stale repeat, exactly what a stalled camera HAL emits.
	DupRate float64

	// AmbientRamp adds a linear ambient-light ramp of the given 8-bit
	// levels per second (positive = brightening room) to every pixel.
	AmbientRamp float64
	// FlickerAmp and FlickerHz add mains-powered lighting flicker: a
	// sinusoid of the given 8-bit amplitude, integrated over the exposure
	// window (lamps flicker at twice the mains frequency — pass 100 or
	// 120, not 50 or 60). FlickerAmp > 0 requires FlickerHz > 0.
	FlickerAmp float64
	FlickerHz  float64

	// GainAmp and GainHz model auto-exposure gain hunting: a slow
	// multiplicative oscillation 1 + GainAmp·sin(2π·GainHz·t) applied to
	// every pixel. GainAmp must stay below 1; GainAmp > 0 requires
	// GainHz > 0.
	GainAmp float64
	GainHz  float64

	// BurstRate is the per-capture probability of a sensor-noise burst
	// (read-out glitch, compression artifact): additive Gaussian noise of
	// BurstSigma 8-bit levels across the whole capture.
	BurstRate  float64
	BurstSigma float64

	// MotionBlurLen smears each capture horizontally with a box kernel of
	// radius MotionBlurLen pixels (camera shake). 0 disables.
	MotionBlurLen int

	// OccludeX, OccludeY, OccludeW, OccludeH place a static occluding
	// rectangle (a hand, a passer-by) as fractions of the capture size;
	// occluded pixels read OccludeLevel. Width and height must be set
	// together; both zero disables.
	OccludeX, OccludeY float64
	OccludeW, OccludeH float64
	// OccludeLevel is the 8-bit value occluded pixels read (0 = black).
	OccludeLevel float64

	// TiltDeg tips the camera off the display normal (rotation about the
	// horizontal axis, degrees): the frontal rectangle becomes a keystone
	// trapezoid, exactly the handheld-phone geometry the projective
	// receiver registration exists for. |TiltDeg| ≤ 70.
	TiltDeg float64
	// RotateDeg rolls the camera about its optical axis (degrees,
	// |RotateDeg| ≤ 180).
	RotateDeg float64
	// Distance scales the viewing distance relative to the calibrated
	// frontal setup: 1 reproduces the nominal framing, 2 halves the screen's
	// apparent size, 0.5 doubles it. 0 means unset (treated as 1); non-zero
	// values must lie in [0.5, 4] — the bound, together with the tilt bound,
	// keeps every projected point strictly in front of the pinhole (see
	// PoseHomography).
	Distance float64
	// PoseJitterDeg adds an independent uniform per-capture jitter of up to
	// the given degrees to tilt and roll — handheld shake in the pose
	// domain, keyed by the frozen ImpairPose stage. [0, 5].
	PoseJitterDeg float64
}

// poseEnabled reports whether the camera-pose stage is active.
func (c *Config) poseEnabled() bool {
	if c == nil {
		return false
	}
	return math.Abs(c.TiltDeg) > 0 || math.Abs(c.RotateDeg) > 0 ||
		//lint:ignore floateq Distance == 1 is the exact frontal sentinel; approximate values must take the warp path
		(c.Distance > 0 && c.Distance != 1) || c.PoseJitterDeg > 0
}

// Enabled reports whether any stage is active. A nil config is disabled.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return math.Abs(c.ClockDriftPPM) > 0 ||
		c.StartJitter > 0 ||
		c.DropRate > 0 ||
		c.DupRate > 0 ||
		math.Abs(c.AmbientRamp) > 0 ||
		c.FlickerAmp > 0 ||
		c.GainAmp > 0 ||
		c.BurstRate > 0 ||
		c.MotionBlurLen > 0 ||
		(c.OccludeW > 0 && c.OccludeH > 0) ||
		c.poseEnabled()
}

// Validate reports whether the configuration is usable. A nil config is
// valid (everything disabled).
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.StartJitter < 0 {
		return fmt.Errorf("impair: StartJitter must be non-negative, got %v", c.StartJitter)
	}
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("impair: DropRate must be in [0,1), got %v", c.DropRate)
	}
	if c.DupRate < 0 || c.DupRate >= 1 {
		return fmt.Errorf("impair: DupRate must be in [0,1), got %v", c.DupRate)
	}
	if c.FlickerAmp < 0 {
		return fmt.Errorf("impair: FlickerAmp must be non-negative, got %v", c.FlickerAmp)
	}
	if c.FlickerAmp > 0 && c.FlickerHz <= 0 {
		return fmt.Errorf("impair: FlickerAmp needs FlickerHz > 0, got %v", c.FlickerHz)
	}
	if c.GainAmp < 0 || c.GainAmp >= 1 {
		return fmt.Errorf("impair: GainAmp must be in [0,1), got %v", c.GainAmp)
	}
	if c.GainAmp > 0 && c.GainHz <= 0 {
		return fmt.Errorf("impair: GainAmp needs GainHz > 0, got %v", c.GainHz)
	}
	if c.BurstRate < 0 || c.BurstRate >= 1 {
		return fmt.Errorf("impair: BurstRate must be in [0,1), got %v", c.BurstRate)
	}
	if c.BurstRate > 0 && c.BurstSigma <= 0 {
		return fmt.Errorf("impair: BurstRate needs BurstSigma > 0, got %v", c.BurstSigma)
	}
	if c.BurstSigma < 0 {
		return fmt.Errorf("impair: BurstSigma must be non-negative, got %v", c.BurstSigma)
	}
	if c.MotionBlurLen < 0 {
		return fmt.Errorf("impair: MotionBlurLen must be non-negative, got %d", c.MotionBlurLen)
	}
	if (c.OccludeW > 0) != (c.OccludeH > 0) {
		return fmt.Errorf("impair: occlusion needs both OccludeW and OccludeH, got %v x %v", c.OccludeW, c.OccludeH)
	}
	if c.OccludeX < 0 || c.OccludeY < 0 || c.OccludeW < 0 || c.OccludeH < 0 ||
		c.OccludeX > 1 || c.OccludeY > 1 || c.OccludeW > 1 || c.OccludeH > 1 {
		return fmt.Errorf("impair: occlusion rectangle must use fractions in [0,1]")
	}
	if c.OccludeLevel < 0 || c.OccludeLevel > 255 {
		return fmt.Errorf("impair: OccludeLevel must be in [0,255], got %v", c.OccludeLevel)
	}
	if math.Abs(c.TiltDeg) > 70 {
		return fmt.Errorf("impair: TiltDeg must be in [-70,70], got %v", c.TiltDeg)
	}
	if math.Abs(c.RotateDeg) > 180 {
		return fmt.Errorf("impair: RotateDeg must be in [-180,180], got %v", c.RotateDeg)
	}
	if c.Distance < 0 || (c.Distance > 0 && (c.Distance < 0.5 || c.Distance > 4)) {
		return fmt.Errorf("impair: Distance must be 0 (unset) or in [0.5,4], got %v", c.Distance)
	}
	if c.PoseJitterDeg < 0 || c.PoseJitterDeg > 5 {
		return fmt.Errorf("impair: PoseJitterDeg must be in [0,5], got %v", c.PoseJitterDeg)
	}
	return nil
}

// Stage identifiers key the per-stage random streams; they live in the
// frozen registry (internal/detrng, impair domain) because they are part
// of the determinism contract: reordering them changes every seeded
// outcome, and the stagekey analyzer rejects stream derivations that do
// not key off a registry constant.

// Stack is an instantiated impairment pipeline.
type Stack struct {
	cfg Config
	// poseScratch recycles the camera-pose stage's warp source plane across
	// captures. Scratch only — pixel contents never survive a capture — so
	// sync.Pool's scheduling-dependent reuse cannot affect outputs, exactly
	// like the receiver's integer scratch buffers.
	poseScratch sync.Pool
}

// New builds a stack. The configuration must have passed Validate.
func New(cfg Config) *Stack { return &Stack{cfg: cfg} }

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// Names lists the active stages in canonical application order — the order
// ApplyFrame and ApplySequence use. Timing stages (drift, jitter) come
// first because they decide when each capture happens, then the
// pixel-domain stages, then the sequence stages.
func (s *Stack) Names() []string {
	var out []string
	if math.Abs(s.cfg.ClockDriftPPM) > 0 {
		out = append(out, "clock-drift")
	}
	if s.cfg.StartJitter > 0 {
		out = append(out, "start-jitter")
	}
	if s.cfg.poseEnabled() {
		out = append(out, "camera-pose")
	}
	if s.cfg.MotionBlurLen > 0 {
		out = append(out, "motion-blur")
	}
	if s.cfg.OccludeW > 0 && s.cfg.OccludeH > 0 {
		out = append(out, "occlusion")
	}
	if s.cfg.GainAmp > 0 {
		out = append(out, "gain-drift")
	}
	if math.Abs(s.cfg.AmbientRamp) > 0 {
		out = append(out, "ambient-ramp")
	}
	if s.cfg.FlickerAmp > 0 {
		out = append(out, "flicker")
	}
	if s.cfg.BurstRate > 0 {
		out = append(out, "noise-burst")
	}
	if s.cfg.DropRate > 0 {
		out = append(out, "capture-drop")
	}
	if s.cfg.DupRate > 0 {
		out = append(out, "capture-dup")
	}
	return out
}

// rng returns the random stream of one (stage, capture index) cell via
// the shared splitmix64 finalizer (detrng.Mix), so adjacent indices land
// far apart in seed space; keying by index — never worker identity — is
// what keeps impaired runs bit-identical at any worker count.
func (s *Stack) rng(stage detrng.Stage, index int) *rand.Rand {
	return detrng.Rand(s.cfg.Seed, stage, index)
}

// Period returns the impaired camera frame period: the nominal period skewed
// by the configured clock drift.
func (s *Stack) Period(base float64) float64 {
	return base * (1 + s.cfg.ClockDriftPPM*1e-6)
}

// CaptureTime returns capture i's exposure start: the drift-skewed schedule
// plus this capture's independent uniform start jitter.
func (s *Stack) CaptureTime(i int, start, period float64) float64 {
	t := start + float64(i)*period
	if s.cfg.StartJitter > 0 {
		t += (2*s.rng(detrng.ImpairJitter, i).Float64() - 1) * s.cfg.StartJitter
	}
	return t
}

// ApplyFrame corrupts one finished capture in place. index is the capture's
// position in the sequence (keys the random streams), t its exposure start
// and exposure the per-row integration time (used by the flicker integral).
// Stages apply in canonical order: camera pose (geometry happens at the
// lens, before any sensor-domain fault), then motion blur, occlusion, gain
// drift, ambient ramp + flicker, noise burst; if any stage fired, the frame
// is re-quantized to 8 bits (the corruption happens in the camera's integer
// output domain).
func (s *Stack) ApplyFrame(f *frame.Frame, index int, t, exposure float64) {
	touched := false
	if s.cfg.poseEnabled() {
		s.applyPose(f, index)
		touched = true
	}
	if s.cfg.MotionBlurLen > 0 {
		motionBlur(f, s.cfg.MotionBlurLen)
		touched = true
	}
	if s.cfg.OccludeW > 0 && s.cfg.OccludeH > 0 {
		s.occlude(f)
		touched = true
	}
	if s.cfg.GainAmp > 0 {
		g := 1 + s.cfg.GainAmp*math.Sin(2*math.Pi*s.cfg.GainHz*t)
		scale := float32(g)
		for i := range f.Pix {
			f.Pix[i] *= scale
		}
		touched = true
	}
	offset := 0.0
	if math.Abs(s.cfg.AmbientRamp) > 0 {
		offset += s.cfg.AmbientRamp * t
	}
	if s.cfg.FlickerAmp > 0 {
		offset += s.flickerLevel(t, exposure)
	}
	if math.Abs(offset) > 0 {
		add := float32(offset)
		for i := range f.Pix {
			f.Pix[i] += add
		}
		touched = true
	}
	if s.cfg.BurstRate > 0 {
		rng := s.rng(detrng.ImpairBurst, index)
		if rng.Float64() < s.cfg.BurstRate {
			sigma := s.cfg.BurstSigma
			for i := range f.Pix {
				f.Pix[i] += float32(rng.NormFloat64() * sigma)
			}
			touched = true
		}
	}
	if touched {
		f.Quantize()
	}
}

// flickerLevel is the mean flicker contribution over the exposure window
// [t, t+e]: the integral of amp·sin(ωt′) divided by e, which correctly
// attenuates flicker when the exposure spans whole flicker cycles. A
// non-positive exposure degrades to the instantaneous value.
func (s *Stack) flickerLevel(t, e float64) float64 {
	omega := 2 * math.Pi * s.cfg.FlickerHz
	if e <= 0 {
		return s.cfg.FlickerAmp * math.Sin(omega*t)
	}
	return s.cfg.FlickerAmp * (math.Cos(omega*t) - math.Cos(omega*(t+e))) / (omega * e)
}

// occlude paints the configured rectangle with OccludeLevel.
func (s *Stack) occlude(f *frame.Frame) {
	x0 := int(s.cfg.OccludeX * float64(f.W))
	y0 := int(s.cfg.OccludeY * float64(f.H))
	x1 := x0 + int(s.cfg.OccludeW*float64(f.W))
	y1 := y0 + int(s.cfg.OccludeH*float64(f.H))
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	level := float32(s.cfg.OccludeLevel)
	for y := y0; y < y1; y++ {
		row := f.Row(y)
		for x := x0; x < x1; x++ {
			row[x] = level
		}
	}
}

// motionBlur smears each row with a horizontal box filter of radius r
// (replicate padding), the separable half of a camera-shake kernel.
func motionBlur(f *frame.Frame, r int) {
	w := f.W
	src := make([]float32, w)
	inv := 1 / float32(2*r+1)
	for y := 0; y < f.H; y++ {
		row := f.Row(y)
		copy(src, row)
		var sum float32
		for i := -r; i <= r; i++ {
			sum += src[clampIdx(i, w)]
		}
		for x := 0; x < w; x++ {
			row[x] = sum * inv
			sum += src[clampIdx(x+r+1, w)] - src[clampIdx(x-r, w)]
		}
	}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ApplySequence runs the delivery-pipeline stages over a finished capture
// sequence: per-capture drop (the frame goes back to the pool) and
// duplication (a pool-drawn clone delivered one period later with stale
// pixels). Decisions are keyed by the capture's original index, so whether
// capture i survives never depends on what happened to captures before it.
// The returned slices are freshly built; the inputs must not be reused.
func (s *Stack) ApplySequence(caps []*frame.Frame, times []float64, period float64, p *frame.Pool) ([]*frame.Frame, []float64) {
	if s.cfg.DropRate <= 0 && s.cfg.DupRate <= 0 {
		return caps, times
	}
	outCaps := make([]*frame.Frame, 0, len(caps))
	outTimes := make([]float64, 0, len(times))
	for i, f := range caps {
		if s.cfg.DropRate > 0 && s.rng(detrng.ImpairDrop, i).Float64() < s.cfg.DropRate {
			p.Put(f)
			continue
		}
		outCaps = append(outCaps, f)
		outTimes = append(outTimes, times[i])
		if s.cfg.DupRate > 0 && s.rng(detrng.ImpairDup, i).Float64() < s.cfg.DupRate {
			dup := p.Get(f.W, f.H)
			f.CloneInto(dup)
			outCaps = append(outCaps, dup)
			outTimes = append(outTimes, times[i]+period)
		}
	}
	return outCaps, outTimes
}
