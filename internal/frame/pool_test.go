package frame

import (
	"math"
	"testing"
)

// TestPoolReuse pins the core contract: a Get after a Put of the same size
// returns the recycled buffer (same backing array), zeroed.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	f := p.Get(8, 4)
	f.Fill(77)
	px := &f.Pix[0]
	p.Put(f)
	g := p.Get(8, 4)
	if &g.Pix[0] != px {
		t.Fatalf("Get did not reuse the Put frame's buffer")
	}
	for i, v := range g.Pix {
		if v != 0 {
			t.Fatalf("recycled frame not zeroed at %d: %v", i, v)
		}
	}
}

// TestPoolCrossSize verifies that free lists are keyed by exact W×H: a
// frame Put at one size must not satisfy a Get at another, even with the
// same pixel count.
func TestPoolCrossSize(t *testing.T) {
	p := NewPool()
	f := p.Get(8, 4)
	px := &f.Pix[0]
	p.Put(f)
	g := p.Get(4, 8) // same 32 pixels, different geometry
	if &g.Pix[0] == px {
		t.Fatalf("Get(4,8) reused a Put(8,4) buffer")
	}
	p.Put(g)
	h := p.Get(8, 4)
	if &h.Pix[0] != px {
		t.Fatalf("Get(8,4) did not reuse the matching 8x4 buffer")
	}
}

// TestPoolStats checks the traffic accounting across a deterministic
// Get/Put sequence.
func TestPoolStats(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 4) // miss
	b := p.Get(4, 4) // miss
	p.Put(a)
	c := p.Get(4, 4) // hit
	p.Put(b)
	p.Put(c)
	got := p.Stats()
	want := PoolStats{Gets: 3, Puts: 3, Hits: 1, Misses: 2}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if n := p.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

// TestPoolDoublePutPanics pins the loud-misuse contract: returning the
// same frame twice means two stages think they own it.
func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	f := p.Get(4, 4)
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(f)
}

// TestPoolCorruptPutPanics pins the size-mismatch panic for a frame whose
// buffer no longer matches its dimensions.
func TestPoolCorruptPutPanics(t *testing.T) {
	p := NewPool()
	f := &Frame{W: 4, H: 4, Pix: make([]float32, 3)}
	defer func() {
		if recover() == nil {
			t.Fatalf("corrupt Put did not panic")
		}
	}()
	p.Put(f)
}

// TestPoolAdoptsForeignFrames verifies Put accepts frames the pool never
// handed out (e.g. a capture allocated before pooling was enabled).
func TestPoolAdoptsForeignFrames(t *testing.T) {
	p := NewPool()
	f := New(6, 2)
	p.Put(f)
	g := p.Get(6, 2)
	if &g.Pix[0] != &f.Pix[0] {
		t.Fatalf("adopted frame was not reused")
	}
}

// TestNilPool pins the null-object behavior every pipeline stage relies
// on: a nil pool degrades to plain allocation with Puts dropped.
func TestNilPool(t *testing.T) {
	var p *Pool
	f := p.Get(5, 3)
	if f == nil || f.W != 5 || f.H != 3 {
		t.Fatalf("nil pool Get returned %v", f)
	}
	p.Put(f) // must not panic
	if s := p.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
	if p.Len() != 0 {
		t.Fatalf("nil pool Len = %d", p.Len())
	}
}

// TestFillPixNegativeZero guards the fill fast path: -0 has a non-zero bit
// pattern, so it must not be routed through the memclr (which would write
// +0 and silently break bit-identity between filled and stored planes).
func TestFillPixNegativeZero(t *testing.T) {
	negZero := math.Float32frombits(0x8000_0000)
	f := NewFilled(7, 3, negZero)
	for i, v := range f.Pix {
		if math.Float32bits(v) != 0x8000_0000 {
			t.Fatalf("pixel %d = %x, want negative zero", i, math.Float32bits(v))
		}
	}
}

// TestFillMatchesNewFilled keeps the two public fill paths on the shared
// loop: Fill over an existing frame and NewFilled must agree bit for bit.
func TestFillMatchesNewFilled(t *testing.T) {
	for _, v := range []float32{0, 1, 42.5, -3, 255} {
		a := NewFilled(9, 5, v)
		b := New(9, 5)
		b.Fill(123)
		b.Fill(v)
		if !a.Equal(b) {
			t.Fatalf("Fill(%v) and NewFilled(%v) disagree", v, v)
		}
	}
}
