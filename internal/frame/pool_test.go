package frame

import (
	"math"
	"testing"
)

// TestPoolReuse pins the core contract: a Get after a Put of the same size
// returns the recycled buffer (same backing array), zeroed.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	f := p.Get(8, 4)
	f.Fill(77)
	px := &f.Pix[0]
	p.Put(f)
	g := p.Get(8, 4)
	if &g.Pix[0] != px {
		t.Fatalf("Get did not reuse the Put frame's buffer")
	}
	for i, v := range g.Pix {
		if v != 0 {
			t.Fatalf("recycled frame not zeroed at %d: %v", i, v)
		}
	}
}

// TestPoolCrossSize verifies that free lists are keyed by exact W×H: a
// frame Put at one size must not satisfy a Get at another, even with the
// same pixel count.
func TestPoolCrossSize(t *testing.T) {
	p := NewPool()
	f := p.Get(8, 4)
	px := &f.Pix[0]
	p.Put(f)
	g := p.Get(4, 8) // same 32 pixels, different geometry
	if &g.Pix[0] == px {
		t.Fatalf("Get(4,8) reused a Put(8,4) buffer")
	}
	p.Put(g)
	h := p.Get(8, 4)
	if &h.Pix[0] != px {
		t.Fatalf("Get(8,4) did not reuse the matching 8x4 buffer")
	}
}

// TestPoolStats checks the traffic accounting across a deterministic
// Get/Put sequence.
func TestPoolStats(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 4) // miss
	b := p.Get(4, 4) // miss
	p.Put(a)
	c := p.Get(4, 4) // hit
	p.Put(b)
	p.Put(c)
	got := p.Stats()
	want := PoolStats{Gets: 3, Puts: 3, Hits: 1, Misses: 2}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if n := p.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

// TestPoolDoublePutPanics pins the loud-misuse contract: returning the
// same frame twice means two stages think they own it.
func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	f := p.Get(4, 4)
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatalf("double Put did not panic")
		}
	}()
	p.Put(f)
}

// TestPoolCorruptPutPanics pins the size-mismatch panic for a frame whose
// buffer no longer matches its dimensions.
func TestPoolCorruptPutPanics(t *testing.T) {
	p := NewPool()
	f := &Frame{W: 4, H: 4, Pix: make([]float32, 3)}
	defer func() {
		if recover() == nil {
			t.Fatalf("corrupt Put did not panic")
		}
	}()
	p.Put(f)
}

// TestPoolAdoptsForeignFrames verifies Put accepts frames the pool never
// handed out (e.g. a capture allocated before pooling was enabled).
func TestPoolAdoptsForeignFrames(t *testing.T) {
	p := NewPool()
	f := New(6, 2)
	p.Put(f)
	g := p.Get(6, 2)
	if &g.Pix[0] != &f.Pix[0] {
		t.Fatalf("adopted frame was not reused")
	}
}

// TestNilPool pins the null-object behavior every pipeline stage relies
// on: a nil pool degrades to plain allocation with Puts dropped.
func TestNilPool(t *testing.T) {
	var p *Pool
	f := p.Get(5, 3)
	if f == nil || f.W != 5 || f.H != 3 {
		t.Fatalf("nil pool Get returned %v", f)
	}
	p.Put(f) // must not panic
	if s := p.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", s)
	}
	if p.Len() != 0 {
		t.Fatalf("nil pool Len = %d", p.Len())
	}
}

// TestPoolMaxPerSize pins the per-size cap: Puts beyond the cap drop their
// frame (counted as Evicted), Gets after eviction allocate fresh, and the
// cap is keyed per size — one full list must not block another size's Puts.
func TestPoolMaxPerSize(t *testing.T) {
	p := NewPool()
	p.SetMaxPerSize(2)
	frames := []*Frame{p.Get(4, 4), p.Get(4, 4), p.Get(4, 4), p.Get(8, 2)}
	for _, f := range frames {
		p.Put(f)
	}
	if got := p.Stats().Evicted; got != 1 {
		t.Fatalf("Evicted = %d, want 1 (third 4x4 Put over the cap)", got)
	}
	if n := p.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3 (two 4x4 + one 8x2 retained)", n)
	}
	// The evicted frame is gone: two hits drain the 4x4 list, the third
	// Get must miss.
	p.Get(4, 4)
	p.Get(4, 4)
	before := p.Stats().Misses
	p.Get(4, 4)
	if got := p.Stats().Misses; got != before+1 {
		t.Fatalf("Get after eviction hit the free list (misses %d -> %d)", before, got)
	}
}

// TestPoolSetMaxPerSizeTrimsExisting verifies the cap applies retroactively:
// lists longer than the new cap shrink immediately and the evictions are
// accounted.
func TestPoolSetMaxPerSizeTrimsExisting(t *testing.T) {
	p := NewPool()
	for i := 0; i < 5; i++ {
		p.Put(New(4, 4))
	}
	p.SetMaxPerSize(2)
	if n := p.Len(); n != 2 {
		t.Fatalf("Len after SetMaxPerSize(2) = %d, want 2", n)
	}
	if got := p.Stats().Evicted; got != 3 {
		t.Fatalf("Evicted = %d, want 3", got)
	}
}

// TestPoolTrim pins the one-shot release: Trim drops beyond the given
// per-size count without installing a standing cap, keeps the most recently
// Put frames, and Trim(0) empties the pool.
func TestPoolTrim(t *testing.T) {
	p := NewPool()
	var last *Frame
	for i := 0; i < 4; i++ {
		last = New(6, 3)
		p.Put(last)
	}
	if got := p.Trim(1); got != 3 {
		t.Fatalf("Trim(1) evicted %d, want 3", got)
	}
	// LIFO retention: the surviving frame is the most recently Put.
	if g := p.Get(6, 3); &g.Pix[0] != &last.Pix[0] {
		t.Fatalf("Trim did not keep the most recently Put frame")
	}
	// No standing cap: both frames stick.
	p.Put(New(6, 3))
	p.Put(New(6, 3))
	if n := p.Len(); n != 2 {
		t.Fatalf("Len after post-Trim Puts = %d, want 2 (Trim must not cap)", n)
	}
	if got := p.Trim(0); got != 2 {
		t.Fatalf("Trim(0) evicted %d, want 2", got)
	}
	if n := p.Len(); n != 0 {
		t.Fatalf("Len after Trim(0) = %d, want 0", n)
	}
}

// TestPoolHighWater pins the residency accounting across a mixed-size
// sequence: the peak tracks the largest simultaneous free-list population,
// in frames and pixels, and never decreases.
func TestPoolHighWater(t *testing.T) {
	p := NewPool()
	a, b, c := New(4, 4), New(4, 4), New(10, 2) // 16+16+20 pixels
	p.Put(a)
	p.Put(b)
	p.Put(c)
	want := PoolHighWater{Frames: 3, Pixels: 52}
	if hw := p.HighWater(); hw != want {
		t.Fatalf("HighWater = %+v, want %+v", hw, want)
	}
	// Draining does not lower the recorded peak.
	p.Get(4, 4)
	p.Get(4, 4)
	p.Get(10, 2)
	if hw := p.HighWater(); hw != want {
		t.Fatalf("HighWater after drain = %+v, want %+v", hw, want)
	}
	// A capped pool's high-water is bounded by the cap even as Puts churn.
	q := NewPool()
	q.SetMaxPerSize(1)
	for i := 0; i < 10; i++ {
		q.Put(New(4, 4))
		q.Put(New(8, 8))
	}
	if hw := q.HighWater(); hw.Frames != 2 || hw.Pixels != 16+64 {
		t.Fatalf("capped HighWater = %+v, want 2 frames / 80 pixels", hw)
	}
	var nilPool *Pool
	if hw := nilPool.HighWater(); hw != (PoolHighWater{}) {
		t.Fatalf("nil pool HighWater = %+v", hw)
	}
	if nilPool.Trim(0) != 0 {
		t.Fatalf("nil pool Trim evicted frames")
	}
	nilPool.SetMaxPerSize(3) // must not panic
}

// TestPoolCapDeterminism proves eviction cannot reach pixel data: a capped
// pool and an unbounded pool hand out bit-identical (zeroed) frames for the
// same Get/Put sequence, whatever was evicted in between.
func TestPoolCapDeterminism(t *testing.T) {
	run := func(p *Pool) []float32 {
		var out []float32
		for i := 0; i < 6; i++ {
			f := p.Get(4, 2)
			for j := range f.Pix {
				out = append(out, f.Pix[j])
				f.Pix[j] = float32(i*10 + j) // dirty before returning
			}
			p.Put(f)
		}
		return out
	}
	capped := NewPool()
	capped.SetMaxPerSize(1)
	a := run(capped)
	b := run(NewPool())
	for i := range a {
		//lint:ignore floateq the contract under test is bit-identity, so the comparison must be exact
		if a[i] != b[i] {
			t.Fatalf("capped and unbounded pools diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFillPixNegativeZero guards the fill fast path: -0 has a non-zero bit
// pattern, so it must not be routed through the memclr (which would write
// +0 and silently break bit-identity between filled and stored planes).
func TestFillPixNegativeZero(t *testing.T) {
	negZero := math.Float32frombits(0x8000_0000)
	f := NewFilled(7, 3, negZero)
	for i, v := range f.Pix {
		if math.Float32bits(v) != 0x8000_0000 {
			t.Fatalf("pixel %d = %x, want negative zero", i, math.Float32bits(v))
		}
	}
}

// TestFillMatchesNewFilled keeps the two public fill paths on the shared
// loop: Fill over an existing frame and NewFilled must agree bit for bit.
func TestFillMatchesNewFilled(t *testing.T) {
	for _, v := range []float32{0, 1, 42.5, -3, 255} {
		a := NewFilled(9, 5, v)
		b := New(9, 5)
		b.Fill(123)
		b.Fill(v)
		if !a.Equal(b) {
			t.Fatalf("Fill(%v) and NewFilled(%v) disagree", v, v)
		}
	}
}
